package jskernel_test

import (
	"testing"

	"jskernel"
)

func TestProtectedEnvironment(t *testing.T) {
	env := jskernel.Protected("chrome", 1)
	if env.Kernel == nil {
		t.Fatal("protected env has no kernel")
	}
	var display float64
	env.Browser.RunScript("main", func(g *jskernel.Global) {
		g.SetTimeout(func(gg *jskernel.Global) {
			display = gg.PerformanceNow()
		}, 5*jskernel.Millisecond)
	})
	if err := env.Browser.Run(); err != nil {
		t.Fatal(err)
	}
	if display != 5 {
		t.Fatalf("displayed time = %v, want the 5ms prediction", display)
	}
}

func TestLegacyEnvironment(t *testing.T) {
	env := jskernel.Legacy("firefox", 1)
	if env.Kernel != nil {
		t.Fatal("legacy env should have no kernel")
	}
	if env.Browser.Profile.Name != "firefox" {
		t.Fatalf("profile = %s", env.Browser.Profile.Name)
	}
}

func TestCatalogs(t *testing.T) {
	if len(jskernel.Defenses()) != 8 {
		t.Fatalf("defenses = %d", len(jskernel.Defenses()))
	}
	if len(jskernel.TimingAttacks()) != 10 {
		t.Fatalf("timing attacks = %d", len(jskernel.TimingAttacks()))
	}
	if len(jskernel.CVEAttacks()) != 12 {
		t.Fatalf("cve attacks = %d", len(jskernel.CVEAttacks()))
	}
	if len(jskernel.AllCVEs()) != 12 {
		t.Fatalf("cves = %d", len(jskernel.AllCVEs()))
	}
	if _, err := jskernel.DefenseByID("jskernel-chrome"); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyHelpers(t *testing.T) {
	full := jskernel.FullDefensePolicy()
	if full.PolicyName == "" || len(full.Rules) == 0 {
		t.Fatal("full defense policy incomplete")
	}
	one, err := jskernel.PolicyForCVE("CVE-2013-1714")
	if err != nil {
		t.Fatal(err)
	}
	data, err := one.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := jskernel.ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.PolicyName != one.PolicyName {
		t.Fatal("policy JSON round trip failed")
	}
}

func TestCustomKernelAssembly(t *testing.T) {
	// The long way: assemble simulator, kernel, browser by hand.
	s := jskernel.NewSimulator(7)
	shared := jskernel.NewKernel(jskernel.DeterministicPolicy())
	b := jskernel.NewBrowser(s, jskernel.BrowserOptions{InstallScope: shared.Install})
	ran := false
	b.RunScript("main", func(g *jskernel.Global) {
		if !g.Frozen() {
			t.Error("scope not kernelized")
		}
		ran = true
	})
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("script did not run")
	}
}

func TestExperimentConfigs(t *testing.T) {
	paper := jskernel.PaperExperimentConfig()
	quick := jskernel.QuickExperimentConfig()
	if paper.Reps != 25 {
		t.Fatalf("paper reps = %d", paper.Reps)
	}
	if quick.Reps >= paper.Reps || quick.AlexaSites >= paper.AlexaSites {
		t.Fatal("quick config should be smaller than paper config")
	}
}

func TestHardeningPolicyHelpers(t *testing.T) {
	hard := jskernel.DisableSharedBuffersPolicy()
	if len(hard.Rules) != 2 {
		t.Fatalf("hardening rules = %d", len(hard.Rules))
	}
	combined := jskernel.CombinePolicies("max", hard, jskernel.FullDefensePolicy())
	if len(combined.Rules) != len(hard.Rules)+len(jskernel.FullDefensePolicy().Rules) {
		t.Fatal("combine lost rules")
	}
	reg := jskernel.NewVulnRegistry()
	if reg == nil {
		t.Fatal("nil registry")
	}
}
