package jskernel_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTable1*  — the defense matrix (Table I)
//	BenchmarkTable2*  — SVG filtering & Loopscan measured values (Table II)
//	BenchmarkTable3   — Raptor tp6-1 loading times (Table III)
//	BenchmarkFig2     — script parsing vs file size curves (Figure 2)
//	BenchmarkFig3     — Alexa loading-time CDFs (Figure 3)
//	BenchmarkDromaeo* — §V-A1 micro-benchmark overhead
//	BenchmarkWorkerCreation — §V-A1 16-worker benchmark
//	BenchmarkCompat*  — §V-B compatibility studies
//
// plus micro-benchmarks of the substrate and the kernel hot paths.

import (
	"testing"
	"time"

	"jskernel"
	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/expr"
	"jskernel/internal/kernel"
	"jskernel/internal/obs"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/workload"
)

// benchConfig keeps each macro-benchmark iteration in the seconds range.
func benchConfig() expr.Config {
	cfg := expr.QuickConfig()
	cfg.Reps = 3
	cfg.AlexaSites = 15
	cfg.CompatSites = 8
	cfg.Fig2SizesMB = []int{2, 6, 10}
	cfg.Fig2Reps = 2
	return cfg
}

// --- Tables and figures ---

func BenchmarkTable1TimingRows(b *testing.B) {
	cfg := benchConfig()
	attacks := attack.TimingAttacks()
	defenses := defense.TableIDefenses()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, a := range attacks {
			for _, d := range defenses {
				out := a.Evaluate(d, cfg.Reps, cfg.Seed)
				if out.AttackID == "" {
					b.Fatal("empty outcome")
				}
			}
		}
	}
}

func BenchmarkTable1CVERows(b *testing.B) {
	cfg := benchConfig()
	attacks := attack.CVEAttacks()
	defenses := defense.TableIDefenses()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, a := range attacks {
			for _, d := range defenses {
				_ = attack.EvaluateCVE(a, d, cfg.Seed)
			}
		}
	}
}

func BenchmarkTable2SVGFiltering(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, d := range defense.TableIIDefenses() {
			for _, dim := range []int{300, 1200} {
				env := d.NewEnv(defense.EnvOptions{Seed: cfg.Seed})
				if _, err := attack.MeasureSVGLoadMs(env, dim); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkTable2Loopscan(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, d := range defense.TableIIDefenses() {
			for _, site := range []string{"google", "youtube"} {
				env := d.NewEnv(defense.EnvOptions{Seed: cfg.Seed})
				if _, err := attack.MeasureLoopscanGapMs(env, site); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkTable3Raptor(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ScriptParsing(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := expr.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.SlopeMsPerMB) == 0 {
			b.Fatal("no slopes")
		}
	}
}

func BenchmarkFig3AlexaCDF(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDromaeoLegacy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunDromaeo(defense.Chrome(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDromaeoJSKernel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunDromaeo(defense.JSKernel("chrome"), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDromaeoJSKernelTraced is BenchmarkDromaeoJSKernel with a live
// trace session attached — compare the two to see the tracing tax when
// on (BENCH_trace.json records a sample). The nil-sink (tracing off)
// case is BenchmarkDromaeoJSKernel itself, and TestTraceNilSinkOverhead
// bounds its overhead against a tracer-free build of the same workload.
func BenchmarkDromaeoJSKernelTraced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := trace.NewSession()
		if _, err := workload.RunDromaeo(defense.JSKernel("chrome").WithTracer(s), 1); err != nil {
			b.Fatal(err)
		}
		if s.Len() == 0 {
			b.Fatal("traced run emitted no records")
		}
	}
}

// TestTraceNilSinkOverhead checks the tracing-off fast path. A kernel
// holding a nil *trace.Session must do nothing at each emission site
// beyond the nil check, so the off run can never be slower than the
// traced run — tracing on performs a strict superset of the work. The
// bound is deliberately generous (3x plus slack) so scheduler jitter
// never flakes it; what it catches is a future change that makes the
// off state do real work per emission (allocate, format, lock). Wall
// time is fine here: this file is outside the detwalltime lint scope.
func TestTraceNilSinkOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	runOnce := func(d defense.Defense) time.Duration {
		start := time.Now()
		if _, err := workload.RunDromaeo(d, 1); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm up allocators and caches, then take the best of 3 per side.
	runOnce(defense.JSKernel("chrome"))
	best := func(d defense.Defense) time.Duration {
		b := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			if v := runOnce(d); v < b {
				b = v
			}
		}
		return b
	}
	off := best(defense.JSKernel("chrome")) // nil tracer: the off fast path
	on := best(defense.JSKernel("chrome").WithTracer(trace.NewSession()))
	t.Logf("dromaeo: tracing off %v, tracing on %v", off, on)
	if off > 3*on+10*time.Millisecond {
		t.Fatalf("nil-sink path (%v) grossly slower than traced path (%v): the off state is doing real work", off, on)
	}
}

// BenchmarkDromaeoJSKernelObs is the traced benchmark with the
// browser's observability events on and the streaming profiler and
// detectors attached — the full telemetry tax (BENCH_obs.json records a
// sample via jsk-bench -obs).
func BenchmarkDromaeoJSKernelObs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := trace.NewSession()
		s.SetRetain(false)
		s.Attach(obs.NewProfiler())
		s.Attach(obs.NewDetectors(obs.DefaultDetectorConfig()))
		d := defense.JSKernel("chrome").WithTracer(s).WithObs(true)
		if _, err := workload.RunDromaeo(d, 1); err != nil {
			b.Fatal(err)
		}
		if s.Len() == 0 {
			b.Fatal("obs run emitted no records")
		}
	}
}

// TestObsOffOverhead checks the observability-off fast path the same
// way TestTraceNilSinkOverhead checks tracing-off: a traced environment
// with obs disabled must do nothing at each browser emission site
// beyond the existing bool check, so it can never be slower than the
// obs-on run, which performs a strict superset of the work (emitting
// the extra native events plus running the streaming consumers). The
// generous 3x-plus-slack bound only catches the off state doing real
// per-event work.
func TestObsOffOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	runOnce := func(d defense.Defense) time.Duration {
		start := time.Now()
		if _, err := workload.RunDromaeo(d, 1); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	traced := func(withObs bool) defense.Defense {
		s := trace.NewSession()
		s.SetRetain(false)
		d := defense.JSKernel("chrome").WithTracer(s)
		if withObs {
			s.Attach(obs.NewProfiler())
			s.Attach(obs.NewDetectors(obs.DefaultDetectorConfig()))
			d = d.WithObs(true)
		}
		return d
	}
	runOnce(traced(true))
	best := func(withObs bool) time.Duration {
		b := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			if v := runOnce(traced(withObs)); v < b {
				b = v
			}
		}
		return b
	}
	off := best(false) // obs disabled: the bool-check fast path
	on := best(true)
	t.Logf("dromaeo traced: obs off %v, obs on %v", off, on)
	if off > 3*on+10*time.Millisecond {
		t.Fatalf("obs-off path (%v) grossly slower than obs-on path (%v): the off state is doing real work", off, on)
	}
}

func BenchmarkWorkerCreation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunWorkerBench(defense.JSKernel("chrome"), 16, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompatDOMSimilarity(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Compat(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompatApps(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Apps(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationQuantum(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := expr.QuantumAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := expr.PolicyAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryAttacks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, d := range []defense.Defense{defense.Chrome(), defense.JSKernel("chrome")} {
			if _, _, err := attack.RecoveryAccuracy(d, 16, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Substrate and kernel micro-benchmarks ---

func BenchmarkSimulatorScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		for j := 0; j < 1000; j++ {
			s.Schedule(sim.Time(j), "ev", func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelEventQueue(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := kernel.NewEventQueue()
		for j := 0; j < 1000; j++ {
			q.NewEvent("e", sim.Time(j%97), nil)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

func BenchmarkKernelTimerDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := jskernel.Protected("chrome", 1)
		env.Browser.RunScript("main", func(g *jskernel.Global) {
			n := 0
			var chain func(gg *jskernel.Global)
			chain = func(gg *jskernel.Global) {
				if n++; n < 200 {
					gg.SetTimeout(chain, jskernel.Millisecond)
				}
			}
			g.SetTimeout(chain, jskernel.Millisecond)
		})
		if err := env.Browser.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeTimerDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := jskernel.Legacy("chrome", 1)
		env.Browser.RunScript("main", func(g *jskernel.Global) {
			n := 0
			var chain func(gg *jskernel.Global)
			chain = func(gg *jskernel.Global) {
				if n++; n < 200 {
					gg.SetTimeout(chain, jskernel.Millisecond)
				}
			}
			g.SetTimeout(chain, jskernel.Millisecond)
		})
		if err := env.Browser.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkerMessageRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := jskernel.Protected("chrome", 1)
		br := env.Browser
		br.RegisterWorkerScript("echo.js", func(g *jskernel.Global) {
			g.SetOnMessage(func(gg *jskernel.Global, m jskernel.MessageEvent) {
				gg.PostMessage(m.Data)
			})
		})
		br.RunScript("main", func(g *jskernel.Global) {
			w, err := g.NewWorker("echo.js")
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			w.SetOnMessage(func(*jskernel.Global, jskernel.MessageEvent) {
				if n++; n < 50 {
					w.PostMessage(n)
				}
			})
			w.PostMessage(0)
		})
		if err := br.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSiteLoad(b *testing.B) {
	site := workload.GenerateSites(1, 3)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := defense.JSKernel("chrome").NewEnv(defense.EnvOptions{Seed: int64(i + 1)})
		if _, err := workload.LoadSite(env, site); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyEvaluate(b *testing.B) {
	full := policy.FullDefense()
	ctx := kernel.CallContext{API: "worker.terminate", PendingFetches: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := full.Evaluate(ctx); v.Action != kernel.ActionDefer {
			b.Fatal("unexpected verdict")
		}
	}
}
