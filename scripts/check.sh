#!/bin/sh
# check.sh — the pre-merge gate: build, vet, and race-test everything.
# Usage: ./scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== OK"
