#!/bin/sh
# check.sh — the pre-merge gate: build, vet, jsk-lint, race-test.
# Usage: ./scripts/check.sh   (or: make check)
#
# Fails fast: the first failing stage stops the run, and the banner
# names the stage so the log reads unambiguously even in CI.
set -eu

cd "$(dirname "$0")/.."

stage() {
	echo ""
	echo "==================================================================="
	echo "== stage: $1"
	echo "==================================================================="
}

fail() {
	echo ""
	echo "xx stage FAILED: $1" >&2
	exit 1
}

stage "go build ./..."
go build ./... || fail "go build"

stage "go vet ./..."
go vet ./... || fail "go vet"

stage "jsk-lint ./internal/... ./cmd/..."
go run ./cmd/jsk-lint ./internal/... ./cmd/... || fail "jsk-lint"

stage "go test -race ./..."
go test -race ./... || fail "go test -race"

echo ""
echo "== OK: all stages passed"
