#!/bin/sh
# check.sh — the pre-merge gate: build, vet, jsk-lint, race-test.
# Usage: ./scripts/check.sh   (or: make check)
#
# Fails fast: the first failing stage stops the run, and the banner
# names the stage so the log reads unambiguously even in CI.
set -eu

cd "$(dirname "$0")/.."

stage() {
	echo ""
	echo "==================================================================="
	echo "== stage: $1"
	echo "==================================================================="
}

fail() {
	echo ""
	echo "xx stage FAILED: $1" >&2
	exit 1
}

stage "go build ./..."
go build ./... || fail "go build"

stage "go vet ./..."
go vet ./... || fail "go vet"

stage "jsk-lint ./internal/... ./cmd/..."
go run ./cmd/jsk-lint ./internal/... ./cmd/... || fail "jsk-lint"

# The race stage gets an explicit timeout: the expr suite runs full
# Table I matrices several times over for the parallel-determinism and
# forensic-agreement guards, which on a small CI box does not fit
# go test's default 10m budget.
stage "go test -race ./..."
go test -race -timeout 45m ./... || fail "go test -race"

# Golden traces run as part of the suite above, but re-run here without
# -race so byte-level determinism is checked in the exact configuration
# a developer uses for -update, then smoke the end-to-end exporter: a
# traced Dromaeo run must produce Chrome trace-event JSON that survives
# trace.Validator (writeTrace validates before it writes).
stage "golden traces + trace export smoke"
go test ./internal/trace -run Golden || fail "golden traces"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
go run ./cmd/jsk-eval -dromaeo -trace "$trace_tmp/dromaeo-trace.json" >/dev/null || fail "trace export smoke"
test -s "$trace_tmp/dromaeo-trace.json" || fail "trace export smoke (empty output)"

# Observability smoke: the streaming consumers must attach, profile and
# report without perturbing the run — flamegraph, telemetry report and
# metrics registry all non-empty from one traced Dromaeo pass.
stage "obs smoke (profile + obs-report + metrics)"
go run ./cmd/jsk-eval -dromaeo \
	-profile "$trace_tmp/dromaeo.folded" \
	-obs-report "$trace_tmp/obs" \
	-metrics "$trace_tmp/metrics.json" >/dev/null || fail "obs smoke"
test -s "$trace_tmp/dromaeo.folded" || fail "obs smoke (empty flamegraph)"
test -s "$trace_tmp/obs/report.json" || fail "obs smoke (empty report.json)"
test -s "$trace_tmp/obs/summary.txt" || fail "obs smoke (empty summary.txt)"
test -s "$trace_tmp/metrics.json" || fail "obs smoke (empty metrics.json)"

# Race smoke: re-judge Table I's CVE half with the happens-before race
# detector — jsk-race exits nonzero unless the race verdict (≥1 race on
# the CVE's channel target class) agrees with the experiment's own
# exploited/defended verdict on every cell. Then round-trip one cell
# through export → offline replay and require the identical findings:
# the streaming detector and the replayer must be the same analysis.
stage "jsk-race (Table I agreement + export/replay round-trip)"
go run ./cmd/jsk-race >/dev/null || fail "jsk-race matrix"
go run ./cmd/jsk-race -cve CVE-2018-5092 -defense chrome \
	-export "$trace_tmp/cve5092.jsonl" >"$trace_tmp/race-live.txt" || fail "jsk-race export"
go run ./cmd/jsk-race -replay "$trace_tmp/cve5092.jsonl" >"$trace_tmp/race-replay.txt" || fail "jsk-race replay"
sed -n '/^  /p' "$trace_tmp/race-live.txt" >"$trace_tmp/race-live-findings.txt"
sed -n '/^  /p' "$trace_tmp/race-replay.txt" >"$trace_tmp/race-replay-findings.txt"
diff -u "$trace_tmp/race-live-findings.txt" "$trace_tmp/race-replay-findings.txt" \
	|| fail "jsk-race replay diverged from the live run"
test -s "$trace_tmp/race-live-findings.txt" || fail "jsk-race (no findings on an exploited cell)"

# Explore smoke: the schedule-space search must rediscover the CVE
# races with the attack state machines unarmed (small PCT budget on two
# cells, DPOR fallback), its report must be byte-identical at any
# -parallel width, and a replay token must reproduce its findings
# identically on every invocation. The non-JSON path exits nonzero if
# any discovery's own replay check fails, so the exit code doubles as
# the token-determinism gate; -o keeps the JSON report as an artifact.
stage "jsk-explore smoke (unarmed rediscovery + replay determinism)"
go run ./cmd/jsk-explore -matrix -cves CVE-2018-5092,CVE-2014-3194 \
	-budget 2 -dpor-budget 4 -parallel 1 \
	-o "$trace_tmp/explore-p1.json" >/dev/null || fail "jsk-explore matrix (-parallel 1)"
go run ./cmd/jsk-explore -matrix -cves CVE-2018-5092,CVE-2014-3194 \
	-budget 2 -dpor-budget 4 -parallel 4 \
	-o "$trace_tmp/explore-p4.json" >/dev/null || fail "jsk-explore matrix (-parallel 4)"
diff -u "$trace_tmp/explore-p1.json" "$trace_tmp/explore-p4.json" \
	|| fail "jsk-explore report differs across -parallel widths"
go run ./cmd/jsk-explore -replay v1:CVE-2018-5092:chrome:42:- \
	>"$trace_tmp/explore-replay-1.txt" || fail "jsk-explore replay"
go run ./cmd/jsk-explore -replay v1:CVE-2018-5092:chrome:42:- \
	>"$trace_tmp/explore-replay-2.txt" || fail "jsk-explore replay (second run)"
diff -u "$trace_tmp/explore-replay-1.txt" "$trace_tmp/explore-replay-2.txt" \
	|| fail "jsk-explore replay token is nondeterministic"
grep -q '^  race ' "$trace_tmp/explore-replay-1.txt" \
	|| fail "jsk-explore replay reproduced no findings"

# Service smoke: boot the jsk-serve daemon on a loopback port and hold
# its load-shedding-never-accuracy-shedding contract end to end —
# concurrent requests return byte-identical responses across pool
# widths and reuse generations, a saturated pool sheds with typed 429s
# and Retry-After (never silently), and SIGTERM drains in-flight work
# before the process exits. The telemetry stage scrapes /metricsz
# mid-load and validates it with the in-repo OpenMetrics parser,
# subscribes to /v1/events for the whole matrix and requires 100%
# agreement between streamed and per-response forensic verdicts, and
# runs the split-campaign fixture through the cross-request ledger; the
# final ledger report is kept as a CI artifact.
stage "jsk-serve smoke (determinism + overload + drain + telemetry)"
go run ./cmd/jsk-serve -smoke -ledger-report ledger-report.json || fail "jsk-serve smoke"
test -s ledger-report.json || fail "jsk-serve smoke (empty ledger report)"

echo ""
echo "== OK: all stages passed"
