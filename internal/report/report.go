// Package report renders experiment results as aligned text tables and
// plottable series — the same rows and curves the paper's tables and
// figures show.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result with a title and column headers.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = displayWidth(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && displayWidth(cell) > widths[i] {
				widths[i] = displayWidth(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", displayWidth(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - displayWidth(cell); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table in comma-separated form.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored markdown table, ready to
// paste into EXPERIMENTS.md.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// displayWidth approximates the printed width of a cell (runes, not
// bytes, so ✓/✗ align).
func displayWidth(s string) int { return len([]rune(s)) }

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the figure as long-form rows (series, x, y), ready for
// any plotting tool.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", f.Title, strings.Repeat("=", displayWidth(f.Title)))
	}
	fmt.Fprintf(&b, "%-24s  %12s  %12s\n", "series", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%-24s  %12.4f  %12.4f\n", s.Name, s.X[i], s.Y[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Sparkline returns a compact unicode rendering of a series' Y values,
// handy for eyeballing curves in terminal output.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// Check marks Table I cells.
const (
	CheckDefended   = "✓"
	CheckVulnerable = "✗"
)

// Mark converts a defended verdict into the paper's cell glyphs.
func Mark(defended bool) string {
	if defended {
		return CheckDefended
	}
	return CheckVulnerable
}
