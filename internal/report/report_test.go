package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Columns: []string{"A", "Bee"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("x", "y")
	tbl.AddRow("longer")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T\n=", "A", "Bee", "x", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowPads(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b", "c"}}
	tbl.AddRow("only")
	if len(tbl.Rows[0]) != 3 {
		t.Fatalf("row len = %d", len(tbl.Rows[0]))
	}
	tbl.AddRow("1", "2", "3", "4-dropped")
	if len(tbl.Rows[1]) != 3 {
		t.Fatalf("row len = %d", len(tbl.Rows[1]))
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{Columns: []string{"name", "value"}}
	tbl.AddRow(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"with,comma","with""quote"`) {
		t.Fatalf("csv escaping wrong: %s", b.String())
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		Title:  "F",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{{Name: "s1", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	var b strings.Builder
	if err := fig.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "s1") || !strings.Contains(b.String(), "3.0000") {
		t.Fatalf("figure render: %s", b.String())
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline = %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestMark(t *testing.T) {
	if Mark(true) != CheckDefended || Mark(false) != CheckVulnerable {
		t.Fatal("mark glyphs wrong")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{
		Title:   "M",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("x|y", "z")
	var b strings.Builder
	if err := tbl.Markdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### M", "| a | b |", "| --- | --- |", `x\|y`, "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
