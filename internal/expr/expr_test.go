package expr

import (
	"strings"
	"testing"

	"jskernel/internal/defense"
	"jskernel/internal/vuln"
)

// TestTable1PaperShape regenerates the defense matrix at quick scale and
// asserts the qualitative conclusions of the paper's Table I.
func TestTable1PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	res, err := Table1(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}

	jsk := defense.JSKernel("chrome").ID
	// JSKernel defends every row.
	for id, byDef := range res.Timing {
		if out, ok := byDef[jsk]; !ok || !out.Defended {
			t.Errorf("Table I: JSKernel vulnerable to %s", id)
		}
	}
	for id, byDef := range res.CVE {
		if out, ok := byDef[jsk]; !ok || !out.Defended {
			t.Errorf("Table I: JSKernel vulnerable to %s", id)
		}
	}

	// The Legacy Three are vulnerable to every timing attack.
	for _, legacy := range []string{"chrome", "firefox", "edge"} {
		for id, byDef := range res.Timing {
			if byDef[legacy].Defended {
				t.Errorf("Table I: legacy %s unexpectedly defends %s", legacy, id)
			}
		}
	}
	// Legacy Chrome is vulnerable to all CVE rows.
	for id, byDef := range res.CVE {
		if byDef["chrome"].Defended {
			t.Errorf("Table I: legacy chrome unexpectedly defends %s", id)
		}
	}

	// DeterFox defends timing rows but loses most CVE rows.
	deterTimingDefended := 0
	for _, byDef := range res.Timing {
		if byDef["deterfox"].Defended {
			deterTimingDefended++
		}
	}
	if deterTimingDefended < 9 {
		t.Errorf("DeterFox defends only %d/10 timing rows", deterTimingDefended)
	}
	deterCVEDefended := 0
	for _, byDef := range res.CVE {
		if byDef["deterfox"].Defended {
			deterCVEDefended++
		}
	}
	if deterCVEDefended > 4 {
		t.Errorf("DeterFox defends %d/12 CVE rows; should lose most (no policies)", deterCVEDefended)
	}

	// Fuzzyfox defends the clock edge but not the large-secret rows.
	if !res.Timing["clock-edge"]["fuzzyfox"].Defended {
		t.Error("Fuzzyfox should defend the clock edge attack")
	}
	for _, id := range []string{"script-parsing", "svg-filtering", "cache-attack"} {
		if res.Timing[id]["fuzzyfox"].Defended {
			t.Errorf("Fuzzyfox should remain vulnerable to %s (averaging)", id)
		}
	}

	// Tor's coarse clocks do not touch implicit clocks.
	torDefended := 0
	for _, byDef := range res.Timing {
		if byDef["tor"].Defended {
			torDefended++
		}
	}
	if torDefended > 3 {
		t.Errorf("Tor defends %d/10 timing rows; implicit clocks should leak", torDefended)
	}

	// The rendered table carries every defense column and both sections.
	var b strings.Builder
	if err := res.Table.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"JSKernel", "Tor Browser", "CVE-2018-5092", "setTimeout as the implicit clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

// TestTable2PaperShape: JSKernel reports constant values (the prediction)
// for both secrets; legacy browsers differ.
func TestTable2PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 sweep")
	}
	cfg := QuickConfig()
	res, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.Defense.Kind {
		case defense.KindJSKernel:
			if row.SVGLeaks || row.LoopLeaks {
				t.Errorf("JSKernel row leaks: svg=%v loop=%v", row.SVGLeaks, row.LoopLeaks)
			}
			if row.SVGLow != row.SVGHigh {
				t.Errorf("JSKernel SVG values differ: %.2f vs %.2f (should be the constant prediction)",
					row.SVGLow, row.SVGHigh)
			}
			// Loopscan under JSKernel: the deterministic quantum (~1ms,
			// with at most a one-quantum boundary artifact), and crucially
			// indistinguishable across sites.
			if row.LoopGoogle > 2.5 || row.LoopYoutube > 2.5 {
				t.Errorf("JSKernel loopscan gaps = %.2f/%.2f ms, want ~1ms quantum",
					row.LoopGoogle, row.LoopYoutube)
			}
		case defense.KindLegacy:
			if !row.SVGLeaks {
				t.Errorf("%s SVG should leak", row.Defense.ID)
			}
			if !row.LoopLeaks {
				t.Errorf("%s loopscan should leak", row.Defense.ID)
			}
			if row.SVGHigh <= row.SVGLow {
				t.Errorf("%s: high-res load (%.2f) not slower than low-res (%.2f)",
					row.Defense.ID, row.SVGHigh, row.SVGLow)
			}
		}
	}
}

// TestTable3PaperShape: JSKernel's loading overhead is within a few
// percent of the base browser on every subtest.
func TestTable3PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("raptor sweep")
	}
	cfg := QuickConfig()
	res, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("subtests = %d", len(res.Cells))
	}
	for site, byDef := range res.Cells {
		for base, kernel := range map[string]string{
			"chrome":  "jskernel-chrome",
			"firefox": "jskernel-firefox",
		} {
			b, ok1 := byDef[base]
			k, ok2 := byDef[kernel]
			if !ok1 || !ok2 {
				t.Fatalf("%s: missing cells", site)
			}
			ratio := k.Summary.Mean / b.Summary.Mean
			if ratio < 0.85 || ratio > 1.25 {
				t.Errorf("%s: %s/%s load ratio = %.3f, want near 1",
					site, kernel, base, ratio)
			}
		}
	}
}

// TestFig2PaperShape: reported time grows with size everywhere except the
// deterministic kernel, whose curve is flat.
func TestFig2PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 sweep")
	}
	cfg := QuickConfig()
	res, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id, slope := range res.SlopeMsPerMB {
		switch id {
		case "jskernel-chrome":
			if slope > 0.5 {
				t.Errorf("JSKernel Fig2 slope = %.2f ms/MB, want flat", slope)
			}
		case "fuzzyfox":
			// Fuzzyfox's pauses coarsen the tick clock (raising the bar)
			// but the reported time still grows with size.
			if slope < 5 {
				t.Errorf("fuzzyfox Fig2 slope = %.2f ms/MB, want increasing", slope)
			}
		default:
			// ~0.84s transfer per MB on the ADSL model: slopes are
			// hundreds of ms per MB for every other leaky defense.
			if slope < 100 {
				t.Errorf("%s Fig2 slope = %.2f ms/MB, want clearly increasing", id, slope)
			}
		}
	}
}

// TestFig3PaperShape: JSKernel hugs its base browser; Tor and Fuzzyfox
// are the slow outliers; Chrome Zero is slower than JSKernel.
func TestFig3PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("alexa sweep")
	}
	cfg := QuickConfig()
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chrome := res.Median["chrome"]
	jsk := res.Median["jskernel-chrome"]
	cz := res.Median["chromezero"]
	tor := res.Median["tor"]
	fuzzy := res.Median["fuzzyfox"]
	firefox := res.Median["firefox"]
	deter := res.Median["deterfox"]

	if rel := (jsk - chrome) / chrome; rel < -0.05 || rel > 0.10 {
		t.Errorf("JSKernel median %.1f vs Chrome %.1f (%.1f%%); want minimal overhead", jsk, chrome, rel*100)
	}
	if cz <= jsk {
		t.Errorf("Chrome Zero median %.1f should exceed JSKernel %.1f", cz, jsk)
	}
	if tor <= chrome*1.5 {
		t.Errorf("Tor median %.1f should be a slow outlier vs Chrome %.1f", tor, chrome)
	}
	if fuzzy <= firefox {
		t.Errorf("Fuzzyfox median %.1f should exceed Firefox %.1f", fuzzy, firefox)
	}
	if rel := (deter - firefox) / firefox; rel > 0.10 {
		t.Errorf("DeterFox median %.1f far from Firefox %.1f", deter, firefox)
	}
	if len(res.Figure.Series) != 8 {
		t.Errorf("figure series = %d, want 8", len(res.Figure.Series))
	}
}

func TestDromaeoReport(t *testing.T) {
	rep, err := Dromaeo(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstTest != "dom-attr" {
		t.Errorf("worst test = %s, want dom-attr", rep.WorstTest)
	}
	if rep.MeanOverhead < 0 || rep.MeanOverhead > 0.08 {
		t.Errorf("mean overhead = %.2f%%", rep.MeanOverhead*100)
	}
	if rep.MedianOverhead > rep.MeanOverhead {
		t.Errorf("median (%.3f) should not exceed mean (%.3f): distribution is skewed by dom-attr",
			rep.MedianOverhead, rep.MeanOverhead)
	}
}

func TestWorkerBenchReport(t *testing.T) {
	rep, err := WorkerBench(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead < -0.05 || rep.Overhead > 0.10 {
		t.Errorf("worker overhead = %.2f%%, want ~1%%", rep.Overhead*100)
	}
}

func TestCompatReport(t *testing.T) {
	if testing.Short() {
		t.Skip("site sweep")
	}
	rep, err := Compat(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FractionHigh < 0.85 {
		t.Errorf("only %.0f%% of sites reach 99%% similarity; paper reports ~90%%", rep.FractionHigh*100)
	}
}

func TestAppsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("app sweep")
	}
	rep, err := Apps(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	jsk := rep.Diffs["jskernel-firefox"]
	deter := rep.Diffs["deterfox"]
	fuzzy := rep.Diffs["fuzzyfox"]
	if !(jsk <= deter && deter <= fuzzy) {
		t.Errorf("observable-difference ordering: jsk=%d deterfox=%d fuzzyfox=%d", jsk, deter, fuzzy)
	}
	if vuln.CVE20185092 == "" { // keep the vuln import for CVE id reuse below
		t.Fatal("unreachable")
	}
}
