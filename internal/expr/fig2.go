package expr

import (
	"fmt"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/stats"
)

// fig2Defenses are Figure 2's series, in legend order.
func fig2Defenses() []defense.Defense {
	return []defense.Defense{
		defense.Chrome(), defense.Firefox(), defense.Edge(),
		defense.JSKernel("chrome"), defense.ChromeZero(),
		defense.TorBrowser(), defense.Fuzzyfox(),
	}
}

// Fig2Result holds the script-parsing curves plus fitted slopes.
type Fig2Result struct {
	// ReportedMs[defenseID][i] is the mean reported time for SizesMB[i].
	ReportedMs map[string][]float64
	SizesMB    []int
	// SlopeMsPerMB quantifies the leak: reported-time growth per MB.
	SlopeMsPerMB map[string]float64
	Figure       *report.Figure
}

// Fig2 sweeps the script parsing attack over file sizes under each
// defense: every defense but JSKernel (and other deterministic ones)
// shows reported time growing with size.
func Fig2(cfg Config) (*Fig2Result, error) {
	res := &Fig2Result{
		ReportedMs:   make(map[string][]float64),
		SizesMB:      cfg.Fig2SizesMB,
		SlopeMsPerMB: make(map[string]float64),
	}
	fig := &report.Figure{
		Title:  "Figure 2: Script Parsing Attack with Asynchronous Clock",
		XLabel: "size (MB)",
		YLabel: "reported (ms)",
	}
	for _, d := range fig2Defenses() {
		var xs, ys []float64
		var means []float64
		for i, mb := range cfg.Fig2SizesMB {
			var samples []float64
			for rep := 0; rep < cfg.Fig2Reps; rep++ {
				env := d.NewEnv(defense.EnvOptions{Seed: cfg.Seed + int64(i*100+rep)})
				ms, err := attack.MeasureScriptParseMs(env, int64(mb)*1_000_000)
				if err != nil {
					return nil, fmt.Errorf("fig2 %s %dMB: %w", d.ID, mb, err)
				}
				samples = append(samples, ms)
			}
			mean := stats.Mean(samples)
			means = append(means, mean)
			xs = append(xs, float64(mb))
			ys = append(ys, mean)
		}
		res.ReportedMs[d.ID] = means
		res.SlopeMsPerMB[d.ID] = stats.LinearSlope(xs, ys)
		fig.Series = append(fig.Series, report.Series{Name: d.Label, X: xs, Y: ys})
	}
	res.Figure = fig
	return res, nil
}
