package expr

import (
	"bytes"
	"reflect"
	"testing"

	"jskernel/internal/attack"
	"jskernel/internal/trace"
)

// table1Run captures everything observable about one Table I run: the
// rendered table, the full outcome maps, and the validated merged
// trace. The parallel runner's contract is that none of it depends on
// the worker-pool width.
type table1Run struct {
	table   []byte
	timing  map[string]map[string]attack.Outcome
	cve     map[string]map[string]attack.Outcome
	trace   []byte
	metrics *trace.Metrics
}

func runTable1AtWidth(t *testing.T, width int) table1Run {
	t.Helper()
	cfg := QuickConfig()
	// Two reps keep the rep-merge path honest (rep order matters in
	// MergeSamples) while holding three full traced Table I runs inside
	// the race-detector stage's time budget.
	cfg.Reps = 2
	cfg.Parallel = width
	cfg.Trace = trace.NewSession()
	res, err := Table1(cfg)
	if err != nil {
		t.Fatalf("Table1(parallel=%d): %v", width, err)
	}
	cfg.Trace.Close()
	recs := cfg.Trace.Records()
	if len(recs) == 0 {
		t.Fatalf("parallel=%d: merged trace is empty", width)
	}
	if _, err := trace.Validate(recs); err != nil {
		t.Fatalf("parallel=%d: merged trace violates kernel invariants: %v", width, err)
	}
	var tb, trc bytes.Buffer
	if err := res.Table.Render(&tb); err != nil {
		t.Fatalf("render: %v", err)
	}
	if err := trace.WriteText(&trc, recs); err != nil {
		t.Fatalf("trace render: %v", err)
	}
	return table1Run{
		table:   tb.Bytes(),
		timing:  res.Timing,
		cve:     res.CVE,
		trace:   trc.Bytes(),
		metrics: cfg.Trace.Metrics(),
	}
}

func assertRunsEqual(t *testing.T, label string, a, b table1Run) {
	t.Helper()
	if !bytes.Equal(a.table, b.table) {
		t.Errorf("%s: rendered tables differ:\n--- a ---\n%s\n--- b ---\n%s", label, a.table, b.table)
	}
	if !reflect.DeepEqual(a.timing, b.timing) {
		t.Errorf("%s: timing outcome maps differ (samples, channels, or verdicts)", label)
	}
	if !reflect.DeepEqual(a.cve, b.cve) {
		t.Errorf("%s: CVE outcome maps differ", label)
	}
	if !bytes.Equal(a.trace, b.trace) {
		t.Errorf("%s: merged traces differ (%d vs %d bytes)", label, len(a.trace), len(b.trace))
	}
	if !reflect.DeepEqual(a.metrics, b.metrics) {
		t.Errorf("%s: trace metrics differ:\n a: %+v\n b: %+v", label, a.metrics, b.metrics)
	}
}

// TestTable1ParallelByteIdentical is the determinism guard for the
// worker pool: Table I evaluated serially and on an 8-wide pool must
// agree on every byte — rendered table, per-cell outcomes including raw
// samples, and the validated merged kernel trace — and a second 8-wide
// run must reproduce the first exactly.
func TestTable1ParallelByteIdentical(t *testing.T) {
	serial := runTable1AtWidth(t, 1)
	par := runTable1AtWidth(t, 8)
	assertRunsEqual(t, "serial vs parallel(8)", serial, par)

	again := runTable1AtWidth(t, 8)
	assertRunsEqual(t, "parallel(8) vs parallel(8)", par, again)
}

// TestTable2Table3ParallelByteIdentical extends the width-independence
// guard to the other cell-parallel table drivers (untraced, to keep the
// test quick — Table I above covers trace merging).
func TestTable2Table3ParallelByteIdentical(t *testing.T) {
	render := func(width int) []byte {
		cfg := QuickConfig()
		cfg.Parallel = width
		var buf bytes.Buffer
		t2, err := Table2(cfg)
		if err != nil {
			t.Fatalf("Table2(parallel=%d): %v", width, err)
		}
		if err := t2.Table.Render(&buf); err != nil {
			t.Fatal(err)
		}
		t3, err := Table3(cfg)
		if err != nil {
			t.Fatalf("Table3(parallel=%d): %v", width, err)
		}
		if err := t3.Table.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(1), render(8)) {
		t.Fatal("Table II/III output depends on the worker-pool width")
	}
}
