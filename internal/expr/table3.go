package expr

import (
	"fmt"

	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/trace"
	"jskernel/internal/workload"
)

// Table3Result holds the Raptor tp6-1 loading times (Table III).
type Table3Result struct {
	// Cells[site][defenseID] is the summary of hero load times.
	Cells map[string]map[string]workload.RaptorResult
	Table *report.Table
}

// table3Defenses are Table III's four columns.
func table3Defenses() []defense.Defense {
	return []defense.Defense{
		defense.Chrome(), defense.JSKernel("chrome"),
		defense.Firefox(), defense.JSKernel("firefox"),
	}
}

// Table3 runs the Raptor tp6-1 subtests under Chrome and Firefox with and
// without JSKernel.
//
// Each (defense, site) pair is one cell on the cfg.Parallel worker
// pool. Unlike Table I/II, cells deliberately ignore the derived
// per-cell seed: Table III is a matched-pairs comparison, so every
// defense column loads a site with the same cfg.Seed-keyed visit
// sequence (RunRaptorSuite folds site.Rank into the env seeds) and
// column differences isolate the defense's own overhead.
func Table3(cfg Config) (*Table3Result, error) {
	res := &Table3Result{Cells: make(map[string]map[string]workload.RaptorResult)}
	defs := table3Defenses()
	sites := workload.RaptorSubtests()
	cols := []string{"Subtest"}
	for _, d := range defs {
		cols = append(cols, d.Label)
	}
	tbl := &report.Table{
		Title:   "Table III: Average Website Loading Time in Raptor-tp6-1 (ms, mean±std)",
		Columns: cols,
		Notes: []string{
			fmt.Sprintf("%d loads per subtest, first skipped (tab-open effects)", cfg.RaptorLoads),
		},
	}

	nCells := len(defs) * len(sites)
	cells, err := runCells(cfg, nCells, func(i int, _ int64, tr *trace.Session) (workload.RaptorResult, error) {
		d := cfg.tracedWith(defs[i/len(sites)], tr)
		site := sites[i%len(sites)]
		results, err := workload.RunRaptorSuite(d, []workload.Site{site}, cfg.RaptorLoads, cfg.Seed)
		if err != nil {
			return workload.RaptorResult{}, fmt.Errorf("table3 %s: %w", d.ID, err)
		}
		return results[0], nil
	})
	if err != nil {
		return nil, err
	}

	bySite := make(map[string][]string)
	var siteOrder []string
	for di, d := range defs {
		for si := range sites {
			r := cells[di*len(sites)+si]
			if res.Cells[r.Site] == nil {
				res.Cells[r.Site] = make(map[string]workload.RaptorResult)
				siteOrder = append(siteOrder, r.Site)
			}
			res.Cells[r.Site][d.ID] = r
			bySite[r.Site] = append(bySite[r.Site],
				fmt.Sprintf("%.1f±%.1f", r.Summary.Mean, r.Summary.StdDev))
		}
	}
	for _, site := range siteOrder {
		tbl.AddRow(append([]string{site}, bySite[site]...)...)
	}
	res.Table = tbl
	return res, nil
}
