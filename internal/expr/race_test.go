package expr

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestRaceTable1 is the race re-judging gate for Table I's CVE half:
// every exploited cell shows at least one happens-before race on the
// CVE's channel target class, every defended cell shows none, the race
// matrix is byte-identical between serial and 8-wide parallel
// execution, and the race-judged verdicts equal the plain Table I
// verdicts (the detector never perturbs execution).
func TestRaceTable1(t *testing.T) {
	cfg := forensicsConfig()
	cfg.Parallel = 1
	serial, err := RaceTable1(cfg)
	if err != nil {
		t.Fatalf("RaceTable1 serial: %v", err)
	}

	if len(serial.Mismatches) != 0 {
		for _, m := range serial.Mismatches {
			t.Errorf("race mismatch: %s", m)
		}
		t.Fatalf("%d cells disagree between race and actual verdicts", len(serial.Mismatches))
	}
	for _, c := range serial.Cells {
		if c.Channel == "" {
			t.Errorf("cell %s/%s has no channel class", c.Row, c.Defense)
		}
		if c.ActualDefended && c.ChannelRaces != 0 {
			t.Errorf("defended cell %s/%s shows %d races on %q", c.Row, c.Defense, c.ChannelRaces, c.Channel)
		}
		if !c.ActualDefended && c.ChannelRaces == 0 {
			t.Errorf("exploited cell %s/%s shows no race on %q", c.Row, c.Defense, c.Channel)
		}
		if c.Flagged {
			if len(c.Findings) == 0 {
				t.Errorf("flagged cell %s/%s carries no findings", c.Row, c.Defense)
			}
			for _, f := range c.Findings {
				if f.Class != c.Channel {
					t.Errorf("cell %s/%s finding on class %q, want channel %q", c.Row, c.Defense, f.Class, c.Channel)
				}
				if len(f.Evidence) != 2 {
					t.Errorf("cell %s/%s finding without a two-site evidence chain: %v", c.Row, c.Defense, f.Evidence)
				}
				if f.Second.VC == "" {
					t.Errorf("cell %s/%s finding without vector-clock annotation", c.Row, c.Defense)
				}
			}
		} else if len(c.Findings) != 0 {
			t.Errorf("unflagged cell %s/%s carries findings", c.Row, c.Defense)
		}
	}
	if len(serial.Findings()) == 0 {
		t.Fatalf("no flagged cells at all: legacy browsers should be exploited")
	}

	cfgPar := cfg
	cfgPar.Parallel = 8
	parallel, err := RaceTable1(cfgPar)
	if err != nil {
		t.Fatalf("RaceTable1 parallel: %v", err)
	}
	sb := mustJSON(t, serial)
	pb := mustJSON(t, parallel)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("race matrix differs between -parallel 1 and -parallel 8")
	}

	// Cross-check: racing the cells reaches exactly the verdicts the
	// plain Table I run reaches.
	t1, err := Table1(cfgPar)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	for _, c := range serial.Cells {
		want, ok := t1.Defended(c.Row, c.Defense)
		if !ok {
			t.Fatalf("Table1 has no cell %s/%s", c.Row, c.Defense)
		}
		if c.ActualDefended != want {
			t.Errorf("cell %s/%s: race-run verdict defended=%v, Table1 says %v",
				c.Row, c.Defense, c.ActualDefended, want)
		}
	}
}

// TestRaceGoldenCVE20185092 pins the race report for the CVE-2018-5092
// row against a checked-in golden file (use -update to regenerate after
// an intentional behaviour change). The golden carries the full
// findings: both access sites, epochs and vector clocks.
func TestRaceGoldenCVE20185092(t *testing.T) {
	cfg := forensicsConfig()
	cfg.Parallel = 8
	res, err := RaceTable1(cfg)
	if err != nil {
		t.Fatalf("RaceTable1: %v", err)
	}
	var row []RaceCell
	for _, c := range res.Cells {
		if c.Row == "CVE-2018-5092" {
			row = append(row, c)
		}
	}
	if len(row) == 0 {
		t.Fatalf("no CVE-2018-5092 cells in the race matrix")
	}
	got := mustJSON(t, row)

	checkGolden(t, filepath.Join("testdata", "races_cve-2018-5092.golden.json"), got)
}
