package expr

import (
	"strings"
	"testing"
)

// TestChaosNoWeakenedVerdicts is the survival claim: re-running the
// Table I matrix under every standard fault plan must not flip any
// defended cell to vulnerable.
func TestChaosNoWeakenedVerdicts(t *testing.T) {
	res, err := Chaos(QuickConfig())
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if len(res.Plans) < 3 {
		t.Fatalf("expected >=3 fault plans, got %d", len(res.Plans))
	}
	for _, pr := range res.Plans {
		if pr.Faults.Total() == 0 {
			t.Errorf("plan %s injected zero faults — the chaos run proves nothing", pr.Plan.Name)
		}
		for _, f := range pr.Weakened {
			t.Errorf("plan %s weakened %s", pr.Plan.Name, f)
		}
		for _, f := range pr.Masked {
			t.Errorf("plan %s masked %s (tune plan rates down)", pr.Plan.Name, f)
		}
		if pr.Cells == 0 {
			t.Errorf("plan %s compared zero cells", pr.Plan.Name)
		}
	}
}

// TestChaosDeterminism re-runs the whole chaos experiment and requires
// the rendered report — verdicts, flip lists and fault counts — to be
// byte-identical: a run is a pure function of (defense, workload,
// fault plan, seed).
func TestChaosDeterminism(t *testing.T) {
	render := func() string {
		res, err := Chaos(QuickConfig())
		if err != nil {
			t.Fatalf("Chaos: %v", err)
		}
		var sb strings.Builder
		if err := res.Table.Render(&sb); err != nil {
			t.Fatalf("render: %v", err)
		}
		for _, pr := range res.Plans {
			if err := pr.Matrix.Table.Render(&sb); err != nil {
				t.Fatalf("render: %v", err)
			}
			sb.WriteString(pr.Faults.String())
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("chaos experiment is not reproducible:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
