package expr

import (
	"fmt"
	"sort"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/policy"
	"jskernel/internal/report"
	"jskernel/internal/workload"
)

// This file implements the ablation studies DESIGN.md calls out: how the
// kernel's design parameters trade security against compatibility and
// overhead.
//
//   A1  scheduling quantum sweep — a coarser logical clock costs nothing
//       in security (determinism is what defends, not granularity) but
//       degrades compatibility: apps that read time see coarser values.
//   A2  policy ablation — deterministic scheduling alone defeats the
//       timing rows but leaves the CVE rows exploitable; rules alone
//       (hypothetically, without determinism) would do the reverse.

// QuantumAblationRow is one row of the quantum sweep.
type QuantumAblationRow struct {
	QuantumMicros int64
	// SVGDefended reports whether the SVG filtering attack stays defeated.
	SVGDefended bool
	// AppDiffs counts observably different CodePen apps (of 20).
	AppDiffs int
	// DromaeoMean is the mean micro-benchmark overhead fraction.
	DromaeoMean float64
}

// QuantumAblation sweeps the kernel's scheduling quantum.
func QuantumAblation(cfg Config) ([]QuantumAblationRow, *report.Table, error) {
	quanta := []int64{100, 1000, 4000, 16_000}
	rows := make([]QuantumAblationRow, 0, len(quanta))
	tbl := &report.Table{
		Title:   "Ablation A1: scheduling quantum vs security / compatibility / overhead",
		Columns: []string{"Quantum (µs)", "SVG defended", "App diffs (of 20)", "Dromaeo overhead"},
		Notes: []string{
			"determinism defends at every quantum; compatibility degrades as the logical clock coarsens",
		},
	}
	for _, q := range quanta {
		p := policy.FullDefense()
		p.PolicyName = fmt.Sprintf("jskernel-q%dus", q)
		p.QuantumMicros = q
		d := defense.JSKernelWithPolicy("chrome", p.PolicyName, p)

		svg := attack.SVGFilteringAttack().Evaluate(d, cfg.Reps, cfg.Seed)

		diffs, _, err := workload.CompatCount(d, defense.Chrome(), cfg.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("ablation quantum %d: %w", q, err)
		}

		base, err := workload.RunDromaeo(defense.Chrome(), cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		with, err := workload.RunDromaeo(d, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		over := workload.DromaeoOverheads(base, with)
		// Sum in sorted key order — float accumulation in map order
		// would perturb low bits between identical runs.
		overIDs := make([]string, 0, len(over))
		for id := range over {
			overIDs = append(overIDs, id)
		}
		sort.Strings(overIDs)
		mean := 0.0
		for _, id := range overIDs {
			mean += over[id]
		}
		if len(over) > 0 {
			mean /= float64(len(over))
		}

		row := QuantumAblationRow{
			QuantumMicros: q,
			SVGDefended:   svg.Defended,
			AppDiffs:      diffs,
			DromaeoMean:   mean,
		}
		rows = append(rows, row)
		tbl.AddRow(
			fmt.Sprintf("%d", q),
			report.Mark(row.SVGDefended),
			fmt.Sprintf("%d", row.AppDiffs),
			fmt.Sprintf("%.2f%%", row.DromaeoMean*100),
		)
	}
	return rows, tbl, nil
}

// PolicyAblationRow is one row of the policy-component ablation.
type PolicyAblationRow struct {
	Config        string
	TimingBlocked int // of 2 probed timing attacks
	CVEBlocked    int // of 12 CVEs
}

// PolicyAblation compares the kernel's two mechanisms in isolation:
// deterministic scheduling without CVE rules, and the full defense.
func PolicyAblation(cfg Config) ([]PolicyAblationRow, *report.Table, error) {
	detOnly := policy.Deterministic()
	detOnly.PolicyName = "det-only"
	variants := []struct {
		name string
		d    defense.Defense
	}{
		{"deterministic scheduling only", defense.JSKernelWithPolicy("chrome", "jskernel-det-only", detOnly)},
		{"deterministic + CVE policies (full)", defense.JSKernel("chrome")},
	}
	probes := []*attack.TimingAttack{attack.SVGFilteringAttack(), attack.CacheAttack()}

	rows := make([]PolicyAblationRow, 0, len(variants))
	tbl := &report.Table{
		Title:   "Ablation A2: which mechanism defends what",
		Columns: []string{"Configuration", "Timing attacks blocked", "CVEs blocked"},
		Notes: []string{
			"determinism alone defeats implicit clocks; only the manually specified (or synthesized) policies break CVE trigger sequences",
		},
	}
	for _, v := range variants {
		row := PolicyAblationRow{Config: v.name}
		for _, a := range probes {
			if a.Evaluate(v.d, cfg.Reps, cfg.Seed).Defended {
				row.TimingBlocked++
			}
		}
		for _, a := range attack.CVEAttacks() {
			if attack.EvaluateCVE(a, v.d, cfg.Seed).Defended {
				row.CVEBlocked++
			}
		}
		rows = append(rows, row)
		tbl.AddRow(v.name,
			fmt.Sprintf("%d / %d", row.TimingBlocked, len(probes)),
			fmt.Sprintf("%d / 12", row.CVEBlocked))
	}
	return rows, tbl, nil
}
