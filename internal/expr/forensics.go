package expr

import (
	"fmt"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/expr/runner"
	"jskernel/internal/obs"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// Online attack forensics over the Table I matrix: every cell runs with
// observability events on, streaming its trace into the obs layer, and
// the forensic verdict — reconstructed from the event stream alone — is
// compared against the actual experiment verdict computed from the
// harness's own measurements. The two must agree on every cell: an
// undefended cell is flagged, a defended cell produces no finding.
//
// Cells are enumerated, seeded and assembled exactly like table1Matrix
// (same index arithmetic, same sim.DeriveSeed stream), so the forensic
// matrix is deterministic at any parallel width and its actual verdicts
// are identical to Table1's. Observability events never perturb
// execution, which is what keeps the two matrices comparable.

// ForensicsCell is one (row, defense) cell of the forensic matrix.
type ForensicsCell struct {
	// Row is the attack ID (timing rows) or CVE (lower half).
	Row string `json:"row"`
	// Defense is the defense column ID.
	Defense string `json:"defense"`
	// Kind is "timing" or "cve".
	Kind string `json:"kind"`
	// ActualDefended is the experiment's own verdict for the cell.
	ActualDefended bool `json:"actual_defended"`
	// Flagged is the forensic verdict: the obs layer concluded from the
	// event stream that the attack succeeded.
	Flagged bool `json:"flagged"`
	// Channels carries the forensic per-channel statistics (timing rows).
	Channels []obs.ChannelVerdict `json:"channels,omitempty"`
	// Evidence cites the record sequence numbers that triggered the CVE
	// mirror (CVE rows of flagged cells).
	Evidence []uint64 `json:"evidence,omitempty"`
	// Signatures are the streaming detectors' findings for the cell's
	// first repetition (flagged cells only): the attack-construction
	// evidence accompanying the verdict.
	Signatures []obs.Signature `json:"signatures,omitempty"`
}

// ForensicsResult is the full forensic matrix.
type ForensicsResult struct {
	Cells []ForensicsCell `json:"cells"`
	// Mismatches lists cells where the forensic verdict disagrees with
	// the actual verdict; empty in a healthy run.
	Mismatches []string `json:"mismatches"`
}

// Findings returns the flagged cells — the forensic report's findings.
// Defended cells never appear here.
func (r *ForensicsResult) Findings() []ForensicsCell {
	var out []ForensicsCell
	for _, c := range r.Cells {
		if c.Flagged {
			out = append(out, c)
		}
	}
	return out
}

// forensicsCellOut is one scheduled cell's raw result.
type forensicsCellOut struct {
	samples  attack.RepSamples
	readings obs.CellReadings
	out      attack.Outcome
	flagged  bool
	evidence []uint64
	sigs     []obs.Signature
}

// ForensicsTable1 runs the Table I matrix with streaming forensics.
// Every cell traces into its own retain-off session (cfg.Trace is not
// used: the obs consumers see each cell's stream directly and nothing
// needs to be buffered or absorbed).
func ForensicsTable1(cfg Config) (*ForensicsResult, error) {
	reps := cfg.Reps
	if reps <= 0 {
		reps = attack.Reps
	}
	defenses := defense.TableIDefenses()

	// Canonical row order, identical to table1Matrix.
	group := "setTimeout"
	var timingRows []*attack.TimingAttack
	for _, a := range attack.TimingAttacks() {
		if a.ClockGroup == group {
			timingRows = append(timingRows, a)
		}
	}
	for _, a := range attack.TimingAttacks() {
		if a.ClockGroup != group {
			timingRows = append(timingRows, a)
		}
	}
	cveRows := attack.CVEAttacks()

	perDefense := reps
	perTimingRow := len(defenses) * perDefense
	nTiming := len(timingRows) * perTimingRow
	nCells := nTiming + len(cveRows)*len(defenses)

	outs := runner.Map(cfg.Parallel, nCells, func(i int) forensicsCellOut {
		seed := sim.DeriveSeed(cfg.Seed, int64(i))
		sess := trace.NewSession()
		sess.SetRetain(false)
		col := obs.NewCollector()
		det := obs.NewDetectors(obs.DefaultDetectorConfig())
		sess.Attach(col)
		sess.Attach(det)

		var out forensicsCellOut
		if i < nTiming {
			a := timingRows[i/perTimingRow]
			rem := i % perTimingRow
			d := defenses[rem/perDefense].WithTracer(sess).WithObs(true)
			out.samples = a.MeasureRep(d, seed)
			sess.Close()
			// MeasureRep builds the variant-0 environment first, so the
			// session's runs 1 and 2 are the two secret variants in order.
			for v := 0; v < 2; v++ {
				out.readings.Variants[v] = obs.ExtractReadings(a.ID, col.Run(v+1))
			}
		} else {
			j := i - nTiming
			a := cveRows[j/len(defenses)]
			d := defenses[j%len(defenses)].WithTracer(sess).WithObs(true)
			out.out = attack.EvaluateCVE(a, d, seed)
			sess.Close()
			out.flagged, out.evidence = obs.MirrorExploited(col.Run(1), a.CVE)
		}
		out.sigs = det.Finish()
		return out
	})

	res := &ForensicsResult{Mismatches: []string{}}
	addCell := func(c ForensicsCell) {
		res.Cells = append(res.Cells, c)
		if c.Flagged == c.ActualDefended {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"%s/%s: actual defended=%v, forensic flagged=%v",
				c.Row, c.Defense, c.ActualDefended, c.Flagged))
		}
	}

	for ri, a := range timingRows {
		for di, d := range defenses {
			base := ri*perTimingRow + di*perDefense
			parts := make([]attack.RepSamples, reps)
			repReadings := make([]obs.CellReadings, reps)
			for rep := 0; rep < reps; rep++ {
				parts[rep] = outs[base+rep].samples
				repReadings[rep] = outs[base+rep].readings
			}
			actual := a.AssembleOutcome(d.ID, attack.MergeSamples(parts))
			verdicts, forensicDefended := obs.JudgeTiming(repReadings)
			cell := ForensicsCell{
				Row:            a.ID,
				Defense:        d.ID,
				Kind:           "timing",
				ActualDefended: actual.Defended,
				Flagged:        !forensicDefended,
				Channels:       verdicts,
			}
			if cell.Flagged {
				cell.Signatures = outs[base].sigs
			}
			addCell(cell)
		}
	}
	for ci, a := range cveRows {
		for di, d := range defenses {
			o := outs[nTiming+ci*len(defenses)+di]
			cell := ForensicsCell{
				Row:            string(a.CVE),
				Defense:        d.ID,
				Kind:           "cve",
				ActualDefended: o.out.Defended,
				Flagged:        o.flagged,
				Evidence:       o.evidence,
			}
			if cell.Flagged {
				cell.Signatures = o.sigs
			}
			addCell(cell)
		}
	}
	return res, nil
}
