package expr

import (
	"fmt"

	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/stats"
	"jskernel/internal/workload"
)

// CompatReport is the §V-B2 semi-automated compatibility test: visit each
// site with and without JSKernel and compare the serialized DOMs by
// cosine similarity.
type CompatReport struct {
	Similarities []float64
	FractionHigh float64 // fraction of sites with similarity >= 0.99
	Table        *report.Table
}

// Compat visits cfg.CompatSites synthetic Alexa sites twice — legacy
// Chrome and Chrome+JSKernel — and compares the rendered DOMs (paper: 90%
// of sites reach >= 99% similarity; the rest differ only by dynamic
// content).
func Compat(cfg Config) (*CompatReport, error) {
	sites := workload.GenerateSites(cfg.CompatSites, cfg.Seed)
	rep := &CompatReport{}
	high := 0
	for _, s := range sites {
		baseEnv := defense.Chrome().NewEnv(defense.EnvOptions{Seed: cfg.Seed + int64(s.Rank)})
		baseLoad, err := workload.LoadSite(baseEnv, s)
		if err != nil {
			return nil, fmt.Errorf("compat base %s: %w", s.Domain, err)
		}
		kEnv := defense.JSKernel("chrome").NewEnv(defense.EnvOptions{Seed: cfg.Seed + int64(s.Rank)})
		kLoad, err := workload.LoadSite(kEnv, s)
		if err != nil {
			return nil, fmt.Errorf("compat kernel %s: %w", s.Domain, err)
		}
		sim := stats.CosineSimilarity(baseLoad.DOM.TermFrequency(), kLoad.DOM.TermFrequency())
		rep.Similarities = append(rep.Similarities, sim)
		if sim >= 0.99 {
			high++
		}
	}
	rep.FractionHigh = float64(high) / float64(len(sites))
	tbl := &report.Table{
		Title:   "Compatibility: DOM cosine similarity with vs without JSKernel",
		Columns: []string{"Metric", "Value"},
	}
	tbl.AddRow("sites visited", fmt.Sprintf("%d", len(sites)))
	tbl.AddRow("similarity >= 99%", fmt.Sprintf("%.1f%%", rep.FractionHigh*100))
	tbl.AddRow("median similarity", fmt.Sprintf("%.4f", stats.Median(rep.Similarities)))
	tbl.AddRow("minimum similarity", fmt.Sprintf("%.4f", stats.Percentile(rep.Similarities, 0)))
	rep.Table = tbl
	return rep, nil
}

// AppsReport is the §V-B1 API-specific CodePen study.
type AppsReport struct {
	// Diffs[defenseID] counts apps with observable differences (of 20).
	Diffs map[string]int
	Total int
	Table *report.Table
}

// Apps runs the 20 CodePen apps under the Firefox-based defenses and
// counts observable differences against legacy Firefox (paper: JSKernel
// 4/20, DeterFox 7/20, Fuzzyfox 13/20).
func Apps(cfg Config) (*AppsReport, error) {
	rep := &AppsReport{Diffs: make(map[string]int)}
	baseline := defense.Firefox()
	tested := []defense.Defense{
		defense.JSKernel("firefox"), defense.DeterFox(), defense.Fuzzyfox(),
	}
	tbl := &report.Table{
		Title:   "API-specific compatibility: apps with observable differences vs Firefox",
		Columns: []string{"Defense", "Apps with differences"},
	}
	for _, d := range tested {
		diffs, total, err := workload.CompatCount(d, baseline, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("apps %s: %w", d.ID, err)
		}
		rep.Diffs[d.ID] = diffs
		rep.Total = total
		tbl.AddRow(d.Label, fmt.Sprintf("%d / %d", diffs, total))
	}
	rep.Table = tbl
	return rep, nil
}
