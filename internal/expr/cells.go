package expr

import (
	"jskernel/internal/expr/runner"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// This file adapts the experiment drivers to the worker pool in
// internal/expr/runner. A driver flattens its matrix into cells —
// independent units of work that build their own environments — and
// runCells executes them at cfg.Parallel width while keeping every
// observable output byte-identical to a serial run:
//
//   - seeds: each cell receives sim.DeriveSeed(cfg.Seed, index), a pure
//     function of its position in the canonical enumeration, never of
//     which worker ran it or when. (Matched-pair drivers like Table III
//     deliberately ignore the derived seed and share cfg.Seed across
//     columns — the pairing is the experiment.)
//   - traces: each cell traces into a private session; the parts are
//     absorbed into cfg.Trace in cell-index order after the pool
//     drains, so the merged trace is independent of completion order.
//   - errors: the lowest-index cell error is returned, exactly the one
//     a serial loop would have hit first.

// cellResult pairs one cell's value with its error and trace part.
type cellResult[T any] struct {
	val T
	err error
	tr  *trace.Session
}

// runCells executes n cells on the config's worker pool and returns
// their values in cell order. fn receives the cell index, the derived
// per-cell seed, and a private trace session (nil when cfg.Trace is
// nil); it must confine all mutation to state it creates itself.
func runCells[T any](cfg Config, n int, fn func(i int, seed int64, tr *trace.Session) (T, error)) ([]T, error) {
	outs := runner.Map(cfg.Parallel, n, func(i int) cellResult[T] {
		var tr *trace.Session
		if cfg.Trace != nil {
			tr = trace.NewSession()
		}
		v, err := fn(i, sim.DeriveSeed(cfg.Seed, int64(i)), tr)
		if tr != nil {
			tr.Close()
		}
		return cellResult[T]{val: v, err: err, tr: tr}
	})
	vals := make([]T, n)
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		vals[i] = o.val
		if o.tr != nil {
			if err := cfg.Trace.Absorb(o.tr); err != nil {
				return nil, err
			}
		}
	}
	return vals, nil
}
