package expr

import (
	"fmt"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/report"
)

// RecoveryRow is one defense's end-to-end secret recovery accuracy.
type RecoveryRow struct {
	Defense         defense.Defense
	PixelAccuracy   float64
	HistoryAccuracy float64
}

// RecoveryReport is the extension experiment beyond Table I's
// distinguishability criterion: how much of a real secret each defense
// actually lets an attacker recover.
type RecoveryReport struct {
	Rows  []RecoveryRow
	Table *report.Table
}

// recoveryBits is the secret size per run (pixels / candidate URLs).
const recoveryBits = 48

// Recovery runs the pixel-stealing and history-sniffing recovery attacks
// under every Table I defense.
func Recovery(cfg Config) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	tbl := &report.Table{
		Title:   "Extension: end-to-end secret recovery accuracy (chance = 50%)",
		Columns: []string{"Defense", "Pixel stealing [10]", "History sniffing [9]"},
		Notes: []string{
			fmt.Sprintf("%d-bit secrets; threshold classifier calibrated by the attacker from its own measurements", recoveryBits),
		},
	}
	for _, d := range defense.TableIDefenses() {
		pix, hist, err := attack.RecoveryAccuracy(d, recoveryBits, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("recovery %s: %w", d.ID, err)
		}
		row := RecoveryRow{Defense: d, PixelAccuracy: pix, HistoryAccuracy: hist}
		rep.Rows = append(rep.Rows, row)
		tbl.AddRow(d.Label,
			fmt.Sprintf("%.0f%%", pix*100),
			fmt.Sprintf("%.0f%%", hist*100))
	}
	rep.Table = tbl
	return rep, nil
}
