package expr

import (
	"bytes"
	"encoding/json"
	"flag"
	"path/filepath"
	"testing"
)

// -update regenerates the golden forensic findings, matching the
// golden-trace harness in internal/trace.
var updateForensics = flag.Bool("update", false, "rewrite golden forensic findings")

// forensicsConfig is the shared scaled-down matrix: quick seed, three
// reps — enough for Cohen's d to separate the undefended cells while
// keeping the doubled matrix (forensics + verdict cross-check) fast.
func forensicsConfig() Config {
	cfg := QuickConfig()
	cfg.Reps = 3
	return cfg
}

// TestForensicsTable1 is the golden forensics gate: every undefended
// Table I cell is flagged from the event stream alone, defended cells
// produce zero findings, the forensic matrix is byte-identical between
// serial and 8-wide parallel execution, and running with observability
// on does not perturb the experiment's own verdicts.
func TestForensicsTable1(t *testing.T) {
	cfg := forensicsConfig()
	cfg.Parallel = 1
	serial, err := ForensicsTable1(cfg)
	if err != nil {
		t.Fatalf("ForensicsTable1 serial: %v", err)
	}

	if len(serial.Mismatches) != 0 {
		for _, m := range serial.Mismatches {
			t.Errorf("forensic mismatch: %s", m)
		}
		t.Fatalf("%d cells disagree between forensic and actual verdicts", len(serial.Mismatches))
	}
	for _, c := range serial.Cells {
		if c.ActualDefended && c.Flagged {
			t.Errorf("defended cell %s/%s produced a finding", c.Row, c.Defense)
		}
		if !c.ActualDefended && !c.Flagged {
			t.Errorf("undefended cell %s/%s not flagged", c.Row, c.Defense)
		}
	}
	findings := serial.Findings()
	if len(findings) == 0 {
		t.Fatalf("no findings at all: legacy browsers should be undefended")
	}
	for _, f := range findings {
		if !f.Flagged {
			t.Errorf("Findings returned unflagged cell %s/%s", f.Row, f.Defense)
		}
	}

	cfgPar := cfg
	cfgPar.Parallel = 8
	parallel, err := ForensicsTable1(cfgPar)
	if err != nil {
		t.Fatalf("ForensicsTable1 parallel: %v", err)
	}
	sb := mustJSON(t, serial)
	pb := mustJSON(t, parallel)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("forensic matrix differs between -parallel 1 and -parallel 8")
	}

	// Cross-check: the obs-on matrix reaches exactly the verdicts the
	// plain (obs-off) Table I run reaches — observability events never
	// perturb execution.
	t1, err := Table1(cfgPar)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	for _, c := range serial.Cells {
		want, ok := t1.Defended(c.Row, c.Defense)
		if !ok {
			t.Fatalf("Table1 has no cell %s/%s", c.Row, c.Defense)
		}
		if c.ActualDefended != want {
			t.Errorf("cell %s/%s: obs-on verdict defended=%v, obs-off Table1 says %v",
				c.Row, c.Defense, c.ActualDefended, want)
		}
	}
}

// TestForensicsGoldenCVE20185092 pins the forensic findings for the
// CVE-2018-5092 row against a checked-in golden file (use -update to
// regenerate after an intentional behaviour change).
func TestForensicsGoldenCVE20185092(t *testing.T) {
	cfg := forensicsConfig()
	cfg.Parallel = 8
	res, err := ForensicsTable1(cfg)
	if err != nil {
		t.Fatalf("ForensicsTable1: %v", err)
	}
	var row []ForensicsCell
	for _, c := range res.Cells {
		if c.Row == "CVE-2018-5092" {
			row = append(row, c)
		}
	}
	if len(row) == 0 {
		t.Fatalf("no CVE-2018-5092 cells in the forensic matrix")
	}
	got := mustJSON(t, row)

	checkGolden(t, filepath.Join("testdata", "forensics_cve-2018-5092.golden.json"), got)
}

// mustJSON marshals deterministically for byte comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return append(b, '\n')
}
