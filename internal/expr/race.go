package expr

import (
	"fmt"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/expr/runner"
	"jskernel/internal/hb"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/vuln"
)

// Race re-judging of Table I's CVE half: every (CVE, defense) cell runs
// with a streaming hb.Detector attached to its trace session, and the
// happens-before verdict — at least one data race on the CVE's channel
// target class — is compared against the experiment's own exploited/
// defended verdict. The two must agree on every cell: an exploited cell
// shows a race on its channel, a defended one shows none.
//
// Cells are seeded with the same sim.DeriveSeed stream as table1Matrix
// and ForensicsTable1 (the CVE half begins after the timing cells), so
// the actual verdicts here are identical to Table1's and the matrix is
// deterministic at any parallel width.

// cveChannel maps each CVE row to the shared-target class its race
// manifests on. The race verdict for a cell counts findings on this
// class only: races the same run produces on unrelated targets (e.g.
// DOM traffic) never flip a verdict.
var cveChannel = map[vuln.CVE]string{
	vuln.CVE20185092: "worker", // UAF: abort into a freed worker's fetch state
	vuln.CVE20177843: "idb",    // private-mode write reaching persistent state
	vuln.CVE20157215: "origin", // leaky importScripts error text
	vuln.CVE20143194: "buffer", // unserialized shared-buffer access interleaving
	vuln.CVE20141719: "worker", // terminate with messages in flight
	vuln.CVE20141488: "buffer", // transferable freed with its original owner
	vuln.CVE20141487: "origin", // cross-origin worker creation error
	vuln.CVE20136646: "worker", // delivery into a released worker slot
	vuln.CVE20135602: "worker", // onmessage-set on a terminated worker
	vuln.CVE20131714: "origin", // worker XHR skipping the same-origin check
	vuln.CVE20111190: "origin", // WorkerLocation after cross-origin redirect
	vuln.CVE20104576: "doc",    // delivery after document teardown
}

// CVEChannel exposes the CVE → channel-class mapping (jsk-race lists it).
func CVEChannel(cve vuln.CVE) (string, bool) {
	c, ok := cveChannel[cve]
	return c, ok
}

// RaceCell is one (CVE, defense) cell of the race matrix.
type RaceCell struct {
	// Row is the CVE ID.
	Row string `json:"row"`
	// Defense is the defense column ID.
	Defense string `json:"defense"`
	// ActualDefended is the experiment's own verdict for the cell.
	ActualDefended bool `json:"actual_defended"`
	// Channel is the CVE's shared-target class (the judged channel).
	Channel string `json:"channel"`
	// ChannelRaces counts deduplicated races on the channel class.
	ChannelRaces int `json:"channel_races"`
	// TotalRaces counts all races the cell produced, any class.
	TotalRaces int `json:"total_races"`
	// Flagged is the race verdict: the happens-before analysis found at
	// least one race on the CVE's channel.
	Flagged bool `json:"flagged"`
	// Findings carries the channel-class races (flagged cells only),
	// each with both access sites and vector-clock evidence.
	Findings []hb.Finding `json:"findings,omitempty"`
}

// RaceResult is the full race matrix over Table I's CVE half.
type RaceResult struct {
	Cells []RaceCell `json:"cells"`
	// Mismatches lists cells where the race verdict disagrees with the
	// actual verdict; empty in a healthy run.
	Mismatches []string `json:"mismatches"`
}

// Findings returns the flagged cells.
func (r *RaceResult) Findings() []RaceCell {
	var out []RaceCell
	for _, c := range r.Cells {
		if c.Flagged {
			out = append(out, c)
		}
	}
	return out
}

// RaceCellSeed returns the derived seed the race matrix uses for the
// cell at (rowIdx, defIdx) — the same sim.DeriveSeed stream position as
// table1Matrix, so a single cell re-run (jsk-race -cve/-defense)
// reproduces the matrix's findings exactly.
func RaceCellSeed(cfg Config, rowIdx, defIdx int) int64 {
	reps := cfg.Reps
	if reps <= 0 {
		reps = attack.Reps
	}
	nDef := len(defense.TableIDefenses())
	nTiming := len(attack.TimingAttacks()) * nDef * reps
	return sim.DeriveSeed(cfg.Seed, int64(nTiming+rowIdx*nDef+defIdx))
}

// raceCellOut is one scheduled cell's raw result.
type raceCellOut struct {
	out      attack.Outcome
	findings []hb.Finding
}

// RaceTable1 runs the CVE half of the Table I matrix with a streaming
// race detector on every cell. Each cell traces into its own retain-off
// session; nothing is buffered or absorbed.
func RaceTable1(cfg Config) (*RaceResult, error) {
	reps := cfg.Reps
	if reps <= 0 {
		reps = attack.Reps
	}
	defenses := defense.TableIDefenses()
	cveRows := attack.CVEAttacks()

	// Seed parity with table1Matrix/ForensicsTable1: the CVE cells start
	// after the timing half's derived-seed stream.
	nTiming := len(attack.TimingAttacks()) * len(defenses) * reps
	nCells := len(cveRows) * len(defenses)

	outs := runner.Map(cfg.Parallel, nCells, func(i int) raceCellOut {
		seed := sim.DeriveSeed(cfg.Seed, int64(nTiming+i))
		sess := trace.NewSession()
		sess.SetRetain(false)
		det := hb.NewDetector()
		sess.Attach(det)

		a := cveRows[i/len(defenses)]
		d := defenses[i%len(defenses)].WithTracer(sess)
		var out raceCellOut
		out.out = attack.EvaluateCVE(a, d, seed)
		sess.Close()
		out.findings = det.Findings()
		return out
	})

	res := &RaceResult{Mismatches: []string{}}
	for ci, a := range cveRows {
		for di, d := range defenses {
			o := outs[ci*len(defenses)+di]
			channel := cveChannel[a.CVE]
			cell := RaceCell{
				Row:            string(a.CVE),
				Defense:        d.ID,
				ActualDefended: o.out.Defended,
				Channel:        channel,
				TotalRaces:     len(o.findings),
			}
			for _, f := range o.findings {
				if f.Class == channel {
					cell.ChannelRaces++
					cell.Findings = append(cell.Findings, f)
				}
			}
			cell.Flagged = cell.ChannelRaces > 0
			if !cell.Flagged {
				cell.Findings = nil
			}
			res.Cells = append(res.Cells, cell)
			if cell.Flagged == cell.ActualDefended {
				res.Mismatches = append(res.Mismatches, fmt.Sprintf(
					"%s/%s: actual defended=%v, race flagged=%v (%d races on %q, %d total)",
					cell.Row, cell.Defense, cell.ActualDefended, cell.Flagged,
					cell.ChannelRaces, channel, cell.TotalRaces))
			}
		}
	}
	return res, nil
}
