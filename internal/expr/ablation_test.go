package expr

import (
	"strings"
	"testing"
)

func TestQuantumAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	cfg := QuickConfig()
	rows, tbl, err := QuantumAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.SVGDefended {
			t.Errorf("quantum %dµs: SVG attack leaked; determinism should defend at any quantum", r.QuantumMicros)
		}
		if r.DromaeoMean < -0.02 || r.DromaeoMean > 0.10 {
			t.Errorf("quantum %dµs: dromaeo overhead %.2f%% out of range", r.QuantumMicros, r.DromaeoMean*100)
		}
	}
	// Compatibility must not improve as the clock coarsens.
	if rows[0].AppDiffs > rows[len(rows)-1].AppDiffs {
		t.Errorf("app diffs shrank with coarser quantum: %d (%.1fµs) vs %d (%.1fµs)",
			rows[0].AppDiffs, float64(rows[0].QuantumMicros),
			rows[len(rows)-1].AppDiffs, float64(rows[len(rows)-1].QuantumMicros))
	}
}

func TestPolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	cfg := QuickConfig()
	rows, tbl, err := PolicyAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	detOnly, full := rows[0], rows[1]
	if detOnly.TimingBlocked != 2 {
		t.Errorf("det-only blocked %d/2 timing attacks; determinism should defeat both", detOnly.TimingBlocked)
	}
	if detOnly.CVEBlocked >= full.CVEBlocked {
		t.Errorf("det-only blocked %d CVEs vs full's %d; the CVE policies must matter",
			detOnly.CVEBlocked, full.CVEBlocked)
	}
	if full.CVEBlocked != 12 {
		t.Errorf("full defense blocked %d/12 CVEs", full.CVEBlocked)
	}
}

func TestRecoveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep")
	}
	rep, err := Recovery(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		switch r.Defense.ID {
		case "chrome", "firefox", "edge":
			if r.PixelAccuracy < 0.9 || r.HistoryAccuracy < 0.9 {
				t.Errorf("%s: recovery %.2f/%.2f, want near-perfect on legacy",
					r.Defense.ID, r.PixelAccuracy, r.HistoryAccuracy)
			}
		case "jskernel-chrome", "deterfox":
			if r.PixelAccuracy > 0.72 || r.HistoryAccuracy > 0.72 {
				t.Errorf("%s: recovery %.2f/%.2f, want near chance under determinism",
					r.Defense.ID, r.PixelAccuracy, r.HistoryAccuracy)
			}
		}
	}
}

// TestExperimentsReproducible: the experiments themselves are pure
// functions of (config) — two runs render byte-identical artifacts.
func TestExperimentsReproducible(t *testing.T) {
	cfg := QuickConfig()
	render := func() string {
		res, err := Table2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b1 strings.Builder
		if err := res.Table.Render(&b1); err != nil {
			t.Fatal(err)
		}
		fig, err := Fig2(Config{Seed: cfg.Seed, Reps: 2, Fig2SizesMB: []int{2, 6}, Fig2Reps: 2})
		if err != nil {
			t.Fatal(err)
		}
		var b2 strings.Builder
		if err := fig.Figure.Render(&b2); err != nil {
			t.Fatal(err)
		}
		return b1.String() + b2.String()
	}
	if render() != render() {
		t.Fatal("experiment artifacts are not reproducible run to run")
	}
}
