package runner

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapMatchesSerial pins the core property: any pool width returns
// exactly what the width-1 loop returns, in the same order.
func TestMapMatchesSerial(t *testing.T) {
	fn := func(i int) string { return fmt.Sprintf("cell-%03d", i*i) }
	want := Map(1, 100, fn)
	for _, width := range []int{2, 3, 8, 100, 0, -1} {
		got := Map(width, 100, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: results differ from serial", width)
		}
	}
}

// TestMapOrderIndependent makes cells finish in scrambled real-time
// order (later indices sleep less) and checks collection still lands
// by index.
func TestMapOrderIndependent(t *testing.T) {
	const n = 16
	got := Map(8, n, func(i int) int {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		return i * 10
	})
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("slot %d holds %d; scheduling order leaked into results", i, v)
		}
	}
}

// TestMapRunsEveryCellOnce counts invocations under contention.
func TestMapRunsEveryCellOnce(t *testing.T) {
	const n = 200
	var counts [n]atomic.Int64
	Map(8, n, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// TestMapPanicPropagation checks a worker panic resurfaces on the
// calling goroutine with the lowest-index panic value, matching what a
// serial loop would have hit first.
func TestMapPanicPropagation(t *testing.T) {
	for _, width := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("width %d: panic swallowed", width)
				}
				if r != "boom-3" {
					t.Fatalf("width %d: got panic %v, want lowest-index boom-3", width, r)
				}
			}()
			Map(width, 10, func(i int) int {
				if i == 3 || i == 7 {
					panic(fmt.Sprintf("boom-%d", i))
				}
				return i
			})
		}()
	}
}

// TestMapEmpty and small-n edge cases.
func TestMapEdgeCases(t *testing.T) {
	if got := Map(8, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	if got := Map(8, 1, func(i int) int { return 41 + i }); len(got) != 1 || got[0] != 41 {
		t.Fatalf("n=1 returned %v", got)
	}
}

// TestWidth pins the resolution rules Config.Parallel relies on.
func TestWidth(t *testing.T) {
	if w := Width(1, 100); w != 1 {
		t.Fatalf("Width(1,100) = %d", w)
	}
	if w := Width(8, 3); w != 3 {
		t.Fatalf("Width(8,3) = %d; pool must not exceed cells", w)
	}
	if w := Width(0, 100); w < 1 {
		t.Fatalf("Width(0,100) = %d; GOMAXPROCS default must be >= 1", w)
	}
	if w := Width(-5, 0); w != 1 {
		t.Fatalf("Width(-5,0) = %d", w)
	}
}
