// Package runner executes independent experiment cells on a bounded
// worker pool while keeping results deterministic.
//
// The experiment drivers (Table I/II/III, perf, chaos) enumerate their
// work as a flat list of cells — one (attack, defense, rep) coordinate
// each, with a seed derived purely from (Config.Seed, cell index) via
// sim.DeriveSeed. Each cell builds its own simulator, browser, and
// kernel Environment, so cells share no mutable state and can execute
// in any real-time order. Map collects results into a slice indexed by
// cell, which restores the canonical order: rendered tables, verdicts,
// and merged traces are byte-identical whether the matrix ran on one
// worker or many.
//
// This package is the single sanctioned bridge between the
// deterministic discrete-event world and OS threads. Goroutines exist
// only inside Map, never escape it, and never touch a simulator that
// another goroutine owns.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell names one coordinate of an experiment matrix. Drivers fill the
// fields they use; the runner itself only cares about Index.
type Cell struct {
	Index   int    // position in the canonical (serial) enumeration
	Attack  string // attack/workload identifier, for labels and errors
	Defense string // defense identifier
	Rep     int    // repetition number within the (attack, defense) pair
	Seed    int64  // per-cell seed, derived from (Config.Seed, Index)
}

func (c Cell) String() string {
	return fmt.Sprintf("cell %d (%s/%s rep %d)", c.Index, c.Attack, c.Defense, c.Rep)
}

// cellPanic carries a worker panic back to the caller's goroutine.
type cellPanic struct {
	index int
	value any
}

// Width resolves a Parallel config value to a concrete worker count for
// n cells: 0 (or negative) means one worker per available CPU, and the
// pool never exceeds the number of cells.
func Width(parallel, n int) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel < 1 {
		parallel = 1
	}
	return parallel
}

// Map evaluates fn(i) for every i in [0, n) and returns the results in
// index order. With width 1 (after Width resolution) it degenerates to
// a plain loop on the calling goroutine. Otherwise a pool of workers
// pulls indices from an atomic counter; each worker writes only its own
// disjoint result slots, so no synchronization beyond the final join is
// needed and the returned slice is independent of scheduling order.
//
// If any fn call panics, Map waits for the pool to drain and then
// re-panics with the panic value of the lowest-index failing cell — the
// same panic a serial loop would have surfaced first.
func Map[T any](parallel, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	width := Width(parallel, n)
	if width == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var next atomic.Int64
	panics := make([]*cellPanic, width)
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		// Workers only compute disjoint out[i] slots and join before Map
		// returns; determinism is restored by index-ordered collection.
		go func(w int) { //jsk:lint-ignore goroutinescope runner.Map is the sanctioned worker-pool bridge; goroutines never outlive the call or share simulator state
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !runCell(i, fn, &out[i], &panics[w]) {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var first *cellPanic
	for _, p := range panics {
		if p != nil && (first == nil || p.index < first.index) {
			first = p
		}
	}
	if first != nil {
		panic(first.value)
	}
	return out
}

// runCell runs one cell, capturing a panic instead of unwinding the
// worker goroutine. It reports whether the worker should keep pulling
// indices (false after a panic: remaining cells are abandoned, exactly
// as a serial loop would abandon everything after the first panic).
func runCell[T any](i int, fn func(int) T, out *T, slot **cellPanic) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if *slot == nil || i < (*slot).index {
				*slot = &cellPanic{index: i, value: r}
			}
			ok = false
		}
	}()
	*out = fn(i)
	return true
}
