package expr

import (
	"sort"
	"testing"

	"jskernel/internal/trace"
)

// TestTable1TraceInvariants replays the kernel trace of the full Table I
// matrix — every attack scenario against every defense column — through
// trace.Validator, then re-derives the terminal-accounting equation per
// kernelized scope: dispatched + shed + cancelled + expired == enqueued
// for every kernel, not just in aggregate.
func TestTable1TraceInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I matrix in -short mode")
	}
	cfg := QuickConfig()
	cfg.Reps = 1 // one rep per cell: every scenario runs, the trace stays tractable
	cfg.Trace = trace.NewSession()

	if _, err := Table1(cfg); err != nil {
		t.Fatalf("table 1: %v", err)
	}
	cfg.Trace.Close()
	recs := cfg.Trace.Records()
	if len(recs) == 0 {
		t.Fatal("table 1 produced no trace records")
	}

	rep, err := trace.Validate(recs)
	if err != nil {
		t.Fatalf("table 1 trace fails kernel lifecycle invariants: %v", err)
	}
	if rep.Enqueued == 0 || rep.Dispatched == 0 {
		t.Fatalf("degenerate trace: %d enqueued, %d dispatched", rep.Enqueued, rep.Dispatched)
	}
	if rep.Open != 0 {
		t.Fatalf("%d events still open after Close", rep.Open)
	}
	if got := rep.Dispatched + rep.Shed + rep.Cancelled + rep.Expired; got != rep.Enqueued {
		t.Fatalf("aggregate accounting broken: dispatched+shed+cancelled+expired = %d, enqueued = %d",
			got, rep.Enqueued)
	}

	// Per-kernel accounting: group lifecycle records by scope and check
	// the equation for each kernelized scope independently.
	type acct struct{ enqueued, terminal int }
	byScope := make(map[int]*acct)
	for _, r := range recs {
		if r.Scope == 0 || r.Event == 0 {
			continue
		}
		a := byScope[r.Scope]
		if a == nil {
			a = &acct{}
			byScope[r.Scope] = a
		}
		switch {
		case r.Op == trace.OpEnqueue:
			a.enqueued++
		case r.Op.Terminal():
			a.terminal++
		}
	}
	// Scopes with no event traffic (install-only frames/workers) appear in
	// the report but not here, so the event-bearing set is a subset.
	if len(byScope) == 0 || len(byScope) > rep.Scopes {
		t.Fatalf("event-bearing scopes = %d, report scopes = %d", len(byScope), rep.Scopes)
	}
	scopes := make([]int, 0, len(byScope))
	for s := range byScope {
		scopes = append(scopes, s)
	}
	sort.Ints(scopes)
	for _, s := range scopes {
		a := byScope[s]
		if a.terminal != a.enqueued {
			t.Errorf("scope %d: %d terminal records for %d enqueued events", s, a.terminal, a.enqueued)
		}
	}

	// The session's incrementally-maintained metrics must agree with the
	// replay-derived counts.
	m := cfg.Trace.Metrics()
	if m.Enqueued != uint64(rep.Enqueued) || m.Dispatched != uint64(rep.Dispatched) ||
		m.Shed != uint64(rep.Shed) || m.Expired != uint64(rep.Expired) {
		t.Fatalf("metrics diverge from replay: metrics enq=%d disp=%d shed=%d exp=%d, replay enq=%d disp=%d shed=%d exp=%d",
			m.Enqueued, m.Dispatched, m.Shed, m.Expired,
			rep.Enqueued, rep.Dispatched, rep.Shed, rep.Expired)
	}
}
