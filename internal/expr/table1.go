package expr

import (
	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/report"
)

// Table1Result is the full defense matrix with per-cell outcomes, so
// callers can assert on verdicts as well as render the table.
type Table1Result struct {
	Defenses []defense.Defense
	// Timing[attackID][defenseID] and CVE[cveID][defenseID] hold verdicts.
	Timing map[string]map[string]attack.Outcome
	CVE    map[string]map[string]attack.Outcome
	Table  *report.Table
}

// Defended reports a cell's verdict.
func (r *Table1Result) Defended(rowID, defenseID string) (bool, bool) {
	if m, ok := r.Timing[rowID]; ok {
		if o, ok := m[defenseID]; ok {
			return o.Defended, true
		}
	}
	if m, ok := r.CVE[rowID]; ok {
		if o, ok := m[defenseID]; ok {
			return o.Defended, true
		}
	}
	return false, false
}

// Table1 evaluates every attack of Table I against every defense column.
func Table1(cfg Config) (*Table1Result, error) {
	return table1Matrix(cfg, defense.TableIDefenses())
}

// table1Matrix runs the Table I attack matrix against an arbitrary
// defense list — the chaos experiment reuses it with fault-carrying
// defense variants.
func table1Matrix(cfg Config, defenses []defense.Defense) (*Table1Result, error) {
	defenses = cfg.tracedAll(defenses)
	res := &Table1Result{
		Defenses: defenses,
		Timing:   make(map[string]map[string]attack.Outcome),
		CVE:      make(map[string]map[string]attack.Outcome),
	}
	cols := []string{"Attack"}
	for _, d := range defenses {
		cols = append(cols, d.Label)
	}
	tbl := &report.Table{
		Title:   "Table I: Evaluation of Defenses against Web Concurrency Attacks",
		Columns: cols,
		Notes: []string{
			report.CheckDefended + " = the defense prevents the attack; " +
				report.CheckVulnerable + " = the defense is vulnerable",
		},
	}

	addGroup := func(name string) { tbl.AddRow("-- " + name + " --") }

	addGroup("setTimeout as the implicit clock")
	group := "setTimeout"
	timing := attack.TimingAttacks()
	emitTiming := func(a *attack.TimingAttack) {
		res.Timing[a.ID] = make(map[string]attack.Outcome, len(defenses))
		row := []string{a.Label}
		for _, d := range defenses {
			out := a.Evaluate(d, cfg.Reps, cfg.Seed)
			res.Timing[a.ID][d.ID] = out
			row = append(row, report.Mark(out.Defended))
		}
		tbl.AddRow(row...)
	}
	for _, a := range timing {
		if a.ClockGroup == group {
			emitTiming(a)
		}
	}
	addGroup("requestAnimationFrame as the implicit clock")
	for _, a := range timing {
		if a.ClockGroup != group {
			emitTiming(a)
		}
	}

	addGroup("Other web concurrency attacks")
	for _, a := range attack.CVEAttacks() {
		res.CVE[string(a.CVE)] = make(map[string]attack.Outcome, len(defenses))
		row := []string{a.Label}
		for _, d := range defenses {
			out := attack.EvaluateCVE(a, d, cfg.Seed)
			res.CVE[string(a.CVE)][d.ID] = out
			row = append(row, report.Mark(out.Defended))
		}
		tbl.AddRow(row...)
	}
	res.Table = tbl
	return res, nil
}
