package expr

import (
	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/trace"
)

// Table1Result is the full defense matrix with per-cell outcomes, so
// callers can assert on verdicts as well as render the table.
type Table1Result struct {
	Defenses []defense.Defense
	// Timing[attackID][defenseID] and CVE[cveID][defenseID] hold verdicts.
	Timing map[string]map[string]attack.Outcome
	CVE    map[string]map[string]attack.Outcome
	Table  *report.Table
}

// Defended reports a cell's verdict.
func (r *Table1Result) Defended(rowID, defenseID string) (bool, bool) {
	if m, ok := r.Timing[rowID]; ok {
		if o, ok := m[defenseID]; ok {
			return o.Defended, true
		}
	}
	if m, ok := r.CVE[rowID]; ok {
		if o, ok := m[defenseID]; ok {
			return o.Defended, true
		}
	}
	return false, false
}

// Table1 evaluates every attack of Table I against every defense column.
func Table1(cfg Config) (*Table1Result, error) {
	return table1Matrix(cfg, defense.TableIDefenses())
}

// table1Cell is one unit of Table I work: a single repetition of a
// timing attack (samples set) or a full CVE trigger (out set).
type table1Cell struct {
	samples attack.RepSamples
	out     attack.Outcome
}

// table1Matrix runs the Table I attack matrix against an arbitrary
// defense list — the chaos experiment reuses it with fault-carrying
// defense variants.
//
// The matrix is flattened into cells — (timing row, defense, rep)
// triples followed by (CVE row, defense) pairs — and executed on the
// cfg.Parallel worker pool. Every cell seeds its environments from
// sim.DeriveSeed(cfg.Seed, cell index), so neighbouring cells never
// share random streams and the verdicts are identical at any pool
// width.
func table1Matrix(cfg Config, defenses []defense.Defense) (*Table1Result, error) {
	reps := cfg.Reps
	if reps <= 0 {
		reps = attack.Reps
	}

	// Canonical row order: the setTimeout clock group, then the
	// requestAnimationFrame group, then the CVE rows — Table I's layout.
	group := "setTimeout"
	var timingRows []*attack.TimingAttack
	for _, a := range attack.TimingAttacks() {
		if a.ClockGroup == group {
			timingRows = append(timingRows, a)
		}
	}
	firstRAF := len(timingRows)
	for _, a := range attack.TimingAttacks() {
		if a.ClockGroup != group {
			timingRows = append(timingRows, a)
		}
	}
	cveRows := attack.CVEAttacks()

	perDefense := reps
	perTimingRow := len(defenses) * perDefense
	nTiming := len(timingRows) * perTimingRow
	nCells := nTiming + len(cveRows)*len(defenses)

	cells, err := runCells(cfg, nCells, func(i int, seed int64, tr *trace.Session) (table1Cell, error) {
		if i < nTiming {
			a := timingRows[i/perTimingRow]
			rem := i % perTimingRow
			d := cfg.tracedWith(defenses[rem/perDefense], tr)
			return table1Cell{samples: a.MeasureRep(d, seed)}, nil
		}
		j := i - nTiming
		a := cveRows[j/len(defenses)]
		d := cfg.tracedWith(defenses[j%len(defenses)], tr)
		return table1Cell{out: attack.EvaluateCVE(a, d, seed)}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{
		Defenses: defenses,
		Timing:   make(map[string]map[string]attack.Outcome),
		CVE:      make(map[string]map[string]attack.Outcome),
	}
	cols := []string{"Attack"}
	for _, d := range defenses {
		cols = append(cols, d.Label)
	}
	tbl := &report.Table{
		Title:   "Table I: Evaluation of Defenses against Web Concurrency Attacks",
		Columns: cols,
		Notes: []string{
			report.CheckDefended + " = the defense prevents the attack; " +
				report.CheckVulnerable + " = the defense is vulnerable",
		},
	}
	addGroup := func(name string) { tbl.AddRow("-- " + name + " --") }

	addGroup("setTimeout as the implicit clock")
	for ri, a := range timingRows {
		if ri == firstRAF {
			addGroup("requestAnimationFrame as the implicit clock")
		}
		res.Timing[a.ID] = make(map[string]attack.Outcome, len(defenses))
		row := []string{a.Label}
		for di, d := range defenses {
			// Merge the defense's reps in rep order and judge the merged
			// samples — the same statistics a serial Evaluate computes.
			base := ri*perTimingRow + di*perDefense
			parts := make([]attack.RepSamples, reps)
			for rep := 0; rep < reps; rep++ {
				parts[rep] = cells[base+rep].samples
			}
			out := a.AssembleOutcome(d.ID, attack.MergeSamples(parts))
			res.Timing[a.ID][d.ID] = out
			row = append(row, report.Mark(out.Defended))
		}
		tbl.AddRow(row...)
	}
	if firstRAF == len(timingRows) {
		// No rAF rows registered: still emit the group header, as the
		// serial layout always did.
		addGroup("requestAnimationFrame as the implicit clock")
	}

	addGroup("Other web concurrency attacks")
	for ci, a := range cveRows {
		res.CVE[string(a.CVE)] = make(map[string]attack.Outcome, len(defenses))
		row := []string{a.Label}
		for di, d := range defenses {
			out := cells[nTiming+ci*len(defenses)+di].out
			res.CVE[string(a.CVE)][d.ID] = out
			row = append(row, report.Mark(out.Defended))
		}
		tbl.AddRow(row...)
	}
	res.Table = tbl
	return res, nil
}
