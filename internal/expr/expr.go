// Package expr regenerates every table and figure of the paper's
// evaluation (§IV–§V) from the simulated substrate: Table I's defense
// matrix, Table II's measured attack values, Table III's Raptor loading
// times, Figure 2's script-parsing curves, Figure 3's Alexa CDFs, plus the
// Dromaeo, worker-creation, and compatibility numbers quoted in the text.
package expr

import (
	"jskernel/internal/defense"
	"jskernel/internal/trace"
)

// Config scales the experiments. Paper scale reproduces the published
// setup; Quick scale keeps CI fast while preserving every qualitative
// conclusion.
type Config struct {
	Seed int64
	// Reps is the measurement repetition budget per (attack, defense,
	// variant) — the paper uses 25.
	Reps int
	// AlexaSites and AlexaVisits size Figure 3 (paper: 500 sites × 3).
	AlexaSites  int
	AlexaVisits int
	// CompatSites sizes the §V-B2 similarity study (paper: 100).
	CompatSites int
	// RaptorLoads is loads per tp6 subtest (paper: 25, first skipped).
	RaptorLoads int
	// Fig2SizesMB are the script sizes swept in Figure 2.
	Fig2SizesMB []int
	// Fig2Reps is per-size repetitions in Figure 2.
	Fig2Reps int
	// Parallel is the worker-pool width for the cell-parallel drivers
	// (Table I–III, Dromaeo, worker bench, and the chaos matrices they
	// compose): 0 (the default) means one worker per available CPU, 1
	// forces a plain serial loop. Any width produces byte-identical
	// tables, verdicts, and merged traces — every cell's seed is a pure
	// function of (Seed, cell index) and results are collected in cell
	// order, so the pool width only changes wall-clock time.
	Parallel int
	// Trace, when non-nil, attaches this kernel trace session to every
	// environment a traced experiment builds (Table I–III, Dromaeo), so
	// runs can be inspected end-to-end and validated against the kernel
	// lifecycle invariants. Nil (the default) keeps tracing off.
	Trace *trace.Session
	// Obs additionally enables the browser's observability trace kinds
	// in every traced environment, feeding the internal/obs consumers
	// (profiler, forensics detectors). Only meaningful with Trace set;
	// obs events never perturb execution, so results are unchanged.
	Obs bool
}

// traced wires the config's trace session onto one defense.
func (c Config) traced(d defense.Defense) defense.Defense {
	return c.tracedWith(d, c.Trace)
}

// tracedAll wires the config's trace session onto a defense list.
func (c Config) tracedAll(ds []defense.Defense) []defense.Defense {
	if c.Trace == nil {
		return ds
	}
	out := make([]defense.Defense, len(ds))
	for i, d := range ds {
		out[i] = c.traced(d)
	}
	return out
}

// tracedWith attaches a (usually per-cell) trace session to a defense,
// carrying the config's obs setting along; a nil session (tracing off)
// leaves the defense untouched.
func (c Config) tracedWith(d defense.Defense, tr *trace.Session) defense.Defense {
	if tr == nil {
		return d
	}
	d = d.WithTracer(tr)
	if c.Obs {
		d = d.WithObs(true)
	}
	return d
}

// PaperConfig reproduces the published experiment sizes.
func PaperConfig() Config {
	return Config{
		Seed:        20200629, // DSN 2020's opening day
		Reps:        25,
		AlexaSites:  500,
		AlexaVisits: 3,
		CompatSites: 100,
		RaptorLoads: 25,
		Fig2SizesMB: []int{2, 4, 6, 8, 10},
		Fig2Reps:    10,
	}
}

// QuickConfig shrinks everything for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		Seed:        42,
		Reps:        5,
		AlexaSites:  30,
		AlexaVisits: 1,
		CompatSites: 15,
		RaptorLoads: 4,
		Fig2SizesMB: []int{2, 6, 10},
		Fig2Reps:    3,
	}
}
