package expr

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// Shared golden-file flow for the expr matrix gates. The compare core
// returns errors instead of failing the test directly so the flow's own
// contract is testable — in particular that a *missing* golden is a
// hard failure with an actionable -update hint, never a silent pass.

// missingGoldenError is the typed hard failure for an absent golden.
type missingGoldenError struct{ path string }

func (e *missingGoldenError) Error() string {
	return fmt.Sprintf("golden file %s does not exist: run the test with -update to create it, then commit the file", e.path)
}

// compareGolden is the error-returning core: in update mode it rewrites
// the golden; otherwise it compares bytes, distinguishing a missing
// golden (typed, with the -update hint) from drift.
func compareGolden(path string, got []byte, update bool) error {
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("mkdir %s: %w", filepath.Dir(path), err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			return fmt.Errorf("write golden: %w", err)
		}
		return nil
	}
	want, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &missingGoldenError{path: path}
	}
	if err != nil {
		return fmt.Errorf("read golden: %w", err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("drifted from golden %s\n got: %s\nwant: %s", path, got, want)
	}
	return nil
}

// checkGolden fails the test on any compare error, honoring -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if err := compareGolden(path, got, *updateForensics); err != nil {
		t.Fatal(err)
	}
}

// TestMissingGoldenIsHardFailure pins the flow's failure modes: a
// missing golden errors with the -update hint (typed), drift errors,
// a matching golden passes, and update mode creates the file.
func TestMissingGoldenIsHardFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "absent.golden.json")

	err := compareGolden(path, []byte("{}"), false)
	if err == nil {
		t.Fatal("missing golden passed silently")
	}
	var mg *missingGoldenError
	if !errors.As(err, &mg) {
		t.Fatalf("missing golden produced untyped error: %v", err)
	}
	for _, want := range []string{path, "-update"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	if err := compareGolden(path, []byte("{}"), true); err != nil {
		t.Fatalf("update mode: %v", err)
	}
	if err := compareGolden(path, []byte("{}"), false); err != nil {
		t.Fatalf("fresh golden should match: %v", err)
	}
	err = compareGolden(path, []byte("{\"drift\":1}"), false)
	if err == nil {
		t.Fatal("drift passed")
	}
	if errors.As(err, &mg) {
		t.Fatalf("drift misreported as missing golden: %v", err)
	}
}
