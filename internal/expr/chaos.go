package expr

import (
	"fmt"
	"sort"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/fault"
	"jskernel/internal/report"
)

// sortedCellKeys returns a verdict map's keys in sorted order, so cell
// walks are independent of map iteration order.
func sortedCellKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ChaosFlip is one Table I cell whose verdict changed under a fault
// plan.
type ChaosFlip struct {
	Row       string // attack/CVE row identifier
	DefenseID string
	// Baseline and Faulted are the defended verdicts without and with
	// the plan.
	Baseline bool
	Faulted  bool
}

// String formats a flip for reports.
func (f ChaosFlip) String() string {
	return fmt.Sprintf("%s × %s: %s → %s", f.Row, f.DefenseID,
		report.Mark(f.Baseline), report.Mark(f.Faulted))
}

// ChaosPlanResult compares one fault plan's matrix against the
// baseline.
type ChaosPlanResult struct {
	Plan *fault.Plan
	// Matrix is the full Table I result under the plan.
	Matrix *Table1Result
	// Weakened lists cells that flipped defended → vulnerable: a fault
	// plan breaking a security guarantee. Must be empty.
	Weakened []ChaosFlip
	// Masked lists cells that flipped vulnerable → defended: fault
	// noise hiding an attack that baseline finds. Informational.
	Masked []ChaosFlip
	// Cells is the number of verdict cells compared.
	Cells int
	// Faults aggregates the faults injected across every run of the
	// plan's matrix, proving the plan actually fired.
	Faults fault.Counts
}

// ChaosResult is the full chaos-matrix experiment: the baseline
// Table I verdicts re-evaluated under every standard fault plan.
type ChaosResult struct {
	Baseline *Table1Result
	Plans    []*ChaosPlanResult
	Table    *report.Table
}

// Weakened reports the total defended → vulnerable flips across all
// plans — the experiment's headline number, asserted zero.
func (r *ChaosResult) Weakened() int {
	n := 0
	for _, p := range r.Plans {
		n += len(p.Weakened)
	}
	return n
}

// Chaos re-runs the Table I attack × defense matrix under each seeded
// fault plan and compares every security verdict against the fault-free
// baseline. The survival claim it checks: deterministic fault injection
// at every layer must never weaken a defense (flip defended →
// vulnerable). Each run remains a pure function of (defense, workload,
// fault plan, seed), so the whole experiment is reproducible
// byte-for-byte.
func Chaos(cfg Config) (*ChaosResult, error) {
	return ChaosWithPlans(cfg, fault.StandardPlans())
}

// ChaosWithPlans runs the chaos matrix under a caller-chosen plan set.
func ChaosWithPlans(cfg Config, plans []*fault.Plan) (*ChaosResult, error) {
	base, err := Table1(cfg)
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{Baseline: base}

	tbl := &report.Table{
		Title:   "Chaos matrix: Table I verdicts under seeded fault plans",
		Columns: []string{"Fault plan", "Cells", "Weakened", "Masked", "Faults injected"},
		Notes: []string{
			"Weakened = defended cells that became vulnerable under faults (must be 0)",
			"Masked = vulnerable cells that faults happened to hide (informational)",
		},
	}

	for _, plan := range plans {
		if plan.Counter == nil {
			plan.Counter = &fault.AtomicCounts{}
		}
		defenses := defense.TableIDefenses()
		for i := range defenses {
			defenses[i] = defenses[i].WithFaults(plan)
		}
		m, err := table1Matrix(cfg, defenses)
		if err != nil {
			return nil, err
		}
		pr := &ChaosPlanResult{Plan: plan, Matrix: m}
		// Compare cells in sorted (row, defense) order so the Weakened
		// and Masked flip lists come out in a reproducible order.
		compare := func(rows map[string]map[string]bool) {
			for _, row := range sortedCellKeys(rows) {
				perDefense := rows[row]
				for _, id := range sortedCellKeys(perDefense) {
					baseDefended := perDefense[id]
					pr.Cells++
					faulted, ok := m.Defended(row, id)
					if !ok {
						// Matrix shape never changes; treat a missing
						// cell as a weakened verdict so it cannot pass
						// silently.
						pr.Weakened = append(pr.Weakened, ChaosFlip{Row: row, DefenseID: id, Baseline: baseDefended})
						continue
					}
					if baseDefended == faulted {
						continue
					}
					flip := ChaosFlip{Row: row, DefenseID: id, Baseline: baseDefended, Faulted: faulted}
					if baseDefended {
						pr.Weakened = append(pr.Weakened, flip)
					} else {
						pr.Masked = append(pr.Masked, flip)
					}
				}
			}
		}
		compare(verdictCells(base.Timing))
		compare(verdictCells(base.CVE))
		pr.Faults = plan.Counter.Snapshot()
		res.Plans = append(res.Plans, pr)
		tbl.AddRow(plan.Name,
			fmt.Sprintf("%d", pr.Cells),
			fmt.Sprintf("%d", len(pr.Weakened)),
			fmt.Sprintf("%d", len(pr.Masked)),
			pr.Faults.String())
	}
	res.Table = tbl
	return res, nil
}

// verdictCells projects an outcome matrix onto its defended bits.
func verdictCells(m map[string]map[string]attack.Outcome) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(m))
	for row, per := range m {
		out[row] = make(map[string]bool, len(per))
		for id, o := range per {
			out[row][id] = o.Defended
		}
	}
	return out
}
