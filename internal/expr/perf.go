package expr

import (
	"fmt"
	"sort"

	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/stats"
	"jskernel/internal/trace"
	"jskernel/internal/workload"
)

// DromaeoReport is the §V-A1 micro-benchmark comparison: Chrome with and
// without the JSKernel extension.
type DromaeoReport struct {
	PerTest        map[string]float64 // relative overhead per test
	MeanOverhead   float64
	MedianOverhead float64
	WorstTest      string
	WorstOverhead  float64
	Table          *report.Table
}

// Dromaeo runs the suite under legacy Chrome and Chrome+JSKernel and
// reports overheads (paper: 1.99% average, 0.30% median, DOM attribute
// worst at ~21%). The two columns are a matched pair — both run the
// suite with the same cfg.Seed, so the overhead is the kernel's alone —
// and execute as two cells on the worker pool.
func Dromaeo(cfg Config) (*DromaeoReport, error) {
	defs := []defense.Defense{defense.Chrome(), defense.JSKernel("chrome")}
	labels := []string{"baseline", "jskernel"}
	cols, err := runCells(cfg, len(defs), func(i int, _ int64, tr *trace.Session) ([]workload.DromaeoResult, error) {
		res, err := workload.RunDromaeo(cfg.tracedWith(defs[i], tr), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("dromaeo %s: %w", labels[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	base, with := cols[0], cols[1]
	over := workload.DromaeoOverheads(base, with)
	rep := &DromaeoReport{PerTest: over}
	// Sort the test ids before accumulating: the mean is a float sum and
	// the worst-test tie-break must not depend on map iteration order.
	ids := make([]string, 0, len(over))
	for id := range over {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var all []float64
	for _, id := range ids {
		v := over[id]
		all = append(all, v)
		if v > rep.WorstOverhead {
			rep.WorstOverhead, rep.WorstTest = v, id
		}
	}
	rep.MeanOverhead = stats.Mean(all)
	rep.MedianOverhead = stats.Median(all)

	baseBy := make(map[string]float64, len(base))
	for _, r := range base {
		baseBy[r.ID] = r.Millis
	}
	withBy := make(map[string]float64, len(with))
	for _, r := range with {
		withBy[r.ID] = r.Millis
	}
	tbl := &report.Table{
		Title:   "Dromaeo micro-benchmark: Chrome vs Chrome + JSKernel",
		Columns: []string{"Test", "Chrome (ms)", "JSKernel (ms)", "Overhead"},
		Notes: []string{
			fmt.Sprintf("average overhead %.2f%%, median %.2f%%, worst %s at %.2f%%",
				rep.MeanOverhead*100, rep.MedianOverhead*100, rep.WorstTest, rep.WorstOverhead*100),
		},
	}
	for _, id := range ids {
		tbl.AddRow(id,
			fmt.Sprintf("%.3f", baseBy[id]),
			fmt.Sprintf("%.3f", withBy[id]),
			fmt.Sprintf("%+.2f%%", over[id]*100))
	}
	rep.Table = tbl
	return rep, nil
}

// WorkerBenchReport is the §V-A1 worker-creation benchmark.
type WorkerBenchReport struct {
	BaseMs   stats.Summary
	KernelMs stats.Summary
	Overhead float64
	Table    *report.Table
}

// WorkerBench creates 16 workers with and without JSKernel (paper: ~0.9%
// overhead over 5 repetitions). Like Dromaeo, the columns are a matched
// pair sharing cfg.Seed and run as two untraced cells.
func WorkerBench(cfg Config) (*WorkerBenchReport, error) {
	defs := []defense.Defense{defense.Chrome(), defense.JSKernel("chrome")}
	labels := []string{"baseline", "jskernel"}
	cols, err := runCells(cfg, len(defs), func(i int, _ int64, _ *trace.Session) ([]float64, error) {
		res, err := workload.RunWorkerBench(defs[i], workload.WorkerBenchCount, 5, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("worker bench %s: %w", labels[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	base, with := cols[0], cols[1]
	rep := &WorkerBenchReport{
		BaseMs:   stats.Summarize(base),
		KernelMs: stats.Summarize(with),
	}
	rep.Overhead = stats.RelativeOverhead(rep.BaseMs.Mean, rep.KernelMs.Mean)
	tbl := &report.Table{
		Title:   "Worker benchmark: time to create 16 workers (ms)",
		Columns: []string{"Configuration", "Mean", "StdDev"},
		Notes:   []string{fmt.Sprintf("overhead %.2f%%", rep.Overhead*100)},
	}
	tbl.AddRow("Chrome", fmt.Sprintf("%.3f", rep.BaseMs.Mean), fmt.Sprintf("%.3f", rep.BaseMs.StdDev))
	tbl.AddRow("Chrome + JSKernel", fmt.Sprintf("%.3f", rep.KernelMs.Mean), fmt.Sprintf("%.3f", rep.KernelMs.StdDev))
	rep.Table = tbl
	return rep, nil
}
