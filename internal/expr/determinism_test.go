package expr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"jskernel/internal/attack"
)

// TestTable1PlainDeterminism is the plain-mode twin of the chaos
// determinism test: the Table I matrix run twice in one process must
// serialize byte-identically — rendered table, every per-cell verdict,
// and every channel statistic down to the float bit pattern. This is
// the property jsk-lint's analyzers exist to protect; the test catches
// whatever a static check cannot.
func TestTable1PlainDeterminism(t *testing.T) {
	a := renderTable1(t)
	b := renderTable1(t)
	if a == b {
		return
	}
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			t.Fatalf("Table I matrix is not reproducible; first divergence at line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
		}
	}
	t.Fatalf("Table I matrix is not reproducible: run1 has %d lines, run2 has %d", len(al), len(bl))
}

// renderTable1 serializes one full Table I run with bit-exact floats.
func renderTable1(t *testing.T) string {
	t.Helper()
	res, err := Table1(QuickConfig())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	var sb strings.Builder
	if err := res.Table.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	dumpOutcomeMatrix(&sb, "timing", res.Timing)
	dumpOutcomeMatrix(&sb, "cve", res.CVE)
	return sb.String()
}

func dumpOutcomeMatrix(sb *strings.Builder, label string, m map[string]map[string]attack.Outcome) {
	for _, row := range sortedOutcomeKeys(m) {
		cells := m[row]
		for _, id := range sortedOutcomeKeys(cells) {
			o := cells[id]
			fmt.Fprintf(sb, "%s %s/%s defended=%v exploited=%v", label, row, id, o.Defended, o.Exploited)
			for _, ch := range o.Channels {
				fmt.Fprintf(sb, " %s[a=%s b=%s d=%s leaks=%v]",
					ch.Channel, hexFloat(ch.MeanA), hexFloat(ch.MeanB), hexFloat(ch.CohensD), ch.Leaks)
			}
			sb.WriteByte('\n')
		}
	}
}

// hexFloat formats with full bit fidelity, so even one ULP of
// accumulated drift between runs fails the comparison.
func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func sortedOutcomeKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
