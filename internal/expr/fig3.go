package expr

import (
	"fmt"

	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/stats"
	"jskernel/internal/workload"
)

// Fig3Result holds the Alexa loading-time distributions per defense.
type Fig3Result struct {
	// LoadMs[defenseID] is the per-site averaged loading time.
	LoadMs map[string][]float64
	// Median[defenseID] summarizes each curve.
	Median map[string]float64
	Figure *report.Figure
}

// Fig3 loads the synthetic Alexa population under each Figure 3 browser
// and produces the CDF series.
func Fig3(cfg Config) (*Fig3Result, error) {
	res := &Fig3Result{
		LoadMs: make(map[string][]float64),
		Median: make(map[string]float64),
	}
	fig := &report.Figure{
		Title:  "Figure 3: CDF of Loading Time of Top Alexa Websites",
		XLabel: "load time (ms)",
		YLabel: "fraction",
	}
	for _, d := range defense.Figure3Defenses() {
		times, err := workload.LoadAlexa(d, cfg.AlexaSites, cfg.AlexaVisits, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", d.ID, err)
		}
		res.LoadMs[d.ID] = times
		res.Median[d.ID] = stats.Median(times)
		cdf := stats.CDF(times)
		s := report.Series{Name: d.Label}
		for _, p := range cdf {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Fraction)
		}
		fig.Series = append(fig.Series, s)
	}
	res.Figure = fig
	return res, nil
}
