package expr

import (
	"fmt"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/stats"
)

// Table II's workload parameters: the two SVG probe resolutions and the
// two Loopscan victim sites.
const (
	table2LowRes  = 300
	table2HighRes = 1200
)

// Table2Row holds one defense's four measured values in milliseconds.
type Table2Row struct {
	Defense     defense.Defense
	SVGLow      float64
	SVGHigh     float64
	LoopGoogle  float64
	LoopYoutube float64
	SVGLeaks    bool // low vs high distinguishable
	LoopLeaks   bool // google vs youtube distinguishable
	svgSamples  [2][]float64
	loopSamples [2][]float64
}

// Table2Result carries the rows plus the rendered table.
type Table2Result struct {
	Rows  []Table2Row
	Table *report.Table
}

// Table2 measures the SVG filtering and Loopscan attacks under every
// Table II defense, averaging cfg.Reps runs like the paper's 25.
func Table2(cfg Config) (*Table2Result, error) {
	res := &Table2Result{}
	for _, d := range cfg.tracedAll(defense.TableIIDefenses()) {
		row := Table2Row{Defense: d}
		for rep := 0; rep < cfg.Reps; rep++ {
			for variant, dim := range []int{table2LowRes, table2HighRes} {
				env := d.NewEnv(defense.EnvOptions{Seed: cfg.Seed + int64(rep*4+variant)})
				ms, err := attack.MeasureSVGLoadMs(env, dim)
				if err != nil {
					return nil, fmt.Errorf("table2 svg %s: %w", d.ID, err)
				}
				row.svgSamples[variant] = append(row.svgSamples[variant], ms)
			}
			for variant, site := range []string{"google", "youtube"} {
				env := d.NewEnv(defense.EnvOptions{Seed: cfg.Seed + int64(rep*4+variant) + 1_000_000})
				ms, err := attack.MeasureLoopscanGapMs(env, site)
				if err != nil {
					return nil, fmt.Errorf("table2 loopscan %s: %w", d.ID, err)
				}
				row.loopSamples[variant] = append(row.loopSamples[variant], ms)
			}
		}
		row.SVGLow = stats.Mean(row.svgSamples[0])
		row.SVGHigh = stats.Mean(row.svgSamples[1])
		row.LoopGoogle = stats.Mean(row.loopSamples[0])
		row.LoopYoutube = stats.Mean(row.loopSamples[1])
		row.SVGLeaks = stats.Distinguishable(row.svgSamples[0], row.svgSamples[1])
		row.LoopLeaks = stats.Distinguishable(row.loopSamples[0], row.loopSamples[1])
		res.Rows = append(res.Rows, row)
	}

	tbl := &report.Table{
		Title: "Table II: Averaged Measured Time of Different Targets under Varied Attacks (ms)",
		Columns: []string{
			"Defense",
			"SVG Low Res", "SVG High Res", "SVG leaks?",
			"Loopscan google", "Loopscan youtube", "Loopscan leaks?",
		},
		Notes: []string{
			"SVG: averaged image loading time at two resolutions; Loopscan: maximum measured event interval",
			fmt.Sprintf("averaged over %d repeated runs per cell", cfg.Reps),
		},
	}
	for _, row := range res.Rows {
		tbl.AddRow(
			row.Defense.Label,
			fmt.Sprintf("%.2f", row.SVGLow),
			fmt.Sprintf("%.2f", row.SVGHigh),
			report.Mark(!row.SVGLeaks),
			fmt.Sprintf("%.2f", row.LoopGoogle),
			fmt.Sprintf("%.2f", row.LoopYoutube),
			report.Mark(!row.LoopLeaks),
		)
	}
	res.Table = tbl
	return res, nil
}
