package expr

import (
	"fmt"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/report"
	"jskernel/internal/sim"
	"jskernel/internal/stats"
	"jskernel/internal/trace"
)

// Table II's workload parameters: the two SVG probe resolutions and the
// two Loopscan victim sites.
const (
	table2LowRes  = 300
	table2HighRes = 1200
)

// Table2Row holds one defense's four measured values in milliseconds.
type Table2Row struct {
	Defense     defense.Defense
	SVGLow      float64
	SVGHigh     float64
	LoopGoogle  float64
	LoopYoutube float64
	SVGLeaks    bool // low vs high distinguishable
	LoopLeaks   bool // google vs youtube distinguishable
	svgSamples  [2][]float64
	loopSamples [2][]float64
}

// Table2Result carries the rows plus the rendered table.
type Table2Result struct {
	Rows  []Table2Row
	Table *report.Table
}

// table2Cell is one (defense, rep) unit: both SVG resolutions and both
// Loopscan sites measured in four fresh environments.
type table2Cell struct {
	svg  [2]float64
	loop [2]float64
}

// Table2 measures the SVG filtering and Loopscan attacks under every
// Table II defense, averaging cfg.Reps runs like the paper's 25. The
// (defense, rep) matrix runs as cells on the cfg.Parallel worker pool;
// each cell's four environments take sub-seeds derived from its own
// cell seed, so no two cells — and no two measurements — share a
// random stream.
func Table2(cfg Config) (*Table2Result, error) {
	res := &Table2Result{}
	defs := defense.TableIIDefenses()
	nCells := len(defs) * cfg.Reps

	cells, err := runCells(cfg, nCells, func(i int, seed int64, tr *trace.Session) (table2Cell, error) {
		d := cfg.tracedWith(defs[i/cfg.Reps], tr)
		var c table2Cell
		for variant, dim := range []int{table2LowRes, table2HighRes} {
			env := d.NewEnv(defense.EnvOptions{Seed: sim.DeriveSeed(seed, int64(variant))})
			ms, err := attack.MeasureSVGLoadMs(env, dim)
			if err != nil {
				return c, fmt.Errorf("table2 svg %s: %w", d.ID, err)
			}
			c.svg[variant] = ms
		}
		for variant, site := range []string{"google", "youtube"} {
			env := d.NewEnv(defense.EnvOptions{Seed: sim.DeriveSeed(seed, int64(2+variant))})
			ms, err := attack.MeasureLoopscanGapMs(env, site)
			if err != nil {
				return c, fmt.Errorf("table2 loopscan %s: %w", d.ID, err)
			}
			c.loop[variant] = ms
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	for di, d := range defs {
		row := Table2Row{Defense: d}
		// Collect the defense's cells in rep order, so sample streams
		// match a serial loop exactly.
		for rep := 0; rep < cfg.Reps; rep++ {
			c := cells[di*cfg.Reps+rep]
			row.svgSamples[0] = append(row.svgSamples[0], c.svg[0])
			row.svgSamples[1] = append(row.svgSamples[1], c.svg[1])
			row.loopSamples[0] = append(row.loopSamples[0], c.loop[0])
			row.loopSamples[1] = append(row.loopSamples[1], c.loop[1])
		}
		row.SVGLow = stats.Mean(row.svgSamples[0])
		row.SVGHigh = stats.Mean(row.svgSamples[1])
		row.LoopGoogle = stats.Mean(row.loopSamples[0])
		row.LoopYoutube = stats.Mean(row.loopSamples[1])
		row.SVGLeaks = stats.Distinguishable(row.svgSamples[0], row.svgSamples[1])
		row.LoopLeaks = stats.Distinguishable(row.loopSamples[0], row.loopSamples[1])
		res.Rows = append(res.Rows, row)
	}

	tbl := &report.Table{
		Title: "Table II: Averaged Measured Time of Different Targets under Varied Attacks (ms)",
		Columns: []string{
			"Defense",
			"SVG Low Res", "SVG High Res", "SVG leaks?",
			"Loopscan google", "Loopscan youtube", "Loopscan leaks?",
		},
		Notes: []string{
			"SVG: averaged image loading time at two resolutions; Loopscan: maximum measured event interval",
			fmt.Sprintf("averaged over %d repeated runs per cell", cfg.Reps),
		},
	}
	for _, row := range res.Rows {
		tbl.AddRow(
			row.Defense.Label,
			fmt.Sprintf("%.2f", row.SVGLow),
			fmt.Sprintf("%.2f", row.SVGHigh),
			report.Mark(!row.SVGLeaks),
			fmt.Sprintf("%.2f", row.LoopGoogle),
			fmt.Sprintf("%.2f", row.LoopYoutube),
			report.Mark(!row.LoopLeaks),
		)
	}
	res.Table = tbl
	return res, nil
}
