package serve

import (
	"errors"
	"net/http"
	"testing"

	"jskernel/internal/webnet"
)

// TestErrorClassificationTable is the typed-error audit: every failure
// class the service can emit, its HTTP status, and its transient-vs-
// permanent classification, pinned in one table. A new code that is not
// added here fails the exhaustiveness check below.
func TestErrorClassificationTable(t *testing.T) {
	cases := []struct {
		code      Code
		status    int
		retryable bool
	}{
		{CodeBadRequest, http.StatusBadRequest, false},
		{CodeUnknownAttack, http.StatusNotFound, false},
		{CodeUnknownDefense, http.StatusNotFound, false},
		{CodeOverloaded, http.StatusTooManyRequests, true},
		{CodeDraining, http.StatusServiceUnavailable, true},
		{CodeBreakerOpen, http.StatusServiceUnavailable, true},
		{CodeEnvPoisoned, http.StatusInternalServerError, true},
		{CodeDeadline, http.StatusGatewayTimeout, false},
		{CodeCanceled, http.StatusRequestTimeout, false},
		{CodeInternal, http.StatusInternalServerError, false},
		{CodeTelemetryOff, http.StatusNotFound, false},
	}
	if len(cases) != len(codeInfo) {
		t.Fatalf("audit table covers %d codes, server defines %d — extend the audit", len(cases), len(codeInfo))
	}
	for _, tc := range cases {
		t.Run(string(tc.code), func(t *testing.T) {
			if _, ok := codeInfo[tc.code]; !ok {
				t.Fatalf("code %s missing from codeInfo", tc.code)
			}
			e := errf(tc.code, "x")
			if got := e.HTTPStatus(); got != tc.status {
				t.Errorf("status %d, want %d", got, tc.status)
			}
			if got := e.Retryable(); got != tc.retryable {
				t.Errorf("retryable %v, want %v", got, tc.retryable)
			}
		})
	}
}

// TestRetryableErrorContract checks every error type in the repo that
// participates in retry decisions satisfies the RetryableError
// interface with the documented classification.
func TestRetryableErrorContract(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
	}{
		{"serve transient", errf(CodeOverloaded, "x"), true},
		{"serve permanent", errf(CodeBadRequest, "x"), false},
		{"transport failure", &transportError{err: errors.New("connection refused")}, true},
		{"webnet transient", &webnet.TransientError{URL: "https://a/", Status: 503, Reason: "injected-5xx"}, true},
		{"webnet not-found", &webnet.NotFoundError{URL: "https://a/"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			re, ok := tc.err.(RetryableError)
			if !ok {
				t.Fatalf("%T does not implement RetryableError", tc.err)
			}
			if got := re.Retryable(); got != tc.retryable {
				t.Errorf("Retryable()=%v, want %v", got, tc.retryable)
			}
		})
	}
}

// TestUnknownCodeFailsClosed: an unclassified code must map to a
// permanent 500, never a silent retry invitation.
func TestUnknownCodeFailsClosed(t *testing.T) {
	e := errf(Code("no-such-code"), "x")
	if e.HTTPStatus() != http.StatusInternalServerError {
		t.Errorf("unknown code status %d, want 500", e.HTTPStatus())
	}
	if e.Retryable() {
		t.Error("unknown code must classify permanent")
	}
}
