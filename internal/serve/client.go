package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is the retrying evaluation client. Its retry loop is driven
// entirely by the typed-error contract: a failure retries iff its
// RetryableError classification says retrying can help, and the wait
// honors the server's Retry-After hint when one is present. Backoff is
// deterministic exponential doubling with no jitter — this repo's
// clients are benchmark harnesses and tests, where reproducible
// schedules are worth more than thundering-herd dispersion.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8571".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per Eval, counting the first. Default: 4.
	MaxAttempts int
	// BaseBackoff is the first retry wait, doubling each attempt up to
	// MaxBackoff. Defaults: 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep replaces time.Sleep between attempts (tests virtualize the
	// schedule through this hook). Default: time.Sleep.
	Sleep func(time.Duration)
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}
func (c *Client) baseBackoff() time.Duration {
	if c.BaseBackoff > 0 {
		return c.BaseBackoff
	}
	return 100 * time.Millisecond
}
func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 5 * time.Second
}
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}
func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// transportError wraps a failure below the HTTP layer (dial refused,
// connection reset mid-response). These are transient by contract: the
// request may never have reached admission, and admitted-but-abandoned
// work is discarded server-side, so a retry is always safe and often
// useful.
type transportError struct{ err error }

func (e *transportError) Error() string   { return fmt.Sprintf("serve: transport: %v", e.err) }
func (e *transportError) Unwrap() error   { return e.err }
func (e *transportError) Retryable() bool { return true }

// backoffWait computes the wait before retry attempt (1-based), taking
// the larger of the exponential schedule and the server's hint.
func (c *Client) backoffWait(attempt int, hintMs int64) time.Duration {
	wait := c.baseBackoff()
	for i := 1; i < attempt; i++ {
		wait *= 2
		if wait >= c.maxBackoff() {
			wait = c.maxBackoff()
			break
		}
	}
	if hint := time.Duration(hintMs) * time.Millisecond; hint > wait {
		wait = hint
	}
	if wait > c.maxBackoff() {
		wait = c.maxBackoff()
	}
	return wait
}

// Eval runs one evaluation request, retrying transient failures up to
// MaxAttempts. The returned error, when non-nil, is always a
// RetryableError (*Error from the server, *transportError below it) —
// callers branch on the classification, never on text.
func (c *Client) Eval(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding request: %w", err)
	}
	var last error
	for attempt := 1; ; attempt++ {
		resp, err := c.once(ctx, body)
		if err == nil {
			return resp, nil
		}
		last = err
		if attempt >= c.maxAttempts() {
			break
		}
		re, ok := err.(RetryableError)
		if !ok || !re.Retryable() {
			break
		}
		var hint int64
		if e, ok := err.(*Error); ok {
			hint = e.RetryAfterMs
		}
		c.sleep(c.backoffWait(attempt, hint))
		if ctx.Err() != nil {
			break
		}
	}
	return nil, last
}

// once performs a single attempt.
func (c *Client) once(ctx context.Context, body []byte) (*Response, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, &transportError{err: err}
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, &transportError{err: err}
	}
	if httpResp.StatusCode != http.StatusOK {
		var env errEnvelope
		if jerr := json.Unmarshal(data, &env); jerr != nil || env.Error == nil {
			return nil, &transportError{err: fmt.Errorf("status %d with undecodable error body", httpResp.StatusCode)}
		}
		return nil, env.Error
	}
	var resp Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, &transportError{err: fmt.Errorf("decoding response: %w", err)}
	}
	return &resp, nil
}

// EvalBytes is Eval without response decoding: it returns the exact
// response body bytes on success. The determinism suites compare these
// byte-for-byte across pool widths and reuse depths.
func (c *Client) EvalBytes(ctx context.Context, req Request) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, &transportError{err: err}
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, &transportError{err: err}
	}
	if httpResp.StatusCode != http.StatusOK {
		var env errEnvelope
		if jerr := json.Unmarshal(data, &env); jerr != nil || env.Error == nil {
			return nil, &transportError{err: fmt.Errorf("status %d with undecodable error body", httpResp.StatusCode)}
		}
		return nil, env.Error
	}
	return data, nil
}
