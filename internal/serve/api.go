// Package serve is the kernel as a service: a long-running HTTP daemon
// that accepts workload/policy-evaluation requests — one Table I cell
// each: an (attack, defense, seed) coordinate — runs them on a bounded
// pool of warm, reset-instead-of-rebuilt kernel environments, and
// returns verdicts, validated traces and forensic findings.
//
// The robustness contract is load-shedding without accuracy-shedding:
// under overload the server rejects explicitly (429 + Retry-After,
// never a silent drop), but a request that is admitted always gets a
// correct, deterministic answer — the same body and seed produce
// byte-identical response bodies whether served by a fresh environment,
// a reset one, or any pool width. Degraded operation changes *which*
// requests run, never *what* an admitted request computes.
//
// Every failure surfaces as a typed Error whose transient-vs-permanent
// classification is table-driven (see codeInfo), so client retry
// decisions never string-match error text. The same contract extends
// webnet's typed errors (TransientError.Retryable, NotFoundError.
// Retryable) under the RetryableError interface.
package serve

import (
	"fmt"
	"net/http"

	"jskernel/internal/obs"
	"jskernel/internal/trace"
)

// Request is one evaluation request: a single Table I cell. Attack
// selects a timing-attack row (by ID, e.g. "loopscan") or a CVE row
// (by identifier, e.g. "CVE-2018-5092"); Defense selects the column.
// The response is a pure function of this struct — it carries no
// server-side nondeterminism.
type Request struct {
	Attack  string `json:"attack"`
	Defense string `json:"defense"`
	Seed    int64  `json:"seed"`
	// Reps is the repetition budget for timing rows (ignored for CVE
	// rows); zero takes the server default, values above the server cap
	// are rejected as bad_request rather than silently clamped.
	Reps int `json:"reps,omitempty"`
	// Trace includes a validated kernel lifecycle trace summary.
	Trace bool `json:"trace,omitempty"`
	// Forensics streams the run through the internal/obs detectors and
	// includes the forensic re-judgement alongside the harness verdict.
	Forensics bool `json:"forensics,omitempty"`
	// DeadlineMs is this request's completion budget in milliseconds,
	// measured from admission; zero takes the server default. The
	// deadline propagates into the simulator as cooperative
	// cancellation: a request that cannot finish in budget returns a
	// typed deadline error, never a partial verdict.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Tenant attributes this request in the cross-request forensics
	// ledger (empty accumulates under the anonymous tenant). It never
	// affects the evaluation or the response bytes — the same cell with
	// a different tenant returns identical bodies.
	Tenant string `json:"tenant,omitempty"`
}

// Channel is the per-channel statistical outcome of a timing cell,
// mirroring attack.ChannelResult with a stable wire format.
type Channel struct {
	Channel string  `json:"channel"`
	MeanA   float64 `json:"mean_a"`
	MeanB   float64 `json:"mean_b"`
	CohensD float64 `json:"cohens_d"`
	Leaks   bool    `json:"leaks"`
}

// MarshalJSON renders non-finite effect sizes as strings (a
// zero-variance channel with distinct means has an infinite Cohen's d,
// which JSON cannot carry as a number).
func (c Channel) MarshalJSON() ([]byte, error) {
	v := obs.ChannelVerdict{Channel: c.Channel, MeanA: c.MeanA, MeanB: c.MeanB, CohensD: c.CohensD, Leaks: c.Leaks}
	return v.MarshalJSON()
}

// TraceSummary reports the request's kernel lifecycle trace after
// replay through the trace validator.
type TraceSummary struct {
	// Validated is true when the trace satisfied every kernel lifecycle
	// invariant (it always should; false is a server bug surfaced loudly).
	Validated bool         `json:"validated"`
	Report    trace.Report `json:"report"`
}

// ForensicsSummary is the obs layer's independent re-judgement of the
// cell, reconstructed from the event stream alone.
type ForensicsSummary struct {
	// Flagged is the forensic verdict: the stream shows the attack
	// succeeding. On a healthy server Flagged == !Defended.
	Flagged bool `json:"flagged"`
	// Channels carries the forensic per-channel statistics (timing rows).
	Channels []obs.ChannelVerdict `json:"channels,omitempty"`
	// Evidence cites the record sequences that triggered the CVE mirror.
	Evidence []uint64 `json:"evidence,omitempty"`
	// Signatures are the streaming detectors' findings.
	Signatures []obs.Signature `json:"signatures,omitempty"`
}

// Response is one completed evaluation. All fields derive from the
// deterministic simulation: no wall-clock times, pool identities or
// reuse generations appear here, which is what keeps equal requests
// byte-equal across any server configuration.
type Response struct {
	Attack  string `json:"attack"`
	Defense string `json:"defense"`
	Kind    string `json:"kind"` // "timing" or "cve"
	Seed    int64  `json:"seed"`
	Reps    int    `json:"reps,omitempty"` // resolved budget (timing rows)

	Defended  bool      `json:"defended"`
	Exploited bool      `json:"exploited,omitempty"` // CVE rows
	Channels  []Channel `json:"channels,omitempty"`  // timing rows

	// Table is the cell rendered in Table I's format.
	Table string `json:"table"`

	Trace     *TraceSummary     `json:"trace,omitempty"`
	Forensics *ForensicsSummary `json:"forensics,omitempty"`
}

// Code names one failure class. The classification below is the single
// source of truth for HTTP status and retryability — clients and tests
// consume the table, never error strings.
type Code string

// Failure classes.
const (
	// CodeBadRequest: malformed JSON, invalid field values, oversized
	// bodies. Permanent — the same bytes will fail the same way.
	CodeBadRequest Code = "bad_request"
	// CodeUnknownAttack / CodeUnknownDefense: the named row or column
	// does not exist. Permanent.
	CodeUnknownAttack  Code = "unknown_attack"
	CodeUnknownDefense Code = "unknown_defense"
	// CodeOverloaded: admission refused — the queue is full or the
	// queue wait would already exceed the request deadline. Transient:
	// retry after Retry-After.
	CodeOverloaded Code = "overloaded"
	// CodeDraining: the server is shutting down gracefully. Transient
	// (another replica, or this one after restart, will serve it).
	CodeDraining Code = "draining"
	// CodeBreakerOpen: repeated environment poisonings opened the
	// circuit breaker; evaluations are refused until the cooldown
	// probe succeeds. Transient.
	CodeBreakerOpen Code = "breaker_open"
	// CodeEnvPoisoned: the evaluation panicked; the worker's pooled
	// environment was discarded and replaced. Transient — a retry runs
	// on a fresh environment.
	CodeEnvPoisoned Code = "env_poisoned"
	// CodeDeadline: the request's own completion budget expired
	// (queued too long, or the simulation was cooperatively canceled
	// mid-run). Permanent for this budget: retrying with the same
	// deadline buys nothing; the client must decide to spend more.
	CodeDeadline Code = "deadline_exceeded"
	// CodeCanceled: the client went away mid-request. Permanent — there
	// is no one left to retry for.
	CodeCanceled Code = "canceled"
	// CodeInternal: an invariant broke (e.g. a trace failed
	// validation). Permanent: retries would loudly fail again, which is
	// the point — this class must page, not mask.
	CodeInternal Code = "internal"
	// CodeTelemetryOff: the request needs the telemetry plane
	// (/v1/events, /ledgerz) but the server runs with telemetry
	// disabled. Permanent — this replica will keep refusing.
	CodeTelemetryOff Code = "telemetry_off"
)

// codeInfo is the typed-error classification table: HTTP status and
// transient-vs-permanent, per code. Documented in DESIGN §12 and pinned
// by TestErrorClassificationTable.
var codeInfo = map[Code]struct {
	Status    int
	Retryable bool
}{
	CodeBadRequest:     {http.StatusBadRequest, false},
	CodeUnknownAttack:  {http.StatusNotFound, false},
	CodeUnknownDefense: {http.StatusNotFound, false},
	CodeOverloaded:     {http.StatusTooManyRequests, true},
	CodeDraining:       {http.StatusServiceUnavailable, true},
	CodeBreakerOpen:    {http.StatusServiceUnavailable, true},
	CodeEnvPoisoned:    {http.StatusInternalServerError, true},
	CodeDeadline:       {http.StatusGatewayTimeout, false},
	CodeCanceled:       {http.StatusRequestTimeout, false},
	CodeInternal:       {http.StatusInternalServerError, false},
	CodeTelemetryOff:   {http.StatusNotFound, false},
}

// Error is the service's typed failure. It is both the wire format
// (JSON body of every non-200 response) and the Go error value the
// client surfaces.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	// RetryAfterMs carries the server's backoff hint for transient
	// rejections (mirrors the Retry-After header).
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("serve: %s: %s", e.Code, e.Message)
}

// Retryable reports the table-driven transient-vs-permanent
// classification of this failure.
func (e *Error) Retryable() bool { return codeInfo[e.Code].Retryable }

// HTTPStatus returns the status the table assigns this code (500 for
// unknown codes — loud, permanent).
func (e *Error) HTTPStatus() int {
	if info, ok := codeInfo[e.Code]; ok {
		return info.Status
	}
	return http.StatusInternalServerError
}

// RetryableError is the repo-wide contract for typed retry decisions:
// an error that knows whether retrying can help. serve.Error,
// webnet.TransientError and webnet.NotFoundError implement it; retry
// loops consult the method (via Retryable), never the error text.
type RetryableError interface {
	error
	Retryable() bool
}

// errf builds a typed error.
func errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// errEnvelope is the JSON wrapper of every non-200 response.
type errEnvelope struct {
	Error *Error `json:"error"`
}
