package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jskernel/internal/trace"
)

// stats is the server's operational counter set. Service-layer counters
// are lock-free atomics updated on hot paths; the kernel aggregate is a
// mutex-guarded fold of per-request trace metrics (telemetry mode only).
// None of this feeds back into evaluation — /statsz observes the server,
// it never steers it, which keeps responses independent of history.
type stats struct {
	admitted           atomic.Uint64
	completed          atomic.Uint64
	rejectedOverload   atomic.Uint64
	rejectedDraining   atomic.Uint64
	rejectedBreaker    atomic.Uint64
	rejectedBadRequest atomic.Uint64
	deadlineExceeded   atomic.Uint64
	canceled           atomic.Uint64
	internalErrors     atomic.Uint64
	envReplaced        atomic.Uint64

	kernelMu sync.Mutex
	kernel   KernelTotals
}

// KernelTotals aggregates the kernel metrics registries of every traced
// evaluation (Config.Telemetry). Virtual-time totals accumulate across
// requests; they share no clock with the service layer's wall time.
type KernelTotals struct {
	Runs               uint64 `json:"runs"`
	Installs           uint64 `json:"installs"`
	Enqueued           uint64 `json:"enqueued"`
	Dispatched         uint64 `json:"dispatched"`
	Shed               uint64 `json:"shed"`
	Cancelled          uint64 `json:"cancelled"`
	Expired            uint64 `json:"expired"`
	Panics             uint64 `json:"panics"`
	Quarantines        uint64 `json:"quarantines"`
	PolicyDecisions    uint64 `json:"policy_decisions"`
	InterposeCrossings uint64 `json:"interpose_crossings"`
	InterposeVirtual   uint64 `json:"interpose_virtual"`
}

// absorbKernel folds one request's kernel metrics into the totals.
func (st *stats) absorbKernel(m *trace.Metrics) {
	if m == nil {
		return
	}
	st.kernelMu.Lock()
	defer st.kernelMu.Unlock()
	k := &st.kernel
	k.Runs++
	k.Installs += m.Installs
	k.Enqueued += m.Enqueued
	k.Dispatched += m.Dispatched
	k.Shed += m.Shed
	k.Cancelled += m.Cancelled
	k.Expired += m.Expired
	k.Panics += m.Panics
	k.Quarantines += m.Quarantines
	k.PolicyDecisions += m.PolicyDecisions
	k.InterposeCrossings += m.InterposeCrossings
	k.InterposeVirtual += uint64(m.InterposeVirtual)
}

// Stats is the /statsz wire format (and the programmatic snapshot used
// by jsk-bench -serve and the chaos tests).
type Stats struct {
	Admitted           uint64 `json:"admitted"`
	Completed          uint64 `json:"completed"`
	RejectedOverload   uint64 `json:"rejected_overload"`
	RejectedDraining   uint64 `json:"rejected_draining"`
	RejectedBreaker    uint64 `json:"rejected_breaker"`
	RejectedBadRequest uint64 `json:"rejected_bad_request"`
	DeadlineExceeded   uint64 `json:"deadline_exceeded"`
	Canceled           uint64 `json:"canceled"`
	InternalErrors     uint64 `json:"internal_errors"`
	EnvReplaced        uint64 `json:"env_replaced"`

	QueueDepth int  `json:"queue_depth"`
	Pool       int  `json:"pool"`
	Draining   bool `json:"draining"`
	// EwmaServiceMs is the admission controller's smoothed service-time
	// estimate (0 until the first completion).
	EwmaServiceMs int64 `json:"ewma_service_ms"`

	// Kernel is present only in telemetry mode.
	Kernel *KernelTotals `json:"kernel,omitempty"`
}

// Snapshot captures the server's counters at this instant.
func (s *Server) Snapshot() Stats {
	snap := Stats{
		Admitted:           s.stats.admitted.Load(),
		Completed:          s.stats.completed.Load(),
		RejectedOverload:   s.stats.rejectedOverload.Load(),
		RejectedDraining:   s.stats.rejectedDraining.Load(),
		RejectedBreaker:    s.stats.rejectedBreaker.Load(),
		RejectedBadRequest: s.stats.rejectedBadRequest.Load(),
		DeadlineExceeded:   s.stats.deadlineExceeded.Load(),
		Canceled:           s.stats.canceled.Load(),
		InternalErrors:     s.stats.internalErrors.Load(),
		EnvReplaced:        s.stats.envReplaced.Load(),
		QueueDepth:         len(s.queue),
		Pool:               s.cfg.pool(),
		Draining:           s.Draining(),
		EwmaServiceMs:      time.Duration(s.ewmaNs.Load()).Milliseconds(),
	}
	if s.cfg.Telemetry {
		s.stats.kernelMu.Lock()
		k := s.stats.kernel
		s.stats.kernelMu.Unlock()
		snap.Kernel = &k
	}
	return snap
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyState is the /readyz wire format.
type readyState struct {
	Status       string `json:"status"`
	QueueDepth   int    `json:"queue_depth"`
	Pool         int    `json:"pool"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// handleReadyz is readiness: 503 while draining or while the circuit
// breaker is open, 200 otherwise. Load balancers steer on this; the
// admission path enforces the same conditions with typed errors.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := readyState{QueueDepth: len(s.queue), Pool: s.cfg.pool()}
	if s.Draining() {
		st.Status = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	if open, wait := s.breaker.rejects(time.Now()); open {
		st.Status = "breaker_open"
		st.RetryAfterMs = wait.Milliseconds() + 1
		s.writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	st.Status = "ready"
	s.writeJSON(w, http.StatusOK, st)
}

// handleStatsz serves the counter snapshot.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Snapshot())
}
