package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"jskernel/internal/expr/runner"
	"jskernel/internal/telemetry"
)

// Smoke is the CI smoke suite for the service layer, run in-process by
// `jsk-serve -smoke`. It boots real servers on loopback listeners and
// drives them through the robustness contract end to end:
//
//  1. determinism — the same (body, seed) yields byte-identical
//     responses across concurrent duplicate requests, across pool
//     widths, and across environment-reuse generations;
//  2. overload — a saturated pool sheds explicitly with typed 429s and
//     Retry-After hints while every admitted request still answers
//     correctly (no silent drops: completions + typed rejections add up);
//  3. drain — SIGTERM lets in-flight requests finish, rejects new ones
//     with a typed draining error, and stops within the timeout;
//  4. telemetry — /metricsz scraped mid-load passes the in-repo
//     OpenMetrics parser, every verdict streamed on /v1/events agrees
//     byte-for-byte with its response's forensics, and the campaign
//     fixture (a probe split across requests, each individually clean)
//     is flagged by the cross-request ledger.
//
// ledgerReport, when non-empty, receives the final forensics ledger
// JSON as a CI artifact. Any violation returns an error; CI fails the
// stage on non-zero exit.
func Smoke(out io.Writer, ledgerReport string) error {
	if err := smokeDeterminism(out); err != nil {
		return fmt.Errorf("determinism: %w", err)
	}
	if err := smokeOverload(out); err != nil {
		return fmt.Errorf("overload: %w", err)
	}
	if err := smokeDrain(out); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := smokeTelemetry(out, ledgerReport); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	fmt.Fprintln(out, "serve smoke: all stages passed")
	return nil
}

// smokeCells is the request mix: timing and CVE rows, traced and
// untraced, with forensics on and off, across kernel and non-kernel
// defenses.
func smokeCells() []Request {
	return []Request{
		{Attack: "loopscan", Defense: "jskernel-chrome", Seed: 42, Reps: 2, Trace: true, Forensics: true},
		{Attack: "loopscan", Defense: "chrome", Seed: 42, Reps: 2},
		{Attack: "cache-attack", Defense: "jskernel-chrome", Seed: 7, Reps: 2, Forensics: true},
		{Attack: "CVE-2018-5092", Defense: "jskernel-chrome", Seed: 42, Trace: true},
		{Attack: "CVE-2018-5092", Defense: "chrome", Seed: 42, Forensics: true},
		{Attack: "clock-edge", Defense: "deterfox", Seed: 11, Reps: 2},
	}
}

// startLoopback boots a server on an ephemeral loopback port and
// returns it with a ready client.
func startLoopback(cfg Config) (*Server, *Client, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("listen: %v", err)
	}
	s := New(cfg)
	s.Start(ln)
	return s, &Client{BaseURL: "http://" + ln.Addr().String()}, nil
}

type smokeResult struct {
	body []byte
	err  error
}

// smokeDeterminism checks response-byte stability three ways: duplicate
// concurrent requests agree, a wide pool agrees with a single warm
// worker (maximum environment reuse), and repeated rounds on the same
// worker (reuse generations 1..3) agree with the first.
func smokeDeterminism(out io.Writer) error {
	cells := smokeCells()

	// Wide pool, duplicates in flight concurrently.
	wide, wideClient, err := startLoopback(Config{Pool: 4, QueueDepth: 32, Telemetry: true, Log: io.Discard})
	if err != nil {
		return err
	}
	defer shutdownQuiet(wide)
	const dup = 2
	n := len(cells) * dup
	results := runner.Map(4, n, func(i int) smokeResult {
		body, err := wideClient.EvalBytes(context.Background(), cells[i%len(cells)])
		return smokeResult{body: body, err: err}
	})
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("wide pool request %d: %v", i, r.err)
		}
	}
	for i := len(cells); i < n; i++ {
		if !bytes.Equal(results[i].body, results[i%len(cells)].body) {
			return fmt.Errorf("concurrent duplicates of cell %d disagree", i%len(cells))
		}
	}

	// Single worker: every cell reuses one reset environment, three
	// generations deep. Bytes must match the wide pool's exactly.
	narrow, narrowClient, err := startLoopback(Config{Pool: 1, QueueDepth: 32, Log: io.Discard})
	if err != nil {
		return err
	}
	defer shutdownQuiet(narrow)
	for gen := 1; gen <= 3; gen++ {
		for i, req := range cells {
			body, err := narrowClient.EvalBytes(context.Background(), req)
			if err != nil {
				return fmt.Errorf("narrow pool gen %d cell %d: %v", gen, i, err)
			}
			if !bytes.Equal(body, results[i].body) {
				return fmt.Errorf("cell %d differs between pool widths (reuse generation %d)", i, gen)
			}
		}
	}
	fmt.Fprintf(out, "serve smoke: determinism ok (%d cells, %d concurrent, 3 reuse generations)\n", len(cells), n)
	return nil
}

// smokeOverload saturates a pool-1, queue-1 server and checks the shed
// contract: rejections are typed 429s with retry hints, nothing is
// dropped silently, and every success matches the unloaded reference.
func smokeOverload(out io.Writer) error {
	ref, refClient, err := startLoopback(Config{Pool: 1, QueueDepth: 32, Log: io.Discard})
	if err != nil {
		return err
	}
	defer shutdownQuiet(ref)
	req := Request{Attack: "loopscan", Defense: "jskernel-chrome", Seed: 42, Reps: 2}
	want, err := refClient.EvalBytes(context.Background(), req)
	if err != nil {
		return fmt.Errorf("reference run: %v", err)
	}

	s, client, err := startLoopback(Config{Pool: 1, QueueDepth: 1, Log: io.Discard})
	if err != nil {
		return err
	}
	defer shutdownQuiet(s)
	const total = 16
	// No client retries: we are counting first-attempt outcomes.
	client.MaxAttempts = 1
	results := runner.Map(8, total, func(int) smokeResult {
		body, err := client.EvalBytes(context.Background(), req)
		return smokeResult{body: body, err: err}
	})
	var ok, shed int
	for i, r := range results {
		switch {
		case r.err == nil:
			if !bytes.Equal(r.body, want) {
				return fmt.Errorf("request %d: response under overload differs from reference", i)
			}
			ok++
		default:
			e, isTyped := r.err.(*Error)
			if !isTyped {
				return fmt.Errorf("request %d: untyped failure under overload: %v", i, r.err)
			}
			if e.Code != CodeOverloaded {
				return fmt.Errorf("request %d: expected overloaded, got %s", i, e.Code)
			}
			if e.RetryAfterMs <= 0 {
				return fmt.Errorf("request %d: 429 without a Retry-After hint", i)
			}
			shed++
		}
	}
	if shed == 0 {
		return fmt.Errorf("pool-1 queue-1 server absorbed %d concurrent requests without shedding", total)
	}
	if ok+shed != total {
		return fmt.Errorf("silent drop: %d ok + %d shed != %d sent", ok, shed, total)
	}
	fmt.Fprintf(out, "serve smoke: overload ok (%d/%d served correctly, %d shed with typed 429+Retry-After)\n", ok, total, shed)
	return nil
}

// smokeDrain boots a daemon exactly as cmd/jsk-serve does — Run plus a
// SIGTERM channel — puts requests in flight, delivers a real SIGTERM to
// this process, and requires: Run returns cleanly within the drain
// timeout, every in-flight request completes or fails typed, and a
// request sent after the drain began is refused with the typed draining
// error (or the closed listener).
func smokeDrain(out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %v", err)
	}
	s := New(Config{Pool: 2, QueueDepth: 16, Log: io.Discard})
	client := &Client{BaseURL: "http://" + ln.Addr().String(), MaxAttempts: 1}
	req := Request{Attack: "loopscan", Defense: "jskernel-chrome", Seed: 42, Reps: 2}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM)
	defer signal.Stop(stop)

	const inflight = 4
	start := time.Now()
	// Thunk layout: 0 runs the daemon loop, 1..inflight are client
	// requests, the last waits for admissions then delivers SIGTERM.
	results := runner.Map(inflight+2, inflight+2, func(i int) smokeResult {
		switch i {
		case 0:
			return smokeResult{err: s.Run(ln, stop, 30*time.Second)}
		case inflight + 1:
			bound := time.Now().Add(10 * time.Second)
			for s.Snapshot().Admitted < 1 && time.Now().Before(bound) {
				time.Sleep(5 * time.Millisecond)
			}
			syscall.Kill(os.Getpid(), syscall.SIGTERM)
			return smokeResult{}
		default:
			waitReady(client.BaseURL)
			body, err := client.EvalBytes(context.Background(), req)
			return smokeResult{body: body, err: err}
		}
	})
	if results[0].err != nil {
		return fmt.Errorf("drain did not complete cleanly: %v", results[0].err)
	}
	elapsed := time.Since(start)
	var served, refused int
	for i := 1; i <= inflight; i++ {
		r := results[i]
		switch {
		case r.err == nil:
			served++
		default:
			e, isTyped := r.err.(*Error)
			if isTyped && (e.Code == CodeDraining || e.Code == CodeOverloaded) {
				refused++
				continue
			}
			// The listener may already be gone for late requests; a
			// transport error is a typed, retryable refusal too.
			if _, isTransport := r.err.(*transportError); isTransport {
				refused++
				continue
			}
			return fmt.Errorf("in-flight request %d failed untyped during drain: %v", i, r.err)
		}
	}
	if served == 0 {
		return fmt.Errorf("drain served none of the in-flight requests")
	}
	// After drain, new work must be refused, not half-served.
	if _, err := client.EvalBytes(context.Background(), req); err == nil {
		return fmt.Errorf("request after drain completed was served")
	}
	fmt.Fprintf(out, "serve smoke: drain ok (%d served, %d refused typed, drained in %v)\n", served, refused, elapsed.Round(time.Millisecond))
	return nil
}

// smokeTelemetry exercises the live observability plane against the
// smoke matrix: a subscriber on /v1/events collects every streamed
// forensic verdict while the cells run and /metricsz is scraped
// mid-load; afterwards each streamed summary must byte-match the
// forensics in the corresponding response body (100% agreement), the
// campaign fixture must be flagged by the ledger while staying clean
// per-request, and the drain must end the event stream cleanly.
func smokeTelemetry(out io.Writer, ledgerReport string) error {
	s, client, err := startLoopback(Config{Pool: 2, QueueDepth: 32, Telemetry: true, Log: io.Discard})
	if err != nil {
		return err
	}
	shut := false
	defer func() {
		if !shut {
			shutdownQuiet(s)
		}
	}()

	// The live subscriber: collects streamed verdicts keyed by the
	// cell coordinate (unique per request in this stage).
	type streamed struct {
		summaries map[string]json.RawMessage
		campaigns int
		err       error
	}
	coord := func(attack, defense string, seed int64) string {
		return fmt.Sprintf("%s|%s|%d", attack, defense, seed)
	}
	subDone := make(chan streamed, 1)
	go func() {
		st := streamed{summaries: make(map[string]json.RawMessage)}
		st.err = client.Events(context.Background(), 0, func(ev StreamEvent) error {
			switch ev.Type {
			case telemetry.EventForensics:
				var fe struct {
					Attack  string          `json:"attack"`
					Defense string          `json:"defense"`
					Seed    int64           `json:"seed"`
					Summary json.RawMessage `json:"summary"`
				}
				if err := json.Unmarshal(ev.Data, &fe); err != nil {
					return fmt.Errorf("undecodable forensics event: %v", err)
				}
				st.summaries[coord(fe.Attack, fe.Defense, fe.Seed)] = fe.Summary
			case telemetry.EventCampaign:
				st.campaigns++
			}
			return nil
		})
		subDone <- st
	}()

	// Drive the matrix with forensics on, scraping /metricsz between
	// requests — every scrape must pass the self-check parser.
	scrape := func(when string) error {
		resp, err := http.Get(client.BaseURL + "/metricsz")
		if err != nil {
			return fmt.Errorf("scrape %s: %v", when, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("scrape %s read: %v", when, err)
		}
		if _, err := telemetry.ParseExposition(string(body)); err != nil {
			return fmt.Errorf("scrape %s failed the OpenMetrics self-check: %v", when, err)
		}
		return nil
	}
	bodyForensics := make(map[string]json.RawMessage)
	for i, req := range smokeCells() {
		req.Forensics = true
		req.Tenant = "smoke"
		body, err := client.EvalBytes(context.Background(), req)
		if err != nil {
			return fmt.Errorf("cell %d: %v", i, err)
		}
		var resp struct {
			Forensics json.RawMessage `json:"forensics"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("cell %d: undecodable response: %v", i, err)
		}
		bodyForensics[coord(req.Attack, req.Defense, req.Seed)] = resp.Forensics
		if err := scrape(fmt.Sprintf("after cell %d", i)); err != nil {
			return err
		}
	}

	// The campaign fixture: one implicit-clock probe split across five
	// requests against a defended surface. Each request must stay clean
	// on its own; only the ledger sees the campaign.
	const probes = 5
	for i := 0; i < probes; i++ {
		req := Request{Attack: "loopscan", Defense: "jskernel-chrome", Seed: 9_000 + int64(i),
			Reps: 1, Forensics: true, Tenant: "smoke-campaign"}
		body, err := client.EvalBytes(context.Background(), req)
		if err != nil {
			return fmt.Errorf("campaign probe %d: %v", i, err)
		}
		var resp struct {
			Forensics struct {
				Flagged bool `json:"flagged"`
			} `json:"forensics"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("campaign probe %d: undecodable response: %v", i, err)
		}
		if resp.Forensics.Flagged {
			return fmt.Errorf("campaign probe %d flagged per-request — the fixture must stay under per-request thresholds", i)
		}
	}

	// Settle the plane, pull the ledger, keep it as the CI artifact.
	s.Plane().Barrier()
	resp, err := http.Get(client.BaseURL + "/ledgerz")
	if err != nil {
		return fmt.Errorf("ledgerz: %v", err)
	}
	ledgerBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("ledgerz read: %v", err)
	}
	var ledger telemetry.LedgerReport
	if err := json.Unmarshal(ledgerBytes, &ledger); err != nil {
		return fmt.Errorf("ledgerz undecodable: %v", err)
	}
	campaign := false
	for _, e := range ledger.Entries {
		if e.Flagged && e.Tenant == "smoke-campaign" {
			campaign = true
		}
	}
	if !campaign {
		return fmt.Errorf("ledger missed the split campaign after %d individually-clean probes:\n%s", probes, ledgerBytes)
	}
	if ledgerReport != "" {
		if err := os.WriteFile(ledgerReport, ledgerBytes, 0o644); err != nil {
			return fmt.Errorf("writing ledger report: %v", err)
		}
	}

	// Drain; the subscriber must observe a clean end of stream.
	shut = true
	shutdownQuiet(s)
	st := <-subDone
	if st.err != nil {
		return fmt.Errorf("event stream ended uncleanly: %v", st.err)
	}

	// 100% agreement: every response's forensics has a byte-identical
	// streamed twin.
	keys := make([]string, 0, len(bodyForensics))
	for key := range bodyForensics {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		want := bodyForensics[key]
		got, ok := st.summaries[key]
		if !ok {
			return fmt.Errorf("cell %s: no streamed verdict (silent drop)", key)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("cell %s: streamed verdict disagrees with response forensics\nbody:   %s\nstream: %s", key, want, got)
		}
	}
	if st.campaigns == 0 {
		return fmt.Errorf("campaign finding never reached /v1/events")
	}
	fmt.Fprintf(out, "serve smoke: telemetry ok (%d verdicts streamed in agreement, %d scrapes parsed, campaign flagged by ledger, %d campaign events)\n",
		len(bodyForensics), len(bodyForensics), st.campaigns)
	return nil
}

// waitReady polls /healthz until the daemon answers (bounded), so
// clients racing the daemon's own startup don't misread "not yet
// listening" as a drain refusal.
func waitReady(baseURL string) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// shutdownQuiet tears down a smoke server, ignoring errors: smoke
// assertions live on the primary paths above.
func shutdownQuiet(s *Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}
