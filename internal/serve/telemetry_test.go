package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jskernel/internal/telemetry"
)

func getPath(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// TestMetricszSelfChecks: the exposition must parse under the in-repo
// OpenMetrics parser — with telemetry off (service counters only), with
// telemetry on after traffic, and mid-drain.
func TestMetricszSelfChecks(t *testing.T) {
	plain := newTestServer(t, Config{Pool: 1})
	w := getPath(t, plain, "/metricsz")
	if w.Code != http.StatusOK {
		t.Fatalf("plain metricsz: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("content type %q", ct)
	}
	if _, err := telemetry.ParseExposition(w.Body.String()); err != nil {
		t.Fatalf("plain exposition failed self-check: %v\n%s", err, w.Body.String())
	}

	telem := newTestServer(t, Config{Pool: 1, Telemetry: true})
	for i := 0; i < 2; i++ {
		if w := postEval(t, telem, `{"attack":"loopscan","defense":"jskernel-chrome","seed":3,"reps":1}`); w.Code != http.StatusOK {
			t.Fatalf("eval %d: %d", i, w.Code)
		}
	}
	w = getPath(t, telem, "/metricsz")
	fams, err := telemetry.ParseExposition(w.Body.String())
	if err != nil {
		t.Fatalf("telemetry exposition failed self-check: %v\n%s", err, w.Body.String())
	}
	byName := map[string]telemetry.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"jsk_serve_admitted", "jsk_serve_rejected", "jsk_serve_pool",
		"jsk_kernel_requests", "jsk_kernel_dispatch_latency_seconds", "jsk_kernel_api_enqueues",
		"jsk_span_phase_seconds", "jsk_spans", "jsk_telemetry_flush_items", "jsk_ledger_observed_requests",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	if f := byName["jsk_kernel_requests"]; len(f.Samples) != 1 || f.Samples[0].Value != 2 {
		t.Errorf("jsk_kernel_requests = %+v, want 2", f.Samples)
	}
	if f := byName["jsk_span_phase_seconds"]; len(f.Samples) == 0 {
		t.Error("span phase histogram empty")
	}

	// Scrape during drain: begin shutdown, then scrape — the exposition
	// must still be complete and parseable.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := telem.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	w = getPath(t, telem, "/metricsz")
	if w.Code != http.StatusOK {
		t.Fatalf("mid-drain metricsz: %d", w.Code)
	}
	if _, err := telemetry.ParseExposition(w.Body.String()); err != nil {
		t.Fatalf("post-drain exposition failed self-check: %v", err)
	}
}

// TestStatszGolden pins the /statsz wire format byte-for-byte on a
// fresh, idle server: a field rename, reorder or type change is a
// breaking change for scrapers and must show up here.
func TestStatszGolden(t *testing.T) {
	s := newTestServer(t, Config{Pool: 2, QueueDepth: 8})
	w := getPath(t, s, "/statsz")
	if w.Code != http.StatusOK {
		t.Fatalf("statsz: %d", w.Code)
	}
	const golden = `{"admitted":0,"completed":0,"rejected_overload":0,"rejected_draining":0,"rejected_breaker":0,"rejected_bad_request":0,"deadline_exceeded":0,"canceled":0,"internal_errors":0,"env_replaced":0,"queue_depth":0,"pool":2,"draining":false,"ewma_service_ms":0}` + "\n"
	if got := w.Body.String(); got != golden {
		t.Fatalf("statsz wire format changed:\n got: %s\nwant: %s", got, golden)
	}
}

// TestVersionz: build identity is always served, even without telemetry.
func TestVersionz(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1})
	w := getPath(t, s, "/versionz")
	if w.Code != http.StatusOK {
		t.Fatalf("versionz: %d", w.Code)
	}
	var v struct {
		Module    string `json:"module"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("versionz decode: %v", err)
	}
	if v.Module == "" || v.GoVersion == "" {
		t.Fatalf("versionz incomplete: %s", w.Body.String())
	}
}

// TestTelemetryEndpointsRequirePlane: /v1/events and /ledgerz refuse
// with the typed permanent telemetry_off code when the plane is off.
func TestTelemetryEndpointsRequirePlane(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1})
	for _, path := range []string{"/v1/events", "/ledgerz"} {
		w := getPath(t, s, path)
		if w.Code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, w.Code)
		}
		e := decodeError(t, w)
		if e.Code != CodeTelemetryOff || e.Retryable() {
			t.Errorf("%s: code %s retryable=%v", path, e.Code, e.Retryable())
		}
	}
}

// TestRequestIDHeader: every /v1/eval response carries a unique
// service-assigned request ID — in a header, never the body.
func TestRequestIDHeader(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1, Telemetry: true})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		w := postEval(t, s, `{"attack":"loopscan","defense":"chrome","seed":1,"reps":1}`)
		id := w.Header().Get("Jsk-Request-Id")
		if id == "" {
			t.Fatal("missing Jsk-Request-Id header")
		}
		if seen[id] {
			t.Fatalf("request ID %s reused", id)
		}
		seen[id] = true
		if strings.Contains(w.Body.String(), id) {
			t.Fatalf("request ID leaked into response body")
		}
	}
	// Rejections carry one too.
	w := postEval(t, s, `{"attack":"nope","defense":"chrome"}`)
	if w.Header().Get("Jsk-Request-Id") == "" {
		t.Error("rejection missing Jsk-Request-Id header")
	}
}

// TestTraceQueryParam: ?trace=summary must produce byte-identical
// responses to the body flag.
func TestTraceQueryParam(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1})
	viaBody := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":5,"reps":1,"trace":true}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/eval?trace=summary",
		strings.NewReader(`{"attack":"loopscan","defense":"jskernel-chrome","seed":5,"reps":1}`))
	viaQuery := httptest.NewRecorder()
	s.Handler().ServeHTTP(viaQuery, req)
	if viaBody.Code != http.StatusOK || viaQuery.Code != http.StatusOK {
		t.Fatalf("status body=%d query=%d", viaBody.Code, viaQuery.Code)
	}
	if !bytes.Equal(viaBody.Body.Bytes(), viaQuery.Body.Bytes()) {
		t.Fatal("?trace=summary diverged from body trace flag")
	}
	var resp Response
	if err := json.Unmarshal(viaQuery.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || !resp.Trace.Validated {
		t.Fatal("trace summary missing or unvalidated")
	}
}

// TestResponseDeterminismAcrossPlaneModes extends the telemetry
// byte-identity pin to the full plane matrix: off, batched, sync. The
// wall clock only exists on the serve/telemetry side of the boundary,
// so the same request must return identical bytes under every mode at
// any time — this is the lint boundary test backing the detwalltime
// allowlist extension.
func TestResponseDeterminismAcrossPlaneModes(t *testing.T) {
	body := `{"attack":"loopscan","defense":"jskernel-chrome","seed":11,"reps":2,"forensics":true,"tenant":"t-a"}`
	configs := []Config{
		{Pool: 1},
		{Pool: 1, Telemetry: true},
		{Pool: 1, Telemetry: true, TelemetrySync: true},
	}
	var want []byte
	for i, cfg := range configs {
		s := newTestServer(t, cfg)
		for rep := 0; rep < 2; rep++ {
			w := postEval(t, s, body)
			if w.Code != http.StatusOK {
				t.Fatalf("config %d rep %d: %d", i, rep, w.Code)
			}
			if want == nil {
				want = append([]byte(nil), w.Body.Bytes()...)
				continue
			}
			if !bytes.Equal(w.Body.Bytes(), want) {
				t.Fatalf("config %d rep %d diverged: plane mode leaked into response bytes", i, rep)
			}
		}
	}
}

// TestStreamingForensicsAgreement: the verdict streamed on /v1/events
// must agree with the per-response forensics of the same request, for
// every cell of a defended/undefended, timing/CVE matrix.
func TestStreamingForensicsAgreement(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1, Telemetry: true})
	cells := []string{
		`{"attack":"loopscan","defense":"chrome","seed":1,"reps":1,"forensics":true}`,
		`{"attack":"loopscan","defense":"jskernel-chrome","seed":1,"reps":1,"forensics":true}`,
		`{"attack":"cache-attack","defense":"chrome","seed":2,"reps":1,"forensics":true}`,
		`{"attack":"CVE-2018-5092","defense":"chrome","seed":3,"forensics":true}`,
		`{"attack":"CVE-2018-5092","defense":"jskernel-firefox","seed":3,"forensics":true}`,
	}
	// Forensics summaries stay as raw JSON throughout: infinite effect
	// sizes encode as strings, which the typed structs marshal but do
	// not unmarshal, and a byte-level comparison is the stronger claim
	// anyway.
	type rawBody struct {
		Forensics json.RawMessage `json:"forensics"`
	}
	type rawEvent struct {
		RequestID string          `json:"request_id"`
		Summary   json.RawMessage `json:"summary"`
	}
	flaggedOf := func(raw json.RawMessage) bool {
		var v struct {
			Flagged bool `json:"flagged"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decoding forensic verdict: %v", err)
		}
		return v.Flagged
	}
	bodies := make([]json.RawMessage, 0, len(cells))
	for _, c := range cells {
		w := postEval(t, s, c)
		if w.Code != http.StatusOK {
			t.Fatalf("eval %s: %d", c, w.Code)
		}
		var resp rawBody
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, resp.Forensics)
	}
	s.Plane().Barrier()
	evs, gap := s.Plane().Hub.Since(0, 0)
	if gap != nil {
		t.Fatalf("gap on fresh hub: %+v", gap)
	}
	var streamed []rawEvent
	for _, ev := range evs {
		if ev.Type != telemetry.EventForensics {
			continue
		}
		var fe rawEvent
		if err := json.Unmarshal(ev.Data, &fe); err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, fe)
	}
	if len(streamed) != len(cells) {
		t.Fatalf("streamed %d forensic verdicts, want %d", len(streamed), len(cells))
	}
	sawFlagged, sawClean := false, false
	for i, fe := range streamed {
		body := bodies[i]
		if body == nil || fe.Summary == nil {
			t.Fatalf("cell %d: missing forensics (body=%s stream=%s)", i, body, fe.Summary)
		}
		if flaggedOf(fe.Summary) != flaggedOf(body) {
			t.Errorf("cell %d: streamed flagged=%v, response flagged=%v — verdicts disagree", i, flaggedOf(fe.Summary), flaggedOf(body))
		}
		if !bytes.Equal(body, fe.Summary) {
			t.Errorf("cell %d: streamed summary diverged from response forensics\nbody:   %s\nstream: %s", i, body, fe.Summary)
		}
		if flaggedOf(body) {
			sawFlagged = true
		} else {
			sawClean = true
		}
	}
	if !sawFlagged || !sawClean {
		t.Errorf("matrix lost its contrast: flagged=%v clean=%v — agreement proven on one verdict only", sawFlagged, sawClean)
	}
}

// TestLedgerCampaignFixture is the acceptance fixture: an implicit-clock
// probe split across N requests against a *defended* surface. Every
// individual request's forensics must stay clean (the defense holds, so
// per-request judgement reports not-flagged), yet the cross-request
// ledger must flag the campaign — and a single request with the same
// fragments must never be flagged on its own.
func TestLedgerCampaignFixture(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1, Telemetry: true})
	probe := func(i int) string {
		return fmt.Sprintf(`{"attack":"loopscan","defense":"jskernel-chrome","seed":%d,"reps":1,"forensics":true,"tenant":"patient-attacker"}`, 100+i)
	}

	// Request 1 alone: per-request clean, no campaign.
	w := postEval(t, s, probe(0))
	if w.Code != http.StatusOK {
		t.Fatalf("probe 0: %d", w.Code)
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Forensics == nil || resp.Forensics.Flagged {
		t.Fatalf("defended probe flagged per-request: %+v — fixture requires per-request clean", resp.Forensics)
	}
	s.Plane().Barrier()
	if got := s.Plane().Ledger.Campaigns(); got != 0 {
		t.Fatalf("campaign flagged after a single request (%d) — MinRequests guard failed", got)
	}

	// The rest of the campaign: each request individually clean.
	const n = 5
	for i := 1; i < n; i++ {
		w := postEval(t, s, probe(i))
		if w.Code != http.StatusOK {
			t.Fatalf("probe %d: %d", i, w.Code)
		}
		var r Response
		if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Forensics.Flagged {
			t.Fatalf("probe %d flagged per-request; the fixture must stay under per-request thresholds", i)
		}
	}
	s.Plane().Barrier()
	if got := s.Plane().Ledger.Campaigns(); got == 0 {
		rep := s.Plane().Ledger.Report()
		t.Fatalf("campaign not flagged after %d probe requests; ledger: %+v", n, rep)
	}
	rep := s.Plane().Ledger.Report()
	var campaign *telemetry.LedgerEntry
	for i := range rep.Entries {
		if rep.Entries[i].Flagged {
			campaign = &rep.Entries[i]
			break
		}
	}
	if campaign == nil {
		t.Fatal("no flagged ledger entry")
	}
	if campaign.Tenant != "patient-attacker" || campaign.Scope != "loopscan" {
		t.Fatalf("campaign attributed to %+v", campaign.LedgerKey)
	}
	if campaign.Requests < 3 {
		t.Fatalf("campaign with %d contributing requests", campaign.Requests)
	}

	// The campaign finding reached the event stream.
	evs, _ := s.Plane().Hub.Since(0, 0)
	sawCampaign := false
	for _, ev := range evs {
		if ev.Type == telemetry.EventCampaign {
			sawCampaign = true
			var cf telemetry.CampaignFinding
			if err := json.Unmarshal(ev.Data, &cf); err != nil {
				t.Fatal(err)
			}
			if cf.Tenant != "patient-attacker" {
				t.Errorf("campaign event tenant %q", cf.Tenant)
			}
			if len(cf.RequestIDs) < 3 {
				t.Errorf("campaign event carries %d request IDs", len(cf.RequestIDs))
			}
		}
	}
	if !sawCampaign {
		t.Error("campaign finding never published to /v1/events")
	}
}

// TestLedgerDeterministicAcrossServers: the same serialized request
// sequence against two fresh servers yields byte-identical /ledgerz
// reports.
func TestLedgerDeterministicAcrossServers(t *testing.T) {
	sequence := []string{
		`{"attack":"loopscan","defense":"jskernel-chrome","seed":1,"reps":1,"tenant":"t1"}`,
		`{"attack":"cache-attack","defense":"chrome","seed":2,"reps":1,"tenant":"t2"}`,
		`{"attack":"loopscan","defense":"jskernel-chrome","seed":3,"reps":1,"tenant":"t1"}`,
		`{"attack":"CVE-2018-5092","defense":"chrome","seed":4,"tenant":"t2"}`,
		`{"attack":"loopscan","defense":"jskernel-chrome","seed":5,"reps":1,"tenant":"t1"}`,
	}
	run := func() []byte {
		s := newTestServer(t, Config{Pool: 1, Telemetry: true})
		for _, body := range sequence {
			if w := postEval(t, s, body); w.Code != http.StatusOK {
				t.Fatalf("eval: %d", w.Code)
			}
		}
		w := getPath(t, s, "/ledgerz")
		if w.Code != http.StatusOK {
			t.Fatalf("ledgerz: %d", w.Code)
		}
		return append([]byte(nil), w.Body.Bytes()...)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("ledger verdicts not deterministic for a fixed request sequence:\n%s\n---\n%s", a, b)
	}
}
