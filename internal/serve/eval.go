package serve

import (
	"bytes"
	"strings"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/hb"
	"jskernel/internal/obs"
	"jskernel/internal/report"
	"jskernel/internal/telemetry"
	"jskernel/internal/trace"
)

// This file is the deterministic heart of the service: resolve turns a
// wire request into a concrete cell, evaluate runs it. Nothing here may
// read the wall clock, the pool, or any per-worker identity — the
// response must be a pure function of (Request, resolved defaults), and
// the determinism tests compare response bytes across pool widths and
// environment-reuse depths to hold that line.

// cell is a resolved, validated request: exactly one Table I coordinate.
type cell struct {
	req     Request
	kind    string // "timing" or "cve"
	timing  *attack.TimingAttack
	cve     *attack.CVEAttack
	defense defense.Defense
	reps    int // resolved repetition budget (timing only)
}

// timingByID finds a timing-attack row.
func timingByID(id string) *attack.TimingAttack {
	for _, a := range attack.TimingAttacks() {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// cveByID finds a CVE row by its identifier.
func cveByID(id string) *attack.CVEAttack {
	for _, a := range attack.CVEAttacks() {
		if string(a.CVE) == id {
			return a
		}
	}
	return nil
}

// resolve validates the request against the catalog and the server's
// repetition bounds. It runs at admission time, before any pool
// capacity is spent, so malformed work is rejected without queueing.
func (c *Config) resolve(req Request) (*cell, *Error) {
	cl := &cell{req: req}
	if req.Attack == "" {
		return nil, errf(CodeBadRequest, "missing attack")
	}
	if req.Defense == "" {
		return nil, errf(CodeBadRequest, "missing defense")
	}
	d, err := defense.ByID(req.Defense)
	if err != nil {
		return nil, errf(CodeUnknownDefense, "unknown defense %q", req.Defense)
	}
	cl.defense = d
	if strings.HasPrefix(req.Attack, "CVE-") {
		cl.kind = "cve"
		cl.cve = cveByID(req.Attack)
		if cl.cve == nil {
			return nil, errf(CodeUnknownAttack, "unknown CVE row %q", req.Attack)
		}
	} else {
		cl.kind = "timing"
		cl.timing = timingByID(req.Attack)
		if cl.timing == nil {
			return nil, errf(CodeUnknownAttack, "unknown timing row %q", req.Attack)
		}
		cl.reps = req.Reps
		if cl.reps == 0 {
			cl.reps = c.defaultReps()
		}
		if cl.reps < 0 || cl.reps > c.maxReps() {
			return nil, errf(CodeBadRequest, "reps %d outside [1, %d]", cl.reps, c.maxReps())
		}
	}
	if req.DeadlineMs < 0 {
		return nil, errf(CodeBadRequest, "negative deadline_ms")
	}
	return cl, nil
}

// evalCapture is the telemetry plane's view of one evaluation: pure
// data assembled on the worker after the run, consumed by the plane
// after the response is already decided. Everything here is derived
// from the deterministic event stream — no wall clock, and nothing in
// it feeds back into the Response, which is what keeps response bytes
// byte-identical with the plane on or off.
type evalCapture struct {
	// metrics is the run's kernel metrics registry.
	metrics *trace.Metrics
	// link joins the request's wall-clock span to its virtual-time trace.
	link telemetry.SpanLink
	// forensics is the streaming per-request verdict (always assembled
	// when the plane is on, independent of Request.Forensics), published
	// on /v1/events.
	forensics *ForensicsSummary
	// fragments are the raw, below-threshold detector tallies plus
	// happens-before race counts that feed the cross-request ledger.
	fragments []telemetry.ClassFragment
	// races are the happens-before findings for the events stream.
	races []hb.Finding
}

// evaluate runs one resolved cell and assembles the wire response. rt
// binds the worker's pooled environment and the request's cancellation
// hook into every environment the evaluation builds; tel, when
// non-nil, receives the run's kernel metrics for /statsz aggregation;
// cap, when non-nil, additionally captures the streaming-forensics view
// for the observability plane.
//
// A canceled run never reaches response assembly: the worker checks the
// request context after evaluate returns and discards the result — a
// simulation abandoned mid-run has partial, meaningless samples, and
// returning them would be exactly the silent wrong answer this layer
// exists to prevent.
func evaluate(cl *cell, rt *defense.Runtime, tel func(*trace.Metrics), cap *evalCapture) (*Response, *Error) {
	d := cl.defense.WithRuntime(rt)

	// One trace session serves every consumer of this request: the
	// response's validated trace summary (retained records), the
	// forensic re-judgement (collector + detectors), the server's
	// telemetry aggregation (metrics registry), and the live plane's
	// streaming forensics (capture). Tracing and obs events never
	// perturb execution — the PR 5 pin — so attaching any subset
	// leaves the response bytes unchanged.
	var sess *trace.Session
	var col *obs.Collector
	var det *obs.Detectors
	var races *hb.Detector
	wantTrace := cl.req.Trace
	wantForensics := cl.req.Forensics || cap != nil
	if wantTrace || wantForensics || tel != nil {
		sess = trace.NewSession()
		sess.SetRetain(wantTrace)
		if wantForensics {
			col = obs.NewCollector()
			det = obs.NewDetectors(obs.DefaultDetectorConfig())
			sess.Attach(col)
			sess.Attach(det)
			d = d.WithObs(true)
		}
		if cap != nil {
			races = hb.NewDetector()
			sess.Attach(races)
		}
		d = d.WithTracer(sess)
	}

	resp := &Response{
		Attack:  cl.req.Attack,
		Defense: cl.req.Defense,
		Kind:    cl.kind,
		Seed:    cl.req.Seed,
	}
	var out attack.Outcome
	switch cl.kind {
	case "timing":
		resp.Reps = cl.reps
		out = cl.timing.Evaluate(d, cl.reps, cl.req.Seed)
		resp.Defended = out.Defended
		for _, ch := range out.Channels {
			resp.Channels = append(resp.Channels, Channel{
				Channel: ch.Channel, MeanA: ch.MeanA, MeanB: ch.MeanB,
				CohensD: ch.CohensD, Leaks: ch.Leaks,
			})
		}
	default:
		out = attack.EvaluateCVE(cl.cve, d, cl.req.Seed)
		resp.Defended = out.Defended
		resp.Exploited = out.Exploited
	}

	if sess != nil {
		sess.Close()
		if tel != nil {
			tel(sess.Metrics())
		}
	}
	if wantTrace {
		recs := sess.Records()
		if cap != nil && !cl.req.Forensics {
			// The plane forced obs events on for its streaming detectors,
			// but this request did not ask for forensics: its trace summary
			// must read exactly as it would with the plane off, so the
			// obs-only records are stripped before validation. Obs emission
			// never advances simulated time or perturbs other records (the
			// PR 5 pin), so the remainder is byte-identical to a plane-off
			// run's record set.
			recs = stripObsRecords(recs)
		}
		rep, err := trace.Validate(recs)
		if err != nil {
			return nil, errf(CodeInternal, "trace failed validation: %v", err)
		}
		resp.Trace = &TraceSummary{Validated: true, Report: *rep}
	}
	if cl.req.Forensics {
		resp.Forensics = assembleForensics(cl, col, det)
	}
	if cap != nil {
		cap.metrics = sess.Metrics()
		cap.link = telemetry.SpanLink{
			Runs:    sess.Runs(),
			LastSeq: sess.LastSeq(),
			VTMaxMs: sess.MaxVT().Milliseconds(),
		}
		// The streaming verdict reuses the exact per-response judgement,
		// so the /v1/events stream agrees with body forensics on every
		// request by construction.
		cap.forensics = assembleForensics(cl, col, det)
		cap.races = races.Findings()
		cap.fragments = captureFragments(det, races)
	}

	var label string
	if cl.kind == "timing" {
		label = cl.timing.Label
	} else {
		label = cl.cve.Label
	}
	tbl := &report.Table{
		Title:   "Table I cell",
		Columns: []string{"Attack", cl.defense.Label},
	}
	tbl.AddRow(label, report.Mark(resp.Defended))
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		return nil, errf(CodeInternal, "render table: %v", err)
	}
	resp.Table = buf.String()
	return resp, nil
}

// obsOnlyNativeKinds are the native-record API names emitted solely
// when a defense runs with obs events on (browser.TraceTimerFired and
// friends). Everything else in the record stream is present with obs
// off too.
var obsOnlyNativeKinds = map[string]bool{
	"timer-fired":      true,
	"clock-read":       true,
	"message-callback": true,
	"frame-tick":       true,
	"load-done":        true,
}

// stripObsRecords removes the obs-only native records, recovering the
// record set an obs-off run of the same cell would have produced.
func stripObsRecords(recs []trace.Record) []trace.Record {
	out := make([]trace.Record, 0, len(recs))
	for _, r := range recs {
		if r.Op == trace.OpNative && obsOnlyNativeKinds[r.API] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// assembleForensics re-judges the cell from its event stream alone,
// mirroring expr.ForensicsTable1's per-cell logic: timing rows
// reconstruct each repetition's readings (environments are built in
// (rep, variant) order, so rep r's variants are runs 2r+1 and 2r+2) and
// re-judge with the paper's criterion; CVE rows replay the exploit
// state machine over the native event mirror.
func assembleForensics(cl *cell, col *obs.Collector, det *obs.Detectors) *ForensicsSummary {
	fs := &ForensicsSummary{}
	if cl.kind == "timing" {
		reps := make([]obs.CellReadings, cl.reps)
		for r := 0; r < cl.reps; r++ {
			for v := 0; v < 2; v++ {
				reps[r].Variants[v] = obs.ExtractReadings(cl.timing.ID, col.Run(2*r+1+v))
			}
		}
		verdicts, defended := obs.JudgeTiming(reps)
		fs.Channels = verdicts
		fs.Flagged = !defended
	} else {
		fs.Flagged, fs.Evidence = obs.MirrorExploited(col.Run(1), cl.cve.CVE)
	}
	if fs.Flagged {
		fs.Signatures = det.Finish()
	}
	return fs
}
