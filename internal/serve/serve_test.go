package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postEval drives the handler directly (no listener).
func postEval(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/eval", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) *Error {
	t.Helper()
	var env errEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error == nil {
		t.Fatalf("expected error envelope, got %q", w.Body.String())
	}
	return env.Error
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func TestEvalEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Pool: 2, Telemetry: true})

	t.Run("timing cell", func(t *testing.T) {
		w := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":2,"trace":true,"forensics":true}`)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp Response
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !resp.Defended {
			t.Error("jskernel-chrome should defend loopscan")
		}
		if resp.Kind != "timing" || resp.Reps != 2 {
			t.Errorf("kind=%q reps=%d", resp.Kind, resp.Reps)
		}
		if resp.Trace == nil || !resp.Trace.Validated {
			t.Error("requested trace missing or unvalidated")
		}
		if resp.Forensics == nil {
			t.Fatal("requested forensics missing")
		}
		if resp.Forensics.Flagged {
			t.Error("forensics flagged a defended cell")
		}
		if !strings.Contains(resp.Table, "Table I cell") {
			t.Errorf("table rendering missing: %q", resp.Table)
		}
	})
	t.Run("undefended timing cell flags in forensics", func(t *testing.T) {
		w := postEval(t, s, `{"attack":"cache-attack","defense":"chrome","seed":42,"reps":2,"forensics":true}`)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp Response
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.Defended {
			t.Error("stock chrome should not defend cache-attack")
		}
		if resp.Forensics == nil || !resp.Forensics.Flagged {
			t.Error("forensics failed to flag the undefended cell")
		}
		if resp.Forensics != nil && resp.Forensics.Flagged && len(resp.Forensics.Signatures) == 0 {
			t.Error("flagged cell carries no detector signatures")
		}
	})
	t.Run("cve cell", func(t *testing.T) {
		w := postEval(t, s, `{"attack":"CVE-2018-5092","defense":"jskernel-chrome","seed":42,"trace":true}`)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp Response
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.Kind != "cve" || !resp.Defended || resp.Exploited {
			t.Errorf("kind=%q defended=%v exploited=%v", resp.Kind, resp.Defended, resp.Exploited)
		}
		if resp.Trace == nil || !resp.Trace.Validated {
			t.Error("requested trace missing or unvalidated")
		}
	})
}

// TestEvalRejections walks the typed admission failures end to end.
func TestEvalRejections(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1})
	cases := []struct {
		name   string
		body   string
		status int
		code   Code
	}{
		{"malformed json", `{"attack":`, http.StatusBadRequest, CodeBadRequest},
		{"unknown field", `{"attack":"loopscan","defense":"chrome","bogus":1}`, http.StatusBadRequest, CodeBadRequest},
		{"missing attack", `{"defense":"chrome"}`, http.StatusBadRequest, CodeBadRequest},
		{"missing defense", `{"attack":"loopscan"}`, http.StatusBadRequest, CodeBadRequest},
		{"unknown attack", `{"attack":"nope","defense":"chrome"}`, http.StatusNotFound, CodeUnknownAttack},
		{"unknown cve", `{"attack":"CVE-1999-0001","defense":"chrome"}`, http.StatusNotFound, CodeUnknownAttack},
		{"unknown defense", `{"attack":"loopscan","defense":"nope"}`, http.StatusNotFound, CodeUnknownDefense},
		{"reps over cap", `{"attack":"loopscan","defense":"chrome","reps":9999}`, http.StatusBadRequest, CodeBadRequest},
		{"negative deadline", `{"attack":"loopscan","defense":"chrome","deadline_ms":-1}`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postEval(t, s, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			e := decodeError(t, w)
			if e.Code != tc.code {
				t.Errorf("code %s, want %s", e.Code, tc.code)
			}
			if e.Retryable() {
				t.Errorf("%s must be permanent", e.Code)
			}
		})
	}
}

// TestDrainingRejection pins the drain contract at the HTTP layer: a
// draining server answers 503 with the typed draining code, a
// Retry-After header, and readyz flips to not-ready.
func TestDrainingRejection(t *testing.T) {
	s := New(Config{Pool: 1, Log: io.Discard})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	w := postEval(t, s, `{"attack":"loopscan","defense":"chrome","seed":1}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	e := decodeError(t, w)
	if e.Code != CodeDraining || !e.Retryable() {
		t.Errorf("got %s retryable=%v, want retryable draining", e.Code, e.Retryable())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 draining without Retry-After header")
	}

	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz on draining server: %d, want 503", rw.Code)
	}
}

// TestDeadlinePropagation: a request whose budget cannot cover its
// simulation gets a typed deadline error — never a partial verdict.
func TestDeadlinePropagation(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1})
	w := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":25,"deadline_ms":1}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	e := decodeError(t, w)
	if e.Code != CodeDeadline {
		t.Errorf("code %s, want %s", e.Code, CodeDeadline)
	}
	if e.Retryable() {
		t.Error("deadline exhaustion must not invite a same-budget retry")
	}
	// The worker eventually notices the cancelled context; the pool must
	// still serve the next request correctly afterwards.
	w = postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("pool wedged after deadline: status %d %s", w.Code, w.Body.String())
	}
}

// TestEnvPoisonQuarantine: a panicking evaluation yields a typed
// retryable error, replaces the worker's environment, and the next
// request on the same worker still gets byte-correct output.
func TestEnvPoisonQuarantine(t *testing.T) {
	poisonSeed := int64(666)
	var cfg Config
	cfg.Pool = 1
	cfg.FaultHook = func(req *Request, polls int) {
		if req.Seed == poisonSeed && polls == 3 {
			panic("chaos: poisoned environment")
		}
	}
	s := newTestServer(t, cfg)

	before := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":2}`)
	if before.Code != http.StatusOK {
		t.Fatalf("baseline failed: %d", before.Code)
	}

	w := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":666,"reps":2}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", w.Code, w.Body.String())
	}
	e := decodeError(t, w)
	if e.Code != CodeEnvPoisoned {
		t.Errorf("code %s, want %s", e.Code, CodeEnvPoisoned)
	}
	if !e.Retryable() {
		t.Error("a poisoned environment is replaced; retry must be invited")
	}
	if got := s.Snapshot().EnvReplaced; got != 1 {
		t.Errorf("EnvReplaced=%d, want 1", got)
	}

	after := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":2}`)
	if after.Code != http.StatusOK {
		t.Fatalf("replacement environment broken: %d", after.Code)
	}
	if !bytes.Equal(after.Body.Bytes(), before.Body.Bytes()) {
		t.Error("response after environment replacement differs from baseline")
	}
}

// TestBreakerOpensAndRecovers drives the breaker through its full
// cycle: consecutive poisonings open it, admissions are refused typed
// and retryable, the cooldown lets a probe through, and a success
// closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	poison := true
	var cfg Config
	cfg.Pool = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 50 * time.Millisecond
	cfg.FaultHook = func(req *Request, polls int) {
		if poison && req.Seed == 666 {
			panic("chaos: poisoned environment")
		}
	}
	s := newTestServer(t, cfg)

	for i := 0; i < 2; i++ {
		w := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":666,"reps":1}`)
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("poison %d: status %d", i, w.Code)
		}
	}
	w := postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":1}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("breaker did not open: status %d", w.Code)
	}
	e := decodeError(t, w)
	if e.Code != CodeBreakerOpen || !e.Retryable() || e.RetryAfterMs <= 0 {
		t.Errorf("got %s retryable=%v retryAfter=%d", e.Code, e.Retryable(), e.RetryAfterMs)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("breaker rejection without Retry-After header")
	}

	poison = false
	time.Sleep(60 * time.Millisecond)
	w = postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("probe after cooldown failed: status %d %s", w.Code, w.Body.String())
	}
	w = postEval(t, s, `{"attack":"loopscan","defense":"jskernel-chrome","seed":42,"reps":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("breaker did not close after probe: status %d", w.Code)
	}
}

// TestResponseDeterminismAcrossTelemetry pins the PR 5 obs-neutrality
// property at the service boundary: telemetry on/off, trace and
// forensics attachments, and environment reuse all leave response bytes
// unchanged.
func TestResponseDeterminismAcrossTelemetry(t *testing.T) {
	body := `{"attack":"cache-attack","defense":"jskernel-chrome","seed":7,"reps":2}`
	plain := newTestServer(t, Config{Pool: 1})
	telem := newTestServer(t, Config{Pool: 1, Telemetry: true})

	want := postEval(t, plain, body)
	if want.Code != http.StatusOK {
		t.Fatalf("baseline: %d", want.Code)
	}
	for gen := 0; gen < 3; gen++ {
		got := postEval(t, telem, body)
		if got.Code != http.StatusOK {
			t.Fatalf("telemetry gen %d: %d", gen, got.Code)
		}
		if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("telemetry server diverged at reuse generation %d", gen)
		}
	}
	snap := telem.Snapshot()
	if snap.Kernel == nil || snap.Kernel.Runs != 3 || snap.Kernel.Dispatched == 0 {
		t.Errorf("telemetry did not aggregate: %+v", snap.Kernel)
	}
}

func TestStatszAndHealthz(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1})
	if w := postEval(t, s, `{"attack":"loopscan","defense":"chrome","seed":1,"reps":1}`); w.Code != http.StatusOK {
		t.Fatalf("eval: %d", w.Code)
	}
	for _, path := range []string{"/healthz", "/readyz", "/statsz"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Errorf("%s: %d", path, w.Code)
		}
	}
	var snap Stats
	req := httptest.NewRequest(http.MethodGet, "/statsz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if snap.Admitted != 1 || snap.Completed != 1 || snap.Pool != 1 {
		t.Errorf("statsz counters off: %+v", snap)
	}
}
