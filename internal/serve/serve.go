package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jskernel/internal/defense"
	"jskernel/internal/kernel"
	"jskernel/internal/telemetry"
	"jskernel/internal/trace"
)

// The service layer deliberately lives on the wall clock — deadlines,
// Retry-After hints and drain timeouts are promises to real clients —
// while every simulation it runs stays on virtual time. jsk-lint's
// detwalltime allowlist sanctions exactly this package for that reason;
// nothing wall-clock-derived may leak into a Response (see eval.go).

// Config tunes the server. The zero value is usable: every field has a
// production-shaped default applied by New.
type Config struct {
	// Pool is the number of evaluation workers, each owning one warm
	// kernel.Environment that is reset — not rebuilt — between requests.
	// Default: GOMAXPROCS.
	Pool int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// 429 + Retry-After, never blocks and never drops silently.
	// Default: 4 × Pool.
	QueueDepth int
	// DefaultDeadline is the per-request completion budget when the
	// request does not carry deadline_ms. Default: 30s.
	DefaultDeadline time.Duration
	// DefaultReps / MaxReps bound the timing-row repetition budget.
	// Defaults: 5 / 25 (the paper's budget).
	DefaultReps int
	MaxReps     int
	// MaxBodyBytes bounds request bodies. Default: 1 MiB.
	MaxBodyBytes int64
	// ReadTimeout bounds how long a client may take to deliver its
	// request (the slow-loris bound). Default: 15s.
	ReadTimeout time.Duration
	// BreakerThreshold consecutive environment poisonings open the
	// circuit breaker for BreakerCooldown; traffic after the cooldown
	// probes the pool and a success closes it again.
	// Defaults: 3 / 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Telemetry attaches a retain-off trace session to every evaluation
	// and aggregates its kernel metrics registry into /statsz. It also
	// mounts the live observability plane: per-request spans and
	// streaming forensics on /v1/events, kernel aggregates on /metricsz,
	// the cross-request ledger on /ledgerz. Tracing never perturbs a
	// run, so responses are byte-identical either way.
	Telemetry bool
	// TelemetrySync disables the plane's batching flusher, applying
	// every telemetry item inline on the submitting goroutine. This is
	// the un-batched baseline jsk-bench -serve quantifies the flusher
	// against; production keeps it off.
	TelemetrySync bool
	// TelemetryEventRing overrides the /v1/events replay ring size.
	// Consumers that fall behind the ring receive an explicit gap event
	// rather than applying backpressure; chaos tests shrink the ring to
	// force that path. Default: the plane's own default.
	TelemetryEventRing int
	// FaultHook, when non-nil, is called from every cancellation poll of
	// a running evaluation (chaos harness only). It may panic to model a
	// poisoned environment mid-request; the worker's recover path then
	// discards and replaces the pooled environment.
	FaultHook func(req *Request, polls int)
	// Log receives operational lines (startup, drain, breaker
	// transitions). Default: io.Discard.
	Log io.Writer
}

func (c *Config) pool() int {
	if c.Pool > 0 {
		return c.Pool
	}
	return runtime.GOMAXPROCS(0)
}
func (c *Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 4 * c.pool()
}
func (c *Config) defaultDeadline() time.Duration {
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return 30 * time.Second
}
func (c *Config) defaultReps() int {
	if c.DefaultReps > 0 {
		return c.DefaultReps
	}
	return 5
}
func (c *Config) maxReps() int {
	if c.MaxReps > 0 {
		return c.MaxReps
	}
	return 25
}
func (c *Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}
func (c *Config) readTimeout() time.Duration {
	if c.ReadTimeout > 0 {
		return c.ReadTimeout
	}
	return 15 * time.Second
}
func (c *Config) breakerThreshold() int {
	if c.BreakerThreshold > 0 {
		return c.BreakerThreshold
	}
	return 3
}
func (c *Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 2 * time.Second
}
func (c *Config) log() io.Writer {
	if c.Log != nil {
		return c.Log
	}
	return io.Discard
}

// job is one admitted request travelling from handler to worker.
type job struct {
	cl   *cell
	ctx  context.Context
	done chan jobOutcome // buffered: the worker never blocks on an abandoned handler

	// Span bookkeeping (telemetry plane only). requestID also rides the
	// Jsk-Request-Id response header; admittedAt feeds the queue phase.
	requestID  string
	admittedAt time.Time
}

type jobOutcome struct {
	resp *Response
	err  *Error
	// queueNs/evalNs are the worker-side span phases; link joins the
	// span to the request's virtual-time trace. Zero/nil without the
	// telemetry plane.
	queueNs int64
	evalNs  int64
	link    *telemetry.SpanLink
}

func (j *job) finish(out jobOutcome) {
	j.done <- out
}

// Server is the kernel service: admission control in front of a bounded
// queue, a pool of workers each owning a warm reusable environment, a
// circuit breaker around poisonings, and a graceful drain.
type Server struct {
	cfg   Config
	queue chan *job
	mux   *http.ServeMux

	admitMu  sync.Mutex
	draining bool

	jobs    sync.WaitGroup // admitted but unfinished requests
	workers sync.WaitGroup

	breaker breaker
	stats   stats
	// ewmaNs is the smoothed per-request service time feeding the
	// deadline-aware admission estimate and Retry-After hints.
	ewmaNs atomic.Int64

	// plane is the live observability plane (nil without Telemetry).
	plane *telemetry.Plane
	// reqSeq numbers requests for the Jsk-Request-Id header and the
	// forensics ledger. A plain counter, never a timestamp: request IDs
	// must not smuggle wall-clock state anywhere near response bodies.
	reqSeq atomic.Uint64

	httpSrv *http.Server
	lnAddr  atomic.Value // string; set by Start
}

// New builds a server and starts its worker pool. The caller serves
// HTTP via Handler (tests) or Start/Run (daemon), and must eventually
// call Shutdown to stop the workers.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg}
	s.queue = make(chan *job, s.cfg.queueDepth())
	s.breaker.threshold = s.cfg.breakerThreshold()
	s.breaker.cooldown = s.cfg.breakerCooldown()
	s.breaker.log = s.cfg.log()
	if cfg.Telemetry {
		s.plane = telemetry.NewPlane(telemetry.PlaneConfig{
			Sync:      cfg.TelemetrySync,
			EventRing: cfg.TelemetryEventRing,
			Ledger:    telemetry.DefaultLedgerConfig(),
		})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /versionz", s.handleVersionz)
	s.mux.HandleFunc("GET /ledgerz", s.handleLedgerz)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.startWorkers()
	return s
}

// Plane exposes the observability plane (nil without Telemetry) for
// tests and the smoke harness.
func (s *Server) Plane() *telemetry.Plane { return s.plane }

// Handler exposes the server's HTTP surface without a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// startWorkers launches the evaluation pool. Each worker goroutine owns
// one warm kernel.Environment, reset between requests and discarded
// only when poisoned; workers exit when the queue closes during drain.
// These goroutines — and the ones in Start and awaitDrain — are the
// audited entries in jsk-lint's goroutinescope allowlist for this
// package: each runs simulations that share nothing with its siblings
// (the same argument that sanctions runner.Map), and none outlives
// Shutdown.
func (s *Server) startWorkers() {
	for w := 0; w < s.cfg.pool(); w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			env := kernel.NewEnvironment()
			for j := range s.queue {
				env = s.serveJob(j, env)
			}
		}()
	}
}

// serveJob runs one admitted request on this worker's environment and
// returns the environment to reuse for the next request — a fresh one
// if this request poisoned the current one.
func (s *Server) serveJob(j *job, env *kernel.Environment) (next *kernel.Environment) {
	next = env
	start := time.Now()
	var queueNs int64
	if !j.admittedAt.IsZero() {
		queueNs = start.Sub(j.admittedAt).Nanoseconds()
	}
	defer s.jobs.Done()
	defer func() {
		if r := recover(); r != nil {
			// Poisoned environment: quarantine by replacement. The
			// discarded Environment is never reused, so neighboring
			// in-flight requests (each on their own worker and
			// environment) are untouched; the breaker counts the strike.
			next = kernel.NewEnvironment()
			s.stats.envReplaced.Add(1)
			s.breaker.failure(time.Now())
			fmt.Fprintf(s.cfg.log(), "jsk-serve: evaluation panic (%v); environment discarded\n", r)
			j.finish(jobOutcome{
				err:     errf(CodeEnvPoisoned, "evaluation panicked: %v; environment discarded and replaced", r),
				queueNs: queueNs,
			})
		}
	}()

	if j.ctx.Err() != nil {
		// Spent its whole budget queued. Typed rejection, never silent.
		j.finish(jobOutcome{err: ctxError(j.ctx), queueNs: queueNs})
		return env
	}

	polls := 0
	rt := &defense.Runtime{
		Env: env,
		Canceled: func() bool {
			polls++
			if h := s.cfg.FaultHook; h != nil {
				h(&j.cl.req, polls)
			}
			return j.ctx.Err() != nil
		},
	}
	var tel func(*trace.Metrics)
	if s.cfg.Telemetry {
		tel = s.stats.absorbKernel
	}
	var cap *evalCapture
	if s.plane != nil {
		cap = &evalCapture{}
	}
	resp, eerr := evaluate(j.cl, rt, tel, cap)
	evalNs := time.Since(start).Nanoseconds()
	if j.ctx.Err() != nil {
		// Canceled mid-run: the simulation was abandoned and whatever
		// evaluate assembled is not trustworthy. Shed the work, keep the
		// accuracy. The abandoned run's telemetry is discarded with it —
		// partial fragments must never feed the ledger.
		j.finish(jobOutcome{err: ctxError(j.ctx), queueNs: queueNs, evalNs: evalNs})
		return env
	}
	s.breaker.success()
	s.observeService(time.Since(start))
	if eerr != nil {
		j.finish(jobOutcome{err: eerr, queueNs: queueNs, evalNs: evalNs})
		return env
	}
	out := jobOutcome{resp: resp, queueNs: queueNs, evalNs: evalNs}
	if s.plane != nil && cap != nil && cap.metrics != nil {
		// The response is already fully assembled: everything submitted
		// from here on is pure data for the plane and cannot change what
		// the client receives.
		link := cap.link
		out.link = &link
		s.plane.SubmitEval(&telemetry.EvalRecord{
			RequestID: j.requestID,
			Tenant:    j.cl.req.Tenant,
			Scope:     j.cl.req.Attack,
			Metrics:   cap.metrics,
			Forensics: &ForensicsEvent{
				RequestID: j.requestID,
				Tenant:    j.cl.req.Tenant,
				Attack:    j.cl.req.Attack,
				Defense:   j.cl.req.Defense,
				Seed:      j.cl.req.Seed,
				Summary:   cap.forensics,
				Races:     cap.races,
			},
			Fragments: cap.fragments,
		})
	}
	s.stats.completed.Add(1)
	j.finish(out)
	return env
}

// ctxError maps a done context to the typed error contract.
func ctxError(ctx context.Context) *Error {
	if errors.Is(ctx.Err(), context.Canceled) {
		return errf(CodeCanceled, "client went away before completion")
	}
	return errf(CodeDeadline, "request deadline expired before completion")
}

// observeService folds one service time into the admission EWMA.
func (s *Server) observeService(d time.Duration) {
	old := s.ewmaNs.Load()
	if old == 0 {
		s.ewmaNs.Store(int64(d))
		return
	}
	s.ewmaNs.Store((3*old + int64(d)) / 4)
}

// estimateWait predicts how long a newly admitted request would sit
// behind the current queue. It deliberately over-admits when the EWMA
// is still cold (zero): shedding is for measured pressure, not guesses.
func (s *Server) estimateWait(queued int) time.Duration {
	ewma := time.Duration(s.ewmaNs.Load())
	if ewma <= 0 {
		return 0
	}
	return ewma * time.Duration(queued) / time.Duration(s.cfg.pool())
}

// handleEval is the admission path: parse, resolve, admit (or reject
// explicitly), then wait for the worker or the deadline — whichever
// comes first. Every request gets a service-assigned ID in the
// Jsk-Request-Id response header — a header, never a body field, so
// response bodies stay a pure function of the Request.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	arrived := time.Now()
	requestID := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
	w.Header().Set("Jsk-Request-Id", requestID)
	span := &telemetry.Span{RequestID: requestID}
	finishSpan := func(code Code, out *jobOutcome) {
		if s.plane == nil {
			return
		}
		span.Code = string(code)
		if out != nil {
			span.QueueNs = out.queueNs
			span.EvalNs = out.evalNs
			span.Link = out.link
		}
		s.plane.SubmitSpan(span)
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes()))
	if err != nil {
		s.stats.rejectedBadRequest.Add(1)
		span.AdmissionNs = time.Since(arrived).Nanoseconds()
		s.writeError(w, errf(CodeBadRequest, "reading body: %v", err))
		finishSpan(CodeBadRequest, nil)
		return
	}
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.stats.rejectedBadRequest.Add(1)
		span.AdmissionNs = time.Since(arrived).Nanoseconds()
		s.writeError(w, errf(CodeBadRequest, "parsing request: %v", err))
		finishSpan(CodeBadRequest, nil)
		return
	}
	// ?trace=summary folds into the body's trace flag before resolution,
	// so the query form and the body form produce identical responses.
	if r.URL.Query().Get("trace") == "summary" {
		req.Trace = true
	}
	span.Tenant, span.Attack, span.Defense = req.Tenant, req.Attack, req.Defense
	cl, rerr := s.cfg.resolve(req)
	if rerr != nil {
		s.stats.rejectedBadRequest.Add(1)
		span.AdmissionNs = time.Since(arrived).Nanoseconds()
		s.writeError(w, rerr)
		finishSpan(rerr.Code, nil)
		return
	}

	budget := s.cfg.defaultDeadline()
	if req.DeadlineMs > 0 {
		budget = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	j := &job{cl: cl, ctx: ctx, done: make(chan jobOutcome, 1), requestID: requestID}

	if aerr := s.admit(j, budget); aerr != nil {
		span.AdmissionNs = time.Since(arrived).Nanoseconds()
		s.writeError(w, aerr)
		finishSpan(aerr.Code, nil)
		return
	}
	span.AdmissionNs = time.Since(arrived).Nanoseconds()

	//jsk:lint-ignore detselect wall-clock service boundary: completion and client cancellation are OS events with no deterministic order to preserve
	select {
	case out := <-j.done:
		if out.err != nil {
			s.countError(out.err)
			s.writeError(w, out.err)
			finishSpan(out.err.Code, &out)
			return
		}
		renderStart := time.Now()
		s.writeJSON(w, http.StatusOK, out.resp)
		span.RenderNs = time.Since(renderStart).Nanoseconds()
		finishSpan("", &out)
	case <-ctx.Done():
		// The worker will notice the same cancellation and discard the
		// run; respond with the typed error now rather than holding the
		// connection for a result that must not be used.
		cerr := ctxError(ctx)
		s.countError(cerr)
		s.writeError(w, cerr)
		finishSpan(cerr.Code, nil)
	}
}

// admit applies admission control: draining and breaker checks, then
// queue-depth and deadline-aware rejection. Rejections are always
// explicit and typed; admission increments the drain group before the
// job becomes visible to workers.
func (s *Server) admit(j *job, budget time.Duration) *Error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining {
		s.stats.rejectedDraining.Add(1)
		e := errf(CodeDraining, "server is draining")
		e.RetryAfterMs = 1000
		return e
	}
	if open, wait := s.breaker.rejects(time.Now()); open {
		s.stats.rejectedBreaker.Add(1)
		e := errf(CodeBreakerOpen, "circuit breaker open after repeated environment poisonings")
		e.RetryAfterMs = wait.Milliseconds() + 1
		return e
	}
	queued := len(s.queue)
	if est := s.estimateWait(queued); est > budget {
		s.stats.rejectedOverload.Add(1)
		e := errf(CodeOverloaded, "estimated queue wait %v exceeds request budget %v", est, budget)
		e.RetryAfterMs = est.Milliseconds() + 1
		return e
	}
	s.jobs.Add(1)
	j.admittedAt = time.Now()
	select {
	case s.queue <- j:
		s.stats.admitted.Add(1)
		return nil
	default:
		s.jobs.Done()
		s.stats.rejectedOverload.Add(1)
		est := s.estimateWait(queued)
		if est <= 0 {
			est = 500 * time.Millisecond
		}
		e := errf(CodeOverloaded, "admission queue full (%d deep)", queued)
		e.RetryAfterMs = est.Milliseconds() + 1
		return e
	}
}

// countError attributes a typed failure to its stats counter.
func (s *Server) countError(e *Error) {
	switch e.Code {
	case CodeDeadline:
		s.stats.deadlineExceeded.Add(1)
	case CodeCanceled:
		s.stats.canceled.Add(1)
	case CodeInternal:
		s.stats.internalErrors.Add(1)
	}
}

// Start serves HTTP on ln in the background with the slow-loris read
// bound applied; use Shutdown (or Run, which wraps both) to stop.
func (s *Server) Start(ln net.Listener) {
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadTimeout:       s.cfg.readTimeout(),
		ReadHeaderTimeout: s.cfg.readTimeout(),
	}
	s.lnAddr.Store(ln.Addr().String())
	fmt.Fprintf(s.cfg.log(), "jsk-serve: listening on %s (pool %d, queue %d)\n",
		ln.Addr(), s.cfg.pool(), s.cfg.queueDepth())
	srv := s.httpSrv
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(s.cfg.log(), "jsk-serve: serve error: %v\n", err)
		}
	}()
}

// Addr reports the listening address once Start has run ("" before).
func (s *Server) Addr() string {
	if v := s.lnAddr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Run serves on ln until a signal arrives on stop, then drains
// gracefully within drainTimeout. It is the daemon main loop of
// cmd/jsk-serve, kept here so the command stays goroutine-free.
func (s *Server) Run(ln net.Listener, stop <-chan os.Signal, drainTimeout time.Duration) error {
	s.Start(ln)
	sig := <-stop
	fmt.Fprintf(s.cfg.log(), "jsk-serve: received %v, draining (timeout %v)\n", sig, drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown drains gracefully: new requests are rejected with a typed
// draining error, every in-flight request runs to completion (bounded
// by its own deadline), then the workers and listener stop. Returns
// ctx's error if the drain outruns it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if already {
		return nil
	}
	if err := s.awaitDrain(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	close(s.queue)
	s.workers.Wait()
	if s.plane != nil {
		// After the workers: every in-flight submission has been made.
		// Before the HTTP listener: closing the plane ends the event hub,
		// which unblocks /v1/events handlers so httpSrv.Shutdown can
		// finish. A scrape racing the drain still gets a complete,
		// parseable exposition — the plane applies post-close submissions
		// inline and never drops them.
		s.plane.Close()
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			return err
		}
	}
	fmt.Fprintf(s.cfg.log(), "jsk-serve: drained cleanly\n")
	return nil
}

// awaitDrain waits for every admitted request to finish, bounded by ctx.
func (s *Server) awaitDrain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	//jsk:lint-ignore detselect shutdown path races drain completion against the deadline by design; either arm is a correct outcome
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether a graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	return s.draining
}

// writeJSON writes a deterministic JSON body: compact encoding plus a
// trailing newline, no wall-clock-derived fields.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding response"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError writes the typed error envelope, carrying the Retry-After
// hint both as a header (seconds, ceiling) and in the body (exact ms).
func (s *Server) writeError(w http.ResponseWriter, e *Error) {
	if e.RetryAfterMs > 0 {
		secs := (e.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	s.writeJSON(w, e.HTTPStatus(), errEnvelope{Error: e})
}
