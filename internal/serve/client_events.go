package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// StreamEvent is one event received from /v1/events. IDs are strictly
// increasing server-side, which makes resume and dedup exact: after a
// reconnect the client resumes from the last ID it saw and drops
// anything at or below it.
type StreamEvent struct {
	ID   uint64
	Type string
	Data json.RawMessage
}

// Events consumes the server's /v1/events stream, invoking fn for every
// event with ID > after, in order and exactly once. Mid-stream
// disconnects are classified through the same typed-retry contract as
// Eval: a dropped connection is a transient transportError, so the
// client reconnects (up to MaxAttempts consecutive failures) with a
// Last-Event-ID resume header; a typed permanent error from the server
// — e.g. telemetry_off — stops immediately. Events delivered by the
// stream reset the failure budget.
//
// Events returns nil when the server ends the stream cleanly (drain),
// ctx.Err() when the caller's context ends, fn's error if fn fails, and
// otherwise the last transient error once the failure budget is spent.
func (c *Client) Events(ctx context.Context, after uint64, fn func(StreamEvent) error) error {
	cursor := after
	failures := 0
	var last error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, err := c.eventsOnce(ctx, cursor, &cursor, fn)
		if err == nil {
			// Clean end of stream: the server drained.
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		re, ok := err.(RetryableError)
		if !ok || !re.Retryable() {
			return err
		}
		if progressed {
			failures = 0
		}
		failures++
		last = err
		if failures >= c.maxAttempts() {
			return last
		}
		var hint int64
		if e, ok := err.(*Error); ok {
			hint = e.RetryAfterMs
		}
		c.sleep(c.backoffWait(failures, hint))
	}
}

// eventsOnce runs one streaming attempt, advancing *cursor for every
// delivered event. It reports whether any event was delivered this
// attempt, and a nil error only on clean stream end.
func (c *Client) eventsOnce(ctx context.Context, from uint64, cursor *uint64, fn func(StreamEvent) error) (progressed bool, err error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/events", nil)
	if err != nil {
		return false, fmt.Errorf("serve: building request: %w", err)
	}
	httpReq.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		httpReq.Header.Set("Last-Event-ID", strconv.FormatUint(from, 10))
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return false, &transportError{err: err}
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1<<16))
		var env errEnvelope
		if jerr := json.Unmarshal(data, &env); jerr != nil || env.Error == nil {
			return false, &transportError{err: fmt.Errorf("status %d with undecodable error body", httpResp.StatusCode)}
		}
		return false, env.Error
	}

	sc := bufio.NewScanner(httpResp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev StreamEvent
	flush := func() error {
		defer func() { ev = StreamEvent{} }()
		if ev.Type == "" && ev.Data == nil {
			return nil
		}
		// Dedup after resume: the server may replay from an older ring
		// position; IDs are authoritative.
		if ev.ID <= *cursor {
			return nil
		}
		*cursor = ev.ID
		progressed = true
		return fn(ev)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return progressed, err
			}
		case strings.HasPrefix(line, ":"):
			// Keepalive comment.
		case strings.HasPrefix(line, "id:"):
			if n, perr := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64); perr == nil {
				ev.ID = n
			}
		case strings.HasPrefix(line, "event:"):
			ev.Type = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			ev.Data = json.RawMessage(strings.TrimSpace(line[5:]))
		}
	}
	if serr := sc.Err(); serr != nil {
		// Mid-stream disconnect: transient by the same argument as any
		// transport failure — resume is exact, so retrying is safe.
		return progressed, &transportError{err: serr}
	}
	if err := flush(); err != nil {
		return progressed, err
	}
	return progressed, nil
}
