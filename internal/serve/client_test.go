package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedHandler answers each attempt from a fixed script of typed
// responses, then succeeds.
func scriptedServer(t *testing.T, script []*Error) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	srv := &Server{cfg: Config{}} // only for writeJSON/writeError helpers
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(attempts.Add(1)) - 1
		if n < len(script) {
			srv.writeError(w, script[n])
			return
		}
		srv.writeJSON(w, http.StatusOK, &Response{Attack: "loopscan", Defense: "chrome", Kind: "timing", Defended: true})
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, &attempts
}

// TestClientRetriesTransient: transient rejections are retried on the
// deterministic exponential schedule, honoring the server's larger
// Retry-After hint when present.
func TestClientRetriesTransient(t *testing.T) {
	overloaded := errf(CodeOverloaded, "queue full")
	overloaded.RetryAfterMs = 250 // larger than the 100ms base backoff
	ts, attempts := scriptedServer(t, []*Error{
		overloaded,
		errf(CodeDraining, "draining"), // no hint: pure exponential
	})
	var waits []time.Duration
	c := &Client{
		BaseURL:     ts.URL,
		MaxAttempts: 4,
		Sleep:       func(d time.Duration) { waits = append(waits, d) },
	}
	resp, err := c.Eval(context.Background(), Request{Attack: "loopscan", Defense: "chrome"})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !resp.Defended {
		t.Error("lost the response payload across retries")
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts=%d, want 3", got)
	}
	want := []time.Duration{250 * time.Millisecond, 200 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("waits=%v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Errorf("wait %d = %v, want %v (hint-aware exponential)", i, waits[i], want[i])
		}
	}
}

// TestClientStopsOnPermanent: a permanent failure is surfaced
// immediately — no retry, no sleep.
func TestClientStopsOnPermanent(t *testing.T) {
	ts, attempts := scriptedServer(t, []*Error{errf(CodeUnknownAttack, "nope")})
	c := &Client{
		BaseURL: ts.URL,
		Sleep:   func(time.Duration) { t.Error("slept before a permanent failure") },
	}
	_, err := c.Eval(context.Background(), Request{Attack: "nope", Defense: "chrome"})
	e, ok := err.(*Error)
	if !ok || e.Code != CodeUnknownAttack {
		t.Fatalf("want typed unknown_attack, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts=%d, want 1 (no retry of permanent failures)", got)
	}
}

// TestClientRetriesTransport: failures below HTTP (dead listener) are
// transient; the client retries and succeeds once the server exists.
func TestClientRetriesTransport(t *testing.T) {
	c := &Client{
		BaseURL:     "http://127.0.0.1:1", // nothing listens on port 1
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
	}
	_, err := c.Eval(context.Background(), Request{Attack: "loopscan", Defense: "chrome"})
	if err == nil {
		t.Fatal("expected transport failure")
	}
	re, ok := err.(RetryableError)
	if !ok || !re.Retryable() {
		t.Fatalf("transport failure must be typed retryable, got %T: %v", err, err)
	}
}

// TestClientBackoffSchedule pins the full deterministic schedule: pure
// doubling from the base, capped at the max, hint taken when larger.
func TestClientBackoffSchedule(t *testing.T) {
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 1 * time.Second}
	cases := []struct {
		attempt int
		hintMs  int64
		want    time.Duration
	}{
		{1, 0, 100 * time.Millisecond},
		{2, 0, 200 * time.Millisecond},
		{3, 0, 400 * time.Millisecond},
		{4, 0, 800 * time.Millisecond},
		{5, 0, 1 * time.Second},  // capped
		{10, 0, 1 * time.Second}, // stays capped
		{1, 300, 300 * time.Millisecond},  // hint dominates
		{3, 300, 400 * time.Millisecond},  // schedule dominates
		{1, 5000, 1 * time.Second},        // hint capped too
	}
	for _, tc := range cases {
		if got := c.backoffWait(tc.attempt, tc.hintMs); got != tc.want {
			t.Errorf("backoffWait(%d, %d) = %v, want %v", tc.attempt, tc.hintMs, got, tc.want)
		}
	}
}
