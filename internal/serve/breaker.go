package serve

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// breaker is the circuit breaker around environment poisonings. A
// single panicking evaluation is absorbed locally — the worker discards
// and replaces its environment, neighbors never notice — but threshold
// consecutive poisonings suggest the *input stream* is hostile or a
// systemic bug is loose, so the breaker opens: admissions are refused
// with a typed, retryable error until the cooldown elapses. The first
// traffic after the cooldown probes the pool (half-open); one success
// closes the breaker, one more poisoning reopens it for a fresh
// cooldown.
//
// State transitions ride on evaluation outcomes, never on timers of
// their own, so the breaker adds no goroutines.
type breaker struct {
	threshold int
	cooldown  time.Duration
	log       io.Writer

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
}

// failure records one environment poisoning; crossing the threshold
// opens (or re-opens) the breaker.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive >= b.threshold {
		wasOpen := now.Before(b.openUntil)
		b.openUntil = now.Add(b.cooldown)
		if !wasOpen && b.log != nil {
			fmt.Fprintf(b.log, "jsk-serve: breaker open (%d consecutive poisonings, cooldown %v)\n",
				b.consecutive, b.cooldown)
		}
	}
}

// success records a completed evaluation, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive >= b.threshold && b.log != nil {
		fmt.Fprintf(b.log, "jsk-serve: breaker closed (probe succeeded)\n")
	}
	b.consecutive = 0
	b.openUntil = time.Time{}
}

// rejects reports whether admissions are currently refused, and if so
// how long until the next probe window.
func (b *breaker) rejects(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return true, b.openUntil.Sub(now)
	}
	return false, 0
}
