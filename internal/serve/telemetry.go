package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"jskernel/internal/hb"
	"jskernel/internal/obs"
	"jskernel/internal/telemetry"
)

// The live observability plane: /metricsz (OpenMetrics exposition),
// /versionz (build identity), /ledgerz (cross-request forensics
// ledger), /v1/events (streaming spans, forensic verdicts and campaign
// findings over SSE). All of it lives on the wall-clock side of the
// determinism boundary: nothing served here ever appears in a /v1/eval
// response body, and /v1/eval bodies are byte-identical with the plane
// on or off (pinned by TestResponseDeterminismAcrossTelemetry and the
// wall-time boundary test).

// ForensicsEvent is the /v1/events payload of one evaluation's
// streaming forensic verdict: the same per-request judgement the
// response body carries when forensics is requested, plus the
// happens-before findings, attributed to the request that produced it.
type ForensicsEvent struct {
	RequestID string            `json:"request_id"`
	Tenant    string            `json:"tenant,omitempty"`
	Attack    string            `json:"attack"`
	Defense   string            `json:"defense"`
	Seed      int64             `json:"seed"`
	Summary   *ForensicsSummary `json:"summary"`
	Races     []hb.Finding      `json:"races,omitempty"`
}

// captureFragments collapses one evaluation's raw detector tallies and
// happens-before findings into the ledger's class fragments. Raw counts
// — not thresholded signatures — are the point: a probe split across
// requests stays under every per-request threshold, and only the
// ledger's accumulation sees it.
func captureFragments(det *obs.Detectors, races *hb.Detector) []telemetry.ClassFragment {
	var frags []telemetry.ClassFragment
	for _, f := range det.Fragments() {
		frags = append(frags, telemetry.ClassFragment{Class: f.Detector, Score: int64(f.Count)})
	}
	raceWeight := telemetry.DefaultLedgerConfig().RaceWeight
	byClass := map[string]int64{}
	for _, f := range races.Findings() {
		byClass["race-"+f.Class] += raceWeight
	}
	for _, f := range telemetry.SortedFragments(byClass) {
		frags = append(frags, f)
	}
	return frags
}

// handleMetricsz serves the OpenMetrics exposition: service counters
// always, kernel/span/plane aggregates when the plane is mounted. The
// ledger and aggregates are settled through a plane barrier first —
// the barrier waits on the flusher, never the other way around, so a
// scrape can not block an evaluation.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	fams := s.serviceFamilies()
	if s.plane != nil {
		s.plane.Barrier()
		agg := s.plane.KernelSnapshot()
		sp := s.plane.SpanSnapshot()
		fams = append(fams, agg.Families()...)
		fams = append(fams, sp.Families()...)
		fams = append(fams, s.plane.Families()...)
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	if err := telemetry.WriteExposition(w, fams); err != nil {
		fmt.Fprintf(s.cfg.log(), "jsk-serve: metricsz write: %v\n", err)
	}
}

// serviceFamilies renders the service-layer counters.
func (s *Server) serviceFamilies() []telemetry.Family {
	snap := s.Snapshot()
	rejected := map[string]uint64{
		"overload":    snap.RejectedOverload,
		"draining":    snap.RejectedDraining,
		"breaker":     snap.RejectedBreaker,
		"bad_request": snap.RejectedBadRequest,
	}
	boolGauge := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	breakerOpen, _ := s.breaker.rejects(time.Now())
	return []telemetry.Family{
		telemetry.Counter("jsk_serve_admitted", "Requests admitted past admission control.", snap.Admitted),
		telemetry.Counter("jsk_serve_completed", "Requests completed with a 200 response.", snap.Completed),
		telemetry.LabeledCounter("jsk_serve_rejected", "Requests rejected at admission, by reason.", "reason", rejected),
		telemetry.Counter("jsk_serve_deadline_exceeded", "Requests that ran out of completion budget.", snap.DeadlineExceeded),
		telemetry.Counter("jsk_serve_canceled", "Requests abandoned by their clients.", snap.Canceled),
		telemetry.Counter("jsk_serve_internal_errors", "Internal invariant failures.", snap.InternalErrors),
		telemetry.Counter("jsk_serve_env_replaced", "Pooled environments discarded after poisoning (environment generations).", snap.EnvReplaced),
		telemetry.Gauge("jsk_serve_queue_depth", "Requests currently queued for a worker.", float64(snap.QueueDepth)),
		telemetry.Gauge("jsk_serve_pool", "Evaluation worker pool size.", float64(snap.Pool)),
		telemetry.Gauge("jsk_serve_draining", "1 while a graceful shutdown is in progress.", boolGauge(snap.Draining)),
		telemetry.Gauge("jsk_serve_breaker_open", "1 while the poisoning circuit breaker rejects traffic.", boolGauge(breakerOpen)),
		telemetry.Gauge("jsk_serve_ewma_service_seconds", "Smoothed per-request service time.", float64(s.ewmaNs.Load())/1e9),
	}
}

// versionInfo is the /versionz wire format.
type versionInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// handleVersionz serves build identity from the binary's embedded build
// info, so a scraped fleet can be tied to exact builds.
func (s *Server) handleVersionz(w http.ResponseWriter, _ *http.Request) {
	v := versionInfo{Module: "unknown", Version: "unknown", GoVersion: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.Module = bi.Main.Path
		v.Version = bi.Main.Version
		v.GoVersion = bi.GoVersion
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision":
				v.Revision = st.Value
			case "vcs.modified":
				v.Modified = st.Value == "true"
			}
		}
	}
	s.writeJSON(w, http.StatusOK, v)
}

// handleLedgerz serves the cross-request forensics ledger report,
// settled through a plane barrier so a fixed request sequence always
// reports identical bytes.
func (s *Server) handleLedgerz(w http.ResponseWriter, _ *http.Request) {
	if s.plane == nil {
		s.writeError(w, errf(CodeTelemetryOff, "ledger requires the telemetry plane (start with telemetry enabled)"))
		return
	}
	s.plane.Barrier()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := s.plane.Ledger.WriteJSON(w); err != nil {
		fmt.Fprintf(s.cfg.log(), "jsk-serve: ledgerz write: %v\n", err)
	}
}

// eventsKeepAlive bounds how long an idle SSE stream stays silent.
const eventsKeepAlive = 15 * time.Second

// handleEvents streams plane events over Server-Sent Events. Resume is
// exact: the client's Last-Event-ID header (or ?after= query) positions
// the cursor, events the ring already evicted surface as an explicit
// gap event, and IDs are strictly increasing so client-side dedup after
// a reconnect is a comparison. The stream ends when the client goes
// away or the plane closes during drain.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.plane == nil {
		s.writeError(w, errf(CodeTelemetryOff, "event stream requires the telemetry plane (start with telemetry enabled)"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, errf(CodeInternal, "response writer cannot stream"))
		return
	}
	var cursor uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			cursor = n
		}
	} else if v := r.URL.Query().Get("after"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			cursor = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, gap := s.plane.Hub.Since(cursor, 256)
		if gap != nil {
			data, _ := json.Marshal(gap)
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", gap.To, telemetry.EventGap, data)
			cursor = gap.To
		}
		for _, ev := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
			cursor = ev.ID
		}
		if len(evs) == 0 && gap == nil {
			fmt.Fprint(w, ": keepalive\n\n")
		}
		fl.Flush()
		if !s.plane.Hub.Wait(r.Context(), eventsKeepAlive) {
			return
		}
	}
}
