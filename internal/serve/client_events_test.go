package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sseHandler scripts a sequence of /v1/events connections for resume
// tests: each call is one accepted connection, given the Last-Event-ID
// the client presented.
type sseHandler struct {
	conns atomic.Int64
	serve func(w http.ResponseWriter, conn int64, lastID string)
}

func (h *sseHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/events" {
		http.NotFound(w, r)
		return
	}
	h.serve(w, h.conns.Add(1), r.Header.Get("Last-Event-ID"))
}

func writeSSE(w http.ResponseWriter, id int, typ, data string) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, typ, data)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClientEventsResume: a mid-stream disconnect is transient — the
// client reconnects with Last-Event-ID and, even when the server
// replays an overlapping window, delivers every event exactly once and
// in order.
func TestClientEventsResume(t *testing.T) {
	h := &sseHandler{}
	h.serve = func(w http.ResponseWriter, conn int64, lastID string) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conn {
		case 1:
			if lastID != "" {
				t.Errorf("first connection sent Last-Event-ID %q", lastID)
			}
			for i := 1; i <= 3; i++ {
				writeSSE(w, i, "forensics", fmt.Sprintf(`{"n":%d}`, i))
			}
			// Drop the connection mid-stream, abruptly.
			panic(http.ErrAbortHandler)
		default:
			if lastID != "3" {
				t.Errorf("reconnect sent Last-Event-ID %q, want 3", lastID)
			}
			// Replay an overlapping window: resume must dedup 2 and 3.
			for i := 2; i <= 5; i++ {
				writeSSE(w, i, "forensics", fmt.Sprintf(`{"n":%d}`, i))
			}
			// Clean end of stream: the client treats this as drain.
		}
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	cl := &Client{BaseURL: srv.URL, Sleep: func(time.Duration) {}}
	var got []uint64
	err := cl.Events(context.Background(), 0, func(ev StreamEvent) error {
		if ev.Type != "forensics" {
			t.Errorf("event %d type %q", ev.ID, ev.Type)
		}
		got = append(got, ev.ID)
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	want := []uint64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("delivered IDs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered IDs %v, want %v — duplicates or gaps after resume", got, want)
		}
	}
	if h.conns.Load() != 2 {
		t.Errorf("%d connections, want 2", h.conns.Load())
	}
}

// TestClientEventsPermanentError: a typed permanent refusal — telemetry
// disabled server-side — must stop the client immediately, with no
// reconnect attempts.
func TestClientEventsPermanentError(t *testing.T) {
	s := newTestServer(t, Config{Pool: 1}) // no plane
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	slept := 0
	cl := &Client{BaseURL: srv.URL, Sleep: func(time.Duration) { slept++ }}
	err := cl.Events(context.Background(), 0, func(StreamEvent) error {
		t.Fatal("received an event from a telemetry-off server")
		return nil
	})
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error %T (%v), want *Error", err, err)
	}
	if e.Code != CodeTelemetryOff || e.Retryable() {
		t.Fatalf("code %s retryable=%v, want permanent telemetry_off", e.Code, e.Retryable())
	}
	if slept != 0 {
		t.Errorf("client backed off %d times on a permanent error", slept)
	}
}

// TestClientEventsFailureBudget: persistent transport failure exhausts
// the attempt budget and surfaces the transient error.
func TestClientEventsFailureBudget(t *testing.T) {
	h := &sseHandler{}
	h.serve = func(w http.ResponseWriter, conn int64, lastID string) {
		panic(http.ErrAbortHandler)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	cl := &Client{BaseURL: srv.URL, MaxAttempts: 3, Sleep: func(time.Duration) {}}
	err := cl.Events(context.Background(), 0, func(StreamEvent) error { return nil })
	if err == nil {
		t.Fatal("Events returned nil despite every connection dying")
	}
	re, ok := err.(RetryableError)
	if !ok || !re.Retryable() {
		t.Fatalf("exhausted-budget error %T not classified transient", err)
	}
	if h.conns.Load() != 3 {
		t.Errorf("%d connection attempts, want 3", h.conns.Load())
	}
}

// TestClientEventsLive: end-to-end against a real server — subscribe,
// drive evaluations, receive their forensic verdicts, then observe the
// stream end cleanly when the server drains.
func TestClientEventsLive(t *testing.T) {
	s := New(Config{Pool: 1, Telemetry: true, Log: io.Discard})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cl := &Client{BaseURL: srv.URL}
	type reqEvent struct {
		RequestID string `json:"request_id"`
	}
	seen := make(map[string]int)
	forensics := 0
	done := make(chan error, 1)
	ready := make(chan struct{})
	go func() {
		first := true
		done <- cl.Events(context.Background(), 0, func(ev StreamEvent) error {
			if first {
				first = false
				close(ready)
			}
			if ev.Type != "forensics" {
				return nil
			}
			forensics++
			var re reqEvent
			if err := json.Unmarshal(ev.Data, &re); err != nil {
				return err
			}
			seen[re.RequestID]++
			return nil
		})
	}()

	const n = 4
	ids := make(map[string]bool)
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"attack":"loopscan","defense":"jskernel-chrome","seed":%d,"reps":1}`, i)
		resp, err := http.Post(srv.URL+"/v1/eval", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval %d: %d", i, resp.StatusCode)
		}
		ids[resp.Header.Get("Jsk-Request-Id")] = true
		resp.Body.Close()
	}

	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber never received an event")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		// Drain must read as a clean end of stream, not an error.
		if err != nil {
			t.Fatalf("Events after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after server drain")
	}
	if forensics != n {
		t.Fatalf("received %d forensic events, want %d", forensics, n)
	}
	for id := range ids {
		if seen[id] != 1 {
			t.Errorf("request %s streamed %d verdicts, want exactly 1", id, seen[id])
		}
	}
}
