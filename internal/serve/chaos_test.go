package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"jskernel/internal/expr/runner"
	"jskernel/internal/fault"
	"jskernel/internal/telemetry"
)

// TestServiceChaos is the service-layer chaos harness: it points
// internal/fault's service plan at a live daemon and holds the chaos
// SLO from the issue —
//
//   - zero wrong verdicts: every successful response byte-matches its
//     fault-free reference, whatever faults hit its neighbors;
//   - zero silent drops: every request ends in success or a typed
//     error (transport errors from deliberately-broken clients count as
//     their own fault outcome);
//   - poisoned environments are quarantined by replacement without
//     affecting concurrent requests.
//
// Fault placement comes from fault.NewServiceInjector, so the run is
// reproducible: the same plan and seeds fault the same requests.
func TestServiceChaos(t *testing.T) {
	plan, err := fault.ServicePlanByName("svc-mixed")
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewServiceInjector(plan, 1)
	const (
		n        = 48
		seedBase = int64(10_000)
	)
	reqFor := func(i int) Request {
		return Request{Attack: "loopscan", Defense: "jskernel-chrome", Seed: seedBase + int64(i), Reps: 1}
	}

	// Fault-free references for every index, from a plain server.
	ref, refClient := chaosServer(t, Config{Pool: 2, QueueDepth: 64})
	defer chaosShutdown(t, ref)
	refs := make([][]byte, n)
	for i := 0; i < n; i++ {
		body, err := refClient.EvalBytes(context.Background(), reqFor(i))
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = body
	}

	// The chaos target: env-panic faults fire from inside a running
	// simulation via the cancellation-poll hook, modelling a request
	// that poisons its environment mid-evaluation.
	cfg := Config{
		Pool:             2,
		QueueDepth:       64,
		BreakerThreshold: 1000, // breaker accounting is tested separately
		ReadTimeout:      300 * time.Millisecond,
		FaultHook: func(req *Request, polls int) {
			idx := int(req.Seed - seedBase)
			if idx >= 0 && idx < n && polls == 4 && injector.Peek(idx) == fault.ServiceEnvPanic {
				panic(fmt.Sprintf("chaos: request %d poisons its environment", idx))
			}
		},
	}
	s, client := chaosServer(t, cfg)
	defer chaosShutdown(t, s)
	client.MaxAttempts = 1
	addr := strings.TrimPrefix(client.BaseURL, "http://")

	type outcome struct {
		kind fault.ServiceFault
		err  error
	}
	outcomes := runner.Map(8, n, func(i int) outcome {
		f := injector.Decide(i)
		switch f {
		case fault.ServiceDisconnect:
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(2*time.Millisecond, cancel)
			defer timer.Stop()
			defer cancel()
			body, err := client.EvalBytes(ctx, reqFor(i))
			if err == nil && !bytes.Equal(body, refs[i]) {
				return outcome{f, fmt.Errorf("request outran its disconnect but returned wrong bytes")}
			}
			return outcome{f, nil}
		case fault.ServiceStall:
			return outcome{f, slowLoris(addr)}
		case fault.ServiceMalformed:
			resp, err := http.Post(client.BaseURL+"/v1/eval", "application/json",
				strings.NewReader(`{"attack": <garbage`))
			if err != nil {
				return outcome{f, fmt.Errorf("malformed request transport: %v", err)}
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				return outcome{f, fmt.Errorf("malformed JSON got %d, want typed 400", resp.StatusCode)}
			}
			return outcome{f, nil}
		case fault.ServiceEnvPanic:
			_, err := client.EvalBytes(context.Background(), reqFor(i))
			e, ok := err.(*Error)
			if !ok {
				return outcome{f, fmt.Errorf("poisoning produced untyped outcome %v", err)}
			}
			if e.Code != CodeEnvPoisoned || !e.Retryable() {
				return outcome{f, fmt.Errorf("poisoning produced %s retryable=%v", e.Code, e.Retryable())}
			}
			return outcome{f, nil}
		default:
			body, err := client.EvalBytes(context.Background(), reqFor(i))
			if err != nil {
				return outcome{f, fmt.Errorf("healthy request failed: %v", err)}
			}
			if !bytes.Equal(body, refs[i]) {
				return outcome{f, fmt.Errorf("WRONG VERDICT: healthy response diverged from fault-free reference")}
			}
			return outcome{f, nil}
		}
	})

	perKind := map[fault.ServiceFault]int{}
	for i, o := range outcomes {
		perKind[o.kind]++
		if o.err != nil {
			t.Errorf("request %d (%v): %v", i, o.kind, o.err)
		}
	}
	counts := injector.Counts()
	t.Logf("chaos outcomes: healthy=%d %v", perKind[fault.ServiceNone], counts)
	if counts.Total() == 0 {
		t.Fatal("chaos run delivered zero faults — the SLO was never tested")
	}
	for _, k := range []fault.ServiceFault{fault.ServiceDisconnect, fault.ServiceStall, fault.ServiceMalformed, fault.ServiceEnvPanic} {
		if perKind[k] == 0 {
			t.Errorf("fault family %v never fired in %d requests; raise n or the rate", k, n)
		}
	}

	// Quarantine accounting: every poisoning replaced exactly one
	// environment, and no other request paid for it.
	snap := s.Snapshot()
	if snap.EnvReplaced != counts.EnvPanics {
		t.Errorf("EnvReplaced=%d, want %d (one replacement per poisoning)", snap.EnvReplaced, counts.EnvPanics)
	}

	// The pool is healthy after the storm: a fresh request still
	// byte-matches its reference on whatever environments survived.
	body, err := client.EvalBytes(context.Background(), reqFor(0))
	if err != nil {
		t.Fatalf("post-chaos probe: %v", err)
	}
	if !bytes.Equal(body, refs[0]) {
		t.Error("post-chaos probe diverged from reference")
	}
}

// TestTelemetryChaos points the svc-telemetry plan at a live daemon
// with the observability plane on and holds the telemetry SLO:
//
//   - zero wrong verdicts: every successful response byte-matches its
//     reference from a telemetry-OFF server — scrapes, slow event
//     consumers and neighboring faults never perturb response bytes;
//   - scrapes never block eval: /metricsz served concurrently with the
//     storm (and again mid-drain) always returns a complete exposition
//     that passes the self-check parser;
//   - slow consumers get gaps, not backpressure: subscribers that stop
//     reading fall behind the (deliberately tiny) replay ring and the
//     overrun surfaces as an explicit gap event — never as a stalled
//     flusher or a silently dropped finding.
func TestTelemetryChaos(t *testing.T) {
	plan, err := fault.ServicePlanByName("svc-telemetry")
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewServiceInjector(plan, 1)
	const (
		n        = 48
		seedBase = int64(20_000)
	)
	reqFor := func(i int) Request {
		return Request{Attack: "loopscan", Defense: "jskernel-chrome", Seed: seedBase + int64(i), Reps: 1}
	}

	// References come from a telemetry-OFF server: byte-equality under
	// fire is then also the plane-on/plane-off identity.
	ref, refClient := chaosServer(t, Config{Pool: 2, QueueDepth: 64})
	defer chaosShutdown(t, ref)
	refs := make([][]byte, n)
	for i := 0; i < n; i++ {
		body, err := refClient.EvalBytes(context.Background(), reqFor(i))
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = body
	}

	cfg := Config{
		Pool:               2,
		QueueDepth:         64,
		BreakerThreshold:   1000,
		ReadTimeout:        300 * time.Millisecond,
		Telemetry:          true,
		TelemetryEventRing: 8, // tiny on purpose: lagging consumers must overrun it
		FaultHook: func(req *Request, polls int) {
			idx := int(req.Seed - seedBase)
			if idx >= 0 && idx < n && polls == 4 && injector.Peek(idx) == fault.ServiceEnvPanic {
				panic(fmt.Sprintf("chaos: request %d poisons its environment", idx))
			}
		},
	}
	s, client := chaosServer(t, cfg)
	shut := false
	defer func() {
		if !shut {
			chaosShutdown(t, s)
		}
	}()
	client.MaxAttempts = 1

	// Slow-consumer connections opened during the storm: each subscribes
	// to /v1/events, reads the response head, then stops reading forever.
	var connMu sync.Mutex
	var lazyConns []net.Conn
	defer func() {
		connMu.Lock()
		defer connMu.Unlock()
		for _, c := range lazyConns {
			c.Close()
		}
	}()
	addr := strings.TrimPrefix(client.BaseURL, "http://")
	lazySubscribe := func() error {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return fmt.Errorf("slow consumer dial: %v", err)
		}
		req := "GET /v1/events HTTP/1.1\r\nHost: chaos\r\nAccept: text/event-stream\r\n\r\n"
		if _, err := io.WriteString(conn, req); err != nil {
			conn.Close()
			return fmt.Errorf("slow consumer send: %v", err)
		}
		// Read just the status line to prove the stream opened, then go
		// silent: from here on this subscriber applies zero demand.
		buf := make([]byte, 64)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			conn.Close()
			return fmt.Errorf("slow consumer read head: %v", err)
		}
		connMu.Lock()
		lazyConns = append(lazyConns, conn)
		connMu.Unlock()
		return nil
	}
	scrape := func() error {
		resp, err := http.Get(client.BaseURL + "/metricsz")
		if err != nil {
			return fmt.Errorf("scrape transport: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("scrape read: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scrape status %d", resp.StatusCode)
		}
		if _, err := telemetry.ParseExposition(string(body)); err != nil {
			return fmt.Errorf("mid-storm exposition failed self-check: %v", err)
		}
		return nil
	}

	type outcome struct {
		kind fault.ServiceFault
		err  error
	}
	outcomes := runner.Map(8, n, func(i int) outcome {
		f := injector.Decide(i)
		checkEval := func() error {
			body, err := client.EvalBytes(context.Background(), reqFor(i))
			if err != nil {
				return fmt.Errorf("eval failed: %v", err)
			}
			if !bytes.Equal(body, refs[i]) {
				return fmt.Errorf("WRONG VERDICT: response diverged from telemetry-off reference")
			}
			return nil
		}
		switch f {
		case fault.ServiceDisconnect:
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(2*time.Millisecond, cancel)
			defer timer.Stop()
			defer cancel()
			body, err := client.EvalBytes(ctx, reqFor(i))
			if err == nil && !bytes.Equal(body, refs[i]) {
				return outcome{f, fmt.Errorf("request outran its disconnect but returned wrong bytes")}
			}
			return outcome{f, nil}
		case fault.ServiceEnvPanic:
			_, err := client.EvalBytes(context.Background(), reqFor(i))
			e, ok := err.(*Error)
			if !ok {
				return outcome{f, fmt.Errorf("poisoning produced untyped outcome %v", err)}
			}
			if e.Code != CodeEnvPoisoned || !e.Retryable() {
				return outcome{f, fmt.Errorf("poisoning produced %s retryable=%v", e.Code, e.Retryable())}
			}
			return outcome{f, nil}
		case fault.ServiceScrape:
			// Scrape racing the eval: both must hold simultaneously.
			scrapeDone := make(chan error, 1)
			go func() { scrapeDone <- scrape() }()
			if err := checkEval(); err != nil {
				<-scrapeDone
				return outcome{f, err}
			}
			return outcome{f, <-scrapeDone}
		case fault.ServiceSlowEvents:
			if err := lazySubscribe(); err != nil {
				return outcome{f, err}
			}
			return outcome{f, checkEval()}
		default:
			return outcome{f, checkEval()}
		}
	})

	perKind := map[fault.ServiceFault]int{}
	for i, o := range outcomes {
		perKind[o.kind]++
		if o.err != nil {
			t.Errorf("request %d (%v): %v", i, o.kind, o.err)
		}
	}
	counts := injector.Counts()
	t.Logf("telemetry chaos outcomes: healthy=%d %v", perKind[fault.ServiceNone], counts)
	if counts.Total() == 0 {
		t.Fatal("chaos run delivered zero faults — the SLO was never tested")
	}
	for _, k := range []fault.ServiceFault{fault.ServiceDisconnect, fault.ServiceEnvPanic, fault.ServiceScrape, fault.ServiceSlowEvents} {
		if perKind[k] == 0 {
			t.Errorf("fault family %v never fired in %d requests; raise n or the rate", k, n)
		}
	}

	// Zero silent drops: every completed evaluation's forensic verdict
	// reached the hub, whatever the subscribers were doing. Disconnected
	// clients may or may not have completed server-side; poisoned runs
	// never publish.
	s.Plane().Barrier()
	published, _ := s.Plane().Hub.Counts()
	minWant := uint64(perKind[fault.ServiceNone] + perKind[fault.ServiceScrape] + perKind[fault.ServiceSlowEvents])
	maxWant := minWant + counts.Disconnects
	if got := published[telemetry.EventForensics]; got < minWant || got > maxWant {
		t.Errorf("published %d forensic verdicts, want %d..%d — findings dropped or duplicated", got, minWant, maxWant)
	}

	// Gaps, not backpressure: with an 8-slot ring and ~2 events per
	// request, a from-zero replay must overrun the ring and say so
	// explicitly.
	evs, gap := s.Plane().Hub.Since(0, 0)
	if gap == nil {
		t.Errorf("ring overrun produced no gap event (ring=8, %d events live)", len(evs))
	} else if gap.To == 0 || len(evs) == 0 {
		t.Errorf("gap %+v with %d replayable events — resume point lost", gap, len(evs))
	}

	// Scrape during drain: shut the server down while scraping in a
	// loop. Every scrape that completes at the transport level must
	// still pass the parser; the listener closing ends the loop.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	shut = true
	for {
		resp, err := http.Get(client.BaseURL + "/metricsz")
		if err != nil {
			break // listener gone: drain finished ahead of this scrape
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			break
		}
		if _, perr := telemetry.ParseExposition(string(body)); perr != nil {
			t.Errorf("mid-drain exposition failed self-check: %v", perr)
			break
		}
		select {
		case err := <-shutdownDone:
			if err != nil {
				t.Fatalf("shutdown under scrape load: %v", err)
			}
			return
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown under scrape load: %v", err)
	}
}

// chaosServer boots a server on a loopback listener for chaos runs.
func chaosServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := New(cfg)
	s.Start(ln)
	return s, &Client{BaseURL: "http://" + ln.Addr().String()}
}

func chaosShutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// slowLoris opens a raw connection and trickles an eval request one
// byte at a time, far slower than the server's read bound. Success is
// the server cutting the connection off without disturbing neighbors;
// failure is the trickle being allowed to run past the bound.
func slowLoris(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("slow-loris dial: %v", err)
	}
	defer conn.Close()
	head := "POST /v1/eval HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: 400\r\n\r\n"
	if _, err := io.WriteString(conn, head); err != nil {
		// Connection refused to even take headers — already cut off.
		return nil
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := io.WriteString(conn, "{"); err != nil {
			return nil // server cut the stalled connection: contract held
		}
		// A ReadTimeout'd connection may also surface as a read EOF.
		conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		buf := make([]byte, 256)
		if _, err := conn.Read(buf); err == io.EOF {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("slow-loris trickled for 5s without being cut off (ReadTimeout not enforced)")
}
