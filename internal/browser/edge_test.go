package browser

import (
	"testing"

	"jskernel/internal/sim"
)

// Edge-case and failure-injection coverage for the native substrate.

func TestXHRUnknownURL(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		if _, err := g.XHR("https://site.example/missing.json"); err == nil {
			t.Error("XHR of unregistered URL should fail")
		}
	})
	run(t, b)
}

func TestLoadScriptErrorPath(t *testing.T) {
	b := newTestBrowser(t)
	errored := false
	loaded := false
	b.RunScript("main", func(g *Global) {
		g.LoadScript("https://cdn.example/gone.js",
			func(*Global) { loaded = true },
			func(*Global) { errored = true })
	})
	run(t, b)
	if loaded || !errored {
		t.Fatalf("loaded=%v errored=%v; want error path only", loaded, errored)
	}
}

func TestLoadImageErrorPath(t *testing.T) {
	b := newTestBrowser(t)
	errored := false
	b.RunScript("main", func(g *Global) {
		g.LoadImage("https://cdn.example/gone.png", nil, func(*Global) { errored = true })
	})
	run(t, b)
	if !errored {
		t.Fatal("image error path not taken")
	}
}

func TestImportScriptsOutsideWorkerFails(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		if err := g.ImportScripts("https://site.example/lib.js"); err == nil {
			t.Error("importScripts on the main thread should fail")
		}
	})
	run(t, b)
}

func TestWorkerLocationMainThreadEmpty(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		if loc := g.WorkerLocation(); loc != "" {
			t.Errorf("main-thread worker location = %q, want empty", loc)
		}
	})
	run(t, b)
}

func TestWorkerLocationSameOrigin(t *testing.T) {
	b := newTestBrowser(t)
	var loc string
	b.RegisterWorkerScript("app.js", func(g *Global) { loc = g.WorkerLocation() })
	b.RunScript("main", func(g *Global) {
		if _, err := g.NewWorker("app.js"); err != nil {
			t.Errorf("worker: %v", err)
		}
	})
	run(t, b)
	if loc != "https://site.example/app.js" {
		t.Fatalf("location = %q", loc)
	}
}

func TestNestedWorkersRejected(t *testing.T) {
	b := newTestBrowser(t)
	var nestedErr error
	b.RegisterWorkerScript("outer.js", func(g *Global) {
		_, nestedErr = g.NewWorker("outer.js")
	})
	b.RunScript("main", func(g *Global) {
		if _, err := g.NewWorker("outer.js"); err != nil {
			t.Errorf("worker: %v", err)
		}
	})
	run(t, b)
	if nestedErr == nil {
		t.Fatal("nested worker creation should fail")
	}
}

func TestSharedBufferNilAndFreedAccess(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		if _, err := g.SharedBufferRead(nil, 0); err == nil {
			t.Error("nil buffer read should fail")
		}
		if err := g.SharedBufferWrite(nil, 0, 1); err == nil {
			t.Error("nil buffer write should fail")
		}
		buf := g.NewSharedBuffer(1)
		if buf.Len() != 1 || buf.Freed() {
			t.Errorf("fresh buffer state wrong: len=%d freed=%v", buf.Len(), buf.Freed())
		}
		if err := g.SharedBufferWrite(buf, -1, 0); err == nil {
			t.Error("negative index should fail")
		}
	})
	run(t, b)
}

func TestTransferToParentOutsideWorkerFails(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		buf := g.NewSharedBuffer(1)
		if err := g.TransferToParent("x", buf); err == nil {
			t.Error("TransferToParent from the main scope should fail")
		}
	})
	run(t, b)
}

func TestIDBGetMissingKey(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		store, err := g.IndexedDBOpen("s")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, ok := store.Get("nope"); ok {
			t.Error("missing key should not be found")
		}
		if err := store.Put("k", "v"); err != nil {
			t.Errorf("put: %v", err)
		}
		if v, ok := store.Get("k"); !ok || v != "v" {
			t.Errorf("get = %q, %v", v, ok)
		}
	})
	run(t, b)
}

func TestAppendChildCostedWrapper(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		d := g.Document()
		el := d.CreateElement("div")
		start := g.Thread().Now()
		if err := g.AppendChild(d.Body(), el); err != nil {
			t.Errorf("append: %v", err)
		}
		if g.Thread().Now() == start {
			t.Error("costed append advanced no time")
		}
		// Error propagation: cyclic append must fail.
		if err := g.AppendChild(el, d.Body()); err == nil {
			t.Error("cyclic append should fail")
		}
	})
	run(t, b)
}

func TestDOMAttrBindingsCost(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		d := g.Document()
		el := d.CreateElement("div")
		start := g.Thread().Now()
		g.DOMSetAttribute(el, "k", "v")
		v, ok := g.DOMGetAttribute(el, "k")
		if !ok || v != "v" {
			t.Errorf("attr round trip = %q, %v", v, ok)
		}
		if g.Thread().Now()-start != 2*b.Profile.DOMAttrAccess {
			t.Errorf("attr access cost = %v, want 2×%v", g.Thread().Now()-start, b.Profile.DOMAttrAccess)
		}
		// nil element: no-op, no panic.
		g.DOMSetAttribute(nil, "k", "v")
		if _, ok := g.DOMGetAttribute(nil, "k"); ok {
			t.Error("nil element attr read should miss")
		}
	})
	run(t, b)
}

func TestRunForStopsAtHorizon(t *testing.T) {
	b := newTestBrowser(t)
	ticks := 0
	b.RunScript("main", func(g *Global) {
		var tick func(gg *Global)
		tick = func(gg *Global) {
			ticks++
			gg.SetTimeout(tick, sim.Millisecond)
		}
		g.SetTimeout(tick, sim.Millisecond)
	})
	if err := b.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks < 40 || ticks > 60 {
		t.Fatalf("ticks = %d in 50ms at ~1ms cadence", ticks)
	}
}

func TestQueueDepthAndTasksExecuted(t *testing.T) {
	b := newTestBrowser(t)
	main := b.Main()
	before := main.TasksExecuted()
	b.RunScript("a", func(g *Global) {})
	b.RunScript("b", func(g *Global) {})
	if main.QueueDepth() != 2 {
		t.Fatalf("queue depth = %d, want 2 before run", main.QueueDepth())
	}
	run(t, b)
	if main.TasksExecuted()-before != 2 {
		t.Fatalf("executed = %d, want 2", main.TasksExecuted()-before)
	}
	if main.QueueDepth() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestRecorderCapturesAndResets(t *testing.T) {
	b := newTestBrowser(t)
	rec := &Recorder{}
	b.AddTracer(rec)
	b.RegisterWorkerScript("w.js", func(g *Global) {})
	b.RunScript("main", func(g *Global) {
		if _, err := g.NewWorker("w.js"); err != nil {
			t.Errorf("worker: %v", err)
		}
	})
	run(t, b)
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	events := rec.Events()
	events[0] = TraceEvent{} // mutating the copy must not affect the recorder
	if rec.Events()[0].Kind == 0 {
		t.Fatal("Events() returned shared backing storage")
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestMultiTracerFanout(t *testing.T) {
	b := newTestBrowser(t)
	r1, r2, r3 := &Recorder{}, &Recorder{}, &Recorder{}
	b.AddTracer(r1)
	b.AddTracer(r2)
	b.AddTracer(r3)
	b.AddTracer(nil) // ignored
	b.RunScript("main", func(g *Global) { g.PostMessage("x") })
	run(t, b)
	if r1.Len() == 0 || r1.Len() != r2.Len() || r2.Len() != r3.Len() {
		t.Fatalf("fanout uneven: %d/%d/%d", r1.Len(), r2.Len(), r3.Len())
	}
}

func TestSelfPostMessageRoundTrip(t *testing.T) {
	b := newTestBrowser(t)
	var got any
	b.RunScript("main", func(g *Global) {
		g.SetOnMessage(func(_ *Global, m MessageEvent) { got = m.Data })
		g.PostMessage("self")
	})
	run(t, b)
	if got != "self" {
		t.Fatalf("self post got %v", got)
	}
}

func TestTraceKindStrings(t *testing.T) {
	for k := TraceWorkerCreated; k <= TraceSharedBufferOp; k++ {
		if k.String() == "unknown" {
			t.Errorf("TraceKind(%d) has no name", k)
		}
	}
	if TraceKind(999).String() != "unknown" {
		t.Error("invalid kind should be unknown")
	}
}
