package browser

import (
	"errors"
	"fmt"

	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

// FetchID identifies an in-flight fetch for abort bookkeeping.
type FetchID int64

// ErrAborted is delivered to a fetch callback when its request is aborted.
var ErrAborted = errors.New("browser: fetch aborted")

// Response is a completed fetch's result.
type Response struct {
	URL    string
	Opaque bool   // cross-origin: size/body unreadable
	Bytes  int64  // 0 when opaque
	Body   string // "" when opaque
	Cached bool
}

// FetchOptions configures a fetch request.
type FetchOptions struct {
	Signal *AbortSignal
	// MaxRetries re-issues the request after a transient network failure
	// (webnet.TransientError) with exponential backoff, up to this many
	// extra attempts. Permanent failures (webnet.NotFoundError) are never
	// retried. Zero disables retry.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// subsequent attempt. Zero defaults to 50ms of virtual time.
	RetryBackoff sim.Duration
}

// defaultRetryBackoff is the base retry delay when FetchOptions leaves
// RetryBackoff unset.
const defaultRetryBackoff = 50 * sim.Millisecond

// AbortSignal connects a fetch to an AbortController.
type AbortSignal struct {
	ctl *AbortController
}

// AbortController mirrors the web's AbortController: aborting cancels all
// fetches registered with its signal.
type AbortController struct {
	g       *Global
	aborted bool
	fetches []FetchID
}

// NewAbortController returns a controller bound to this scope.
func (g *Global) NewAbortController() *AbortController {
	return &AbortController{g: g}
}

// Signal returns the controller's signal for use in FetchOptions.
func (c *AbortController) Signal() *AbortSignal { return &AbortSignal{ctl: c} }

// Aborted reports whether Abort has been called.
func (c *AbortController) Aborted() bool { return c.aborted }

// Abort cancels every fetch started with this controller's signal. In
// vulnerable browsers, aborting a fetch whose worker has already been
// (falsely) terminated sends the abort into freed memory — the final step
// of CVE-2018-5092. The native layer performs the abort unconditionally
// and traces it; the vuln registry decides whether it was a trigger.
func (c *AbortController) Abort() {
	c.aborted = true
	for _, id := range c.fetches {
		c.g.bindings.AbortFetch(id)
	}
	c.fetches = nil
}

// fetchRecord tracks one in-flight request at the browser level.
type fetchRecord struct {
	id       FetchID
	url      string
	thread   *Thread
	workerID int
	done     bool
	aborted  bool
	orphaned bool // its thread was terminated while the fetch was pending
	retries  int  // transient-failure retries performed so far
	cancel   func()
	cb       func(*Response, error)
}

// activeFetches lazily initializes the browser's fetch table.
func (b *Browser) activeFetches() map[FetchID]*fetchRecord {
	if b.fetches == nil {
		b.fetches = make(map[FetchID]*fetchRecord)
	}
	return b.fetches
}

// orphanFetches marks all pending fetches of a dying thread as orphaned
// and reports how many there were.
func (b *Browser) orphanFetches(t *Thread) int {
	n := 0
	for _, rec := range b.activeFetches() {
		if rec.thread == t && !rec.done && !rec.aborted {
			rec.orphaned = true
			n++
		}
	}
	return n
}

// nativeFetch implements fetch(): resolve the resource, schedule the
// response callback after the simulated transfer latency, and register
// abort bookkeeping.
func (g *Global) nativeFetch(url string, opts FetchOptions, cb func(*Response, error)) FetchID {
	b := g.browser
	b.nextFetch++
	id := FetchID(b.nextFetch)
	workerID := 0
	if g.worker != nil {
		workerID = g.worker.id
	}
	rec := &fetchRecord{id: id, url: url, thread: g.thread, workerID: workerID, cb: cb}
	b.activeFetches()[id] = rec
	if opts.Signal != nil && opts.Signal.ctl != nil {
		opts.Signal.ctl.fetches = append(opts.Signal.ctl.fetches, id)
	}
	b.trace(TraceEvent{Kind: TraceFetchStart, ThreadID: g.thread.id, WorkerID: workerID, URL: url, Value: int64(id)})

	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	retriesLeft := opts.MaxRetries

	var attempt func()
	attempt = func() {
		result, err := b.Net.Fetch(url, b.Origin)
		if err != nil {
			// Network-level failure still resolves asynchronously — after
			// the (possibly truncated) transfer latency for injected
			// transient faults, or one message hop for permanent ones.
			failLatency := result.Latency
			if failLatency <= 0 {
				failLatency = b.Profile.MessageLatency
			}
			failAt := rec.thread.Now() + failLatency
			if retriesLeft > 0 && webnet.IsTransient(err) {
				retriesLeft--
				rec.retries++
				delay := backoff
				backoff *= 2
				b.trace(TraceEvent{Kind: TraceFetchRetry, ThreadID: rec.thread.id, WorkerID: workerID, URL: url, Value: int64(id), Detail: err.Error()})
				evID := b.Sim.Schedule(failAt+delay, fmt.Sprintf("fetch-retry#%d", id), func() {
					if rec.aborted || rec.thread.terminated {
						return
					}
					attempt()
				})
				rec.cancel = func() { b.Sim.Cancel(evID) }
				return
			}
			rec.cancel = nil
			rec.thread.PostTask(failAt, "fetch-error", func(gg *Global) {
				if rec.aborted {
					return
				}
				rec.done = true
				delete(b.fetches, id)
				if cb != nil {
					cb(nil, err)
				}
			})
			return
		}
		resp := &Response{URL: url, Opaque: result.Opaque, Cached: !result.FromNet}
		if !result.Opaque {
			resp.Bytes = result.Resource.Bytes
			resp.Body = result.Resource.Body
		}
		doneAt := rec.thread.Now() + result.Latency
		evID := b.Sim.Schedule(doneAt, fmt.Sprintf("fetch#%d", id), func() {
			if rec.aborted || rec.thread.terminated {
				return
			}
			if h := b.faults; h != nil && h.FetchDone != nil && h.FetchDone(url) {
				// Injected abort race: the response is ready, but an abort
				// lands first. The abort path resolves the request (and any
				// kernel event registered for it) with ErrAborted.
				g.nativeAbortFetch(id)
				return
			}
			rec.done = true
			delete(b.fetches, id)
			b.trace(TraceEvent{Kind: TraceFetchDone, ThreadID: rec.thread.id, WorkerID: workerID, URL: url, Value: int64(id)})
			rec.thread.PostTask(doneAt, "fetch-cb", func(gg *Global) {
				if cb != nil {
					cb(resp, nil)
				}
			})
		})
		rec.cancel = func() { b.Sim.Cancel(evID) }
	}
	attempt()
	return id
}

// nativeAbortFetch implements the abort path. Aborting an orphaned fetch
// (its worker already terminated) is traced with the detail the
// CVE-2018-5092 detector keys on.
func (g *Global) nativeAbortFetch(id FetchID) {
	b := g.browser
	rec, ok := b.activeFetches()[id]
	if !ok {
		return
	}
	detail := ""
	switch {
	case rec.orphaned:
		detail = "orphaned"
	case rec.done:
		detail = "late"
	}
	if rec.orphaned {
		// Hazard witness: the abort lands in the freed worker's request
		// state (CVE-2018-5092's final step).
		b.access(g.thread, "worker", int64(rec.workerID), AccessWrite|AccessGuardian)
		b.access(g.thread, "worker", int64(rec.workerID), AccessWrite)
	}
	b.trace(TraceEvent{Kind: TraceFetchAbort, ThreadID: g.thread.id, WorkerID: rec.workerID, URL: rec.url, Detail: detail, Value: int64(id)})
	if rec.done || rec.aborted {
		return
	}
	rec.aborted = true
	if rec.cancel != nil {
		rec.cancel()
	}
	delete(b.fetches, id)
	if rec.cb != nil && !rec.orphaned {
		cb := rec.cb
		rec.thread.PostTask(rec.thread.Now(), "fetch-abort-cb", func(gg *Global) { cb(nil, ErrAborted) })
	}
}

// PendingFetches reports the number of in-flight fetches (tests and the
// kernel thread manager use it).
func (b *Browser) PendingFetches() int {
	n := 0
	for _, rec := range b.activeFetches() {
		if !rec.done && !rec.aborted {
			n++
		}
	}
	return n
}

// nativeXHR implements a synchronous XMLHttpRequest. The native layer is
// vulnerable (CVE-2013-1714): requests from worker threads skip the
// same-origin check and return cross-origin bodies. The main thread
// enforces the check, matching the real bug's shape.
func (g *Global) nativeXHR(url string) (string, error) {
	b := g.browser
	crossOrigin := !webnet.SameOrigin(url, b.Origin)
	detail := "same-origin"
	if crossOrigin {
		detail = "cross-origin"
		if g.worker != nil {
			detail = "cross-origin-worker"
		}
	}
	if detail == "cross-origin-worker" {
		// Hazard witness: a worker-thread request crossing the origin
		// boundary unchecked (CVE-2013-1714).
		b.access(g.thread, "origin", 0, AccessWrite|AccessGuardian)
		b.access(g.thread, "origin", 0, 0)
	}
	b.trace(TraceEvent{Kind: TraceXHR, ThreadID: g.thread.id, URL: url, Detail: detail})
	if crossOrigin && g.worker == nil {
		return "", fmt.Errorf("browser: XHR to %s blocked by same-origin policy", url)
	}
	res, err := b.Net.Fetch(url, b.Origin)
	if err != nil {
		return "", err
	}
	g.thread.advance(res.Latency)
	return res.Resource.Body, nil
}

// nativeImportScripts implements importScripts() in worker scopes. A
// failing cross-origin load produces the detailed error message whose
// text leaks cross-origin information (CVE-2015-7215 / CVE-2014-1487
// family); the error is also routed to the parent's onerror handler.
func (g *Global) nativeImportScripts(url string) error {
	b := g.browser
	if g.worker == nil {
		return fmt.Errorf("browser: importScripts is only available in workers")
	}
	b.trace(TraceEvent{Kind: TraceImportScripts, ThreadID: g.thread.id, WorkerID: g.worker.id, URL: url})
	res, err := b.Net.Fetch(url, b.Origin)
	if err != nil {
		// Leaky native error text: includes the exact URL and resolution
		// detail an attacker can mine for cross-origin state.
		werr := &WorkerError{
			Message: fmt.Sprintf("NetworkError: importScripts failed for %s (%v; upstream status visible)", url, err),
			URL:     url,
		}
		// Hazard witness: the leaky error text exposes cross-origin
		// resolution state (CVE-2015-7215 / CVE-2014-1487 family).
		b.access(g.thread, "origin", 0, AccessWrite|AccessGuardian)
		b.access(g.thread, "origin", 0, 0)
		b.trace(TraceEvent{Kind: TraceNavigationError, ThreadID: g.thread.id, WorkerID: g.worker.id, URL: url, Detail: "leaky-error"})
		g.reportWorkerError(werr)
		return werr
	}
	g.thread.advance(res.Latency)
	g.thread.advance(perKBCost(res.Resource.Bytes, b.Profile.ScriptParsePerKB))
	return nil
}

// perKBCost scales a per-kilobyte cost to a byte count.
func perKBCost(bytes int64, perKB sim.Duration) sim.Duration {
	return sim.Duration(float64(bytes) / 1024 * float64(perKB))
}
