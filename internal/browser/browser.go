package browser

import (
	"fmt"

	"jskernel/internal/dom"
	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

// Script is website JavaScript: a Go closure run against a global object.
// The paper's user-space JS maps onto these closures; everything they can
// observe or schedule goes through the *Global's bindings table, which is
// the interposition seam defenses rewrite.
type Script func(g *Global)

// Options configures a Browser.
type Options struct {
	Profile     Profile
	Net         *webnet.Net
	PrivateMode bool
	Tracer      Tracer
	// ObsEvents enables the observability trace kinds (timer-fired,
	// clock-read, message-callback, frame-tick, load-done) emitted from
	// the public binding delegates. Off by default: each site then costs
	// exactly one boolean check, and emission itself never perturbs
	// simulated time, so runs are identical either way.
	ObsEvents bool
	// InstallScope, when set, is invoked for every newly created global
	// (main window and each worker scope) before user code runs. Defenses
	// use it to interpose on the bindings table; it corresponds to the
	// paper's kernel bootstrap that "injects the kernel into every new
	// JavaScript context".
	InstallScope func(g *Global)
}

// Browser is one simulated browser instance: a main thread, any worker
// threads, shared profile/network/history state, and the feature registries
// the attacks exercise.
type Browser struct {
	Sim     *sim.Simulator
	Net     *webnet.Net
	Profile Profile

	Origin      string // origin of the loaded page
	PrivateMode bool

	visited      map[string]bool // link history for sniffing attacks
	tracer       Tracer
	obsEvents    bool
	installScope func(g *Global)
	// nextScopeToken allocates the per-global observability token; the
	// main window always takes token 1 (New creates it first).
	nextScopeToken int64

	threads    []*Thread
	main       *Thread
	nextThread int
	nextWorker int
	nextFrame  int
	nextFetch  int64
	nextBuffer int64

	workerScripts map[string]Script
	redirects     map[string]string // worker src → final (possibly cross-origin) URL
	idb           *indexedDB
	fetches       map[FetchID]*fetchRecord
	tornDown      bool
	faults        *FaultHooks
}

// FaultHooks are optional fault-injection callbacks the native layer
// consults at specific degradation points. All fields are nil-safe; the
// deterministic implementations live in internal/fault. Hooks must be
// pure functions of seeded injector state so runs stay reproducible.
type FaultHooks struct {
	// WorkerDelivery is consulted as a parent→worker message is delivered;
	// returning true crashes the worker thread mid-message (the delivery is
	// lost and the thread dies without any terminate bookkeeping).
	WorkerDelivery func(workerID int) bool
	// FetchDone is consulted as a fetch response is about to complete;
	// returning true aborts the request at the last instant — the abort
	// race where a response event is registered but never delivered.
	FetchDone func(url string) bool
}

// SetFaultHooks installs (or, with nil, removes) the native layer's fault
// hooks.
func (b *Browser) SetFaultHooks(h *FaultHooks) { b.faults = h }

// SetRedirect records that a worker source is served via an HTTP redirect
// to finalURL, the precondition for the worker-location disclosure of
// CVE-2011-1190.
func (b *Browser) SetRedirect(src, finalURL string) {
	if b.redirects == nil {
		b.redirects = make(map[string]string)
	}
	b.redirects[src] = finalURL
}

// RedirectTarget returns the redirect destination for a worker source, if
// one was configured.
func (b *Browser) RedirectTarget(src string) (string, bool) {
	final, ok := b.redirects[src]
	return final, ok
}

// New creates a browser on the given simulator. A nil Net gets the default
// network model; the zero Profile defaults to Chrome.
func New(s *sim.Simulator, opts Options) *Browser {
	if opts.Profile.Name == "" {
		opts.Profile = ChromeProfile()
	}
	if opts.Net == nil {
		opts.Net = webnet.New(webnet.DefaultConfig(), s.Rand())
	}
	b := &Browser{
		Sim:           s,
		Net:           opts.Net,
		Profile:       opts.Profile,
		PrivateMode:   opts.PrivateMode,
		visited:       make(map[string]bool),
		tracer:        opts.Tracer,
		obsEvents:     opts.ObsEvents,
		installScope:  opts.InstallScope,
		workerScripts: make(map[string]Script),
		idb:           newIndexedDB(),
	}
	b.main = b.newThread("main", true)
	return b
}

// AddTracer attaches an additional native-layer tracer.
func (b *Browser) AddTracer(t Tracer) {
	if t == nil {
		return
	}
	switch cur := b.tracer.(type) {
	case nil:
		b.tracer = t
	case multiTracer:
		b.tracer = append(cur, t)
	default:
		b.tracer = multiTracer{cur, t}
	}
}

// Main returns the browser's main thread.
func (b *Browser) Main() *Thread { return b.main }

// Threads returns all live threads (main first).
func (b *Browser) Threads() []*Thread {
	out := make([]*Thread, 0, len(b.threads))
	for _, t := range b.threads {
		if !t.terminated {
			out = append(out, t)
		}
	}
	return out
}

// Window returns the main thread's global object.
func (b *Browser) Window() *Global { return b.main.Global() }

// RegisterWorkerScript registers the body of a worker source file, so user
// code can `new Worker(name)`.
func (b *Browser) RegisterWorkerScript(name string, script Script) {
	b.workerScripts[name] = script
}

// MarkVisited records a URL in the browser's history (the secret the
// history-sniffing attack steals).
func (b *Browser) MarkVisited(url string) { b.visited[url] = true }

// Visited reports whether a URL is in the history.
func (b *Browser) Visited(url string) bool { return b.visited[url] }

// RunScript schedules user code on the main thread at the current virtual
// time and is the usual entry point for a page's inline script.
func (b *Browser) RunScript(name string, script Script) {
	b.main.PostTask(b.Sim.Now(), name, func(g *Global) { script(g) })
}

// Run drives the simulation until no work remains.
func (b *Browser) Run() error { return b.Sim.Run() }

// RunFor drives the simulation for a span of virtual time.
func (b *Browser) RunFor(d sim.Duration) error { return b.Sim.RunUntil(b.Sim.Now() + d) }

// TearDownDocument simulates navigating away: the document is destroyed
// while workers may still be running (CVE-2010-4576's precondition).
func (b *Browser) TearDownDocument() {
	b.tornDown = true
	b.access(b.main, "doc", 0, AccessWrite)
	b.trace(TraceEvent{Kind: TraceDocumentTeardown, ThreadID: b.main.ID()})
}

// DocumentTornDown reports whether TearDownDocument was called.
func (b *Browser) DocumentTornDown() bool { return b.tornDown }

// newThread creates a thread and its global scope, applying the defense's
// scope installer.
func (b *Browser) newThread(name string, isMain bool) *Thread {
	b.nextThread++
	t := &Thread{
		b:      b,
		id:     b.nextThread,
		name:   name,
		isMain: isMain,
	}
	g := &Global{browser: b, thread: t}
	b.nextScopeToken++
	g.token = b.nextScopeToken
	if isMain {
		g.document = dom.NewDocument()
	}
	g.bindings = nativeBindings(g)
	t.global = g
	b.threads = append(b.threads, t)
	if b.installScope != nil {
		b.installScope(g)
	}
	return t
}

// NewScopeOnThread creates an additional global scope bound to an existing
// thread, with fresh native bindings and no document. Chrome Zero's
// polyfill (non-parallel) worker uses it to run worker scripts on the main
// thread. The scope installer is NOT applied — the caller owns the
// bindings.
func (b *Browser) NewScopeOnThread(t *Thread) *Global {
	g := &Global{browser: b, thread: t}
	b.nextScopeToken++
	g.token = b.nextScopeToken
	g.bindings = nativeBindings(g)
	return g
}

// HasWorkerScript reports whether a worker source name is registered.
func (b *Browser) HasWorkerScript(name string) bool {
	_, ok := b.workerScripts[name]
	return ok
}

// WorkerScript returns a registered worker script body.
func (b *Browser) WorkerScript(name string) (Script, error) { return b.workerScript(name) }

// workerScript resolves a registered worker source.
func (b *Browser) workerScript(src string) (Script, error) {
	s, ok := b.workerScripts[src]
	if !ok {
		return nil, fmt.Errorf("browser: unknown worker script %q", src)
	}
	return s, nil
}
