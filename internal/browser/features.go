package browser

import (
	"fmt"
	"sort"

	"jskernel/internal/sim"
)

// This file implements SharedArrayBuffer and IndexedDB, the remaining
// feature surface the paper's attacks and CVE models need.

// SharedBuffer models a SharedArrayBuffer (or a transferable ArrayBuffer):
// a chunk of memory reachable from multiple threads. All script access
// goes through SharedBufferRead/Write bindings so a kernel can interpose
// on every access, as §III-E2 of the paper requires.
type SharedBuffer struct {
	ID    int64
	slots []int64
	owner *Thread // current owning thread for transferables
	freed bool
}

// Len returns the number of slots.
func (s *SharedBuffer) Len() int { return len(s.slots) }

// Freed reports whether the buffer's backing store was released.
func (s *SharedBuffer) Freed() bool { return s.freed }

// NewSharedBuffer allocates an n-slot shared buffer owned by this scope's
// thread.
func (g *Global) NewSharedBuffer(n int) *SharedBuffer {
	b := g.browser
	b.nextBuffer++
	return &SharedBuffer{ID: b.nextBuffer, slots: make([]int64, n), owner: g.thread}
}

// sharedBufferOpCost is the per-access cost of typed-array style access.
const sharedBufferOpCost = 40 * sim.Nanosecond

func (g *Global) nativeSharedBufferRead(buf *SharedBuffer, idx int) (int64, error) {
	if err := g.checkBufferAccess(buf, idx, "read"); err != nil {
		return 0, err
	}
	g.thread.advance(sharedBufferOpCost)
	return buf.slots[idx], nil
}

func (g *Global) nativeSharedBufferWrite(buf *SharedBuffer, idx int, v int64) error {
	if err := g.checkBufferAccess(buf, idx, "write"); err != nil {
		return err
	}
	g.thread.advance(sharedBufferOpCost)
	buf.slots[idx] = v
	return nil
}

// checkBufferAccess validates and traces one buffer access. Access to a
// freed buffer is the UAF the transferable CVEs end in; the vulnerable
// native layer performs it anyway (returning an error to the script but
// tracing the use-after-free for the detector).
func (g *Global) checkBufferAccess(buf *SharedBuffer, idx int, op string) error {
	if buf == nil {
		return fmt.Errorf("browser: %s of nil buffer", op)
	}
	b := g.browser
	detail := op
	if buf.freed {
		detail = op + ":use-after-free"
	} else if buf.owner != nil && buf.owner.terminated {
		// The owning thread died; vulnerable engines free the backing
		// store with the thread (CVE-2014-1488).
		buf.freed = true
		detail = op + ":use-after-free"
	}
	if buf.freed {
		// Hazard witness: the backing store died with its owner thread;
		// this access touches freed memory (CVE-2014-1488).
		b.access(g.thread, "buffer", buf.ID, AccessWrite|AccessGuardian)
	}
	kind := int64(0)
	if op == "write" {
		kind = AccessWrite
	}
	b.access(g.thread, "buffer", buf.ID, kind)
	// Stamp the in-task cursor time: cross-thread race detection needs
	// finer resolution than the task-level simulator clock.
	b.trace(TraceEvent{Kind: TraceSharedBufferOp, ThreadID: g.thread.id, Value: buf.ID, Detail: detail, At: g.thread.Now()})
	if buf.freed {
		return fmt.Errorf("browser: %s of freed buffer %d", op, buf.ID)
	}
	if idx < 0 || idx >= len(buf.slots) {
		return fmt.Errorf("browser: buffer index %d out of range [0,%d)", idx, len(buf.slots))
	}
	return nil
}

// TransferToParent moves a buffer's ownership from a worker scope to the
// parent thread and posts it (worker-side transferable postMessage —
// CVE-2014-1488's setup: main keeps using the buffer after the worker,
// its original owner, is terminated). It routes through the bindings table
// so a kernel can interpose.
func (g *Global) TransferToParent(data any, buf *SharedBuffer) error {
	return g.bindings.TransferToParent(data, buf)
}

func (g *Global) nativeTransferToParent(data any, buf *SharedBuffer) error {
	st := g.worker
	if st == nil {
		return fmt.Errorf("browser: TransferToParent outside a worker scope")
	}
	b := g.browser
	if buf != nil {
		b.trace(TraceEvent{
			Kind: TraceTransferable, ThreadID: g.thread.id,
			WorkerID: st.id, Value: buf.ID, Detail: "to-parent",
		})
		// Vulnerable native behaviour: ownership is recorded against the
		// worker thread even though the parent now holds the reference, so
		// terminating the worker frees memory the parent still uses.
	}
	st.inFlight++
	deliverAt := g.thread.Now() + b.Profile.MessageLatency
	st.parent.PostTask(deliverAt, "parent-onmessage-transfer", func(pg *Global) {
		st.inFlight--
		b.trace(TraceEvent{Kind: TraceMessageDelivered, ThreadID: st.parent.id, WorkerID: st.id, Detail: "transfer"})
		if st.handleOnMessage != nil {
			st.handleOnMessage(pg, MessageEvent{Data: data, SourceWorker: st.id, Transfer: buf})
		}
	})
	return nil
}

// --- IndexedDB ---

// IDBStore is one named IndexedDB object store.
type IDBStore struct {
	name    string
	origin  string
	g       *Global
	private bool
}

// indexedDB is the browser-wide store map. The vulnerable native layer
// persists private-mode writes exactly like normal ones (CVE-2017-7843).
type indexedDB struct {
	data map[string]map[string]string // store name → key → value
}

func newIndexedDB() *indexedDB {
	return &indexedDB{data: make(map[string]map[string]string)}
}

func (g *Global) nativeIndexedDBOpen(name string) (*IDBStore, error) {
	b := g.browser
	detail := ""
	if b.PrivateMode {
		detail = "private-mode"
	}
	b.trace(TraceEvent{Kind: TraceIndexedDBOpen, ThreadID: g.thread.id, URL: name, Detail: detail})
	if _, ok := b.idb.data[name]; !ok {
		b.idb.data[name] = make(map[string]string)
	}
	g.thread.advance(120 * sim.Microsecond)
	return &IDBStore{name: name, origin: b.Origin, g: g, private: b.PrivateMode}, nil
}

// Put stores a key/value pair. In private mode the write should be
// session-scoped; the vulnerable native layer persists it anyway and
// traces that fact.
func (s *IDBStore) Put(key, value string) error {
	b := s.g.browser
	detail := ""
	if s.private {
		detail = "private-mode"
		// Hazard witness: a private-browsing write landing in persistent
		// state (CVE-2017-7843).
		b.access(s.g.thread, "idb", 0, AccessWrite|AccessGuardian)
	}
	b.access(s.g.thread, "idb", 0, AccessWrite)
	b.trace(TraceEvent{Kind: TraceIndexedDBPut, ThreadID: s.g.thread.id, URL: s.name, Detail: detail})
	s.g.thread.advance(80 * sim.Microsecond)
	b.idb.data[s.name][key] = value
	return nil
}

// Get retrieves a value.
func (s *IDBStore) Get(key string) (string, bool) {
	s.g.thread.advance(60 * sim.Microsecond)
	v, ok := s.g.browser.idb.data[s.name][key]
	return v, ok
}

// PersistedStores lists store names with data, used to verify whether
// private-mode writes leaked into persistent state.
func (b *Browser) PersistedStores() []string {
	out := make([]string, 0, len(b.idb.data))
	for name, kv := range b.idb.data {
		if len(kv) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
