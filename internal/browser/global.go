package browser

import (
	"errors"
	"fmt"
	"math"

	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// ErrFrozen is returned when user-space code tries to redefine bindings
// after a defense froze them (the paper's Object.freeze hardening).
var ErrFrozen = errors.New("browser: bindings are frozen")

// MessageEvent is the payload delivered to onmessage handlers.
type MessageEvent struct {
	Data         any
	SourceWorker int           // worker ID for worker→main messages (0 otherwise)
	Transfer     *SharedBuffer // transferred buffer, if any
	Origin       string        // sender origin for cross-context (frame) messages
}

// WorkerError is delivered to onerror handlers; its Message is the channel
// through which CVE-2014-1487 / CVE-2015-7215 leak cross-origin details.
type WorkerError struct {
	Message string
	URL     string
}

func (e *WorkerError) Error() string { return e.Message }

// Bindings is the table of native entry points reachable from user space —
// the Go rendition of the JavaScript global's API surface. A defense
// interposes by replacing entries before user code runs (kernel API calls),
// wrapping the message-handler setter (kernel traps), or returning wrapped
// worker objects (user-space stubs). Unset optional entries fall back to
// native behaviour.
type Bindings struct {
	SetTimeout    func(cb func(*Global), d sim.Duration) int
	ClearTimeout  func(id int)
	SetInterval   func(cb func(*Global), d sim.Duration) int
	ClearInterval func(id int)

	PerformanceNow func() float64 // milliseconds
	DateNow        func() int64   // milliseconds

	RequestAnimationFrame func(cb func(*Global, float64)) int
	CancelAnimationFrame  func(id int)

	NewWorker    func(src string) (Worker, error)
	PostMessage  func(data any)                       // worker scope → parent
	SetOnMessage func(cb func(*Global, MessageEvent)) // self scope handler

	Fetch         func(url string, opts FetchOptions, cb func(*Response, error)) FetchID
	AbortFetch    func(id FetchID)
	XHR           func(url string) (string, error)
	ImportScripts func(url string) error

	IndexedDBOpen  func(name string) (*IDBStore, error)
	WorkerLocation func() string

	DOMSetAttribute func(el *dom.Element, name, value string)
	DOMGetAttribute func(el *dom.Element, name string) (string, bool)

	CreateFrame func(origin string) (Frame, error)

	LoadScript        func(url string, onload func(*Global), onerror func(*Global))
	LoadImage         func(url string, onload func(*Global, *dom.Element), onerror func(*Global))
	StartCSSAnimation func(el *dom.Element, cb func(*Global, int)) int
	StopCSSAnimation  func(id int)
	PlayVideo         func(cueCb func(*Global, int)) (stop func())

	SharedBufferRead  func(buf *SharedBuffer, idx int) (int64, error)
	SharedBufferWrite func(buf *SharedBuffer, idx int, v int64) error
	TransferToParent  func(data any, buf *SharedBuffer) error
}

// Global is a JavaScript global object: the `window` of the main thread or
// the `self` of a worker scope. All user-space code runs against one.
type Global struct {
	browser  *Browser
	thread   *Thread
	worker   *workerState // non-nil in worker scopes
	frame    *frameState  // non-nil in iframe scopes
	document *dom.Document

	bindings *Bindings
	frozen   bool

	// token is the browser-unique observability identity of this global
	// (main window = 1). Obs events carry the registering scope's token
	// so the forensics layer can tell whose callback fired even though
	// dispatched tasks always receive the thread's global.
	token int64

	timers      map[int]*timer
	nextTimerID int

	microtasks []func(*Global)

	cssAnims   map[int]*cssAnimation
	nextAnimID int
}

// Browser returns the owning browser.
func (g *Global) Browser() *Browser { return g.browser }

// Thread returns the thread this global belongs to.
func (g *Global) Thread() *Thread { return g.thread }

// IsWorkerScope reports whether this global is a worker's `self`.
func (g *Global) IsWorkerScope() bool { return g.worker != nil }

// Document returns the DOM document (main thread only; nil in workers).
func (g *Global) Document() *dom.Document { return g.document }

// Bindings exposes the mutable bindings table. Defenses use it during
// scope installation; user-space code must go through Redefine, which
// respects freezing.
func (g *Global) Bindings() *Bindings { return g.bindings }

// Redefine lets user-space code overwrite bindings (the paper's
// "self-modifying code" adversary). It fails once a defense froze the
// table.
func (g *Global) Redefine(mutate func(*Bindings)) error {
	if g.frozen {
		return ErrFrozen
	}
	mutate(g.bindings)
	return nil
}

// Freeze locks the bindings table against user-space redefinition, the
// analogue of the paper's Object.freeze on system prototypes.
func (g *Global) Freeze() { g.frozen = true }

// Frozen reports whether the bindings table is frozen.
func (g *Global) Frozen() bool { return g.frozen }

// --- Public API surface (delegates through the bindings table) ---

// SetTimeout schedules cb after at least d of virtual time.
func (g *Global) SetTimeout(cb func(*Global), d sim.Duration) int {
	if g.browser.obsEvents {
		cb = g.obsTimerCB(cb, d, "")
	}
	return g.bindings.SetTimeout(cb, d)
}

// ClearTimeout cancels a pending timeout.
func (g *Global) ClearTimeout(id int) { g.bindings.ClearTimeout(id) }

// SetInterval schedules cb repeatedly every d.
func (g *Global) SetInterval(cb func(*Global), d sim.Duration) int {
	if g.browser.obsEvents {
		cb = g.obsTimerCB(cb, d, "interval")
	}
	return g.bindings.SetInterval(cb, d)
}

// ClearInterval cancels a repeating timer.
func (g *Global) ClearInterval(id int) { g.bindings.ClearInterval(id) }

// PerformanceNow returns the high-resolution clock in milliseconds.
func (g *Global) PerformanceNow() float64 {
	v := g.bindings.PerformanceNow()
	if g.browser.obsEvents {
		g.browser.trace(TraceEvent{
			Kind:     TraceClockRead,
			At:       g.thread.Now(),
			ThreadID: g.thread.id,
			Value:    g.token,
			Aux:      int64(math.Float64bits(v)),
		})
	}
	return v
}

// DateNow returns the wall clock in whole milliseconds.
func (g *Global) DateNow() int64 {
	v := g.bindings.DateNow()
	if g.browser.obsEvents {
		g.browser.trace(TraceEvent{
			Kind:     TraceClockRead,
			At:       g.thread.Now(),
			ThreadID: g.thread.id,
			Detail:   "date",
			Value:    g.token,
			Aux:      v,
		})
	}
	return v
}

// RequestAnimationFrame schedules cb at the next frame boundary.
func (g *Global) RequestAnimationFrame(cb func(*Global, float64)) int {
	if g.browser.obsEvents {
		cb = g.obsRAFCB(cb)
	}
	return g.bindings.RequestAnimationFrame(cb)
}

// CancelAnimationFrame cancels a pending animation frame callback.
func (g *Global) CancelAnimationFrame(id int) { g.bindings.CancelAnimationFrame(id) }

// NewWorker spawns a web worker from a registered script or URL.
func (g *Global) NewWorker(src string) (Worker, error) {
	w, err := g.bindings.NewWorker(src)
	if g.browser.obsEvents && w != nil && err == nil {
		w = &obsWorker{Worker: w, g: g}
	}
	return w, err
}

// PostMessage sends data from a worker scope to its parent. On the main
// thread it is a self-post (window.postMessage to itself).
func (g *Global) PostMessage(data any) { g.bindings.PostMessage(data) }

// SetOnMessage installs this scope's message handler. This is the paper's
// canonical kernel-trap site (the onmessage setter).
func (g *Global) SetOnMessage(cb func(*Global, MessageEvent)) {
	if g.browser.obsEvents {
		cb = g.obsMessageCB(cb)
	}
	g.bindings.SetOnMessage(cb)
}

// Fetch starts a network request and invokes cb on completion or error.
func (g *Global) Fetch(url string, opts FetchOptions, cb func(*Response, error)) FetchID {
	if g.browser.obsEvents {
		cb = g.obsFetchCB(cb, url)
	}
	return g.bindings.Fetch(url, opts, cb)
}

// XHR performs a synchronous-style XMLHttpRequest and returns the body.
func (g *Global) XHR(url string) (string, error) { return g.bindings.XHR(url) }

// ImportScripts synchronously loads a script into a worker scope.
func (g *Global) ImportScripts(url string) error { return g.bindings.ImportScripts(url) }

// IndexedDBOpen opens (creating if needed) an IndexedDB store.
func (g *Global) IndexedDBOpen(name string) (*IDBStore, error) { return g.bindings.IndexedDBOpen(name) }

// WorkerLocation returns the worker's effective location (worker scopes
// only; "" elsewhere).
func (g *Global) WorkerLocation() string { return g.bindings.WorkerLocation() }

// SharedBufferRead reads one slot of a shared buffer.
func (g *Global) SharedBufferRead(buf *SharedBuffer, idx int) (int64, error) {
	return g.bindings.SharedBufferRead(buf, idx)
}

// SharedBufferWrite writes one slot of a shared buffer.
func (g *Global) SharedBufferWrite(buf *SharedBuffer, idx int, v int64) error {
	return g.bindings.SharedBufferWrite(buf, idx, v)
}

// QueueMicrotask runs cb at the end of the current task, before the next
// task is dispatched.
func (g *Global) QueueMicrotask(cb func(*Global)) {
	if cb == nil {
		return
	}
	g.microtasks = append(g.microtasks, cb)
}

// Busy performs synchronous computation costing d of virtual time.
func (g *Global) Busy(d sim.Duration) { g.thread.advance(d) }

// BusyIters runs n iterations of a cheap counting loop (the clock-edge
// attack's `i++`), advancing virtual time accordingly.
func (g *Global) BusyIters(n int) {
	if n <= 0 {
		return
	}
	g.thread.advance(sim.Duration(n) * g.browser.Profile.BusyLoopPerIter)
}

// --- Native binding implementations ---

// timer is a cancellable timeout/interval registration.
type timer struct {
	id        int
	cancelled bool
	interval  sim.Duration // 0 for one-shot
}

// nativeBindings builds the browser's unmediated API table for a scope.
func nativeBindings(g *Global) *Bindings {
	return &Bindings{
		SetTimeout:            g.nativeSetTimeout,
		ClearTimeout:          g.nativeClearTimer,
		SetInterval:           g.nativeSetInterval,
		ClearInterval:         g.nativeClearTimer,
		PerformanceNow:        g.nativePerformanceNow,
		DateNow:               g.nativeDateNow,
		RequestAnimationFrame: g.nativeRequestAnimationFrame,
		CancelAnimationFrame:  g.nativeClearTimer,
		NewWorker:             g.nativeNewWorker,
		PostMessage:           g.nativePostMessage,
		SetOnMessage:          g.nativeSetOnMessage,
		Fetch:                 g.nativeFetch,
		AbortFetch:            g.nativeAbortFetch,
		XHR:                   g.nativeXHR,
		ImportScripts:         g.nativeImportScripts,
		IndexedDBOpen:         g.nativeIndexedDBOpen,
		WorkerLocation:        g.nativeWorkerLocation,
		DOMSetAttribute:       g.nativeDOMSetAttribute,
		DOMGetAttribute:       g.nativeDOMGetAttribute,
		CreateFrame:           g.nativeCreateFrame,
		LoadScript:            g.nativeLoadScript,
		LoadImage:             g.nativeLoadImage,
		StartCSSAnimation:     g.nativeStartCSSAnimation,
		StopCSSAnimation:      g.nativeStopCSSAnimation,
		PlayVideo:             g.nativePlayVideo,
		SharedBufferRead:      g.nativeSharedBufferRead,
		SharedBufferWrite:     g.nativeSharedBufferWrite,
		TransferToParent:      g.nativeTransferToParent,
	}
}

func (g *Global) newTimer(interval sim.Duration) *timer {
	if g.timers == nil {
		g.timers = make(map[int]*timer)
	}
	g.nextTimerID++
	t := &timer{id: g.nextTimerID, interval: interval}
	g.timers[t.id] = t
	return t
}

func (g *Global) nativeSetTimeout(cb func(*Global), d sim.Duration) int {
	if cb == nil {
		return 0
	}
	if d < g.browser.Profile.TimerClampMin {
		d = g.browser.Profile.TimerClampMin
	}
	t := g.newTimer(0)
	fireAt := g.thread.Now() + d
	g.thread.PostTask(fireAt, fmt.Sprintf("timeout#%d", t.id), func(gg *Global) {
		if t.cancelled {
			return
		}
		delete(g.timers, t.id)
		cb(gg)
		gg.drainMicrotasks()
	})
	return t.id
}

func (g *Global) nativeSetInterval(cb func(*Global), d sim.Duration) int {
	if cb == nil {
		return 0
	}
	if d < g.browser.Profile.TimerClampMin {
		d = g.browser.Profile.TimerClampMin
	}
	t := g.newTimer(d)
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		g.thread.PostTask(at, fmt.Sprintf("interval#%d", t.id), func(gg *Global) {
			if t.cancelled {
				return
			}
			cb(gg)
			gg.drainMicrotasks()
			if !t.cancelled {
				schedule(gg.thread.Now() + d)
			}
		})
	}
	schedule(g.thread.Now() + d)
	return t.id
}

func (g *Global) nativeClearTimer(id int) {
	if t, ok := g.timers[id]; ok {
		t.cancelled = true
		delete(g.timers, id)
	}
}

func (g *Global) nativePerformanceNow() float64 {
	now := g.thread.Now()
	gran := g.browser.Profile.PerfNowGranularity
	if gran > 0 {
		now = now / gran * gran
	}
	return now.Milliseconds()
}

func (g *Global) nativeDateNow() int64 {
	return int64(g.thread.Now() / sim.Millisecond)
}

func (g *Global) nativeRequestAnimationFrame(cb func(*Global, float64)) int {
	if cb == nil {
		return 0
	}
	t := g.newTimer(0)
	period := g.browser.Profile.FramePeriod
	now := g.thread.Now()
	next := (now/period + 1) * period
	g.thread.PostTask(next, fmt.Sprintf("raf#%d", t.id), func(gg *Global) {
		if t.cancelled {
			return
		}
		delete(g.timers, t.id)
		cb(gg, gg.bindings.PerformanceNow())
		gg.drainMicrotasks()
	})
	return t.id
}

func (g *Global) drainMicrotasks() {
	for len(g.microtasks) > 0 {
		mt := g.microtasks[0]
		g.microtasks = g.microtasks[1:]
		mt(g)
	}
}
