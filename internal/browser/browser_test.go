package browser

import (
	"testing"

	"jskernel/internal/dom"
	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

// newTestBrowser builds a Chrome-profile browser on a fresh simulator with
// a jitter-free network for exact-time assertions.
func newTestBrowser(t *testing.T) *Browser {
	t.Helper()
	s := sim.New(1)
	s.MaxSteps = 5_000_000
	cfg := webnet.DefaultConfig()
	cfg.JitterFrac = 0
	net := webnet.New(cfg, s.Rand())
	b := New(s, Options{Net: net})
	b.Origin = "https://site.example"
	return b
}

func run(t *testing.T, b *Browser) {
	t.Helper()
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunScriptExecutes(t *testing.T) {
	b := newTestBrowser(t)
	ran := false
	b.RunScript("main", func(g *Global) { ran = true })
	run(t, b)
	if !ran {
		t.Fatal("script did not run")
	}
}

func TestSetTimeoutFiresAfterDelay(t *testing.T) {
	b := newTestBrowser(t)
	var at sim.Time
	b.RunScript("main", func(g *Global) {
		g.SetTimeout(func(gg *Global) { at = gg.Thread().Now() }, 5*sim.Millisecond)
	})
	run(t, b)
	if at < 5*sim.Millisecond {
		t.Fatalf("timeout fired at %v, want >= 5ms", at)
	}
	if at > 6*sim.Millisecond {
		t.Fatalf("timeout fired at %v, want ~5ms", at)
	}
}

func TestSetTimeoutClamp(t *testing.T) {
	b := newTestBrowser(t)
	var at sim.Time
	b.RunScript("main", func(g *Global) {
		g.SetTimeout(func(gg *Global) { at = gg.Thread().Now() }, 0)
	})
	run(t, b)
	if at < b.Profile.TimerClampMin {
		t.Fatalf("timeout fired at %v, want clamped to >= %v", at, b.Profile.TimerClampMin)
	}
}

func TestClearTimeout(t *testing.T) {
	b := newTestBrowser(t)
	fired := false
	b.RunScript("main", func(g *Global) {
		id := g.SetTimeout(func(*Global) { fired = true }, 2*sim.Millisecond)
		g.ClearTimeout(id)
	})
	run(t, b)
	if fired {
		t.Fatal("cleared timeout fired")
	}
}

func TestSetIntervalRepeatsUntilCleared(t *testing.T) {
	b := newTestBrowser(t)
	count := 0
	b.RunScript("main", func(g *Global) {
		var id int
		id = g.SetInterval(func(gg *Global) {
			count++
			if count == 4 {
				gg.ClearInterval(id)
			}
		}, 2*sim.Millisecond)
	})
	run(t, b)
	if count != 4 {
		t.Fatalf("interval fired %d times, want 4", count)
	}
}

func TestTasksRunSerially(t *testing.T) {
	b := newTestBrowser(t)
	var order []int
	b.RunScript("a", func(g *Global) {
		order = append(order, 1)
		g.Busy(10 * sim.Millisecond) // long synchronous work
	})
	b.RunScript("b", func(g *Global) {
		order = append(order, 2)
		if g.Thread().Now() < 10*sim.Millisecond {
			t.Errorf("task b started at %v, before a finished", g.Thread().Now())
		}
	})
	run(t, b)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestBusyAdvancesCursorWithinTask(t *testing.T) {
	b := newTestBrowser(t)
	var before, after float64
	b.RunScript("main", func(g *Global) {
		before = g.PerformanceNow()
		g.Busy(3 * sim.Millisecond)
		after = g.PerformanceNow()
	})
	run(t, b)
	if after-before < 2.9 {
		t.Fatalf("Busy advanced clock by %v ms, want ~3", after-before)
	}
}

func TestPerformanceNowGranularity(t *testing.T) {
	b := newTestBrowser(t) // chrome: 5µs granularity
	var reads []float64
	b.RunScript("main", func(g *Global) {
		for i := 0; i < 10; i++ {
			reads = append(reads, g.PerformanceNow())
			g.Busy(2 * sim.Microsecond)
		}
	})
	run(t, b)
	granMs := b.Profile.PerfNowGranularity.Milliseconds()
	for _, v := range reads {
		steps := v / granMs
		if steps != float64(int64(steps)) {
			t.Fatalf("PerformanceNow %v is not a multiple of granularity %v", v, granMs)
		}
	}
}

func TestDateNowMilliseconds(t *testing.T) {
	b := newTestBrowser(t)
	var d int64
	b.RunScript("main", func(g *Global) {
		g.Busy(1500 * sim.Microsecond)
		d = g.DateNow()
	})
	run(t, b)
	if d != 1 {
		t.Fatalf("DateNow = %d, want 1 (ms floor)", d)
	}
}

func TestRequestAnimationFrameAlignsToFrames(t *testing.T) {
	b := newTestBrowser(t)
	var ts sim.Time
	b.RunScript("main", func(g *Global) {
		g.RequestAnimationFrame(func(gg *Global, _ float64) { ts = gg.Thread().Now() })
	})
	run(t, b)
	period := b.Profile.FramePeriod
	if ts < period || ts > period+sim.Millisecond {
		t.Fatalf("rAF fired at %v, want around frame boundary %v", ts, period)
	}
}

func TestCancelAnimationFrame(t *testing.T) {
	b := newTestBrowser(t)
	fired := false
	b.RunScript("main", func(g *Global) {
		id := g.RequestAnimationFrame(func(*Global, float64) { fired = true })
		g.CancelAnimationFrame(id)
	})
	run(t, b)
	if fired {
		t.Fatal("cancelled rAF fired")
	}
}

func TestMicrotasksRunBeforeNextTask(t *testing.T) {
	b := newTestBrowser(t)
	var order []string
	b.RunScript("main", func(g *Global) {
		g.SetTimeout(func(*Global) { order = append(order, "task") }, sim.Millisecond)
		g.QueueMicrotask(func(*Global) { order = append(order, "micro") })
		order = append(order, "sync")
	})
	run(t, b)
	want := []string{"sync", "micro", "task"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWorkerRoundTrip(t *testing.T) {
	b := newTestBrowser(t)
	b.RegisterWorkerScript("echo.js", func(g *Global) {
		g.SetOnMessage(func(gg *Global, m MessageEvent) {
			gg.PostMessage(m.Data)
		})
	})
	var got any
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("echo.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(*Global, MessageEvent) {})
		w.SetOnMessage(func(gg *Global, m MessageEvent) { got = m.Data })
		w.PostMessage("ping")
	})
	run(t, b)
	if got != "ping" {
		t.Fatalf("round trip got %v", got)
	}
}

func TestWorkerMessagesBeforeHandlerAreQueued(t *testing.T) {
	b := newTestBrowser(t)
	var received []any
	b.RegisterWorkerScript("late.js", func(g *Global) {
		// Install the handler only after a delay; earlier messages must
		// still be delivered (inbox semantics).
		g.SetTimeout(func(gg *Global) {
			gg.SetOnMessage(func(_ *Global, m MessageEvent) {
				received = append(received, m.Data)
			})
		}, 10*sim.Millisecond)
	})
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("late.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.PostMessage(1)
		w.PostMessage(2)
	})
	run(t, b)
	if len(received) != 2 {
		t.Fatalf("received %v, want both queued messages", received)
	}
}

func TestWorkerTerminateStopsDelivery(t *testing.T) {
	b := newTestBrowser(t)
	delivered := 0
	b.RegisterWorkerScript("w.js", func(g *Global) {
		g.SetOnMessage(func(*Global, MessageEvent) { delivered++ })
	})
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		g.SetTimeout(func(*Global) {
			w.Terminate()
			w.PostMessage("dropped")
		}, 20*sim.Millisecond)
	})
	run(t, b)
	if delivered != 0 {
		t.Fatalf("delivered %d messages, want 0 (post-terminate drops)", delivered)
	}
}

func TestWorkerParallelism(t *testing.T) {
	// A worker's Busy work must overlap the main thread's Busy work in
	// virtual time: total elapsed ≈ max, not sum.
	b := newTestBrowser(t)
	b.RegisterWorkerScript("crunch.js", func(g *Global) {
		g.Busy(100 * sim.Millisecond)
		g.PostMessage("done")
	})
	var doneAt sim.Time
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("crunch.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(gg *Global, _ MessageEvent) { doneAt = gg.Thread().Now() })
		g.Busy(100 * sim.Millisecond) // main works concurrently
	})
	run(t, b)
	if doneAt == 0 {
		t.Fatal("worker result never arrived")
	}
	if doneAt > 150*sim.Millisecond {
		t.Fatalf("worker done at %v; threads did not run in parallel", doneAt)
	}
}

func TestCrossOriginWorkerCreationLeakyError(t *testing.T) {
	b := newTestBrowser(t)
	var errMsg string
	b.RunScript("main", func(g *Global) {
		_, err := g.NewWorker("https://evil.example/w.js")
		if err != nil {
			errMsg = err.Error()
		}
	})
	run(t, b)
	if errMsg == "" {
		t.Fatal("cross-origin worker creation should fail")
	}
	// The vulnerable native error leaks the URL (CVE-2014-1487 model).
	if want := "https://evil.example/w.js"; !contains(errMsg, want) {
		t.Fatalf("error %q does not leak URL", errMsg)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFetchCompletesWithLatency(t *testing.T) {
	b := newTestBrowser(t)
	b.Net.RegisterScript("https://site.example/data.js", 100_000)
	var resp *Response
	var doneAt sim.Time
	b.RunScript("main", func(g *Global) {
		g.Fetch("https://site.example/data.js", FetchOptions{}, func(r *Response, err error) {
			if err != nil {
				t.Errorf("fetch: %v", err)
				return
			}
			resp = r
			doneAt = g.Thread().Now()
		})
	})
	run(t, b)
	if resp == nil {
		t.Fatal("fetch never completed")
	}
	if resp.Opaque || resp.Bytes != 100_000 {
		t.Fatalf("resp = %+v", resp)
	}
	if doneAt < 30*sim.Millisecond {
		t.Fatalf("fetch completed at %v, faster than RTT", doneAt)
	}
}

func TestFetchCrossOriginOpaque(t *testing.T) {
	b := newTestBrowser(t)
	b.Net.RegisterScript("https://other.example/s.js", 5000)
	var resp *Response
	b.RunScript("main", func(g *Global) {
		g.Fetch("https://other.example/s.js", FetchOptions{}, func(r *Response, err error) {
			resp = r
		})
	})
	run(t, b)
	if resp == nil || !resp.Opaque || resp.Bytes != 0 {
		t.Fatalf("resp = %+v, want opaque with hidden size", resp)
	}
}

func TestFetchAbort(t *testing.T) {
	b := newTestBrowser(t)
	b.Net.RegisterScript("https://site.example/slow.js", 10_000_000)
	var gotErr error
	completed := false
	b.RunScript("main", func(g *Global) {
		ctl := g.NewAbortController()
		g.Fetch("https://site.example/slow.js", FetchOptions{Signal: ctl.Signal()}, func(r *Response, err error) {
			if err != nil {
				gotErr = err
				return
			}
			completed = true
		})
		g.SetTimeout(func(*Global) { ctl.Abort() }, 5*sim.Millisecond)
	})
	run(t, b)
	if completed {
		t.Fatal("aborted fetch completed")
	}
	if gotErr != ErrAborted {
		t.Fatalf("err = %v, want ErrAborted", gotErr)
	}
}

func TestFetchUnknownURLFails(t *testing.T) {
	b := newTestBrowser(t)
	var gotErr error
	b.RunScript("main", func(g *Global) {
		g.Fetch("https://site.example/missing.js", FetchOptions{}, func(_ *Response, err error) {
			gotErr = err
		})
	})
	run(t, b)
	if gotErr == nil {
		t.Fatal("fetch of unknown URL should fail")
	}
}

func TestXHROriginEnforcementMainVsWorker(t *testing.T) {
	b := newTestBrowser(t)
	b.Net.RegisterJSON("https://other.example/secret.json", `{"secret":42}`)
	var mainErr error
	var workerBody string
	b.RegisterWorkerScript("xhr.js", func(g *Global) {
		body, err := g.XHR("https://other.example/secret.json")
		if err != nil {
			t.Errorf("worker XHR (vulnerable path) failed: %v", err)
			return
		}
		workerBody = body
	})
	b.RunScript("main", func(g *Global) {
		_, mainErr = g.XHR("https://other.example/secret.json")
		if _, err := g.NewWorker("xhr.js"); err != nil {
			t.Errorf("new worker: %v", err)
		}
	})
	run(t, b)
	if mainErr == nil {
		t.Fatal("main-thread cross-origin XHR should be blocked")
	}
	if workerBody != `{"secret":42}` {
		t.Fatalf("worker XHR body = %q; vulnerable native layer should leak it", workerBody)
	}
}

func TestImportScriptsLeakyError(t *testing.T) {
	b := newTestBrowser(t)
	var leak string
	b.RegisterWorkerScript("imp.js", func(g *Global) {
		if err := g.ImportScripts("https://other.example/lib.js"); err != nil {
			leak = err.Error()
		}
	})
	b.RunScript("main", func(g *Global) {
		if _, err := g.NewWorker("imp.js"); err != nil {
			t.Errorf("new worker: %v", err)
		}
	})
	run(t, b)
	if !contains(leak, "https://other.example/lib.js") {
		t.Fatalf("importScripts error %q should leak cross-origin URL", leak)
	}
}

func TestLoadScriptParseCostScalesWithSize(t *testing.T) {
	elapsedFor := func(bytes int64) sim.Time {
		b := newTestBrowser(t)
		url := "https://cdn.example/f.js"
		b.Net.RegisterScript(url, bytes)
		var done sim.Time
		b.RunScript("main", func(g *Global) {
			g.LoadScript(url, func(gg *Global) { done = gg.Thread().Now() }, nil)
		})
		run(t, b)
		return done
	}
	small, large := elapsedFor(100_000), elapsedFor(8_000_000)
	if large <= small {
		t.Fatalf("parse+fetch of 8MB (%v) not slower than 100KB (%v)", large, small)
	}
}

func TestLoadImageDecodeCostScalesWithPixels(t *testing.T) {
	measure := func(w, h int) sim.Time {
		b := newTestBrowser(t)
		url := "https://cdn.example/i.png"
		b.Net.RegisterImage(url, w, h)
		var el *dom.Element
		b.RunScript("main", func(g *Global) {
			g.LoadImage(url, func(gg *Global, loaded *dom.Element) { el = loaded }, nil)
		})
		run(t, b)
		if el == nil {
			t.Fatal("image element not created")
		}
		return b.Sim.Now()
	}
	small, large := measure(100, 100), measure(2000, 2000)
	if large <= small {
		t.Fatalf("decode of 4MPx (%v) not slower than 10KPx (%v)", large, small)
	}
}

func TestSVGFilterCostScalesWithResolution(t *testing.T) {
	measure := func(w, h int) sim.Time {
		b := newTestBrowser(t)
		var elapsed sim.Time
		b.RunScript("main", func(g *Global) {
			el := g.Document().CreateElement("img")
			el.SetAttribute("width", itoa(w))
			el.SetAttribute("height", itoa(h))
			start := g.Thread().Now()
			g.ApplySVGFilter(el, "erode")
			elapsed = g.Thread().Now() - start
		})
		run(t, b)
		return elapsed
	}
	low, high := measure(200, 200), measure(1000, 1000)
	if high <= low {
		t.Fatalf("high-res filter (%v) not slower than low-res (%v)", high, low)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestRenderLinkVisitedCost(t *testing.T) {
	measure := func(visited bool) sim.Time {
		b := newTestBrowser(t)
		if visited {
			b.MarkVisited("https://bank.example/")
		}
		var elapsed sim.Time
		b.RunScript("main", func(g *Global) {
			start := g.Thread().Now()
			for i := 0; i < 100; i++ {
				g.RenderLink("https://bank.example/")
			}
			elapsed = g.Thread().Now() - start
		})
		run(t, b)
		return elapsed
	}
	unvisited, visited := measure(false), measure(true)
	if visited <= unvisited {
		t.Fatalf("visited repaint (%v) not slower than unvisited (%v)", visited, unvisited)
	}
}

func TestRenderLinkColor(t *testing.T) {
	b := newTestBrowser(t)
	b.MarkVisited("https://a.example/")
	var vc, uc string
	b.RunScript("main", func(g *Global) {
		vc = g.RenderLink("https://a.example/").Style("color")
		uc = g.RenderLink("https://b.example/").Style("color")
	})
	run(t, b)
	if vc != "purple" || uc != "blue" {
		t.Fatalf("colors = %q, %q", vc, uc)
	}
}

func TestFloatOpsSubnormalSlower(t *testing.T) {
	measure := func(sub bool) sim.Time {
		b := newTestBrowser(t)
		var elapsed sim.Time
		b.RunScript("main", func(g *Global) {
			start := g.Thread().Now()
			g.FloatOps(1_000_000, sub)
			elapsed = g.Thread().Now() - start
		})
		run(t, b)
		return elapsed
	}
	if measure(true) <= measure(false) {
		t.Fatal("subnormal float ops not slower than normal")
	}
}

func TestCSSAnimationTicksAtFramePeriod(t *testing.T) {
	b := newTestBrowser(t)
	var ticks []sim.Time
	b.RunScript("main", func(g *Global) {
		id := g.StartCSSAnimation(nil, func(gg *Global, frame int) {
			ticks = append(ticks, gg.Thread().Now())
		})
		g.SetTimeout(func(gg *Global) { gg.StopCSSAnimation(id) }, 100*sim.Millisecond)
	})
	run(t, b)
	if len(ticks) < 4 || len(ticks) > 8 {
		t.Fatalf("got %d animation ticks in 100ms, want ~6", len(ticks))
	}
}

func TestPlayVideoCues(t *testing.T) {
	b := newTestBrowser(t)
	cues := 0
	b.RunScript("main", func(g *Global) {
		stop := g.PlayVideo(func(*Global, int) { cues++ })
		g.SetTimeout(func(*Global) { stop() }, 550*sim.Millisecond)
	})
	run(t, b)
	if cues < 4 || cues > 6 {
		t.Fatalf("got %d cues in 550ms at 100ms period, want ~5", cues)
	}
}

func TestSharedBufferReadWrite(t *testing.T) {
	b := newTestBrowser(t)
	var got int64
	b.RunScript("main", func(g *Global) {
		buf := g.NewSharedBuffer(4)
		if err := g.SharedBufferWrite(buf, 2, 99); err != nil {
			t.Errorf("write: %v", err)
		}
		v, err := g.SharedBufferRead(buf, 2)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got = v
		if _, err := g.SharedBufferRead(buf, 9); err == nil {
			t.Error("out-of-range read should fail")
		}
	})
	run(t, b)
	if got != 99 {
		t.Fatalf("read %d, want 99", got)
	}
}

func TestTransferableUseAfterFree(t *testing.T) {
	b := newTestBrowser(t)
	var uafErr error
	var handle Worker
	b.RegisterWorkerScript("transfer.js", func(g *Global) {
		buf := g.NewSharedBuffer(8)
		if err := g.TransferToParent("here", buf); err != nil {
			t.Errorf("transfer: %v", err)
		}
	})
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("transfer.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		handle = w
		w.SetOnMessage(func(gg *Global, m MessageEvent) {
			buf := m.Transfer
			// Terminate the original owner, then touch the buffer.
			handle.Terminate()
			_, uafErr = gg.SharedBufferRead(buf, 0)
		})
	})
	run(t, b)
	if uafErr == nil {
		t.Fatal("use of buffer after owner termination should fail (freed)")
	}
}

func TestIndexedDBPersistsInPrivateMode(t *testing.T) {
	s := sim.New(1)
	b := New(s, Options{PrivateMode: true})
	b.Origin = "https://site.example"
	b.RunScript("main", func(g *Global) {
		store, err := g.IndexedDBOpen("fp-store")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := store.Put("id", "fingerprint"); err != nil {
			t.Errorf("put: %v", err)
		}
	})
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Vulnerable native behaviour: the private-mode write persisted.
	stores := b.PersistedStores()
	if len(stores) != 1 || stores[0] != "fp-store" {
		t.Fatalf("persisted = %v, want the private-mode store (vulnerable native layer)", stores)
	}
}

func TestRedefineAndFreeze(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		orig := g.Bindings().PerformanceNow
		err := g.Redefine(func(bn *Bindings) {
			bn.PerformanceNow = func() float64 { return 0 }
		})
		if err != nil {
			t.Errorf("redefine before freeze: %v", err)
		}
		if g.PerformanceNow() != 0 {
			t.Error("redefinition not effective")
		}
		g.Bindings().PerformanceNow = orig
		g.Freeze()
		if err := g.Redefine(func(bn *Bindings) { bn.PerformanceNow = nil }); err == nil {
			t.Error("redefine after freeze should fail")
		}
		if !g.Frozen() {
			t.Error("Frozen() = false after Freeze")
		}
	})
	run(t, b)
}

type recordingTracer struct {
	events []TraceEvent
}

func (r *recordingTracer) Trace(ev TraceEvent) { r.events = append(r.events, ev) }

func (r *recordingTracer) kinds() map[TraceKind]int {
	m := make(map[TraceKind]int)
	for _, ev := range r.events {
		m[ev.Kind]++
	}
	return m
}

func TestTraceEventsEmitted(t *testing.T) {
	b := newTestBrowser(t)
	tr := &recordingTracer{}
	b.AddTracer(tr)
	b.RegisterWorkerScript("w.js", func(g *Global) {
		g.SetOnMessage(func(gg *Global, m MessageEvent) { gg.PostMessage("pong") })
	})
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(*Global, MessageEvent) {})
		w.PostMessage("ping")
		g.SetTimeout(func(*Global) { w.Terminate() }, 50*sim.Millisecond)
	})
	run(t, b)
	k := tr.kinds()
	for _, want := range []TraceKind{
		TraceWorkerCreated, TraceWorkerReady, TracePostMessage,
		TraceMessageDelivered, TraceOnMessageSet, TraceWorkerTerminated,
	} {
		if k[want] == 0 {
			t.Errorf("no %v event traced; kinds = %v", want, k)
		}
	}
}

func TestOrphanedFetchAbortTraced(t *testing.T) {
	// The full CVE-2018-5092 native sequence: worker fetch pending, worker
	// terminated, abort fired → FetchAbort with detail "orphaned".
	b := newTestBrowser(t)
	tr := &recordingTracer{}
	b.AddTracer(tr)
	b.Net.RegisterScript("https://site.example/file0.html", 5_000_000)
	var ctl *AbortController
	b.RegisterWorkerScript("fetcher.js", func(g *Global) {
		ctl = g.NewAbortController()
		g.Fetch("https://site.example/file0.html", FetchOptions{Signal: ctl.Signal()}, func(*Response, error) {})
		g.PostMessage("fetch-started")
	})
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("fetcher.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(gg *Global, _ MessageEvent) {
			w.Terminate() // false termination while fetch pending
			ctl.Abort()   // abort into freed state
		})
	})
	run(t, b)
	found := false
	for _, ev := range tr.events {
		if ev.Kind == TraceFetchAbort && ev.Detail == "orphaned" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no orphaned-abort trace; events: %+v", tr.kinds())
	}
}

func TestThreadsListedAndTerminatedExcluded(t *testing.T) {
	b := newTestBrowser(t)
	b.RegisterWorkerScript("w.js", func(g *Global) {})
	b.RunScript("main", func(g *Global) {
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		if len(b.Threads()) != 2 {
			t.Errorf("threads = %d, want 2", len(b.Threads()))
		}
		w.Terminate()
		if len(b.Threads()) != 1 {
			t.Errorf("threads after terminate = %d, want 1", len(b.Threads()))
		}
	})
	run(t, b)
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"chrome", "firefox", "edge"} {
		if got := ProfileByName(name).Name; got != name {
			t.Errorf("ProfileByName(%q).Name = %q", name, got)
		}
	}
	if ProfileByName("netscape").Name != "chrome" {
		t.Error("unknown profile should default to chrome")
	}
}

func TestWorkerScopeCannotTouchDocument(t *testing.T) {
	b := newTestBrowser(t)
	var isNil bool
	b.RegisterWorkerScript("w.js", func(g *Global) { isNil = g.Document() == nil })
	b.RunScript("main", func(g *Global) {
		if _, err := g.NewWorker("w.js"); err != nil {
			t.Errorf("new worker: %v", err)
		}
	})
	run(t, b)
	if !isNil {
		t.Fatal("worker scope should have no document")
	}
}

func TestUnknownWorkerScriptErrors(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		if _, err := g.NewWorker("missing.js"); err == nil {
			t.Error("unknown worker script should error")
		}
	})
	run(t, b)
}
