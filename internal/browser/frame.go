package browser

import (
	"fmt"

	"jskernel/internal/dom"
	"jskernel/internal/webnet"
)

// This file implements iframes: additional browsing contexts that share
// the main thread but have their own global scope, document, and origin.
// The paper's kernel "injects the JSKernel kernel into every new
// JavaScript context, such as a newly-opened window and an iframe" (§VI);
// frames created here go through the browser's scope installer, so a
// kernelized browser kernelizes frames automatically.

// Frame is the user-space handle to an embedded browsing context — the
// analogue of an <iframe> element's contentWindow. The native
// implementation is *FrameHandle; a kernel substitutes a stub through the
// CreateFrame binding.
type Frame interface {
	// ID returns the frame's unique id.
	ID() int
	// Origin returns the frame document's origin.
	Origin() string
	// Attached reports whether the frame is still in the document.
	Attached() bool
	// Scope returns the frame's global scope (for loading its content).
	Scope() *Global
	// PostMessage delivers data to the frame's onmessage handler if
	// targetOrigin matches the frame's origin ("*" matches anything) —
	// window.postMessage semantics.
	PostMessage(data any, targetOrigin string)
	// RunScript schedules script execution inside the frame's scope.
	RunScript(name string, script Script)
	// Remove detaches the frame, tearing its context down.
	Remove()
}

// frameState is the shared bookkeeping for one frame.
type frameState struct {
	id       int
	origin   string
	parent   *Global
	scope    *Global
	attached bool

	onMessage func(*Global, MessageEvent) // frame-scope handler
	inbox     []MessageEvent
}

// FrameHandle is the native frame implementation.
type FrameHandle struct {
	state *frameState
}

var _ Frame = (*FrameHandle)(nil)

// ID returns the frame's unique id.
func (f *FrameHandle) ID() int { return f.state.id }

// Origin returns the frame document's origin.
func (f *FrameHandle) Origin() string { return f.state.origin }

// Attached reports whether the frame is still in the document.
func (f *FrameHandle) Attached() bool { return f.state.attached }

// Scope returns the frame's global scope.
func (f *FrameHandle) Scope() *Global { return f.state.scope }

// PostMessage delivers data into the frame (window.postMessage).
func (f *FrameHandle) PostMessage(data any, targetOrigin string) {
	st := f.state
	b := st.parent.browser
	if !st.attached {
		return
	}
	if targetOrigin != "*" && targetOrigin != st.origin {
		// Real browsers drop mis-targeted messages silently.
		return
	}
	b.trace(TraceEvent{Kind: TracePostMessage, ThreadID: st.parent.thread.id, Detail: "to-frame", Value: int64(st.id)})
	deliverAt := st.parent.thread.Now() + b.Profile.MessageLatency
	st.parent.thread.PostTask(deliverAt, "frame-onmessage", func(*Global) {
		if !st.attached {
			return
		}
		b.trace(TraceEvent{Kind: TraceMessageDelivered, ThreadID: st.parent.thread.id, Detail: "to-frame", Value: int64(st.id)})
		st.deliver(MessageEvent{Data: data, Origin: b.Origin})
	})
}

// RunScript schedules script execution inside the frame.
func (f *FrameHandle) RunScript(name string, script Script) {
	st := f.state
	if !st.attached || script == nil {
		return
	}
	scope := st.scope
	st.parent.thread.PostTask(st.parent.thread.Now(), "frame:"+name, func(*Global) {
		if st.attached {
			script(scope)
		}
	})
}

// Remove detaches the frame.
func (f *FrameHandle) Remove() {
	st := f.state
	if !st.attached {
		return
	}
	st.attached = false
	st.parent.browser.trace(TraceEvent{
		Kind: TraceDocumentTeardown, ThreadID: st.parent.thread.id,
		Detail: "frame", Value: int64(st.id),
	})
}

// deliver hands a message to the frame's handler or parks it.
func (st *frameState) deliver(m MessageEvent) {
	if st.onMessage == nil {
		st.inbox = append(st.inbox, m)
		return
	}
	st.onMessage(st.scope, m)
}

// CreateFrame embeds a new browsing context with the given origin. Only
// window scopes (main thread, non-frame) can create frames.
func (g *Global) CreateFrame(origin string) (Frame, error) {
	return g.bindings.CreateFrame(origin)
}

// nativeCreateFrame builds the frame scope and applies the browser's
// scope installer, mirroring document insertion of an <iframe>.
func (g *Global) nativeCreateFrame(origin string) (Frame, error) {
	b := g.browser
	if g.IsWorkerScope() {
		return nil, fmt.Errorf("browser: workers cannot create frames")
	}
	if origin == "" {
		origin = b.Origin
	}
	if webnet.OriginOf(origin+"/") == "" {
		return nil, fmt.Errorf("browser: invalid frame origin %q", origin)
	}
	b.nextFrame++
	st := &frameState{
		id:       b.nextFrame,
		origin:   origin,
		parent:   g,
		attached: true,
	}
	scope := &Global{
		browser:  b,
		thread:   g.thread,
		document: dom.NewDocument(),
		frame:    st,
	}
	b.nextScopeToken++
	scope.token = b.nextScopeToken
	scope.bindings = nativeBindings(scope)
	st.scope = scope
	if b.installScope != nil {
		b.installScope(scope)
	}
	// The parent document records the embedding.
	if doc := g.Document(); doc != nil {
		el := doc.CreateElement("iframe")
		el.SetAttribute("src", origin+"/")
		_ = doc.Body().AppendChild(el)
	}
	g.thread.advance(b.Profile.FrameCreateCost)
	return &FrameHandle{state: st}, nil
}

// IsFrameScope reports whether this global is an embedded frame's scope.
func (g *Global) IsFrameScope() bool { return g.frame != nil }

// FrameOrigin returns the frame's origin for frame scopes, "" otherwise.
func (g *Global) FrameOrigin() string {
	if g.frame == nil {
		return ""
	}
	return g.frame.origin
}

// frameSetOnMessage installs the frame scope's message handler and drains
// parked messages.
func (st *frameState) setOnMessage(cb func(*Global, MessageEvent)) {
	st.onMessage = cb
	if cb == nil || len(st.inbox) == 0 {
		return
	}
	queued := st.inbox
	st.inbox = nil
	parent := st.parent
	for _, m := range queued {
		m := m
		parent.thread.PostTask(parent.thread.Now(), "frame-inbox-drain", func(*Global) {
			if st.attached {
				cb(st.scope, m)
			}
		})
	}
}

// framePostToParent implements postMessage from a frame scope to its
// embedding window: the parent's onmessage fires with the frame's origin.
func (g *Global) framePostToParent(data any) {
	st := g.frame
	b := g.browser
	if st == nil || !st.attached {
		return
	}
	b.trace(TraceEvent{Kind: TracePostMessage, ThreadID: g.thread.id, Detail: "to-parent-window", Value: int64(st.id)})
	deliverAt := g.thread.Now() + b.Profile.MessageLatency
	st.parent.thread.PostTask(deliverAt, "parent-window-onmessage", func(*Global) {
		b.trace(TraceEvent{Kind: TraceMessageDelivered, ThreadID: st.parent.thread.id, Detail: "from-frame", Value: int64(st.id)})
		st.parent.thread.deliverMessage(MessageEvent{Data: data, Origin: st.origin})
	})
}
