package browser

import (
	"sort"

	"jskernel/internal/sim"
)

// task is one unit of work queued on a thread's event loop.
type task struct {
	arrival sim.Time
	seq     uint64
	name    string
	fn      func(g *Global)
}

// Thread is one browser thread — the main thread or a web worker — with a
// serial event loop multiplexed onto the simulator. A thread executes one
// task at a time; while a task runs, the thread's virtual cursor advances
// with each costed operation, and queued tasks wait until the cursor's
// final position (the task's completion time).
type Thread struct {
	b      *Browser
	id     int
	name   string
	isMain bool

	pending   []*task
	seq       uint64
	running   bool
	busyUntil sim.Time
	cursor    sim.Time
	wakeup    sim.EventID
	hasWakeup bool

	global     *Global
	terminated bool

	// onMessage is the native message handler slot. Defenses trap the
	// setter; this field holds whatever the effective handler is.
	onMessage func(g *Global, m MessageEvent)
	// onError is the native error handler slot (worker onerror).
	onError func(g *Global, err *WorkerError)
	// inbox holds messages delivered before a handler was installed.
	inbox []MessageEvent

	// tasksExecuted counts dispatched tasks (loopscan instrumentation).
	tasksExecuted int
}

// ID returns the thread's unique id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// IsMain reports whether this is the browser's main thread.
func (t *Thread) IsMain() bool { return t.isMain }

// Terminated reports whether the thread has been terminated.
func (t *Thread) Terminated() bool { return t.terminated }

// Global returns the thread's global object (its JS scope).
func (t *Thread) Global() *Global { return t.global }

// TasksExecuted reports how many tasks the loop has dispatched.
func (t *Thread) TasksExecuted() int { return t.tasksExecuted }

// Now returns the thread's current virtual time: the in-task cursor while
// executing, otherwise the later of simulator time and the loop's busy
// horizon.
func (t *Thread) Now() sim.Time {
	if t.running {
		return t.cursor
	}
	if t.busyUntil > t.b.Sim.Now() {
		return t.busyUntil
	}
	return t.b.Sim.Now()
}

// PostTask enqueues fn to run on this thread no earlier than `at`. Tasks
// run in (arrival, insertion) order, one at a time.
func (t *Thread) PostTask(at sim.Time, name string, fn func(g *Global)) {
	if t.terminated || fn == nil {
		return
	}
	t.seq++
	tk := &task{arrival: at, seq: t.seq, name: name, fn: fn}
	// Insert keeping (arrival, seq) order.
	i := sort.Search(len(t.pending), func(i int) bool {
		p := t.pending[i]
		if p.arrival != tk.arrival {
			return p.arrival > tk.arrival
		}
		return p.seq > tk.seq
	})
	t.pending = append(t.pending, nil)
	copy(t.pending[i+1:], t.pending[i:])
	t.pending[i] = tk
	t.pump()
}

// QueueDepth reports the number of tasks waiting to run.
func (t *Thread) QueueDepth() int { return len(t.pending) }

// pump (re)schedules the loop's next dispatch. Called whenever the queue or
// busy state changes.
func (t *Thread) pump() {
	if t.running || t.terminated || len(t.pending) == 0 {
		return
	}
	head := t.pending[0]
	startAt := head.arrival
	if t.busyUntil > startAt {
		startAt = t.busyUntil
	}
	if now := t.b.Sim.Now(); now > startAt {
		startAt = now
	}
	if t.hasWakeup {
		t.b.Sim.Cancel(t.wakeup)
	}
	t.wakeup = t.b.Sim.Schedule(startAt, "loop:"+t.name, t.dispatchOne)
	t.hasWakeup = true
}

// dispatchOne pops and runs the head task.
func (t *Thread) dispatchOne() {
	t.hasWakeup = false
	if t.terminated || len(t.pending) == 0 {
		return
	}
	head := t.pending[0]
	t.pending = t.pending[1:]
	t.running = true
	t.cursor = t.b.Sim.Now()
	t.cursor += t.b.Profile.TaskDispatch
	t.tasksExecuted++
	head.fn(t.global)
	t.global.drainMicrotasks()
	t.running = false
	t.busyUntil = t.cursor
	t.pump()
}

// advance moves the in-task cursor forward by a cost. Calling it outside a
// task (e.g. from harness code) pushes the busy horizon instead, modeling
// synchronous work between events.
func (t *Thread) advance(d sim.Duration) {
	if d <= 0 {
		return
	}
	if t.running {
		t.cursor += d
		return
	}
	now := t.Now()
	t.busyUntil = now + d
	t.pump()
}

// terminate tears the thread down, dropping queued tasks.
func (t *Thread) terminate() {
	if t.terminated {
		return
	}
	t.terminated = true
	t.pending = nil
	if t.hasWakeup {
		t.b.Sim.Cancel(t.wakeup)
		t.hasWakeup = false
	}
}

// deliverMessage hands a message event to the thread's handler, or parks it
// in the inbox until one is installed.
func (t *Thread) deliverMessage(m MessageEvent) {
	if t.terminated {
		return
	}
	if t.onMessage == nil {
		t.inbox = append(t.inbox, m)
		return
	}
	h := t.onMessage
	h(t.global, m)
}

// setOnMessage installs the native message handler and drains the inbox.
func (t *Thread) setOnMessage(h func(g *Global, m MessageEvent)) {
	t.onMessage = h
	if h == nil || len(t.inbox) == 0 {
		return
	}
	queued := t.inbox
	t.inbox = nil
	for _, m := range queued {
		m := m
		t.PostTask(t.Now(), "inbox-drain", func(g *Global) { h(g, m) })
	}
}
