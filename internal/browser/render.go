package browser

import (
	"fmt"
	"strconv"

	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// This file implements the renderer-side operations whose execution time
// carries the secrets that the paper's timing attacks measure: script
// parsing (cost ∝ bytes), image decoding and SVG filtering (cost ∝ pixels),
// :visited link repaint, and subnormal floating-point arithmetic.

// LoadScript loads a URL as a <script> element: the resource is fetched
// (cross-origin allowed — classic script inclusion) and then parsed on the
// calling thread, costing parse time proportional to its size. onload or
// onerror fires afterwards, exactly the sequence the van Goethem script
// parsing attack times.
func (g *Global) nativeLoadScript(url string, onload func(*Global), onerror func(*Global)) {
	b := g.browser
	res, err := b.Net.Fetch(url, b.Origin)
	if err != nil {
		if onerror != nil {
			g.thread.PostTask(g.thread.Now()+b.Profile.MessageLatency, "script-onerror", onerror)
		}
		return
	}
	arriveAt := g.thread.Now() + res.Latency
	g.thread.PostTask(arriveAt, "script-parse", func(gg *Global) {
		// Parsing is synchronous main-thread work: the secret-bearing cost.
		gg.thread.advance(perKBCost(res.Resource.Bytes, b.Profile.ScriptParsePerKB))
		if onload != nil {
			onload(gg)
		}
	})
}

// LoadImage loads a URL as an <img>: fetch, then decode costing time
// proportional to the pixel count. onload receives the created element.
func (g *Global) nativeLoadImage(url string, onload func(*Global, *dom.Element), onerror func(*Global)) {
	b := g.browser
	res, err := b.Net.Fetch(url, b.Origin)
	if err != nil {
		if onerror != nil {
			g.thread.PostTask(g.thread.Now()+b.Profile.MessageLatency, "img-onerror", onerror)
		}
		return
	}
	arriveAt := g.thread.Now() + res.Latency
	g.thread.PostTask(arriveAt, "img-decode", func(gg *Global) {
		kpx := float64(res.Resource.Width) * float64(res.Resource.Height) / 1000
		gg.thread.advance(sim.Duration(kpx * float64(b.Profile.ImageDecodePerKPx)))
		var el *dom.Element
		if gg.document != nil {
			el = gg.document.CreateElement("img")
			el.SetAttribute("src", url)
			el.SetAttribute("width", strconv.Itoa(res.Resource.Width))
			el.SetAttribute("height", strconv.Itoa(res.Resource.Height))
		}
		if onload != nil {
			onload(gg, el)
		}
	})
}

// ApplySVGFilter runs an SVG filter (e.g. feMorphology erode) over an
// element synchronously. Its cost scales with the element's pixel area —
// the secret the SVG filtering attack extracts via an implicit clock.
func (g *Global) ApplySVGFilter(el *dom.Element, filter string) {
	b := g.browser
	w, h := elementPixels(el)
	kpx := float64(w) * float64(h) / 1000
	cost := b.Profile.SVGFilterBase + sim.Duration(kpx*float64(b.Profile.SVGFilterPerKPx))
	if el != nil {
		el.SetStyle("filter", filter)
	}
	g.thread.advance(cost)
}

// elementPixels reads an element's width/height attributes (defaulting to
// a small box).
func elementPixels(el *dom.Element) (w, h int) {
	w, h = 100, 100
	if el == nil {
		return w, h
	}
	if s, ok := el.Attribute("width"); ok {
		if v, err := strconv.Atoi(s); err == nil {
			w = v
		}
	}
	if s, ok := el.Attribute("height"); ok {
		if v, err := strconv.Atoi(s); err == nil {
			h = v
		}
	}
	return w, h
}

// RenderLink paints an <a href=url>: repaint cost differs for visited
// links, the classic history-sniffing channel.
func (g *Global) RenderLink(url string) *dom.Element {
	b := g.browser
	cost := b.Profile.LinkRepaintBase
	color := "blue"
	if b.Visited(url) {
		cost += b.Profile.VisitedRepaint
		color = "purple"
	}
	g.thread.advance(cost)
	if g.document == nil {
		return nil
	}
	a := g.document.CreateElement("a")
	a.SetAttribute("href", url)
	a.SetStyle("color", color)
	return a
}

// AppendChild attaches child to parent with the renderer's append cost
// plus incremental layout proportional to the subtree size.
func (g *Global) AppendChild(parent, child *dom.Element) error {
	b := g.browser
	if err := parent.AppendChild(child); err != nil {
		return err
	}
	n := 0
	child.Walk(func(*dom.Element) { n++ })
	g.thread.advance(b.Profile.DOMAppend + sim.Duration(n)*b.Profile.LayoutPerElement)
	return nil
}

// FloatOps performs n floating-point multiplications. Subnormal operands
// take the slow microcode path — the timing difference the floating-point
// pixel-stealing attack exploits.
func (g *Global) FloatOps(n int, subnormal bool) {
	if n <= 0 {
		return
	}
	per := g.browser.Profile.FloatOpNormal
	if subnormal {
		per = g.browser.Profile.FloatOpSubnormal
	}
	g.thread.advance(sim.Duration(n) * per)
}

// cssAnimation is one running CSS animation whose per-frame events form an
// implicit clock.
type cssAnimation struct {
	id        int
	cancelled bool
}

// StartCSSAnimation begins an animation on el; cb fires once per frame
// period with the frame index until StopCSSAnimation. This reproduces the
// "Fantastic Timers" CSS-animation implicit clock.
func (g *Global) nativeStartCSSAnimation(el *dom.Element, cb func(*Global, int)) int {
	if cb == nil {
		return 0
	}
	if g.cssAnims == nil {
		g.cssAnims = make(map[int]*cssAnimation)
	}
	g.nextAnimID++
	anim := &cssAnimation{id: g.nextAnimID}
	g.cssAnims[anim.id] = anim
	if el != nil {
		el.SetStyle("animation", fmt.Sprintf("anim-%d", anim.id))
	}
	period := g.browser.Profile.FramePeriod
	frame := 0
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		g.thread.PostTask(at, "css-anim", func(gg *Global) {
			if anim.cancelled {
				return
			}
			frame++
			cb(gg, frame)
			if !anim.cancelled {
				schedule(at + period)
			}
		})
	}
	now := g.thread.Now()
	schedule((now/period + 1) * period)
	return anim.id
}

// StopCSSAnimation cancels a running animation.
func (g *Global) nativeStopCSSAnimation(id int) {
	if anim, ok := g.cssAnims[id]; ok {
		anim.cancelled = true
		delete(g.cssAnims, id)
	}
}

// PlayVideo starts playback of a video track with WebVTT cues firing every
// cue period — the Video/WebVTT implicit clock. It returns a stop function.
func (g *Global) nativePlayVideo(cueCb func(*Global, int)) (stop func()) {
	if cueCb == nil {
		return func() {}
	}
	stopped := false
	period := g.browser.Profile.VideoCuePeriod
	cue := 0
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		g.thread.PostTask(at, "webvtt-cue", func(gg *Global) {
			if stopped {
				return
			}
			cue++
			cueCb(gg, cue)
			if !stopped {
				schedule(at + period)
			}
		})
	}
	schedule(g.thread.Now() + period)
	return func() { stopped = true }
}

// LoadScript loads a URL as a <script> element through the bindings table.
func (g *Global) LoadScript(url string, onload func(*Global), onerror func(*Global)) {
	if g.browser.obsEvents {
		onload = g.obsLoadCB(onload, url, "script")
		onerror = g.obsLoadCB(onerror, url, "script-error")
	}
	g.bindings.LoadScript(url, onload, onerror)
}

// LoadImage loads a URL as an <img> through the bindings table.
func (g *Global) LoadImage(url string, onload func(*Global, *dom.Element), onerror func(*Global)) {
	if g.browser.obsEvents {
		onload = g.obsImageCB(onload, url)
		onerror = g.obsLoadCB(onerror, url, "image-error")
	}
	g.bindings.LoadImage(url, onload, onerror)
}

// StartCSSAnimation begins a per-frame animation through the bindings table.
func (g *Global) StartCSSAnimation(el *dom.Element, cb func(*Global, int)) int {
	if g.browser.obsEvents {
		cb = g.obsFrameCB(cb, "animation")
	}
	return g.bindings.StartCSSAnimation(el, cb)
}

// StopCSSAnimation cancels a running animation through the bindings table.
func (g *Global) StopCSSAnimation(id int) { g.bindings.StopCSSAnimation(id) }

// PlayVideo starts WebVTT cue playback through the bindings table.
func (g *Global) PlayVideo(cueCb func(*Global, int)) (stop func()) {
	if g.browser.obsEvents {
		cueCb = g.obsFrameCB(cueCb, "cue")
	}
	return g.bindings.PlayVideo(cueCb)
}

// DOMSetAttribute writes an element attribute through the bindings table,
// costing the engine's attribute-access time. Dromaeo's DOM attribute
// test hammers this path, which is where the paper's kernel shows its
// worst-case overhead.
func (g *Global) DOMSetAttribute(el *dom.Element, name, value string) {
	g.bindings.DOMSetAttribute(el, name, value)
}

// DOMGetAttribute reads an element attribute through the bindings table.
func (g *Global) DOMGetAttribute(el *dom.Element, name string) (string, bool) {
	return g.bindings.DOMGetAttribute(el, name)
}

func (g *Global) nativeDOMSetAttribute(el *dom.Element, name, value string) {
	if el == nil {
		return
	}
	g.thread.advance(g.browser.Profile.DOMAttrAccess)
	g.browser.access(g.thread, "dom", int64(el.Seq()), AccessWrite)
	el.SetAttribute(name, value)
}

func (g *Global) nativeDOMGetAttribute(el *dom.Element, name string) (string, bool) {
	if el == nil {
		return "", false
	}
	g.thread.advance(g.browser.Profile.DOMAttrAccess)
	g.browser.access(g.thread, "dom", int64(el.Seq()), 0)
	return el.Attribute(name)
}
