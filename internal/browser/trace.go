package browser

import "jskernel/internal/sim"

// TraceKind identifies what happened at the browser's native layer. The
// vulnerability registry (internal/vuln) consumes these events to detect
// whether a CVE's triggering sequence was reached — post-interposition, so
// a kernel policy that rewrites or suppresses the native calls prevents the
// trigger from ever appearing in the trace.
type TraceKind int

// Trace kinds emitted by the native layer.
const (
	TraceWorkerCreated TraceKind = iota + 1
	TraceWorkerReady
	TraceWorkerTerminated
	TraceWorkerError
	TracePostMessage
	TraceOnMessageSet
	TraceMessageDelivered
	TraceFetchStart
	TraceFetchDone
	TraceFetchAbort
	TraceXHR
	TraceImportScripts
	TraceTransferable
	TraceIndexedDBOpen
	TraceIndexedDBPut
	TraceDocumentTeardown
	TraceNavigationError
	TraceSharedBufferOp
	TraceFetchRetry
	TraceFaultInjected
	// Observability kinds: emitted only when Options.ObsEvents is set.
	// They mark user-callback entries and clock readings — the raw
	// material the forensics layer (internal/obs) reconstructs
	// measurement harnesses from. Emission never advances simulated
	// time, so execution is identical with obs on or off.
	TraceTimerFired
	TraceClockRead
	TraceMessageCallback
	TraceFrameTick
	TraceLoadDone
	// TraceAccess marks one shared-target access for the happens-before
	// race analysis (internal/hb): Detail is the target class ("buffer",
	// "worker", "dom", ...), Value the target ID, Aux the accessKind
	// bits. Emitted whenever a tracer is attached; like obs kinds, the
	// emission never advances simulated time.
	TraceAccess
)

// Access-kind bits carried in a TraceAccess event's Aux field.
const (
	// AccessWrite marks the access as a write (unset = read).
	AccessWrite int64 = 1 << iota
	// AccessGuardian attributes the access to the target's hazard
	// guardian — a per-target pseudo-context modeling the freed/forbidden
	// state a defense must order against (use-after-free, use-after-
	// teardown, cross-origin exposure). Guardian accesses participate in
	// happens-before only through their own program order, so they race
	// with any plain access unless the defense suppressed the trigger.
	AccessGuardian
)

// traceKindNames names each kind; KindByName inverts it. Both maps are
// package-level literals so lookups never range over a map.
var traceKindNames = map[TraceKind]string{
	TraceWorkerCreated:    "worker-created",
	TraceWorkerReady:      "worker-ready",
	TraceWorkerTerminated: "worker-terminated",
	TraceWorkerError:      "worker-error",
	TracePostMessage:      "post-message",
	TraceOnMessageSet:     "onmessage-set",
	TraceMessageDelivered: "message-delivered",
	TraceFetchStart:       "fetch-start",
	TraceFetchDone:        "fetch-done",
	TraceFetchAbort:       "fetch-abort",
	TraceXHR:              "xhr",
	TraceImportScripts:    "import-scripts",
	TraceTransferable:     "transferable",
	TraceIndexedDBOpen:    "indexeddb-open",
	TraceIndexedDBPut:     "indexeddb-put",
	TraceDocumentTeardown: "document-teardown",
	TraceNavigationError:  "navigation-error",
	TraceSharedBufferOp:   "shared-buffer-op",
	TraceFetchRetry:       "fetch-retry",
	TraceFaultInjected:    "fault-injected",
	TraceTimerFired:       "timer-fired",
	TraceClockRead:        "clock-read",
	TraceMessageCallback:  "message-callback",
	TraceFrameTick:        "frame-tick",
	TraceLoadDone:         "load-done",
	TraceAccess:           "access",
}

var traceKindByName = map[string]TraceKind{
	"worker-created":    TraceWorkerCreated,
	"worker-ready":      TraceWorkerReady,
	"worker-terminated": TraceWorkerTerminated,
	"worker-error":      TraceWorkerError,
	"post-message":      TracePostMessage,
	"onmessage-set":     TraceOnMessageSet,
	"message-delivered": TraceMessageDelivered,
	"fetch-start":       TraceFetchStart,
	"fetch-done":        TraceFetchDone,
	"fetch-abort":       TraceFetchAbort,
	"xhr":               TraceXHR,
	"import-scripts":    TraceImportScripts,
	"transferable":      TraceTransferable,
	"indexeddb-open":    TraceIndexedDBOpen,
	"indexeddb-put":     TraceIndexedDBPut,
	"document-teardown": TraceDocumentTeardown,
	"navigation-error":  TraceNavigationError,
	"shared-buffer-op":  TraceSharedBufferOp,
	"fetch-retry":       TraceFetchRetry,
	"fault-injected":    TraceFaultInjected,
	"timer-fired":       TraceTimerFired,
	"clock-read":        TraceClockRead,
	"message-callback":  TraceMessageCallback,
	"frame-tick":        TraceFrameTick,
	"load-done":         TraceLoadDone,
	"access":            TraceAccess,
}

// String names the trace kind for diagnostics.
func (k TraceKind) String() string {
	if s, ok := traceKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// KindByName inverts String: it resolves a trace-kind name back to its
// TraceKind. The obs layer uses it to reconstruct native events from
// kernel-trace records bridged through OpNative.
func KindByName(name string) (TraceKind, bool) {
	k, ok := traceKindByName[name]
	return k, ok
}

// TraceEvent is one native-layer occurrence.
type TraceEvent struct {
	Kind     TraceKind
	At       sim.Time
	ThreadID int    // thread on which the event occurred
	WorkerID int    // worker involved, when applicable (0 = none)
	URL      string // resource involved, when applicable
	Detail   string // free-form qualifier (e.g. "pending", "private-mode")
	Value    int64  // numeric payload (e.g. fetch ID, buffer ID, scope token)
	Aux      int64  // second payload (requested delay, clock-read bits, frame index)
}

// Tracer observes native-layer events. Implementations must not retain the
// event past the call.
type Tracer interface {
	Trace(ev TraceEvent)
}

// Recorder is a Tracer that retains every native-layer event, for
// offline analysis (e.g. the policy synthesizer) and debugging.
type Recorder struct {
	events []TraceEvent
}

var _ Tracer = (*Recorder)(nil)

// Trace implements Tracer.
func (r *Recorder) Trace(ev TraceEvent) { r.events = append(r.events, ev) }

// Events returns a copy of the recorded trace.
func (r *Recorder) Events() []TraceEvent {
	out := make([]TraceEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset clears the recording.
func (r *Recorder) Reset() { r.events = nil }

// Tee combines several tracers into one; nil entries are skipped.
func Tee(ts ...Tracer) Tracer {
	var m multiTracer
	for _, t := range ts {
		if t != nil {
			m = append(m, t)
		}
	}
	if len(m) == 1 {
		return m[0]
	}
	return m
}

// multiTracer fans a trace out to several tracers.
type multiTracer []Tracer

func (m multiTracer) Trace(ev TraceEvent) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// access emits one TraceAccess event for the hb race analysis: class
// names the shared-target class, id the target, kind the AccessWrite/
// AccessGuardian bits. The event carries the emitting thread's in-task
// cursor time, so co-scheduled accesses from different threads keep
// their true temporal interleaving. No-op without a tracer.
func (b *Browser) access(t *Thread, class string, id int64, kind int64) {
	if b.tracer == nil {
		return
	}
	b.tracer.Trace(TraceEvent{
		Kind:     TraceAccess,
		At:       t.Now(),
		ThreadID: t.id,
		Detail:   class,
		Value:    id,
		Aux:      kind,
	})
}

// trace emits a native-layer event if a tracer is installed. Events carry
// the simulator clock unless the emitter already stamped a finer in-task
// cursor time.
func (b *Browser) trace(ev TraceEvent) {
	if b.tracer == nil {
		return
	}
	if ev.At == 0 {
		ev.At = b.Sim.Now()
	}
	b.tracer.Trace(ev)
}
