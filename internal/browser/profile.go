// Package browser implements the simulated multi-threaded web browser that
// JSKernel interposes on: per-thread event loops on virtual time, timers,
// message channels, workers, a renderer cost model, fetch/XHR, and the
// feature surface (SharedArrayBuffer, IndexedDB, CSS animation, video cues)
// the paper's attacks exercise.
//
// The browser plays the role the paper's real Chrome/Firefox/Edge played:
// the "native layer" underneath the kernel. Scripts are Go closures that
// receive a *Global — the JavaScript global object — whose bindings table a
// defense can redefine, trap, or stub exactly as the paper's kernel does
// with the JS Proxy/setter machinery.
package browser

import "jskernel/internal/sim"

// Profile is a browser engine's cost model. Three profiles approximate the
// relative behaviour of the paper's Chrome, Firefox, and Edge: absolute
// values are synthetic, but ordering (e.g. Edge's slower renderer, Firefox's
// coarser event loop) follows Table II of the paper.
type Profile struct {
	Name string

	// Event loop and timers.
	TimerClampMin  sim.Duration // minimum setTimeout delay
	TaskDispatch   sim.Duration // fixed overhead per task dispatch
	MessageLatency sim.Duration // postMessage cross-thread delivery latency
	FramePeriod    sim.Duration // rAF / CSS animation frame interval

	// Clock characteristics.
	PerfNowGranularity sim.Duration // performance.now quantization

	// Thread management.
	WorkerSpawnCost sim.Duration // time to create a worker thread
	FrameCreateCost sim.Duration // time to embed an iframe context

	// Renderer / engine costs. These carry the secrets timing attacks
	// steal: script parse scales with bytes, decode and filters with pixels.
	ScriptParsePerKB  sim.Duration
	ImageDecodePerKPx sim.Duration
	SVGFilterPerKPx   sim.Duration
	SVGFilterBase     sim.Duration
	DOMAppend         sim.Duration
	DOMAttrAccess     sim.Duration // one getAttribute/setAttribute call
	LayoutPerElement  sim.Duration
	LinkRepaintBase   sim.Duration
	VisitedRepaint    sim.Duration // extra repaint work for :visited links
	BusyLoopPerIter   sim.Duration // one i++ iteration
	FloatOpNormal     sim.Duration
	FloatOpSubnormal  sim.Duration // subnormal floats are much slower
	VideoCuePeriod    sim.Duration // WebVTT cue firing interval
}

// ChromeProfile models a Blink-like engine: fine clocks, fast dispatch.
func ChromeProfile() Profile {
	return Profile{
		Name:               "chrome",
		TimerClampMin:      1 * sim.Millisecond,
		TaskDispatch:       4 * sim.Microsecond,
		MessageLatency:     12 * sim.Microsecond,
		FramePeriod:        16_667 * sim.Microsecond,
		PerfNowGranularity: 5 * sim.Microsecond,
		WorkerSpawnCost:    550 * sim.Microsecond,
		FrameCreateCost:    900 * sim.Microsecond,
		ScriptParsePerKB:   1300 * sim.Nanosecond,
		ImageDecodePerKPx:  18 * sim.Microsecond,
		SVGFilterPerKPx:    26 * sim.Microsecond,
		SVGFilterBase:      2 * sim.Millisecond,
		DOMAppend:          2 * sim.Microsecond,
		DOMAttrAccess:      240 * sim.Nanosecond,
		LayoutPerElement:   400 * sim.Nanosecond,
		LinkRepaintBase:    60 * sim.Microsecond,
		VisitedRepaint:     45 * sim.Microsecond,
		BusyLoopPerIter:    3 * sim.Nanosecond,
		FloatOpNormal:      8 * sim.Nanosecond,
		FloatOpSubnormal:   110 * sim.Nanosecond,
		VideoCuePeriod:     100 * sim.Millisecond,
	}
}

// FirefoxProfile models a Gecko-like engine: 1ms clock quantization, a
// coarser event loop (visible in the paper's Loopscan column), slightly
// cheaper SVG filtering.
func FirefoxProfile() Profile {
	p := ChromeProfile()
	p.Name = "firefox"
	p.TaskDispatch = 9 * sim.Microsecond
	p.MessageLatency = 40 * sim.Microsecond
	p.PerfNowGranularity = 1 * sim.Millisecond
	p.WorkerSpawnCost = 800 * sim.Microsecond
	p.ScriptParsePerKB = 1500 * sim.Nanosecond
	p.SVGFilterPerKPx = 22 * sim.Microsecond
	p.ImageDecodePerKPx = 21 * sim.Microsecond
	p.LinkRepaintBase = 80 * sim.Microsecond
	p.BusyLoopPerIter = 4 * sim.Nanosecond
	return p
}

// EdgeProfile models an EdgeHTML-like engine: slowest renderer of the
// three, matching Edge's larger SVG-filter times in Table II.
func EdgeProfile() Profile {
	p := ChromeProfile()
	p.Name = "edge"
	p.TaskDispatch = 7 * sim.Microsecond
	p.MessageLatency = 25 * sim.Microsecond
	p.PerfNowGranularity = 1 * sim.Millisecond
	p.WorkerSpawnCost = 900 * sim.Microsecond
	p.ScriptParsePerKB = 1900 * sim.Nanosecond
	p.SVGFilterPerKPx = 38 * sim.Microsecond
	p.SVGFilterBase = 4 * sim.Millisecond
	p.ImageDecodePerKPx = 26 * sim.Microsecond
	p.BusyLoopPerIter = 5 * sim.Nanosecond
	return p
}

// ProfileByName returns the profile for a browser name, defaulting to
// Chrome for unknown names.
func ProfileByName(name string) Profile {
	switch name {
	case "firefox":
		return FirefoxProfile()
	case "edge":
		return EdgeProfile()
	default:
		return ChromeProfile()
	}
}
