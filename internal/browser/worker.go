package browser

import (
	"fmt"
	"strings"

	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

// workerState is the per-worker bookkeeping shared between a worker's
// thread-side scope and its main-thread handle.
type workerState struct {
	id       int
	src      string
	thread   *Thread
	parent   *Thread
	handle   *WorkerHandle
	released bool // handle dropped (GC analogue)
	inFlight int  // messages posted but not yet delivered

	handleOnMessage func(*Global, MessageEvent)
	handleOnError   func(*Global, *WorkerError)
}

// Worker is the user-space view of a web worker. The native implementation
// is *WorkerHandle; a kernel substitutes its own stub (the paper's Proxy in
// Listing 5) through the NewWorker binding, so user code cannot tell the
// difference.
type Worker interface {
	// ID returns the worker's unique id.
	ID() int
	// Src returns the worker's source name.
	Src() string
	// Alive reports whether the worker is (user-visibly) running.
	Alive() bool
	// Thread returns the worker's underlying thread.
	Thread() *Thread
	// InFlight reports messages posted but not yet delivered.
	InFlight() int
	// PostMessage sends data from the parent to the worker scope.
	PostMessage(data any)
	// PostMessageTransfer sends data with a transferable buffer.
	PostMessageTransfer(data any, buf *SharedBuffer)
	// SetOnMessage installs the parent-side worker→main handler.
	SetOnMessage(cb func(*Global, MessageEvent))
	// SetOnError installs the parent-side error handler.
	SetOnError(cb func(*Global, *WorkerError))
	// Terminate kills the worker.
	Terminate()
	// Release drops the handle as a garbage collector would.
	Release()
}

// WorkerHandle is the native main-thread object representing a worker.
type WorkerHandle struct {
	state *workerState
}

var _ Worker = (*WorkerHandle)(nil)

// ID returns the worker's unique id.
func (w *WorkerHandle) ID() int { return w.state.id }

// Src returns the worker's source name.
func (w *WorkerHandle) Src() string { return w.state.src }

// Alive reports whether the worker thread is still running.
func (w *WorkerHandle) Alive() bool { return !w.state.thread.terminated }

// Thread returns the worker's thread.
func (w *WorkerHandle) Thread() *Thread { return w.state.thread }

// InFlight reports messages posted but not yet delivered.
func (w *WorkerHandle) InFlight() int { return w.state.inFlight }

// PostMessage sends data from the parent to the worker scope.
func (w *WorkerHandle) PostMessage(data any) { w.post(MessageEvent{Data: data}) }

// PostMessageTransfer sends data along with a transferable buffer whose
// ownership moves to the worker (CVE-2014-1488's precondition when going
// the other way).
func (w *WorkerHandle) PostMessageTransfer(data any, buf *SharedBuffer) {
	b := w.state.parent.b
	if buf != nil {
		buf.owner = w.state.thread
		b.trace(TraceEvent{
			Kind: TraceTransferable, ThreadID: w.state.parent.id,
			WorkerID: w.state.id, Value: buf.ID, Detail: "to-worker",
		})
	}
	w.post(MessageEvent{Data: data, Transfer: buf})
}

func (w *WorkerHandle) post(m MessageEvent) {
	st := w.state
	b := st.parent.b
	b.trace(TraceEvent{Kind: TracePostMessage, ThreadID: st.parent.id, WorkerID: st.id, Detail: "to-worker"})
	if st.thread.terminated {
		return
	}
	st.inFlight++
	deliverAt := st.parent.Now() + b.Profile.MessageLatency
	st.thread.PostTask(deliverAt, "worker-onmessage", func(g *Global) {
		st.inFlight--
		if h := b.faults; h != nil && h.WorkerDelivery != nil && h.WorkerDelivery(st.id) {
			// Injected crash mid-message: the worker thread dies without
			// any terminate bookkeeping. Its pending fetches stay pending
			// forever (the kernel watchdog's job to reap), and the message
			// is lost. The trace detail is distinct from user-initiated
			// termination so CVE detectors never mistake a crash for an
			// exploit step.
			b.trace(TraceEvent{Kind: TraceFaultInjected, ThreadID: st.thread.id, WorkerID: st.id, Detail: "worker-crash"})
			st.thread.terminate()
			return
		}
		b.trace(TraceEvent{Kind: TraceMessageDelivered, ThreadID: st.thread.id, WorkerID: st.id, Detail: "to-worker"})
		st.thread.deliverMessage(m)
	})
}

// SetOnMessage installs the parent-side handler for worker→main messages.
// Setting a handler on a terminated worker dereferences freed engine state
// in vulnerable browsers (CVE-2013-5602); the native layer traces it.
func (w *WorkerHandle) SetOnMessage(cb func(*Global, MessageEvent)) {
	st := w.state
	b := st.parent.b
	detail := "parent"
	if st.thread.terminated {
		detail = "null-deref"
		// Hazard witness: the setter touches the dead worker's freed
		// engine state (CVE-2013-5602's use-after-free).
		b.access(st.parent, "worker", int64(st.id), AccessWrite|AccessGuardian)
	}
	b.access(st.parent, "worker", int64(st.id), AccessWrite)
	b.trace(TraceEvent{Kind: TraceOnMessageSet, ThreadID: st.parent.id, WorkerID: st.id, Detail: detail})
	st.handleOnMessage = cb
}

// SetOnError installs the parent-side error handler (worker.onerror).
func (w *WorkerHandle) SetOnError(cb func(*Global, *WorkerError)) {
	w.state.handleOnError = cb
}

// Terminate kills the worker thread immediately. Messages queued to it are
// dropped; pending fetches become orphaned (the false-termination state
// CVE-2018-5092 requires).
func (w *WorkerHandle) Terminate() {
	st := w.state
	b := st.parent.b
	if st.thread.terminated {
		return
	}
	detail := ""
	if st.inFlight > 0 || st.thread.QueueDepth() > 0 {
		detail = "pending-messages"
	}
	orphans := b.orphanFetches(st.thread)
	if orphans > 0 {
		if detail != "" {
			detail += ","
		}
		detail += "pending-fetch"
	}
	st.thread.terminate()
	if st.inFlight > 0 || orphans > 0 {
		// Hazard witness: terminating with messages or fetches still in
		// flight frees state the pending work will touch (CVE-2014-1719,
		// CVE-2018-5092's precondition). A merely not-yet-started worker
		// (queue depth without in-flight work) is not the hazard.
		b.access(st.parent, "worker", int64(st.id), AccessWrite|AccessGuardian)
	}
	b.access(st.parent, "worker", int64(st.id), AccessWrite)
	b.trace(TraceEvent{
		Kind: TraceWorkerTerminated, ThreadID: st.parent.id,
		WorkerID: st.id, Detail: detail, Value: int64(orphans),
	})
}

// Release drops the handle as a garbage collector would. Releasing while
// messages are still in flight is CVE-2013-6646's trigger.
func (w *WorkerHandle) Release() {
	st := w.state
	b := st.parent.b
	st.released = true
	detail := "idle"
	if st.inFlight > 0 {
		detail = "in-flight"
	}
	b.access(st.parent, "worker", int64(st.id), AccessWrite)
	b.trace(TraceEvent{Kind: TraceWorkerError, ThreadID: st.parent.id, WorkerID: st.id, Detail: "released:" + detail})
}

// nativeNewWorker implements `new Worker(src)`. src is either the name of
// a script registered with RegisterWorkerScript or a URL; cross-origin
// URLs fail with the detailed (leaky) error message of CVE-2014-1487.
func (g *Global) nativeNewWorker(src string) (Worker, error) {
	b := g.browser
	if g.IsWorkerScope() {
		return nil, fmt.Errorf("browser: nested workers are not supported")
	}
	if strings.Contains(src, "://") && !webnet.SameOrigin(src, b.Origin) {
		// Vulnerable native behaviour: error text leaks the cross-origin
		// URL and its resolution details.
		err := &WorkerError{
			Message: fmt.Sprintf("SecurityError: cannot load worker from %s (resolved cross-origin, redirect-chain visible)", src),
			URL:     src,
		}
		// Hazard witness: the leaky error text exposes cross-origin
		// resolution state (CVE-2014-1487).
		b.access(g.thread, "origin", 0, AccessWrite|AccessGuardian)
		b.access(g.thread, "origin", 0, 0)
		b.trace(TraceEvent{Kind: TraceWorkerError, ThreadID: g.thread.id, URL: src, Detail: "cross-origin-create"})
		return nil, err
	}
	script, err := b.workerScript(src)
	if err != nil {
		return nil, err
	}
	b.nextWorker++
	wt := b.newThread(fmt.Sprintf("worker#%d", b.nextWorker), false)
	st := &workerState{
		id:     b.nextWorker,
		src:    src,
		thread: wt,
		parent: g.thread,
	}
	wt.global.worker = st
	handle := &WorkerHandle{state: st}
	st.handle = handle
	b.trace(TraceEvent{Kind: TraceWorkerCreated, ThreadID: g.thread.id, WorkerID: st.id, URL: src})
	// The worker's script starts after the spawn cost elapses.
	startAt := g.thread.Now() + b.Profile.WorkerSpawnCost
	wt.PostTask(startAt, "worker-main:"+src, func(wg *Global) {
		b.trace(TraceEvent{Kind: TraceWorkerReady, ThreadID: wt.id, WorkerID: st.id})
		script(wg)
	})
	return handle, nil
}

// nativePostMessage implements postMessage in a scope: worker scopes post
// to their parent; the main scope posts to itself (window.postMessage).
func (g *Global) nativePostMessage(data any) {
	b := g.browser
	if g.frame != nil {
		g.framePostToParent(data)
		return
	}
	if g.worker == nil {
		// Self-post on the main thread.
		b.trace(TraceEvent{Kind: TracePostMessage, ThreadID: g.thread.id, Detail: "self"})
		deliverAt := g.thread.Now() + b.Profile.MessageLatency
		g.thread.PostTask(deliverAt, "self-onmessage", func(gg *Global) {
			b.trace(TraceEvent{Kind: TraceMessageDelivered, ThreadID: g.thread.id, Detail: "self"})
			gg.thread.deliverMessage(MessageEvent{Data: data})
		})
		return
	}
	st := g.worker
	b.trace(TraceEvent{Kind: TracePostMessage, ThreadID: g.thread.id, WorkerID: st.id, Detail: "to-parent"})
	detail := "to-parent"
	if b.tornDown {
		// Vulnerable native behaviour: delivery proceeds into a torn-down
		// document (CVE-2010-4576).
		detail = "after-teardown"
	}
	st.inFlight++
	deliverAt := g.thread.Now() + b.Profile.MessageLatency
	st.parent.PostTask(deliverAt, "parent-onmessage", func(pg *Global) {
		st.inFlight--
		if detail == "after-teardown" {
			// Hazard witness: the delivery dereferences the torn-down
			// document's freed state (CVE-2010-4576).
			b.access(st.parent, "doc", 0, AccessWrite|AccessGuardian)
			b.access(st.parent, "doc", 0, 0)
		}
		b.trace(TraceEvent{Kind: TraceMessageDelivered, ThreadID: st.parent.id, WorkerID: st.id, Detail: detail})
		if st.released {
			// Handle was GC'd; vulnerable engines still touch it (the
			// CVE-2013-6646 hazard witness).
			b.access(st.parent, "worker", int64(st.id), AccessWrite|AccessGuardian)
			b.access(st.parent, "worker", int64(st.id), 0)
			b.trace(TraceEvent{Kind: TraceMessageDelivered, ThreadID: st.parent.id, WorkerID: st.id, Detail: "released-use"})
		}
		if st.handleOnMessage != nil {
			st.handleOnMessage(pg, MessageEvent{Data: data, SourceWorker: st.id})
		}
	})
}

// nativeSetOnMessage installs the current scope's message handler. Frame
// scopes share their thread with the window, so their handlers live on
// the frame state rather than the thread.
func (g *Global) nativeSetOnMessage(cb func(*Global, MessageEvent)) {
	g.browser.trace(TraceEvent{Kind: TraceOnMessageSet, ThreadID: g.thread.id, Detail: "self"})
	if g.frame != nil {
		g.frame.setOnMessage(cb)
		return
	}
	if cb == nil {
		g.thread.setOnMessage(nil)
		return
	}
	g.thread.setOnMessage(func(gg *Global, m MessageEvent) { cb(gg, m) })
}

// reportWorkerError routes a worker-scope error to the parent-side
// onerror handler, carrying the (possibly leaky) message text.
func (g *Global) reportWorkerError(err *WorkerError) {
	st := g.worker
	if st == nil || st.handleOnError == nil {
		return
	}
	b := g.browser
	deliverAt := g.thread.Now() + b.Profile.MessageLatency
	st.parent.PostTask(deliverAt, "worker-onerror", func(pg *Global) {
		st.handleOnError(pg, err)
	})
}

// nativeWorkerLocation returns the worker's resolved location. When the
// worker's source was served through a redirect, the vulnerable native
// layer exposes the full post-redirect URL — including cross-origin
// targets — which is the disclosure of CVE-2011-1190.
func (g *Global) nativeWorkerLocation() string {
	if g.worker == nil {
		return ""
	}
	b := g.browser
	if final, ok := b.redirects[g.worker.src]; ok && !webnet.SameOrigin(final, b.Origin) {
		// Hazard witness: the post-redirect URL exposes cross-origin
		// state (CVE-2011-1190).
		b.access(g.thread, "origin", 0, AccessWrite|AccessGuardian)
		b.access(g.thread, "origin", 0, 0)
		b.trace(TraceEvent{Kind: TraceNavigationError, ThreadID: g.thread.id, WorkerID: g.worker.id, URL: final, Detail: "location-leak"})
		return final
	}
	return b.Origin + "/" + g.worker.src
}

// WorkerSpawnCost exposes the profile's worker creation cost (used by the
// worker-creation benchmark).
func (b *Browser) WorkerSpawnCost() sim.Duration { return b.Profile.WorkerSpawnCost }
