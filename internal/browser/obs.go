package browser

import (
	"math"

	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// This file implements the observability callback wrappers installed by
// the public binding delegates when Options.ObsEvents is set. Each
// wrapper emits one trace event at user-callback entry, stamped with the
// in-task cursor time and the registering scope's token, then runs the
// user callback unchanged. Emission never advances simulated time and
// never consults the simulator's RNG, so an obs-on run executes exactly
// the same schedule as an obs-off run.
//
// Tokens are captured at registration: dispatched tasks always receive
// the executing thread's global, so the delivery-time global cannot
// identify who registered the callback. The one exception is
// obsMessageCB, which records the delivery-time token — for message
// handlers the interesting fact is where the message landed.

// obsTimerCB wraps a timer callback; Aux carries the user-requested
// delay in virtual nanoseconds (pre-clamp, pre-fuzz — what the attacker
// asked for, not what the defense granted).
func (g *Global) obsTimerCB(cb func(*Global), d sim.Duration, detail string) func(*Global) {
	if cb == nil {
		return nil
	}
	tok := g.token
	return func(gg *Global) {
		gg.browser.trace(TraceEvent{
			Kind:     TraceTimerFired,
			At:       gg.thread.Now(),
			ThreadID: gg.thread.id,
			Detail:   detail,
			Value:    tok,
			Aux:      int64(d),
		})
		cb(gg)
	}
}

// obsRAFCB wraps a requestAnimationFrame callback as a frame tick.
func (g *Global) obsRAFCB(cb func(*Global, float64)) func(*Global, float64) {
	if cb == nil {
		return nil
	}
	tok := g.token
	return func(gg *Global, ts float64) {
		gg.browser.trace(TraceEvent{
			Kind:     TraceFrameTick,
			At:       gg.thread.Now(),
			ThreadID: gg.thread.id,
			Detail:   "raf",
			Value:    tok,
			Aux:      int64(math.Float64bits(ts)),
		})
		cb(gg, ts)
	}
}

// obsFrameCB wraps an indexed per-frame callback (CSS animation frames,
// WebVTT cues); Aux carries the frame/cue index.
func (g *Global) obsFrameCB(cb func(*Global, int), detail string) func(*Global, int) {
	if cb == nil {
		return nil
	}
	tok := g.token
	return func(gg *Global, idx int) {
		gg.browser.trace(TraceEvent{
			Kind:     TraceFrameTick,
			At:       gg.thread.Now(),
			ThreadID: gg.thread.id,
			Detail:   detail,
			Value:    tok,
			Aux:      int64(idx),
		})
		cb(gg, idx)
	}
}

// obsMessageCB wraps an onmessage handler. The token is the
// delivery-time global's — where the message actually landed — and
// WorkerID is the sending worker (0 for self-posts and frame messages).
func (g *Global) obsMessageCB(cb func(*Global, MessageEvent)) func(*Global, MessageEvent) {
	if cb == nil {
		return nil
	}
	return func(gg *Global, m MessageEvent) {
		gg.browser.trace(TraceEvent{
			Kind:     TraceMessageCallback,
			At:       gg.thread.Now(),
			ThreadID: gg.thread.id,
			WorkerID: m.SourceWorker,
			Value:    gg.token,
		})
		cb(gg, m)
	}
}

// obsLoadCB wraps a resource-load callback (script onload/onerror, image
// onerror).
func (g *Global) obsLoadCB(cb func(*Global), url, detail string) func(*Global) {
	if cb == nil {
		return nil
	}
	tok := g.token
	return func(gg *Global) {
		gg.browser.trace(TraceEvent{
			Kind:     TraceLoadDone,
			At:       gg.thread.Now(),
			ThreadID: gg.thread.id,
			URL:      url,
			Detail:   detail,
			Value:    tok,
		})
		cb(gg)
	}
}

// obsImageCB wraps an image onload callback (which also receives the
// created element).
func (g *Global) obsImageCB(cb func(*Global, *dom.Element), url string) func(*Global, *dom.Element) {
	if cb == nil {
		return nil
	}
	tok := g.token
	return func(gg *Global, el *dom.Element) {
		gg.browser.trace(TraceEvent{
			Kind:     TraceLoadDone,
			At:       gg.thread.Now(),
			ThreadID: gg.thread.id,
			URL:      url,
			Detail:   "image",
			Value:    tok,
		})
		cb(gg, el)
	}
}

// obsFetchCB wraps a fetch completion callback.
func (g *Global) obsFetchCB(cb func(*Response, error), url string) func(*Response, error) {
	if cb == nil {
		return nil
	}
	tok := g.token
	b := g.browser
	th := g.thread
	return func(res *Response, err error) {
		detail := "fetch"
		if err != nil {
			detail = "fetch-error"
		}
		b.trace(TraceEvent{
			Kind:     TraceLoadDone,
			At:       th.Now(),
			ThreadID: th.id,
			URL:      url,
			Detail:   detail,
			Value:    tok,
		})
		cb(res, err)
	}
}

// obsWorker wraps a Worker handle so parent-side onmessage handlers are
// observed like every other callback registration.
type obsWorker struct {
	Worker
	g *Global
}

func (w *obsWorker) SetOnMessage(cb func(*Global, MessageEvent)) {
	w.Worker.SetOnMessage(w.g.obsMessageCB(cb))
}
