package browser

import (
	"testing"

	"jskernel/internal/sim"
)

func TestCreateFrameBasics(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		f, err := g.CreateFrame("https://widget.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		if !f.Attached() || f.Origin() != "https://widget.example" {
			t.Errorf("frame state: attached=%v origin=%q", f.Attached(), f.Origin())
		}
		if f.Scope() == g {
			t.Error("frame scope must be distinct from the window scope")
		}
		if f.Scope().Thread() != g.Thread() {
			t.Error("frame must share the main thread")
		}
		if !f.Scope().IsFrameScope() || f.Scope().FrameOrigin() != "https://widget.example" {
			t.Error("frame scope not marked as frame")
		}
		if f.Scope().Document() == g.Document() {
			t.Error("frame must have its own document")
		}
		// The embedding shows in the parent DOM.
		if g.Document().CountByTag("iframe") != 1 {
			t.Error("iframe element missing from parent document")
		}
	})
	run(t, b)
}

func TestFrameDefaultsToParentOrigin(t *testing.T) {
	b := newTestBrowser(t)
	b.RunScript("main", func(g *Global) {
		f, err := g.CreateFrame("")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		if f.Origin() != b.Origin {
			t.Errorf("origin = %q, want parent origin", f.Origin())
		}
	})
	run(t, b)
}

func TestCreateFrameRejectsWorkersAndBadOrigins(t *testing.T) {
	b := newTestBrowser(t)
	b.RegisterWorkerScript("w.js", func(g *Global) {
		if _, err := g.CreateFrame("https://x.example"); err == nil {
			t.Error("worker scope should not create frames")
		}
	})
	b.RunScript("main", func(g *Global) {
		if _, err := g.NewWorker("w.js"); err != nil {
			t.Errorf("worker: %v", err)
		}
		if _, err := g.CreateFrame("not-a-url"); err == nil {
			t.Error("invalid origin should be rejected")
		}
	})
	run(t, b)
}

func TestFrameMessagingRoundTrip(t *testing.T) {
	b := newTestBrowser(t)
	var frameGot any
	var parentGot any
	var parentOrigin string
	b.RunScript("main", func(g *Global) {
		f, err := g.CreateFrame("https://widget.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		f.RunScript("widget", func(fg *Global) {
			fg.SetOnMessage(func(_ *Global, m MessageEvent) {
				frameGot = m.Data
				fg.PostMessage("pong") // frame → parent window
			})
		})
		g.SetOnMessage(func(_ *Global, m MessageEvent) {
			parentGot = m.Data
			parentOrigin = m.Origin
		})
		f.PostMessage("ping", "https://widget.example")
	})
	run(t, b)
	if frameGot != "ping" {
		t.Fatalf("frame got %v", frameGot)
	}
	if parentGot != "pong" {
		t.Fatalf("parent got %v", parentGot)
	}
	if parentOrigin != "https://widget.example" {
		t.Fatalf("parent saw origin %q (event.origin semantics)", parentOrigin)
	}
}

func TestFrameTargetOriginFiltering(t *testing.T) {
	b := newTestBrowser(t)
	delivered := 0
	b.RunScript("main", func(g *Global) {
		f, err := g.CreateFrame("https://widget.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		f.RunScript("widget", func(fg *Global) {
			fg.SetOnMessage(func(*Global, MessageEvent) { delivered++ })
		})
		f.PostMessage("a", "https://other.example") // mis-targeted: dropped
		f.PostMessage("b", "https://widget.example")
		f.PostMessage("c", "*")
	})
	run(t, b)
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (mis-targeted message dropped)", delivered)
	}
}

func TestFrameMessagesBeforeHandlerQueued(t *testing.T) {
	b := newTestBrowser(t)
	got := 0
	b.RunScript("main", func(g *Global) {
		f, err := g.CreateFrame("https://w.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		f.PostMessage(1, "*")
		f.PostMessage(2, "*")
		// Handler installed later; parked messages must drain.
		g.SetTimeout(func(*Global) {
			f.RunScript("late", func(fg *Global) {
				fg.SetOnMessage(func(*Global, MessageEvent) { got++ })
			})
		}, 10*sim.Millisecond)
	})
	run(t, b)
	if got != 2 {
		t.Fatalf("drained %d parked frame messages, want 2", got)
	}
}

func TestFrameRemoveTearsDown(t *testing.T) {
	b := newTestBrowser(t)
	delivered := 0
	b.RunScript("main", func(g *Global) {
		f, err := g.CreateFrame("https://w.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		f.RunScript("widget", func(fg *Global) {
			fg.SetOnMessage(func(*Global, MessageEvent) { delivered++ })
		})
		g.SetTimeout(func(*Global) {
			f.Remove()
			if f.Attached() {
				t.Error("frame still attached after Remove")
			}
			f.PostMessage("late", "*") // dropped
			f.RunScript("dead", func(*Global) { delivered += 100 })
			f.Remove() // idempotent
		}, 10*sim.Millisecond)
	})
	run(t, b)
	if delivered != 0 {
		t.Fatalf("delivered = %d after removal, want 0", delivered)
	}
}

func TestFrameClockAndTimersWork(t *testing.T) {
	b := newTestBrowser(t)
	fired := false
	b.RunScript("main", func(g *Global) {
		f, err := g.CreateFrame("https://w.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		f.RunScript("widget", func(fg *Global) {
			_ = fg.PerformanceNow()
			fg.SetTimeout(func(*Global) { fired = true }, 3*sim.Millisecond)
		})
	})
	run(t, b)
	if !fired {
		t.Fatal("frame timer never fired")
	}
}
