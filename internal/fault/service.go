package fault

import (
	"fmt"
	"sync/atomic"
)

// Service-layer fault injection: the chaos vocabulary for internal/serve.
//
// The kernel-facing Injector perturbs a single deterministic simulation
// from the inside (network faults, worker crashes, policy panics). The
// service injector perturbs the *boundary around* many simulations: the
// HTTP clients that feed the daemon and the pooled environments that
// serve them. Its faults model what production traffic actually does to
// a service — clients that vanish mid-request, clients that trickle
// bodies byte by byte, clients that send garbage, and requests that
// poison the environment evaluating them.
//
// Decisions are keyed purely by (plan seed, run seed, request index)
// through the same splitmix64 derivation the kernel injector uses — no
// shared RNG stream — so concurrent chaos clients get reproducible
// fault placement regardless of goroutine arrival order.

// ServiceFaults is the rate card of one service-layer fault scenario.
type ServiceFaults struct {
	// DisconnectRate is the probability a client abandons its request
	// mid-flight (context cancellation after send). The server must
	// answer every surviving request correctly and discard the
	// abandoned run without returning a partial verdict.
	DisconnectRate float64
	// StallRate is the probability a client delivers its request body
	// slowly (slow-loris). The server's read bound must cut it off
	// without affecting neighbors.
	StallRate float64
	// MalformedRate is the probability a client sends syntactically
	// broken JSON. Always a typed bad_request, never a crash.
	MalformedRate float64
	// EnvPanicRate is the probability a request's evaluation panics
	// mid-simulation, poisoning the pooled environment. The worker must
	// quarantine by replacement and answer with a typed, retryable
	// error; neighbors keep their verdicts.
	EnvPanicRate float64
	// ScrapeRate is the probability a client scrapes /metricsz
	// concurrently with its evaluation traffic. The scrape must return a
	// complete exposition that passes the self-check parser — including
	// during a SIGTERM drain — and must never block or perturb an
	// evaluation.
	ScrapeRate float64
	// SlowEventsRate is the probability a client subscribes to
	// /v1/events and consumes it slowly. A lagging subscriber must never
	// apply backpressure to the flusher or to eval workers; it falls
	// behind the replay ring and receives an explicit gap event.
	SlowEventsRate float64
}

// ServicePlan is one named service-layer chaos scenario.
type ServicePlan struct {
	Name    string
	Seed    int64
	Service ServiceFaults
}

// String names the plan.
func (p *ServicePlan) String() string { return p.Name }

// ServiceFault is the per-request fault decision.
type ServiceFault int

// Service fault kinds, in cumulative-draw order.
const (
	ServiceNone ServiceFault = iota
	ServiceDisconnect
	ServiceStall
	ServiceMalformed
	ServiceEnvPanic
	ServiceScrape
	ServiceSlowEvents
)

// String names the fault kind.
func (f ServiceFault) String() string {
	switch f {
	case ServiceNone:
		return "none"
	case ServiceDisconnect:
		return "disconnect"
	case ServiceStall:
		return "stall"
	case ServiceMalformed:
		return "malformed"
	case ServiceEnvPanic:
		return "env-panic"
	case ServiceScrape:
		return "scrape"
	case ServiceSlowEvents:
		return "slow-events"
	default:
		return fmt.Sprintf("servicefault(%d)", int(f))
	}
}

// ServiceCounts reports how many faults a service injector delivered.
// Chaos runs print them so "no wrong verdicts" is never mistaken for
// "no faults fired".
type ServiceCounts struct {
	Disconnects uint64
	Stalls      uint64
	Malformed   uint64
	EnvPanics   uint64
	Scrapes     uint64
	SlowEvents  uint64
}

// Total sums every category.
func (c ServiceCounts) Total() uint64 {
	return c.Disconnects + c.Stalls + c.Malformed + c.EnvPanics + c.Scrapes + c.SlowEvents
}

// String formats the counts for reports.
func (c ServiceCounts) String() string {
	return fmt.Sprintf("disconnect=%d stall=%d malformed=%d envpanic=%d scrape=%d slowevents=%d",
		c.Disconnects, c.Stalls, c.Malformed, c.EnvPanics, c.Scrapes, c.SlowEvents)
}

// ServiceInjector realises one service plan against one chaos run. It
// is safe for concurrent use: Decide is a pure function of the request
// index, and counting is atomic.
type ServiceInjector struct {
	plan    *ServicePlan
	runSeed int64

	disconnects atomic.Uint64
	stalls      atomic.Uint64
	malformed   atomic.Uint64
	envPanics   atomic.Uint64
	scrapes     atomic.Uint64
	slowEvents  atomic.Uint64
}

// NewServiceInjector builds an injector for one chaos run. runSeed
// decorrelates repetitions of the same plan, exactly as it does for the
// kernel injector.
func NewServiceInjector(p *ServicePlan, runSeed int64) *ServiceInjector {
	return &ServiceInjector{plan: p, runSeed: runSeed}
}

// Plan returns the plan this injector realises.
func (in *ServiceInjector) Plan() *ServicePlan { return in.plan }

// Decide returns the fault assigned to request requestIndex and counts
// it. The decision depends only on (plan seed, run seed, index): two
// chaos runs with the same inputs fault the same requests, however the
// client goroutines interleave.
func (in *ServiceInjector) Decide(requestIndex int) ServiceFault {
	f := in.Peek(requestIndex)
	switch f {
	case ServiceDisconnect:
		in.disconnects.Add(1)
	case ServiceStall:
		in.stalls.Add(1)
	case ServiceMalformed:
		in.malformed.Add(1)
	case ServiceEnvPanic:
		in.envPanics.Add(1)
	case ServiceScrape:
		in.scrapes.Add(1)
	case ServiceSlowEvents:
		in.slowEvents.Add(1)
	}
	return f
}

// Peek is Decide without the count — for tests that want to predict a
// run's fault placement.
func (in *ServiceInjector) Peek(requestIndex int) ServiceFault {
	z := finalize(uint64(in.plan.Seed)*0x9E3779B97F4A7C15 ^ uint64(in.runSeed) + uint64(requestIndex)*0xBF58476D1CE4E5B9)
	draw := float64(z>>11) / float64(uint64(1)<<53)
	s := in.plan.Service
	cum := s.DisconnectRate
	if draw < cum {
		return ServiceDisconnect
	}
	cum += s.StallRate
	if draw < cum {
		return ServiceStall
	}
	cum += s.MalformedRate
	if draw < cum {
		return ServiceMalformed
	}
	cum += s.EnvPanicRate
	if draw < cum {
		return ServiceEnvPanic
	}
	cum += s.ScrapeRate
	if draw < cum {
		return ServiceScrape
	}
	cum += s.SlowEventsRate
	if draw < cum {
		return ServiceSlowEvents
	}
	return ServiceNone
}

// Counts snapshots the delivered-fault aggregate.
func (in *ServiceInjector) Counts() ServiceCounts {
	return ServiceCounts{
		Disconnects: in.disconnects.Load(),
		Stalls:      in.stalls.Load(),
		Malformed:   in.malformed.Load(),
		EnvPanics:   in.envPanics.Load(),
		Scrapes:     in.scrapes.Load(),
		SlowEvents:  in.slowEvents.Load(),
	}
}

// ServicePlans returns the standard service-layer chaos scenarios, one
// per fault family plus the kitchen-sink mix the chaos harness runs by
// default.
func ServicePlans() []*ServicePlan {
	return []*ServicePlan{
		{Name: "svc-disconnect", Seed: 0x5EB1, Service: ServiceFaults{DisconnectRate: 0.25}},
		{Name: "svc-slowloris", Seed: 0x5EB2, Service: ServiceFaults{StallRate: 0.25}},
		{Name: "svc-malformed", Seed: 0x5EB3, Service: ServiceFaults{MalformedRate: 0.25}},
		{Name: "svc-envpanic", Seed: 0x5EB4, Service: ServiceFaults{EnvPanicRate: 0.25}},
		{Name: "svc-mixed", Seed: 0x5EB5, Service: ServiceFaults{
			DisconnectRate: 0.10, StallRate: 0.10, MalformedRate: 0.10, EnvPanicRate: 0.10,
		}},
		{Name: "svc-telemetry", Seed: 0x5EB6, Service: ServiceFaults{
			DisconnectRate: 0.05, EnvPanicRate: 0.05, ScrapeRate: 0.20, SlowEventsRate: 0.15,
		}},
	}
}

// ServicePlanByName resolves a plan from ServicePlans.
func ServicePlanByName(name string) (*ServicePlan, error) {
	for _, p := range ServicePlans() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fault: unknown service plan %q", name)
}
