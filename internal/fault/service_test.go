package fault

import (
	"sync"
	"testing"
)

// TestServiceDecideDeterministic pins the property the chaos harness
// leans on: fault placement is a pure function of (plan, run seed,
// request index), independent of call order or concurrency.
func TestServiceDecideDeterministic(t *testing.T) {
	plan, err := ServicePlanByName("svc-mixed")
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	a := NewServiceInjector(plan, 7)
	b := NewServiceInjector(plan, 7)

	want := make([]ServiceFault, n)
	for i := 0; i < n; i++ {
		want[i] = a.Decide(i)
	}
	// Same inputs, reversed order and concurrent callers: same placement.
	got := make([]ServiceFault, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := n - 1 - w; i >= 0; i -= 4 {
				got[i] = b.Decide(i)
			}
		}(w)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d: fault %v under concurrency, %v serially", i, got[i], want[i])
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverge: %v vs %v", a.Counts(), b.Counts())
	}
}

// TestServiceSeedsDecorrelate checks that run seeds and plan seeds both
// move the placement — the same request index must not be doomed to the
// same fate across every chaos run.
func TestServiceSeedsDecorrelate(t *testing.T) {
	plan, _ := ServicePlanByName("svc-mixed")
	const n = 256
	base := NewServiceInjector(plan, 1)
	other := NewServiceInjector(plan, 2)
	diff := 0
	for i := 0; i < n; i++ {
		if base.Peek(i) != other.Peek(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the run seed moved no fault decisions")
	}
}

// TestServicePlansFire checks every standard plan actually delivers its
// fault family at roughly the configured rate, and that counts add up.
func TestServicePlansFire(t *testing.T) {
	const n = 1000
	for _, plan := range ServicePlans() {
		in := NewServiceInjector(plan, 42)
		perKind := map[ServiceFault]int{}
		for i := 0; i < n; i++ {
			perKind[in.Decide(i)]++
		}
		c := in.Counts()
		if got := c.Total(); got != uint64(n-perKind[ServiceNone]) {
			t.Errorf("%s: counted %d faults, delivered %d", plan.Name, got, n-perKind[ServiceNone])
		}
		total := plan.Service.DisconnectRate + plan.Service.StallRate +
			plan.Service.MalformedRate + plan.Service.EnvPanicRate +
			plan.Service.ScrapeRate + plan.Service.SlowEventsRate
		want := total * n
		got := float64(c.Total())
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("%s: delivered %0.f faults, configured rate predicts ~%0.f", plan.Name, got, want)
		}
		// Each configured family fired; each unconfigured family did not.
		checks := []struct {
			rate  float64
			kind  ServiceFault
			fired uint64
		}{
			{plan.Service.DisconnectRate, ServiceDisconnect, c.Disconnects},
			{plan.Service.StallRate, ServiceStall, c.Stalls},
			{plan.Service.MalformedRate, ServiceMalformed, c.Malformed},
			{plan.Service.EnvPanicRate, ServiceEnvPanic, c.EnvPanics},
			{plan.Service.ScrapeRate, ServiceScrape, c.Scrapes},
			{plan.Service.SlowEventsRate, ServiceSlowEvents, c.SlowEvents},
		}
		for _, ch := range checks {
			if ch.rate > 0 && ch.fired == 0 {
				t.Errorf("%s: %v configured at %v but never fired in %d requests", plan.Name, ch.kind, ch.rate, n)
			}
			if ch.rate == 0 && ch.fired != 0 {
				t.Errorf("%s: %v not configured but fired %d times", plan.Name, ch.kind, ch.fired)
			}
		}
	}
}
