// Package fault is the deterministic fault-injection subsystem: a seeded
// fault plan describes failures at every layer of the stack — network
// (transient errors, truncated transfers, latency spikes), browser
// (worker crashes mid-message, fetch-abort races, event-cancellation
// storms, event-loop overload bursts) and kernel-facing (user callbacks
// that panic, policies whose Evaluate panics) — and an Injector realises
// the plan against one environment.
//
// Determinism is the design invariant: every random draw comes from
// fixed-seed streams derived from (plan seed, run seed), one stream per
// fault site, so a run is a pure function of (defense, workload,
// fault plan, seed). Re-running the same tuple reproduces the same
// faults at the same points, byte for byte (see determinism_test.go).
//
// The package sits below internal/defense: it imports only the browser,
// webnet, kernel and sim layers, and exposes hooks those layers already
// accept (webnet.FaultInjector, browser.FaultHooks, the kernel's
// callback-fault hook and a Policy wrapper). internal/defense wires an
// Injector into a fresh environment; internal/expr's chaos matrix then
// asserts that no fault plan can flip a security verdict.
package fault

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

// NetFaults describes network-layer failures injected into webnet.Net.
type NetFaults struct {
	// ErrorRate is the probability that a non-cached fetch fails with a
	// transient (retryable) error.
	ErrorRate float64
	// PerURL overrides ErrorRate for exact URL matches.
	PerURL map[string]float64
	// ExemptURLs lists URLs the injector never faults (errors or
	// spikes). Chaos plans exempt the timing attacks' measurement
	// resources: faulting the attacker's own probe trivially destroys
	// the timing channel on every browser, which tests noise injection
	// rather than defense survival — the masked-verdict false positive.
	ExemptURLs []string
	// ErrorStatus is the HTTP status carried by injected failures
	// (default 503).
	ErrorStatus int
	// TruncateFrac is the fraction of the transfer completed before an
	// injected failure cuts it off (0 fails immediately, 0.9 fails at
	// nine-tenths of the latency).
	TruncateFrac float64
	// SpikeRate is the probability that a successful fetch suffers a
	// latency spike.
	SpikeRate float64
	// SpikeScaleMin/Max bound the latency multiplier for spikes.
	SpikeScaleMin float64
	SpikeScaleMax float64
}

// BrowserFaults describes native-layer failures injected into the
// browser.
type BrowserFaults struct {
	// WorkerCrashRate is the probability that a main→worker message
	// delivery crashes the worker mid-message (message lost, pending
	// fetches stranded — the kernel watchdog's job to reap).
	WorkerCrashRate float64
	// FetchAbortRate is the probability that a completing fetch is
	// aborted at the exact completion instant — the abort/completion
	// race.
	FetchAbortRate float64
	// CancelStorms is how many event-cancellation bursts to arm on the
	// main thread; each burst creates and immediately clears
	// CancelStormSize timers through the (possibly kernelized) bindings.
	CancelStorms int
	// CancelStormSize is the number of timers per storm (default 32).
	CancelStormSize int
	// OverloadBursts is how many synchronous busy bursts to arm on the
	// main thread, stalling the event loop for OverloadBusy each.
	OverloadBursts int
	// OverloadBusy is the virtual-time cost of one burst (default 5ms).
	OverloadBusy sim.Duration
}

// KernelFaults describes kernel-facing failures.
type KernelFaults struct {
	// CallbackPanicRate is the probability that a dispatched user
	// callback panics (exercising the kernel's panic isolation).
	CallbackPanicRate float64
	// PolicyPanicRate is the probability that a policy Evaluate call
	// panics (exercising the kernel's fail-closed recovery).
	PolicyPanicRate float64
}

// Plan is one complete, named fault scenario. Plans are plain data so
// experiments can enumerate, print and reproduce them.
type Plan struct {
	Name string
	// Seed keys every random stream the plan's injectors draw from,
	// mixed with the run seed (see NewInjector).
	Seed    int64
	Net     NetFaults
	Browser BrowserFaults
	Kernel  KernelFaults
	// Counter, when non-nil, aggregates fault counts across every
	// injector built from this plan (chaos runs span many short-lived
	// environments; the aggregate proves faults actually fired).
	Counter *AtomicCounts
}

// String names the plan.
func (p *Plan) String() string { return p.Name }

// Counts reports how many faults an Injector actually delivered, per
// category. Experiments print them so "zero verdict flips" is never
// mistaken for "zero faults injected".
type Counts struct {
	NetErrors      uint64
	LatencySpikes  uint64
	WorkerCrashes  uint64
	FetchAborts    uint64
	CancelStorms   uint64
	OverloadBursts uint64
	CallbackPanics uint64
	PolicyPanics   uint64
}

// Total sums every category.
func (c Counts) Total() uint64 {
	return c.NetErrors + c.LatencySpikes + c.WorkerCrashes + c.FetchAborts +
		c.CancelStorms + c.OverloadBursts + c.CallbackPanics + c.PolicyPanics
}

// String formats the counts for reports.
func (c Counts) String() string {
	return fmt.Sprintf("net=%d spike=%d crash=%d abort=%d storm=%d burst=%d cbpanic=%d polpanic=%d",
		c.NetErrors, c.LatencySpikes, c.WorkerCrashes, c.FetchAborts,
		c.CancelStorms, c.OverloadBursts, c.CallbackPanics, c.PolicyPanics)
}

// Fault-category indexes into AtomicCounts.
const (
	cNet = iota
	cSpike
	cCrash
	cAbort
	cStorm
	cBurst
	cCbPanic
	cPolPanic
	nCategories
)

// AtomicCounts is a race-safe fault-count aggregate. Attach one to a
// Plan (Plan.Counter) and every injector built from that plan tees its
// counts in, so a chaos run spanning hundreds of short-lived
// environments can still prove its faults fired.
type AtomicCounts struct {
	c [nCategories]uint64
}

func (a *AtomicCounts) add(i int) { atomic.AddUint64(&a.c[i], 1) }

// Snapshot returns a plain copy of the aggregate.
func (a *AtomicCounts) Snapshot() Counts {
	var s [nCategories]uint64
	for i := range s {
		s[i] = atomic.LoadUint64(&a.c[i])
	}
	return Counts{
		NetErrors:      s[cNet],
		LatencySpikes:  s[cSpike],
		WorkerCrashes:  s[cCrash],
		FetchAborts:    s[cAbort],
		CancelStorms:   s[cStorm],
		OverloadBursts: s[cBurst],
		CallbackPanics: s[cCbPanic],
		PolicyPanics:   s[cPolPanic],
	}
}

// Injector realises one plan against one environment. Each fault site
// owns a private seeded stream so draws at one layer never perturb
// another layer's sequence — the property that keeps fault placement
// reproducible when layers interleave differently across defenses.
type Injector struct {
	plan   *Plan
	counts Counts

	netRNG      *rand.Rand // FetchFault draws
	workerRNG   *rand.Rand // WorkerDelivery draws
	abortRNG    *rand.Rand // FetchDone draws
	callbackRNG *rand.Rand // CallbackPanic draws
	policyRNG   *rand.Rand // WrapPolicy draws
}

// finalize is the splitmix64 finalizer: a bijective scramble that turns
// structured seed material into well-distributed stream seeds.
func finalize(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// mix derives a per-stream seed from the plan seed, the run seed, a
// caller salt and a stream tag.
func mix(planSeed, runSeed int64, salt, tag uint64) int64 {
	z := uint64(planSeed)*0x9E3779B97F4A7C15 ^ uint64(runSeed) + tag*0xBF58476D1CE4E5B9
	return int64(finalize(z ^ salt))
}

// hashString folds a string into seed material (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewInjector builds an injector for one run. runSeed is the
// environment seed, so different reps of the same plan see different —
// but individually reproducible — fault placements. Optional salt
// strings (e.g. the defense ID) decorrelate streams between runs that
// share a seed: experiment matrices reuse the same seeds across every
// cell, and without a salt every cell would see identical draws.
func NewInjector(p *Plan, runSeed int64, salt ...string) *Injector {
	var sh uint64
	for _, s := range salt {
		sh = finalize(sh ^ hashString(s))
	}
	return &Injector{
		plan:        p,
		netRNG:      rand.New(rand.NewSource(mix(p.Seed, runSeed, sh, 1))),
		workerRNG:   rand.New(rand.NewSource(mix(p.Seed, runSeed, sh, 2))),
		abortRNG:    rand.New(rand.NewSource(mix(p.Seed, runSeed, sh, 3))),
		callbackRNG: rand.New(rand.NewSource(mix(p.Seed, runSeed, sh, 4))),
		policyRNG:   rand.New(rand.NewSource(mix(p.Seed, runSeed, sh, 5))),
	}
}

// Plan returns the plan this injector realises.
func (in *Injector) Plan() *Plan { return in.plan }

// bump records one delivered fault locally and in the plan's shared
// aggregate, if attached.
func (in *Injector) bump(field *uint64, category int) {
	*field++
	if c := in.plan.Counter; c != nil {
		c.add(category)
	}
}

// Counts returns a snapshot of the faults delivered so far.
func (in *Injector) Counts() Counts { return in.counts }

// urlJitter folds a URL into a uniform offset so two URLs sharing one
// stream position still make independent fault decisions.
func urlJitter(url string) float64 {
	return float64(hashString(url)>>11) / (1 << 53)
}

// draw01 is a uniform draw decorrelated by the URL: the stream supplies
// sequence entropy, the URL supplies position entropy.
func draw01(rng *rand.Rand, url string) float64 {
	v := rng.Float64() + urlJitter(url)
	if v >= 1 {
		v--
	}
	return v
}

// FetchFault implements webnet.FaultInjector: transient errors with
// optional truncation, or latency spikes, per the plan's NetFaults.
func (in *Injector) FetchFault(url string) webnet.FaultDecision {
	nf := in.plan.Net
	for _, ex := range nf.ExemptURLs {
		if ex == url {
			return webnet.FaultDecision{}
		}
	}
	rate := nf.ErrorRate
	if r, ok := nf.PerURL[url]; ok {
		rate = r
	}
	if rate > 0 && draw01(in.netRNG, url) < rate {
		status := nf.ErrorStatus
		if status == 0 {
			status = 503
		}
		in.bump(&in.counts.NetErrors, cNet)
		return webnet.FaultDecision{
			Err:          &webnet.TransientError{URL: url, Status: status, Reason: "injected transient fault"},
			TruncateFrac: nf.TruncateFrac,
		}
	}
	if nf.SpikeRate > 0 && draw01(in.netRNG, url) < nf.SpikeRate {
		lo, hi := nf.SpikeScaleMin, nf.SpikeScaleMax
		if lo <= 0 {
			lo = 2
		}
		if hi < lo {
			hi = lo
		}
		in.bump(&in.counts.LatencySpikes, cSpike)
		return webnet.FaultDecision{LatencyScale: lo + in.netRNG.Float64()*(hi-lo)}
	}
	return webnet.FaultDecision{}
}

// BrowserHooks returns the native-layer hooks (worker crashes and
// fetch-abort races) for browser.SetFaultHooks, or nil when the plan
// injects neither.
func (in *Injector) BrowserHooks() *browser.FaultHooks {
	bf := in.plan.Browser
	if bf.WorkerCrashRate <= 0 && bf.FetchAbortRate <= 0 {
		return nil
	}
	return &browser.FaultHooks{
		WorkerDelivery: func(workerID int) bool {
			if bf.WorkerCrashRate > 0 && in.workerRNG.Float64() < bf.WorkerCrashRate {
				in.bump(&in.counts.WorkerCrashes, cCrash)
				return true
			}
			return false
		},
		FetchDone: func(url string) bool {
			if bf.FetchAbortRate > 0 && in.abortRNG.Float64() < bf.FetchAbortRate {
				in.bump(&in.counts.FetchAborts, cAbort)
				return true
			}
			return false
		},
	}
}

// CallbackPanic is the kernel's callback-fault hook
// (kernel.Shared.SetCallbackFault): returning true makes the dispatch
// panic inside the user callback.
func (in *Injector) CallbackPanic(api string) bool {
	rate := in.plan.Kernel.CallbackPanicRate
	if rate > 0 && in.callbackRNG.Float64() < rate {
		in.bump(&in.counts.CallbackPanics, cCbPanic)
		return true
	}
	return false
}

// WrapPolicy wraps a kernel policy so Evaluate panics with the plan's
// PolicyPanicRate. The kernel recovers each panic and fails closed;
// wrapping is a no-op when the rate is zero.
func (in *Injector) WrapPolicy(p kernel.Policy) kernel.Policy {
	if in.plan.Kernel.PolicyPanicRate <= 0 {
		return p
	}
	return &panickyPolicy{Policy: p, in: in}
}

type panickyPolicy struct {
	kernel.Policy
	in *Injector
}

func (p *panickyPolicy) Evaluate(ctx kernel.CallContext) kernel.Verdict {
	if p.in.policyRNG.Float64() < p.in.plan.Kernel.PolicyPanicRate {
		p.in.bump(&p.in.counts.PolicyPanics, cPolPanic)
		panic(fmt.Sprintf("fault: injected policy panic on %s", ctx.API))
	}
	return p.Policy.Evaluate(ctx)
}

// Arm schedules the plan's time-based faults — event-cancellation
// storms and event-loop overload bursts — on the browser's main thread
// at fixed virtual times. The storm timers go through the scope's
// bindings table, so a kernelized page absorbs them in its kernel
// queue, exactly the churn the overload shedding and dispatcher must
// survive.
func (in *Injector) Arm(b *browser.Browser) {
	bf := in.plan.Browser
	stormSize := bf.CancelStormSize
	if stormSize <= 0 {
		stormSize = 32
	}
	busy := bf.OverloadBusy
	if busy <= 0 {
		busy = 5 * sim.Millisecond
	}
	for i := 0; i < bf.CancelStorms; i++ {
		at := sim.Time(200*sim.Millisecond) + sim.Time(i)*sim.Time(500*sim.Millisecond)
		b.Main().PostTask(at, fmt.Sprintf("fault-cancel-storm#%d", i), func(g *browser.Global) {
			in.bump(&in.counts.CancelStorms, cStorm)
			for j := 0; j < stormSize; j++ {
				id := g.SetTimeout(func(*browser.Global) {}, sim.Duration(1+j)*sim.Millisecond)
				g.ClearTimeout(id)
			}
		})
	}
	for i := 0; i < bf.OverloadBursts; i++ {
		at := sim.Time(300*sim.Millisecond) + sim.Time(i)*sim.Time(700*sim.Millisecond)
		b.Main().PostTask(at, fmt.Sprintf("fault-overload#%d", i), func(g *browser.Global) {
			in.bump(&in.counts.OverloadBursts, cBurst)
			g.Busy(busy)
		})
	}
}

// measurementURLs are the timing attacks' probe resources, exempted
// from network faults in every standard plan (see NetFaults.ExemptURLs).
func measurementURLs() []string {
	return []string{
		"https://cdn.shared.example/lib/common.js", // cache attack
		"https://social.example/friends.json",      // script parsing
		"https://social.example/avatar.png",        // image decoding
		"https://social.example/payload.bin",       // rAF payload
		"https://social.example/payload2.bin",      // rAF payload
	}
}

// StandardPlans returns the seeded fault scenarios the chaos matrix
// runs: a degraded network, an unreliable worker pool, and a hostile
// page hammering the kernel itself. Rates are deliberately aggressive
// enough to fire on every workload yet bounded so fault noise cannot
// drown the signal the attacks need — the chaos experiment asserts
// verdicts are identical with and without each plan.
func StandardPlans() []*Plan {
	return []*Plan{
		{
			Name: "flaky-net",
			Seed: 101,
			Net: NetFaults{
				ErrorRate:     0.06,
				ErrorStatus:   503,
				TruncateFrac:  0.5,
				SpikeRate:     0.08,
				SpikeScaleMin: 1.5,
				SpikeScaleMax: 2.5,
				ExemptURLs:    measurementURLs(),
			},
		},
		{
			Name: "crashy-workers",
			Seed: 333,
			Net: NetFaults{
				ErrorRate:   0.05,
				ErrorStatus: 502,
				ExemptURLs:  measurementURLs(),
			},
			Browser: BrowserFaults{
				WorkerCrashRate: 0.04,
				FetchAbortRate:  0.05,
			},
		},
		{
			Name: "hostile-page",
			Seed: 303,
			// Storm sizes are deliberately modest: a storm cancels queued
			// events, and cancelling ~40 at once opens multi-millisecond
			// event-loop gaps that the Loopscan attack reads directly —
			// flipping marginal noise-defense verdicts (Fuzzyfox) at quick
			// scale. That is the harness perturbing the measurement, not a
			// defense weakening, so the plan stays below that regime.
			Browser: BrowserFaults{
				CancelStorms:    2,
				CancelStormSize: 10,
				OverloadBursts:  2,
				OverloadBusy:    5 * sim.Millisecond,
			},
			Kernel: KernelFaults{
				CallbackPanicRate: 0.02,
				PolicyPanicRate:   0.01,
			},
		},
	}
}

// PlanByName resolves a standard plan.
func PlanByName(name string) (*Plan, error) {
	for _, p := range StandardPlans() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fault: unknown plan %q", name)
}
