package fault

import (
	"strings"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

func TestStandardPlansAreDistinctAndResolvable(t *testing.T) {
	plans := StandardPlans()
	if len(plans) < 3 {
		t.Fatalf("need >=3 standard plans, got %d", len(plans))
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if seen[p.Name] {
			t.Errorf("duplicate plan name %q", p.Name)
		}
		seen[p.Name] = true
		got, err := PlanByName(p.Name)
		if err != nil {
			t.Errorf("PlanByName(%q): %v", p.Name, err)
		} else if got.Name != p.Name || got.Seed != p.Seed {
			t.Errorf("PlanByName(%q) resolved to %q/%d", p.Name, got.Name, got.Seed)
		}
	}
	if _, err := PlanByName("no-such-plan"); err == nil {
		t.Error("PlanByName should fail for unknown names")
	}
}

func TestFetchFaultRatesAndExemptions(t *testing.T) {
	plan := &Plan{
		Name: "t",
		Seed: 7,
		Net: NetFaults{
			ErrorRate:     0.5,
			ErrorStatus:   503,
			TruncateFrac:  0.25,
			SpikeRate:     0.5,
			SpikeScaleMin: 2,
			SpikeScaleMax: 4,
			ExemptURLs:    []string{"https://safe.example/probe.js"},
			PerURL:        map[string]float64{"https://always.example/x": 1},
		},
	}
	in := NewInjector(plan, 1)
	const n = 2000
	for i := 0; i < n; i++ {
		in.FetchFault("https://site.example/a.js")
	}
	c := in.Counts()
	if c.NetErrors == 0 || c.LatencySpikes == 0 {
		t.Fatalf("expected both fault kinds to fire, got %s", c)
	}
	// Rough rate sanity: at 50% each, both should land within wide bounds.
	if c.NetErrors < n/4 || c.NetErrors > 3*n/4 {
		t.Errorf("NetErrors=%d implausible for rate 0.5 over %d draws", c.NetErrors, n)
	}

	in2 := NewInjector(plan, 1)
	for i := 0; i < 500; i++ {
		if d := in2.FetchFault("https://safe.example/probe.js"); d.Err != nil || d.LatencyScale != 0 {
			t.Fatal("exempt URL must never be faulted")
		}
	}
	if in2.Counts().Total() != 0 {
		t.Fatalf("exempt URL bumped counts: %s", in2.Counts())
	}

	in3 := NewInjector(plan, 1)
	d := in3.FetchFault("https://always.example/x")
	if d.Err == nil {
		t.Fatal("PerURL rate 1 must always fault")
	}
	if !webnet.IsTransient(d.Err) {
		t.Fatalf("injected error should be transient, got %T", d.Err)
	}
	if d.TruncateFrac != 0.25 {
		t.Errorf("TruncateFrac = %v, want 0.25", d.TruncateFrac)
	}
}

func TestInjectorStreamsAreIndependent(t *testing.T) {
	plan := &Plan{
		Name:    "t",
		Seed:    9,
		Net:     NetFaults{ErrorRate: 0.3},
		Browser: BrowserFaults{WorkerCrashRate: 0.3, FetchAbortRate: 0.3},
		Kernel:  KernelFaults{CallbackPanicRate: 0.3},
	}
	// Reference: worker-crash decisions with no other draws interleaved.
	ref := NewInjector(plan, 5)
	var want []bool
	h := ref.BrowserHooks()
	for i := 0; i < 64; i++ {
		want = append(want, h.WorkerDelivery(1))
	}
	// Same plan+seed, but with net and callback draws interleaved: the
	// worker stream must be unaffected.
	in := NewInjector(plan, 5)
	h2 := in.BrowserHooks()
	for i := 0; i < 64; i++ {
		in.FetchFault("https://x.example/a")
		in.CallbackPanic("setTimeout")
		if got := h2.WorkerDelivery(1); got != want[i] {
			t.Fatalf("worker stream perturbed by other layers at draw %d", i)
		}
	}
}

func TestBrowserHooksNilWhenUnused(t *testing.T) {
	in := NewInjector(&Plan{Name: "t", Seed: 1}, 1)
	if in.BrowserHooks() != nil {
		t.Fatal("plan without browser faults should yield nil hooks")
	}
}

type stubPolicy struct{}

func (stubPolicy) Name() string          { return "stub" }
func (stubPolicy) Deterministic() bool   { return true }
func (stubPolicy) Quantum() sim.Duration { return sim.Millisecond }
func (stubPolicy) PredictDelay(api string, req sim.Duration) sim.Duration {
	return kernel.DefaultPredictDelay(api, req, sim.Millisecond, 0)
}
func (stubPolicy) Evaluate(kernel.CallContext) kernel.Verdict { return kernel.Allow }

func TestWrapPolicyPanicsAtRate(t *testing.T) {
	noFault := NewInjector(&Plan{Name: "t", Seed: 3}, 1)
	if p := noFault.WrapPolicy(stubPolicy{}); p != (stubPolicy{}) {
		t.Fatal("zero panic rate must return the policy unchanged")
	}

	in := NewInjector(&Plan{Name: "t", Seed: 3, Kernel: KernelFaults{PolicyPanicRate: 1}}, 1)
	wrapped := in.WrapPolicy(stubPolicy{})
	if wrapped.Name() != "stub" || !wrapped.Deterministic() {
		t.Fatal("wrapper must delegate the policy surface")
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("rate-1 wrapped policy must panic")
			}
			if !strings.Contains(r.(string), "injected policy panic") {
				t.Fatalf("unexpected panic payload %v", r)
			}
		}()
		wrapped.Evaluate(kernel.CallContext{API: "fetch"})
	}()
	if in.Counts().PolicyPanics != 1 {
		t.Fatalf("PolicyPanics = %d, want 1", in.Counts().PolicyPanics)
	}
}

func TestArmSchedulesStormsAndBursts(t *testing.T) {
	plan := &Plan{
		Name: "t",
		Seed: 4,
		Browser: BrowserFaults{
			CancelStorms:    2,
			CancelStormSize: 8,
			OverloadBursts:  2,
			OverloadBusy:    2 * sim.Millisecond,
		},
	}
	in := NewInjector(plan, 1)
	s := sim.New(1)
	net := webnet.New(webnet.DefaultConfig(), s.Rand())
	b := browser.New(s, browser.Options{Profile: browser.ProfileByName("chrome"), Net: net})
	in.Arm(b)
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	c := in.Counts()
	if c.CancelStorms != 2 || c.OverloadBursts != 2 {
		t.Fatalf("storms/bursts did not all fire: %s", c)
	}
}

func TestAggregateCounter(t *testing.T) {
	plan := &Plan{Name: "t", Seed: 6, Net: NetFaults{ErrorRate: 1}, Counter: &AtomicCounts{}}
	for run := 0; run < 3; run++ {
		in := NewInjector(plan, int64(run))
		in.FetchFault("https://x.example/a")
	}
	if got := plan.Counter.Snapshot().NetErrors; got != 3 {
		t.Fatalf("aggregate NetErrors = %d, want 3", got)
	}
}
