// Package webnet implements the simulated web: origins, resources, a
// latency/bandwidth transfer-time model with seeded jitter, and a per-browser
// HTTP cache. The cross-origin resources it serves carry the secrets the
// paper's side-channel attacks try to steal (file sizes, image resolutions,
// cache residency), while the transfer-time model produces the very timing
// signals those attacks measure.
package webnet

import (
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"jskernel/internal/sim"
)

// Kind classifies a resource; renderer costs depend on it.
type Kind int

// Resource kinds.
const (
	KindHTML Kind = iota + 1
	KindScript
	KindImage
	KindJSON
	KindVideo
	KindFont
)

// String returns the kind's lowercase name.
func (k Kind) String() string {
	switch k {
	case KindHTML:
		return "html"
	case KindScript:
		return "script"
	case KindImage:
		return "image"
	case KindJSON:
		return "json"
	case KindVideo:
		return "video"
	case KindFont:
		return "font"
	default:
		return "unknown"
	}
}

// Resource is one fetchable asset.
type Resource struct {
	URL    string
	Origin string
	Kind   Kind
	Bytes  int64 // transfer size
	Width  int   // images/videos: pixel dimensions (drive decode cost)
	Height int
	Body   string // small textual bodies (scripts, JSON); optional
}

// NotFoundError reports a fetch of an unregistered URL. It is a permanent
// failure: retrying the same request can never succeed.
type NotFoundError struct {
	URL string
}

func (e *NotFoundError) Error() string { return fmt.Sprintf("webnet: no resource at %q", e.URL) }

// Retryable reports false: a missing resource stays missing, so retrying
// is pure waste. Implements the repo-wide retryable-error contract
// (serve.RetryableError): retry decisions are made from this method,
// never by string-matching error text.
func (e *NotFoundError) Retryable() bool { return false }

// TransientError reports a retryable network-level failure — a simulated
// 5xx response, a truncated transfer, or a congestion drop. Callers that
// can afford the latency (see browser.FetchOptions.MaxRetries) may retry;
// permanent failures (NotFoundError) must not be retried.
type TransientError struct {
	URL    string
	Status int    // HTTP-like status code, e.g. 503
	Reason string // "injected-5xx", "truncated", ...
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("webnet: transient failure for %q (status %d, %s)", e.URL, e.Status, e.Reason)
}

// Retryable reports true: transient failures are exactly the retryable
// class. Implements the repo-wide retryable-error contract
// (serve.RetryableError).
func (e *TransientError) Retryable() bool { return true }

// IsTransient reports whether err is (or wraps) a retryable network
// failure.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// FaultDecision tells Net.Fetch how to degrade one network transfer. The
// zero value means "no fault".
type FaultDecision struct {
	// Err, when non-nil, fails the fetch with this error instead of
	// delivering the resource. Use *TransientError for retryable faults.
	Err error
	// TruncateFrac, in (0,1], reports the failure after that fraction of
	// the computed transfer latency (a connection dying mid-body). Zero
	// reports the failure after the full transfer latency.
	TruncateFrac float64
	// LatencyScale multiplies the transfer latency when > 0 (congestion or
	// a latency spike). It applies to successful and failed transfers.
	LatencyScale float64
}

// FaultInjector lets a fault plan degrade network transfers. Injectors
// must be deterministic functions of their own seeded state; Net consults
// them only for transfers that actually hit the network (cache hits are
// served locally and cannot fail).
type FaultInjector interface {
	FetchFault(url string) FaultDecision
}

// OriginOf extracts the origin (scheme + host) from a URL string. Relative
// URLs have no origin and return "".
func OriginOf(url string) string {
	i := strings.Index(url, "://")
	if i < 0 {
		return ""
	}
	rest := url[i+3:]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	return url[:i+3] + rest
}

// SameOrigin reports whether two URLs share an origin. A relative URL is
// same-origin with everything (it resolves against the requester).
func SameOrigin(a, b string) bool {
	oa, ob := OriginOf(a), OriginOf(b)
	if oa == "" || ob == "" {
		return true
	}
	return oa == ob
}

// Config tunes the transfer-time model. The defaults approximate the
// paper's testbed: an ADSL link of 9.5 Mbit/s with tens-of-ms RTTs.
type Config struct {
	RTT           sim.Duration // round-trip latency per request
	BytesPerSec   int64        // link bandwidth
	JitterFrac    float64      // +/- fraction of transfer time, uniform
	CacheLatency  sim.Duration // response time for a cache hit
	EnableCaching bool
	// CacheCapacityBytes bounds the HTTP cache with LRU eviction; zero
	// means unbounded. A bounded cache lets an attacker evict a victim's
	// entry by loading filler resources — the flush phase of Oren et
	// al.'s cache attack.
	CacheCapacityBytes int64
}

// DefaultConfig returns the paper-testbed-like network parameters.
func DefaultConfig() Config {
	return Config{
		RTT:           30 * sim.Millisecond,
		BytesPerSec:   9_500_000 / 8, // 9.5 Mbit/s ADSL
		JitterFrac:    0.05,
		CacheLatency:  200 * sim.Microsecond,
		EnableCaching: true,
	}
}

// Net is the simulated network: a resource registry shared by all sites in
// a run, plus per-instance cache state (LRU when capacity-bounded).
type Net struct {
	cfg       Config
	rng       *rand.Rand
	resources map[string]*Resource
	faults    FaultInjector

	cache      map[string]*list.Element // url → LRU node
	lru        *list.List               // front = most recent
	cacheBytes int64

	transientFails uint64
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	url   string
	bytes int64
}

// New returns a network using rng for jitter. The rng must be the owning
// simulation's PRNG so runs stay reproducible.
func New(cfg Config, rng *rand.Rand) *Net {
	return &Net{
		cfg:       cfg,
		rng:       rng,
		resources: make(map[string]*Resource),
		cache:     make(map[string]*list.Element),
		lru:       list.New(),
	}
}

// Register adds (or replaces) a resource. The resource's Origin is derived
// from its URL when unset.
func (n *Net) Register(r *Resource) {
	if r.Origin == "" {
		r.Origin = OriginOf(r.URL)
	}
	n.resources[r.URL] = r
}

// RegisterScript registers a script asset of the given transfer size.
func (n *Net) RegisterScript(url string, bytes int64) *Resource {
	r := &Resource{URL: url, Kind: KindScript, Bytes: bytes}
	n.Register(r)
	return r
}

// RegisterImage registers an image asset; decode cost scales with W*H.
func (n *Net) RegisterImage(url string, w, h int) *Resource {
	r := &Resource{URL: url, Kind: KindImage, Bytes: int64(w) * int64(h) / 8, Width: w, Height: h}
	n.Register(r)
	return r
}

// RegisterJSON registers a small JSON payload.
func (n *Net) RegisterJSON(url, body string) *Resource {
	r := &Resource{URL: url, Kind: KindJSON, Bytes: int64(len(body)), Body: body}
	n.Register(r)
	return r
}

// Lookup returns the resource at url.
func (n *Net) Lookup(url string) (*Resource, error) {
	r, ok := n.resources[url]
	if !ok {
		return nil, &NotFoundError{URL: url}
	}
	return r, nil
}

// Cached reports whether url currently resides in the HTTP cache.
func (n *Net) Cached(url string) bool {
	if !n.cfg.EnableCaching {
		return false
	}
	_, ok := n.cache[url]
	return ok
}

// CacheBytes reports the cache's current occupancy.
func (n *Net) CacheBytes() int64 { return n.cacheBytes }

// CacheEntries reports the number of cached resources.
func (n *Net) CacheEntries() int { return len(n.cache) }

// EvictAll flushes the HTTP cache (the cache attack's "flush" phase).
func (n *Net) EvictAll() {
	n.cache = make(map[string]*list.Element)
	n.lru = list.New()
	n.cacheBytes = 0
}

// Evict removes one entry from the cache.
func (n *Net) Evict(url string) {
	el, ok := n.cache[url]
	if !ok {
		return
	}
	if entry, ok := el.Value.(*cacheEntry); ok {
		n.cacheBytes -= entry.bytes
	}
	n.lru.Remove(el)
	delete(n.cache, url)
}

// Warm inserts url into the cache without a fetch, for test setup.
func (n *Net) Warm(url string) {
	if !n.cfg.EnableCaching {
		return
	}
	if r, err := n.Lookup(url); err == nil {
		n.cacheInsert(url, r.Bytes)
	}
}

// cacheInsert records a fetched resource, evicting least-recently-used
// entries when a capacity is configured.
func (n *Net) cacheInsert(url string, bytes int64) {
	if el, ok := n.cache[url]; ok {
		n.lru.MoveToFront(el)
		return
	}
	if cap := n.cfg.CacheCapacityBytes; cap > 0 {
		if bytes > cap {
			return // never fits; do not evict everything for it
		}
		for n.cacheBytes+bytes > cap && n.lru.Len() > 0 {
			oldest := n.lru.Back()
			if entry, ok := oldest.Value.(*cacheEntry); ok {
				n.Evict(entry.url)
			} else {
				n.lru.Remove(oldest)
			}
		}
	}
	el := n.lru.PushFront(&cacheEntry{url: url, bytes: bytes})
	n.cache[url] = el
	n.cacheBytes += bytes
}

// touch marks a cache hit as most recently used.
func (n *Net) touch(url string) {
	if el, ok := n.cache[url]; ok {
		n.lru.MoveToFront(el)
	}
}

// FetchResult describes a completed simulated fetch.
type FetchResult struct {
	Resource *Resource
	Latency  sim.Duration
	FromNet  bool // false when served from cache
	Opaque   bool // true for cross-origin responses: body/size unreadable
}

// Fetch resolves url for a requester at fromOrigin and returns the resource
// plus the virtual latency until the response completes. The caller (the
// browser) is responsible for scheduling the callback at now+Latency. Fetch
// updates cache state.
func (n *Net) Fetch(url, fromOrigin string) (FetchResult, error) {
	r, err := n.Lookup(url)
	if err != nil {
		return FetchResult{}, err
	}
	res := FetchResult{Resource: r}
	if r.Origin != "" && fromOrigin != "" && r.Origin != fromOrigin {
		res.Opaque = true
	}
	if n.Cached(url) {
		n.touch(url)
		res.Latency = n.cfg.CacheLatency
		return res, nil
	}
	res.FromNet = true
	res.Latency = n.transferTime(r.Bytes)
	if n.faults != nil {
		d := n.faults.FetchFault(url)
		if d.LatencyScale > 0 {
			res.Latency = sim.Duration(float64(res.Latency) * d.LatencyScale)
		}
		if d.Err != nil {
			// A failed transfer still costs time on the wire, but never
			// populates the cache.
			n.transientFails++
			if d.TruncateFrac > 0 && d.TruncateFrac <= 1 {
				res.Latency = sim.Duration(float64(res.Latency) * d.TruncateFrac)
			}
			res.Resource = nil
			return res, d.Err
		}
	}
	if n.cfg.EnableCaching {
		n.cacheInsert(url, r.Bytes)
	}
	return res, nil
}

// SetFaultInjector installs (or, with nil, removes) the network's fault
// injector. Only transfers that hit the network consult it.
func (n *Net) SetFaultInjector(fi FaultInjector) { n.faults = fi }

// TransientFailures reports how many transfers the fault injector failed.
func (n *Net) TransientFailures() uint64 { return n.transientFails }

// transferTime models RTT + size/bandwidth with uniform jitter.
func (n *Net) transferTime(bytes int64) sim.Duration {
	t := n.cfg.RTT
	if n.cfg.BytesPerSec > 0 {
		t += sim.Duration(float64(bytes) / float64(n.cfg.BytesPerSec) * float64(sim.Second))
	}
	if n.cfg.JitterFrac > 0 && n.rng != nil {
		j := 1 + (n.rng.Float64()*2-1)*n.cfg.JitterFrac
		t = sim.Duration(float64(t) * j)
	}
	if t < 0 {
		t = 0
	}
	return t
}

// ResourceCount reports how many resources are registered.
func (n *Net) ResourceCount() int { return len(n.resources) }
