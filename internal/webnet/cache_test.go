package webnet

import (
	"fmt"
	"testing"
	"testing/quick"
)

// LRU cache behaviour: the substrate of the cache attack's realistic
// flush phase (evict a victim entry by loading filler resources).

func lruNet(capacity int64) *Net {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.CacheCapacityBytes = capacity
	return newNet(cfg)
}

func mustFetch(t *testing.T, n *Net, url string) FetchResult {
	t.Helper()
	res, err := n.Fetch(url, "")
	if err != nil {
		t.Fatalf("fetch %s: %v", url, err)
	}
	return res
}

func TestLRUEvictsOldest(t *testing.T) {
	n := lruNet(1000)
	for i := 0; i < 3; i++ {
		n.RegisterScript(fmt.Sprintf("https://a.com/%d.js", i), 400)
	}
	mustFetch(t, n, "https://a.com/0.js")
	mustFetch(t, n, "https://a.com/1.js")
	// Inserting a third 400B entry exceeds 1000B: entry 0 must go.
	mustFetch(t, n, "https://a.com/2.js")
	if n.Cached("https://a.com/0.js") {
		t.Fatal("oldest entry survived past capacity")
	}
	if !n.Cached("https://a.com/1.js") || !n.Cached("https://a.com/2.js") {
		t.Fatal("newer entries evicted")
	}
	if n.CacheBytes() != 800 || n.CacheEntries() != 2 {
		t.Fatalf("occupancy = %d bytes / %d entries", n.CacheBytes(), n.CacheEntries())
	}
}

func TestLRUTouchOnHitProtectsEntry(t *testing.T) {
	n := lruNet(1000)
	for i := 0; i < 3; i++ {
		n.RegisterScript(fmt.Sprintf("https://a.com/%d.js", i), 400)
	}
	mustFetch(t, n, "https://a.com/0.js")
	mustFetch(t, n, "https://a.com/1.js")
	// Hit entry 0: it becomes most recent, so inserting 2 evicts 1.
	if res := mustFetch(t, n, "https://a.com/0.js"); res.FromNet {
		t.Fatal("expected cache hit")
	}
	mustFetch(t, n, "https://a.com/2.js")
	if !n.Cached("https://a.com/0.js") {
		t.Fatal("recently used entry evicted")
	}
	if n.Cached("https://a.com/1.js") {
		t.Fatal("least recently used entry survived")
	}
}

func TestOversizedEntryNeverCached(t *testing.T) {
	n := lruNet(1000)
	n.RegisterScript("https://a.com/small.js", 300)
	n.RegisterScript("https://a.com/huge.js", 5000)
	mustFetch(t, n, "https://a.com/small.js")
	mustFetch(t, n, "https://a.com/huge.js")
	if n.Cached("https://a.com/huge.js") {
		t.Fatal("oversized entry cached")
	}
	if !n.Cached("https://a.com/small.js") {
		t.Fatal("oversized miss evicted existing entries")
	}
}

func TestEvictByFillingIsThePaperFlushPhase(t *testing.T) {
	// The attacker cannot call EvictAll; it evicts the victim's entry by
	// loading enough filler.
	n := lruNet(10_000)
	n.RegisterScript("https://victim.com/secret.js", 2000)
	mustFetch(t, n, "https://victim.com/secret.js")
	for i := 0; i < 5; i++ {
		url := fmt.Sprintf("https://attacker.com/fill%d.js", i)
		n.RegisterScript(url, 2000)
		mustFetch(t, n, url)
	}
	if n.Cached("https://victim.com/secret.js") {
		t.Fatal("filler did not evict the victim entry")
	}
	// The probe now takes the network path: the timing signal.
	if res := mustFetch(t, n, "https://victim.com/secret.js"); !res.FromNet {
		t.Fatal("probe after eviction should miss")
	}
}

func TestEvictUnknownURLNoop(t *testing.T) {
	n := lruNet(1000)
	n.Evict("https://nowhere/x.js") // must not panic
	if n.CacheEntries() != 0 {
		t.Fatal("phantom entry")
	}
}

func TestWarmRespectsCapacity(t *testing.T) {
	n := lruNet(500)
	n.RegisterScript("https://a.com/big.js", 600)
	n.Warm("https://a.com/big.js")
	if n.Cached("https://a.com/big.js") {
		t.Fatal("warm ignored capacity")
	}
	n.Warm("https://a.com/unregistered.js")
	if n.CacheEntries() != 0 {
		t.Fatal("warm cached an unregistered URL")
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	n := lruNet(0)
	for i := 0; i < 50; i++ {
		url := fmt.Sprintf("https://a.com/%d.js", i)
		n.RegisterScript(url, 1_000_000)
		mustFetch(t, n, url)
	}
	if n.CacheEntries() != 50 {
		t.Fatalf("entries = %d, want all 50", n.CacheEntries())
	}
}

// TestPropertyLRUInvariants: occupancy equals the sum of cached entries
// and never exceeds capacity, under random fetch sequences.
func TestPropertyLRUInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		const capacity = 2000
		n := lruNet(capacity)
		for i := 0; i < 8; i++ {
			n.RegisterScript(fmt.Sprintf("https://a.com/%d.js", i), int64(200+i*150))
		}
		for _, op := range ops {
			url := fmt.Sprintf("https://a.com/%d.js", op%8)
			if op%16 == 15 {
				n.Evict(url)
				continue
			}
			if _, err := n.Fetch(url, ""); err != nil {
				return false
			}
			if n.CacheBytes() > capacity {
				return false
			}
		}
		// Occupancy must equal the sum of sizes of cached entries.
		var sum int64
		for i := 0; i < 8; i++ {
			url := fmt.Sprintf("https://a.com/%d.js", i)
			if n.Cached(url) {
				r, err := n.Lookup(url)
				if err != nil {
					return false
				}
				sum += r.Bytes
			}
		}
		return sum == n.CacheBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
