package webnet

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"jskernel/internal/sim"
)

func newNet(cfg Config) *Net { return New(cfg, rand.New(rand.NewSource(1))) }

func TestOriginOf(t *testing.T) {
	cases := []struct{ url, want string }{
		{"https://example.com/a/b.js", "https://example.com"},
		{"https://example.com", "https://example.com"},
		{"http://a.b.c/x", "http://a.b.c"},
		{"./relative.js", ""},
		{"relative.js", ""},
	}
	for _, tc := range cases {
		if got := OriginOf(tc.url); got != tc.want {
			t.Errorf("OriginOf(%q) = %q, want %q", tc.url, got, tc.want)
		}
	}
}

func TestSameOrigin(t *testing.T) {
	if !SameOrigin("https://a.com/x", "https://a.com/y") {
		t.Fatal("same host should be same origin")
	}
	if SameOrigin("https://a.com/x", "https://b.com/x") {
		t.Fatal("different hosts should differ")
	}
	if !SameOrigin("./x.js", "https://a.com/") {
		t.Fatal("relative URL is same-origin with requester")
	}
}

func TestLookupNotFound(t *testing.T) {
	n := newNet(DefaultConfig())
	_, err := n.Lookup("https://nowhere/x")
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want NotFoundError", err)
	}
}

func TestFetchCacheBehaviour(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	n := newNet(cfg)
	n.RegisterScript("https://cdn.com/big.js", 1_000_000)

	first, err := n.Fetch("https://cdn.com/big.js", "https://site.com")
	if err != nil {
		t.Fatal(err)
	}
	if !first.FromNet {
		t.Fatal("first fetch should hit the network")
	}
	second, err := n.Fetch("https://cdn.com/big.js", "https://site.com")
	if err != nil {
		t.Fatal(err)
	}
	if second.FromNet {
		t.Fatal("second fetch should be cached")
	}
	if second.Latency >= first.Latency {
		t.Fatalf("cache hit latency %v not faster than miss %v", second.Latency, first.Latency)
	}
	n.EvictAll()
	third, err := n.Fetch("https://cdn.com/big.js", "https://site.com")
	if err != nil {
		t.Fatal(err)
	}
	if !third.FromNet {
		t.Fatal("fetch after eviction should hit the network")
	}
}

func TestFetchLatencyScalesWithSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.EnableCaching = false
	n := newNet(cfg)
	n.RegisterScript("https://cdn.com/small.js", 10_000)
	n.RegisterScript("https://cdn.com/large.js", 10_000_000)
	small, err := n.Fetch("https://cdn.com/small.js", "")
	if err != nil {
		t.Fatal(err)
	}
	large, err := n.Fetch("https://cdn.com/large.js", "")
	if err != nil {
		t.Fatal(err)
	}
	if large.Latency <= small.Latency {
		t.Fatalf("large %v should be slower than small %v", large.Latency, small.Latency)
	}
	// 10MB over 9.5Mbit/s is ~8.4s; check the model's order of magnitude.
	if large.Latency < 5*sim.Second || large.Latency > 15*sim.Second {
		t.Fatalf("10MB transfer latency %v outside plausible ADSL range", large.Latency)
	}
}

func TestFetchOpaqueCrossOrigin(t *testing.T) {
	n := newNet(DefaultConfig())
	n.RegisterScript("https://other.com/s.js", 100)
	res, err := n.Fetch("https://other.com/s.js", "https://attacker.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatal("cross-origin fetch should be opaque")
	}
	same, err := n.Fetch("https://other.com/s.js", "https://other.com")
	if err != nil {
		t.Fatal(err)
	}
	if same.Opaque {
		t.Fatal("same-origin fetch should not be opaque")
	}
}

func TestJitterIsSeeded(t *testing.T) {
	run := func(seed int64) sim.Duration {
		n := New(DefaultConfig(), rand.New(rand.NewSource(seed)))
		n.RegisterScript("https://a.com/s.js", 500_000)
		res, err := n.Fetch("https://a.com/s.js", "")
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	if run(5) != run(5) {
		t.Fatal("same seed should give identical latency")
	}
	if run(5) == run(6) {
		t.Fatal("different seeds should jitter differently")
	}
}

func TestWarmAndEvict(t *testing.T) {
	n := newNet(DefaultConfig())
	n.RegisterImage("https://a.com/i.png", 100, 100)
	n.Warm("https://a.com/i.png")
	if !n.Cached("https://a.com/i.png") {
		t.Fatal("warm did not cache")
	}
	n.Evict("https://a.com/i.png")
	if n.Cached("https://a.com/i.png") {
		t.Fatal("evict did not evict")
	}
}

func TestCachingDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableCaching = false
	n := newNet(cfg)
	n.RegisterScript("https://a.com/s.js", 100)
	if _, err := n.Fetch("https://a.com/s.js", ""); err != nil {
		t.Fatal(err)
	}
	if n.Cached("https://a.com/s.js") {
		t.Fatal("cache should stay empty when disabled")
	}
	n.Warm("https://a.com/s.js")
	if n.Cached("https://a.com/s.js") {
		t.Fatal("warm should be a no-op when caching disabled")
	}
}

func TestRegisterHelpers(t *testing.T) {
	n := newNet(DefaultConfig())
	img := n.RegisterImage("https://a.com/i.png", 640, 480)
	if img.Kind != KindImage || img.Width != 640 || img.Height != 480 {
		t.Fatalf("image = %+v", img)
	}
	js := n.RegisterJSON("https://a.com/d.json", `{"x":1}`)
	if js.Kind != KindJSON || js.Bytes != 7 {
		t.Fatalf("json = %+v", js)
	}
	if n.ResourceCount() != 2 {
		t.Fatalf("count = %d", n.ResourceCount())
	}
	if img.Origin != "https://a.com" {
		t.Fatalf("origin = %q", img.Origin)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindHTML: "html", KindScript: "script", KindImage: "image",
		KindJSON: "json", KindVideo: "video", KindFont: "font", Kind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestPropertyTransferTimeMonotoneInSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.EnableCaching = false
	n := newNet(cfg)
	f := func(a, b uint32) bool {
		sa, sb := int64(a%50_000_000), int64(b%50_000_000)
		n.RegisterScript("https://x.com/a.js", sa)
		n.RegisterScript("https://x.com/b.js", sb)
		ra, err := n.Fetch("https://x.com/a.js", "")
		if err != nil {
			return false
		}
		rb, err := n.Fetch("https://x.com/b.js", "")
		if err != nil {
			return false
		}
		if sa <= sb {
			return ra.Latency <= rb.Latency
		}
		return ra.Latency >= rb.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
