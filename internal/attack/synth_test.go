package attack

import (
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/vuln"
	"jskernel/internal/webnet"
)

// This file closes the loop on the paper's future work: record an exploit
// against the undefended browser, synthesize a policy from the trace, and
// verify the synthesized policy actually defends a fresh browser against
// the same exploit — for every modeled CVE.

// recordExploit runs the exploit on legacy Chrome with a trace recorder.
func recordExploit(t *testing.T, a *CVEAttack, private bool, seed int64) []browser.TraceEvent {
	t.Helper()
	s := sim.New(seed)
	s.MaxSteps = 10_000_000
	cfg := webnet.DefaultConfig()
	cfg.JitterFrac = 0
	net := webnet.New(cfg, s.Rand())
	reg := vuln.NewRegistry()
	rec := &browser.Recorder{}
	b := browser.New(s, browser.Options{Net: net, PrivateMode: private, Tracer: reg})
	b.AddTracer(rec)
	b.Origin = "https://site.example"
	env := &defense.Env{Defense: defense.Chrome(), Sim: s, Browser: b, Registry: reg}
	if err := a.Exploit(env); err != nil {
		t.Fatalf("exploit on legacy: %v", err)
	}
	if !reg.Exploited(a.CVE) {
		t.Fatalf("%s did not trigger on the recording run", a.CVE)
	}
	return rec.Events()
}

// envWithPolicy builds a kernelized environment under an arbitrary policy.
func envWithPolicy(p kernel.Policy, private bool, seed int64) *defense.Env {
	s := sim.New(seed)
	s.MaxSteps = 10_000_000
	cfg := webnet.DefaultConfig()
	cfg.JitterFrac = 0
	net := webnet.New(cfg, s.Rand())
	reg := vuln.NewRegistry()
	shared := kernel.NewShared(p)
	b := browser.New(s, browser.Options{
		Net: net, PrivateMode: private, Tracer: reg, InstallScope: shared.Install,
	})
	b.Origin = "https://site.example"
	return &defense.Env{Defense: defense.JSKernel("chrome"), Sim: s, Browser: b, Registry: reg, Kernel: shared}
}

func TestSynthesizedPoliciesDefendEveryCVE(t *testing.T) {
	for _, a := range CVEAttacks() {
		a := a
		t.Run(string(a.CVE), func(t *testing.T) {
			t.Parallel()
			private := a.CVE == vuln.CVE20177843

			// 1. Record the exploit against the undefended browser.
			trace := recordExploit(t, a, private, 11)

			// 2. Synthesize a policy from the trace alone.
			spec, findings, err := policy.Synthesize("synth-"+string(a.CVE), trace)
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			if len(findings) == 0 || len(spec.Rules) == 0 {
				t.Fatal("synthesizer produced no rules")
			}
			for _, f := range findings {
				if f.Analysis == "" || f.Rule.Reason == "" {
					t.Errorf("finding lacks explanation: %+v", f)
				}
			}

			// 3. The synthesized policy must defend a fresh browser.
			env := envWithPolicy(spec, private, 12)
			if err := a.Exploit(env); err != nil {
				// Policy-mediated failures of the exploit's own calls are
				// fine — the exploit being unable to run is a defense.
				t.Logf("exploit under synthesized policy: %v", err)
			}
			if env.Registry.Exploited(a.CVE) {
				t.Fatalf("%s still triggered under the synthesized policy %v", a.CVE, spec.Rules)
			}
		})
	}
}

// TestSynthesizeRejectsBenignTrace: a trace with no dangerous condition
// must not produce a policy.
func TestSynthesizeRejectsBenignTrace(t *testing.T) {
	benign := []browser.TraceEvent{
		{Kind: browser.TraceWorkerCreated, WorkerID: 1},
		{Kind: browser.TracePostMessage, Detail: "to-worker"},
		{Kind: browser.TraceMessageDelivered, Detail: "to-worker"},
		{Kind: browser.TraceWorkerTerminated, Detail: ""},
	}
	if _, _, err := policy.Synthesize("x", benign); err == nil {
		t.Fatal("benign trace should synthesize nothing")
	}
}

// TestSynthesizeDeduplicates: repeated trigger events yield one rule.
func TestSynthesizeDeduplicates(t *testing.T) {
	trace := []browser.TraceEvent{
		{Kind: browser.TraceXHR, Detail: "cross-origin-worker"},
		{Kind: browser.TraceXHR, Detail: "cross-origin-worker"},
		{Kind: browser.TraceXHR, Detail: "cross-origin-worker"},
	}
	spec, findings, err := policy.Synthesize("dedup", trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 1 || len(findings) != 1 {
		t.Fatalf("rules = %d, findings = %d; want 1 each", len(spec.Rules), len(findings))
	}
}

// TestSynthesizedCombinedPolicy: one synthesis over all twelve exploit
// traces yields a policy equivalent in coverage to the handwritten
// FullDefense.
func TestSynthesizedCombinedPolicy(t *testing.T) {
	var combined []browser.TraceEvent
	for _, a := range CVEAttacks() {
		private := a.CVE == vuln.CVE20177843
		combined = append(combined, recordExploit(t, a, private, 31)...)
	}
	spec, _, err := policy.Synthesize("synth-all", combined)
	if err != nil {
		t.Fatal(err)
	}
	// Every CVE must be defended by the single combined policy.
	for _, a := range CVEAttacks() {
		private := a.CVE == vuln.CVE20177843
		env := envWithPolicy(spec, private, 33)
		_ = a.Exploit(env)
		if env.Registry.Exploited(a.CVE) {
			t.Errorf("%s not covered by the combined synthesized policy", a.CVE)
		}
	}
}
