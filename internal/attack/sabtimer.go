package attack

import (
	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
)

// This file implements an extension beyond Table I: the SharedArrayBuffer
// fine-grained timer of Schwarz et al.'s "Fantastic Timers" [12]. A worker
// increments a shared counter in a tight loop; the main thread reads the
// counter around a secret operation, turning shared memory into a clock
// far finer than any timer API. The paper notes SAB was "rarely used and
// currently disabled in many browsers due to Spectre" (§III-E2); the
// kernel's serializing queue coarsens the channel, and the
// DisableSharedBuffers hardening policy closes it outright.

// ChannelSABDelta is the SAB counter delta observed across the secret op.
const ChannelSABDelta = "sab-delta"

// sabCounterSrc is the incrementing worker.
const sabCounterSrc = "__sab_counter_worker.js"

// SABTimerAttack measures a secret-dependent synchronous operation with a
// worker-incremented shared counter.
func SABTimerAttack() *TimingAttack {
	costs := [2]sim.Duration{2 * sim.Millisecond, 40 * sim.Millisecond}
	return &TimingAttack{
		ID:         "sab-timer",
		Label:      "SAB Timer [12] (extension)",
		ClockGroup: "extension",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			b := env.Browser
			b.RegisterWorkerScript(sabCounterSrc, func(g *browser.Global) {
				g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
					buf := m.Transfer
					if buf == nil {
						return
					}
					// Tight increment loop, rescheduled so the thread's
					// event loop stays live. Each batch bumps the counter
					// in real time.
					var pump func(gg2 *browser.Global)
					pump = func(gg2 *browser.Global) {
						v, err := gg2.SharedBufferRead(buf, 0)
						if err != nil {
							return // hardened configuration: channel closed
						}
						for i := 0; i < 50; i++ {
							v++
							if err := gg2.SharedBufferWrite(buf, 0, v); err != nil {
								return
							}
							gg2.Busy(20 * sim.Microsecond)
						}
						gg2.SetTimeout(pump, 0)
					}
					pump(gg)
				})
			})

			res := make(map[string]float64)
			done := false
			var startErr error
			b.RunScript("sab-timer", func(g *browser.Global) {
				buf := g.NewSharedBuffer(2)
				w, err := g.NewWorker(sabCounterSrc)
				if err != nil {
					startErr = errSkip("sab-timer", err)
					return
				}
				w.PostMessageTransfer("start", buf)
				g.SetTimeout(func(gg *browser.Global) {
					before, err1 := gg.SharedBufferRead(buf, 0)
					gg.Busy(costs[variant]) // the secret
					// The closing read runs in the next task, after the
					// worker's concurrent increments have landed.
					gg.SetTimeout(func(g3 *browser.Global) {
						after, err2 := g3.SharedBufferRead(buf, 0)
						if err1 != nil || err2 != nil {
							startErr = errSkip("sab-timer", err1)
							if err1 == nil {
								startErr = errSkip("sab-timer", err2)
							}
							return
						}
						res[ChannelSABDelta] = float64(after - before)
						done = true
					}, 0)
				}, 60*sim.Millisecond)
			})
			if err := b.RunFor(2 * sim.Second); err != nil {
				return nil, err
			}
			if startErr != nil {
				return nil, startErr
			}
			if !done {
				return nil, errSkip("sab-timer", errHorizon)
			}
			return res, nil
		},
	}
}

// ExtensionAttacks returns attacks beyond the paper's Table I rows.
func ExtensionAttacks() []*TimingAttack {
	return []*TimingAttack{SABTimerAttack()}
}
