package attack

import (
	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/dom"
)

// This file exposes the exact measurements Table II of the paper reports:
// the averaged image loading time of the SVG filtering attack (low/high
// resolution) and the maximum measured event interval of the Loopscan
// attack (google/youtube), both in milliseconds as observed through the
// attacker's implicit tick-loop clock (1 tick ≈ 1ms).

// MeasureSVGLoadMs loads a dim×dim cross-origin image, applies the SVG
// erode filter on arrival, and returns the attacker-measured loading time
// in milliseconds.
func MeasureSVGLoadMs(env *defense.Env, dim int) (float64, error) {
	url := "https://victim.example/probe.png"
	env.Browser.Net.RegisterImage(url, dim, dim)
	vals, err := measureAsyncOp(env, func(g *browser.Global, done func(*browser.Global)) {
		g.LoadImage(url, func(gg *browser.Global, el *dom.Element) {
			gg.ApplySVGFilter(el, "feMorphology:erode")
			done(gg)
		}, func(gg *browser.Global) { done(gg) })
	}, shortHorizon)
	if err != nil {
		return 0, err
	}
	// One tick of the setTimeout chain is one timer-clamp period ≈ 1ms.
	return vals[ChannelTickLoop], nil
}

// MeasureScriptParseMs loads a cross-origin script of the given size and
// returns the attacker-reported loading time in milliseconds via the
// setTimeout implicit clock — the measurement Figure 2 sweeps over file
// sizes.
func MeasureScriptParseMs(env *defense.Env, bytes int64) (float64, error) {
	url := "https://victim.example/payload.js"
	env.Browser.Net.RegisterScript(url, bytes)
	vals, err := measureAsyncOp(env, func(g *browser.Global, done func(*browser.Global)) {
		g.LoadScript(url, func(gg *browser.Global) { done(gg) }, func(gg *browser.Global) { done(gg) })
	}, longHorizon)
	if err != nil {
		return 0, err
	}
	return vals[ChannelTickLoop], nil
}

// MeasureLoopscanGapMs returns the maximum event interval the Loopscan
// attacker observes while the named site's load pattern runs, in
// milliseconds, through the attacker's best available channel: implicit
// worker ticks when a real worker exists, the explicit clock otherwise
// (how the attack still reports values under Chrome Zero's polyfill).
func MeasureLoopscanGapMs(env *defense.Env, site string) (float64, error) {
	vals, err := measureLoopscan(env, site)
	if err != nil {
		return 0, err
	}
	// A usable worker clock ticks roughly once per millisecond over the
	// ~900ms observation window; below that resolution the attacker
	// switches to the explicit clock.
	if vals[channelTickTotal] >= 400 {
		return vals[ChannelMaxGap], nil // one worker tick ≈ 1ms
	}
	return vals[ChannelPerfNow], nil
}
