package attack

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
	"jskernel/internal/vuln"
)

// This file implements exploit drivers for the twelve web-concurrency
// CVEs of Table I's lower half. Each driver reproduces the triggering
// invocation sequence the NVD entry (and the paper's §IV-B discussion)
// describes; whether the native layer actually reached the vulnerable
// state is decided by the vulnerability registry attached to the
// environment.

// cveHorizon bounds each exploit's virtual runtime.
const cveHorizon = 5 * sim.Second

// runFor drives the environment and normalizes simulator errors.
func runFor(env *defense.Env, d sim.Duration) error {
	return env.Browser.RunFor(d)
}

// CVE20185092 reproduces Listing 2: a worker fetch, a false worker
// termination, then an abort signal into the freed request.
func CVE20185092() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20185092,
		Label: "CVE-2018-5092",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.Net.RegisterScript("https://site.example/fetchedfile0.html", 3_000_000)
			var ctl *browser.AbortController
			b.RegisterWorkerScript("uaf-fetcher.js", func(g *browser.Global) {
				ctl = g.NewAbortController()
				g.Fetch("https://site.example/fetchedfile0.html",
					browser.FetchOptions{Signal: ctl.Signal()},
					func(*browser.Response, error) {})
				g.PostMessage("fetch-started")
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				w, err := g.NewWorker("uaf-fetcher.js")
				if err != nil {
					werr = err
					return
				}
				w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {
					w.Terminate() // false termination while the fetch is pending
					if ctl != nil {
						ctl.Abort() // abort into freed state
					}
				})
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20177843 writes IndexedDB state in private browsing; persistence
// after the session is the fingerprinting disclosure.
func CVE20177843() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20177843,
		Label: "CVE-2017-7843",
		Exploit: func(env *defense.Env) error {
			var werr error
			env.Browser.RunScript("exploit", func(g *browser.Global) {
				store, err := g.IndexedDBOpen("supercookie")
				if err != nil {
					werr = err
					return
				}
				werr = store.Put("uid", "fp-3f9a")
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// privateEvaluate overrides CVEAttack evaluation for CVE-2017-7843: the
// browser must be in private browsing.
func (a *CVEAttack) evaluateWithOptions(d defense.Defense, opts defense.EnvOptions) Outcome {
	env := d.NewEnv(opts)
	err := a.Exploit(env)
	exploited := env.Registry.Exploited(a.CVE)
	return Outcome{
		AttackID:  string(a.CVE),
		DefenseID: d.ID,
		Defended:  !exploited,
		Exploited: exploited,
		Err:       err,
	}
}

// CVE20157215 mines the importScripts error message for cross-origin URL
// details.
func CVE20157215() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20157215,
		Label: "CVE-2015-7215",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.RegisterWorkerScript("leak-import.js", func(g *browser.Global) {
				// The target URL does not exist; the vulnerable error text
				// discloses how it resolved.
				_ = g.ImportScripts("https://victim.example/private/resource.js")
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				if _, err := g.NewWorker("leak-import.js"); err != nil {
					werr = err
				}
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20143194 races a worker and the main thread on a shared buffer.
func CVE20143194() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20143194,
		Label: "CVE-2014-3194",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.RegisterWorkerScript("racer.js", func(g *browser.Global) {
				g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
					if m.Transfer == nil {
						return
					}
					// A sustained write burst spanning several milliseconds,
					// so it overlaps the main thread's accesses.
					for i := 0; i < 100; i++ {
						_ = gg.SharedBufferWrite(m.Transfer, 0, int64(i))
						gg.Busy(50 * sim.Microsecond)
					}
				})
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				buf := g.NewSharedBuffer(2)
				w, err := g.NewWorker("racer.js")
				if err != nil {
					werr = err
					return
				}
				w.PostMessageTransfer("go", buf)
				n := 0
				var hammer func(gg *browser.Global)
				hammer = func(gg *browser.Global) {
					_, _ = gg.SharedBufferRead(buf, 0)
					_ = gg.SharedBufferWrite(buf, 1, int64(n))
					if n++; n < 30 {
						gg.SetTimeout(hammer, 0)
					}
				}
				hammer(g)
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20141719 terminates a worker while messages to it are still in
// flight.
func CVE20141719() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20141719,
		Label: "CVE-2014-1719",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.RegisterWorkerScript("sink.js", func(g *browser.Global) {
				g.SetOnMessage(func(*browser.Global, browser.MessageEvent) {})
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				w, err := g.NewWorker("sink.js")
				if err != nil {
					werr = err
					return
				}
				for i := 0; i < 10; i++ {
					w.PostMessage(i)
				}
				w.Terminate() // in-flight messages reference freed state
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20141488 transfers a buffer out of a worker, terminates the worker,
// then uses the buffer from the main thread.
func CVE20141488() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20141488,
		Label: "CVE-2014-1488",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.RegisterWorkerScript("transfer-out.js", func(g *browser.Global) {
				buf := g.NewSharedBuffer(8)
				_ = g.SharedBufferWrite(buf, 0, 42)
				_ = g.TransferToParent("asm-buf", buf)
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				w, err := g.NewWorker("transfer-out.js")
				if err != nil {
					werr = err
					return
				}
				w.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
					if m.Transfer == nil {
						return
					}
					w.Terminate() // frees the buffer with the worker
					_, _ = gg.SharedBufferRead(m.Transfer, 0)
				})
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20141487 reads the error message of a cross-origin worker creation.
func CVE20141487() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20141487,
		Label: "CVE-2014-1487",
		Exploit: func(env *defense.Env) error {
			var werr error
			env.Browser.RunScript("exploit", func(g *browser.Global) {
				if _, err := g.NewWorker("https://victim.example/internal/worker.js"); err == nil {
					werr = fmt.Errorf("cross-origin worker creation unexpectedly succeeded")
				}
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20136646 drops the worker handle (GC) while a reply is in flight.
func CVE20136646() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20136646,
		Label: "CVE-2013-6646",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.RegisterWorkerScript("replier.js", func(g *browser.Global) {
				g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
					// A burst of replies: later ones are still in flight
					// while the first is being handled.
					for i := 0; i < 10; i++ {
						gg.PostMessage(i)
					}
				})
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				w, err := g.NewWorker("replier.js")
				if err != nil {
					werr = err
					return
				}
				released := false
				w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {
					if !released {
						released = true
						// Drop the handle while the rest of the burst is in
						// flight — the GC race.
						w.Release()
					}
				})
				w.PostMessage("poke")
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20135602 assigns onmessage to a terminated worker.
func CVE20135602() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20135602,
		Label: "CVE-2013-5602",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.RegisterWorkerScript("victim.js", func(g *browser.Global) {})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				w, err := g.NewWorker("victim.js")
				if err != nil {
					werr = err
					return
				}
				g.SetTimeout(func(*browser.Global) {
					w.Terminate()
					w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {})
				}, 5*sim.Millisecond)
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20131714 sends a cross-origin XHR from a worker.
func CVE20131714() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20131714,
		Label: "CVE-2013-1714",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.Net.RegisterJSON("https://victim.example/api/session", `{"token":"s3cr3t"}`)
			b.RegisterWorkerScript("sop-bypass.js", func(g *browser.Global) {
				_, _ = g.XHR("https://victim.example/api/session")
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				if _, err := g.NewWorker("sop-bypass.js"); err != nil {
					werr = err
				}
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20111190 reads the worker's location after a cross-origin redirect.
func CVE20111190() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20111190,
		Label: "CVE-2011-1190",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.SetRedirect("app-worker.js", "https://tracker.example/real.js")
			b.RegisterWorkerScript("app-worker.js", func(g *browser.Global) {
				_ = g.WorkerLocation()
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				if _, err := g.NewWorker("app-worker.js"); err != nil {
					werr = err
				}
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVE20104576 tears down the document while a worker reply is en route.
func CVE20104576() *CVEAttack {
	return &CVEAttack{
		CVE:   vuln.CVE20104576,
		Label: "CVE-2010-4576",
		Exploit: func(env *defense.Env) error {
			b := env.Browser
			b.RegisterWorkerScript("late-reply.js", func(g *browser.Global) {
				g.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
					gg.PostMessage("late")
				})
			})
			var werr error
			b.RunScript("exploit", func(g *browser.Global) {
				w, err := g.NewWorker("late-reply.js")
				if err != nil {
					werr = err
					return
				}
				w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {})
				g.SetTimeout(func(gg *browser.Global) {
					gg.Browser().TearDownDocument()
					w.PostMessage("poke") // reply arrives after teardown
				}, 5*sim.Millisecond)
			})
			if err := runFor(env, cveHorizon); err != nil {
				return err
			}
			return werr
		},
	}
}

// CVEAttacks returns the twelve Table I CVE rows in paper order.
func CVEAttacks() []*CVEAttack {
	return []*CVEAttack{
		CVE20185092(), CVE20177843(), CVE20157215(), CVE20143194(),
		CVE20141719(), CVE20141488(), CVE20141487(), CVE20136646(),
		CVE20135602(), CVE20131714(), CVE20111190(), CVE20104576(),
	}
}

// RequiresPrivateMode reports whether this CVE's exploit only makes
// sense in private browsing (CVE-2017-7843's precondition). Callers
// that build environments directly — schedule exploration, the service
// layer — must mirror EvaluateCVE and set EnvOptions.PrivateMode.
func (a *CVEAttack) RequiresPrivateMode() bool {
	return a.CVE == vuln.CVE20177843
}

// EvaluateCVE runs one CVE attack under a defense, handling the
// private-browsing precondition of CVE-2017-7843.
func EvaluateCVE(a *CVEAttack, d defense.Defense, baseSeed int64) Outcome {
	opts := defense.EnvOptions{Seed: baseSeed + 1}
	if a.RequiresPrivateMode() {
		opts.PrivateMode = true
	}
	return a.evaluateWithOptions(d, opts)
}
