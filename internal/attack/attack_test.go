package attack

import (
	"testing"

	"jskernel/internal/defense"
)

// testReps keeps unit-test latency reasonable; the full experiments use
// attack.Reps.
const testReps = 5

func evalTiming(t *testing.T, a *TimingAttack, d defense.Defense) Outcome {
	t.Helper()
	return a.Evaluate(d, testReps, 1000)
}

// TestAllTimingAttacksLeakOnLegacyChrome verifies the attacks themselves:
// every Table I timing row must actually work against an undefended
// browser, or the defense evaluation is vacuous.
func TestAllTimingAttacksLeakOnLegacyChrome(t *testing.T) {
	for _, a := range TimingAttacks() {
		a := a
		t.Run(a.ID, func(t *testing.T) {
			t.Parallel()
			out := evalTiming(t, a, defense.Chrome())
			if out.Defended {
				t.Fatalf("%s did not leak on legacy Chrome; channels: %+v", a.ID, out.Channels)
			}
		})
	}
}

// TestAllTimingAttacksDefendedByJSKernel is the paper's core claim: the
// kernel's deterministic scheduling closes every implicit-clock channel.
func TestAllTimingAttacksDefendedByJSKernel(t *testing.T) {
	for _, a := range TimingAttacks() {
		a := a
		t.Run(a.ID, func(t *testing.T) {
			t.Parallel()
			out := evalTiming(t, a, defense.JSKernel("chrome"))
			if !out.Defended {
				best := out.BestChannel()
				t.Fatalf("%s leaked under JSKernel via %s: meanA=%v meanB=%v d=%v",
					a.ID, best.Channel, best.MeanA, best.MeanB, best.CohensD)
			}
		})
	}
}

// TestAllCVEsExploitableOnLegacy verifies every exploit driver actually
// reaches its trigger on an undefended browser.
func TestAllCVEsExploitableOnLegacy(t *testing.T) {
	for _, a := range CVEAttacks() {
		a := a
		t.Run(string(a.CVE), func(t *testing.T) {
			t.Parallel()
			out := EvaluateCVE(a, defense.Chrome(), 2000)
			if out.Err != nil {
				t.Fatalf("exploit error: %v", out.Err)
			}
			if !out.Exploited {
				t.Fatalf("%s did not trigger on legacy Chrome", a.CVE)
			}
		})
	}
}

// TestAllCVEsDefendedByJSKernel: the kernel's policies break every
// triggering sequence.
func TestAllCVEsDefendedByJSKernel(t *testing.T) {
	for _, a := range CVEAttacks() {
		a := a
		t.Run(string(a.CVE), func(t *testing.T) {
			t.Parallel()
			out := EvaluateCVE(a, defense.JSKernel("chrome"), 2000)
			if out.Exploited {
				t.Fatalf("%s triggered despite JSKernel", a.CVE)
			}
		})
	}
}

// TestDeterFoxDefendsTimingButNotCVEs captures DeterFox's position in
// Table I: determinism defeats the implicit clocks, but without the
// kernel's policies the CVE rows stay exploitable.
func TestDeterFoxDefendsTimingButNotCVEs(t *testing.T) {
	t.Parallel()
	for _, a := range []*TimingAttack{SVGFilteringAttack(), ScriptParsingAttack()} {
		out := evalTiming(t, a, defense.DeterFox())
		if !out.Defended {
			best := out.BestChannel()
			t.Errorf("%s leaked under DeterFox via %s (d=%v)", a.ID, best.Channel, best.CohensD)
		}
	}
	exploited := 0
	for _, a := range CVEAttacks() {
		if EvaluateCVE(a, defense.DeterFox(), 2000).Exploited {
			exploited++
		}
	}
	if exploited < 8 {
		t.Errorf("only %d/12 CVEs exploitable under DeterFox; expected most (no policies)", exploited)
	}
}

// TestFuzzyfoxDefendsClockEdgeOnly reflects the paper's finding that fuzzy
// time defeats clock-edge calibration but large secrets survive averaging.
func TestFuzzyfoxDefendsClockEdgeOnly(t *testing.T) {
	t.Parallel()
	if out := evalTiming(t, ClockEdgeAttack(), defense.Fuzzyfox()); !out.Defended {
		best := out.BestChannel()
		t.Errorf("clock edge leaked under Fuzzyfox (d=%v via %s)", best.CohensD, best.Channel)
	}
	if out := evalTiming(t, ScriptParsingAttack(), defense.Fuzzyfox()); out.Defended {
		t.Error("script parsing should survive Fuzzyfox's noise via averaging")
	}
}

// TestTorVulnerableToImplicitClocks: coarse explicit clocks do nothing
// against implicit ones.
func TestTorVulnerableToImplicitClocks(t *testing.T) {
	t.Parallel()
	for _, a := range []*TimingAttack{SVGFilteringAttack(), LoopscanAttack(), CacheAttack()} {
		out := evalTiming(t, a, defense.TorBrowser())
		if out.Defended {
			t.Errorf("%s should leak under Tor Browser", a.ID)
		}
	}
}

// TestChromeZeroPartialDefense: the polyfill kills the worker channel but
// the fuzzed explicit clock still leaks millisecond-scale secrets.
func TestChromeZeroPartialDefense(t *testing.T) {
	t.Parallel()
	out := evalTiming(t, SVGFilteringAttack(), defense.ChromeZero())
	if out.Defended {
		t.Error("SVG filtering should leak under Chrome Zero via the fuzzed explicit clock")
	}
	for _, c := range out.Channels {
		if c.Channel == ChannelWorkerTicks && c.Leaks {
			t.Error("worker-ticks channel should be dead under the polyfill")
		}
	}
}

// TestCriterionSensitivity: Table I's verdicts must not be an artifact of
// the Cohen's d threshold — Welch's t-test at the 1% level agrees on the
// canonical cells.
func TestCriterionSensitivity(t *testing.T) {
	t.Parallel()
	cells := []struct {
		attack  *TimingAttack
		defense defense.Defense
	}{
		{SVGFilteringAttack(), defense.Chrome()},
		{SVGFilteringAttack(), defense.JSKernel("chrome")},
		{ScriptParsingAttack(), defense.TorBrowser()},
		{CacheAttack(), defense.JSKernel("chrome")},
	}
	for _, c := range cells {
		out := c.attack.Evaluate(c.defense, testReps, 4000)
		if out.Defended != out.WelchDefended() {
			t.Errorf("%s vs %s: Cohen verdict %v but Welch verdict %v",
				c.attack.ID, c.defense.ID, out.Defended, out.WelchDefended())
		}
	}
}
