// Package attack implements every attack evaluated in the paper: the ten
// implicit-clock timing attacks of Table I's upper half (measured through
// the attacker's best available channel, exactly as a real adversary
// would) and exploit drivers for the twelve web-concurrency CVEs of its
// lower half.
//
// A timing attack succeeds against a defense when measurements of two
// secret variants remain statistically distinguishable (Cohen's d over the
// repetition budget); a CVE attack succeeds when the vulnerability
// registry observes the triggering sequence at the native layer.
package attack

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"jskernel/internal/defense"
	"jskernel/internal/stats"
	"jskernel/internal/vuln"
)

// Reps is the paper's repetition budget ("we run each test 25 times").
const Reps = 25

// TimingAttack is one implicit-clock attack row.
type TimingAttack struct {
	// ID is the machine-readable row key, e.g. "svg-filtering".
	ID string
	// Label is the row header with its paper citation, e.g. "SVG Filtering [9]".
	Label string
	// ClockGroup names the implicit clock section the row appears under in
	// Table I ("setTimeout" or "requestAnimationFrame").
	ClockGroup string
	// Measure performs one measurement of the given secret variant (0 or
	// 1) in a fresh environment, returning one value per measurement
	// channel. Returning an error marks the attack as failed-to-run
	// (counts as defended: the attacker got nothing).
	Measure func(env *defense.Env, variant int) (map[string]float64, error)
}

// CVEAttack is one web-concurrency CVE row.
type CVEAttack struct {
	CVE   vuln.CVE
	Label string
	// Exploit drives the triggering sequence in the environment. Errors
	// mean the attack could not even be attempted under this defense
	// (e.g. an API the defense removed), which counts as defended.
	Exploit func(env *defense.Env) error
}

// ChannelResult is the per-channel statistical outcome of a timing attack.
type ChannelResult struct {
	Channel string
	MeanA   float64
	MeanB   float64
	CohensD float64
	Leaks   bool
}

// Outcome is the verdict for one (attack, defense) cell of Table I.
type Outcome struct {
	AttackID  string
	DefenseID string
	Defended  bool
	// Channels holds per-channel statistics for timing attacks.
	Channels []ChannelResult
	// Samples retains the raw per-variant measurements per channel, for
	// criterion sensitivity analysis (e.g. Welch's t-test vs Cohen's d).
	Samples map[string][2][]float64
	// Exploited reports registry state for CVE attacks.
	Exploited bool
	// Err records a measurement failure, if any.
	Err error
}

// WelchDefended re-judges the outcome under Welch's t-test at the 1%
// level instead of the Cohen's d threshold.
func (o Outcome) WelchDefended() bool {
	for _, pair := range o.Samples {
		if len(pair[0]) == 0 || len(pair[1]) == 0 {
			continue
		}
		if stats.WelchDistinguishable(pair[0], pair[1]) {
			return false
		}
	}
	return true
}

// BestChannel returns the channel with the largest effect size.
func (o Outcome) BestChannel() ChannelResult {
	best := ChannelResult{}
	for _, c := range o.Channels {
		if c.CohensD >= best.CohensD {
			best = c
		}
	}
	return best
}

// RepSamples holds one repetition's per-channel, per-variant
// measurements. A single rep contributes at most one value per
// (channel, variant), so merging reps in rep order reconstructs exactly
// the sample streams a serial loop would have appended.
type RepSamples map[string][2][]float64

// MeasureRep performs one repetition of the attack — both secret
// variants, each in a fresh environment — and returns the measurements.
// Variant environments are seeded repSeedBase+variant+1, matching the
// per-(rep, variant) seed layout Evaluate has always used. This is the
// cell-sized unit of work the parallel experiment runner schedules: a
// rep touches nothing outside its own environments, so reps of the same
// (attack, defense) pair may run on different workers.
func (a *TimingAttack) MeasureRep(d defense.Defense, repSeedBase int64) RepSamples {
	samples := make(RepSamples)
	for variant := 0; variant < 2; variant++ {
		seed := repSeedBase + int64(variant) + 1
		env := d.NewEnv(defense.EnvOptions{Seed: seed})
		vals, err := a.Measure(env, variant)
		if err != nil {
			// The attack could not run under this defense (e.g. API
			// unavailable): the channel yields nothing.
			continue
		}
		for ch, v := range vals {
			if strings.HasPrefix(ch, "_") {
				// Harness metadata, not an attacker-observable value.
				continue
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			pair := samples[ch]
			// Each append target is keyed by the iteration variable, so
			// every channel's slice fills in rep order, not map order.
			//jsk:lint-ignore detmapiter append target is keyed by the range variable; per-channel order is rep order
			pair[variant] = append(pair[variant], v)
			samples[ch] = pair
		}
	}
	return samples
}

// MergeSamples concatenates per-rep sample sets in slice order. Callers
// must pass parts in rep order: that ordering — not the real-time order
// the reps finished in — is what keeps merged sample streams identical
// between serial and parallel evaluation.
func MergeSamples(parts []RepSamples) map[string][2][]float64 {
	merged := make(map[string][2][]float64)
	for _, part := range parts {
		// Channel names are sorted so the merge itself is deterministic;
		// per-channel sample order is fixed by part order alone (one value
		// per variant per rep).
		chans := make([]string, 0, len(part))
		for ch := range part {
			chans = append(chans, ch)
		}
		sort.Strings(chans)
		for _, ch := range chans {
			pair := merged[ch]
			pair[0] = append(pair[0], part[ch][0]...)
			pair[1] = append(pair[1], part[ch][1]...)
			merged[ch] = pair
		}
	}
	return merged
}

// AssembleOutcome computes the per-channel statistics and the defended
// verdict from fully merged samples.
func (a *TimingAttack) AssembleOutcome(defenseID string, samples map[string][2][]float64) Outcome {
	out := Outcome{AttackID: a.ID, DefenseID: defenseID, Defended: true, Samples: samples}
	// Walk channels in sorted order so Channels is reproducible — map
	// order would reshuffle the outcome between identical runs.
	chans := make([]string, 0, len(samples))
	for ch := range samples {
		chans = append(chans, ch)
	}
	sort.Strings(chans)
	for _, ch := range chans {
		pair := samples[ch]
		if len(pair[0]) == 0 || len(pair[1]) == 0 {
			continue
		}
		cr := ChannelResult{
			Channel: ch,
			MeanA:   stats.Mean(pair[0]),
			MeanB:   stats.Mean(pair[1]),
			CohensD: stats.CohensD(pair[0], pair[1]),
		}
		cr.Leaks = cr.CohensD >= stats.DistinguishableThreshold
		if cr.Leaks {
			out.Defended = false
		}
		out.Channels = append(out.Channels, cr)
	}
	return out
}

// Evaluate runs the timing attack against a defense with the given
// repetition budget. Each (rep, variant) pair gets a fresh environment
// with its own seed, so network jitter and fuzzing re-randomize per run —
// matching how the paper repeats and averages experiments. It is the
// serial composition of MeasureRep/MergeSamples/AssembleOutcome and its
// output is unchanged from when it was a single loop.
func (a *TimingAttack) Evaluate(d defense.Defense, reps int, baseSeed int64) Outcome {
	if reps <= 0 {
		reps = Reps
	}
	parts := make([]RepSamples, reps)
	for rep := 0; rep < reps; rep++ {
		parts[rep] = a.MeasureRep(d, baseSeed+int64(rep)*2)
	}
	return a.AssembleOutcome(d.ID, MergeSamples(parts))
}

// Evaluate runs the CVE exploit against a defense once (the trigger is
// deterministic) and consults the vulnerability registry.
func (a *CVEAttack) Evaluate(d defense.Defense, baseSeed int64) Outcome {
	env := d.NewEnv(defense.EnvOptions{Seed: baseSeed + 1})
	err := a.Exploit(env)
	exploited := env.Registry.Exploited(a.CVE)
	return Outcome{
		AttackID:  string(a.CVE),
		DefenseID: d.ID,
		Defended:  !exploited,
		Exploited: exploited,
		Err:       err,
	}
}

// errSkip marks attacks that could not start under a defense.
func errSkip(what string, err error) error {
	return fmt.Errorf("attack %s could not run: %w", what, err)
}
