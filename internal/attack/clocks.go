package attack

import (
	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
)

// This file implements the attacker's measurement channels — the implicit
// clocks of §II-A1 — and the two reusable measurement harnesses (for
// synchronous main-thread operations and for asynchronous targets).

// clockWorkerSrc is the spraying worker of Listing 1: it posts a message,
// reschedules itself, and thereby turns the parent's onmessage stream into
// a tick source that runs in parallel with main-thread work.
const clockWorkerSrc = "__implicit_clock_worker.js"

// installWorkerClock registers the Listing 1 worker.
func installWorkerClock(b *browser.Browser) {
	if b.HasWorkerScript(clockWorkerSrc) {
		return
	}
	b.RegisterWorkerScript(clockWorkerSrc, func(g *browser.Global) {
		var spray func(gg *browser.Global)
		spray = func(gg *browser.Global) {
			gg.PostMessage("tick")
			gg.SetTimeout(spray, 0) // clamped to the timer minimum
		}
		spray(g)
	})
}

// startWorkerClock spawns the spraying worker and returns the tick
// counter.
func startWorkerClock(g *browser.Global) (*int, error) {
	w, err := g.NewWorker(clockWorkerSrc)
	if err != nil {
		return nil, err
	}
	count := new(int)
	w.SetOnMessage(func(*browser.Global, browser.MessageEvent) { *count++ })
	return count, nil
}

// startTickLoop starts a main-thread setTimeout tick chain; it counts
// elapsed clamp periods while the main thread is otherwise idle (the
// "setTimeout as an implicit clock" channel).
func startTickLoop(g *browser.Global) *int {
	count := new(int)
	var tick func(gg *browser.Global)
	tick = func(gg *browser.Global) {
		*count++
		gg.SetTimeout(tick, 0)
	}
	g.SetTimeout(tick, 0)
	return count
}

// Channel names reported by the harnesses.
const (
	ChannelWorkerTicks = "worker-ticks" // parallel worker onmessage count
	ChannelTickLoop    = "tick-loop"    // setTimeout chain count
	ChannelPerfNow     = "perf-now"     // explicit performance.now delta
	ChannelEdgePad     = "edge-pad"     // clock-edge padding count
	ChannelFrames      = "anim-frames"  // CSS animation frame count
	ChannelCues        = "video-cues"   // WebVTT cue count
	ChannelMaxGap      = "max-gap"      // loopscan maximum event interval
)

// channelTickTotal carries the worker clock's total tick count, used to
// judge whether the implicit channel has usable resolution. The leading
// underscore marks it as harness metadata (the attacker has no wall clock
// to normalize totals against), so Evaluate skips it.
const channelTickTotal = "_tick-total"

// warmupDelay lets tick sources reach steady state before measuring.
const warmupDelay = 60 * sim.Millisecond

// measureSyncOp measures a synchronous main-thread operation through the
// attacker's two channels: the parallel worker clock (implicit) and
// performance.now (explicit). op runs once inside a single task.
func measureSyncOp(env *defense.Env, op func(*browser.Global), horizon sim.Duration) (map[string]float64, error) {
	b := env.Browser
	installWorkerClock(b)
	res := make(map[string]float64)
	var startErr error
	done := false
	b.RunScript("measure-sync", func(g *browser.Global) {
		cnt, err := startWorkerClock(g)
		if err != nil {
			startErr = errSkip("sync-op", err)
			return
		}
		g.SetTimeout(func(gg *browser.Global) {
			startTicks := *cnt
			startNow := gg.PerformanceNow()
			op(gg)
			endNow := gg.PerformanceNow()
			// Queued worker ticks (those that arrived while op blocked the
			// thread) drain before this closing timeout.
			gg.SetTimeout(func(*browser.Global) {
				res[ChannelWorkerTicks] = float64(*cnt - startTicks)
				res[ChannelPerfNow] = endNow - startNow
				done = true
			}, 0)
		}, warmupDelay)
	})
	if err := b.RunFor(horizon); err != nil {
		return nil, err
	}
	if startErr != nil {
		return nil, startErr
	}
	if !done {
		return nil, errSkip("sync-op", errHorizon)
	}
	return res, nil
}

// errHorizon reports a measurement that did not finish within its horizon.
var errHorizon = errTimeout{}

type errTimeout struct{}

func (errTimeout) Error() string { return "measurement did not complete within horizon" }

// measureAsyncOp measures the duration of an asynchronous operation (a
// network fetch, a resource load) through the setTimeout tick loop and
// performance.now. start must invoke done exactly once when the target
// completes.
func measureAsyncOp(env *defense.Env, start func(g *browser.Global, done func(*browser.Global)), horizon sim.Duration) (map[string]float64, error) {
	b := env.Browser
	res := make(map[string]float64)
	completed := false
	b.RunScript("measure-async", func(g *browser.Global) {
		ticks := startTickLoop(g)
		g.SetTimeout(func(gg *browser.Global) {
			startTicks := *ticks
			startNow := gg.PerformanceNow()
			start(gg, func(g3 *browser.Global) {
				res[ChannelTickLoop] = float64(*ticks - startTicks)
				res[ChannelPerfNow] = g3.PerformanceNow() - startNow
				completed = true
			})
		}, warmupDelay)
	})
	if err := b.RunFor(horizon); err != nil {
		return nil, err
	}
	if !completed {
		return nil, errSkip("async-op", errHorizon)
	}
	return res, nil
}
