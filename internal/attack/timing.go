package attack

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// This file defines the ten implicit-clock timing attacks of Table I's
// upper half. Each attack encodes a two-valued secret; a defense holds if
// no measurement channel can tell the two values apart over the
// repetition budget.

// Horizons are generous: virtual time is cheap and measurements must
// complete under the slowest defense.
const (
	shortHorizon = 3 * sim.Second
	longHorizon  = 30 * sim.Second
)

// CacheAttack (Oren et al. [7]): the secret is whether a shared resource
// resides in the cache. The attacker measures access time via the
// setTimeout tick loop.
func CacheAttack() *TimingAttack {
	const url = "https://cdn.shared.example/lib/common.js"
	return &TimingAttack{
		ID:         "cache-attack",
		Label:      "Cache Attack [7]",
		ClockGroup: "setTimeout",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			env.Browser.Net.RegisterScript(url, 600_000)
			if variant == 1 {
				env.Browser.Net.Warm(url) // secret: content cached
			}
			return measureAsyncOp(env, func(g *browser.Global, done func(*browser.Global)) {
				g.Fetch(url, browser.FetchOptions{}, func(_ *browser.Response, err error) {
					done(g)
				})
			}, shortHorizon)
		},
	}
}

// ScriptParsingAttack (van Goethem et al. [8]): the secret is the byte
// size of a cross-origin resource loaded as a script.
func ScriptParsingAttack() *TimingAttack {
	sizes := [2]int64{2_000_000, 8_000_000}
	return &TimingAttack{
		ID:         "script-parsing",
		Label:      "Script Parsing [8]",
		ClockGroup: "setTimeout",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			url := "https://social.example/friends.json" // cross-origin secret
			env.Browser.Net.RegisterScript(url, sizes[variant])
			return measureAsyncOp(env, func(g *browser.Global, done func(*browser.Global)) {
				g.LoadScript(url, func(gg *browser.Global) { done(gg) }, func(gg *browser.Global) { done(gg) })
			}, longHorizon)
		},
	}
}

// ImageDecodingAttack (van Goethem et al. [8]): the secret is the pixel
// count of a cross-origin image.
func ImageDecodingAttack() *TimingAttack {
	dims := [2]int{500, 2500}
	return &TimingAttack{
		ID:         "image-decoding",
		Label:      "Image Decoding [8]",
		ClockGroup: "setTimeout",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			url := "https://social.example/avatar.png"
			d := dims[variant]
			env.Browser.Net.RegisterImage(url, d, d)
			return measureAsyncOp(env, func(g *browser.Global, done func(*browser.Global)) {
				g.LoadImage(url,
					func(gg *browser.Global, _ *dom.Element) { done(gg) },
					func(gg *browser.Global) { done(gg) })
			}, longHorizon)
		},
	}
}

// ClockEdgeAttack (Kohlbrenner & Shacham [6]): the secret is the duration
// of a cheap operation, measured by counting padding loops between two
// edges of the coarse explicit clock.
func ClockEdgeAttack() *TimingAttack {
	iters := [2]int{2000, 6000}
	const (
		chunk    = 1000  // BusyIters per probe
		maxProbe = 40000 // cap so frozen clocks terminate
	)
	return &TimingAttack{
		ID:         "clock-edge",
		Label:      "Clock Edge [6]",
		ClockGroup: "setTimeout",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			res := make(map[string]float64)
			done := false
			env.Browser.RunScript("clock-edge", func(g *browser.Global) {
				// Align to a clock edge.
				start := g.PerformanceNow()
				guard := 0
				for g.PerformanceNow() == start && guard < maxProbe {
					g.BusyIters(chunk)
					guard++
				}
				// Run the target operation.
				g.BusyIters(iters[variant])
				// Count padding probes to the next edge.
				cur := g.PerformanceNow()
				pad := 0
				for g.PerformanceNow() == cur && pad < maxProbe {
					g.BusyIters(chunk)
					pad++
				}
				res[ChannelEdgePad] = float64(pad)
				done = true
			})
			if err := env.Browser.RunFor(shortHorizon); err != nil {
				return nil, err
			}
			if !done {
				return nil, errSkip("clock-edge", errHorizon)
			}
			return res, nil
		},
	}
}

// HistorySniffingAttack (Stone [9]): the secret is whether a URL is in the
// browser history; :visited links repaint on a slower path.
func HistorySniffingAttack() *TimingAttack {
	const url = "https://bank.example/account"
	return &TimingAttack{
		ID:         "history-sniffing",
		Label:      "History Sniffing [9]",
		ClockGroup: "requestAnimationFrame",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			if variant == 1 {
				env.Browser.MarkVisited(url)
			}
			return measureSyncOp(env, func(g *browser.Global) {
				for i := 0; i < 150; i++ {
					g.RenderLink(url)
				}
			}, shortHorizon)
		},
	}
}

// SVGFilteringAttack (Stone [9] / DeterFox [14]): the secret is an image's
// resolution, recovered from the runtime of an SVG erode filter.
func SVGFilteringAttack() *TimingAttack {
	return SVGFilteringAttackWithDims(200, 1000)
}

// SVGFilteringAttackWithDims parameterizes the two secret resolutions
// (Table II uses specific low/high values).
func SVGFilteringAttackWithDims(low, high int) *TimingAttack {
	dims := [2]int{low, high}
	return &TimingAttack{
		ID:         "svg-filtering",
		Label:      "SVG Filtering [9]",
		ClockGroup: "requestAnimationFrame",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			d := dims[variant]
			return measureSyncOp(env, func(g *browser.Global) {
				el := g.Document().CreateElement("img")
				el.SetAttribute("width", fmt.Sprint(d))
				el.SetAttribute("height", fmt.Sprint(d))
				for i := 0; i < 20; i++ {
					g.ApplySVGFilter(el, "feMorphology:erode")
				}
			}, shortHorizon)
		},
	}
}

// FloatingPointAttack (Andrysco et al. [10]): the secret is whether pixel
// math hits subnormal operands, which take the slow microcode path.
func FloatingPointAttack() *TimingAttack {
	return &TimingAttack{
		ID:         "floating-point",
		Label:      "Floating Point [10]",
		ClockGroup: "requestAnimationFrame",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			return measureSyncOp(env, func(g *browser.Global) {
				g.FloatOps(400_000, variant == 1)
			}, shortHorizon)
		},
	}
}

// LoopscanAttack (Vila & Köpf [11]): the secret is which site is loading
// in another context, inferred from the main event loop's usage pattern.
func LoopscanAttack() *TimingAttack {
	return &TimingAttack{
		ID:         "loopscan",
		Label:      "Loopscan [11]",
		ClockGroup: "requestAnimationFrame",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			site := "google"
			if variant == 1 {
				site = "youtube"
			}
			return measureLoopscan(env, site)
		},
	}
}

// CSSAnimationAttack (Schwarz et al. [12]): CSS animation frame events as
// the implicit clock; the secret is a cross-origin transfer size.
func CSSAnimationAttack() *TimingAttack {
	sizes := [2]int64{1_000_000, 8_000_000}
	return &TimingAttack{
		ID:         "css-animation",
		Label:      "CSS Animation [12]",
		ClockGroup: "requestAnimationFrame",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			url := "https://social.example/payload.bin"
			env.Browser.Net.RegisterScript(url, sizes[variant])
			return measureWithFrameClock(env, ChannelFrames,
				func(g *browser.Global, cb func(*browser.Global)) func() {
					id := g.StartCSSAnimation(nil, func(gg *browser.Global, _ int) { cb(gg) })
					return func() { g.StopCSSAnimation(id) }
				},
				func(g *browser.Global, done func(*browser.Global)) {
					g.Fetch(url, browser.FetchOptions{}, func(*browser.Response, error) { done(g) })
				}, longHorizon)
		},
	}
}

// VideoWebVTTAttack (Kohlbrenner & Shacham [6]): WebVTT cue events as the
// implicit clock; the secret is a cross-origin transfer size.
func VideoWebVTTAttack() *TimingAttack {
	sizes := [2]int64{1_000_000, 8_000_000}
	return &TimingAttack{
		ID:         "video-webvtt",
		Label:      "Video/WebVTT [6]",
		ClockGroup: "requestAnimationFrame",
		Measure: func(env *defense.Env, variant int) (map[string]float64, error) {
			url := "https://social.example/payload2.bin"
			env.Browser.Net.RegisterScript(url, sizes[variant])
			return measureWithFrameClock(env, ChannelCues,
				func(g *browser.Global, cb func(*browser.Global)) func() {
					return g.PlayVideo(func(gg *browser.Global, _ int) { cb(gg) })
				},
				func(g *browser.Global, done func(*browser.Global)) {
					g.Fetch(url, browser.FetchOptions{}, func(*browser.Response, error) { done(g) })
				}, longHorizon)
		},
	}
}

// TimingAttacks returns the ten Table I timing rows in paper order.
func TimingAttacks() []*TimingAttack {
	return []*TimingAttack{
		CacheAttack(), ScriptParsingAttack(), ImageDecodingAttack(), ClockEdgeAttack(),
		HistorySniffingAttack(), SVGFilteringAttack(), FloatingPointAttack(),
		LoopscanAttack(), CSSAnimationAttack(), VideoWebVTTAttack(),
	}
}

// measureWithFrameClock measures an async target with a periodic callback
// source (CSS animation frames or video cues) as the implicit clock.
func measureWithFrameClock(
	env *defense.Env,
	channel string,
	startClock func(g *browser.Global, cb func(*browser.Global)) (stop func()),
	start func(g *browser.Global, done func(*browser.Global)),
	horizon sim.Duration,
) (map[string]float64, error) {
	b := env.Browser
	res := make(map[string]float64)
	completed := false
	b.RunScript("measure-frame-clock", func(g *browser.Global) {
		count := 0
		stop := startClock(g, func(*browser.Global) { count++ })
		g.SetTimeout(func(gg *browser.Global) {
			startCount := count
			startNow := gg.PerformanceNow()
			start(gg, func(g3 *browser.Global) {
				res[channel] = float64(count - startCount)
				res[ChannelPerfNow] = g3.PerformanceNow() - startNow
				completed = true
				stop()
			})
		}, warmupDelay)
	})
	if err := b.RunFor(horizon); err != nil {
		return nil, err
	}
	if !completed {
		return nil, errSkip("frame-clock", errHorizon)
	}
	return res, nil
}

// measureLoopscan monitors the attacker's own event-loop latency while a
// victim site's load pattern runs, reporting the maximum observed event
// interval in worker ticks and milliseconds.
func measureLoopscan(env *defense.Env, site string) (map[string]float64, error) {
	b := env.Browser
	installWorkerClock(b)
	rng := env.Sim.Rand()

	// Victim load pattern: many short tasks (google) vs fewer long tasks
	// (youtube's decode bursts), spread over the observation window.
	type burst struct {
		at   sim.Duration
		cost sim.Duration
	}
	var bursts []burst
	switch site {
	case "youtube":
		for i := 0; i < 25; i++ {
			at := sim.Duration(rng.Int63n(int64(700 * sim.Millisecond)))
			cost := 8*sim.Millisecond + sim.Duration(rng.Int63n(int64(6*sim.Millisecond)))
			bursts = append(bursts, burst{at: at, cost: cost})
		}
	default: // google
		for i := 0; i < 60; i++ {
			at := sim.Duration(rng.Int63n(int64(700 * sim.Millisecond)))
			cost := 2*sim.Millisecond + sim.Duration(rng.Int63n(int64(3*sim.Millisecond)))
			bursts = append(bursts, burst{at: at, cost: cost})
		}
	}

	res := make(map[string]float64)
	sampled := 0
	var startErr error
	b.RunScript("loopscan", func(g *browser.Global) {
		cnt, err := startWorkerClock(g)
		if err != nil {
			startErr = errSkip("loopscan", err)
			return
		}
		// Victim workload tasks.
		for _, bu := range bursts {
			cost := bu.cost
			g.SetTimeout(func(gg *browser.Global) { gg.Busy(cost) }, warmupDelay+bu.at)
		}
		// Attacker probe: a 1ms self-rescheduling task recording the
		// largest gap it observes.
		lastTicks, maxTicks := -1, 0.0
		lastNow, maxNow := -1.0, 0.0
		var probe func(gg *browser.Global)
		probe = func(gg *browser.Global) {
			sampled++
			if lastTicks >= 0 {
				if d := float64(*cnt - lastTicks); d > maxTicks {
					maxTicks = d
				}
				if d := gg.PerformanceNow() - lastNow; d > maxNow {
					maxNow = d
				}
			}
			lastTicks = *cnt
			lastNow = gg.PerformanceNow()
			res[ChannelMaxGap] = maxTicks
			res[ChannelPerfNow] = maxNow
			res[channelTickTotal] = float64(*cnt)
			gg.SetTimeout(probe, 0)
		}
		g.SetTimeout(probe, warmupDelay)
	})
	if err := b.RunFor(warmupDelay + 900*sim.Millisecond); err != nil {
		return nil, err
	}
	if startErr != nil {
		return nil, startErr
	}
	if sampled < 10 {
		return nil, errSkip("loopscan", errHorizon)
	}
	return res, nil
}
