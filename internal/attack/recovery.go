package attack

import (
	"fmt"
	"math/rand"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
	"jskernel/internal/stats"
)

// This file implements full end-to-end secret *recovery* — the actual
// goal of the paper's motivating attacks, beyond the two-variant
// distinguishability criterion of Table I:
//
//   - PixelSteal: the floating-point attack of Andrysco et al. [10]
//     recovers individual pixels of a cross-origin image. Dark pixels
//     produce subnormal intermediate values in the filter convolution,
//     which take the slow FPU path; timing each pixel's filter pass
//     reveals its value.
//   - SniffHistory: Stone's attack [9] recovers which of a set of URLs
//     the victim has visited, from :visited repaint timing.
//
// Recovery accuracy is the metric: ~100% on legacy browsers, chance
// level under JSKernel.

// PixelStealResult reports an end-to-end pixel-stealing run.
type PixelStealResult struct {
	Truth     []bool // ground truth: pixel dark?
	Recovered []bool
	Accuracy  float64
}

// stealOnePixel times one filter pass over a pixel through the parallel
// worker clock and returns the tick measurement.
func stealOnePixel(g *browser.Global, ticks *int, dark bool, done func(measured int)) {
	// Secret-dependent cost: a dark pixel drives the convolution through
	// subnormal operands.
	start := *ticks
	g.FloatOps(60_000, dark)
	g.SetTimeout(func(*browser.Global) {
		done(*ticks - start)
	}, 0)
}

// PixelSteal recovers n pixels of a synthetic cross-origin image in one
// environment. The image content is seeded so ground truth is known to
// the harness but not, of course, to the attacker.
func PixelSteal(env *defense.Env, n int, seed int64) (PixelStealResult, error) {
	rng := rand.New(rand.NewSource(seed))
	truth := make([]bool, n)
	for i := range truth {
		truth[i] = rng.Intn(2) == 1
	}

	b := env.Browser
	installWorkerClock(b)
	measurements := make([]int, 0, n)
	var startErr error
	b.RunScript("pixel-steal", func(g *browser.Global) {
		cnt, err := startWorkerClock(g)
		if err != nil {
			startErr = errSkip("pixel-steal", err)
			return
		}
		var next func(gg *browser.Global)
		i := 0
		next = func(gg *browser.Global) {
			if i >= n {
				return
			}
			dark := truth[i]
			i++
			stealOnePixel(gg, cnt, dark, func(m int) {
				measurements = append(measurements, m)
				gg.SetTimeout(next, 0)
			})
		}
		g.SetTimeout(next, warmupDelay)
	})
	if err := b.RunFor(sim.Duration(n)*60*sim.Millisecond + sim.Second); err != nil {
		return PixelStealResult{}, err
	}
	if startErr != nil {
		return PixelStealResult{}, startErr
	}
	if len(measurements) != n {
		return PixelStealResult{}, fmt.Errorf("attack recovered %d/%d measurements", len(measurements), n)
	}

	// Classification: threshold at the midpoint between the measurement
	// extremes (the attacker calibrates from its own data).
	vals := make([]float64, n)
	for i, m := range measurements {
		vals[i] = float64(m)
	}
	lo, hi, err := stats.MinMax(vals)
	if err != nil {
		return PixelStealResult{}, err
	}
	threshold := (lo + hi) / 2
	res := PixelStealResult{Truth: truth, Recovered: make([]bool, n)}
	correct := 0
	for i, v := range vals {
		res.Recovered[i] = hi > lo && v > threshold
		if res.Recovered[i] == truth[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(n)
	return res, nil
}

// HistorySniffResult reports an end-to-end history recovery run.
type HistorySniffResult struct {
	Truth     []bool // ground truth: URL visited?
	Recovered []bool
	Accuracy  float64
}

// SniffHistory recovers the visited-state of n candidate URLs.
func SniffHistory(env *defense.Env, n int, seed int64) (HistorySniffResult, error) {
	rng := rand.New(rand.NewSource(seed))
	truth := make([]bool, n)
	urls := make([]string, n)
	for i := range truth {
		urls[i] = fmt.Sprintf("https://site%02d.example/login", i)
		truth[i] = rng.Intn(2) == 1
		if truth[i] {
			env.Browser.MarkVisited(urls[i])
		}
	}

	b := env.Browser
	installWorkerClock(b)
	measurements := make([]int, 0, n)
	var startErr error
	b.RunScript("history-sniff", func(g *browser.Global) {
		cnt, err := startWorkerClock(g)
		if err != nil {
			startErr = errSkip("history-sniff", err)
			return
		}
		var next func(gg *browser.Global)
		i := 0
		next = func(gg *browser.Global) {
			if i >= n {
				return
			}
			url := urls[i]
			i++
			start := *cnt
			for r := 0; r < 60; r++ {
				gg.RenderLink(url) // repaint probe
			}
			gg.SetTimeout(func(*browser.Global) {
				measurements = append(measurements, *cnt-start)
				gg.SetTimeout(next, 0)
			}, 0)
		}
		g.SetTimeout(next, warmupDelay)
	})
	if err := b.RunFor(sim.Duration(n)*80*sim.Millisecond + sim.Second); err != nil {
		return HistorySniffResult{}, err
	}
	if startErr != nil {
		return HistorySniffResult{}, startErr
	}
	if len(measurements) != n {
		return HistorySniffResult{}, fmt.Errorf("attack recovered %d/%d measurements", len(measurements), n)
	}

	vals := make([]float64, n)
	for i, m := range measurements {
		vals[i] = float64(m)
	}
	lo, hi, err := stats.MinMax(vals)
	if err != nil {
		return HistorySniffResult{}, err
	}
	threshold := (lo + hi) / 2
	res := HistorySniffResult{Truth: truth, Recovered: make([]bool, n)}
	correct := 0
	for i, v := range vals {
		res.Recovered[i] = hi > lo && v > threshold
		if res.Recovered[i] == truth[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(n)
	return res, nil
}

// RecoveryAccuracy runs both recovery attacks under a defense and returns
// (pixel accuracy, history accuracy).
func RecoveryAccuracy(d defense.Defense, n int, seed int64) (float64, float64, error) {
	envP := d.NewEnv(defense.EnvOptions{Seed: seed})
	pix, err := PixelSteal(envP, n, seed+1)
	if err != nil {
		return 0, 0, fmt.Errorf("pixel steal under %s: %w", d.ID, err)
	}
	envH := d.NewEnv(defense.EnvOptions{Seed: seed + 2})
	hist, err := SniffHistory(envH, n, seed+3)
	if err != nil {
		return 0, 0, fmt.Errorf("history sniff under %s: %w", d.ID, err)
	}
	return pix.Accuracy, hist.Accuracy, nil
}
