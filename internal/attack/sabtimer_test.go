package attack

import (
	"testing"

	"jskernel/internal/defense"
	"jskernel/internal/policy"
)

func TestSABTimerLeaksOnLegacy(t *testing.T) {
	out := SABTimerAttack().Evaluate(defense.Chrome(), testReps, 900)
	if out.Defended {
		t.Fatalf("SAB timer did not leak on legacy Chrome: %+v", out.Channels)
	}
	best := out.BestChannel()
	if best.Channel != ChannelSABDelta {
		t.Fatalf("leak channel = %s, want %s", best.Channel, ChannelSABDelta)
	}
	if best.MeanB <= best.MeanA {
		t.Fatalf("longer secret (%.0f) should accumulate more counter increments than shorter (%.0f)",
			best.MeanB, best.MeanA)
	}
}

// TestSABTimerKernelSerializationCoarsens: the standard kernel only
// routes accesses through its serializing queue; the channel remains but
// is coarsened by orders of magnitude (the paper notes SAB was simply
// disabled in browsers — see the hardening policy below).
func TestSABTimerKernelSerializationCoarsens(t *testing.T) {
	legacy := SABTimerAttack().Evaluate(defense.Chrome(), testReps, 900)
	kernelOut := SABTimerAttack().Evaluate(defense.JSKernel("chrome"), testReps, 900)
	lb, kb := legacy.BestChannel(), kernelOut.BestChannel()
	if lb.MeanB == 0 {
		t.Fatal("legacy measurement empty")
	}
	// Resolution = counter increments per unit of secret time. The
	// serializing queue caps increments at one per serialization interval
	// (150µs), a ~4x coarsening over the unmediated loop here; the point
	// is that it bounds the clock's rate, while DisableSharedBuffers
	// removes it (next test).
	legacyRate := lb.MeanB - lb.MeanA
	kernelRate := kb.MeanB - kb.MeanA
	if kernelRate*3 > legacyRate {
		t.Fatalf("kernel serialization should coarsen the SAB clock ≥3x: legacy delta %.0f vs kernel delta %.0f",
			legacyRate, kernelRate)
	}
}

// TestSABTimerClosedByHardeningPolicy: FullDefense + DisableSharedBuffers
// closes the channel completely.
func TestSABTimerClosedByHardeningPolicy(t *testing.T) {
	hardened := policy.Combine("jskernel-hardened",
		policy.DisableSharedBuffers(), policy.FullDefense())
	d := defense.JSKernelWithPolicy("chrome", "jskernel-hardened", hardened)
	out := SABTimerAttack().Evaluate(d, testReps, 900)
	if !out.Defended {
		t.Fatalf("hardened kernel leaked via SAB: %+v", out.Channels)
	}
	if len(out.Channels) != 0 {
		t.Fatalf("hardened kernel produced measurements: %+v (channel should be gone)", out.Channels)
	}
}

func TestExtensionAttacksCatalog(t *testing.T) {
	ext := ExtensionAttacks()
	if len(ext) != 1 || ext[0].ID != "sab-timer" {
		t.Fatalf("extension catalog = %+v", ext)
	}
}
