package attack

import (
	"testing"

	"jskernel/internal/defense"
)

const recoveryBits = 32

func TestPixelStealRecoversOnLegacy(t *testing.T) {
	env := defense.Chrome().NewEnv(defense.EnvOptions{Seed: 5})
	res, err := PixelSteal(env, recoveryBits, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("pixel recovery accuracy %.2f on legacy, want near-perfect", res.Accuracy)
	}
}

func TestPixelStealChanceUnderJSKernel(t *testing.T) {
	env := defense.JSKernel("chrome").NewEnv(defense.EnvOptions{Seed: 5})
	res, err := PixelSteal(env, recoveryBits, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy > 0.70 {
		t.Fatalf("pixel recovery accuracy %.2f under JSKernel, want near chance", res.Accuracy)
	}
}

func TestSniffHistoryRecoversOnLegacy(t *testing.T) {
	env := defense.Chrome().NewEnv(defense.EnvOptions{Seed: 9})
	res, err := SniffHistory(env, recoveryBits, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("history recovery accuracy %.2f on legacy, want near-perfect", res.Accuracy)
	}
}

func TestSniffHistoryChanceUnderJSKernel(t *testing.T) {
	env := defense.JSKernel("chrome").NewEnv(defense.EnvOptions{Seed: 9})
	res, err := SniffHistory(env, recoveryBits, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy > 0.70 {
		t.Fatalf("history recovery accuracy %.2f under JSKernel, want near chance", res.Accuracy)
	}
}

func TestSniffHistoryChanceUnderDeterFox(t *testing.T) {
	env := defense.DeterFox().NewEnv(defense.EnvOptions{Seed: 9})
	res, err := SniffHistory(env, recoveryBits, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy > 0.70 {
		t.Fatalf("history recovery accuracy %.2f under DeterFox, want near chance", res.Accuracy)
	}
}

func TestRecoveryAccuracyHelper(t *testing.T) {
	pix, hist, err := RecoveryAccuracy(defense.Chrome(), 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	if pix < 0.9 || hist < 0.9 {
		t.Fatalf("legacy accuracies %.2f / %.2f, want high", pix, hist)
	}
}
