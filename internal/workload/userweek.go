package workload

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
)

// This file reproduces the paper's week-long user experience test
// (§V-B3). The student's browsing surfaced three kernel bugs: Overleaf's
// worker failed on an absolute source path, Google Calendar rendered
// Mondays as Wednesdays (a Date arithmetic bug), and a Google Maps worker
// saw the kernel worker's location instead of its own. Each scenario
// below exercises exactly that behaviour; a correct kernel passes all
// three with output identical to the legacy browser.

// JourneyResult is one scenario's observable outcome.
type JourneyResult struct {
	Scenario string
	Output   string
	Err      error
}

// UserJourneys returns the three §V-B3 scenarios.
func UserJourneys() []struct {
	Name string
	Run  func(env *defense.Env) (string, error)
} {
	return []struct {
		Name string
		Run  func(env *defense.Env) (string, error)
	}{
		{Name: "overleaf-compile", Run: overleafScenario},
		{Name: "calendar-weekdays", Run: calendarScenario},
		{Name: "maps-worker-location", Run: mapsScenario},
	}
}

// overleafScenario compiles a document in a worker created from an
// ABSOLUTE same-origin URL — the path form that broke the paper's first
// prototype.
func overleafScenario(env *defense.Env) (string, error) {
	b := env.Browser
	src := b.Origin + "/js/latex-compiler.js"
	b.RegisterWorkerScript(src, func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			gg.Busy(30 * sim.Millisecond) // the compile
			gg.PostMessage(fmt.Sprintf("compiled:%v.pdf", m.Data))
		})
	})
	var out string
	var werr error
	b.RunScript("overleaf", func(g *browser.Global) {
		w, err := g.NewWorker(src) // absolute path
		if err != nil {
			werr = fmt.Errorf("worker with absolute path: %w", err)
			return
		}
		w.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) {
			out, _ = m.Data.(string)
		})
		w.PostMessage("thesis")
	})
	if err := b.RunFor(5 * sim.Second); err != nil {
		return "", err
	}
	if werr != nil {
		return "", werr
	}
	if out == "" {
		return "", fmt.Errorf("compile result never arrived")
	}
	return out, nil
}

// calendarScenario renders a week view: weekday names derived from
// Date.now arithmetic. The paper's second bug shifted every weekday by
// two; a correct kernel's (logical) Date stays arithmetic-consistent so
// day(i+1) − day(i) ≡ 1.
func calendarScenario(env *defense.Env) (string, error) {
	b := env.Browser
	var out string
	b.RunScript("calendar", func(g *browser.Global) {
		names := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
		const dayMs = 24 * 60 * 60 * 1000
		base := g.DateNow()
		week := ""
		for i := 0; i < 7; i++ {
			ts := base + int64(i)*dayMs
			day := (ts / dayMs) % 7
			week += names[day] + " "
		}
		out = week
	})
	if err := b.RunFor(sim.Second); err != nil {
		return "", err
	}
	return out, nil
}

// mapsScenario has a tile worker report its own location; the paper's
// third bug made it see the kernel worker's source instead.
func mapsScenario(env *defense.Env) (string, error) {
	b := env.Browser
	b.RegisterWorkerScript("tiles.js", func(g *browser.Global) {
		g.PostMessage(g.WorkerLocation())
	})
	var loc string
	var werr error
	b.RunScript("maps", func(g *browser.Global) {
		w, err := g.NewWorker("tiles.js")
		if err != nil {
			werr = err
			return
		}
		w.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) {
			loc, _ = m.Data.(string)
		})
	})
	if err := b.RunFor(5 * sim.Second); err != nil {
		return "", err
	}
	if werr != nil {
		return "", werr
	}
	if loc == "" {
		return "", fmt.Errorf("worker location never arrived")
	}
	return loc, nil
}

// RunUserJourneys executes all scenarios under a defense.
func RunUserJourneys(d defense.Defense, seed int64) []JourneyResult {
	var results []JourneyResult
	for i, j := range UserJourneys() {
		env := d.NewEnv(defense.EnvOptions{Seed: seed + int64(i)})
		out, err := j.Run(env)
		results = append(results, JourneyResult{Scenario: j.Name, Output: out, Err: err})
	}
	return results
}
