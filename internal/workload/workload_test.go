package workload

import (
	"testing"

	"jskernel/internal/defense"
	"jskernel/internal/stats"
)

func TestDromaeoRunsOnLegacy(t *testing.T) {
	results, err := RunDromaeo(defense.Chrome(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DromaeoSuite()) {
		t.Fatalf("got %d results, want %d", len(results), len(DromaeoSuite()))
	}
	for _, r := range results {
		if r.Millis <= 0 {
			t.Errorf("test %s took %v ms; every test must consume virtual time", r.ID, r.Millis)
		}
	}
}

func TestDromaeoOverheadShape(t *testing.T) {
	base, err := RunDromaeo(defense.Chrome(), 1)
	if err != nil {
		t.Fatal(err)
	}
	with, err := RunDromaeo(defense.JSKernel("chrome"), 1)
	if err != nil {
		t.Fatal(err)
	}
	over := DromaeoOverheads(base, with)
	if len(over) != len(base) {
		t.Fatalf("overhead map has %d entries", len(over))
	}
	var all []float64
	worstID, worst := "", -1.0
	for id, v := range over {
		all = append(all, v)
		if v > worst {
			worst, worstID = v, id
		}
	}
	mean, median := stats.Mean(all), stats.Median(all)
	// Paper: 1.99% average, 0.30% median, DOM attribute worst (~21%).
	if worstID != "dom-attr" {
		t.Errorf("worst test = %s (%.1f%%), want dom-attr", worstID, worst*100)
	}
	if worst < 0.05 || worst > 0.40 {
		t.Errorf("dom-attr overhead = %.1f%%, want roughly 20%%", worst*100)
	}
	if mean < 0 || mean > 0.08 {
		t.Errorf("mean overhead = %.2f%%, want small (~2%%)", mean*100)
	}
	if median > 0.03 {
		t.Errorf("median overhead = %.2f%%, want under 3%%", median*100)
	}
}

func TestGenerateSitesDeterministic(t *testing.T) {
	a, b := GenerateSites(50, 7), GenerateSites(50, 7)
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i].Domain != b[i].Domain || len(a[i].Scripts) != len(b[i].Scripts) ||
			a[i].InlineWork != b[i].InlineWork {
			t.Fatal("site generation is not deterministic")
		}
	}
	c := GenerateSites(50, 8)
	same := true
	for i := range a {
		if a[i].Elements != c[i].Elements {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical site populations")
	}
}

func TestLoadSiteProducesMilestones(t *testing.T) {
	site := GenerateSites(3, 11)[2]
	site.HeroDelay = 10 * 1000 * 1000 // 10ms in sim units
	env := defense.Chrome().NewEnv(defense.EnvOptions{Seed: 3})
	load, err := LoadSite(env, site)
	if err != nil {
		t.Fatal(err)
	}
	if load.OnloadMs <= 0 {
		t.Fatalf("onload = %v", load.OnloadMs)
	}
	if load.HeroMs < load.OnloadMs {
		t.Fatalf("hero (%v) before onload (%v)", load.HeroMs, load.OnloadMs)
	}
	if load.DOM == nil || load.DOM.GetElementByID("hero") == nil {
		t.Fatal("hero element missing from DOM")
	}
}

func TestLoadSiteUnderJSKernelComparable(t *testing.T) {
	site := GenerateSites(5, 13)[1]
	legacyEnv := defense.Chrome().NewEnv(defense.EnvOptions{Seed: 5})
	legacy, err := LoadSite(legacyEnv, site)
	if err != nil {
		t.Fatal(err)
	}
	kernelEnv := defense.JSKernel("chrome").NewEnv(defense.EnvOptions{Seed: 5})
	kernel, err := LoadSite(kernelEnv, site)
	if err != nil {
		t.Fatal(err)
	}
	ratio := kernel.OnloadMs / legacy.OnloadMs
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("JSKernel load %.1fms vs legacy %.1fms (ratio %.2f); overhead should be small",
			kernel.OnloadMs, legacy.OnloadMs, ratio)
	}
	// Compatibility: the rendered DOM must be essentially identical.
	sim := stats.CosineSimilarity(legacy.DOM.TermFrequency(), kernel.DOM.TermFrequency())
	if sim < 0.99 {
		t.Fatalf("DOM similarity = %v, want >= 0.99", sim)
	}
}

func TestRaptorRunsAndSkipsFirstLoad(t *testing.T) {
	results, err := RunRaptor(defense.Chrome(), 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("subtests = %d", len(results))
	}
	for _, r := range results {
		if r.Summary.N != 3 {
			t.Errorf("%s: N = %d, want 3 (4 loads minus skipped first)", r.Site, r.Summary.N)
		}
		if r.Summary.Mean <= 0 {
			t.Errorf("%s: mean = %v", r.Site, r.Summary.Mean)
		}
	}
}

func TestWorkerBench(t *testing.T) {
	base, err := RunWorkerBench(defense.Chrome(), 16, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	with, err := RunWorkerBench(defense.JSKernel("chrome"), 16, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 3 || len(with) != 3 {
		t.Fatalf("reps = %d, %d", len(base), len(with))
	}
	overhead := stats.RelativeOverhead(stats.Mean(base), stats.Mean(with))
	if overhead < -0.05 || overhead > 0.10 {
		t.Fatalf("worker creation overhead = %.2f%%, want ~1%%", overhead*100)
	}
}

func TestCodePenAppsAllRunOnLegacy(t *testing.T) {
	apps := CodePenApps()
	if len(apps) != 20 {
		t.Fatalf("apps = %d, want 20", len(apps))
	}
	for i, app := range apps {
		res, err := RunApp(defense.Chrome(), app, int64(100+i))
		if err != nil {
			t.Errorf("app %s: %v", app.ID, err)
			continue
		}
		if len(res.Trace) == 0 {
			t.Errorf("app %s produced no observable trace", app.ID)
		}
	}
}

func TestCodePenBaselineSelfConsistent(t *testing.T) {
	// Running the same app twice under the same defense must produce the
	// same observable behaviour (the comparison is meaningful).
	app := CodePenApps()[0]
	a, err := RunApp(defense.Chrome(), app, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunApp(defense.Chrome(), app, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ObservableDiff(a, b) {
		t.Fatal("identical runs observably differ")
	}
}

func TestCompatCountOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-defense compat sweep")
	}
	// Like the paper, each Firefox-based defense is compared against its
	// own base browser.
	jsk, _, err := CompatCount(defense.JSKernel("firefox"), defense.Firefox(), 500)
	if err != nil {
		t.Fatal(err)
	}
	deter, _, err := CompatCount(defense.DeterFox(), defense.Firefox(), 500)
	if err != nil {
		t.Fatal(err)
	}
	fuzzy, _, err := CompatCount(defense.Fuzzyfox(), defense.Firefox(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if jsk > deter || deter > fuzzy {
		t.Fatalf("compat ordering violated: jsk=%d deterfox=%d fuzzyfox=%d (want jsk <= deterfox <= fuzzyfox)",
			jsk, deter, fuzzy)
	}
	if jsk > 10 {
		t.Fatalf("JSKernel observable diffs = %d/20, want few", jsk)
	}
}

func TestRaptorSuitesCoverTp6Range(t *testing.T) {
	suites := RaptorSuites()
	for _, name := range []string{"tp6-1", "tp6-2", "tp6-3"} {
		suite, ok := suites[name]
		if !ok || len(suite) == 0 {
			t.Errorf("missing suite %s", name)
			continue
		}
		for _, s := range suite {
			if s.Domain == "" || len(s.Scripts) == 0 || s.HeroDelay == 0 {
				t.Errorf("%s: site %q underspecified", name, s.Domain)
			}
		}
	}
}

func TestRaptorAggregateOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-suite sweep")
	}
	over, err := RaptorAggregateOverhead(defense.Chrome(), defense.JSKernel("chrome"), 3, 800)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 2.75% on Chrome; ours is network-bound and lands
	// lower, but must stay within a few percent.
	if over < -0.02 || over > 0.05 {
		t.Fatalf("aggregate tp6 overhead = %.2f%%, want small", over*100)
	}
}
