package workload

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
)

// WorkerBenchCount is the paper's worker benchmark size: 16 workers.
const WorkerBenchCount = 16

// RunWorkerBench creates n workers and measures the virtual time until
// every worker has started and reported ready, repeated `reps` times
// (the paper uses 5). It returns the per-rep durations in milliseconds.
func RunWorkerBench(d defense.Defense, n, reps int, seed int64) ([]float64, error) {
	if n <= 0 {
		n = WorkerBenchCount
	}
	if reps <= 0 {
		reps = 5
	}
	out := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		env := d.NewEnv(defense.EnvOptions{Seed: seed + int64(rep)})
		b := env.Browser
		b.RegisterWorkerScript("bench-worker.js", func(g *browser.Global) {
			g.PostMessage("ready")
		})
		ready := 0
		var doneAt sim.Time
		start := env.Sim.Now()
		var werr error
		b.RunScript("worker-bench", func(g *browser.Global) {
			for i := 0; i < n; i++ {
				w, err := g.NewWorker("bench-worker.js")
				if err != nil {
					werr = err
					return
				}
				w.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
					if ready++; ready == n {
						doneAt = env.Sim.Now()
					}
				})
			}
		})
		if err := b.RunFor(10 * sim.Second); err != nil {
			return nil, err
		}
		if werr != nil {
			return nil, fmt.Errorf("worker bench: %w", werr)
		}
		if ready != n {
			return nil, fmt.Errorf("worker bench: only %d/%d workers became ready", ready, n)
		}
		out = append(out, (doneAt - start).Milliseconds())
	}
	return out, nil
}
