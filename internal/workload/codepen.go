package workload

import (
	"fmt"
	"math"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
)

// App is one CodePen-style front-end application from the paper's API
// specific compatibility test (§V-B1): a small interactive program built
// around one API, run under each defense and compared against its legacy
// behaviour.
type App struct {
	ID  string
	API string // the API the app was found by searching for
	Run func(g *browser.Global, r *AppResult, done func(*browser.Global))
}

// AppResult is an app's observable behaviour: the trace of outputs the
// user would see plus the frame rate of its animations.
type AppResult struct {
	Trace []string
	FPS   float64
}

// emit appends an observable output.
func (r *AppResult) emit(format string, args ...any) {
	r.Trace = append(r.Trace, fmt.Sprintf(format, args...))
}

// bucketMs coarsens a millisecond reading into the 25ms buckets a human
// would notice differences in.
func bucketMs(ms float64) int { return int(ms / 25) }

// CodePenApps returns the 20 test applications, four per searched API.
func CodePenApps() []App {
	var apps []App

	// performance.now apps: fine-grained timing drives their output.
	apps = append(apps,
		App{ID: "stopwatch", API: "performance.now", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			start := g.PerformanceNow()
			n := 0
			var lap func(gg *browser.Global)
			lap = func(gg *browser.Global) {
				r.emit("lap %d at bucket %d", n, bucketMs(gg.PerformanceNow()-start))
				if n++; n < 4 {
					gg.SetTimeout(lap, 40*sim.Millisecond)
					return
				}
				done(gg)
			}
			g.SetTimeout(lap, 40*sim.Millisecond)
		}},
		App{ID: "profiler", API: "performance.now", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			t0 := g.PerformanceNow()
			g.Busy(30 * sim.Millisecond)
			r.emit("section took bucket %d", bucketMs(g.PerformanceNow()-t0))
			done(g)
		}},
		App{ID: "speed-typing", API: "performance.now", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			t0 := g.PerformanceNow()
			n := 0
			var key func(gg *browser.Global)
			key = func(gg *browser.Global) {
				if n++; n < 5 {
					gg.SetTimeout(key, 20*sim.Millisecond)
					return
				}
				wpm := 5.0 / math.Max(gg.PerformanceNow()-t0, 1) * 1000
				r.emit("wpm bucket %d", int(wpm/10))
				done(gg)
			}
			g.SetTimeout(key, 20*sim.Millisecond)
		}},
		App{ID: "frame-budget", API: "performance.now", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			n := 0
			over := 0
			var frame func(gg *browser.Global, ts float64)
			prev := -1.0
			frame = func(gg *browser.Global, ts float64) {
				if prev >= 0 && ts-prev > 20 {
					over++
				}
				prev = ts
				gg.Busy(4 * sim.Millisecond)
				if n++; n < 10 {
					gg.RequestAnimationFrame(frame)
					return
				}
				r.emit("frames over budget: %d", over)
				done(gg)
			}
			g.RequestAnimationFrame(frame)
		}},
	)

	// setTimeout apps: sequencing, not timing, determines their output.
	apps = append(apps,
		App{ID: "slideshow", API: "setTimeout", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			slides := []string{"intro", "body", "outro"}
			i := 0
			var next func(gg *browser.Global)
			next = func(gg *browser.Global) {
				r.emit("show %s", slides[i])
				if i++; i < len(slides) {
					gg.SetTimeout(next, 30*sim.Millisecond)
					return
				}
				done(gg)
			}
			next(g)
		}},
		App{ID: "countdown", API: "setTimeout", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			n := 3
			var tick func(gg *browser.Global)
			tick = func(gg *browser.Global) {
				r.emit("t-minus %d", n)
				if n--; n > 0 {
					gg.SetTimeout(tick, 10*sim.Millisecond)
					return
				}
				r.emit("liftoff")
				done(gg)
			}
			tick(g)
		}},
		App{ID: "debounce", API: "setTimeout", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			var timer int
			fires := 0
			input := func(gg *browser.Global) {
				gg.ClearTimeout(timer)
				timer = gg.SetTimeout(func(g3 *browser.Global) {
					fires++
					r.emit("search fired %d", fires)
					done(g3)
				}, 20*sim.Millisecond)
			}
			for i := 0; i < 5; i++ {
				input(g) // rapid inputs collapse into one search
			}
		}},
		App{ID: "toast-queue", API: "setTimeout", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			msgs := []string{"saved", "synced", "done"}
			i := 0
			var show func(gg *browser.Global)
			show = func(gg *browser.Global) {
				r.emit("toast %s", msgs[i])
				if i++; i < len(msgs) {
					gg.SetTimeout(show, 15*sim.Millisecond)
					return
				}
				done(gg)
			}
			show(g)
		}},
	)

	// requestAnimationFrame apps: FPS is the observable.
	rafApp := func(id string, frames int, perFrame sim.Duration) App {
		return App{ID: id, API: "requestAnimationFrame", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			n := 0
			first := -1.0
			var frame func(gg *browser.Global, ts float64)
			frame = func(gg *browser.Global, ts float64) {
				if first < 0 {
					first = ts
				}
				gg.Busy(perFrame)
				if n++; n < frames {
					gg.RequestAnimationFrame(frame)
					return
				}
				elapsed := ts - first
				if elapsed > 0 {
					r.FPS = float64(n-1) / elapsed * 1000
				}
				r.emit("animated %d frames", n)
				done(gg)
			}
			g.RequestAnimationFrame(frame)
		}}
	}
	apps = append(apps,
		rafApp("particle-field", 30, 2*sim.Millisecond),
		rafApp("progress-ring", 20, sim.Millisecond),
		rafApp("parallax-scroll", 25, 3*sim.Millisecond),
		rafApp("canvas-clock", 15, 2*sim.Millisecond),
	)

	// Worker apps: background computation with messaging.
	workerApp := func(id string, work sim.Duration, msgs int) App {
		src := id + "-worker.js"
		return App{ID: id, API: "Worker", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			b := g.Browser()
			if !b.HasWorkerScript(src) {
				b.RegisterWorkerScript(src, func(wg *browser.Global) {
					wg.SetOnMessage(func(wgg *browser.Global, m browser.MessageEvent) {
						wgg.Busy(work)
						wgg.PostMessage(m.Data)
					})
				})
			}
			w, err := g.NewWorker(src)
			if err != nil {
				r.emit("worker failed: unavailable")
				done(g)
				return
			}
			got := 0
			w.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				r.emit("result %v", m.Data)
				if got++; got == msgs {
					done(gg)
				}
			})
			for i := 0; i < msgs; i++ {
				w.PostMessage(i)
			}
		}}
	}
	apps = append(apps,
		workerApp("mandelbrot-offload", 20*sim.Millisecond, 2),
		workerApp("csv-parser", 8*sim.Millisecond, 3),
		workerApp("image-filter-worker", 15*sim.Millisecond, 2),
		workerApp("search-index", 5*sim.Millisecond, 4),
	)

	// postMessage apps: window messaging patterns.
	apps = append(apps,
		App{ID: "iframe-bridge", API: "postMessage", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				r.emit("bridge got %v", m.Data)
				done(gg)
			})
			g.PostMessage("handshake")
		}},
		App{ID: "pubsub-bus", API: "postMessage", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			seen := 0
			g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				r.emit("event %v", m.Data)
				if seen++; seen == 3 {
					done(gg)
				}
			})
			for i := 0; i < 3; i++ {
				g.PostMessage(i)
			}
		}},
		App{ID: "yield-scheduler", API: "postMessage", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			step := 0
			g.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
				gg.Busy(2 * sim.Millisecond)
				r.emit("chunk %d", step)
				if step++; step < 4 {
					gg.PostMessage("next")
					return
				}
				done(gg)
			})
			g.PostMessage("next")
		}},
		App{ID: "ping-latency", API: "postMessage", Run: func(g *browser.Global, r *AppResult, done func(*browser.Global)) {
			t0 := g.PerformanceNow()
			g.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
				r.emit("rtt bucket %d", int((gg.PerformanceNow()-t0)*4))
				done(gg)
			})
			g.PostMessage("ping")
		}},
	)
	return apps
}

// RunApp executes one app under a defense and captures its observable
// behaviour.
func RunApp(d defense.Defense, app App, seed int64) (AppResult, error) {
	env := d.NewEnv(defense.EnvOptions{Seed: seed})
	var result AppResult
	completed := false
	env.Browser.RunScript("app:"+app.ID, func(g *browser.Global) {
		app.Run(g, &result, func(*browser.Global) { completed = true })
	})
	if err := env.Browser.RunFor(30 * sim.Second); err != nil {
		return AppResult{}, err
	}
	if !completed {
		return AppResult{}, fmt.Errorf("workload: app %s did not complete", app.ID)
	}
	return result, nil
}

// ObservableDiff reports whether a user would notice the app behaving
// differently: any trace divergence, or a frame-rate change above 15%.
func ObservableDiff(base, other AppResult) bool {
	if len(base.Trace) != len(other.Trace) {
		return true
	}
	for i := range base.Trace {
		if base.Trace[i] != other.Trace[i] {
			return true
		}
	}
	if base.FPS > 0 {
		rel := math.Abs(other.FPS-base.FPS) / base.FPS
		if rel > 0.15 {
			return true
		}
	}
	return false
}

// CompatCount runs every app under a defense and counts observable
// differences against the legacy baseline (the paper reports 4/20 for
// JSKernel, 7/20 for DeterFox, 13/20 for Fuzzyfox).
func CompatCount(d, baseline defense.Defense, seed int64) (int, int, error) {
	apps := CodePenApps()
	diffs := 0
	for i, app := range apps {
		base, err := RunApp(baseline, app, seed+int64(i))
		if err != nil {
			return 0, 0, fmt.Errorf("baseline %s: %w", app.ID, err)
		}
		got, err := RunApp(d, app, seed+int64(i))
		if err != nil {
			diffs++ // failing to run at all is certainly observable
			continue
		}
		if ObservableDiff(base, got) {
			diffs++
		}
	}
	return diffs, len(apps), nil
}
