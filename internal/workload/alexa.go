package workload

import (
	"fmt"
	"math/rand"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// Site is one synthetic website: the resource tree, script work, and
// structure that determine its loading behaviour. The Alexa-500 experiment
// (Figure 3) and the compatibility study (§V-B2) run over a seeded
// population of these.
type Site struct {
	Rank    int
	Domain  string
	Scripts []int64  // script transfer sizes in bytes
	Images  [][2]int // image dimensions
	// InlineWork is synchronous main-thread script execution.
	InlineWork sim.Duration
	// Elements is the static DOM size built during parse.
	Elements int
	// UsesWorker marks sites with a background worker (maps, editors).
	UsesWorker bool
	// WorkerWork is the worker's background computation.
	WorkerWork sim.Duration
	// HeroDelay, when nonzero, loads a hero element via script after
	// onload (the behaviour Raptor's tp6 tests capture).
	HeroDelay sim.Duration
}

// GenerateSites returns a deterministic population of n sites. The same
// seed always yields the same population, so every defense loads identical
// sites.
func GenerateSites(n int, seed int64) []Site {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]Site, 0, n)
	for i := 0; i < n; i++ {
		s := Site{
			Rank:       i + 1,
			Domain:     fmt.Sprintf("https://site%03d.example", i+1),
			InlineWork: sim.Duration(2+rng.Intn(30)) * sim.Millisecond,
			Elements:   100 + rng.Intn(1500),
			UsesWorker: rng.Float64() < 0.2,
		}
		for j, ns := 0, 1+rng.Intn(6); j < ns; j++ {
			s.Scripts = append(s.Scripts, int64(10_000+rng.Intn(400_000)))
		}
		for j, ni := 0, 2+rng.Intn(12); j < ni; j++ {
			d := 80 + rng.Intn(900)
			s.Images = append(s.Images, [2]int{d, d * (3 + rng.Intn(3)) / 4})
		}
		if s.UsesWorker {
			s.WorkerWork = sim.Duration(5+rng.Intn(40)) * sim.Millisecond
		}
		if rng.Float64() < 0.3 {
			s.HeroDelay = sim.Duration(5+rng.Intn(40)) * sim.Millisecond
		}
		sites = append(sites, s)
	}
	return sites
}

// SiteLoad is the outcome of loading one site.
type SiteLoad struct {
	// OnloadMs is virtual time from navigation to the onload event.
	OnloadMs float64
	// HeroMs is virtual time until the hero element rendered (equals
	// OnloadMs when the site has no delayed hero).
	HeroMs float64
	// DOM is the document after loading, for similarity comparison.
	DOM *dom.Document
}

// siteWorkerSrc names a site's background worker script.
func siteWorkerSrc(s Site) string { return s.Domain + "/worker.js" }

// registerSite publishes the site's resources on the environment's network.
func registerSite(env *defense.Env, s Site) {
	net := env.Browser.Net
	for i, bytes := range s.Scripts {
		net.RegisterScript(fmt.Sprintf("%s/js/app%d.js", s.Domain, i), bytes)
	}
	for i, dim := range s.Images {
		net.RegisterImage(fmt.Sprintf("%s/img/%d.png", s.Domain, i), dim[0], dim[1])
	}
}

// LoadSite navigates the environment's browser to the site and measures
// load milestones with the experimenter's stopwatch (virtual wall clock,
// like the paper's Selenium timestamps — not the browser-visible clock).
func LoadSite(env *defense.Env, s Site) (SiteLoad, error) {
	b := env.Browser
	b.Origin = s.Domain
	registerSite(env, s)
	if s.UsesWorker {
		work := s.WorkerWork
		b.RegisterWorkerScript(siteWorkerSrc(s), func(g *browser.Global) {
			g.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
				gg.Busy(work)
				gg.PostMessage("bg-done")
			})
		})
	}

	var result SiteLoad
	onloadDone := false
	heroDone := false
	start := env.Sim.Now()

	pending := len(s.Scripts) + len(s.Images)
	b.RunScript("load:"+s.Domain, func(g *browser.Global) {
		d := g.Document()
		// Static DOM construction plus inline script work.
		for i := 0; i < s.Elements; i++ {
			el := d.CreateElement("div")
			if i%7 == 0 {
				g.DOMSetAttribute(el, "class", "section")
			}
			_ = g.AppendChild(d.Body(), el)
		}
		g.Busy(s.InlineWork)

		markHero := func(gg *browser.Global) {
			hero := d.CreateElement("img")
			hero.SetAttribute("id", "hero")
			_ = gg.AppendChild(d.Body(), hero)
			result.HeroMs = (env.Sim.Now() - start).Milliseconds()
			heroDone = true
		}
		onload := func(gg *browser.Global) {
			result.OnloadMs = (env.Sim.Now() - start).Milliseconds()
			onloadDone = true
			if s.HeroDelay > 0 {
				gg.SetTimeout(markHero, s.HeroDelay)
				return
			}
			markHero(gg)
		}
		resourceDone := func(gg *browser.Global) {
			if pending--; pending == 0 {
				onload(gg)
			}
		}
		for i := range s.Scripts {
			url := fmt.Sprintf("%s/js/app%d.js", s.Domain, i)
			g.LoadScript(url, resourceDone, resourceDone)
		}
		for i := range s.Images {
			url := fmt.Sprintf("%s/img/%d.png", s.Domain, i)
			g.LoadImage(url, func(gg *browser.Global, el *dom.Element) {
				if el != nil {
					_ = gg.AppendChild(d.Body(), el)
				}
				resourceDone(gg)
			}, resourceDone)
		}
		if s.UsesWorker {
			if w, err := g.NewWorker(siteWorkerSrc(s)); err == nil {
				w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {})
				w.PostMessage("start")
			}
		}
	})
	if err := b.RunFor(120 * sim.Second); err != nil {
		return SiteLoad{}, err
	}
	if !onloadDone || !heroDone {
		return SiteLoad{}, fmt.Errorf("workload: %s did not finish loading", s.Domain)
	}
	result.DOM = b.Window().Document()
	return result, nil
}

// LoadAlexa loads the first n generated sites under a defense and returns
// the onload times in milliseconds (Figure 3's raw series). Visits are
// repeated `visits` times per site and averaged, like the paper's three
// visits.
func LoadAlexa(d defense.Defense, n, visits int, seed int64) ([]float64, error) {
	if visits <= 0 {
		visits = 1
	}
	sites := GenerateSites(n, seed)
	out := make([]float64, 0, n)
	for _, s := range sites {
		total := 0.0
		for v := 0; v < visits; v++ {
			env := d.NewEnv(defense.EnvOptions{Seed: seed + int64(s.Rank*100+v)})
			load, err := LoadSite(env, s)
			if err != nil {
				return nil, fmt.Errorf("load %s: %w", s.Domain, err)
			}
			total += load.OnloadMs
		}
		out = append(out, total/float64(visits))
	}
	return out, nil
}
