// Package workload implements the performance and compatibility workloads
// of the paper's §V evaluation: the Dromaeo micro-benchmark, the synthetic
// Alexa-500 site population, the Raptor tp6 hero-element loading tests,
// the 16-worker creation benchmark, and the CodePen-style API apps used
// for the compatibility study.
package workload

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// DromaeoTest is one micro-benchmark case.
type DromaeoTest struct {
	ID       string
	Category string
	// Run executes the test body; sync tests return immediately, async
	// ones call done when finished. The harness measures virtual time
	// from invocation to completion.
	Run func(g *browser.Global, done func(*browser.Global))
}

// busyChunks models a compute kernel as repeated short busy loops, the way
// Dromaeo's math/string/array tests hammer the JS engine.
func busyChunks(g *browser.Global, chunks, itersPer int) {
	for i := 0; i < chunks; i++ {
		g.BusyIters(itersPer)
	}
}

// DromaeoSuite returns the benchmark's test list. The mix mirrors the real
// suite's sections: computation, string/array work, DOM access patterns,
// and timer/animation scheduling.
func DromaeoSuite() []DromaeoTest {
	return []DromaeoTest{
		{ID: "math-cordic", Category: "math", Run: func(g *browser.Global, done func(*browser.Global)) {
			busyChunks(g, 2000, 500)
			done(g)
		}},
		{ID: "math-partial-sums", Category: "math", Run: func(g *browser.Global, done func(*browser.Global)) {
			g.FloatOps(600_000, false)
			done(g)
		}},
		{ID: "math-spectral-norm", Category: "math", Run: func(g *browser.Global, done func(*browser.Global)) {
			g.FloatOps(400_000, false)
			busyChunks(g, 400, 400)
			done(g)
		}},
		{ID: "string-base64", Category: "string", Run: func(g *browser.Global, done func(*browser.Global)) {
			busyChunks(g, 1500, 600)
			done(g)
		}},
		{ID: "string-tagcloud", Category: "string", Run: func(g *browser.Global, done func(*browser.Global)) {
			// Builds markup: mostly string work with a little DOM.
			d := g.Document()
			for i := 0; i < 120; i++ {
				g.BusyIters(4000)
				el := d.CreateElement("span")
				g.DOMSetAttribute(el, "class", "tag")
				_ = g.AppendChild(d.Body(), el)
			}
			done(g)
		}},
		{ID: "array-ops", Category: "array", Run: func(g *browser.Global, done func(*browser.Global)) {
			busyChunks(g, 1800, 500)
			done(g)
		}},
		{ID: "regexp-dna", Category: "regexp", Run: func(g *browser.Global, done func(*browser.Global)) {
			busyChunks(g, 2500, 450)
			done(g)
		}},
		{ID: "json-parse", Category: "json", Run: func(g *browser.Global, done func(*browser.Global)) {
			busyChunks(g, 1200, 550)
			done(g)
		}},
		{ID: "dom-attr", Category: "dom", Run: func(g *browser.Global, done func(*browser.Global)) {
			// The paper's worst case: every access crosses the kernel.
			d := g.Document()
			el := d.CreateElement("div")
			_ = g.AppendChild(d.Body(), el)
			for i := 0; i < 4000; i++ {
				g.DOMSetAttribute(el, "data-x", "v")
				_, _ = g.DOMGetAttribute(el, "data-x")
			}
			done(g)
		}},
		{ID: "dom-modify", Category: "dom", Run: func(g *browser.Global, done func(*browser.Global)) {
			d := g.Document()
			for i := 0; i < 1500; i++ {
				el := d.CreateElement("p")
				_ = g.AppendChild(d.Body(), el)
				_ = el.Remove()
			}
			done(g)
		}},
		{ID: "dom-query", Category: "dom", Run: func(g *browser.Global, done func(*browser.Global)) {
			d := g.Document()
			for i := 0; i < 40; i++ {
				el := d.CreateElement("li")
				el.SetAttribute("id", fmt.Sprintf("item-%d", i))
				_ = g.AppendChild(d.Body(), el)
			}
			for i := 0; i < 2500; i++ {
				g.Busy(400 * sim.Nanosecond) // query engine work
				_ = d.GetElementByID(fmt.Sprintf("item-%d", i%40))
			}
			done(g)
		}},
		{ID: "dom-traverse", Category: "dom", Run: func(g *browser.Global, done func(*browser.Global)) {
			d := g.Document()
			for i := 0; i < 200; i++ {
				el := d.CreateElement("div")
				_ = g.AppendChild(d.Body(), el)
			}
			for pass := 0; pass < 60; pass++ {
				d.Root().Walk(func(*dom.Element) {})
				g.Busy(40 * sim.Microsecond)
			}
			done(g)
		}},
		{ID: "timers-settimeout", Category: "timers", Run: func(g *browser.Global, done func(*browser.Global)) {
			n := 0
			var step func(gg *browser.Global)
			step = func(gg *browser.Global) {
				gg.BusyIters(2000)
				if n++; n < 40 {
					gg.SetTimeout(step, sim.Millisecond)
					return
				}
				done(gg)
			}
			g.SetTimeout(step, sim.Millisecond)
		}},
		{ID: "timers-interval", Category: "timers", Run: func(g *browser.Global, done func(*browser.Global)) {
			n := 0
			var id int
			id = g.SetInterval(func(gg *browser.Global) {
				gg.BusyIters(2000)
				if n++; n >= 25 {
					gg.ClearInterval(id)
					done(gg)
				}
			}, 2*sim.Millisecond)
		}},
		{ID: "raf-animation", Category: "timers", Run: func(g *browser.Global, done func(*browser.Global)) {
			n := 0
			var frame func(gg *browser.Global, ts float64)
			frame = func(gg *browser.Global, ts float64) {
				gg.BusyIters(3000)
				if n++; n < 20 {
					gg.RequestAnimationFrame(frame)
					return
				}
				done(gg)
			}
			g.RequestAnimationFrame(frame)
		}},
	}
}

// DromaeoResult holds one test's virtual runtime in milliseconds.
type DromaeoResult struct {
	ID       string
	Category string
	Millis   float64
}

// RunDromaeo executes the whole suite under a defense, one fresh
// environment per test, and returns per-test virtual runtimes.
func RunDromaeo(d defense.Defense, seed int64) ([]DromaeoResult, error) {
	suite := DromaeoSuite()
	results := make([]DromaeoResult, 0, len(suite))
	for i, test := range suite {
		env := d.NewEnv(defense.EnvOptions{Seed: seed + int64(i)})
		var start, end sim.Time
		completed := false
		test := test
		env.Browser.RunScript("dromaeo:"+test.ID, func(g *browser.Global) {
			start = g.Thread().Now()
			test.Run(g, func(gg *browser.Global) {
				end = gg.Thread().Now()
				completed = true
			})
		})
		if err := env.Browser.RunFor(10 * sim.Second); err != nil {
			return nil, fmt.Errorf("dromaeo %s: %w", test.ID, err)
		}
		if !completed {
			return nil, fmt.Errorf("dromaeo %s did not complete", test.ID)
		}
		results = append(results, DromaeoResult{
			ID:       test.ID,
			Category: test.Category,
			Millis:   (end - start).Milliseconds(),
		})
	}
	return results, nil
}

// DromaeoOverheads compares two suite runs and returns the per-test
// relative overhead (fraction) of `with` over `base`, keyed by test ID.
func DromaeoOverheads(base, with []DromaeoResult) map[string]float64 {
	baseBy := make(map[string]float64, len(base))
	for _, r := range base {
		baseBy[r.ID] = r.Millis
	}
	out := make(map[string]float64, len(with))
	for _, r := range with {
		b, ok := baseBy[r.ID]
		if !ok || b == 0 {
			continue
		}
		out[r.ID] = (r.Millis - b) / b
	}
	return out
}
