package workload

import (
	"fmt"
	"sort"

	"jskernel/internal/defense"
	"jskernel/internal/sim"
	"jskernel/internal/stats"
)

// RaptorSubtests returns the four tp6-1 sites (Table III). The sites keep
// loading after onload via JavaScript; the hero element marks the loading
// time Raptor reports.
func RaptorSubtests() []Site {
	return []Site{
		{
			Rank: 1, Domain: "https://amazon.example",
			Scripts:    []int64{220_000, 180_000, 90_000},
			Images:     [][2]int{{600, 400}, {300, 300}, {300, 300}, {120, 120}, {120, 120}},
			InlineWork: 18 * sim.Millisecond,
			Elements:   900,
			HeroDelay:  12 * sim.Millisecond,
		},
		{
			Rank: 2, Domain: "https://facebook.example",
			Scripts:    []int64{500_000, 350_000, 150_000, 80_000},
			Images:     [][2]int{{400, 400}, {200, 200}, {200, 200}, {200, 200}, {80, 80}, {80, 80}},
			InlineWork: 35 * sim.Millisecond,
			Elements:   1400,
			UsesWorker: true, WorkerWork: 25 * sim.Millisecond,
			HeroDelay: 20 * sim.Millisecond,
		},
		{
			Rank: 3, Domain: "https://google.example",
			Scripts:    []int64{120_000, 60_000},
			Images:     [][2]int{{272, 92}},
			InlineWork: 6 * sim.Millisecond,
			Elements:   250,
			HeroDelay:  4 * sim.Millisecond,
		},
		{
			Rank: 4, Domain: "https://youtube.example",
			Scripts:    []int64{700_000, 400_000, 200_000},
			Images:     [][2]int{{1280, 720}, {320, 180}, {320, 180}, {320, 180}, {168, 94}, {168, 94}},
			InlineWork: 45 * sim.Millisecond,
			Elements:   1100,
			UsesWorker: true, WorkerWork: 60 * sim.Millisecond,
			HeroDelay: 30 * sim.Millisecond,
		},
	}
}

// RaptorSuites returns the tp6 test suites. The paper runs tp6-(1–7);
// Table III details tp6-1, and the text reports the average hero-element
// overhead across suites (2.75% on Chrome, 3.85% on Firefox). Suites 2–3
// here cover further popular-site shapes: text-heavy reference sites,
// social feeds, commerce, and media.
func RaptorSuites() map[string][]Site {
	return map[string][]Site{
		"tp6-1": RaptorSubtests(),
		"tp6-2": {
			{
				Rank: 11, Domain: "https://wikipedia.example",
				Scripts:    []int64{90_000, 40_000},
				Images:     [][2]int{{220, 124}, {120, 120}},
				InlineWork: 8 * sim.Millisecond,
				Elements:   2200, // text-heavy DOM
				HeroDelay:  5 * sim.Millisecond,
			},
			{
				Rank: 12, Domain: "https://twitter.example",
				Scripts:    []int64{450_000, 250_000, 120_000},
				Images:     [][2]int{{400, 400}, {150, 150}, {150, 150}, {150, 150}},
				InlineWork: 28 * sim.Millisecond,
				Elements:   800,
				UsesWorker: true, WorkerWork: 15 * sim.Millisecond,
				HeroDelay: 16 * sim.Millisecond,
			},
			{
				Rank: 13, Domain: "https://ebay.example",
				Scripts:    []int64{300_000, 150_000},
				Images:     [][2]int{{500, 375}, {225, 225}, {225, 225}, {96, 96}},
				InlineWork: 20 * sim.Millisecond,
				Elements:   1000,
				HeroDelay:  10 * sim.Millisecond,
			},
			{
				Rank: 14, Domain: "https://imgur.example",
				Scripts:    []int64{200_000, 100_000},
				Images:     [][2]int{{1024, 768}, {640, 480}, {320, 240}, {160, 120}},
				InlineWork: 15 * sim.Millisecond,
				Elements:   500,
				HeroDelay:  8 * sim.Millisecond,
			},
		},
		"tp6-3": {
			{
				Rank: 21, Domain: "https://instagram.example",
				Scripts:    []int64{600_000, 300_000},
				Images:     [][2]int{{640, 640}, {320, 320}, {320, 320}, {150, 150}, {150, 150}},
				InlineWork: 30 * sim.Millisecond,
				Elements:   700,
				UsesWorker: true, WorkerWork: 20 * sim.Millisecond,
				HeroDelay: 18 * sim.Millisecond,
			},
			{
				Rank: 22, Domain: "https://reddit.example",
				Scripts:    []int64{350_000, 200_000, 90_000},
				Images:     [][2]int{{140, 140}, {140, 140}, {140, 140}, {70, 70}},
				InlineWork: 22 * sim.Millisecond,
				Elements:   1600,
				HeroDelay:  12 * sim.Millisecond,
			},
			{
				Rank: 23, Domain: "https://netflix.example",
				Scripts:    []int64{800_000, 350_000},
				Images:     [][2]int{{1280, 720}, {342, 192}, {342, 192}, {342, 192}, {342, 192}},
				InlineWork: 40 * sim.Millisecond,
				Elements:   600,
				UsesWorker: true, WorkerWork: 35 * sim.Millisecond,
				HeroDelay: 25 * sim.Millisecond,
			},
			{
				Rank: 24, Domain: "https://bing.example",
				Scripts:    []int64{150_000, 70_000},
				Images:     [][2]int{{310, 110}},
				InlineWork: 7 * sim.Millisecond,
				Elements:   300,
				HeroDelay:  4 * sim.Millisecond,
			},
		},
	}
}

// RaptorResult is one (site, defense) cell of Table III.
type RaptorResult struct {
	Site    string
	Defense string
	Summary stats.Summary // of hero-element load times in ms
}

// RunRaptor loads each tp6-1 subtest `loads` times under the defense,
// skipping the first visit (tab-open effects), and summarizes the hero
// load times — the Table III methodology.
func RunRaptor(d defense.Defense, loads int, seed int64) ([]RaptorResult, error) {
	return RunRaptorSuite(d, RaptorSubtests(), loads, seed)
}

// RunRaptorSuite runs one tp6 suite's subtests under the defense.
func RunRaptorSuite(d defense.Defense, suite []Site, loads int, seed int64) ([]RaptorResult, error) {
	if loads < 2 {
		loads = 2
	}
	var results []RaptorResult
	for _, site := range suite {
		var samples []float64
		for v := 0; v < loads; v++ {
			env := d.NewEnv(defense.EnvOptions{Seed: seed + int64(site.Rank*1000+v)})
			load, err := LoadSite(env, site)
			if err != nil {
				return nil, fmt.Errorf("raptor %s: %w", site.Domain, err)
			}
			if v == 0 {
				continue // skip the first load, like the paper
			}
			samples = append(samples, load.HeroMs)
		}
		results = append(results, RaptorResult{
			Site:    site.Domain,
			Defense: d.ID,
			Summary: stats.Summarize(samples),
		})
	}
	return results, nil
}

// RaptorAggregateOverhead runs every tp6 suite under base and base+kernel
// and returns the mean relative hero-load overhead across all subtests —
// the number the paper quotes as 2.75% (Chrome) and 3.85% (Firefox).
func RaptorAggregateOverhead(base, kernel defense.Defense, loads int, seed int64) (float64, error) {
	var overheads []float64
	// Run suites in sorted name order: the overhead mean is a float
	// accumulation, so iteration order must not follow map order.
	suites := RaptorSuites()
	names := make([]string, 0, len(suites))
	for name := range suites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		suite := suites[name]
		baseRes, err := RunRaptorSuite(base, suite, loads, seed)
		if err != nil {
			return 0, fmt.Errorf("raptor %s base: %w", name, err)
		}
		kernelRes, err := RunRaptorSuite(kernel, suite, loads, seed)
		if err != nil {
			return 0, fmt.Errorf("raptor %s kernel: %w", name, err)
		}
		for i := range baseRes {
			if baseRes[i].Summary.Mean > 0 {
				overheads = append(overheads,
					stats.RelativeOverhead(baseRes[i].Summary.Mean, kernelRes[i].Summary.Mean))
			}
		}
	}
	return stats.Mean(overheads), nil
}
