package workload

import (
	"strings"
	"testing"

	"jskernel/internal/defense"
)

// The §V-B3 regression tests: the three bug classes the paper's week-long
// user test surfaced must not exist in this kernel — each scenario's
// observable output under JSKernel matches legacy Chrome.

func TestUserJourneysPassOnLegacy(t *testing.T) {
	for _, r := range RunUserJourneys(defense.Chrome(), 600) {
		if r.Err != nil {
			t.Errorf("%s on legacy: %v", r.Scenario, r.Err)
		}
		if r.Output == "" {
			t.Errorf("%s on legacy produced no output", r.Scenario)
		}
	}
}

func TestUserJourneysPassUnderJSKernel(t *testing.T) {
	legacy := RunUserJourneys(defense.Chrome(), 600)
	kernel := RunUserJourneys(defense.JSKernel("chrome"), 600)
	for i := range legacy {
		k := kernel[i]
		if k.Err != nil {
			t.Errorf("%s under JSKernel: %v (the paper's §V-B3 bug class resurfaced)", k.Scenario, k.Err)
			continue
		}
		switch k.Scenario {
		case "overleaf-compile":
			// Bug class 1: absolute worker paths must work.
			if k.Output != legacy[i].Output {
				t.Errorf("overleaf output %q != legacy %q", k.Output, legacy[i].Output)
			}
		case "calendar-weekdays":
			// Bug class 2: weekday arithmetic must stay consistent —
			// consecutive days, no two-day shift.
			if !validWeek(k.Output) {
				t.Errorf("calendar week %q has inconsistent day progression", k.Output)
			}
		case "maps-worker-location":
			// Bug class 3: the worker must see ITS OWN location, never the
			// kernel worker's internals.
			if !strings.Contains(k.Output, "tiles.js") {
				t.Errorf("maps worker location %q does not point at the user worker", k.Output)
			}
			if strings.Contains(strings.ToLower(k.Output), "kernel") {
				t.Errorf("maps worker location %q leaks kernel internals", k.Output)
			}
		}
	}
}

// validWeek checks that seven rendered day names advance one day at a
// time.
func validWeek(week string) bool {
	names := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	fields := strings.Fields(week)
	if len(fields) != 7 {
		return false
	}
	for i := 1; i < len(fields); i++ {
		prev, ok1 := idx[fields[i-1]]
		cur, ok2 := idx[fields[i]]
		if !ok1 || !ok2 || (prev+1)%7 != cur {
			return false
		}
	}
	return true
}
