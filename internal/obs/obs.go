// Package obs is the kernel's streaming observability layer: the
// consumers that watch the deterministic trace stream while it is being
// emitted, instead of post-processing a buffered session.
//
// Three engines attach to a trace.Session through the fan-out Sink seam:
//
//   - the virtual-time Profiler (profiler.go) attributes dispatch
//     latency and simulated time to (run, scope, API, policy rule),
//     emitting a pprof-style tree and collapsed-stack flamegraph text;
//   - the online forensics Detectors (detect.go) flag web-concurrency
//     attack signatures — implicit-clock loops, event-loop probing,
//     queue-contention bursts — as structured findings with event-ID
//     evidence chains;
//   - the telemetry report (report.go) joins profiler, detectors and the
//     session's metrics registry into machine-readable JSON plus a
//     compact text summary.
//
// Everything here consumes only the stamped record stream, so outputs
// are byte-identical across reruns and across parallel widths: parallel
// cells trace into private sessions that are absorbed into the parent in
// cell-index order, and Absorb re-emits through the parent's sinks.
//
// The forensics layer additionally reconstructs the paper's attack
// measurements from the browser's observability events (extract.go):
// given only the native event stream of a run, it re-derives the exact
// per-channel readings the attack harness reported and re-judges the
// leak with the same statistics — which is what lets the golden
// forensics test demand bit-exact agreement with Table I's verdicts.
package obs

import (
	"sort"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/vuln"
)

// NativeEvent is one browser-layer observability event reconstructed
// from an OpNative trace record. It carries everything the native
// TraceEvent carried, plus the session-wide sequence number that
// forensic findings cite as evidence.
type NativeEvent struct {
	// Seq is the session-wide record sequence number.
	Seq uint64
	// Run is the environment generation the event belongs to.
	Run int
	// Kind is the native event kind (resolved from the record's API name).
	Kind browser.TraceKind
	// At is the event's virtual timestamp (in-task cursor time for
	// callback-entry events).
	At sim.Time
	// Thread is the simulated thread the event occurred on.
	Thread int
	// WorkerID is the worker involved, when applicable (0 = main).
	WorkerID int
	// URL is the resource involved, when applicable.
	URL string
	// Detail qualifies the event ("interval", "fetch", "image", ...).
	Detail string
	// Value is the event's numeric payload (scope tokens, fetch IDs).
	Value int64
	// Aux is the secondary payload (requested delays, clock-read bits).
	Aux int64
}

// Collector is a Sink that gathers the native observability events of a
// session, grouped by run, in emission order. The forensics extractors
// replay these per-run streams to reconstruct attack measurements.
type Collector struct {
	byRun map[int][]NativeEvent
}

var _ trace.Sink = (*Collector)(nil)

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byRun: make(map[int][]NativeEvent)}
}

// Observe ingests one record, keeping only native events whose kind
// resolves (unknown kinds are silently dropped, mirroring how the vuln
// registry ignores events it has no state machine for).
func (c *Collector) Observe(r trace.Record) {
	if r.Op != trace.OpNative {
		return
	}
	kind, ok := browser.KindByName(r.API)
	if !ok {
		return
	}
	c.byRun[r.Run] = append(c.byRun[r.Run], NativeEvent{
		Seq:      r.Seq,
		Run:      r.Run,
		Kind:     kind,
		At:       r.VT,
		Thread:   r.Thread,
		WorkerID: r.WorkerID,
		URL:      r.URL,
		Detail:   r.Reason,
		Value:    r.Value,
		Aux:      r.Aux,
	})
}

// Runs lists the runs that produced native events, sorted.
func (c *Collector) Runs() []int {
	runs := make([]int, 0, len(c.byRun))
	for run := range c.byRun {
		runs = append(runs, run)
	}
	sort.Ints(runs)
	return runs
}

// Run returns one run's native events in emission order.
func (c *Collector) Run(run int) []NativeEvent {
	return c.byRun[run]
}

// MirrorExploited replays a run's native events into a fresh
// vulnerability registry and reports whether the CVE's triggering
// sequence appears, along with the sequence numbers of the events that
// advanced the exploit to its trigger (the evidence chain: the flipping
// event, preceded by the state-machine feeders the registry consumed).
//
// Because the defense layer bridges every native trace event into the
// session before any other consumer sees it, and the registry's
// detectors read only fields the bridge preserves, this mirror reaches
// exactly the same verdict as the registry that was attached to the
// live environment.
func MirrorExploited(events []NativeEvent, cve vuln.CVE) (bool, []uint64) {
	reg := vuln.NewRegistry(cve)
	for _, ev := range events {
		reg.Trace(browser.TraceEvent{
			Kind:     ev.Kind,
			At:       ev.At,
			ThreadID: ev.Thread,
			WorkerID: ev.WorkerID,
			URL:      ev.URL,
			Detail:   ev.Detail,
			Value:    ev.Value,
			Aux:      ev.Aux,
		})
		if reg.Exploited(cve) {
			return true, []uint64{ev.Seq}
		}
	}
	return false, nil
}
