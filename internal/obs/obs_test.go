package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/vuln"
)

// nat builds one native-event record the way the defense bridge emits
// them: OpNative with the trace-kind name as the API.
func nat(seq uint64, run int, kind, detail string, value, aux int64) trace.Record {
	return trace.Record{
		Seq:    seq,
		Run:    run,
		Op:     trace.OpNative,
		API:    kind,
		Reason: detail,
		Value:  value,
		Aux:    aux,
	}
}

func TestCollectorGroupsByRun(t *testing.T) {
	c := NewCollector()
	c.Observe(nat(1, 1, "timer-fired", "", 1, 0))
	c.Observe(nat(2, 2, "clock-read", "", 1, 42))
	c.Observe(nat(3, 1, "message-callback", "", 1, 0))
	// Non-native and unknown-kind records are dropped.
	c.Observe(trace.Record{Seq: 4, Run: 1, Op: trace.OpEnqueue, API: "setTimeout"})
	c.Observe(nat(5, 1, "no-such-kind", "", 1, 0))

	if got := c.Runs(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Runs() = %v, want [1 2]", got)
	}
	r1 := c.Run(1)
	if len(r1) != 2 || r1[0].Seq != 1 || r1[1].Seq != 3 {
		t.Fatalf("run 1 events = %+v, want seqs 1, 3 in order", r1)
	}
	if r1[0].Kind != browser.TraceTimerFired {
		t.Fatalf("kind not resolved: %v", r1[0].Kind)
	}
	r2 := c.Run(2)
	if len(r2) != 1 || r2[0].Aux != 42 {
		t.Fatalf("run 2 events = %+v, want one event with Aux 42", r2)
	}
}

func TestProfilerAttribution(t *testing.T) {
	p := NewProfiler()
	p.Observe(trace.Record{Seq: 1, Run: 1, Op: trace.OpInstall, API: "setTimeout", Reason: "chrome-extension"})
	// Call-level verdict names the rule, then the event enqueues and
	// dispatches 200ns later.
	p.Observe(trace.Record{Seq: 2, Run: 1, Op: trace.OpPolicy, API: "setTimeout", Action: "delay"})
	p.Observe(trace.Record{Seq: 3, Run: 1, Op: trace.OpEnqueue, API: "setTimeout", Scope: 5, Event: 1, VT: 100})
	p.Observe(trace.Record{Seq: 4, Run: 1, Op: trace.OpDispatch, API: "setTimeout", Scope: 5, Event: 1, VT: 300})
	// An event with no preceding call-level verdict falls back to
	// "scheduled".
	p.Observe(trace.Record{Seq: 5, Run: 1, Op: trace.OpEnqueue, API: "postMessage", Scope: 5, Event: 2, VT: 300})
	p.Observe(trace.Record{Seq: 6, Run: 1, Op: trace.OpDispatch, API: "postMessage", Scope: 5, Event: 2, VT: 1300})
	// A shed event never dispatches and is charged nowhere.
	p.Observe(trace.Record{Seq: 7, Run: 1, Op: trace.OpEnqueue, API: "setTimeout", Scope: 5, Event: 3, VT: 400})
	p.Observe(trace.Record{Seq: 8, Run: 1, Op: trace.OpShed, API: "setTimeout", Scope: 5, Event: 3, VT: 400})

	nodes := p.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2: %+v", len(nodes), nodes)
	}
	// Sorted by (run, scope, api, rule): postMessage before setTimeout.
	if nodes[0].API != "postMessage" || nodes[0].Rule != "scheduled" || nodes[0].WaitTotal != 1000 {
		t.Fatalf("node 0 = %+v, want postMessage/scheduled wait 1000", nodes[0])
	}
	if nodes[1].API != "setTimeout" || nodes[1].Rule != "delay" ||
		nodes[1].Count != 1 || nodes[1].WaitTotal != 200 || nodes[1].WaitMax != 200 {
		t.Fatalf("node 1 = %+v, want setTimeout/delay count 1 wait 200", nodes[1])
	}

	rps := p.RunProfiles()
	if len(rps) != 1 {
		t.Fatalf("got %d run profiles, want 1", len(rps))
	}
	rp := rps[0]
	if rp.Policy != "chrome-extension" || rp.Dispatches != 2 || rp.WaitTotal != 1200 || rp.VirtualEnd != sim.Time(1300) {
		t.Fatalf("run profile = %+v", rp)
	}

	var folded strings.Builder
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	want := "run1;scope5;postMessage;scheduled 1000\nrun1;scope5;setTimeout;delay 200\n"
	if folded.String() != want {
		t.Fatalf("folded output:\n%q\nwant:\n%q", folded.String(), want)
	}

	var tree strings.Builder
	if err := p.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"2 dispatches", "policy=chrome-extension", "scope 5", "setTimeout", "delay"} {
		if !strings.Contains(tree.String(), frag) {
			t.Errorf("tree output missing %q:\n%s", frag, tree.String())
		}
	}
}

func TestDetectorsThresholdsAndOrdering(t *testing.T) {
	cfg := DefaultDetectorConfig()
	d := NewDetectors(cfg)
	seq := uint64(0)
	next := func() uint64 { seq++; return seq }

	// A zero-delay timer chain on token 7 crosses the implicit-clock
	// threshold; the same chain's timers plus explicit clock reads cross
	// the event-loop-probe thresholds too.
	for i := 0; i < cfg.ImplicitClockMin; i++ {
		d.Observe(nat(next(), 1, "timer-fired", "", 7, 0))
	}
	for i := 0; i < cfg.ProbeMinReads; i++ {
		d.Observe(nat(next(), 1, "clock-read", "", 7, 0))
	}
	// One lone message callback stays under every threshold.
	d.Observe(nat(next(), 1, "message-callback", "", 9, 0))
	// A shed registration always signifies.
	d.Observe(trace.Record{Seq: next(), Run: 1, Op: trace.OpShed, Scope: 3, Event: 1})

	sigs := d.Finish()
	if len(sigs) != 3 {
		t.Fatalf("got %d signatures, want 3: %+v", len(sigs), sigs)
	}
	// Sorted by (run, detector, subject id).
	if sigs[0].Detector != DetectEventLoopProbe || sigs[0].SubjectID != 7 || sigs[0].Count != cfg.ProbeMinReads {
		t.Fatalf("sig 0 = %+v", sigs[0])
	}
	if sigs[1].Detector != DetectImplicitClockTimer || sigs[1].SubjectID != 7 || sigs[1].Count != cfg.ImplicitClockMin {
		t.Fatalf("sig 1 = %+v", sigs[1])
	}
	if len(sigs[1].Evidence) != cfg.EvidenceCap || sigs[1].Evidence[0] != 1 {
		t.Fatalf("evidence = %v, want first %d seqs", sigs[1].Evidence, cfg.EvidenceCap)
	}
	if sigs[2].Detector != DetectQueueShed || sigs[2].Subject != "kernel-scope" || sigs[2].SubjectID != 3 {
		t.Fatalf("sig 2 = %+v", sigs[2])
	}
}

func TestMirrorExploited(t *testing.T) {
	events := []NativeEvent{
		{Seq: 10, Kind: browser.TraceWorkerTerminated, WorkerID: 1, Detail: "pending-fetch"},
		{Seq: 11, Kind: browser.TraceFetchAbort, Detail: "orphaned"},
	}
	hit, evidence := MirrorExploited(events, vuln.CVE20185092)
	if !hit {
		t.Fatal("orphaned abort after termination should mirror CVE-2018-5092")
	}
	if !reflect.DeepEqual(evidence, []uint64{11}) {
		t.Fatalf("evidence = %v, want [11]", evidence)
	}
	// A clean abort never flips the mirror.
	hit, evidence = MirrorExploited(events[:1], vuln.CVE20185092)
	if hit || evidence != nil {
		t.Fatalf("termination alone mirrored exploited (evidence %v)", evidence)
	}
}

// clockBits encodes a performance.now value the way the browser's
// observability wrapper stores it in Aux.
func clockBits(v float64) int64 { return int64(math.Float64bits(v)) }

func TestExtractSync(t *testing.T) {
	events := []NativeEvent{
		// Pre-warmup noise: a worker-side message (token 2) and an
		// interval fire are filtered out.
		{Seq: 1, Kind: browser.TraceMessageCallback, Value: 2},
		{Seq: 2, Kind: browser.TraceTimerFired, Value: 1, Detail: "interval"},
		// Warmup timer, then the measurement: start read, op, end read,
		// three worker ticks, closing zero-delay timer.
		{Seq: 3, Kind: browser.TraceTimerFired, Value: 1, Aux: int64(60 * sim.Millisecond)},
		{Seq: 4, Kind: browser.TraceClockRead, Value: 1, Aux: clockBits(100)},
		{Seq: 5, Kind: browser.TraceClockRead, Value: 1, Aux: clockBits(103.5)},
		{Seq: 6, Kind: browser.TraceMessageCallback, Value: 1},
		{Seq: 7, Kind: browser.TraceMessageCallback, Value: 1},
		{Seq: 8, Kind: browser.TraceMessageCallback, Value: 1},
		{Seq: 9, Kind: browser.TraceTimerFired, Value: 1, Aux: 0},
	}
	got := ExtractReadings("history-sniffing", events)
	want := map[string]float64{"worker-ticks": 3, "perf-now": 3.5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractReadings = %v, want %v", got, want)
	}
	// Without the closing timer the measurement never completed.
	if got := ExtractReadings("history-sniffing", events[:8]); got != nil {
		t.Fatalf("incomplete run extracted %v, want nil", got)
	}
	// Unknown attacks have no shape.
	if got := ExtractReadings("no-such-attack", events); got != nil {
		t.Fatalf("unknown attack extracted %v, want nil", got)
	}
}

func TestExtractEdgeReplaysEveryRead(t *testing.T) {
	mk := func(vals ...float64) []NativeEvent {
		evs := make([]NativeEvent, len(vals))
		for i, v := range vals {
			evs[i] = NativeEvent{Seq: uint64(i + 1), Kind: browser.TraceClockRead, Value: 1, Aux: clockBits(v)}
		}
		return evs
	}
	// start=5, two aligned reads, then the edge: the first 6 breaks the
	// align loop, the second becomes cur, the third is one pad iteration,
	// and 7 exits — every read consumed.
	got := ExtractReadings("clock-edge", mk(5, 5, 5, 6, 6, 6, 7))
	want := map[string]float64{"edge-pad": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edge-pad = %v, want %v", got, want)
	}
	// Leftover reads mean the stream is not a clock-edge measurement.
	if got := ExtractReadings("clock-edge", mk(5, 5, 6, 6, 7, 7)); got != nil {
		t.Fatalf("stream with leftover reads extracted %v, want nil", got)
	}
}

func TestJudgeTiming(t *testing.T) {
	mkRep := func(a, b float64) CellReadings {
		return CellReadings{Variants: [2]map[string]float64{
			{"worker-ticks": a, "_tick-total": 999},
			{"worker-ticks": b},
		}}
	}
	// Widely separated variants: the channel leaks, the defense failed.
	leakReps := []CellReadings{mkRep(10, 100), mkRep(11, 101), mkRep(10, 99)}
	verdicts, defended := JudgeTiming(leakReps)
	if defended {
		t.Fatal("separated variants judged defended")
	}
	if len(verdicts) != 1 || verdicts[0].Channel != "worker-ticks" || !verdicts[0].Leaks {
		t.Fatalf("verdicts = %+v", verdicts)
	}
	// "_"-prefixed channels are diagnostic-only and never judged.
	for _, v := range verdicts {
		if strings.HasPrefix(v.Channel, "_") {
			t.Fatalf("underscore channel judged: %+v", v)
		}
	}
	// Identical variants: no distinguishable channel, defense held.
	sameReps := []CellReadings{mkRep(10, 10), mkRep(11, 11), mkRep(10, 10)}
	if _, defended := JudgeTiming(sameReps); !defended {
		t.Fatal("identical variants judged undefended")
	}
	// A rep whose reconstruction failed (nil variant) contributes nothing.
	failed := append(leakReps, CellReadings{})
	if _, defended := JudgeTiming(failed); defended {
		t.Fatal("nil-variant rep flipped the verdict")
	}
}
