package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
	"jskernel/internal/stats"
)

// Measurement reconstruction: given only a run's native observability
// events, re-derive the per-channel readings the timing-attack harness
// in internal/attack reported for that run. Each Table I attack has a
// fixed measurement shape (warmup timer, implicit-clock ticks between
// two markers, explicit clock-read deltas), so the extractor replays
// the shape over the event stream. When a marker is missing — the
// harness errored or never completed — extraction fails and returns
// nil, which mirrors exactly how a failed measurement contributes no
// samples to the verdict.
//
// The channel names and harness constants below are deliberate mirrors
// of internal/attack (which obs must not import: the forensics layer's
// value is that it reconstructs measurements from the stream alone,
// without the harness's in-process state). The golden forensics test in
// internal/expr pins the mirror: if the harness changes shape, the
// reconstruction drifts from the actual verdicts and the test fails.
const (
	chWorkerTicks = "worker-ticks"
	chTickLoop    = "tick-loop"
	chPerfNow     = "perf-now"
	chEdgePad     = "edge-pad"
	chFrames      = "anim-frames"
	chCues        = "video-cues"
	chMaxGap      = "max-gap"

	// mainToken is the scope token of the main window: the browser
	// allocates token 1 to the first scope it creates.
	mainToken = 1
	// warmupAuxNs is the harness warmup delay (60ms) as the raw Aux
	// value a timer-fired event carries.
	warmupAuxNs = int64(60 * sim.Millisecond)
	// edgeMaxProbe caps the clock-edge alignment/padding loops.
	edgeMaxProbe = 40000
	// loopscanMinProbes is the harness's minimum probe count below
	// which loopscan reports a horizon failure.
	loopscanMinProbes = 10
)

// ExtractReadings reconstructs the per-channel measurement of one
// timing-attack run from its native event stream. It returns nil when
// the run's measurement cannot be reconstructed (harness never
// completed under this defense), mirroring a skipped variant.
func ExtractReadings(attackID string, events []NativeEvent) map[string]float64 {
	fs := filterMeasurement(events)
	switch attackID {
	case "history-sniffing", "svg-filtering", "floating-point":
		return extractSync(fs)
	case "cache-attack", "script-parsing", "image-decoding":
		return extractAsync(fs)
	case "css-animation":
		return extractFrame(fs, "animation", chFrames)
	case "video-webvtt":
		return extractFrame(fs, "cue", chCues)
	case "clock-edge":
		return extractEdge(fs)
	case "loopscan":
		return extractLoopscan(fs)
	}
	return nil
}

// filterMeasurement keeps the main-window events the harness shapes are
// built from: plain timer fires, performance.now reads, message
// callbacks, frame ticks and load completions. Worker-side events
// (token ≠ 1) and Date.now reads are not part of any harness.
func filterMeasurement(events []NativeEvent) []NativeEvent {
	var fs []NativeEvent
	for _, ev := range events {
		if ev.Value != mainToken {
			continue
		}
		switch ev.Kind {
		case browser.TraceTimerFired:
			if ev.Detail != "" { // interval timers: not used by harnesses
				continue
			}
		case browser.TraceClockRead:
			if ev.Detail != "" { // "date" reads: not used by harnesses
				continue
			}
		case browser.TraceMessageCallback, browser.TraceFrameTick, browser.TraceLoadDone:
		default:
			continue
		}
		fs = append(fs, ev)
	}
	return fs
}

// clockValue decodes a clock-read event's observed value.
func clockValue(ev NativeEvent) float64 {
	return math.Float64frombits(uint64(ev.Aux))
}

// warmupIndex finds the harness's warmup timer: the first main-window
// timer callback whose requested delay is the 60ms warmup.
func warmupIndex(fs []NativeEvent) int {
	for i, ev := range fs {
		if ev.Kind == browser.TraceTimerFired && ev.Aux == warmupAuxNs {
			return i
		}
	}
	return -1
}

// firstAfter finds the first event after index w matching pred.
func firstAfter(fs []NativeEvent, w int, pred func(NativeEvent) bool) int {
	for i := w + 1; i < len(fs); i++ {
		if pred(fs[i]) {
			return i
		}
	}
	return -1
}

// countBetween counts events strictly between indices lo and hi
// matching pred.
func countBetween(fs []NativeEvent, lo, hi int, pred func(NativeEvent) bool) int {
	n := 0
	for i := lo + 1; i < hi; i++ {
		if pred(fs[i]) {
			n++
		}
	}
	return n
}

// perfNowDelta reads the measurement's two explicit clock samples —
// the first two performance.now reads after the warmup fired — and
// returns their difference.
func perfNowDelta(fs []NativeEvent, w int) (float64, bool) {
	var vals []float64
	for i := w + 1; i < len(fs) && len(vals) < 2; i++ {
		if fs[i].Kind == browser.TraceClockRead {
			vals = append(vals, clockValue(fs[i]))
		}
	}
	if len(vals) < 2 {
		return 0, false
	}
	return vals[1] - vals[0], true
}

// extractSync reconstructs measureSyncOp: worker ticks delivered
// between the warmup timer and the zero-delay closing timer, plus the
// performance.now delta around the operation.
func extractSync(fs []NativeEvent) map[string]float64 {
	w := warmupIndex(fs)
	if w < 0 {
		return nil
	}
	c := firstAfter(fs, w, func(ev NativeEvent) bool {
		return ev.Kind == browser.TraceTimerFired && ev.Aux == 0
	})
	if c < 0 {
		return nil
	}
	dt, ok := perfNowDelta(fs, w)
	if !ok {
		return nil
	}
	ticks := countBetween(fs, w, c, func(ev NativeEvent) bool {
		return ev.Kind == browser.TraceMessageCallback
	})
	return map[string]float64{chWorkerTicks: float64(ticks), chPerfNow: dt}
}

// extractAsync reconstructs measureAsyncOp: tick-loop callbacks between
// the warmup timer and the load completion, plus the performance.now
// delta.
func extractAsync(fs []NativeEvent) map[string]float64 {
	w := warmupIndex(fs)
	if w < 0 {
		return nil
	}
	l := firstAfter(fs, w, func(ev NativeEvent) bool {
		return ev.Kind == browser.TraceLoadDone
	})
	if l < 0 {
		return nil
	}
	dt, ok := perfNowDelta(fs, w)
	if !ok {
		return nil
	}
	ticks := countBetween(fs, w, l, func(ev NativeEvent) bool {
		return ev.Kind == browser.TraceTimerFired && ev.Aux == 0
	})
	return map[string]float64{chTickLoop: float64(ticks), chPerfNow: dt}
}

// extractFrame reconstructs measureWithFrameClock: frame ticks of the
// given detail between the warmup timer and the load completion.
func extractFrame(fs []NativeEvent, detail, channel string) map[string]float64 {
	w := warmupIndex(fs)
	if w < 0 {
		return nil
	}
	l := firstAfter(fs, w, func(ev NativeEvent) bool {
		return ev.Kind == browser.TraceLoadDone
	})
	if l < 0 {
		return nil
	}
	dt, ok := perfNowDelta(fs, w)
	if !ok {
		return nil
	}
	frames := countBetween(fs, w, l, func(ev NativeEvent) bool {
		return ev.Kind == browser.TraceFrameTick && ev.Detail == detail
	})
	return map[string]float64{channel: float64(frames), chPerfNow: dt}
}

// extractEdge replays the clock-edge attack loop over the run's ordered
// clock-read values. The harness reads the clock once per loop-condition
// evaluation (including the evaluation that exits), so the replay must
// consume reads identically and end with every read accounted for.
func extractEdge(fs []NativeEvent) map[string]float64 {
	var vals []float64
	for _, ev := range fs {
		if ev.Kind == browser.TraceClockRead {
			vals = append(vals, clockValue(ev))
		}
	}
	i := 0
	read := func() (float64, bool) {
		if i >= len(vals) {
			return 0, false
		}
		v := vals[i]
		i++
		return v, true
	}
	start, ok := read()
	if !ok {
		return nil
	}
	guard := 0
	for {
		v, ok := read()
		if !ok {
			return nil
		}
		if v == start && guard < edgeMaxProbe {
			guard++
			continue
		}
		break
	}
	cur, ok := read()
	if !ok {
		return nil
	}
	pad := 0
	for {
		v, ok := read()
		if !ok {
			return nil
		}
		if v == cur && pad < edgeMaxProbe {
			pad++
			continue
		}
		break
	}
	if i != len(vals) {
		// Leftover reads mean the stream is not a clock-edge run.
		return nil
	}
	return map[string]float64{chEdgePad: float64(pad)}
}

// extractLoopscan reconstructs measureLoopscan. Probe tasks are
// identified structurally: a probe is the only main-window timer
// callback immediately followed by a clock read (victim bursts only
// busy-loop; worker-spray callbacks only post). Probe k's first read is
// its gap check against probe k-1's last read, so the maxima replay
// directly.
func extractLoopscan(fs []NativeEvent) map[string]float64 {
	var probes []int
	for i, ev := range fs {
		if ev.Kind == browser.TraceTimerFired && i+1 < len(fs) && fs[i+1].Kind == browser.TraceClockRead {
			probes = append(probes, i)
		}
	}
	if len(probes) < loopscanMinProbes {
		return nil
	}
	firstRead := make([]float64, len(probes))
	lastRead := make([]float64, len(probes))
	for k, pi := range probes {
		j := pi + 1
		firstRead[k] = clockValue(fs[j])
		for j+1 < len(fs) && fs[j+1].Kind == browser.TraceClockRead {
			j++
		}
		lastRead[k] = clockValue(fs[j])
	}
	maxGap, maxNow := 0.0, 0.0
	for k := 1; k < len(probes); k++ {
		gap := countBetween(fs, probes[k-1], probes[k], func(ev NativeEvent) bool {
			return ev.Kind == browser.TraceMessageCallback
		})
		if d := float64(gap); d > maxGap {
			maxGap = d
		}
		if d := firstRead[k] - lastRead[k-1]; d > maxNow {
			maxNow = d
		}
	}
	return map[string]float64{chMaxGap: maxGap, chPerfNow: maxNow}
}

// CellReadings is one repetition's reconstructed measurements: one
// reading set per secret variant, nil where reconstruction failed.
type CellReadings struct {
	Variants [2]map[string]float64 `json:"variants"`
}

// ChannelVerdict is the per-channel statistical outcome of the
// forensic re-judgement.
type ChannelVerdict struct {
	Channel string  `json:"channel"`
	MeanA   float64 `json:"mean_a"`
	MeanB   float64 `json:"mean_b"`
	CohensD float64 `json:"cohens_d"`
	Leaks   bool    `json:"leaks"`
}

// MarshalJSON keeps verdicts encodable: a zero-variance channel with
// distinct means has an infinite effect size, which JSON cannot carry
// as a number, so non-finite values are rendered as strings.
func (v ChannelVerdict) MarshalJSON() ([]byte, error) {
	var d any = v.CohensD
	if math.IsInf(v.CohensD, 0) || math.IsNaN(v.CohensD) {
		d = fmt.Sprintf("%v", v.CohensD)
	}
	return json.Marshal(struct {
		Channel string  `json:"channel"`
		MeanA   float64 `json:"mean_a"`
		MeanB   float64 `json:"mean_b"`
		CohensD any     `json:"cohens_d"`
		Leaks   bool    `json:"leaks"`
	}{v.Channel, v.MeanA, v.MeanB, d, v.Leaks})
}

// JudgeTiming merges reconstructed readings across repetitions (in rep
// order, exactly like the harness merges its samples) and re-judges
// each channel with the paper's distinguishability criterion. It
// returns the per-channel verdicts and whether the defense held — true
// when no channel's effect size reaches the threshold.
func JudgeTiming(reps []CellReadings) ([]ChannelVerdict, bool) {
	merged := make(map[string][2][]float64)
	for _, rep := range reps {
		for variant := 0; variant < 2; variant++ {
			m := rep.Variants[variant]
			if m == nil {
				continue
			}
			chans := make([]string, 0, len(m))
			for ch := range m {
				chans = append(chans, ch)
			}
			sort.Strings(chans)
			for _, ch := range chans {
				v := m[ch]
				if strings.HasPrefix(ch, "_") || math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				pair := merged[ch]
				pair[variant] = append(pair[variant], v)
				merged[ch] = pair
			}
		}
	}
	chans := make([]string, 0, len(merged))
	for ch := range merged {
		chans = append(chans, ch)
	}
	sort.Strings(chans)
	var verdicts []ChannelVerdict
	defended := true
	for _, ch := range chans {
		pair := merged[ch]
		if len(pair[0]) == 0 || len(pair[1]) == 0 {
			continue
		}
		cv := ChannelVerdict{
			Channel: ch,
			MeanA:   stats.Mean(pair[0]),
			MeanB:   stats.Mean(pair[1]),
			CohensD: stats.CohensD(pair[0], pair[1]),
		}
		cv.Leaks = cv.CohensD >= stats.DistinguishableThreshold
		if cv.Leaks {
			defended = false
		}
		verdicts = append(verdicts, cv)
	}
	return verdicts, defended
}
