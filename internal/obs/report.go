package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"jskernel/internal/hb"
	"jskernel/internal/trace"
)

// The telemetry report joins the session's streaming consumers — the
// virtual-time profiler, the forensics detectors, the metrics registry
// and the lifecycle validator — into one machine-readable JSON document
// and one compact text summary. Both renderings are pure functions of
// the consumers' accumulated state, so they inherit the stream's
// determinism: byte-identical across reruns and parallel widths.

// ReportInput bundles the consumers a report is rendered from. Any
// field may be nil/empty; the report includes what it is given.
type ReportInput struct {
	// Title labels the report ("dromaeo", "table1", ...).
	Title string
	// Profiler supplies the per-run headers and dispatch-wait profile.
	Profiler *Profiler
	// Signatures are the detectors' findings (pass Detectors.Finish()).
	Signatures []Signature
	// Races are the happens-before analysis's findings (pass
	// hb.Detector.Findings()), joined into the same report so one
	// document carries both the forensic and the race-detection story.
	Races []hb.Finding
	// Metrics is the session's metrics registry.
	Metrics *trace.Metrics
	// Validation carries the lifecycle validator's report and error.
	Validation    *trace.Report
	ValidationErr error
}

// reportJSON is the document schema.
type reportJSON struct {
	Title           string          `json:"title,omitempty"`
	Runs            []RunProfile    `json:"runs"`
	Profile         []ProfileNode   `json:"profile"`
	Signatures      []Signature     `json:"signatures"`
	Races           []hb.Finding    `json:"races,omitempty"`
	Metrics         json.RawMessage `json:"metrics,omitempty"`
	Validation      *trace.Report   `json:"validation,omitempty"`
	ValidationError string          `json:"validation_error,omitempty"`
}

// WriteReportJSON renders the report as indented JSON.
func WriteReportJSON(w io.Writer, in ReportInput) error {
	doc := reportJSON{
		Title:      in.Title,
		Runs:       []RunProfile{},
		Profile:    []ProfileNode{},
		Signatures: in.Signatures,
		Races:      in.Races,
		Validation: in.Validation,
	}
	if doc.Signatures == nil {
		doc.Signatures = []Signature{}
	}
	if in.Profiler != nil {
		doc.Runs = in.Profiler.RunProfiles()
		doc.Profile = in.Profiler.Nodes()
	}
	if in.Metrics != nil {
		var buf bytes.Buffer
		if err := in.Metrics.WriteJSON(&buf); err != nil {
			return err
		}
		doc.Metrics = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	if in.ValidationErr != nil {
		doc.ValidationError = in.ValidationErr.Error()
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// WriteReportSummary renders the compact text summary.
func WriteReportSummary(w io.Writer, in ReportInput) error {
	title := in.Title
	if title == "" {
		title = "session"
	}
	if _, err := fmt.Fprintf(w, "obs report: %s\n", title); err != nil {
		return err
	}
	if in.Profiler != nil {
		runs := in.Profiler.RunProfiles()
		var dispatches int64
		var kernelRuns int
		for _, rp := range runs {
			dispatches += rp.Dispatches
			if rp.Policy != "" {
				kernelRuns++
			}
		}
		if _, err := fmt.Fprintf(w, "runs: %d (%d kernelized), %d dispatches profiled\n",
			len(runs), kernelRuns, dispatches); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "signatures: %d\n", len(in.Signatures)); err != nil {
		return err
	}
	for _, s := range in.Signatures {
		if _, err := fmt.Fprintf(w, "  %s run=%d %s=%d count=%d evidence=%v\n",
			s.Detector, s.Run, s.Subject, s.SubjectID, s.Count, s.Evidence); err != nil {
			return err
		}
	}
	if len(in.Races) > 0 {
		if _, err := fmt.Fprintf(w, "races: %d\n", len(in.Races)); err != nil {
			return err
		}
		for _, f := range in.Races {
			if _, err := fmt.Fprintf(w, "  run=%d %s/%d %s(%s)#%d vs %s(%s)#%d guardian=%v\n",
				f.Run, f.Class, f.Target,
				f.First.Context, f.First.Action, f.First.Seq,
				f.Second.Context, f.Second.Action, f.Second.Seq, f.Guardian); err != nil {
				return err
			}
		}
	}
	if in.Profiler != nil {
		nodes := in.Profiler.Nodes()
		// Top dispatch-wait attributions, heaviest first; ties keep the
		// canonical node order so the summary stays deterministic.
		top := make([]ProfileNode, len(nodes))
		copy(top, nodes)
		for i := 1; i < len(top); i++ {
			for j := i; j > 0 && top[j].WaitTotal > top[j-1].WaitTotal; j-- {
				top[j], top[j-1] = top[j-1], top[j]
			}
		}
		if len(top) > 5 {
			top = top[:5]
		}
		if len(top) > 0 {
			if _, err := fmt.Fprintf(w, "top dispatch-wait:\n"); err != nil {
				return err
			}
			for _, n := range top {
				if _, err := fmt.Fprintf(w, "  run%d scope%d %s/%s: %d dispatches, %.3fms wait\n",
					n.Run, n.Scope, n.API, n.Rule, n.Count, n.WaitTotal.Milliseconds()); err != nil {
					return err
				}
			}
		}
	}
	switch {
	case in.ValidationErr != nil:
		if _, err := fmt.Fprintf(w, "validation: FAILED: %v\n", in.ValidationErr); err != nil {
			return err
		}
	case in.Validation != nil:
		if _, err := fmt.Fprintf(w, "validation: ok (%d records, %d dispatched, %d open)\n",
			in.Validation.Records, in.Validation.Dispatched, in.Validation.Open); err != nil {
			return err
		}
	}
	return nil
}
