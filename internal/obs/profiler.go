package obs

import (
	"fmt"
	"io"
	"sort"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// The virtual-time profiler: a Sink that attributes dispatch latency
// (enqueue → dispatch in virtual time) to (run, scope, API, policy
// rule) as the records stream past. The rule attributed to an event is
// the action of the last call-level policy verdict the kernel emitted
// for that (run, API) before the registration — the kernel always emits
// the call verdict immediately before the event's enqueue — falling
// back to "scheduled" for events that never crossed a call-level
// verdict (native-bridged registrations, kernel-internal timers).

// ProfileNode is one leaf of the profile: every dispatch charged to the
// same (run, scope, API, rule) tuple.
type ProfileNode struct {
	Run   int    `json:"run"`
	Scope int    `json:"scope"`
	API   string `json:"api"`
	Rule  string `json:"rule"`
	// Count is the number of dispatches charged to this node.
	Count int64 `json:"count"`
	// WaitTotal is the summed enqueue→dispatch virtual latency.
	WaitTotal sim.Duration `json:"wait_total_ns"`
	// WaitMax is the largest single enqueue→dispatch latency.
	WaitMax sim.Duration `json:"wait_max_ns"`
}

// RunProfile is the per-run header of the profile.
type RunProfile struct {
	Run int `json:"run"`
	// Policy names the kernel policy that governed the run, taken from
	// the run's first install record ("" for kernel-less runs).
	Policy string `json:"policy,omitempty"`
	// VirtualEnd is the largest virtual timestamp seen in the run: the
	// simulated time the run consumed.
	VirtualEnd sim.Time `json:"virtual_end_ns"`
	// Dispatches and WaitTotal aggregate the run's nodes.
	Dispatches int64        `json:"dispatches"`
	WaitTotal  sim.Duration `json:"wait_total_ns"`
}

// runAPI keys the call-level verdict memory.
type runAPI struct {
	run int
	api string
}

// profKey keys one profile leaf.
type profKey struct {
	run   int
	scope int
	api   string
	rule  string
}

// pendingEv is an enqueued-but-undispatched event awaiting attribution.
type pendingEv struct {
	enqVT sim.Time
	rule  string
}

// Profiler accumulates the virtual-time profile from a record stream.
type Profiler struct {
	lastRule  map[runAPI]string
	pending   map[uint64]pendingEv
	nodes     map[profKey]*ProfileNode
	runPolicy map[int]string
	runMaxVT  map[int]sim.Time
}

var _ trace.Sink = (*Profiler)(nil)

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		lastRule:  make(map[runAPI]string),
		pending:   make(map[uint64]pendingEv),
		nodes:     make(map[profKey]*ProfileNode),
		runPolicy: make(map[int]string),
		runMaxVT:  make(map[int]sim.Time),
	}
}

// eventKey mirrors trace.Record.key: scope IDs are session-unique and
// event IDs are unique within a scope.
func eventKey(r trace.Record) uint64 { return uint64(r.Scope)<<32 | r.Event }

// Observe folds one stamped record into the profile.
func (p *Profiler) Observe(r trace.Record) {
	if r.VT > p.runMaxVT[r.Run] {
		p.runMaxVT[r.Run] = r.VT
	}
	switch r.Op {
	case trace.OpInstall:
		if _, ok := p.runPolicy[r.Run]; !ok && r.Reason != "" {
			p.runPolicy[r.Run] = r.Reason
		}
	case trace.OpPolicy:
		// Only call-level verdicts (Event 0) name the rule that admitted
		// the next registration; the per-event "schedule" echo carries no
		// extra attribution.
		if r.Event == 0 {
			p.lastRule[runAPI{r.Run, r.API}] = r.Action
		}
	case trace.OpEnqueue:
		if r.Event == 0 || r.Scope == 0 {
			return
		}
		rule, ok := p.lastRule[runAPI{r.Run, r.API}]
		if !ok {
			rule = "scheduled"
		}
		p.pending[eventKey(r)] = pendingEv{enqVT: r.VT, rule: rule}
	case trace.OpDispatch:
		if r.Event == 0 || r.Scope == 0 {
			return
		}
		k := eventKey(r)
		pe, ok := p.pending[k]
		if !ok {
			return
		}
		delete(p.pending, k)
		nk := profKey{run: r.Run, scope: r.Scope, api: r.API, rule: pe.rule}
		node := p.nodes[nk]
		if node == nil {
			node = &ProfileNode{Run: r.Run, Scope: r.Scope, API: r.API, Rule: pe.rule}
			p.nodes[nk] = node
		}
		wait := r.VT - pe.enqVT
		node.Count++
		node.WaitTotal += sim.Duration(wait)
		if sim.Duration(wait) > node.WaitMax {
			node.WaitMax = sim.Duration(wait)
		}
	case trace.OpShed, trace.OpCancel, trace.OpExpire:
		if r.Event != 0 && r.Scope != 0 {
			delete(p.pending, eventKey(r))
		}
	}
}

// Nodes returns the profile leaves sorted by (run, scope, API, rule).
func (p *Profiler) Nodes() []ProfileNode {
	keys := make([]profKey, 0, len(p.nodes))
	for k := range p.nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.run != b.run {
			return a.run < b.run
		}
		if a.scope != b.scope {
			return a.scope < b.scope
		}
		if a.api != b.api {
			return a.api < b.api
		}
		return a.rule < b.rule
	})
	out := make([]ProfileNode, len(keys))
	for i, k := range keys {
		out[i] = *p.nodes[k]
	}
	return out
}

// RunProfiles returns the per-run headers sorted by run.
func (p *Profiler) RunProfiles() []RunProfile {
	runs := make([]int, 0, len(p.runMaxVT))
	for run := range p.runMaxVT {
		runs = append(runs, run)
	}
	sort.Ints(runs)
	out := make([]RunProfile, 0, len(runs))
	for _, run := range runs {
		rp := RunProfile{Run: run, Policy: p.runPolicy[run], VirtualEnd: p.runMaxVT[run]}
		out = append(out, rp)
	}
	// Aggregate node totals into their runs (nodes are few; a second
	// pass keeps the hot Observe path allocation-free).
	for _, n := range p.Nodes() {
		for i := range out {
			if out[i].Run == n.Run {
				out[i].Dispatches += n.Count
				out[i].WaitTotal += n.WaitTotal
				break
			}
		}
	}
	return out
}

// WriteFolded emits the profile as collapsed-stack flamegraph text: one
// line per leaf, semicolon-separated frames, the sample value being the
// total dispatch wait in virtual nanoseconds.
func (p *Profiler) WriteFolded(w io.Writer) error {
	for _, n := range p.Nodes() {
		if _, err := fmt.Fprintf(w, "run%d;scope%d;%s;%s %d\n",
			n.Run, n.Scope, n.API, n.Rule, int64(n.WaitTotal)); err != nil {
			return err
		}
	}
	return nil
}

// WriteTree emits a pprof-style text tree: runs, their scopes, their
// APIs, and the per-rule dispatch-wait aggregates underneath.
func (p *Profiler) WriteTree(w io.Writer) error {
	nodes := p.Nodes()
	var total int64
	var wait sim.Duration
	for _, n := range nodes {
		total += n.Count
		wait += n.WaitTotal
	}
	if _, err := fmt.Fprintf(w, "virtual-time profile: %d dispatches, %.3fms total wait\n",
		total, wait.Milliseconds()); err != nil {
		return err
	}
	for _, rp := range p.RunProfiles() {
		policy := rp.Policy
		if policy == "" {
			policy = "(no kernel)"
		}
		if _, err := fmt.Fprintf(w, "run %d  policy=%s  virtual-end=%.3fms  dispatches=%d  wait=%.3fms\n",
			rp.Run, policy, rp.VirtualEnd.Milliseconds(), rp.Dispatches, rp.WaitTotal.Milliseconds()); err != nil {
			return err
		}
		lastScope, lastAPI := -1, ""
		for _, n := range nodes {
			if n.Run != rp.Run {
				continue
			}
			if n.Scope != lastScope {
				if _, err := fmt.Fprintf(w, "  scope %d\n", n.Scope); err != nil {
					return err
				}
				lastScope, lastAPI = n.Scope, ""
			}
			if n.API != lastAPI {
				if _, err := fmt.Fprintf(w, "    %s\n", n.API); err != nil {
					return err
				}
				lastAPI = n.API
			}
			avg := 0.0
			if n.Count > 0 {
				avg = n.WaitTotal.Milliseconds() / float64(n.Count)
			}
			if _, err := fmt.Fprintf(w, "      %-12s %6d dispatches  wait total=%.3fms avg=%.3fms max=%.3fms\n",
				n.Rule, n.Count, n.WaitTotal.Milliseconds(), avg, n.WaitMax.Milliseconds()); err != nil {
				return err
			}
		}
	}
	return nil
}
