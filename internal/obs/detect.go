package obs

import (
	"sort"

	"jskernel/internal/browser"
	"jskernel/internal/trace"
)

// Online forensics detectors: Sinks that watch the stream for the
// construction patterns every web concurrency attack in the paper
// shares, independent of whether the leak ultimately succeeded.
//
//   - implicit-clock-timer: a zero-delay setTimeout chain (Listing 1's
//     tick loop / "setTimeout as an implicit clock", §II-A1) — the same
//     scope's callbacks firing with requested delay 0 above a cadence
//     threshold.
//   - implicit-clock-postmessage: a self-postMessage / worker-spray
//     message loop (Listing 1's spraying worker) — message-callback
//     entries into one scope above the threshold.
//   - event-loop-probe: Loophole-style event-loop monitoring [11] — a
//     scope interleaving repeated timer callbacks with repeated
//     explicit clock reads, sampling the loop's availability.
//   - queue-burst / queue-shed: queue-contention signatures at the
//     kernel layer — a scope driving its event queue past the burst
//     depth, or having registrations shed at the queue bound.
//
// Detection is purely incremental: counters keyed by (run, subject)
// advance per record, and Finish renders the ones above threshold into
// sorted, evidence-carrying signatures. Determinism: map iteration only
// happens in Finish over collected-and-sorted keys.

// Detector names.
const (
	DetectImplicitClockTimer = "implicit-clock-timer"
	DetectImplicitClockPost  = "implicit-clock-postmessage"
	DetectEventLoopProbe     = "event-loop-probe"
	DetectQueueBurst         = "queue-burst"
	DetectQueueShed          = "queue-shed"
)

// DetectorConfig tunes the detection thresholds.
type DetectorConfig struct {
	// ImplicitClockMin is the minimum callback cadence (events per run
	// and scope) before a timer or message loop counts as an implicit
	// clock. The harnesses' 60ms warmup alone crosses it comfortably;
	// ordinary page scripts do not.
	ImplicitClockMin int
	// ProbeMinTimers and ProbeMinReads gate the event-loop-probe
	// detector: a scope must both re-arm timers and read the explicit
	// clock this many times.
	ProbeMinTimers int
	ProbeMinReads  int
	// QueueBurstDepth is the queue depth at which an enqueue or
	// dispatch record counts as contention.
	QueueBurstDepth int
	// EvidenceCap bounds the evidence chain kept per signature.
	EvidenceCap int
}

// DefaultDetectorConfig returns the thresholds used by the CLI and the
// golden forensics tests.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		ImplicitClockMin: 32,
		ProbeMinTimers:   10,
		ProbeMinReads:    10,
		QueueBurstDepth:  48,
		EvidenceCap:      8,
	}
}

// Signature is one structured finding.
type Signature struct {
	// Detector names the signature kind (Detect* constants).
	Detector string `json:"detector"`
	// Run is the environment generation the signature was observed in.
	Run int `json:"run"`
	// Subject says what SubjectID identifies: "scope-token" for
	// browser-layer subjects, "kernel-scope" for kernel-layer ones.
	Subject string `json:"subject"`
	// SubjectID is the scope token or kernel scope ID.
	SubjectID int64 `json:"subject_id"`
	// Count is the number of matching events observed.
	Count int `json:"count"`
	// Evidence lists the first observed record sequence numbers
	// (capped at EvidenceCap).
	Evidence []uint64 `json:"evidence"`
}

// subjKey identifies one (run, subject) counter.
type subjKey struct {
	run int
	id  int64
}

// tally is one counter with its evidence chain.
type tally struct {
	count    int
	evidence []uint64
}

// Detectors is the Sink running every detector over one stream.
type Detectors struct {
	cfg DetectorConfig

	zeroTimer map[subjKey]*tally // zero-delay timer callbacks per token
	msgCB     map[subjKey]*tally // message callbacks per token
	anyTimer  map[subjKey]*tally // all timer callbacks per token
	clockRead map[subjKey]*tally // explicit clock reads per token
	burst     map[subjKey]*tally // deep-queue records per kernel scope
	shed      map[subjKey]*tally // shed registrations per kernel scope
}

var _ trace.Sink = (*Detectors)(nil)

// NewDetectors returns detectors with the given thresholds.
func NewDetectors(cfg DetectorConfig) *Detectors {
	if cfg.EvidenceCap <= 0 {
		cfg.EvidenceCap = DefaultDetectorConfig().EvidenceCap
	}
	return &Detectors{
		cfg:       cfg,
		zeroTimer: make(map[subjKey]*tally),
		msgCB:     make(map[subjKey]*tally),
		anyTimer:  make(map[subjKey]*tally),
		clockRead: make(map[subjKey]*tally),
		burst:     make(map[subjKey]*tally),
		shed:      make(map[subjKey]*tally),
	}
}

// bump advances one counter, retaining early evidence.
func (d *Detectors) bump(m map[subjKey]*tally, k subjKey, seq uint64) {
	t := m[k]
	if t == nil {
		t = &tally{}
		m[k] = t
	}
	t.count++
	if len(t.evidence) < d.cfg.EvidenceCap {
		t.evidence = append(t.evidence, seq)
	}
}

// Observe folds one stamped record into the detectors.
func (d *Detectors) Observe(r trace.Record) {
	switch r.Op {
	case trace.OpNative:
		kind, ok := browser.KindByName(r.API)
		if !ok {
			return
		}
		k := subjKey{run: r.Run, id: r.Value}
		switch kind {
		case browser.TraceTimerFired:
			d.bump(d.anyTimer, k, r.Seq)
			if r.Aux == 0 {
				d.bump(d.zeroTimer, k, r.Seq)
			}
		case browser.TraceMessageCallback:
			d.bump(d.msgCB, k, r.Seq)
		case browser.TraceClockRead:
			d.bump(d.clockRead, k, r.Seq)
		}
	case trace.OpShed:
		d.bump(d.shed, subjKey{run: r.Run, id: int64(r.Scope)}, r.Seq)
	case trace.OpEnqueue, trace.OpDispatch:
		if r.Depth >= d.cfg.QueueBurstDepth && r.Scope != 0 {
			d.bump(d.burst, subjKey{run: r.Run, id: int64(r.Scope)}, r.Seq)
		}
	}
}

// FragmentCount is one detector's raw tally across every subject —
// below-threshold evidence included. Per-request forensics (Finish)
// only reports counters that crossed their thresholds; a probe split
// across requests stays below every one of them by design, so the
// cross-request ledger consumes these raw fragments instead and applies
// its own accumulation thresholds.
type FragmentCount struct {
	// Detector names the fragment kind (Detect* constants).
	Detector string `json:"detector"`
	// Count is the total matching events across runs and subjects.
	Count int `json:"count"`
}

// Fragments sums every counter per detector, sorted by detector name.
func (d *Detectors) Fragments() []FragmentCount {
	total := func(m map[subjKey]*tally) int {
		n := 0
		for _, t := range m {
			n += t.count
		}
		return n
	}
	out := []FragmentCount{
		{Detector: DetectImplicitClockTimer, Count: total(d.zeroTimer)},
		{Detector: DetectImplicitClockPost, Count: total(d.msgCB)},
		{Detector: DetectEventLoopProbe, Count: total(d.clockRead)},
		{Detector: DetectQueueBurst, Count: total(d.burst)},
		{Detector: DetectQueueShed, Count: total(d.shed)},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Detector < out[j].Detector })
	filtered := out[:0]
	for _, f := range out {
		if f.Count > 0 {
			filtered = append(filtered, f)
		}
	}
	return filtered
}

// sortedKeys renders a counter map's keys in (run, id) order.
func sortedKeys(m map[subjKey]*tally) []subjKey {
	keys := make([]subjKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].run != keys[j].run {
			return keys[i].run < keys[j].run
		}
		return keys[i].id < keys[j].id
	})
	return keys
}

// Finish renders every over-threshold counter into a signature, sorted
// by (run, detector, subject).
func (d *Detectors) Finish() []Signature {
	var sigs []Signature
	emit := func(detector, subject string, m map[subjKey]*tally, min int) {
		for _, k := range sortedKeys(m) {
			t := m[k]
			if t.count < min {
				continue
			}
			sigs = append(sigs, Signature{
				Detector:  detector,
				Run:       k.run,
				Subject:   subject,
				SubjectID: k.id,
				Count:     t.count,
				Evidence:  append([]uint64(nil), t.evidence...),
			})
		}
	}
	emit(DetectImplicitClockTimer, "scope-token", d.zeroTimer, d.cfg.ImplicitClockMin)
	emit(DetectImplicitClockPost, "scope-token", d.msgCB, d.cfg.ImplicitClockMin)
	for _, k := range sortedKeys(d.anyTimer) {
		timers := d.anyTimer[k]
		reads := d.clockRead[k]
		if timers.count < d.cfg.ProbeMinTimers || reads == nil || reads.count < d.cfg.ProbeMinReads {
			continue
		}
		sigs = append(sigs, Signature{
			Detector:  DetectEventLoopProbe,
			Run:       k.run,
			Subject:   "scope-token",
			SubjectID: k.id,
			Count:     reads.count,
			Evidence:  append([]uint64(nil), reads.evidence...),
		})
	}
	emit(DetectQueueBurst, "kernel-scope", d.burst, 1)
	emit(DetectQueueShed, "kernel-scope", d.shed, 1)
	sort.Slice(sigs, func(i, j int) bool {
		a, b := sigs[i], sigs[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Detector != b.Detector {
			return a.Detector < b.Detector
		}
		return a.SubjectID < b.SubjectID
	})
	return sigs
}
