package dom

import (
	"strings"
	"testing"
	"testing/quick"

	"jskernel/internal/stats"
)

func TestNewDocumentSkeleton(t *testing.T) {
	d := NewDocument()
	if d.Root().Tag != "html" {
		t.Fatalf("root = %s", d.Root().Tag)
	}
	if d.Body().Tag != "body" {
		t.Fatalf("body = %s", d.Body().Tag)
	}
	if d.Size() != 2 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestAppendRemoveChild(t *testing.T) {
	d := NewDocument()
	div := d.CreateElement("div")
	if err := d.Body().AppendChild(div); err != nil {
		t.Fatal(err)
	}
	if div.Parent() != d.Body() {
		t.Fatal("parent not set")
	}
	if d.Size() != 3 {
		t.Fatalf("size = %d", d.Size())
	}
	if err := d.Body().RemoveChild(div); err != nil {
		t.Fatal(err)
	}
	if div.Parent() != nil {
		t.Fatal("parent not cleared")
	}
	if err := d.Body().RemoveChild(div); err == nil {
		t.Fatal("double remove should error")
	}
}

func TestAppendNil(t *testing.T) {
	d := NewDocument()
	if err := d.Body().AppendChild(nil); err == nil {
		t.Fatal("append nil should error")
	}
}

func TestAppendCycleRejected(t *testing.T) {
	d := NewDocument()
	a := d.CreateElement("div")
	b := d.CreateElement("span")
	if err := d.Body().AppendChild(a); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendChild(b); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendChild(a); err == nil {
		t.Fatal("cycle not rejected")
	}
	if err := a.AppendChild(a); err == nil {
		t.Fatal("self-append not rejected")
	}
}

func TestReparenting(t *testing.T) {
	d := NewDocument()
	a := d.CreateElement("div")
	b := d.CreateElement("div")
	c := d.CreateElement("span")
	for _, el := range []*Element{a, b} {
		if err := d.Body().AppendChild(el); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AppendChild(c); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendChild(c); err != nil {
		t.Fatal(err)
	}
	if c.Parent() != b {
		t.Fatal("not reparented")
	}
	if len(a.Children()) != 0 {
		t.Fatal("still child of old parent")
	}
}

func TestIDIndex(t *testing.T) {
	d := NewDocument()
	div := d.CreateElement("div")
	div.SetAttribute("id", "hero")
	if d.GetElementByID("hero") != nil {
		t.Fatal("detached element should not be indexed")
	}
	if err := d.Body().AppendChild(div); err != nil {
		t.Fatal(err)
	}
	if d.GetElementByID("hero") != div {
		t.Fatal("attached element not indexed")
	}
	if err := div.Remove(); err != nil {
		t.Fatal(err)
	}
	if d.GetElementByID("hero") != nil {
		t.Fatal("removed element still indexed")
	}
}

func TestIDIndexOnSubtreeAttach(t *testing.T) {
	d := NewDocument()
	outer := d.CreateElement("div")
	inner := d.CreateElement("span")
	inner.SetAttribute("id", "deep")
	if err := outer.AppendChild(inner); err != nil {
		t.Fatal(err)
	}
	if err := d.Body().AppendChild(outer); err != nil {
		t.Fatal(err)
	}
	if d.GetElementByID("deep") != inner {
		t.Fatal("nested ID not indexed on subtree attach")
	}
}

func TestAttributesAndStyle(t *testing.T) {
	d := NewDocument()
	a := d.CreateElement("a")
	a.SetAttribute("HREF", "https://example.com")
	if v, ok := a.Attribute("href"); !ok || v != "https://example.com" {
		t.Fatalf("attr = %q, %v", v, ok)
	}
	a.SetStyle("Color", "purple")
	if a.Style("color") != "purple" {
		t.Fatal("style not set")
	}
}

func TestCountByTag(t *testing.T) {
	d := NewDocument()
	for i := 0; i < 5; i++ {
		el := d.CreateElement("li")
		if err := d.Body().AppendChild(el); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.CountByTag("LI"); got != 5 {
		t.Fatalf("CountByTag = %d", got)
	}
}

func TestSerializeDeterministic(t *testing.T) {
	build := func() *Document {
		d := NewDocument()
		div := d.CreateElement("div")
		div.SetAttribute("class", "x")
		div.SetAttribute("id", "y")
		div.SetStyle("color", "red")
		div.SetText("hello world")
		if err := d.Body().AppendChild(div); err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := build().Serialize(), build().Serialize()
	if a != b {
		t.Fatalf("serialization not deterministic:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, `<div class="x" id="y" style="color:red">hello world</div>`) {
		t.Fatalf("unexpected serialization: %s", a)
	}
}

func TestMutationCounter(t *testing.T) {
	d := NewDocument()
	before := d.Mutations()
	el := d.CreateElement("p")
	if err := d.Body().AppendChild(el); err != nil {
		t.Fatal(err)
	}
	el.SetAttribute("class", "a")
	el.SetStyle("color", "blue")
	el.SetText("x")
	if d.Mutations()-before != 4 {
		t.Fatalf("mutations delta = %d, want 4", d.Mutations()-before)
	}
}

func TestTermFrequencySimilarity(t *testing.T) {
	build := func(extra bool) *Document {
		d := NewDocument()
		for i := 0; i < 50; i++ {
			el := d.CreateElement("div")
			el.SetText("content block")
			if err := d.Body().AppendChild(el); err != nil {
				t.Fatal(err)
			}
		}
		if extra {
			ad := d.CreateElement("iframe")
			ad.SetAttribute("src", "ads.example")
			if err := d.Body().AppendChild(ad); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	same := stats.CosineSimilarity(build(false).TermFrequency(), build(false).TermFrequency())
	if same < 0.9999 {
		t.Fatalf("identical docs similarity = %v", same)
	}
	near := stats.CosineSimilarity(build(false).TermFrequency(), build(true).TermFrequency())
	if near < 0.99 || near >= 1 {
		t.Fatalf("one-ad diff similarity = %v, want in [0.99, 1)", near)
	}
}

func TestPropertySizeMatchesAppends(t *testing.T) {
	f := func(tags []uint8) bool {
		d := NewDocument()
		for _, tg := range tags {
			el := d.CreateElement(string(rune('a' + tg%26)))
			if err := d.Body().AppendChild(el); err != nil {
				return false
			}
		}
		return d.Size() == 2+len(tags)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySerializeRoundTripStable(t *testing.T) {
	// Serializing twice must yield identical bytes (no map-order leakage).
	f := func(pairs [][2]uint8) bool {
		d := NewDocument()
		el := d.CreateElement("div")
		for _, p := range pairs {
			el.SetAttribute(string(rune('a'+p[0]%26)), string(rune('a'+p[1]%26)))
		}
		if err := d.Body().AppendChild(el); err != nil {
			return false
		}
		return d.Serialize() == d.Serialize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
