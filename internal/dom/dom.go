// Package dom implements the simulated Document Object Model: an element
// tree with the mutation operations the paper's attacks and compatibility
// tests exercise (append/remove children, attributes, styles), plus the
// serialization and term-frequency extraction behind the paper's
// cosine-similarity compatibility metric (§V-B2).
package dom

import (
	"fmt"
	"sort"
	"strings"
)

// Element is one node in the DOM tree. The zero value is not useful;
// create elements through Document.CreateElement so they carry a document
// back-pointer and a stable creation order.
type Element struct {
	Tag      string
	ID       string
	Text     string
	attrs    map[string]string
	style    map[string]string
	parent   *Element
	children []*Element
	doc      *Document
	seq      int
}

// Document is the root of a DOM tree plus the bookkeeping the browser
// needs: element-by-ID lookup and a mutation counter that renderer costs
// key off.
type Document struct {
	root      *Element
	byID      map[string]*Element
	nextSeq   int
	mutations int
}

// NewDocument returns a document with an empty <html><body> skeleton.
func NewDocument() *Document {
	d := &Document{byID: make(map[string]*Element)}
	html := d.CreateElement("html")
	d.root = html
	body := d.CreateElement("body")
	html.children = append(html.children, body)
	body.parent = html
	return d
}

// Root returns the document's <html> element.
func (d *Document) Root() *Element { return d.root }

// Body returns the document's <body> element.
func (d *Document) Body() *Element {
	for _, c := range d.root.children {
		if c.Tag == "body" {
			return c
		}
	}
	return d.root
}

// Mutations reports how many tree or attribute mutations have happened,
// a proxy for layout/paint work in the renderer cost model.
func (d *Document) Mutations() int { return d.mutations }

// CreateElement returns a detached element owned by this document.
func (d *Document) CreateElement(tag string) *Element {
	d.nextSeq++
	return &Element{
		Tag:   strings.ToLower(tag),
		attrs: make(map[string]string),
		style: make(map[string]string),
		doc:   d,
		seq:   d.nextSeq,
	}
}

// GetElementByID returns the element with the given id attribute, or nil.
func (d *Document) GetElementByID(id string) *Element { return d.byID[id] }

// CountByTag returns the number of attached elements with the given tag.
func (d *Document) CountByTag(tag string) int {
	tag = strings.ToLower(tag)
	count := 0
	d.root.Walk(func(e *Element) {
		if e.Tag == tag {
			count++
		}
	})
	return count
}

// Size returns the number of attached elements.
func (d *Document) Size() int {
	n := 0
	d.root.Walk(func(*Element) { n++ })
	return n
}

// AppendChild attaches child as the last child of e. Appending an element
// that already has a parent first detaches it (matching DOM semantics).
// Appending an element to itself or to one of its descendants is rejected.
func (e *Element) AppendChild(child *Element) error {
	if child == nil {
		return fmt.Errorf("dom: append nil child to <%s>", e.Tag)
	}
	for anc := e; anc != nil; anc = anc.parent {
		if anc == child {
			return fmt.Errorf("dom: <%s> cannot adopt its own ancestor <%s>", e.Tag, child.Tag)
		}
	}
	if child.parent != nil {
		if err := child.parent.RemoveChild(child); err != nil {
			return err
		}
	}
	child.parent = e
	e.children = append(e.children, child)
	if e.doc != nil {
		e.doc.mutations++
		if child.ID != "" {
			e.doc.byID[child.ID] = child
		}
		// Newly attached subtree may carry IDs too.
		child.Walk(func(n *Element) {
			if n.ID != "" {
				e.doc.byID[n.ID] = n
			}
		})
	}
	return nil
}

// RemoveChild detaches child from e.
func (e *Element) RemoveChild(child *Element) error {
	for i, c := range e.children {
		if c == child {
			e.children = append(e.children[:i], e.children[i+1:]...)
			child.parent = nil
			if e.doc != nil {
				e.doc.mutations++
				child.Walk(func(n *Element) {
					if n.ID != "" && e.doc.byID[n.ID] == n {
						delete(e.doc.byID, n.ID)
					}
				})
			}
			return nil
		}
	}
	return fmt.Errorf("dom: <%s> is not a child of <%s>", child.Tag, e.Tag)
}

// Remove detaches e from its parent, if any.
func (e *Element) Remove() error {
	if e.parent == nil {
		return nil
	}
	return e.parent.RemoveChild(e)
}

// Seq returns the element's stable creation-order number. The race
// analysis (internal/hb) uses it as the element's shared-target ID.
func (e *Element) Seq() int { return e.seq }

// Parent returns e's parent element, or nil when detached.
func (e *Element) Parent() *Element { return e.parent }

// Children returns a copy of e's child list.
func (e *Element) Children() []*Element {
	out := make([]*Element, len(e.children))
	copy(out, e.children)
	return out
}

// SetAttribute sets an attribute. Setting "id" also updates the document's
// ID index and the element's ID field.
func (e *Element) SetAttribute(name, value string) {
	name = strings.ToLower(name)
	if name == "id" {
		if e.doc != nil {
			if e.ID != "" && e.doc.byID[e.ID] == e {
				delete(e.doc.byID, e.ID)
			}
			if e.attached() {
				e.doc.byID[value] = e
			}
		}
		e.ID = value
	}
	e.attrs[name] = value
	if e.doc != nil {
		e.doc.mutations++
	}
}

// Attribute returns an attribute's value and whether it was set.
func (e *Element) Attribute(name string) (string, bool) {
	v, ok := e.attrs[strings.ToLower(name)]
	return v, ok
}

// SetStyle sets an inline style property (e.g. "color", "filter").
func (e *Element) SetStyle(prop, value string) {
	e.style[strings.ToLower(prop)] = value
	if e.doc != nil {
		e.doc.mutations++
	}
}

// Style returns an inline style property's value.
func (e *Element) Style(prop string) string { return e.style[strings.ToLower(prop)] }

// SetText replaces e's text content.
func (e *Element) SetText(text string) {
	e.Text = text
	if e.doc != nil {
		e.doc.mutations++
	}
}

// attached reports whether e is connected to its document's root.
func (e *Element) attached() bool {
	if e.doc == nil {
		return false
	}
	for n := e; n != nil; n = n.parent {
		if n == e.doc.root {
			return true
		}
	}
	return false
}

// Walk visits e and every descendant in document order.
func (e *Element) Walk(visit func(*Element)) {
	visit(e)
	for _, c := range e.children {
		c.Walk(visit)
	}
}

// Serialize renders the subtree rooted at e as canonical HTML-like text
// with sorted attributes, the form the compatibility experiment hashes and
// compares.
func (e *Element) Serialize() string {
	var b strings.Builder
	e.serialize(&b)
	return b.String()
}

func (e *Element) serialize(b *strings.Builder) {
	b.WriteByte('<')
	b.WriteString(e.Tag)
	keys := make([]string, 0, len(e.attrs))
	for k := range e.attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%q", k, e.attrs[k])
	}
	if len(e.style) > 0 {
		props := make([]string, 0, len(e.style))
		for k := range e.style {
			props = append(props, k)
		}
		sort.Strings(props)
		b.WriteString(` style="`)
		for i, p := range props {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(p)
			b.WriteByte(':')
			b.WriteString(e.style[p])
		}
		b.WriteByte('"')
	}
	b.WriteByte('>')
	if e.Text != "" {
		b.WriteString(e.Text)
	}
	for _, c := range e.children {
		c.serialize(b)
	}
	b.WriteString("</")
	b.WriteString(e.Tag)
	b.WriteByte('>')
}

// Serialize renders the whole document.
func (d *Document) Serialize() string { return d.root.Serialize() }

// TermFrequency returns the document's structure as a bag of terms (tag
// names, attribute pairs, text tokens). Feeding two documents' term
// frequencies to stats.CosineSimilarity reproduces the paper's ≥99%
// similarity compatibility check.
func (d *Document) TermFrequency() map[string]float64 {
	tf := make(map[string]float64)
	d.root.Walk(func(e *Element) {
		tf["tag:"+e.Tag]++
		for k, v := range e.attrs {
			tf["attr:"+k+"="+v]++
		}
		for k, v := range e.style {
			tf["style:"+k+"="+v]++
		}
		for _, tok := range strings.Fields(e.Text) {
			tf["text:"+tok]++
		}
	})
	return tf
}
