package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30, "c", func() { got = append(got, 3) })
	s.Schedule(10, "a", func() { got = append(got, 1) })
	s.Schedule(20, "b", func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(100, "tie", func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order violated: got %v", got)
		}
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := New(1)
	var firedAt Time
	s.Schedule(100, "advance", func() {
		s.Schedule(50, "past", func() { firedAt = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if firedAt != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", firedAt)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	id := s.Schedule(10, "x", func() { fired = true })
	if !s.Cancel(id) {
		t.Fatal("cancel reported not pending")
	}
	if s.Cancel(id) {
		t.Fatal("double cancel reported pending")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelUnknownID(t *testing.T) {
	s := New(1)
	if s.Cancel(12345) {
		t.Fatal("cancel of unknown ID reported pending")
	}
}

func TestAfter(t *testing.T) {
	s := New(1)
	var at Time
	s.Schedule(40, "base", func() {
		s.After(5, "after", func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 45 {
		t.Fatalf("After fired at %v, want 45", at)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(Time(i), "n", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	err := s.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.Schedule(at, "n", func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(25); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("now = %v, want 25", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
}

func TestMaxStepsTrips(t *testing.T) {
	s := New(1)
	s.MaxSteps = 100
	var loop func()
	loop = func() { s.After(1, "loop", loop) }
	s.Schedule(0, "seed", loop)
	if err := s.Run(); err == nil {
		t.Fatal("runaway loop did not trip MaxSteps")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []Time {
		s := New(seed)
		var out []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			out = append(out, s.Now())
			if depth == 0 {
				return
			}
			d := Duration(s.Rand().Intn(1000) + 1)
			s.After(d, "child", func() { spawn(depth - 1) })
			s.After(d*2, "child2", func() { spawn(depth - 1) })
		}
		s.Schedule(0, "root", func() { spawn(6) })
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces; PRNG not wired in")
	}
}

// TestPropertyDispatchOrderSorted checks the core heap invariant: however
// events are scheduled, they fire in nondecreasing timestamp order and time
// never moves backwards.
func TestPropertyDispatchOrderSorted(t *testing.T) {
	f := func(raw []uint32) bool {
		s := New(7)
		var fired []Time
		for _, r := range raw {
			at := Time(r % 100000)
			s.Schedule(at, "p", func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancelRemovesExactly checks that cancelling a random subset
// of events fires exactly the complement.
func TestPropertyCancelRemovesExactly(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		s := New(11)
		fired := make(map[int]bool)
		ids := make([]EventID, count)
		for i := 0; i < count; i++ {
			i := i
			ids[i] = s.Schedule(Time(i*3), "p", func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				if !s.Cancel(ids[i]) {
					return false
				}
				cancelled[i] = true
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHeapMatchesReference replays a random schedule against a
// sort-based reference model and requires identical dispatch order.
func TestPropertyHeapMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		type entry struct {
			at  Time
			seq int
		}
		entries := make([]entry, n)
		s := New(1)
		var got []int
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(50))
			entries[i] = entry{at: at, seq: i}
			i := i
			s.Schedule(at, "p", func() { got = append(got, i) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].at < entries[j].at })
		for i, e := range entries {
			if got[i] != e.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeMilliseconds(t *testing.T) {
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Fatalf("Milliseconds = %v, want 2.5", got)
	}
	if s := (10 * Millisecond).String(); s != "10.000ms" {
		t.Fatalf("String = %q", s)
	}
}

func TestNilFuncIgnored(t *testing.T) {
	s := New(1)
	if id := s.Schedule(1, "nil", nil); id != 0 {
		t.Fatalf("nil fn scheduled with id %d", id)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}
