package sim

import (
	"errors"
	"testing"
)

// Edge cases the scheduler seam must preserve: the chooser path removes
// events with heap.Remove instead of heap.Pop, so the already-popped
// bookkeeping, exact-deadline semantics, and cooperative-cancellation
// interleaving are each pinned here against both dispatch paths.

// runBothPaths executes body once with the default (nil-chooser) path
// and once with an index-0 chooser, which must be behaviourally
// identical to it.
func runBothPaths(t *testing.T, body func(t *testing.T, s *Simulator)) {
	t.Helper()
	t.Run("default", func(t *testing.T) {
		body(t, New(7))
	})
	t.Run("chooser", func(t *testing.T) {
		s := New(7)
		s.SetChooser(&pickChooser{idx: 0})
		body(t, s)
	})
}

// TestCancelAlreadyPoppedEvent: once an event has been dispatched its ID
// is spent — Cancel must report false, both from inside the event's own
// callback (popped but still executing) and after the run completes.
func TestCancelAlreadyPoppedEvent(t *testing.T) {
	runBothPaths(t, func(t *testing.T, s *Simulator) {
		var id EventID
		var duringFn bool
		id = s.Schedule(10, "self", func() {
			duringFn = s.Cancel(id)
		})
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		if duringFn {
			t.Fatal("Cancel of the currently-executing event reported true")
		}
		if s.Cancel(id) {
			t.Fatal("Cancel of a long-fired event reported true")
		}
	})
}

// TestRunUntilExactEventTime: an event scheduled exactly at the deadline
// fires (the bound is inclusive), one nanosecond past it stays queued,
// and the clock lands exactly on the deadline either way.
func TestRunUntilExactEventTime(t *testing.T) {
	runBothPaths(t, func(t *testing.T, s *Simulator) {
		var atDeadline, past bool
		s.Schedule(100, "at-deadline", func() { atDeadline = true })
		s.Schedule(101, "past", func() { past = true })
		if err := s.RunUntil(100); err != nil {
			t.Fatalf("run until: %v", err)
		}
		if !atDeadline {
			t.Fatal("event at exactly the deadline did not fire")
		}
		if past {
			t.Fatal("event past the deadline fired")
		}
		if s.Now() != 100 {
			t.Fatalf("clock at %v, want 100", s.Now())
		}
		if s.Pending() != 1 {
			t.Fatalf("%d events pending, want the past-deadline one", s.Pending())
		}
		// A chained event scheduled *during* the deadline step, still at
		// the deadline, also fires within the same RunUntil window.
		s2 := New(7)
		var chained bool
		s2.Schedule(100, "parent", func() {
			s2.Schedule(100, "chained", func() { chained = true })
		})
		if err := s2.RunUntil(100); err != nil {
			t.Fatalf("run until (chained): %v", err)
		}
		if !chained {
			t.Fatal("event scheduled at the deadline during the deadline step did not fire")
		}
	})
}

// TestSetCanceledBetweenNextAtAndStep: flipping the cancellation flag
// from inside an event callback — i.e. after NextAt was consulted for
// that step but before the next poll — aborts the run with ErrCanceled
// at the next stride boundary, never mid-event, leaving the rest of the
// schedule queued.
func TestSetCanceledBetweenNextAtAndStep(t *testing.T) {
	runBothPaths(t, func(t *testing.T, s *Simulator) {
		canceled := false
		s.SetCanceled(func() bool { return canceled })
		const total = 4 * cancelPollStride
		fired := 0
		for i := 0; i < total; i++ {
			i := i
			s.Schedule(Time(i+1), "tick", func() {
				fired++
				if i == 10 {
					canceled = true
				}
			})
		}
		err := s.RunUntil(Time(total))
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		// The event that flipped the flag completed (cancellation is
		// cooperative, between dispatches), and the abort happened at the
		// next stride poll — within one stride of the flip.
		if fired < 11 {
			t.Fatalf("flipping event did not complete: fired=%d", fired)
		}
		if fired > 11+cancelPollStride {
			t.Fatalf("cancellation latency %d events, want <= stride %d", fired-11, cancelPollStride)
		}
		if fired%cancelPollStride != 0 {
			t.Fatalf("aborted after %d dispatches, want a stride boundary", fired)
		}
		if s.Pending() != total-fired {
			t.Fatalf("%d pending, want %d (canceled run abandons the queue intact)", s.Pending(), total-fired)
		}
	})
}
