// Package sim implements the discrete-event simulation engine that every
// other subsystem of this repository runs on.
//
// The paper's prototype runs inside real browsers on wall-clock time. This
// reproduction replaces that substrate with virtual time: the simulator
// maintains a single global virtual clock and a priority queue of scheduled
// events. Events fire in (time, sequence) order, so a whole run — browser
// threads, network deliveries, renderer frames, kernel dispatches — is a
// pure function of the initial configuration and the PRNG seed. That
// determinism is what makes the timing side channels of the paper exactly
// measurable and the defenses exactly comparable.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
)

// Time is a virtual timestamp in nanoseconds since the start of a run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common virtual durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds reports t as a floating-point number of milliseconds, the
// unit JavaScript's performance.now() uses.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the timestamp in milliseconds for logs and reports.
func (t Time) String() string {
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// EventID names a scheduled event so that it can be cancelled.
type EventID uint64

// ErrStopped is returned by Run when the simulation is halted by Stop
// rather than by queue exhaustion or deadline.
var ErrStopped = errors.New("sim: stopped")

// ErrCanceled is returned by Run/RunUntil when the cooperative
// cancellation hook (SetCanceled) reports true. A canceled run is
// abandoned mid-simulation: its partial state must never be read as a
// result — callers surface a typed cancellation error instead of any
// verdict computed so far.
var ErrCanceled = errors.New("sim: run canceled")

// cancelPollStride is how many dispatches pass between polls of the
// cancellation hook. Hot runs dispatch tens of millions of events, so
// polling every step would make the hook (often a context check behind
// a mutex) a measurable tax; a stride of 64 keeps the overhead
// unmeasurable while bounding cancellation latency to 64 events.
const cancelPollStride = 64

// event is one pending entry in the simulator's priority queue.
type event struct {
	at    Time
	seq   uint64
	id    EventID
	name  string
	fn    func()
	index int // heap index; -1 once removed
}

// eventHeap orders events by (at, seq); seq breaks ties deterministically
// in scheduling order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator is a deterministic discrete-event scheduler over virtual time.
// It is not safe for concurrent use; all simulated "threads" are logical
// processes multiplexed onto the caller's goroutine.
type Simulator struct {
	now     Time
	seq     uint64
	nextID  EventID
	queue   eventHeap
	byID    map[EventID]*event
	rng     *rand.Rand
	stopped bool
	steps   uint64

	// chooser, when non-nil, breaks ties among same-virtual-time ready
	// events (see choose.go); nil keeps the default lowest-seq order.
	// observer is the chooser's optional DispatchObserver facet, cached
	// at SetChooser time so the hot path pays one nil check.
	chooser  Chooser
	observer DispatchObserver

	// canceled, when non-nil, is polled between dispatches (every
	// cancelPollStride steps); returning true aborts Run/RunUntil with
	// ErrCanceled. It is the service layer's bridge for propagating
	// request deadlines and client disconnects into a simulation without
	// giving the simulated program any new observable channel: the hook
	// either lets the run finish untouched or abandons it entirely.
	canceled func() bool

	// MaxSteps bounds Run as a runaway-loop backstop; zero means no bound.
	MaxSteps uint64
}

// New returns a simulator whose PRNG is seeded with seed. Two simulators
// built with the same seed and fed the same schedule produce identical runs.
func New(seed int64) *Simulator {
	return &Simulator{
		byID: make(map[EventID]*event),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand exposes the run's seeded PRNG. All randomness in a simulation
// (network jitter, fuzzy clocks, workload generation) must come from here
// so runs stay reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have been dispatched so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// Pending reports the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers fn to run at virtual time at. Scheduling in the past
// (at < Now) clamps to Now: the event fires on the next step, after events
// already due. The name is used only for diagnostics.
func (s *Simulator) Schedule(at Time, name string, fn func()) EventID {
	if fn == nil {
		return 0
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.nextID++
	ev := &event{at: at, seq: s.seq, id: s.nextID, name: name, fn: fn}
	heap.Push(&s.queue, ev)
	s.byID[ev.id] = ev
	return ev.id
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d Duration, name string, fn func()) EventID {
	return s.Schedule(s.now+d, name, fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending; cancelling an already-fired or unknown ID is a no-op.
func (s *Simulator) Cancel(id EventID) bool {
	ev, ok := s.byID[id]
	if !ok || ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	delete(s.byID, id)
	return true
}

// NextAt returns the virtual time of the earliest pending event. The second
// result is false when the queue is empty.
func (s *Simulator) NextAt() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Step dispatches the single earliest pending event, advancing virtual time
// to its timestamp. It reports whether an event was dispatched.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	var ev *event
	if s.chooser == nil {
		evAny := heap.Pop(&s.queue)
		e, ok := evAny.(*event)
		if !ok {
			return false
		}
		ev = e
	} else {
		ev = s.chooseNext()
	}
	delete(s.byID, ev.id)
	s.now = ev.at
	s.steps++
	if s.observer != nil {
		s.observer.Dispatched(s.steps, Choice{ID: ev.id, Seq: ev.seq, At: ev.at, Name: ev.name})
	}
	ev.fn()
	return true
}

// Stop halts a Run in progress after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// SetCanceled installs a cooperative-cancellation hook polled between
// event dispatches; returning true aborts Run/RunUntil with ErrCanceled.
// Nil removes the hook. The hook must be cheap and must not touch
// simulator state.
func (s *Simulator) SetCanceled(f func() bool) { s.canceled = f }

// cancelDue polls the cancellation hook on the stride boundary.
func (s *Simulator) cancelDue() bool {
	return s.canceled != nil && s.steps%cancelPollStride == 0 && s.canceled()
}

// Run dispatches events until the queue drains, Stop is called, or MaxSteps
// is exceeded. It returns ErrStopped if halted by Stop and an error when the
// step bound trips (which always indicates a scheduling loop bug).
func (s *Simulator) Run() error {
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		if s.MaxSteps > 0 && s.steps >= s.MaxSteps {
			return fmt.Errorf("sim: exceeded %d steps at %v", s.MaxSteps, s.now)
		}
		if s.cancelDue() {
			return ErrCanceled
		}
		if !s.Step() {
			return nil
		}
	}
}

// RunUntil dispatches events with timestamps <= deadline, leaving later
// events queued, and advances the clock to deadline if the run gets there.
func (s *Simulator) RunUntil(deadline Time) error {
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		if s.MaxSteps > 0 && s.steps >= s.MaxSteps {
			return fmt.Errorf("sim: exceeded %d steps at %v", s.MaxSteps, s.now)
		}
		if s.cancelDue() {
			return ErrCanceled
		}
		at, ok := s.NextAt()
		if !ok || at > deadline {
			if s.now < deadline {
				s.now = deadline
			}
			return nil
		}
		s.Step()
	}
}
