package sim

import "testing"

// pickChooser returns a fixed index at every choice point and counts
// consultations.
type pickChooser struct {
	idx    int
	calls  int
	widths []int
}

func (c *pickChooser) Choose(_ Time, cands []Choice) int {
	c.calls++
	c.widths = append(c.widths, len(cands))
	return c.idx
}

// lastChooser always picks the highest-seq candidate.
type lastChooser struct{}

func (lastChooser) Choose(_ Time, cands []Choice) int { return len(cands) - 1 }

// dispatchLog records every dispatch via the observer facet.
type dispatchLog struct {
	pickChooser
	steps []uint64
	names []string
}

func (d *dispatchLog) Dispatched(step uint64, c Choice) {
	d.steps = append(d.steps, step)
	d.names = append(d.names, c.Name)
}

// tieRun schedules n events at the same timestamp plus one earlier and
// one later event, runs the simulator, and returns the dispatch order
// of the tied group.
func tieRun(t *testing.T, c Chooser, n int) []int {
	t.Helper()
	s := New(1)
	s.SetChooser(c)
	var got []int
	s.Schedule(50, "early", func() {})
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(100, "tie", func() { got = append(got, i) })
	}
	s.Schedule(200, "late", func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

// TestNilChooserKeepsDefaultOrder pins the byte-identical contract: a
// nil chooser and an index-0 chooser both reproduce the historical
// scheduling-order tie break.
func TestNilChooserKeepsDefaultOrder(t *testing.T) {
	def := tieRun(t, nil, 8)
	first := tieRun(t, &pickChooser{idx: 0}, 8)
	if len(def) != 8 || len(first) != 8 {
		t.Fatalf("dispatch counts: default %d, chooser %d", len(def), len(first))
	}
	for i := range def {
		if def[i] != i || first[i] != i {
			t.Fatalf("tie order drifted: default %v, index-0 chooser %v", def, first)
		}
	}
}

// TestChooserReversesTies checks the seam actually steers the schedule:
// always picking the last candidate dispatches the tied group in
// reverse scheduling order.
func TestChooserReversesTies(t *testing.T) {
	got := tieRun(t, lastChooser{}, 5)
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestForcedStepsNeverConsultChooser: a single ready candidate is not a
// choice point — Choose fires only on genuine ties, so recorded choice
// vectors stay minimal.
func TestForcedStepsNeverConsultChooser(t *testing.T) {
	c := &pickChooser{}
	s := New(1)
	s.SetChooser(c)
	for i := 0; i < 5; i++ {
		s.Schedule(Time(10*(i+1)), "solo", func() {})
	}
	s.Schedule(100, "tie-a", func() {})
	s.Schedule(100, "tie-b", func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if c.calls != 1 {
		t.Fatalf("chooser consulted %d times, want exactly 1 (the single 2-way tie)", c.calls)
	}
	if len(c.widths) != 1 || c.widths[0] != 2 {
		t.Fatalf("candidate widths %v, want [2]", c.widths)
	}
}

// TestOutOfRangeChoiceClamps: a misbehaving chooser falls back to the
// default candidate instead of panicking or skipping the step.
func TestOutOfRangeChoiceClamps(t *testing.T) {
	for _, idx := range []int{-3, 99} {
		c := &pickChooser{idx: idx}
		got := tieRun(t, c, 4)
		for i := range got {
			if got[i] != i {
				t.Fatalf("idx=%d: got %v, want default order", idx, got)
			}
		}
	}
}

// TestDispatchObserverSeesEverything: the observer facet reports every
// dispatch — forced steps included — with 1-based increasing step
// numbers, so exploration recorders can map records to steps.
func TestDispatchObserverSeesEverything(t *testing.T) {
	d := &dispatchLog{}
	s := New(1)
	s.SetChooser(d)
	s.Schedule(10, "a", func() {})
	s.Schedule(20, "b1", func() {})
	s.Schedule(20, "b2", func() {})
	s.Schedule(30, "c", func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(d.steps) != 4 {
		t.Fatalf("observer saw %d dispatches, want 4 (names %v)", len(d.steps), d.names)
	}
	for i, step := range d.steps {
		if step != uint64(i+1) {
			t.Fatalf("step numbers %v, want 1..4", d.steps)
		}
	}
	if d.calls != 1 {
		t.Fatalf("chooser consulted %d times, want 1", d.calls)
	}
}

// TestChooserTieCancellation: cancelling a tied sibling from inside a
// tie candidate's callback removes it before the next choice point —
// the chooser is never offered a cancelled event.
func TestChooserTieCancellation(t *testing.T) {
	c := &pickChooser{}
	s := New(1)
	s.SetChooser(c)
	fired := map[string]bool{}
	var victim EventID
	s.Schedule(100, "killer", func() {
		fired["killer"] = true
		if !s.Cancel(victim) {
			t.Fatal("victim not pending at cancellation")
		}
	})
	victim = s.Schedule(100, "victim", func() { fired["victim"] = true })
	s.Schedule(100, "bystander", func() { fired["bystander"] = true })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired["killer"] || !fired["bystander"] || fired["victim"] {
		t.Fatalf("fired = %v, want killer+bystander only", fired)
	}
	// First choice point offers all three; after the cancellation the
	// bystander is forced (single candidate), so exactly one consult.
	if c.calls != 1 || c.widths[0] != 3 {
		t.Fatalf("calls=%d widths=%v, want one 3-way choice", c.calls, c.widths)
	}
}

// TestChooserDeterministicReplay: with the same chooser decisions the
// run is byte-identical — the foundation of the replay-token contract.
func TestChooserDeterministicReplay(t *testing.T) {
	run := func() []int { return tieRun(t, lastChooser{}, 6) }
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged: %v vs %v", a, b)
		}
	}
}
