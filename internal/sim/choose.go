package sim

import (
	"container/heap"
	"sort"
)

// This file is the simulator's scheduler seam. The priority queue orders
// events by (time, seq), so whenever several events share the earliest
// virtual timestamp the dispatch order among them is a tie-break — the
// one place the simulated world has genuine scheduling freedom. By
// default the tie resolves in scheduling order (lowest seq first),
// which is the behaviour every golden trace pins. A Chooser hooks
// exactly that decision: schedule-space exploration (internal/explore)
// installs one to enumerate alternative interleavings, and because a
// whole run is otherwise a pure function of the seed, a run is fully
// described by the sequence of tie-break decisions — a replayable
// choice vector.

// Choice describes one ready candidate at a tie-break point.
type Choice struct {
	// ID is the event's cancellation handle.
	ID EventID
	// Seq is the event's scheduling sequence number — stable across
	// replays of the same prefix, so it identifies the event in recorded
	// schedules.
	Seq uint64
	// At is the shared virtual timestamp of every candidate.
	At Time
	// Name is the event's diagnostic name.
	Name string
}

// Chooser breaks ties among same-virtual-time ready events. Choose is
// consulted only when two or more events share the earliest timestamp;
// cands is ordered by Seq (the default dispatch order), and the return
// value indexes into it. Out-of-range returns fall back to index 0.
// Implementations must be deterministic functions of their own state
// and the candidate list — the simulator's reproducibility contract
// extends through the seam.
type Chooser interface {
	Choose(now Time, cands []Choice) int
}

// DispatchObserver is an optional interface a Chooser may implement to
// watch every dispatch — including forced steps with a single ready
// candidate, which are never offered to Choose. Exploration recorders
// use it to map trace records back to the step (and thus the choice
// point) that executed them. Dispatched runs after the step counter
// advances and before the event's callback.
type DispatchObserver interface {
	Dispatched(step uint64, c Choice)
}

// SetChooser installs a scheduler tie-break hook (nil restores the
// default lowest-seq order). If the chooser also implements
// DispatchObserver it receives every dispatch. Installing a chooser
// mid-run is allowed but exploration installs one before any event is
// scheduled so the recorded choice vector covers the whole run.
func (s *Simulator) SetChooser(c Chooser) {
	s.chooser = c
	s.observer, _ = c.(DispatchObserver)
}

// readyTies returns every pending event sharing the earliest timestamp,
// in seq order. Only called on a non-empty queue.
func (s *Simulator) readyTies() []*event {
	at := s.queue[0].at
	var ties []*event
	for _, ev := range s.queue {
		if ev.at == at {
			ties = append(ties, ev)
		}
	}
	sort.Slice(ties, func(i, j int) bool { return ties[i].seq < ties[j].seq })
	return ties
}

// chooseNext resolves the next event through the installed chooser and
// removes it from the queue. A single ready candidate is forced and
// never offered to Choose, so replayable choice vectors contain only
// genuine decisions.
func (s *Simulator) chooseNext() *event {
	ties := s.readyTies()
	if len(ties) == 1 {
		ev := ties[0]
		heap.Remove(&s.queue, ev.index)
		return ev
	}
	cands := make([]Choice, len(ties))
	for i, ev := range ties {
		cands[i] = Choice{ID: ev.id, Seq: ev.seq, At: ev.at, Name: ev.name}
	}
	idx := s.chooser.Choose(s.now, cands)
	if idx < 0 || idx >= len(ties) {
		idx = 0
	}
	ev := ties[idx]
	heap.Remove(&s.queue, ev.index)
	return ev
}
