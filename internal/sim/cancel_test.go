package sim

import (
	"errors"
	"testing"
)

// schedule n self-rescheduling-free events spaced 1ns apart.
func scheduleN(s *Simulator, n int, fired *int) {
	for i := 0; i < n; i++ {
		s.Schedule(Time(i+1), "tick", func() { *fired++ })
	}
}

func TestCancellationStopsRun(t *testing.T) {
	s := New(1)
	var fired int
	scheduleN(s, 1000, &fired)
	polls := 0
	s.SetCanceled(func() bool {
		polls++
		return polls >= 3
	})
	err := s.Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run = %v, want ErrCanceled", err)
	}
	if fired >= 1000 {
		t.Error("run completed despite cancellation")
	}
	// Cancellation is polled on a stride, not per event: three polls
	// must have consumed no more than three strides of dispatches.
	if fired > 3*cancelPollStride {
		t.Errorf("fired %d events before honoring cancellation (stride %d, 3 polls)", fired, cancelPollStride)
	}
}

func TestCancellationPollStride(t *testing.T) {
	s := New(1)
	var fired int
	scheduleN(s, 1000, &fired)
	polls := 0
	s.SetCanceled(func() bool {
		polls++
		return false
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run = %v, want clean completion", err)
	}
	if fired != 1000 {
		t.Fatalf("fired %d, want 1000", fired)
	}
	if max := 1000/cancelPollStride + 2; polls > max {
		t.Errorf("polled %d times for 1000 events, want <= %d (stride %d)", polls, max, cancelPollStride)
	}
	if polls == 0 {
		t.Error("hook installed but never polled")
	}
}

func TestNoHookMeansNoCancellation(t *testing.T) {
	s := New(1)
	var fired int
	scheduleN(s, 100, &fired)
	if err := s.Run(); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if fired != 100 {
		t.Fatalf("fired %d, want 100", fired)
	}
}

func TestCancellationInRunUntil(t *testing.T) {
	s := New(1)
	var fired int
	scheduleN(s, 1000, &fired)
	s.SetCanceled(func() bool { return true })
	err := s.RunUntil(Time(5000))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunUntil = %v, want ErrCanceled", err)
	}
}
