package sim

// DeriveSeed maps a base seed and a cell index to an independent child
// seed via the splitmix64 finalizer. Experiment drivers use it to give
// every (attack, defense, rep) cell its own seed as a pure function of
// (Config.Seed, cell index): no shared counter, so a cell's environment
// — and therefore its result — is identical whether the matrix runs
// serially or fanned out across a worker pool, and neighbouring cells
// never reuse each other's random streams.
func DeriveSeed(base, index int64) int64 {
	// Advance the splitmix64 state index+1 times so even (0, 0) lands on
	// a mixed, non-identity output.
	z := uint64(base) + (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
