package sim

import "testing"

// TestDeriveSeedIndependence checks the properties the experiment
// drivers rely on: determinism, sensitivity to both arguments, and no
// collisions across a realistic cell-index range.
func TestDeriveSeedIndependence(t *testing.T) {
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	if DeriveSeed(42, 7) == DeriveSeed(43, 7) {
		t.Fatal("DeriveSeed ignores the base seed")
	}
	seen := make(map[int64]int64)
	for i := int64(0); i < 100_000; i++ {
		s := DeriveSeed(20200629, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cell seeds collide: index %d and %d both derive %d", prev, i, s)
		}
		seen[s] = i
	}
}

// TestDeriveSeedDiffersFromBase guards against the identity-at-zero
// trap: even cell 0 must not reuse the base seed verbatim, or the first
// cell of every matrix would correlate with any direct use of the base.
func TestDeriveSeedDiffersFromBase(t *testing.T) {
	for _, base := range []int64{0, 1, 42, 20200629, -7} {
		if DeriveSeed(base, 0) == base {
			t.Fatalf("DeriveSeed(%d, 0) == base", base)
		}
	}
}
