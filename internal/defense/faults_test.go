package defense

import (
	"fmt"
	"strings"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/fault"
	"jskernel/internal/sim"
)

// chaosPlan is deliberately violent: every fault category fires often,
// so the determinism guard exercises all injection paths at once.
func chaosPlan() *fault.Plan {
	return &fault.Plan{
		Name: "test-chaos",
		Seed: 4242,
		Net: fault.NetFaults{
			ErrorRate:     0.3,
			ErrorStatus:   503,
			TruncateFrac:  0.5,
			SpikeRate:     0.3,
			SpikeScaleMin: 2,
			SpikeScaleMax: 5,
		},
		Browser: fault.BrowserFaults{
			WorkerCrashRate: 0.3,
			FetchAbortRate:  0.3,
			CancelStorms:    2,
			CancelStormSize: 16,
			OverloadBursts:  2,
			OverloadBusy:    3 * sim.Millisecond,
		},
		Kernel: fault.KernelFaults{
			CallbackPanicRate: 0.2,
			PolicyPanicRate:   0.05,
		},
	}
}

// runChaosWorkload drives a worker-and-fetch-heavy page under the plan
// and returns (decision journal, native trace) rendered as text.
func runChaosWorkload(t *testing.T, plan *fault.Plan, seed int64) (string, string) {
	t.Helper()
	env := JSKernel("chrome").WithFaults(plan).NewEnv(EnvOptions{Seed: seed})
	b := env.Browser
	rec := &browser.Recorder{}
	b.AddTracer(rec)

	for i := 0; i < 6; i++ {
		b.Net.RegisterScript(fmt.Sprintf("https://site.example/f%d.js", i), 400_000)
	}
	b.RegisterWorkerScript("busy.js", func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			gg.PostMessage(m.Data)
		})
	})
	b.RunScript("main", func(g *browser.Global) {
		for i := 0; i < 2; i++ {
			w, err := g.NewWorker("busy.js")
			if err != nil {
				t.Fatalf("NewWorker: %v", err)
			}
			w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {})
			for j := 0; j < 4; j++ {
				w.PostMessage(j)
			}
		}
		for i := 0; i < 6; i++ {
			url := fmt.Sprintf("https://site.example/f%d.js", i)
			g.Fetch(url, browser.FetchOptions{MaxRetries: 2}, func(*browser.Response, error) {})
		}
		for i := 0; i < 5; i++ {
			g.SetTimeout(func(*browser.Global) {}, sim.Duration(i+1)*sim.Millisecond)
		}
	})
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	var journal strings.Builder
	if env.Kernel != nil {
		if err := env.Kernel.WriteDecisions(&journal); err != nil {
			t.Fatalf("WriteDecisions: %v", err)
		}
	}
	var trace strings.Builder
	for _, ev := range rec.Events() {
		fmt.Fprintf(&trace, "%+v\n", ev)
	}
	return journal.String(), trace.String()
}

// TestFaultPlanRunsAreBitIdentical is the determinism regression guard:
// the same (plan, seed) twice must reproduce the decision journal and
// the full native dispatch trace byte for byte.
func TestFaultPlanRunsAreBitIdentical(t *testing.T) {
	j1, tr1 := runChaosWorkload(t, chaosPlan(), 11)
	j2, tr2 := runChaosWorkload(t, chaosPlan(), 11)
	if j1 != j2 {
		t.Errorf("decision journals differ:\n--- first ---\n%s\n--- second ---\n%s", j1, j2)
	}
	if tr1 != tr2 {
		t.Errorf("dispatch traces differ (lengths %d vs %d)", len(tr1), len(tr2))
	}
	if tr1 == "" {
		t.Error("empty trace: workload did not run")
	}
}

// TestFaultPlanSeedMatters: a different run seed must move the faults —
// otherwise the "seeded" in seeded fault plan is an illusion.
func TestFaultPlanSeedMatters(t *testing.T) {
	_, tr1 := runChaosWorkload(t, chaosPlan(), 11)
	_, tr2 := runChaosWorkload(t, chaosPlan(), 12)
	if tr1 == tr2 {
		t.Fatal("different seeds produced identical fault placement")
	}
}

// TestFaultsActuallyFire: the violent plan must exercise every category
// it configures, and the kernel must survive all of it.
func TestFaultsActuallyFire(t *testing.T) {
	plan := chaosPlan()
	plan.Counter = &fault.AtomicCounts{}
	runChaosWorkload(t, plan, 11)
	c := plan.Counter.Snapshot()
	if c.NetErrors == 0 && c.LatencySpikes == 0 {
		t.Errorf("no network faults fired: %s", c)
	}
	if c.WorkerCrashes == 0 {
		t.Errorf("no worker crashes fired: %s", c)
	}
	if c.CancelStorms != 2 || c.OverloadBursts != 2 {
		t.Errorf("storms/bursts incomplete: %s", c)
	}
	if c.CallbackPanics == 0 {
		t.Errorf("no callback panics fired: %s", c)
	}
}
