package defense

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// This file implements the non-kernel defenses as scope installers: each
// rewrites the bindings table of every new JavaScript context, exactly the
// deployment surface a browser extension has.

// fuzzyfoxInstall randomizes what the page can learn about time: explicit
// clocks are quantized to a 100µs grid and fuzzed by up to ±0.5ms, and
// timer callbacks are randomly delayed by up to 2ms (the "pause task"
// pacing). Measurements become noisy — but remain averageable, which is
// why Fuzzyfox still loses Table I rows with large secrets.
func fuzzyfoxInstall(s *sim.Simulator) func(*browser.Global) {
	const (
		grid     = 100 * sim.Microsecond
		fuzzAmp  = 500 * sim.Microsecond
		paceAmp  = 30 * sim.Millisecond // fuzzy event-loop pauses are tens of ms
		fuzzAmpF = float64(fuzzAmp) / float64(sim.Millisecond)
	)
	return func(g *browser.Global) {
		rng := s.Rand()
		bn := g.Bindings()
		nativeNow := bn.PerformanceNow
		lastNow := 0.0
		bn.PerformanceNow = func() float64 {
			t := nativeNow()
			gridMs := grid.Milliseconds()
			quantized := float64(int64(t/gridMs)) * gridMs
			fuzzed := quantized + (rng.Float64()*2-1)*fuzzAmpF
			if fuzzed < lastNow {
				fuzzed = lastNow
			}
			lastNow = fuzzed
			return fuzzed
		}
		nativeDate := bn.DateNow
		bn.DateNow = func() int64 {
			return nativeDate() + int64(rng.Intn(3)) - 1
		}
		pace := func() sim.Duration { return sim.Duration(rng.Int63n(int64(paceAmp))) }
		nativeTimeout := bn.SetTimeout
		bn.SetTimeout = func(cb func(*browser.Global), d sim.Duration) int {
			return nativeTimeout(cb, d+pace())
		}
		nativeInterval := bn.SetInterval
		bn.SetInterval = func(cb func(*browser.Global), d sim.Duration) int {
			return nativeInterval(cb, d+pace())
		}
		nativeRAF := bn.RequestAnimationFrame
		bn.RequestAnimationFrame = func(cb func(*browser.Global, float64)) int {
			return nativeRAF(func(gg *browser.Global, ts float64) {
				// A pause task before the frame callback. Pauses routinely
				// exceed the frame period, so frames drop — one of
				// Fuzzyfox's visible compatibility costs.
				gg.Busy(pace())
				cb(gg, ts)
			})
		}
		// Pause tasks also land in front of resource-load and fetch
		// deliveries: page loading visibly slows (Figure 3).
		nativeLoadScript := bn.LoadScript
		bn.LoadScript = func(url string, onload, onerror func(*browser.Global)) {
			wrap := func(cb func(*browser.Global)) func(*browser.Global) {
				if cb == nil {
					return nil
				}
				return func(gg *browser.Global) {
					gg.Busy(pace())
					cb(gg)
				}
			}
			nativeLoadScript(url, wrap(onload), wrap(onerror))
		}
		nativeLoadImage := bn.LoadImage
		bn.LoadImage = func(url string, onload func(*browser.Global, *dom.Element), onerror func(*browser.Global)) {
			wrappedLoad := onload
			if onload != nil {
				wrappedLoad = func(gg *browser.Global, el *dom.Element) {
					gg.Busy(pace())
					onload(gg, el)
				}
			}
			wrappedErr := onerror
			if onerror != nil {
				wrappedErr = func(gg *browser.Global) {
					gg.Busy(pace())
					onerror(gg)
				}
			}
			nativeLoadImage(url, wrappedLoad, wrappedErr)
		}
		nativeFetch := bn.Fetch
		bn.Fetch = func(url string, opts browser.FetchOptions, cb func(*browser.Response, error)) browser.FetchID {
			wrapped := cb
			if cb != nil {
				wrapped = func(r *browser.Response, err error) {
					g.Busy(pace())
					cb(r, err)
				}
			}
			return nativeFetch(url, opts, wrapped)
		}
		g.Freeze()
	}
}

// torInstall coarsens explicit clocks to 100ms, Tor Browser's
// fingerprinting mitigation. Implicit clocks are untouched — which is why
// Tor loses every implicit-clock row of Table I.
func torInstall(g *browser.Global) {
	const grain = 100 * sim.Millisecond
	bn := g.Bindings()
	nativeNow := bn.PerformanceNow
	bn.PerformanceNow = func() float64 {
		grainMs := grain.Milliseconds()
		t := nativeNow()
		return float64(int64(t/grainMs)) * grainMs
	}
	nativeDate := bn.DateNow
	bn.DateNow = func() int64 {
		ms := nativeDate()
		return ms / 100 * 100
	}
	g.Freeze()
}

// chromeZeroInstall models JavaScript Zero's extension: timing APIs are
// redefined with reduced precision and noise, and workers are replaced by
// a non-parallel polyfill that runs worker scripts on the main thread —
// the functionality sacrifice §I of the paper calls out.
func chromeZeroInstall(s *sim.Simulator) func(*browser.Global) {
	const (
		grid    = 100 * sim.Microsecond
		fuzzAmp = 200 * sim.Microsecond
	)
	// proxyCost is the per-call price of JavaScript Zero's proxy chains:
	// every redefined API traverses several wrapped closures. It is what
	// makes Chrome Zero visibly slower than JSKernel in Figure 3.
	const proxyCost = 60 * sim.Microsecond
	// Polyfill worker IDs are allocated per environment, not from a
	// package-level counter: a global would make IDs depend on how many
	// environments ran before this one (and race when experiment cells
	// run on a worker pool), breaking run isolation.
	ids := polyfillIDBase
	return func(g *browser.Global) {
		rng := s.Rand()
		bn := g.Bindings()
		nativeNow := bn.PerformanceNow
		lastNow := 0.0
		bn.PerformanceNow = func() float64 {
			t := nativeNow()
			gridMs := grid.Milliseconds()
			fuzzMs := float64(fuzzAmp) / float64(sim.Millisecond)
			v := float64(int64(t/gridMs))*gridMs + (rng.Float64()*2-1)*fuzzMs
			if v < lastNow {
				v = lastNow
			}
			lastNow = v
			return v
		}
		bn.NewWorker = func(src string) (browser.Worker, error) {
			g.Busy(proxyCost)
			ids++
			return newPolyfillWorker(g, src, ids)
		}
		nativeTimeout := bn.SetTimeout
		bn.SetTimeout = func(cb func(*browser.Global), d sim.Duration) int {
			g.Busy(proxyCost)
			return nativeTimeout(cb, d)
		}
		nativeFetch := bn.Fetch
		bn.Fetch = func(url string, opts browser.FetchOptions, cb func(*browser.Response, error)) browser.FetchID {
			g.Busy(proxyCost)
			return nativeFetch(url, opts, cb)
		}
		nativeLoadScript := bn.LoadScript
		bn.LoadScript = func(url string, onload, onerror func(*browser.Global)) {
			g.Busy(proxyCost)
			nativeLoadScript(url, onload, onerror)
		}
		nativeLoadImage := bn.LoadImage
		bn.LoadImage = func(url string, onload func(*browser.Global, *dom.Element), onerror func(*browser.Global)) {
			g.Busy(proxyCost)
			nativeLoadImage(url, onload, onerror)
		}
		g.Freeze()
	}
}

// polyfillWorker is Chrome Zero's worker replacement: the worker script
// runs on the main thread in a synthetic scope. There is no parallelism,
// so worker "background" computation blocks the page — backward
// compatibility is sacrificed, and worker-based implicit clocks stop
// interleaving with main-thread work.
type polyfillWorker struct {
	id    int
	src   string
	alive bool

	main  *browser.Global // parent scope (main thread)
	scope *browser.Global // synthetic worker scope on the same thread

	onMessage      func(*browser.Global, browser.MessageEvent)
	onError        func(*browser.Global, *browser.WorkerError)
	scopeOnMessage func(*browser.Global, browser.MessageEvent)
	inFlight       int
}

var _ browser.Worker = (*polyfillWorker)(nil)

// polyfillIDBase offsets polyfill worker ids so they stay distinct from
// native worker ids; each environment counts up from here independently.
const polyfillIDBase = 1_000_000

func newPolyfillWorker(main *browser.Global, src string, id int) (browser.Worker, error) {
	b := main.Browser()
	script, err := b.WorkerScript(src)
	if err != nil {
		return nil, fmt.Errorf("chromezero polyfill: %w", err)
	}
	w := &polyfillWorker{id: id, src: src, alive: true, main: main}
	scope := b.NewScopeOnThread(main.Thread())
	w.scope = scope
	sb := scope.Bindings()
	// Worker-scope postMessage delivers to the parent handle — but on the
	// same thread.
	sb.PostMessage = func(data any) {
		if !w.alive {
			return
		}
		w.inFlight++
		main.Thread().PostTask(main.Thread().Now(), "polyfill-onmessage", func(gg *browser.Global) {
			w.inFlight--
			if w.alive && w.onMessage != nil {
				w.onMessage(gg, browser.MessageEvent{Data: data, SourceWorker: w.id})
			}
		})
	}
	sb.SetOnMessage = func(cb func(*browser.Global, browser.MessageEvent)) {
		w.scopeOnMessage = cb
	}
	// Polyfill functionality loss: no importScripts, no worker location.
	sb.ImportScripts = func(url string) error {
		return fmt.Errorf("chromezero polyfill: importScripts unsupported")
	}
	sb.WorkerLocation = func() string { return "" }
	scope.Freeze()
	// Run the worker script inline on the main thread.
	main.Thread().PostTask(main.Thread().Now(), "polyfill-start:"+src, func(*browser.Global) {
		script(scope)
	})
	return w, nil
}

// ID returns the polyfill worker's id.
func (w *polyfillWorker) ID() int { return w.id }

// Src returns the worker source name.
func (w *polyfillWorker) Src() string { return w.src }

// Alive reports whether Terminate has been called.
func (w *polyfillWorker) Alive() bool { return w.alive }

// Thread returns the main thread: the polyfill has no thread of its own.
func (w *polyfillWorker) Thread() *browser.Thread { return w.main.Thread() }

// InFlight reports queued polyfill messages.
func (w *polyfillWorker) InFlight() int { return w.inFlight }

// PostMessage delivers parent→worker on the shared thread.
func (w *polyfillWorker) PostMessage(data any) {
	if !w.alive {
		return
	}
	w.inFlight++
	w.main.Thread().PostTask(w.main.Thread().Now(), "polyfill-to-worker", func(gg *browser.Global) {
		w.inFlight--
		if w.alive && w.scopeOnMessage != nil {
			w.scopeOnMessage(w.scope, browser.MessageEvent{Data: data})
		}
	})
}

// PostMessageTransfer degrades to a plain message (no real transfer
// semantics in the polyfill).
func (w *polyfillWorker) PostMessageTransfer(data any, buf *browser.SharedBuffer) {
	w.PostMessage(data)
}

// SetOnMessage installs the parent-side handler.
func (w *polyfillWorker) SetOnMessage(cb func(*browser.Global, browser.MessageEvent)) {
	w.onMessage = cb
}

// SetOnError installs the parent-side error handler.
func (w *polyfillWorker) SetOnError(cb func(*browser.Global, *browser.WorkerError)) {
	w.onError = cb
}

// Terminate stops message delivery; there is no thread to kill.
func (w *polyfillWorker) Terminate() { w.alive = false }

// Release is a no-op for the polyfill.
func (w *polyfillWorker) Release() {}
