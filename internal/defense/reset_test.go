package defense_test

import (
	"bytes"
	"reflect"
	"testing"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/kernel"
	"jskernel/internal/report"
	"jskernel/internal/trace"
)

// cellOutput is everything one Table I cell produces: the verdict, the
// rendered table row, the per-channel statistics, and the full
// validated lifecycle trace.
type cellOutput struct {
	defended bool
	channels []attack.ChannelResult
	table    []byte
	records  []trace.Record
	report   trace.Report
}

// runCell evaluates one timing cell with a trace session attached,
// optionally on a pooled environment (nil = fresh construction, the
// pre-pooling behavior).
func runCell(t *testing.T, env *kernel.Environment) cellOutput {
	t.Helper()
	d, err := defense.ByID("jskernel-chrome")
	if err != nil {
		t.Fatal(err)
	}
	sess := trace.NewSession()
	d = d.WithTracer(sess)
	if env != nil {
		d = d.WithRuntime(&defense.Runtime{Env: env})
	}
	var a *attack.TimingAttack
	for _, ta := range attack.TimingAttacks() {
		if ta.ID == "loopscan" {
			a = ta
		}
	}
	out := a.Evaluate(d, 2, 42)
	sess.Close()
	recs := sess.Records()
	rep, err := trace.Validate(recs)
	if err != nil {
		t.Fatalf("trace validation: %v", err)
	}
	tbl := &report.Table{Title: "Table I cell", Columns: []string{"Attack", d.Label}}
	tbl.AddRow(a.Label, report.Mark(out.Defended))
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return cellOutput{
		defended: out.Defended,
		channels: out.Channels,
		table:    buf.Bytes(),
		records:  recs,
		report:   *rep,
	}
}

// TestResetEnvironmentByteIdentical is the environment-reuse pin: a
// Table I cell evaluated on a pooled, Reset environment produces output
// byte-identical to a fresh environment — verdict, channel statistics,
// rendered table, and the complete validated trace — across at least
// three reuse generations. This is the property that lets jsk-serve
// reset-instead-of-rebuild without shedding accuracy.
func TestResetEnvironmentByteIdentical(t *testing.T) {
	fresh := runCell(t, nil)
	if !fresh.defended {
		t.Fatal("baseline cell must be defended (jskernel-chrome vs loopscan)")
	}

	pooled := kernel.NewEnvironment()
	for gen := 1; gen <= 4; gen++ {
		got := runCell(t, pooled)
		if got.defended != fresh.defended {
			t.Fatalf("generation %d: verdict flipped on reused environment", gen)
		}
		if !reflect.DeepEqual(got.channels, fresh.channels) {
			t.Errorf("generation %d: channel statistics diverged:\nfresh: %+v\nreuse: %+v", gen, fresh.channels, got.channels)
		}
		if !bytes.Equal(got.table, fresh.table) {
			t.Errorf("generation %d: rendered table diverged:\nfresh:\n%s\nreuse:\n%s", gen, fresh.table, got.table)
		}
		if !reflect.DeepEqual(got.records, fresh.records) {
			t.Errorf("generation %d: lifecycle trace diverged (%d vs %d records)", gen, len(fresh.records), len(got.records))
		}
		if !reflect.DeepEqual(got.report, fresh.report) {
			t.Errorf("generation %d: trace validation report diverged", gen)
		}
	}
}

// TestResetEnvironmentAcrossCells reuses one environment across
// *different* cells and checks each against its fresh reference —
// leakage from cell A into cell B would show up as divergence in B.
func TestResetEnvironmentAcrossCells(t *testing.T) {
	run := func(env *kernel.Environment, attackID string, defID string, seed int64) attack.Outcome {
		d, err := defense.ByID(defID)
		if err != nil {
			t.Fatal(err)
		}
		if env != nil {
			d = d.WithRuntime(&defense.Runtime{Env: env})
		}
		for _, ta := range attack.TimingAttacks() {
			if ta.ID == attackID {
				return ta.Evaluate(d, 2, seed)
			}
		}
		t.Fatalf("unknown attack %s", attackID)
		return attack.Outcome{}
	}
	cells := []struct {
		attack string
		def    string
		seed   int64
	}{
		{"loopscan", "jskernel-chrome", 42},
		{"cache-attack", "jskernel-chrome", 7},
		{"clock-edge", "deterfox", 11},
		{"loopscan", "jskernel-chrome", 42}, // repeat of cell 0 after pollution
	}
	env := kernel.NewEnvironment()
	for i, c := range cells {
		fresh := run(nil, c.attack, c.def, c.seed)
		reused := run(env, c.attack, c.def, c.seed)
		if fresh.Defended != reused.Defended || !reflect.DeepEqual(fresh.Channels, reused.Channels) {
			t.Errorf("cell %d (%s/%s): reused environment diverged from fresh", i, c.attack, c.def)
		}
	}
}
