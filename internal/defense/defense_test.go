package defense

import (
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/dom"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
)

func TestCatalogIDsUniqueAndResolvable(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range TableIDefenses() {
		if seen[d.ID] {
			t.Errorf("duplicate defense id %q", d.ID)
		}
		seen[d.ID] = true
		got, err := ByID(d.ID)
		if err != nil {
			t.Errorf("ByID(%q): %v", d.ID, err)
			continue
		}
		if got.Label != d.Label {
			t.Errorf("ByID(%q) label mismatch", d.ID)
		}
	}
	if _, err := ByID("netscape"); err == nil {
		t.Error("unknown defense should error")
	}
}

func TestNewEnvBasics(t *testing.T) {
	for _, d := range TableIDefenses() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			env := d.NewEnv(EnvOptions{Seed: 1})
			if env.Browser == nil || env.Sim == nil || env.Registry == nil {
				t.Fatal("incomplete env")
			}
			if env.Browser.Profile.Name != d.Base {
				t.Fatalf("profile = %s, want %s", env.Browser.Profile.Name, d.Base)
			}
			ran := false
			env.Browser.RunScript("probe", func(g *browser.Global) {
				ran = true
				_ = g.PerformanceNow()
				g.SetTimeout(func(*browser.Global) {}, sim.Millisecond)
			})
			if err := env.Browser.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !ran {
				t.Fatal("script did not run")
			}
		})
	}
}

func TestKernelDefensesHaveKernel(t *testing.T) {
	if JSKernel("chrome").NewEnv(EnvOptions{Seed: 1}).Kernel == nil {
		t.Error("JSKernel env has no kernel")
	}
	if DeterFox().NewEnv(EnvOptions{Seed: 1}).Kernel == nil {
		t.Error("DeterFox env has no kernel")
	}
	if Chrome().NewEnv(EnvOptions{Seed: 1}).Kernel != nil {
		t.Error("legacy env should have no kernel")
	}
}

func TestTorClockCoarse(t *testing.T) {
	env := TorBrowser().NewEnv(EnvOptions{Seed: 1})
	var reads []float64
	env.Browser.RunScript("main", func(g *browser.Global) {
		for i := 0; i < 5; i++ {
			reads = append(reads, g.PerformanceNow())
			g.Busy(30 * sim.Millisecond)
		}
	})
	if err := env.Browser.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, v := range reads {
		if int64(v)%100 != 0 {
			t.Fatalf("Tor clock read %v not on the 100ms grid", v)
		}
	}
}

func TestFuzzyfoxClockNoisyButMonotone(t *testing.T) {
	env := Fuzzyfox().NewEnv(EnvOptions{Seed: 7})
	var reads []float64
	env.Browser.RunScript("main", func(g *browser.Global) {
		for i := 0; i < 50; i++ {
			reads = append(reads, g.PerformanceNow())
			g.Busy(time500us())
		}
	})
	if err := env.Browser.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 1; i < len(reads); i++ {
		if reads[i] < reads[i-1] {
			t.Fatalf("fuzzy clock went backwards at %d: %v -> %v", i, reads[i-1], reads[i])
		}
	}
	// Noise: deltas should not all equal the true 0.5ms advance.
	exact := 0
	for i := 1; i < len(reads); i++ {
		if reads[i]-reads[i-1] == 0.5 {
			exact++
		}
	}
	if exact == len(reads)-1 {
		t.Fatal("fuzzyfox clock shows exact time; no fuzz applied")
	}
}

func time500us() sim.Duration { return 500 * sim.Microsecond }

func TestChromeZeroPolyfillRunsOnMainThread(t *testing.T) {
	env := ChromeZero().NewEnv(EnvOptions{Seed: 1})
	b := env.Browser
	var workerThread, mainThread int
	b.RegisterWorkerScript("w.js", func(g *browser.Global) {
		workerThread = g.Thread().ID()
		g.PostMessage("hi")
	})
	var got any
	b.RunScript("main", func(g *browser.Global) {
		mainThread = g.Thread().ID()
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) { got = m.Data })
	})
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if workerThread != mainThread {
		t.Fatalf("polyfill worker ran on thread %d, want main %d (no parallelism)", workerThread, mainThread)
	}
	if got != "hi" {
		t.Fatalf("polyfill message round-trip got %v", got)
	}
	if len(b.Threads()) != 1 {
		t.Fatalf("polyfill spawned %d threads, want 1", len(b.Threads()))
	}
}

func TestChromeZeroPolyfillRoundTripAndTerminate(t *testing.T) {
	env := ChromeZero().NewEnv(EnvOptions{Seed: 1})
	b := env.Browser
	delivered := 0
	b.RegisterWorkerScript("echo.js", func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			gg.PostMessage(m.Data)
		})
	})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("echo.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(*browser.Global, browser.MessageEvent) { delivered++ })
		w.PostMessage(1)
		g.SetTimeout(func(*browser.Global) {
			w.Terminate()
			w.PostMessage(2) // dropped
		}, 10*sim.Millisecond)
	})
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (echo before terminate only)", delivered)
	}
}

func TestDeterministicEnvsAreReproducible(t *testing.T) {
	trace := func(seed int64) []float64 {
		env := JSKernel("chrome").NewEnv(EnvOptions{Seed: seed})
		var out []float64
		env.Browser.RunScript("main", func(g *browser.Global) {
			for i := 0; i < 3; i++ {
				g.SetTimeout(func(gg *browser.Global) {
					out = append(out, gg.PerformanceNow())
				}, sim.Duration(i+1)*sim.Millisecond)
			}
		})
		if err := env.Browser.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	a, b := trace(1), trace(99)
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("JSKernel observable timing depends on seed: %v vs %v", a, b)
		}
	}
}

func TestCatalogListsComplete(t *testing.T) {
	if got := len(TableIIDefenses()); got != 7 {
		t.Fatalf("TableIIDefenses = %d, want 7", got)
	}
	if got := len(Figure3Defenses()); got != 8 {
		t.Fatalf("Figure3Defenses = %d, want 8", got)
	}
	for _, d := range Figure3Defenses() {
		if d.Label == "" || d.Base == "" {
			t.Errorf("incomplete defense entry %+v", d)
		}
	}
}

func TestJSKernelWithPolicyOverride(t *testing.T) {
	p := policy.Deterministic()
	p.PolicyName = "custom"
	p.QuantumMicros = 2000
	d := JSKernelWithPolicy("firefox", "jskernel-custom", p)
	env := d.NewEnv(EnvOptions{Seed: 1})
	if env.Kernel == nil {
		t.Fatal("no kernel")
	}
	if env.Kernel.Policy().Name() != "custom" {
		t.Fatalf("policy = %s", env.Kernel.Policy().Name())
	}
	if env.Browser.Profile.Name != "firefox" {
		t.Fatalf("base = %s", env.Browser.Profile.Name)
	}
}

func TestTorNetworkPenalty(t *testing.T) {
	// Tor's env loads the same resource slower than Firefox's.
	measure := func(d Defense) sim.Duration {
		env := d.NewEnv(EnvOptions{Seed: 4})
		env.Browser.Net.RegisterScript("https://site.example/a.js", 1_000_000)
		res, err := env.Browser.Net.Fetch("https://site.example/a.js", "")
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	if tor, ff := measure(TorBrowser()), measure(Firefox()); tor < ff*2 {
		t.Fatalf("tor latency %v not clearly slower than firefox %v", tor, ff)
	}
}

func TestPolyfillWorkerInterface(t *testing.T) {
	env := ChromeZero().NewEnv(EnvOptions{Seed: 1})
	b := env.Browser
	b.RegisterWorkerScript("p.js", func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			gg.PostMessage(m.Data)
		})
		// Polyfill functionality losses are explicit errors, not crashes.
		if err := g.ImportScripts("https://x.example/lib.js"); err == nil {
			t.Error("polyfill importScripts should fail")
		}
		if loc := g.WorkerLocation(); loc != "" {
			t.Errorf("polyfill worker location = %q, want empty", loc)
		}
	})
	got := 0
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("p.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		if w.ID() == 0 || w.Src() != "p.js" || !w.Alive() {
			t.Errorf("polyfill identity: id=%d src=%q alive=%v", w.ID(), w.Src(), w.Alive())
		}
		if w.Thread() != g.Thread() {
			t.Error("polyfill thread should be main")
		}
		w.SetOnError(func(*browser.Global, *browser.WorkerError) {})
		w.SetOnMessage(func(*browser.Global, browser.MessageEvent) { got++ })
		buf := g.NewSharedBuffer(1)
		w.PostMessageTransfer("x", buf) // degrades to plain message
		w.Release()                     // no-op
		_ = w.InFlight()
		if _, err := g.NewWorker("unregistered.js"); err == nil {
			t.Error("polyfill should reject unknown scripts")
		}
	})
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("echoes = %d, want 1", got)
	}
}

func TestFuzzyfoxLoadPathsPaced(t *testing.T) {
	// The fuzzed load wrappers (LoadScript/LoadImage error+success paths,
	// Fetch) must all function.
	env := Fuzzyfox().NewEnv(EnvOptions{Seed: 6})
	b := env.Browser
	b.Net.RegisterScript("https://site.example/ok.js", 10_000)
	b.Net.RegisterImage("https://site.example/ok.png", 50, 50)
	events := 0
	b.RunScript("main", func(g *browser.Global) {
		g.LoadScript("https://site.example/ok.js", func(*browser.Global) { events++ }, nil)
		g.LoadScript("https://site.example/missing.js", nil, func(*browser.Global) { events++ })
		g.LoadImage("https://site.example/ok.png", func(*browser.Global, *dom.Element) { events++ }, nil)
		g.LoadImage("https://site.example/missing.png", nil, func(*browser.Global) { events++ })
		g.Fetch("https://site.example/ok.js", browser.FetchOptions{}, func(*browser.Response, error) { events++ })
		g.SetInterval(func(gg *browser.Global) {}, 5*sim.Millisecond)
		_ = g.DateNow()
	})
	if err := b.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if events != 5 {
		t.Fatalf("events = %d, want 5", events)
	}
}
