// Package defense configures the seven browser defenses the paper
// evaluates side by side (Tables I–III, Figures 2–3): the three legacy
// browsers, Fuzzyfox, DeterFox, Tor Browser, Chrome Zero, and JSKernel.
//
// Each Defense value knows how to build a ready-to-use environment — a
// simulator, a configured browser, and an armed vulnerability registry —
// so experiments can run any (attack, defense) pair uniformly.
package defense

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/fault"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/vuln"
	"jskernel/internal/webnet"
)

// Kind enumerates the defense mechanisms.
type Kind int

// Defense mechanisms.
const (
	KindLegacy Kind = iota + 1
	KindFuzzyfox
	KindDeterFox
	KindTorBrowser
	KindChromeZero
	KindJSKernel
)

// Defense is one evaluated configuration.
type Defense struct {
	// ID is a stable machine-readable identifier ("jskernel-chrome").
	ID string
	// Label is the column header used in tables ("JSKernel (C)").
	Label string
	// Base names the underlying browser profile.
	Base string
	// Kind selects the mechanism.
	Kind Kind
	// Policy overrides the kernel policy for KindJSKernel defenses (nil
	// means the full defense policy). Ablation studies use it to sweep
	// scheduling parameters and rule subsets.
	Policy kernel.Policy
	// FaultPlan, when non-nil, injects the plan's deterministic faults
	// into every environment this defense builds (chaos experiments).
	FaultPlan *fault.Plan
	// Tracer, when non-nil, receives the kernel lifecycle trace of every
	// environment this defense builds: kernel defenses attach it before
	// scope installation, and native browser events are bridged in as
	// OpNative records. Attack evaluators construct environments
	// internally, so the session rides on the defense the same way fault
	// plans do.
	Tracer *trace.Session
	// Obs enables the browser's observability trace kinds (callback
	// entries, clock reads) in every environment this defense builds.
	// Only meaningful with a Tracer attached: the events travel the
	// OpNative bridge into the session, where internal/obs consumers
	// reconstruct measurement harnesses and attack signatures from them.
	Obs bool
	// Runtime, when non-nil, binds per-request service-layer machinery
	// (a pooled kernel.Environment, a cooperative-cancellation hook) into
	// every environment this defense builds. Attack evaluators construct
	// environments internally, so — like FaultPlan and Tracer — the
	// binding rides on the defense value.
	Runtime *Runtime
}

// Runtime is the service layer's per-request binding into environment
// construction. jsk-serve sets one per admitted request; batch
// experiments leave it nil.
type Runtime struct {
	// Env, when non-nil, is reused (reset, not rebuilt) as the kernel
	// Environment of every kernel-based environment this defense builds.
	// The Reset contract keeps runs byte-identical to fresh-environment
	// runs; non-kernel defenses ignore it. The owner must build
	// environments sequentially — a pooled Environment serves one
	// simulation at a time.
	Env *kernel.Environment
	// Canceled, when non-nil, is polled by the simulator between event
	// dispatches; returning true abandons the run with sim.ErrCanceled.
	// Callers must then surface a typed cancellation error, never any
	// partial verdict.
	Canceled func() bool
}

// WithFaults returns a copy of the defense that builds every
// environment under the given fault plan (nil clears it).
func (d Defense) WithFaults(p *fault.Plan) Defense {
	d.FaultPlan = p
	return d
}

// WithTracer returns a copy of the defense whose environments feed the
// given trace session (nil clears it).
func (d Defense) WithTracer(t *trace.Session) Defense {
	d.Tracer = t
	return d
}

// WithObs returns a copy of the defense with observability events
// enabled or disabled.
func (d Defense) WithObs(obs bool) Defense {
	d.Obs = obs
	return d
}

// WithRuntime returns a copy of the defense carrying a service-layer
// runtime binding (nil clears it).
func (d Defense) WithRuntime(rt *Runtime) Defense {
	d.Runtime = rt
	return d
}

// traceBridge forwards native-layer browser trace events into the
// kernel trace session as OpNative records, so one trace shows the
// end-to-end story. Native events may carry in-task cursor timestamps,
// which is why OpNative is exempt from the validator's per-thread
// monotonicity invariant.
type traceBridge struct {
	s   *trace.Session
	run int
}

func (tb traceBridge) Trace(ev browser.TraceEvent) {
	if ev.Kind == browser.TraceAccess {
		// Shared-target accesses become first-class OpAccess records so
		// the hb analysis (and jsk-race) can consume them without parsing
		// native-event details: API carries the target class, Value the
		// target ID, Action the read/write(+guardian) encoding.
		action := "r"
		if ev.Aux&browser.AccessWrite != 0 {
			action = "w"
		}
		if ev.Aux&browser.AccessGuardian != 0 {
			action += "g"
		}
		tb.s.Emit(trace.Record{
			Run:      tb.run,
			VT:       ev.At,
			Thread:   ev.ThreadID,
			WorkerID: ev.WorkerID,
			Op:       trace.OpAccess,
			API:      ev.Detail,
			Action:   action,
			Value:    ev.Value,
			Aux:      ev.Aux,
		})
		return
	}
	tb.s.Emit(trace.Record{
		Run:      tb.run,
		VT:       ev.At,
		Thread:   ev.ThreadID,
		WorkerID: ev.WorkerID,
		Op:       trace.OpNative,
		API:      ev.Kind.String(),
		Reason:   ev.Detail,
		URL:      ev.URL,
		Value:    ev.Value,
		Aux:      ev.Aux,
	})
}

// EnvOptions tunes environment construction.
type EnvOptions struct {
	Seed        int64
	PrivateMode bool
	// NetConfig overrides the default network model when non-nil.
	NetConfig *webnet.Config
	// MaxSteps bounds the simulation (default 20M).
	MaxSteps uint64
	// Chooser, when non-nil, is installed as the simulator's scheduler
	// tie-break hook before any event is scheduled, so schedule
	// exploration steers the whole run (see sim.Chooser).
	Chooser sim.Chooser
	// Unarmed builds the environment with every CVE detector disarmed:
	// execution is byte-identical but nothing is marked exploited.
	Unarmed bool
}

// Env is a ready-to-run environment: one browser under one defense.
type Env struct {
	Defense  Defense
	Sim      *sim.Simulator
	Browser  *browser.Browser
	Registry *vuln.Registry
	// Kernel is non-nil for kernel-based defenses (JSKernel, DeterFox).
	Kernel *kernel.Shared
	// Faults is non-nil when the defense carries a fault plan; it
	// reports the faults actually injected into this environment.
	Faults *fault.Injector
	// Trace is the defense's trace session, when one is attached.
	Trace *trace.Session
}

// NewEnv builds an environment for this defense.
func (d Defense) NewEnv(opts EnvOptions) *Env {
	s := sim.New(opts.Seed)
	if opts.Chooser != nil {
		s.SetChooser(opts.Chooser)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 20_000_000
	}
	s.MaxSteps = opts.MaxSteps
	if d.Runtime != nil && d.Runtime.Canceled != nil {
		s.SetCanceled(d.Runtime.Canceled)
	}

	cfg := webnet.DefaultConfig()
	if opts.NetConfig != nil {
		cfg = *opts.NetConfig
	}
	if d.Kind == KindTorBrowser {
		// Tor routes traffic through a three-hop circuit: latency and
		// bandwidth degrade, which dominates its Figure 3 curve.
		cfg.RTT *= 4
		cfg.BytesPerSec /= 3
		cfg.JitterFrac *= 3
	}
	net := webnet.New(cfg, s.Rand())
	reg := vuln.NewRegistry()
	if opts.Unarmed {
		reg = vuln.NewUnarmedRegistry()
	}

	var inj *fault.Injector
	if d.FaultPlan != nil {
		inj = fault.NewInjector(d.FaultPlan, opts.Seed, d.ID)
		net.SetFaultInjector(inj)
	}

	bopts := browser.Options{
		Profile:     browser.ProfileByName(d.Base),
		Net:         net,
		PrivateMode: opts.PrivateMode,
		Tracer:      reg,
		ObsEvents:   d.Obs && d.Tracer != nil,
	}
	var shared *kernel.Shared
	// newShared takes the warm-pool path when the service layer bound a
	// reusable Environment to this defense.
	newShared := func(p kernel.Policy) *kernel.Shared {
		if d.Runtime != nil && d.Runtime.Env != nil {
			return kernel.NewSharedReusing(p, d.Runtime.Env)
		}
		return kernel.NewShared(p)
	}
	switch d.Kind {
	case KindLegacy:
		// Unmodified browser.
	case KindJSKernel:
		p := d.Policy
		if p == nil {
			p = policy.FullDefense()
		}
		if inj != nil {
			p = inj.WrapPolicy(p)
		}
		shared = newShared(p)
		shared.SetTracer(d.Tracer)
		bopts.InstallScope = shared.Install
	case KindDeterFox:
		// DeterFox applies the same deterministic scheduling discipline in
		// the browser source itself, stepping its deterministic clock at a
		// coarser per-frame granularity; it carries no CVE policies, so
		// the web-concurrency CVE rows stay exploitable.
		p := policy.Deterministic()
		p.PolicyName = "deterfox-determinism"
		p.QuantumMicros = 4000
		shared = newShared(p)
		shared.SetTracer(d.Tracer)
		bopts.InstallScope = shared.Install
	case KindFuzzyfox:
		bopts.InstallScope = fuzzyfoxInstall(s)
	case KindTorBrowser:
		bopts.InstallScope = torInstall
	case KindChromeZero:
		bopts.InstallScope = chromeZeroInstall(s)
	}

	if d.Tracer != nil {
		// The native bridge must be in the initial tracer chain so even
		// events fired while browser.New bootstraps the main thread land in
		// the session. Kernel defenses allocated this environment's run
		// generation in SetTracer above; environments without a kernel take
		// their own.
		run := 0
		if shared != nil {
			run = shared.TraceRun()
		} else {
			run = d.Tracer.NextRun()
		}
		bopts.Tracer = browser.Tee(reg, traceBridge{s: d.Tracer, run: run})
	}

	b := browser.New(s, bopts)
	b.Origin = "https://site.example"
	if inj != nil {
		if h := inj.BrowserHooks(); h != nil {
			b.SetFaultHooks(h)
		}
		if shared != nil {
			shared.SetCallbackFault(inj.CallbackPanic)
		}
		inj.Arm(b)
	}
	return &Env{Defense: d, Sim: s, Browser: b, Registry: reg, Kernel: shared, Faults: inj, Trace: d.Tracer}
}

// Catalog construction -------------------------------------------------

// Chrome, Firefox and Edge are the unmodified "Legacy Three".
func Chrome() Defense {
	return Defense{ID: "chrome", Label: "Chrome", Base: "chrome", Kind: KindLegacy}
}

// Firefox is the legacy Firefox profile.
func Firefox() Defense {
	return Defense{ID: "firefox", Label: "Firefox", Base: "firefox", Kind: KindLegacy}
}

// Edge is the legacy Edge profile.
func Edge() Defense {
	return Defense{ID: "edge", Label: "Edge", Base: "edge", Kind: KindLegacy}
}

// Fuzzyfox randomizes clocks and event pacing (Kohlbrenner & Shacham).
func Fuzzyfox() Defense {
	return Defense{ID: "fuzzyfox", Label: "Fuzzyfox", Base: "firefox", Kind: KindFuzzyfox}
}

// DeterFox enforces deterministic cross-origin timing in the browser
// source (Cao et al.); Firefox-only, no CVE policies.
func DeterFox() Defense {
	return Defense{ID: "deterfox", Label: "DeterFox", Base: "firefox", Kind: KindDeterFox}
}

// TorBrowser coarsens explicit clocks to 100ms.
func TorBrowser() Defense {
	return Defense{ID: "tor", Label: "Tor Browser", Base: "firefox", Kind: KindTorBrowser}
}

// ChromeZero redefines timing APIs with fuzz and replaces workers with a
// non-parallel polyfill (Schwarz et al.).
func ChromeZero() Defense {
	return Defense{ID: "chromezero", Label: "Chrome Zero", Base: "chrome", Kind: KindChromeZero}
}

// JSKernel is the paper's defense on a given base browser.
func JSKernel(base string) Defense {
	return Defense{
		ID:    "jskernel-" + base,
		Label: fmt.Sprintf("JSKernel (%s)", base),
		Base:  base,
		Kind:  KindJSKernel,
	}
}

// JSKernelWithPolicy is a JSKernel variant running a custom policy, for
// ablation studies and synthesized-policy evaluation.
func JSKernelWithPolicy(base, id string, p kernel.Policy) Defense {
	return Defense{
		ID:     id,
		Label:  fmt.Sprintf("JSKernel[%s]", id),
		Base:   base,
		Kind:   KindJSKernel,
		Policy: p,
	}
}

// TableIDefenses returns the seven columns of Table I in paper order:
// the Legacy Three (as one logical column each), Fuzzyfox, DeterFox,
// Tor Browser, Chrome Zero and JSKernel.
func TableIDefenses() []Defense {
	return []Defense{
		Chrome(), Firefox(), Edge(),
		Fuzzyfox(), DeterFox(), TorBrowser(), ChromeZero(),
		JSKernel("chrome"),
	}
}

// TableIIDefenses returns the seven rows of Table II in paper order.
func TableIIDefenses() []Defense {
	return []Defense{
		Chrome(), Firefox(), Edge(),
		Fuzzyfox(), TorBrowser(), ChromeZero(),
		JSKernel("chrome"),
	}
}

// Figure3Defenses returns the CDF series of Figure 3 in legend order.
func Figure3Defenses() []Defense {
	return []Defense{
		Chrome(), JSKernel("chrome"), ChromeZero(),
		Firefox(), JSKernel("firefox"),
		DeterFox(), TorBrowser(), Fuzzyfox(),
	}
}

// ByID resolves a defense from its identifier.
func ByID(id string) (Defense, error) {
	all := append(TableIDefenses(), JSKernel("firefox"), JSKernel("edge"))
	for _, d := range all {
		if d.ID == id {
			return d, nil
		}
	}
	return Defense{}, fmt.Errorf("defense: unknown id %q", id)
}
