package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jskernel/internal/sim"
)

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	e3 := q.NewEvent("c", 30, nil)
	e1 := q.NewEvent("a", 10, nil)
	e2 := q.NewEvent("b", 20, nil)
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if top := q.Top(); top != e1 {
		t.Fatalf("top = %v, want earliest", top.API)
	}
	if got := q.Pop(); got != e1 {
		t.Fatal("pop order wrong")
	}
	if got := q.Pop(); got != e2 {
		t.Fatal("pop order wrong")
	}
	if got := q.Pop(); got != e3 {
		t.Fatal("pop order wrong")
	}
	if q.Pop() != nil {
		t.Fatal("pop of empty queue should be nil")
	}
	if q.Top() != nil {
		t.Fatal("top of empty queue should be nil")
	}
}

func TestEventQueueTieBreakBySeq(t *testing.T) {
	q := NewEventQueue()
	var ids []EventID
	for i := 0; i < 5; i++ {
		ids = append(ids, q.NewEvent("tie", 100, nil).ID)
	}
	for i := 0; i < 5; i++ {
		if got := q.Pop(); got.ID != ids[i] {
			t.Fatalf("tie-break violated at %d", i)
		}
	}
}

func TestEventQueueLookupRemove(t *testing.T) {
	q := NewEventQueue()
	ev := q.NewEvent("x", 50, nil)
	got, ok := q.Lookup(ev.ID)
	if !ok || got != ev {
		t.Fatal("lookup failed")
	}
	if !q.Remove(ev.ID) {
		t.Fatal("remove failed")
	}
	if q.Remove(ev.ID) {
		t.Fatal("double remove should report false")
	}
	if _, ok := q.Lookup(ev.ID); ok {
		t.Fatal("removed event still in lookup")
	}
}

func TestEventQueueRemoveMiddleKeepsHeap(t *testing.T) {
	q := NewEventQueue()
	var evs []*Event
	for i := 0; i < 20; i++ {
		evs = append(evs, q.NewEvent("x", sim.Time(100-i), nil))
	}
	for i := 3; i < 20; i += 4 {
		if !q.Remove(evs[i].ID) {
			t.Fatalf("remove %d failed", i)
		}
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("heap invariant: %v", err)
	}
	var last sim.Time = -1
	for q.Len() > 0 {
		ev := q.Pop()
		if ev.Predicted < last {
			t.Fatal("pop order violated after removals")
		}
		last = ev.Predicted
	}
}

func TestPropertyQueueMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewEventQueue()
		n := rng.Intn(100) + 1
		type ref struct {
			pred sim.Time
			id   EventID
		}
		var refs []ref
		for i := 0; i < n; i++ {
			pred := sim.Time(rng.Intn(50))
			ev := q.NewEvent("p", pred, nil)
			refs = append(refs, ref{pred: pred, id: ev.ID})
		}
		// Remove a random subset.
		kept := refs[:0]
		for _, r := range refs {
			if rng.Intn(4) == 0 {
				if !q.Remove(r.id) {
					return false
				}
				continue
			}
			kept = append(kept, r)
		}
		if err := q.Validate(); err != nil {
			return false
		}
		// Stable sort by (pred, insertion order) — ids are insertion-ordered.
		for i := 1; i < len(kept); i++ {
			for j := i; j > 0 && (kept[j-1].pred > kept[j].pred ||
				(kept[j-1].pred == kept[j].pred && kept[j-1].id > kept[j].id)); j-- {
				kept[j-1], kept[j] = kept[j], kept[j-1]
			}
		}
		for _, want := range kept {
			got := q.Pop()
			if got == nil || got.ID != want.id {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClockTicking(t *testing.T) {
	c := NewClock(sim.Millisecond)
	if c.Now() != 0 {
		t.Fatal("clock should start at 0")
	}
	c.Tick(3 * sim.Millisecond)
	if c.Now() != 3*sim.Millisecond || c.Ticks() != 1 {
		t.Fatalf("after tick: now=%v ticks=%d", c.Now(), c.Ticks())
	}
	c.TickTo(10 * sim.Millisecond)
	if c.Now() != 10*sim.Millisecond {
		t.Fatalf("TickTo: now=%v", c.Now())
	}
	c.TickTo(5 * sim.Millisecond) // backwards: no-op
	if c.Now() != 10*sim.Millisecond {
		t.Fatal("clock moved backwards")
	}
	c.Tick(0) // non-positive: no-op
	c.Tick(-sim.Millisecond)
	if c.Now() != 10*sim.Millisecond {
		t.Fatal("non-positive tick changed clock")
	}
}

func TestClockDisplayQuantized(t *testing.T) {
	c := NewClock(5 * sim.Millisecond)
	c.TickTo(13 * sim.Millisecond)
	if got := c.DisplayMillis(); got != 10 {
		t.Fatalf("display = %v, want 10 (quantized)", got)
	}
	if got := c.DisplayUnixMillis(); got != 13 {
		t.Fatalf("unix display = %v, want 13", got)
	}
}

func TestClockZeroQuantumDefaults(t *testing.T) {
	c := NewClock(0)
	if c.Quantum() != sim.Millisecond {
		t.Fatalf("quantum = %v, want 1ms default", c.Quantum())
	}
}

func TestPropertyClockMonotone(t *testing.T) {
	f := func(steps []int16) bool {
		c := NewClock(sim.Millisecond)
		last := c.Now()
		for _, s := range steps {
			if s%2 == 0 {
				c.Tick(sim.Duration(s))
			} else {
				c.TickTo(sim.Time(s) * sim.Millisecond)
			}
			if c.Now() < last {
				return false
			}
			last = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{
		StatusPending: "pending", StatusReady: "ready",
		StatusCancelled: "cancelled", StatusDone: "done", Status(0): "invalid",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestDefaultPredictDelay(t *testing.T) {
	q := sim.Millisecond
	lp := 10 * sim.Millisecond
	cases := []struct {
		api       string
		requested sim.Duration
		want      sim.Duration
	}{
		{"setTimeout", 0, q},
		{"setTimeout", 500 * sim.Microsecond, q},
		{"setTimeout", 2500 * sim.Microsecond, 3 * q},
		{"message", 0, q},
		{"fetch", 0, lp},
		{"script-load", 0, lp},
		{"raf", 0, 17 * sim.Millisecond},
		{"cue", 0, 100 * sim.Millisecond},
		{"unknown-api", 0, q},
	}
	for _, tc := range cases {
		if got := DefaultPredictDelay(tc.api, tc.requested, q, lp); got != tc.want {
			t.Errorf("PredictDelay(%q, %v) = %v, want %v", tc.api, tc.requested, got, tc.want)
		}
	}
	// Zero quantum defaults to 1ms.
	if got := DefaultPredictDelay("setTimeout", 0, 0, lp); got != sim.Millisecond {
		t.Errorf("zero-quantum predict = %v", got)
	}
}
