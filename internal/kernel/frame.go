package kernel

import (
	"jskernel/internal/browser"
)

// Frame support: the paper's kernel is injected "into every new JavaScript
// context, such as a newly-opened window and an iframe" (§VI). The
// browser's scope installer already kernelizes the frame's global; this
// file adds the user-space stub so cross-context messaging goes through
// both kernels' schedulers.

// FrameStub is the kernel's user-space handle for an embedded frame.
type FrameStub struct {
	shared *Shared
	parent *Kernel
	native browser.Frame
}

var _ browser.Frame = (*FrameStub)(nil)

// ID returns the frame's unique id.
func (f *FrameStub) ID() int { return f.native.ID() }

// Origin returns the frame document's origin.
func (f *FrameStub) Origin() string { return f.native.Origin() }

// Attached reports whether the frame is still embedded.
func (f *FrameStub) Attached() bool { return f.native.Attached() }

// Scope returns the frame's (kernelized) global scope.
func (f *FrameStub) Scope() *browser.Global { return f.native.Scope() }

// RunScript schedules script execution inside the frame.
func (f *FrameStub) RunScript(name string, script browser.Script) {
	f.native.RunScript(name, script)
}

// Remove detaches the frame.
func (f *FrameStub) Remove() { f.native.Remove() }

// PostMessage routes a parent→frame message through the frame kernel's
// scheduler: the delivery event is registered (with a prediction from the
// sending window's logical state) before the native message travels.
func (f *FrameStub) PostMessage(data any, targetOrigin string) {
	fk := f.shared.KernelOf(f.native.Scope())
	if fk == nil {
		f.native.PostMessage(data, targetOrigin)
		return
	}
	ev := fk.newEvent("onmessage", fk.nextInboundPred(f.parent.nextOutgoingPred()), func(g *browser.Global, args any) {
		m, ok := args.(browser.MessageEvent)
		if !ok {
			return
		}
		fk.deliverUserMessage(g, m)
	})
	f.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID}, targetOrigin)
}

// kCreateFrame wraps frame creation; the new scope is kernelized by the
// browser's installer before any frame script runs.
func (k *Kernel) kCreateFrame(origin string) (browser.Frame, error) {
	k.interpose()
	native, err := k.native.CreateFrame(origin)
	if err != nil {
		return nil, err
	}
	return &FrameStub{shared: k.shared, parent: k, native: native}, nil
}
