package kernel_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

// This file checks the kernel's central security invariant as a property:
// for ANY page behaviour, everything user space can observe — the order
// of its callbacks and every clock reading — is identical no matter how
// long the underlying (secret) computations take. If this property holds,
// no implicit or explicit clock can measure anything.

// scenario is a randomly generated page: a fixed sequence of API
// operations whose *structure* is the same across runs, while the
// synchronous costs (the secrets) are scaled by costScale.
type scenario struct {
	seed      int64
	costScale sim.Duration
}

// observation is one attacker-visible datum: which callback ran, in what
// order, and what the clock said.
type observation struct {
	tag   string
	clock float64
}

// runScenario executes the generated page under a fully kernelized
// browser and returns two observable traces: the receiver-local one
// (timers, rAF, fetches, synchronous reads — strictly deterministic) and
// the worker-reply one (deterministic as a sequence; its interleaving
// with local events is bounded to one logical slot, the documented
// residual — see nextInboundPred).
func runScenario(t *testing.T, sc scenario) (local, replies []observation) {
	t.Helper()
	s := sim.New(1) // fixed simulator seed: network jitter is not the secret
	s.MaxSteps = 10_000_000
	cfg := webnet.DefaultConfig()
	cfg.JitterFrac = 0
	net := webnet.New(cfg, s.Rand())
	shared := kernel.NewShared(policy.FullDefense())
	b := browser.New(s, browser.Options{Net: net, InstallScope: shared.Install})
	b.Origin = "https://site.example"
	b.Net.RegisterScript("https://site.example/r.js", 400_000)

	rng := rand.New(rand.NewSource(sc.seed))
	see := func(g *browser.Global, tag string) {
		local = append(local, observation{tag: tag, clock: g.PerformanceNow()})
	}

	b.RegisterWorkerScript("w.js", func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			// Secret-dependent background work.
			gg.Busy(sim.Duration(rng.Intn(20)+1) * sc.costScale)
			gg.PostMessage(m.Data)
		})
	})

	b.RunScript("scenario", func(g *browser.Global) {
		var w browser.Worker
		nOps := rng.Intn(12) + 4
		for i := 0; i < nOps; i++ {
			op := rng.Intn(6)
			tag := fmt.Sprintf("op%d-kind%d", i, op)
			switch op {
			case 0: // timer with secret-dependent body
				d := sim.Duration(rng.Intn(8)+1) * sim.Millisecond
				cost := sim.Duration(rng.Intn(30)+1) * sc.costScale
				g.SetTimeout(func(gg *browser.Global) {
					gg.Busy(cost)
					see(gg, tag)
				}, d)
			case 1: // synchronous secret work + clock read
				g.Busy(sim.Duration(rng.Intn(50)+1) * sc.costScale)
				see(g, tag)
			case 2: // animation frame
				g.RequestAnimationFrame(func(gg *browser.Global, ts float64) {
					local = append(local, observation{tag: tag, clock: ts})
				})
			case 3: // fetch (completion time depends on scale only via queue)
				g.Fetch("https://site.example/r.js", browser.FetchOptions{}, func(r *browser.Response, err error) {
					see(g, tag)
				})
			case 4: // worker round trip with secret-dependent worker time
				if w == nil {
					var err error
					w, err = g.NewWorker("w.js")
					if err != nil {
						t.Errorf("worker: %v", err)
						continue
					}
					w.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
						replies = append(replies, observation{tag: fmt.Sprintf("reply-%v", m.Data)})
					})
				}
				w.PostMessage(i)
			case 5: // float noise (secret-dependent)
				g.FloatOps(rng.Intn(5000)*int(sc.costScale/sim.Nanosecond+1), rng.Intn(2) == 0)
				see(g, tag)
			}
		}
	})
	if err := b.RunFor(20 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	return local, replies
}

// TestPropertyObservablesIndependentOfSecretCosts scales every secret
// computation by 1ns vs 200ns per unit and requires bit-identical local
// observable traces (order AND clock readings), plus identical worker
// reply sequences.
func TestPropertyObservablesIndependentOfSecretCosts(t *testing.T) {
	f := func(seed int64) bool {
		fastLocal, fastReplies := runScenario(t, scenario{seed: seed, costScale: 1 * sim.Nanosecond})
		slowLocal, slowReplies := runScenario(t, scenario{seed: seed, costScale: 200 * sim.Nanosecond})
		if len(fastLocal) != len(slowLocal) {
			t.Logf("seed %d: local trace lengths differ: %d vs %d", seed, len(fastLocal), len(slowLocal))
			return false
		}
		for i := range fastLocal {
			if fastLocal[i] != slowLocal[i] {
				t.Logf("seed %d: local traces diverge at %d: %+v vs %+v", seed, i, fastLocal[i], slowLocal[i])
				return false
			}
		}
		if len(fastReplies) != len(slowReplies) {
			t.Logf("seed %d: reply counts differ: %d vs %d", seed, len(fastReplies), len(slowReplies))
			return false
		}
		for i := range fastReplies {
			if fastReplies[i].tag != slowReplies[i].tag {
				t.Logf("seed %d: reply order diverges at %d", seed, i)
				return false
			}
		}
		return len(fastLocal) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyObservablesDoDependOnSecretCosts is the control: without the
// kernel the same scenarios leak, proving the property test has teeth.
func TestLegacyObservablesDoDependOnSecretCosts(t *testing.T) {
	runLegacy := func(seed int64, scale sim.Duration) []observation {
		s := sim.New(1)
		s.MaxSteps = 10_000_000
		cfg := webnet.DefaultConfig()
		cfg.JitterFrac = 0
		net := webnet.New(cfg, s.Rand())
		b := browser.New(s, browser.Options{Net: net})
		b.Origin = "https://site.example"
		var obs []observation
		rng := rand.New(rand.NewSource(seed))
		b.RunScript("scenario", func(g *browser.Global) {
			for i := 0; i < 6; i++ {
				cost := sim.Duration(rng.Intn(50)+1) * scale
				g.Busy(cost)
				obs = append(obs, observation{tag: fmt.Sprint(i), clock: g.PerformanceNow()})
			}
		})
		if err := b.RunFor(5 * sim.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		return obs
	}
	fast := runLegacy(7, sim.Microsecond)
	slow := runLegacy(7, 100*sim.Microsecond)
	same := len(fast) == len(slow)
	if same {
		for i := range fast {
			if fast[i] != slow[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("legacy browser hid secret costs; the determinism property test would be vacuous")
	}
}

// TestMultiContextDeterminism stresses determinism across three kinds of
// contexts at once: the window, two workers, and a cross-origin frame,
// all with secret-dependent workloads.
func TestMultiContextDeterminism(t *testing.T) {
	trace := func(scale sim.Duration) []string {
		b, _, _ := newKernelBrowser(t, nil)
		var out []string
		see := func(tag string, clock float64) {
			out = append(out, fmt.Sprintf("%s@%.3f", tag, clock))
		}
		b.RegisterWorkerScript("w1.js", func(g *browser.Global) {
			g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				gg.Busy(7 * scale)
				gg.PostMessage(fmt.Sprintf("w1:%v", m.Data))
			})
		})
		b.RegisterWorkerScript("w2.js", func(g *browser.Global) {
			g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				gg.Busy(23 * scale)
				gg.PostMessage(fmt.Sprintf("w2:%v", m.Data))
			})
		})
		b.RunScript("main", func(g *browser.Global) {
			w1, err1 := g.NewWorker("w1.js")
			w2, err2 := g.NewWorker("w2.js")
			if err1 != nil || err2 != nil {
				t.Errorf("workers: %v %v", err1, err2)
				return
			}
			f, err := g.CreateFrame("https://widget.example")
			if err != nil {
				t.Errorf("frame: %v", err)
				return
			}
			f.RunScript("widget", func(fg *browser.Global) {
				fg.SetOnMessage(func(f3 *browser.Global, m browser.MessageEvent) {
					f3.Busy(11 * scale)
					f3.PostMessage(fmt.Sprintf("frame:%v", m.Data))
				})
			})
			// Window-local observables: strict determinism required.
			for i := 0; i < 3; i++ {
				i := i
				g.SetTimeout(func(gg *browser.Global) {
					gg.Busy(13 * scale)
					see(fmt.Sprintf("timer%d", i), gg.PerformanceNow())
				}, sim.Duration(i+2)*sim.Millisecond)
			}
			// Replies from each context, counted in order per source:
			// worker replies arrive on their handles, frame replies on the
			// window's own onmessage.
			w1.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) {
				see(fmt.Sprintf("reply(%v)", m.Data), -1)
			})
			w2.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) {
				see(fmt.Sprintf("reply(%v)", m.Data), -1)
			})
			g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				see(fmt.Sprintf("reply(%v)", m.Data), -1)
			})
			for i := 0; i < 3; i++ {
				w1.PostMessage(i)
				w2.PostMessage(i)
				f.PostMessage(i, "*")
			}
		})
		if err := b.RunFor(2 * sim.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	fast := trace(1 * sim.Microsecond)
	slow := trace(400 * sim.Microsecond)
	// Per-source subsequences and the full local/clock trace must match.
	filter := func(in []string, prefix string) []string {
		var out []string
		for _, s := range in {
			if strings.HasPrefix(s, prefix) {
				out = append(out, s)
			}
		}
		return out
	}
	for _, prefix := range []string{"timer", "reply(w1", "reply(w2", "reply(frame"} {
		a, b := filter(fast, prefix), filter(slow, prefix)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ (%d vs %d)\nfast=%v\nslow=%v", prefix, len(a), len(b), fast, slow)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s diverges at %d: %s vs %s", prefix, i, a[i], b[i])
			}
		}
		if len(a) != 3 {
			t.Fatalf("%s: got %d observations, want 3", prefix, len(a))
		}
	}
}
