package kernel

import "jskernel/internal/sim"

// Action is what a policy tells the kernel to do with an intercepted call.
type Action string

// Policy actions.
const (
	// ActionAllow passes the call through to the native layer.
	ActionAllow Action = "allow"
	// ActionDeny rejects the call with an error, never reaching native.
	ActionDeny Action = "deny"
	// ActionSanitize replaces the native (leaky) result or error with a
	// kernel-synthesized safe one, without invoking the native path.
	ActionSanitize Action = "sanitize"
	// ActionDefer postpones the native call until the kernel observes a
	// safe state (e.g. terminate once pending fetches drain).
	ActionDefer Action = "defer"
	// ActionRetain makes the call user-visibly succeed while the kernel
	// keeps the underlying resource alive indefinitely (e.g. a worker that
	// transferred buffers is never natively terminated).
	ActionRetain Action = "retain"
	// ActionDrop silently discards the call.
	ActionDrop Action = "drop"
	// ActionSerialize forces the access through the kernel's serializing
	// queue, eliminating cross-thread races.
	ActionSerialize Action = "serialize"
)

// Journal-only actions: the kernel writes these to the decision journal
// when recording survival incidents. Policies never return them.
const (
	// ActionIsolate records one recovered panic (a user callback or a
	// policy Evaluate) that the kernel absorbed without quarantining.
	ActionIsolate Action = "isolate"
	// ActionQuarantine records a context whose user callbacks are
	// suppressed after repeated panics; its events still drain so the
	// dispatcher never wedges.
	ActionQuarantine Action = "quarantine"
	// ActionShed records an event registration refused because the
	// context's queue depth hit the overload bound.
	ActionShed Action = "shed"
	// ActionExpire records a pending event force-expired by the watchdog
	// because its confirmation never arrived.
	ActionExpire Action = "expire"
)

// CallContext describes one intercepted API call for policy evaluation.
// Field names mirror the predicates the paper's example policies test.
type CallContext struct {
	API              string // e.g. "fetch", "xhr", "worker.terminate"
	URL              string
	WorkerID         int
	ThreadID         int  // simulated thread the call originated on
	InWorker         bool // call made from a worker scope
	CrossOrigin      bool // URL is cross-origin w.r.t. the page
	PrivateMode      bool // browser is in private browsing
	TornDown         bool // document has been torn down
	WorkerTerminated bool // target worker is (user-visibly) terminated
	PendingFetches   bool // target worker has in-flight fetches
	InFlightMessages bool // target worker has undelivered messages
	Transferred      bool // target worker transferred a buffer out
	Redirected       bool // worker source resolves through a cross-origin redirect
}

// Verdict is a policy decision plus its rationale.
type Verdict struct {
	Action Action
	Reason string
}

// Allow is the zero-cost "no objection" verdict.
var Allow = Verdict{Action: ActionAllow}

// Policy is what the kernel consults. Implementations live in
// internal/policy; the deterministic scheduling policy of §II-B1 and the
// CVE-specific policies of §IV-B both satisfy it.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Deterministic reports whether event scheduling and the displayed
	// clock must be fully deterministic (the defense against implicit
	// clocks). Non-deterministic kernels still enforce Evaluate verdicts.
	Deterministic() bool
	// Quantum is the logical-clock display granularity and the spacing
	// unit for predicted event times.
	Quantum() sim.Duration
	// PredictDelay returns the logical delay to predict for an event of
	// the given API kind; requested is the user-requested delay (timers)
	// or zero.
	PredictDelay(api string, requested sim.Duration) sim.Duration
	// Evaluate vets one intercepted call.
	Evaluate(ctx CallContext) Verdict
}

// DefaultPredictDelay is the standard deterministic prediction shared by
// policy implementations: timer delays quantized up to the quantum,
// message deliveries one quantum, loads a fixed load prediction, frames
// and cues at their nominal periods quantized to the quantum.
func DefaultPredictDelay(api string, requested, quantum, loadPrediction sim.Duration) sim.Duration {
	if quantum <= 0 {
		quantum = sim.Millisecond
	}
	quantize := func(d sim.Duration) sim.Duration {
		if d <= quantum {
			return quantum
		}
		n := (d + quantum - 1) / quantum
		return n * quantum
	}
	switch api {
	case "setTimeout", "setInterval", "timer":
		return quantize(requested)
	case "message", "onmessage":
		return quantum
	case "fetch", "load", "script-load", "image-load":
		if loadPrediction > 0 {
			return quantize(loadPrediction)
		}
		return quantize(10 * sim.Millisecond)
	case "raf", "animation":
		return quantize(16_667 * sim.Microsecond)
	case "cue", "video":
		return quantize(100 * sim.Millisecond)
	default:
		return quantum
	}
}
