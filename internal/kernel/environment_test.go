package kernel

import (
	"testing"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// envTestPolicy is a minimal allow-everything Policy; the internal/policy
// package cannot be imported here (it depends on kernel).
type envTestPolicy struct{}

func (envTestPolicy) Name() string        { return "env-test" }
func (envTestPolicy) Deterministic() bool { return true }
func (envTestPolicy) Quantum() sim.Duration {
	return sim.Millisecond
}
func (envTestPolicy) PredictDelay(api string, requested sim.Duration) sim.Duration {
	return DefaultPredictDelay(api, requested, sim.Millisecond, 0)
}
func (envTestPolicy) Evaluate(ctx CallContext) Verdict { return Allow }

// TestEnvironmentIsolation pins the property the parallel experiment
// runner depends on: every Shared owns its own Environment, so
// run-scoped mutable state — hardening knobs, journal, trace binding —
// never leaks between concurrently-evaluated cells.
func TestEnvironmentIsolation(t *testing.T) {
	a := NewShared(envTestPolicy{})
	b := NewShared(envTestPolicy{})
	if a.Env() == b.Env() {
		t.Fatal("two Shared instances returned the same Environment")
	}

	a.SetWatchdogDeadline(5 * sim.Second)
	a.SetMaxQueueDepth(7)
	if got := b.Env().WatchdogDeadline(); got != DefaultWatchdogDeadline {
		t.Fatalf("b's watchdog deadline changed to %v when a's was set", got)
	}
	if got := b.Env().MaxQueueDepth(); got != DefaultMaxQueueDepth {
		t.Fatalf("b's queue depth changed to %d when a's was set", got)
	}
	if got := a.Env().WatchdogDeadline(); got != 5*sim.Second {
		t.Fatalf("a's watchdog deadline = %v, want 5s", got)
	}

	a.journalIncident(Decision{API: "isolation-test", Reason: "a-only"})
	if n := len(b.Decisions()); n != 0 {
		t.Fatalf("a's journal entry leaked into b (%d decisions)", n)
	}
	if n := len(a.Decisions()); n != 1 {
		t.Fatalf("a's journal holds %d decisions, want 1", n)
	}
}

// TestEnvironmentTraceRuns checks that two environments bound to one
// session draw distinct run generations, so their records never share a
// (run, thread) timeline in the merged stream.
func TestEnvironmentTraceRuns(t *testing.T) {
	s := trace.NewSession()
	a := NewShared(envTestPolicy{})
	b := NewShared(envTestPolicy{})
	a.SetTracer(s)
	b.SetTracer(s)
	if a.TraceRun() == b.TraceRun() {
		t.Fatalf("both environments drew trace run %d", a.TraceRun())
	}
	if a.Tracer() != s || b.Tracer() != s {
		t.Fatal("tracer binding not stored on the environment")
	}
}

// TestEnvironmentDefaults pins the NewEnvironment starting state.
func TestEnvironmentDefaults(t *testing.T) {
	s := NewShared(envTestPolicy{})
	e := s.Env()
	if e.WatchdogDeadline() != DefaultWatchdogDeadline {
		t.Fatalf("default watchdog deadline = %v", e.WatchdogDeadline())
	}
	if e.MaxQueueDepth() != DefaultMaxQueueDepth {
		t.Fatalf("default max queue depth = %d", e.MaxQueueDepth())
	}
	if e.Tracer() != nil || e.TraceRun() != 0 {
		t.Fatal("fresh environment already has a trace binding")
	}
	if len(s.Decisions()) != 0 || s.DroppedDecisions() != 0 {
		t.Fatal("fresh environment already has journal entries")
	}
}
