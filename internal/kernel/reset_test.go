package kernel

import (
	"testing"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// TestEnvironmentReset dirties every field an environment accumulates
// during a run and checks Reset restores each one to the state
// NewEnvironment builds — the field-level half of the reuse contract.
// (The behavioral half — byte-identical cell output across reuse
// generations — is pinned in internal/defense and internal/serve.)
func TestEnvironmentReset(t *testing.T) {
	e := NewEnvironment()
	e.simNow = func() sim.Time { return 5 }
	e.journal = append(e.journal, Decision{Seq: 1, API: "fetch", Action: ActionDeny})
	e.decisionSeq = 7
	e.droppedDecisions = 2
	e.watchdogDeadline = DefaultWatchdogDeadline * 3
	e.maxQueueDepth = DefaultMaxQueueDepth + 9
	e.callbackFault = func(string) bool { return true }
	e.policyPanics = 4
	e.lastPolicyPanic = "boom"
	e.setTracer(trace.NewSession())
	e.lastBufAccess = 99
	e.pendingFetch[3] = 2
	e.transferred[3] = true
	e.deferredTerm[3] = true

	e.Reset()

	if e.simNow != nil {
		t.Error("simNow survived reset")
	}
	if len(e.journal) != 0 || e.decisionSeq != 0 || e.droppedDecisions != 0 {
		t.Errorf("journal state survived reset: len=%d seq=%d dropped=%d",
			len(e.journal), e.decisionSeq, e.droppedDecisions)
	}
	if e.watchdogDeadline != DefaultWatchdogDeadline {
		t.Errorf("watchdogDeadline=%v, want default %v", e.watchdogDeadline, DefaultWatchdogDeadline)
	}
	if e.maxQueueDepth != DefaultMaxQueueDepth {
		t.Errorf("maxQueueDepth=%d, want default %d", e.maxQueueDepth, DefaultMaxQueueDepth)
	}
	if e.callbackFault != nil {
		t.Error("callbackFault survived reset")
	}
	if e.policyPanics != 0 || e.lastPolicyPanic != nil {
		t.Error("panic incident counters survived reset")
	}
	if e.tracer != nil || e.traceRun != 0 {
		t.Error("tracer binding survived reset")
	}
	if e.lastBufAccess != 0 {
		t.Error("shared-buffer serialization point survived reset")
	}
	if len(e.pendingFetch) != 0 || len(e.transferred) != 0 || len(e.deferredTerm) != 0 {
		t.Error("worker handshake maps survived reset")
	}
}

// TestNewSharedReusing checks the pooling entry point: a reused
// environment is reset and rebound, and a nil environment degrades to
// the plain constructor.
func TestNewSharedReusing(t *testing.T) {
	env := NewEnvironment()
	env.journal = append(env.journal, Decision{Seq: 1})
	env.policyPanics = 3

	s := NewSharedReusing(envTestPolicy{}, env)
	if s.env != env {
		t.Fatal("NewSharedReusing did not adopt the pooled environment")
	}
	if len(env.journal) != 0 || env.policyPanics != 0 {
		t.Error("pooled environment was adopted without a reset")
	}

	s2 := NewSharedReusing(envTestPolicy{}, nil)
	if s2.env == nil {
		t.Fatal("nil environment must fall back to a fresh one")
	}
}
