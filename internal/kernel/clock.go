package kernel

import "jskernel/internal/sim"

// Clock is the kernel's logical clock (paper §III-C2): a counter that
// ticks on kernel activity — event dispatches — never on real execution
// time. Everything user space can learn about time (performance.now,
// Date.now, rAF timestamps) is derived from it, so durations of real
// computation are invisible.
type Clock struct {
	now     sim.Time
	quantum sim.Duration
	ticks   uint64
}

// NewClock returns a clock that displays time quantized to quantum.
func NewClock(quantum sim.Duration) *Clock {
	if quantum <= 0 {
		quantum = sim.Millisecond
	}
	return &Clock{quantum: quantum}
}

// Quantum returns the display quantum.
func (c *Clock) Quantum() sim.Duration { return c.quantum }

// Now returns the current logical time.
func (c *Clock) Now() sim.Time { return c.now }

// Ticks reports how many times the clock advanced.
func (c *Clock) Ticks() uint64 { return c.ticks }

// Tick advances the logical clock by d (the "ticking by" API).
func (c *Clock) Tick(d sim.Duration) {
	if d <= 0 {
		return
	}
	c.now += d
	c.ticks++
}

// TickTo advances the logical clock to t (the "ticking to" API). The clock
// never moves backwards; TickTo to the past is a no-op.
func (c *Clock) TickTo(t sim.Time) {
	if t <= c.now {
		return
	}
	c.now = t
	c.ticks++
}

// DisplayMillis returns the clock reading user space sees: logical time
// quantized to the display quantum, in milliseconds (the "displaying"
// API backing performance.now).
func (c *Clock) DisplayMillis() float64 {
	q := c.now / c.quantum * c.quantum
	return q.Milliseconds()
}

// DisplayUnixMillis returns whole milliseconds for Date.now.
func (c *Clock) DisplayUnixMillis() int64 {
	return int64(c.now / sim.Millisecond)
}
