package kernel_test

// Trace-driven coverage of awkward lifecycle corners: the abort/completion
// fetch race, clearInterval from inside a tick, and watchdog expiry of a
// never-confirmed delivery. Each test replays the emitted trace through
// trace.Validator, so the assertions are about the kernel's *transition
// sequence*, not just its externally visible outcome.

import (
	"errors"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/vuln"
	"jskernel/internal/webnet"
)

// newTracedKernelBrowser is newKernelBrowser plus an attached trace
// session (attached before browser.New so the install records land).
func newTracedKernelBrowser(t *testing.T, p kernel.Policy) (*browser.Browser, *kernel.Shared, *trace.Session) {
	t.Helper()
	if p == nil {
		p = policy.FullDefense()
	}
	s := sim.New(1)
	s.MaxSteps = 5_000_000
	cfg := webnet.DefaultConfig()
	cfg.JitterFrac = 0
	net := webnet.New(cfg, s.Rand())
	shared := kernel.NewShared(p)
	ts := trace.NewSession()
	shared.SetTracer(ts)
	b := browser.New(s, browser.Options{Net: net, InstallScope: shared.Install, Tracer: vuln.NewRegistry()})
	b.Origin = "https://site.example"
	return b, shared, ts
}

// closeAndValidate closes the session and replays it strictly.
func closeAndValidate(t *testing.T, ts *trace.Session) []trace.Record {
	t.Helper()
	ts.Close()
	recs := ts.Records()
	if _, err := trace.Validate(recs); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}
	return recs
}

// countOps tallies records matching op and API ("" matches any API).
func countOps(recs []trace.Record, op trace.Op, api string) int {
	n := 0
	for _, r := range recs {
		if r.Op == op && (api == "" || r.API == api) {
			n++
		}
	}
	return n
}

// TestTraceFetchAbortRace injects the FaultHooks.FetchDone race — the
// response completes and an abort lands at the same instant — and
// asserts from the trace that the fetch event was enqueued once and
// reached exactly one terminal state (a dispatch delivering ErrAborted),
// with the queue still draining afterwards.
func TestTraceFetchAbortRace(t *testing.T) {
	b, _, ts := newTracedKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/raced.js", 1000)
	raced := true
	b.SetFaultHooks(&browser.FaultHooks{
		FetchDone: func(url string) bool {
			if raced && url == "https://site.example/raced.js" {
				raced = false
				return true
			}
			return false
		},
	})
	var gotErr error
	laterRan := false
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/raced.js", browser.FetchOptions{}, func(_ *browser.Response, err error) {
			gotErr = err
		})
		g.SetTimeout(func(*browser.Global) { laterRan = true }, 500*sim.Millisecond)
	})
	run(t, b)
	if !errors.Is(gotErr, browser.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted from the injected race", gotErr)
	}
	if !laterRan {
		t.Fatal("queue wedged after injected abort race")
	}

	recs := closeAndValidate(t, ts)
	if got := countOps(recs, trace.OpEnqueue, "fetch"); got != 1 {
		t.Fatalf("fetch enqueued %d times, want 1", got)
	}
	if got := countOps(recs, trace.OpDispatch, "fetch"); got != 1 {
		t.Fatalf("fetch dispatched %d times, want exactly 1 (the error delivery)", got)
	}
	if got := countOps(recs, trace.OpDispatch, "setTimeout"); got != 1 {
		t.Fatalf("trailing timer dispatched %d times, want 1", got)
	}
	if ts.Open() != 0 {
		t.Fatalf("%d events left open", ts.Open())
	}
}

// TestTraceClearIntervalMidTick clears an interval from inside its third
// tick and asserts the trace shows exactly three dispatches with every
// chained registration retired — no cancel on the already-dispatched
// tick, no dangling next tick.
func TestTraceClearIntervalMidTick(t *testing.T) {
	b, _, ts := newTracedKernelBrowser(t, nil)
	ticks := 0
	b.RunScript("main", func(g *browser.Global) {
		var id int
		id = g.SetInterval(func(g *browser.Global) {
			ticks++
			if ticks == 3 {
				g.ClearInterval(id)
			}
		}, 10*sim.Millisecond)
	})
	run(t, b)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}

	recs := closeAndValidate(t, ts)
	if got := countOps(recs, trace.OpDispatch, "setInterval"); got != 3 {
		t.Fatalf("interval dispatched %d times, want 3", got)
	}
	// Each tick's registration reached a terminal state: three dispatches
	// and nothing enqueued-but-open. (clearInterval on the currently
	// dispatching tick is a no-op — the event is already terminal — so no
	// cancel record may appear for it.)
	enq := countOps(recs, trace.OpEnqueue, "setInterval")
	canc := countOps(recs, trace.OpCancel, "setInterval")
	if enq != 3+canc {
		t.Fatalf("interval accounting: %d enqueued, %d dispatched, %d cancelled", enq, 3, canc)
	}
	if ts.Open() != 0 {
		t.Fatalf("%d events left open after clearInterval", ts.Open())
	}
}

// TestTraceWatchdogExpiry starts a fetch whose transfer takes hours of
// virtual time: the kernel event's predicted slot comes up long before
// the native confirmation can arrive, so the pending head blocks the
// queue and the watchdog must force-expire it. The trace must show
// enqueue → policy → expire with no confirm and no dispatch, and the
// timer queued behind the stuck head must dispatch after the expiry.
func TestTraceWatchdogExpiry(t *testing.T) {
	b, shared, ts := newTracedKernelBrowser(t, nil)
	shared.SetWatchdogDeadline(200 * sim.Millisecond)
	// ~50 GB: completion lands hours past the watchdog deadline.
	b.Net.RegisterScript("https://site.example/glacial.bin", 50_000_000_000)
	fetchDelivered := false
	timerRan := false
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/glacial.bin", browser.FetchOptions{},
			func(*browser.Response, error) { fetchDelivered = true })
		g.SetTimeout(func(*browser.Global) { timerRan = true }, 50*sim.Millisecond)
	})
	run(t, b)
	if fetchDelivered {
		t.Fatal("expired fetch must not deliver its callback")
	}
	if !timerRan {
		t.Fatal("queue stayed wedged behind the never-confirmed fetch")
	}

	recs := closeAndValidate(t, ts)
	if got := countOps(recs, trace.OpExpire, "fetch"); got != 1 {
		t.Fatalf("watchdog expiries for the stuck fetch = %d, want 1", got)
	}
	if got := countOps(recs, trace.OpConfirm, "fetch"); got != 0 {
		t.Fatalf("stuck fetch was confirmed %d times, want 0", got)
	}
	if got := countOps(recs, trace.OpDispatch, "fetch"); got != 0 {
		t.Fatalf("stuck fetch dispatched %d times, want 0", got)
	}
	if got := countOps(recs, trace.OpDispatch, "setTimeout"); got != 1 {
		t.Fatalf("blocked timer dispatched %d times, want 1", got)
	}
	// The expiry happened on the worker kernel's scope, at or after the
	// deadline.
	for _, r := range recs {
		if r.Op == trace.OpExpire {
			if r.VT < sim.Time(200*sim.Millisecond) {
				t.Fatalf("expiry at %v, before the 200ms deadline", r.VT)
			}
			if r.Scope == 0 {
				t.Fatal("expiry record not bound to a scope")
			}
		}
	}
}
