package kernel

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/webnet"
)

// This file is the kernel's two-stage scheduler and dispatcher (§III-D):
// prediction chains, registration with overload shedding, confirmation,
// cancellation, the drain loop with its watchdog, and panic-isolated
// user dispatch.

// predict returns the logical time to predict for a new event of an API
// kind, based exclusively on kernel-visible state (never real time).
func (k *Kernel) predict(api string, requested sim.Duration) sim.Time {
	return k.clock.Now() + k.shared.policy.PredictDelay(api, requested)
}

// nextMessagePred assigns strictly increasing predicted times to incoming
// messages with no identifiable sender, so their dispatch order and
// apparent timing stay deterministic.
func (k *Kernel) nextMessagePred() sim.Time {
	base := k.clock.Now()
	if k.lastMsgPred > base {
		base = k.lastMsgPred
	}
	k.lastMsgPred = base + k.shared.policy.PredictDelay("message", 0)
	return k.lastMsgPred
}

// nextOutgoingPred is the sender-side component of a message delivery
// prediction: a strictly increasing chain over the SENDER's logical clock,
// which is secret-independent. A per-thread nanosecond offset keeps
// predictions from different senders from colliding, so tie-breaks never
// depend on real arrival order.
func (k *Kernel) nextOutgoingPred() sim.Time {
	base := k.clock.Now()
	if k.lastOutPred > base {
		base = k.lastOutPred
	}
	k.lastOutPred = base + k.shared.policy.PredictDelay("message", 0)
	return k.lastOutPred + sim.Duration(k.g.Thread().ID())*sim.Nanosecond
}

// nextInboundPred combines the sender's chained prediction with the
// receiver's own message chain. The receiver chain guarantees at most one
// message dispatches per logical slot — which is what pins the Listing 1
// implicit-clock count — while the sender floor keeps cross-sender order
// independent of real arrival order. Full cross-thread determinism would
// require conservative lookahead synchronization (Chandy–Misra style)
// that neither the paper's prototype nor this reproduction implements;
// the residual channel is the coarse logical-slot position of a message
// relative to receiver-local events, bounded to one quantum (see
// DESIGN.md §7).
func (k *Kernel) nextInboundPred(senderPred sim.Time) sim.Time {
	r := k.nextMessagePred()
	if senderPred > r {
		k.lastMsgPred = senderPred
		return senderPred
	}
	return r
}

// confirm moves a pending event to ready with its final arguments and lets
// the dispatcher run (paper §III-D1, confirmation stage).
func (k *Kernel) confirm(ev *Event, args any) {
	if ev.Status != StatusPending {
		return
	}
	ev.Args = args
	ev.Status = StatusReady
	k.emit(trace.Record{Op: trace.OpConfirm, API: ev.API, Event: uint64(ev.ID), Predicted: ev.Predicted})
	k.drain()
}

// cancelEvent implements §III-D2's three cancellation cases: pending →
// cancel (native side handled by caller); ready-but-undispatched → mark
// cancelled; already dispatched → ignore.
func (k *Kernel) cancelEvent(ev *Event) {
	if ev == nil || ev.Status == StatusDone || ev.Status == StatusCancelled {
		return
	}
	ev.Status = StatusCancelled
	k.emit(trace.Record{Op: trace.OpCancel, API: ev.API, Event: uint64(ev.ID), Predicted: ev.Predicted, Action: "cancel"})
}

// drain is the dispatcher (§III-D3): release queue-head events in
// predicted-time order. A pending head blocks everything behind it, which
// is precisely what makes observable interleavings secret-independent.
// The dispatcher survives whatever user space throws at it: a pending
// head that never confirms is force-expired by the watchdog, and a user
// callback that panics is isolated (and, past a threshold, its whole
// context quarantined) without ever unwinding the dispatch loop.
func (k *Kernel) drain() {
	if k.dispatching {
		return
	}
	k.dispatching = true
	defer func() { k.dispatching = false }()
	for {
		head := k.queue.Top()
		if head == nil {
			return
		}
		if head.Status == StatusPending {
			k.armWatchdog(head)
			return
		}
		k.queue.Pop()
		k.disarmWatchdog(head)
		if head.Status == StatusCancelled {
			continue
		}
		k.clock.TickTo(head.Predicted)
		head.Status = StatusDone
		k.dispatched++
		k.emit(trace.Record{Op: trace.OpDispatch, API: head.API, Event: uint64(head.ID), Predicted: head.Predicted, Depth: k.queue.Len()})
		if head.Callback != nil {
			k.dispatchUser(head)
		}
	}
}

// dispatchUser runs one released event's user callback under panic
// isolation. A panic is recovered and journaled; after maxCallbackPanics
// the context is quarantined — its later callbacks are suppressed while
// its events keep draining, so a hostile page can never wedge the
// dispatcher or take the process down.
func (k *Kernel) dispatchUser(ev *Event) {
	if k.quarantined {
		return
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		k.panics++
		d := Decision{
			API:      ev.API,
			Action:   ActionIsolate,
			Reason:   fmt.Sprintf("recovered user-callback panic: %v", r),
			InWorker: k.g.IsWorkerScope(),
			WorkerID: k.workerID(),
		}
		if k.panics >= maxCallbackPanics {
			k.quarantined = true
			d.Action = ActionQuarantine
			d.Reason = fmt.Sprintf("context quarantined after %d user-callback panics (last: %v)", k.panics, r)
		}
		k.shared.journalIncident(d)
		k.emit(trace.Record{Op: trace.OpPanic, API: ev.API, Event: uint64(ev.ID), Action: string(ActionIsolate), Reason: fmt.Sprintf("recovered user-callback panic: %v", r)})
		if d.Action == ActionQuarantine {
			k.emit(trace.Record{Op: trace.OpQuarantine, Action: string(ActionQuarantine), Reason: d.Reason})
		}
	}()
	if f := k.shared.env.callbackFault; f != nil && f(ev.API) {
		panic("fault: injected user-callback panic")
	}
	ev.Callback(k.g, ev.Args)
}

// armWatchdog schedules a force-expiry alarm for a pending queue head.
// If the event's confirmation never arrives before the (virtual-time)
// deadline, the event is cancelled, the incident journaled, and the
// queue drained past it — registered-but-never-confirmed events cannot
// wedge the context forever. Confirmation or dispatch disarms the alarm.
func (k *Kernel) armWatchdog(ev *Event) {
	d := k.shared.env.watchdogDeadline
	if d <= 0 || ev.watchdogArmed {
		return
	}
	ev.watchdogArmed = true
	s := k.g.Browser().Sim
	ev.watchdogID = s.Schedule(s.Now()+d, "kernel-watchdog", func() {
		ev.watchdogArmed = false
		if ev.Status != StatusPending {
			return
		}
		ev.Status = StatusCancelled
		k.shared.journalIncident(Decision{
			API:      ev.API,
			Action:   ActionExpire,
			Reason:   fmt.Sprintf("watchdog: confirmation never arrived within %v", d),
			InWorker: k.g.IsWorkerScope(),
			WorkerID: k.workerID(),
		})
		k.emit(trace.Record{Op: trace.OpExpire, API: ev.API, Event: uint64(ev.ID), Predicted: ev.Predicted, Action: string(ActionExpire), Reason: fmt.Sprintf("watchdog: confirmation never arrived within %v", d)})
		k.drain()
	})
}

// disarmWatchdog cancels a popped event's pending alarm, if any.
func (k *Kernel) disarmWatchdog(ev *Event) {
	if !ev.watchdogArmed {
		return
	}
	ev.watchdogArmed = false
	k.g.Browser().Sim.Cancel(ev.watchdogID)
}

// newEvent registers an event with overload shedding: once the context's
// queue depth hits the bound, the registration is refused — the returned
// event is born cancelled and unqueued, so confirmations for it are
// no-ops and its callback never runs. Every shed is journaled.
func (k *Kernel) newEvent(api string, predicted sim.Time, cb func(*browser.Global, any)) *Event {
	if max := k.shared.env.maxQueueDepth; max > 0 && k.queue.Len() >= max {
		k.shed++
		k.shared.journalIncident(Decision{
			API:      api,
			Action:   ActionShed,
			Reason:   fmt.Sprintf("overload: queue depth at bound (%d)", max),
			InWorker: k.g.IsWorkerScope(),
			WorkerID: k.workerID(),
		})
		ev := &Event{ID: k.queue.AllocID(), API: api, Status: StatusCancelled, Predicted: predicted, index: -1}
		k.emit(trace.Record{Op: trace.OpPolicy, API: api, Event: uint64(ev.ID), Predicted: predicted, Action: "schedule"})
		k.emit(trace.Record{Op: trace.OpEnqueue, API: api, Event: uint64(ev.ID), Predicted: predicted, Depth: k.queue.Len()})
		k.emit(trace.Record{Op: trace.OpShed, API: api, Event: uint64(ev.ID), Predicted: predicted, Action: string(ActionShed), Reason: fmt.Sprintf("overload: queue depth at bound (%d)", max)})
		return ev
	}
	ev := k.queue.NewEvent(api, predicted, cb)
	k.emit(trace.Record{Op: trace.OpPolicy, API: api, Event: uint64(ev.ID), Predicted: predicted, Action: "schedule"})
	k.emit(trace.Record{Op: trace.OpEnqueue, API: api, Event: uint64(ev.ID), Predicted: predicted, Depth: k.queue.Len()})
	return ev
}

// callCtx assembles the policy evaluation context for a call from this
// scope.
func (k *Kernel) callCtx(api, url string) CallContext {
	b := k.g.Browser()
	ctx := CallContext{
		API:         api,
		URL:         url,
		ThreadID:    k.g.Thread().ID(),
		InWorker:    k.g.IsWorkerScope(),
		PrivateMode: b.PrivateMode,
		TornDown:    b.DocumentTornDown(),
	}
	if url != "" {
		ctx.CrossOrigin = !webnet.SameOrigin(url, b.Origin)
	}
	if ctx.InWorker {
		ctx.WorkerID = k.workerID()
	}
	return ctx
}
