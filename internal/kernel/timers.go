package kernel

import (
	"jskernel/internal/browser"
	"jskernel/internal/dom"
	"jskernel/internal/sim"
)

// This file holds the kernel's time sources: timers, intervals, the
// logical-clock-backed explicit clocks, animation frames, and the
// frame-driven tick chains (CSS animation, video cues).

func (k *Kernel) ensureTimerMaps() {
	if k.timerEv == nil {
		k.timerEv = make(map[int]*Event)
	}
	if k.intervals == nil {
		k.intervals = make(map[int]*intervalState)
	}
}

func (k *Kernel) kSetTimeout(cb func(*browser.Global), d sim.Duration) int {
	if cb == nil {
		return 0
	}
	k.interpose()
	k.ensureTimerMaps()
	ev := k.newEvent("setTimeout", k.predict("setTimeout", d), func(g *browser.Global, _ any) {
		cb(g)
	})
	id := k.native.SetTimeout(func(*browser.Global) { k.confirm(ev, nil) }, d)
	k.timerEv[id] = ev
	return id
}

// kClearTimer cancels a setTimeout or requestAnimationFrame registration.
func (k *Kernel) kClearTimer(id int) {
	k.ensureTimerMaps()
	ev, ok := k.timerEv[id]
	if !ok {
		return
	}
	delete(k.timerEv, id)
	k.native.ClearTimeout(id)
	k.native.CancelAnimationFrame(id)
	k.cancelEvent(ev)
}

// intervalState tracks one kernelized setInterval chain.
type intervalState struct {
	cancelled bool
	nativeID  int
	ev        *Event
	pred      sim.Time
}

func (k *Kernel) kSetInterval(cb func(*browser.Global), d sim.Duration) int {
	if cb == nil {
		return 0
	}
	k.ensureTimerMaps()
	delta := k.shared.policy.PredictDelay("setInterval", d)
	st := &intervalState{pred: k.clock.Now()}
	k.nextIntervals++
	id := k.nextIntervals
	k.intervals[id] = st

	var arm func()
	arm = func() {
		st.pred += delta
		ev := k.newEvent("setInterval", st.pred, func(g *browser.Global, _ any) {
			if st.cancelled {
				return
			}
			cb(g)
			if !st.cancelled {
				arm()
			}
		})
		st.ev = ev
		st.nativeID = k.native.SetTimeout(func(*browser.Global) { k.confirm(ev, nil) }, d)
	}
	arm()
	return id
}

func (k *Kernel) kClearInterval(id int) {
	k.ensureTimerMaps()
	st, ok := k.intervals[id]
	if !ok {
		return
	}
	delete(k.intervals, id)
	st.cancelled = true
	k.native.ClearTimeout(st.nativeID)
	k.cancelEvent(st.ev)
}

func (k *Kernel) kPerformanceNow() float64 { return k.clock.DisplayMillis() }

func (k *Kernel) kDateNow() int64 { return k.clock.DisplayUnixMillis() }

func (k *Kernel) kRequestAnimationFrame(cb func(*browser.Global, float64)) int {
	if cb == nil {
		return 0
	}
	k.ensureTimerMaps()
	frame := k.shared.policy.PredictDelay("raf", 0)
	pred := (k.clock.Now()/frame + 1) * frame
	ev := k.newEvent("raf", pred, func(g *browser.Global, _ any) {
		cb(g, k.clock.DisplayMillis())
	})
	id := k.native.RequestAnimationFrame(func(*browser.Global, float64) { k.confirm(ev, nil) })
	k.timerEv[id] = ev
	return id
}

// --- Frame-driven tick sources (CSS animation, video cues) ---

// tickChain keeps one pending event armed ahead of a periodic native tick
// source so every tick is registration-confirmed like any other event.
type tickChain struct {
	k         *Kernel
	api       string
	delta     sim.Duration
	pred      sim.Time
	ev        *Event
	cancelled bool
	cb        func(*browser.Global, int)
	count     int
}

func (c *tickChain) arm() {
	c.pred += c.delta
	c.ev = c.k.newEvent(c.api, c.pred, func(g *browser.Global, _ any) {
		if c.cancelled {
			return
		}
		c.count++
		cb := c.cb
		if cb != nil {
			cb(g, c.count)
		}
	})
}

// tick confirms the armed event and re-arms for the next native tick.
func (c *tickChain) tick() {
	if c.cancelled {
		return
	}
	ev := c.ev
	c.arm()
	c.k.confirm(ev, nil)
}

func (c *tickChain) cancel() {
	c.cancelled = true
	c.k.cancelEvent(c.ev)
}

func (k *Kernel) kStartCSSAnimation(el *dom.Element, cb func(*browser.Global, int)) int {
	if cb == nil {
		return 0
	}
	if k.animChains == nil {
		k.animChains = make(map[int]*tickChain)
	}
	chain := &tickChain{
		k:     k,
		api:   "animation",
		delta: k.shared.policy.PredictDelay("animation", 0),
		pred:  k.clock.Now(),
		cb:    cb,
	}
	chain.arm()
	id := k.native.StartCSSAnimation(el, func(*browser.Global, int) { chain.tick() })
	k.animChains[id] = chain
	return id
}

func (k *Kernel) kStopCSSAnimation(id int) {
	if chain, ok := k.animChains[id]; ok {
		chain.cancel()
		delete(k.animChains, id)
	}
	k.native.StopCSSAnimation(id)
}

func (k *Kernel) kPlayVideo(cueCb func(*browser.Global, int)) (stop func()) {
	if cueCb == nil {
		return func() {}
	}
	chain := &tickChain{
		k:     k,
		api:   "cue",
		delta: k.shared.policy.PredictDelay("cue", 0),
		pred:  k.clock.Now(),
		cb:    cueCb,
	}
	chain.arm()
	nativeStop := k.native.PlayVideo(func(*browser.Global, int) { chain.tick() })
	return func() {
		chain.cancel()
		nativeStop()
	}
}
