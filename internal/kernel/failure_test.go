package kernel_test

import (
	"errors"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
)

// Failure-injection tests: the kernel must degrade cleanly when the
// native layer errors, when events are cancelled mid-lifecycle, and when
// workers die at awkward moments.

func TestKernelFetchErrorStillDispatches(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	var gotErr error
	called := false
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/missing.js", browser.FetchOptions{}, func(r *browser.Response, err error) {
			called = true
			gotErr = err
		})
	})
	run(t, b)
	if !called {
		t.Fatal("error callback never dispatched through the kernel queue")
	}
	if gotErr == nil {
		t.Fatal("missing resource should error")
	}
}

func TestKernelFetchErrorDoesNotWedgeQueue(t *testing.T) {
	// A failing fetch's pending event must not block later events forever.
	b, _, _ := newKernelBrowser(t, nil)
	order := []string{}
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/missing.js", browser.FetchOptions{}, func(*browser.Response, error) {
			order = append(order, "fetch-err")
		})
		g.SetTimeout(func(*browser.Global) { order = append(order, "late-timer") }, 50*sim.Millisecond)
	})
	run(t, b)
	if len(order) != 2 || order[0] != "fetch-err" || order[1] != "late-timer" {
		t.Fatalf("order = %v; queue wedged behind failed fetch", order)
	}
}

func TestKernelAbortedFetchUnblocksQueue(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/slow.js", 10_000_000)
	var events []string
	b.RunScript("main", func(g *browser.Global) {
		ctl := g.NewAbortController()
		g.Fetch("https://site.example/slow.js", browser.FetchOptions{Signal: ctl.Signal()},
			func(_ *browser.Response, err error) {
				if err != nil {
					events = append(events, "aborted")
				} else {
					events = append(events, "completed")
				}
			})
		g.SetTimeout(func(*browser.Global) { ctl.Abort() }, 5*sim.Millisecond)
		// This timer's prediction is far behind the fetch's 10ms; it must
		// still run once the abort resolves the fetch event.
		g.SetTimeout(func(*browser.Global) { events = append(events, "later") }, 100*sim.Millisecond)
	})
	run(t, b)
	if len(events) != 2 || events[0] != "aborted" || events[1] != "later" {
		t.Fatalf("events = %v", events)
	}
}

func TestKernelClearTimeoutOnReadyEvent(t *testing.T) {
	// §III-D2 case two: the native timer already fired (event confirmed)
	// but the dispatcher has not released it because an earlier-predicted
	// event is still pending. Cancelling at that point must discard it.
	b, shared, _ := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/slow.js", 8_000_000)
	fired := false
	b.RunScript("main", func(g *browser.Global) {
		// The blocker: a fetch predicted at 10ms that completes at ~7s.
		g.Fetch("https://site.example/slow.js", browser.FetchOptions{}, func(*browser.Response, error) {})
		// A timer predicted at 50ms: natively fires at 50ms, then waits
		// behind the pending fetch.
		id := g.SetTimeout(func(*browser.Global) { fired = true }, 50*sim.Millisecond)
		// Cancel it at 200ms real time — after native firing, before
		// kernel dispatch.
		g.SetTimeout(func(gg *browser.Global) { gg.ClearTimeout(id) }, 40*sim.Millisecond)
		_ = shared
	})
	run(t, b)
	if fired {
		t.Fatal("cancelled-while-ready event was dispatched")
	}
}

func TestKernelWorkerTerminateDuringPendingTimer(t *testing.T) {
	// Worker-scope kernel events die with their worker without wedging
	// the main kernel.
	b, _, _ := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("timers.js", func(g *browser.Global) {
		g.SetInterval(func(*browser.Global) {}, 2*sim.Millisecond)
		g.PostMessage("running")
	})
	mainAlive := false
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("timers.js")
		if err != nil {
			t.Errorf("worker: %v", err)
			return
		}
		w.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
			w.Terminate()
			gg.SetTimeout(func(*browser.Global) { mainAlive = true }, 10*sim.Millisecond)
		})
	})
	run(t, b)
	if !mainAlive {
		t.Fatal("main kernel wedged after worker termination")
	}
}

func TestKernelWorkerErrorSanitizedViaOnError(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	var msg string
	b.RegisterWorkerScript("failing.js", func(g *browser.Global) {
		_ = g.ImportScripts("https://site.example/nonexistent-lib.js")
	})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("failing.js")
		if err != nil {
			t.Errorf("worker: %v", err)
			return
		}
		w.SetOnError(func(_ *browser.Global, werr *browser.WorkerError) { msg = werr.Message })
	})
	run(t, b)
	if msg == "" {
		t.Skip("same-origin import error not routed to onerror in this configuration")
	}
	if containsStr(msg, "nonexistent-lib") {
		t.Fatalf("onerror message leaks URL detail: %q", msg)
	}
}

func TestKernelNilCallbacksIgnored(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.RunScript("main", func(g *browser.Global) {
		if id := g.SetTimeout(nil, sim.Millisecond); id != 0 {
			t.Error("nil timeout callback should not register")
		}
		if id := g.SetInterval(nil, sim.Millisecond); id != 0 {
			t.Error("nil interval callback should not register")
		}
		if id := g.RequestAnimationFrame(nil); id != 0 {
			t.Error("nil rAF callback should not register")
		}
		if id := g.StartCSSAnimation(nil, nil); id != 0 {
			t.Error("nil animation callback should not register")
		}
		stop := g.PlayVideo(nil)
		stop()               // must be callable
		g.ClearTimeout(9999) // unknown ids are no-ops
		g.ClearInterval(9999)
		g.CancelAnimationFrame(9999)
		g.StopCSSAnimation(9999)
	})
	run(t, b)
}

func TestKernelIntervalCancelFromInsideCallback(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	count := 0
	b.RunScript("main", func(g *browser.Global) {
		var id int
		id = g.SetInterval(func(gg *browser.Global) {
			count++
			gg.ClearInterval(id)
		}, sim.Millisecond)
	})
	run(t, b)
	if count != 1 {
		t.Fatalf("interval fired %d times after self-cancel, want 1", count)
	}
}

func TestKernelDeniedFetchDeliversPolicyError(t *testing.T) {
	spec := policy.Deterministic()
	spec.PolicyName = "deny-fetch"
	deny := true
	spec.Rules = append(spec.Rules, policy.Rule{
		When:   policy.Condition{API: "fetch", CrossOrigin: &deny},
		Action: kernel.ActionDeny,
	})
	b, _, _ := newKernelBrowser(t, spec)
	b.Net.RegisterScript("https://other.example/x.js", 100)
	var gotErr error
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://other.example/x.js", browser.FetchOptions{}, func(_ *browser.Response, err error) {
			gotErr = err
		})
	})
	run(t, b)
	if !errors.Is(gotErr, kernel.ErrPolicyDenied) {
		t.Fatalf("err = %v, want policy denial", gotErr)
	}
}

func TestWorkerStubStatusTransitions(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("w.js", func(g *browser.Global) {})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("worker: %v", err)
			return
		}
		stub, ok := w.(*kernel.WorkerStub)
		if !ok {
			t.Error("not a stub")
			return
		}
		if stub.Status() != kernel.StatusReadyW {
			t.Errorf("status = %v, want ready", stub.Status())
		}
		w.Terminate()
		if stub.Status() != kernel.StatusClosedW {
			t.Errorf("status = %v, want closed", stub.Status())
		}
		w.Terminate() // idempotent
		if w.Alive() {
			t.Error("terminated stub reports alive")
		}
	})
	run(t, b)
}

// Fetch-abort race tests: aborts landing at every awkward point of the
// kernel event lifecycle — after registration, after confirmation,
// exactly at completion, and from worker scopes.

func TestKernelAbortAfterConfirmBeforeDispatch(t *testing.T) {
	// The fast fetch's kernel event confirms at ~100ms but stays blocked
	// behind a pending slow fetch registered earlier. An abort arriving
	// in that window loses the race: natively the response is complete,
	// so the callback must eventually deliver it, not ErrAborted.
	b, _, _ := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/slow.js", 10_000_000)
	b.Net.RegisterScript("https://site.example/fast.js", 1000)
	var fastResp *browser.Response
	var fastErr error
	fastDone := false
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/slow.js", browser.FetchOptions{}, func(*browser.Response, error) {})
		ctl := g.NewAbortController()
		g.Fetch("https://site.example/fast.js", browser.FetchOptions{Signal: ctl.Signal()},
			func(r *browser.Response, err error) {
				fastDone = true
				fastResp, fastErr = r, err
			})
		// Native completion of fast.js is ~100ms; the slow blocker holds
		// the queue for seconds. Abort in between.
		g.SetTimeout(func(*browser.Global) { ctl.Abort() }, 300*sim.Millisecond)
	})
	run(t, b)
	if !fastDone {
		t.Fatal("fast fetch callback never dispatched")
	}
	if fastErr != nil || fastResp == nil {
		t.Fatalf("late abort must lose to the completed response, got resp=%v err=%v", fastResp, fastErr)
	}
}

func TestKernelWorkerFetchAbortRace(t *testing.T) {
	// A worker aborts its own in-flight fetch; its kernel event must
	// resolve with ErrAborted, the worker must stay functional, and the
	// pending-fetch bookkeeping must clear so a later user terminate is
	// not deferred forever.
	b, shared, _ := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/wslow.js", 10_000_000)
	var workerErr error
	workerAlive := false
	b.RegisterWorkerScript("aborter.js", func(g *browser.Global) {
		ctl := g.NewAbortController()
		g.Fetch("https://site.example/wslow.js", browser.FetchOptions{Signal: ctl.Signal()},
			func(_ *browser.Response, err error) {
				workerErr = err
				g.PostMessage("fetch-resolved")
			})
		g.SetTimeout(func(*browser.Global) { ctl.Abort() }, 5*sim.Millisecond)
		g.SetTimeout(func(gg *browser.Global) { workerAlive = true }, 50*sim.Millisecond)
	})
	terminated := false
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("aborter.js")
		if err != nil {
			t.Errorf("worker: %v", err)
			return
		}
		w.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
			// Let the worker's own timers drain, then terminate: the
			// abort already cleared the pending-fetch bookkeeping, so
			// the terminate must be immediate, not deferred on phantom
			// pending fetches.
			gg.SetTimeout(func(*browser.Global) {
				w.Terminate()
				terminated = true
			}, 100*sim.Millisecond)
		})
	})
	run(t, b)
	if !errors.Is(workerErr, browser.ErrAborted) {
		t.Fatalf("worker fetch err = %v, want ErrAborted", workerErr)
	}
	if !workerAlive {
		t.Fatal("worker kernel wedged after abort")
	}
	if !terminated {
		t.Fatal("worker never reported resolution to parent")
	}
	_ = shared
}

func TestKernelInjectedAbortCompletionRace(t *testing.T) {
	// The FaultHooks.FetchDone race: the response completes and an abort
	// lands at the same instant. The kernel event must resolve with
	// ErrAborted and the queue must keep moving.
	b, _, _ := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/raced.js", 1000)
	raced := true
	b.SetFaultHooks(&browser.FaultHooks{
		FetchDone: func(url string) bool {
			if raced && url == "https://site.example/raced.js" {
				raced = false
				return true
			}
			return false
		},
	})
	var gotErr error
	laterRan := false
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/raced.js", browser.FetchOptions{}, func(_ *browser.Response, err error) {
			gotErr = err
		})
		g.SetTimeout(func(*browser.Global) { laterRan = true }, 500*sim.Millisecond)
	})
	run(t, b)
	if !errors.Is(gotErr, browser.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted from the injected race", gotErr)
	}
	if !laterRan {
		t.Fatal("queue wedged after injected abort race")
	}
}
