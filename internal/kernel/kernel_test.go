package kernel_test

import (
	"errors"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/vuln"
	"jskernel/internal/webnet"
)

// newKernelBrowser builds a Chrome browser with a fully kernelized scope
// under the given policy (FullDefense when nil), plus an armed CVE
// registry.
func newKernelBrowser(t *testing.T, p kernel.Policy) (*browser.Browser, *kernel.Shared, *vuln.Registry) {
	t.Helper()
	if p == nil {
		p = policy.FullDefense()
	}
	s := sim.New(1)
	s.MaxSteps = 5_000_000
	cfg := webnet.DefaultConfig()
	cfg.JitterFrac = 0
	net := webnet.New(cfg, s.Rand())
	shared := kernel.NewShared(p)
	reg := vuln.NewRegistry()
	b := browser.New(s, browser.Options{Net: net, InstallScope: shared.Install, Tracer: reg})
	b.Origin = "https://site.example"
	return b, shared, reg
}

func run(t *testing.T, b *browser.Browser) {
	t.Helper()
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestInstallFreezesBindings(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	if shared.Installs() != 1 {
		t.Fatalf("installs = %d, want 1 (main scope)", shared.Installs())
	}
	b.RunScript("main", func(g *browser.Global) {
		if !g.Frozen() {
			t.Error("kernelized scope not frozen")
		}
		if err := g.Redefine(func(*browser.Bindings) {}); !errors.Is(err, browser.ErrFrozen) {
			t.Errorf("redefine after kernelization: err = %v", err)
		}
	})
	run(t, b)
}

func TestWorkersGetKernelized(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("w.js", func(g *browser.Global) {
		if !g.Frozen() {
			t.Error("worker scope not kernelized")
		}
	})
	b.RunScript("main", func(g *browser.Global) {
		if _, err := g.NewWorker("w.js"); err != nil {
			t.Errorf("new worker: %v", err)
		}
	})
	run(t, b)
	if shared.Installs() != 2 {
		t.Fatalf("installs = %d, want 2", shared.Installs())
	}
}

func TestKernelClockIgnoresBusyWork(t *testing.T) {
	// The core determinism property: synchronous computation is invisible
	// to the displayed clock.
	b, _, _ := newKernelBrowser(t, nil)
	var before, after float64
	b.RunScript("main", func(g *browser.Global) {
		before = g.PerformanceNow()
		g.Busy(500 * sim.Millisecond)
		after = g.PerformanceNow()
	})
	run(t, b)
	if before != after {
		t.Fatalf("kernel clock advanced across Busy: %v -> %v", before, after)
	}
}

func TestKernelSetTimeoutDispatchesAtPredictedTime(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	var display float64
	b.RunScript("main", func(g *browser.Global) {
		g.SetTimeout(func(gg *browser.Global) {
			display = gg.PerformanceNow()
		}, 5*sim.Millisecond)
	})
	run(t, b)
	if display != 5 {
		t.Fatalf("timeout displayed clock %v, want exactly the 5ms prediction", display)
	}
	k := shared.KernelFor(b.Main())
	if k == nil || k.Dispatched() == 0 {
		t.Fatal("kernel did not dispatch the timeout")
	}
}

func TestKernelClearTimeout(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	fired := false
	b.RunScript("main", func(g *browser.Global) {
		id := g.SetTimeout(func(*browser.Global) { fired = true }, 3*sim.Millisecond)
		g.ClearTimeout(id)
	})
	run(t, b)
	if fired {
		t.Fatal("cancelled kernel timeout fired")
	}
}

func TestKernelIntervalChain(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	var displays []float64
	b.RunScript("main", func(g *browser.Global) {
		var id int
		id = g.SetInterval(func(gg *browser.Global) {
			displays = append(displays, gg.PerformanceNow())
			if len(displays) == 3 {
				gg.ClearInterval(id)
			}
		}, 2*sim.Millisecond)
	})
	run(t, b)
	if len(displays) != 3 {
		t.Fatalf("interval fired %d times, want 3", len(displays))
	}
	for i, want := range []float64{2, 4, 6} {
		if displays[i] != want {
			t.Fatalf("interval displays = %v, want exact 2ms chain", displays)
		}
	}
}

func TestKernelRAFDeterministicTimestamps(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	var ts []float64
	b.RunScript("main", func(g *browser.Global) {
		var loop func(gg *browser.Global, t float64)
		loop = func(gg *browser.Global, t float64) {
			ts = append(ts, t)
			if len(ts) < 3 {
				gg.RequestAnimationFrame(loop)
			}
		}
		g.RequestAnimationFrame(loop)
	})
	run(t, b)
	if len(ts) != 3 {
		t.Fatalf("rAF fired %d times", len(ts))
	}
	// Frame quantum is 16.667ms quantized to 1ms → 17ms steps, displayed
	// exactly.
	if ts[1]-ts[0] != ts[2]-ts[1] {
		t.Fatalf("rAF timestamps not evenly spaced: %v", ts)
	}
}

func TestWorkerRoundTripThroughKernel(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("echo.js", func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			gg.PostMessage(m.Data)
		})
	})
	var got any
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("echo.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) { got = m.Data })
		w.PostMessage("ping")
	})
	run(t, b)
	if got != "ping" {
		t.Fatalf("round trip through kernel got %v", got)
	}
}

func TestWorkerStubIsNotNativeHandle(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("w.js", func(g *browser.Global) {})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		if _, isNative := w.(*browser.WorkerHandle); isNative {
			t.Error("kernel returned the raw native handle, not a stub")
		}
		if _, isStub := w.(*kernel.WorkerStub); !isStub {
			t.Error("kernel worker is not a WorkerStub")
		}
	})
	run(t, b)
}

// TestImplicitClockDefeated is the headline security property (attack
// example 1 of the paper): the number of worker onmessage events observed
// around a secret-dependent synchronous operation must not depend on the
// secret.
func TestImplicitClockDefeated(t *testing.T) {
	countFor := func(opCost sim.Duration) int {
		b, _, _ := newKernelBrowser(t, nil)
		b.RegisterWorkerScript("clock.js", func(g *browser.Global) {
			// The implicit clock: a worker spraying messages.
			var spray func(gg *browser.Global)
			spray = func(gg *browser.Global) {
				gg.PostMessage("tick")
				gg.SetTimeout(spray, sim.Millisecond)
			}
			spray(g)
		})
		count := 0
		observed := -1
		b.RunScript("main", func(g *browser.Global) {
			w, err := g.NewWorker("clock.js")
			if err != nil {
				t.Errorf("new worker: %v", err)
				return
			}
			w.SetOnMessage(func(*browser.Global, browser.MessageEvent) { count++ })
			g.SetTimeout(func(gg *browser.Global) {
				start := count
				gg.Busy(opCost) // the secret-dependent operation
				observed = count - start
			}, 20*sim.Millisecond)
		})
		if err := b.RunFor(200 * sim.Millisecond); err != nil {
			t.Fatalf("run: %v", err)
		}
		if count == 0 {
			t.Fatal("implicit clock produced no ticks; the measurement is vacuous")
		}
		if observed < 0 {
			t.Fatal("measurement callback never ran")
		}
		return observed
	}
	shortOp, longOp := countFor(1*sim.Millisecond), countFor(80*sim.Millisecond)
	if shortOp != longOp {
		t.Fatalf("implicit clock leaked: %d ticks vs %d ticks", shortOp, longOp)
	}
}

func TestFetchThroughKernelDisplaysPrediction(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/big.js", 5_000_000)
	var display float64
	var resp *browser.Response
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/big.js", browser.FetchOptions{}, func(r *browser.Response, err error) {
			if err != nil {
				t.Errorf("fetch: %v", err)
				return
			}
			resp = r
			display = g.PerformanceNow()
		})
	})
	run(t, b)
	if resp == nil {
		t.Fatal("fetch never completed")
	}
	// The displayed completion time is the 10ms load prediction, not the
	// multi-second real transfer time.
	if display != 10 {
		t.Fatalf("fetch completion displayed at %vms, want the 10ms prediction", display)
	}
}

func TestCVE20131714WorkerXHRBlocked(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	b.Net.RegisterJSON("https://other.example/secret.json", `{"s":1}`)
	var xhrErr error
	var body string
	b.RegisterWorkerScript("xhr.js", func(g *browser.Global) {
		body, xhrErr = g.XHR("https://other.example/secret.json")
	})
	b.RunScript("main", func(g *browser.Global) {
		if _, err := g.NewWorker("xhr.js"); err != nil {
			t.Errorf("new worker: %v", err)
		}
	})
	run(t, b)
	if xhrErr == nil || body != "" {
		t.Fatalf("worker cross-origin XHR not denied: body=%q err=%v", body, xhrErr)
	}
	if !errors.Is(xhrErr, kernel.ErrPolicyDenied) {
		t.Fatalf("err = %v, want policy denial", xhrErr)
	}
	if reg.Exploited(vuln.CVE20131714) {
		t.Fatal("CVE-2013-1714 triggered despite kernel policy")
	}
}

func TestCVE20177843IndexedDBDeniedInPrivateMode(t *testing.T) {
	p := policy.FullDefense()
	s := sim.New(1)
	shared := kernel.NewShared(p)
	reg := vuln.NewRegistry()
	b := browser.New(s, browser.Options{PrivateMode: true, InstallScope: shared.Install, Tracer: reg})
	b.Origin = "https://site.example"
	var openErr error
	b.RunScript("main", func(g *browser.Global) {
		_, openErr = g.IndexedDBOpen("fp")
	})
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(openErr, kernel.ErrPolicyDenied) {
		t.Fatalf("open err = %v, want policy denial", openErr)
	}
	if reg.Exploited(vuln.CVE20177843) {
		t.Fatal("CVE-2017-7843 triggered despite kernel policy")
	}
	if len(b.PersistedStores()) != 0 {
		t.Fatal("private-mode data persisted despite kernel policy")
	}
}

func TestCVE20185092TerminateDeferredUntilFetchDrains(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/file0.html", 2_000_000)
	var ctl *browser.AbortController
	b.RegisterWorkerScript("fetcher.js", func(g *browser.Global) {
		ctl = g.NewAbortController()
		g.Fetch("https://site.example/file0.html", browser.FetchOptions{Signal: ctl.Signal()}, func(*browser.Response, error) {})
		g.PostMessage("fetch-started")
	})
	var stub *kernel.WorkerStub
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("fetcher.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		var ok bool
		stub, ok = w.(*kernel.WorkerStub)
		if !ok {
			t.Error("not a stub")
			return
		}
		w.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
			w.Terminate() // false termination while fetch pending
			if w.Alive() {
				t.Error("stub should report terminated to user space")
			}
			if !stub.NativeAlive() {
				t.Error("kernel should retain the native worker while fetch is pending")
			}
			ctl.Abort() // the abort that would hit freed state
		})
	})
	run(t, b)
	if reg.Exploited(vuln.CVE20185092) {
		t.Fatal("CVE-2018-5092 triggered despite kernel policy")
	}
	if stub != nil && stub.NativeAlive() {
		t.Fatal("native worker should be terminated once the fetch drained")
	}
}

func TestCVE20135602OnMessageSetterTrapped(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("w.js", func(g *browser.Global) {})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		g.SetTimeout(func(*browser.Global) {
			w.Terminate()
			w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {}) // would null-deref natively
		}, 10*sim.Millisecond)
	})
	run(t, b)
	if reg.Exploited(vuln.CVE20135602) {
		t.Fatal("CVE-2013-5602 triggered despite the kernel's setter trap")
	}
}

func TestCVE20141488TransferRetainsWorker(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	var readErr error
	b.RegisterWorkerScript("transfer.js", func(g *browser.Global) {
		buf := g.NewSharedBuffer(4)
		if err := g.SharedBufferWrite(buf, 0, 7); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := g.TransferToParent("buf", buf); err != nil {
			t.Errorf("transfer: %v", err)
		}
	})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("transfer.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			w.Terminate() // kernel retains: buffer must stay valid
			v, err := gg.SharedBufferRead(m.Transfer, 0)
			readErr = err
			if err == nil && v != 7 {
				t.Errorf("read %d, want 7", v)
			}
		})
	})
	run(t, b)
	if readErr != nil {
		t.Fatalf("buffer read after user-level terminate failed: %v", readErr)
	}
	if reg.Exploited(vuln.CVE20141488) {
		t.Fatal("CVE-2014-1488 triggered despite retain policy")
	}
}

func TestCVE20104576TeardownDropsWorkerMessages(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("late.js", func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, _ browser.MessageEvent) {
			gg.PostMessage("reply-after-teardown")
		})
	})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("late.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {})
		g.SetTimeout(func(gg *browser.Global) {
			gg.Browser().TearDownDocument()
			w.PostMessage("poke") // worker will reply into torn-down doc
		}, 10*sim.Millisecond)
	})
	run(t, b)
	if reg.Exploited(vuln.CVE20104576) {
		t.Fatal("CVE-2010-4576 triggered despite teardown policy")
	}
}

func TestCVE20141487WorkerCreationErrorSanitized(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	var errMsg string
	b.RunScript("main", func(g *browser.Global) {
		if _, err := g.NewWorker("https://evil.example/w.js"); err != nil {
			errMsg = err.Error()
		}
	})
	run(t, b)
	if errMsg == "" {
		t.Fatal("cross-origin worker creation should still fail")
	}
	if containsStr(errMsg, "evil.example") {
		t.Fatalf("sanitized error still leaks URL: %q", errMsg)
	}
	if reg.Exploited(vuln.CVE20141487) {
		t.Fatal("CVE-2014-1487 triggered despite sanitization")
	}
}

func TestCVE20157215ImportScriptsSanitized(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	var leak string
	b.RegisterWorkerScript("imp.js", func(g *browser.Global) {
		if err := g.ImportScripts("https://other.example/lib.js"); err != nil {
			leak = err.Error()
		}
	})
	b.RunScript("main", func(g *browser.Global) {
		if _, err := g.NewWorker("imp.js"); err != nil {
			t.Errorf("new worker: %v", err)
		}
	})
	run(t, b)
	if leak == "" {
		t.Fatal("cross-origin importScripts should fail")
	}
	if containsStr(leak, "other.example") {
		t.Fatalf("sanitized importScripts error leaks URL: %q", leak)
	}
	if reg.Exploited(vuln.CVE20157215) {
		t.Fatal("CVE-2015-7215 triggered despite sanitization")
	}
}

func TestCVE20111190WorkerLocationSanitized(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	b.SetRedirect("w.js", "https://tracker.example/real-worker.js")
	var loc string
	b.RegisterWorkerScript("w.js", func(g *browser.Global) {
		loc = g.WorkerLocation()
	})
	b.RunScript("main", func(g *browser.Global) {
		if _, err := g.NewWorker("w.js"); err != nil {
			t.Errorf("new worker: %v", err)
		}
	})
	run(t, b)
	if containsStr(loc, "tracker.example") {
		t.Fatalf("worker location leaks redirect target: %q", loc)
	}
	if reg.Exploited(vuln.CVE20111190) {
		t.Fatal("CVE-2011-1190 triggered despite sanitization")
	}
}

func TestCVE20143194SharedBufferSerialized(t *testing.T) {
	b, _, reg := newKernelBrowser(t, nil)
	var buf *browser.SharedBuffer
	b.RegisterWorkerScript("racer.js", func(g *browser.Global) {
		g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
			for i := 0; i < 20; i++ {
				if err := gg.SharedBufferWrite(m.Transfer, 0, int64(i)); err != nil {
					t.Errorf("worker write: %v", err)
					return
				}
			}
		})
	})
	b.RunScript("main", func(g *browser.Global) {
		buf = g.NewSharedBuffer(4)
		w, err := g.NewWorker("racer.js")
		if err != nil {
			t.Errorf("new worker: %v", err)
			return
		}
		w.PostMessageTransfer("race", buf)
		var hammer func(gg *browser.Global)
		n := 0
		hammer = func(gg *browser.Global) {
			if _, err := gg.SharedBufferRead(buf, 0); err != nil {
				return
			}
			if n++; n < 20 {
				gg.SetTimeout(hammer, sim.Millisecond)
			}
		}
		hammer(g)
	})
	run(t, b)
	if reg.Exploited(vuln.CVE20143194) {
		t.Fatal("CVE-2014-3194 race triggered despite kernel serialization")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
