package kernel_test

import (
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/sim"
)

// Frame-scope kernelization: §VI reason (iii) — the kernel is injected
// into every new JavaScript context, including iframes.

func TestFrameScopesGetKernelized(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	b.RunScript("main", func(g *browser.Global) {
		f, err := g.CreateFrame("https://widget.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		if _, isStub := f.(*kernel.FrameStub); !isStub {
			t.Error("kernel returned the raw frame handle, not a stub")
		}
		if !f.Scope().Frozen() {
			t.Error("frame scope not kernelized (bindings unfrozen)")
		}
		if shared.KernelOf(f.Scope()) == nil {
			t.Error("frame scope has no kernel instance")
		}
		if shared.KernelOf(f.Scope()) == shared.KernelFor(b.Main()) {
			t.Error("frame scope shares the window's kernel; contexts must be separate")
		}
	})
	run(t, b)
	if shared.Installs() != 2 {
		t.Fatalf("installs = %d, want 2 (window + frame)", shared.Installs())
	}
}

func TestFrameMessagingThroughKernels(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	var frameGot, parentGot any
	var parentOrigin string
	b.RunScript("main", func(g *browser.Global) {
		f, err := g.CreateFrame("https://widget.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		f.RunScript("widget", func(fg *browser.Global) {
			fg.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) {
				frameGot = m.Data
				fg.PostMessage("pong")
			})
		})
		g.SetOnMessage(func(_ *browser.Global, m browser.MessageEvent) {
			parentGot = m.Data
			parentOrigin = m.Origin
		})
		f.PostMessage("ping", "*")
	})
	run(t, b)
	if frameGot != "ping" || parentGot != "pong" {
		t.Fatalf("round trip: frame=%v parent=%v", frameGot, parentGot)
	}
	if parentOrigin != "https://widget.example" {
		t.Fatalf("origin = %q", parentOrigin)
	}
}

// TestFrameClockIsolatedAndDeterministic: a frame cannot watch the
// window's work through its own clock — each context's logical clock
// advances only with its own events.
func TestFrameClockIsolatedAndDeterministic(t *testing.T) {
	measure := func(mainWork sim.Duration) float64 {
		b, _, _ := newKernelBrowser(t, nil)
		var frameClock float64
		b.RunScript("main", func(g *browser.Global) {
			f, err := g.CreateFrame("https://widget.example")
			if err != nil {
				t.Errorf("create frame: %v", err)
				return
			}
			f.RunScript("widget", func(fg *browser.Global) {
				fg.SetTimeout(func(f3 *browser.Global) {
					frameClock = f3.PerformanceNow()
				}, 5*sim.Millisecond)
			})
			g.Busy(mainWork) // window-side secret work
		})
		run(t, b)
		return frameClock
	}
	fast, slow := measure(1*sim.Millisecond), measure(80*sim.Millisecond)
	if fast != slow {
		t.Fatalf("frame-visible clock depends on window work: %v vs %v", fast, slow)
	}
	if fast != 5 {
		t.Fatalf("frame timer displayed %v, want its 5ms prediction", fast)
	}
}

// TestCrossOriginFrameCannotTimeParent: an attacker iframe spraying
// messages at its embedding window learns nothing about the window's
// secret-dependent work — the frame variant of attack example 1.
func TestCrossOriginFrameCannotTimeParent(t *testing.T) {
	countFor := func(opCost sim.Duration) int {
		b, _, _ := newKernelBrowser(t, nil)
		observed := -1
		b.RunScript("main", func(g *browser.Global) {
			f, err := g.CreateFrame("https://evil.example")
			if err != nil {
				t.Errorf("create frame: %v", err)
				return
			}
			count := 0
			g.SetOnMessage(func(*browser.Global, browser.MessageEvent) { count++ })
			f.RunScript("attacker", func(fg *browser.Global) {
				var spray func(g3 *browser.Global)
				spray = func(g3 *browser.Global) {
					g3.PostMessage("tick")
					g3.SetTimeout(spray, 0)
				}
				spray(fg)
			})
			g.SetTimeout(func(gg *browser.Global) {
				start := count
				gg.Busy(opCost) // the secret
				gg.SetTimeout(func(*browser.Global) { observed = count - start }, 0)
			}, 20*sim.Millisecond)
		})
		if err := b.RunFor(300 * sim.Millisecond); err != nil {
			t.Fatalf("run: %v", err)
		}
		if observed < 0 {
			t.Fatal("measurement never completed")
		}
		return observed
	}
	if fast, slow := countFor(1*sim.Millisecond), countFor(60*sim.Millisecond); fast != slow {
		t.Fatalf("frame implicit clock leaked: %d vs %d ticks", fast, slow)
	}
}

func TestFrameRemoveUnderKernel(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	delivered := 0
	b.RunScript("main", func(g *browser.Global) {
		f, err := g.CreateFrame("https://w.example")
		if err != nil {
			t.Errorf("create frame: %v", err)
			return
		}
		f.RunScript("widget", func(fg *browser.Global) {
			fg.SetOnMessage(func(*browser.Global, browser.MessageEvent) { delivered++ })
		})
		g.SetTimeout(func(*browser.Global) {
			f.Remove()
			f.PostMessage("late", "*")
		}, 10*sim.Millisecond)
	})
	run(t, b)
	if delivered != 0 {
		t.Fatalf("delivered = %d into a removed frame", delivered)
	}
}
