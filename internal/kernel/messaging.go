package kernel

import (
	"jskernel/internal/browser"
	"jskernel/internal/sim"
)

// This file is the kernel's messaging layer (§III-E2): the envelope
// overlay on the postMessage channel, the onmessage traps, kernel-space
// (sys) traffic, and buffer transfer to the parent.

// envelope is the kernel's overlay on the postMessage channel (§III-E2):
// a type field distinguishes kernel-space from user-space traffic, and the
// event ID links a delivery to its pre-registered pending event.
type envelope struct {
	Kind string // "user" or "sys"
	Op   string // sys operation name
	Data any
	EvID EventID
	Wid  int
}

// kPostMessage handles scope-level postMessage: worker scopes post to the
// parent, the main scope to itself. The receiving kernel's event (already
// registered by us) is confirmed when the native delivery lands.
func (k *Kernel) kPostMessage(data any) {
	k.interpose()
	b := k.g.Browser()
	if k.g.IsFrameScope() {
		// Frame → embedding window: register the delivery with the
		// window's kernel, predicted from this frame kernel's logical
		// state, then let the native path carry the envelope.
		mk := k.shared.byThread[b.Main().ID()]
		if mk == nil {
			k.native.PostMessage(data)
			return
		}
		ev := mk.newEvent("onmessage", mk.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
			m, ok := args.(browser.MessageEvent)
			if !ok {
				return
			}
			mk.deliverUserMessage(g, m)
		})
		k.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID})
		return
	}
	if k.g.IsWorkerScope() {
		ctx := k.callCtx("postMessage", "")
		wid := k.workerID()
		ctx.WorkerID = wid
		if v := k.shared.evaluate(ctx); v.Action == ActionDrop {
			// Policy (CVE-2010-4576): no messages into a torn-down document.
			return
		}
		if k.shared.userTerminatedWorker(wid) {
			// User space terminated this worker; the kernel keeps the
			// thread alive but silences its outbound traffic.
			return
		}
		mk := k.shared.byThread[b.Main().ID()]
		if mk == nil {
			k.native.PostMessage(data)
			return
		}
		stub := k.shared.workers[wid]
		ev := mk.newEvent("onmessage", mk.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
			m, ok := args.(browser.MessageEvent)
			if !ok {
				return
			}
			if stub != nil {
				stub.deliver(g, m)
				return
			}
			mk.deliverUserMessage(g, m)
		})
		k.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID, Wid: wid})
		return
	}
	// Main-scope self post.
	ev := k.newEvent("onmessage", k.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
		m, ok := args.(browser.MessageEvent)
		if !ok {
			return
		}
		k.deliverUserMessage(g, m)
	})
	k.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID})
}

// kSetOnMessage is the onmessage trap for the scope itself (worker `self`
// or window): user handlers are stored in the kernel and invoked by the
// dispatcher.
func (k *Kernel) kSetOnMessage(cb func(*browser.Global, browser.MessageEvent)) {
	k.userOnMessage = cb
	if cb == nil || len(k.msgInbox) == 0 {
		return
	}
	queued := k.msgInbox
	k.msgInbox = nil
	for _, m := range queued {
		cb(k.g, m)
	}
}

// deliverUserMessage hands a dispatched message to the user handler, or
// parks it until one is installed.
func (k *Kernel) deliverUserMessage(g *browser.Global, m browser.MessageEvent) {
	if k.userOnMessage == nil {
		k.msgInbox = append(k.msgInbox, m)
		return
	}
	k.userOnMessage(g, m)
}

// onNativeMessage is the kernel's claim on the scope's real onmessage: it
// unwraps the overlay, routes kernel-space traffic, and confirms the
// pending event for user-space traffic.
func (k *Kernel) onNativeMessage(g *browser.Global, m browser.MessageEvent) {
	env, ok := m.Data.(envelope)
	if !ok {
		// Raw (non-kernel) traffic: deliver through a freshly registered
		// event to keep ordering deterministic.
		ev := k.newEvent("onmessage", k.nextMessagePred(), func(gg *browser.Global, args any) {
			mm, ok := args.(browser.MessageEvent)
			if !ok {
				return
			}
			k.deliverUserMessage(gg, mm)
		})
		k.confirm(ev, m)
		return
	}
	if env.Kind == "sys" {
		k.handleSysMessage(env)
		return
	}
	ev, found := k.queue.Lookup(env.EvID)
	if !found {
		return
	}
	k.confirm(ev, browser.MessageEvent{Data: env.Data, SourceWorker: env.Wid, Transfer: m.Transfer, Origin: m.Origin})
}

// handleSysMessage processes kernel-space traffic (§III-E2: the paper's
// two kernel-space communication types are exchanging a clock and passing
// the thread source; plus the Listing 4 fetch handshake).
func (k *Kernel) handleSysMessage(env envelope) {
	// Acquire side of the kernel-space handshake edge: the receiving
	// kernel observes everything the sender published before the send.
	k.emitEdge("sys", int64(env.Wid), "acq")
	switch env.Op {
	case "clockExchange":
		// The parent kernel shares its logical time when the thread is
		// created, so the child's clock starts aligned with the parent's
		// deterministic schedule rather than at zero.
		if at, ok := env.Data.(int64); ok {
			k.clock.TickTo(sim.Time(at))
		}
	case "pendingChildFetch":
		// The worker kernel announced an in-flight fetch; the main kernel
		// acknowledges so terminate decisions see it (Listing 4).
		k.shared.env.pendingFetch[env.Wid]++
	case "childFetchDone":
		if k.shared.env.pendingFetch[env.Wid] > 0 {
			k.shared.env.pendingFetch[env.Wid]--
		}
		k.shared.maybeFinishDeferredTerminate(env.Wid)
	}
}

// sysToMain sends a kernel-space message to the main thread's kernel. In
// this single-process reproduction the channel is synchronous: the shared
// kernel storage is updated directly, which is the same state the paper's
// asynchronous handshake converges to.
func (k *Kernel) sysToMain(env envelope) {
	b := k.g.Browser()
	mk := k.shared.byThread[b.Main().ID()]
	if mk == nil {
		return
	}
	// Release side of the kernel-space handshake edge (the acquire is
	// emitted by the receiving kernel in handleSysMessage).
	k.emitEdge("sys", int64(env.Wid), "rel")
	mk.handleSysMessage(env)
}

func (k *Kernel) kTransferToParent(data any, buf *browser.SharedBuffer) error {
	wid := k.workerID()
	if wid != 0 && buf != nil {
		k.shared.env.transferred[wid] = true
	}
	b := k.g.Browser()
	mk := k.shared.byThread[b.Main().ID()]
	stub := k.shared.workers[wid]
	if mk == nil {
		return k.native.TransferToParent(data, buf)
	}
	ev := mk.newEvent("onmessage", mk.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
		m, ok := args.(browser.MessageEvent)
		if !ok {
			return
		}
		if stub != nil {
			stub.deliver(g, m)
			return
		}
		mk.deliverUserMessage(g, m)
	})
	return k.native.TransferToParent(envelope{Kind: "user", Data: data, EvID: ev.ID, Wid: wid}, buf)
}
