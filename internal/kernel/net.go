package kernel

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/dom"
	"jskernel/internal/webnet"
)

// This file is the kernel's network and resource-load surface: fetch
// with the Listing 4 worker handshake, XHR, importScripts, IndexedDB,
// worker location, and the multi-callback resource loads of §III-D1.

// fetchResult carries a completed fetch through event dispatch.
type fetchResult struct {
	resp *browser.Response
	err  error
}

func (k *Kernel) kFetch(url string, opts browser.FetchOptions, cb func(*browser.Response, error)) browser.FetchID {
	k.interpose()
	ctx := k.callCtx("fetch", url)
	wid := k.workerID()
	ctx.WorkerID = wid
	if v := k.shared.evaluate(ctx); v.Action == ActionDeny {
		ev := k.newEvent("fetch", k.predict("fetch", 0), func(g *browser.Global, _ any) {
			if cb != nil {
				cb(nil, fmt.Errorf("%w: fetch %s", ErrPolicyDenied, url))
			}
		})
		k.confirm(ev, nil)
		return 0
	}
	ev := k.newEvent("fetch", k.predict("fetch", 0), func(g *browser.Global, args any) {
		r, ok := args.(fetchResult)
		if !ok {
			return
		}
		if cb != nil {
			cb(r.resp, r.err)
		}
	})
	if wid != 0 {
		// Kernel-space bookkeeping + the Listing 4 handshake to the main
		// kernel, so a user-level terminate can be safely deferred.
		k.sysToMain(envelope{Kind: "sys", Op: "pendingChildFetch", Wid: wid})
	}
	fid := k.native.Fetch(url, opts, func(resp *browser.Response, err error) {
		if wid != 0 {
			k.sysToMain(envelope{Kind: "sys", Op: "childFetchDone", Wid: wid})
		}
		k.confirm(ev, fetchResult{resp: resp, err: err})
	})
	return fid
}

func (k *Kernel) kAbortFetch(id browser.FetchID) {
	// Abort passes through: the defense against CVE-2018-5092 lives in
	// the terminate path (the worker is never natively terminated while a
	// fetch is pending, so the abort is always clean).
	k.native.AbortFetch(id)
}

func (k *Kernel) kXHR(url string) (string, error) {
	ctx := k.callCtx("xhr", url)
	if v := k.shared.evaluate(ctx); v.Action == ActionDeny {
		return "", fmt.Errorf("%w: cross-origin XHR from worker to %s", ErrPolicyDenied, url)
	}
	return k.native.XHR(url)
}

func (k *Kernel) kImportScripts(url string) error {
	ctx := k.callCtx("importScripts", url)
	v := k.shared.evaluate(ctx)
	if v.Action == ActionSanitize || v.Action == ActionDeny {
		// The kernel resolves the load itself: cross-origin failures are
		// reported with a kernel-synthesized message that carries no
		// cross-origin detail (CVE-2015-7215 policy).
		b := k.g.Browser()
		if _, err := b.Net.Lookup(url); err != nil || ctx.CrossOrigin {
			return fmt.Errorf("%w: importScripts", ErrSanitized)
		}
	}
	return k.native.ImportScripts(url)
}

func (k *Kernel) kIndexedDBOpen(name string) (*browser.IDBStore, error) {
	ctx := k.callCtx("indexedDB.open", "")
	if v := k.shared.evaluate(ctx); v.Action == ActionDeny {
		return nil, fmt.Errorf("%w: IndexedDB in private browsing", ErrPolicyDenied)
	}
	return k.native.IndexedDBOpen(name)
}

func (k *Kernel) kWorkerLocation() string {
	ctx := k.callCtx("workerLocation", "")
	b := k.g.Browser()
	wid := k.workerID()
	if stub, ok := k.shared.workers[wid]; ok {
		if final, redirected := b.RedirectTarget(stub.src); redirected {
			ctx.Redirected = !webnet.SameOrigin(final, b.Origin)
		}
	}
	if v := k.shared.evaluate(ctx); v.Action == ActionSanitize && ctx.Redirected {
		// Kernel-synthesized, origin-only location (CVE-2011-1190 policy).
		if stub, ok := k.shared.workers[wid]; ok {
			return b.Origin + "/" + stub.src
		}
		return b.Origin + "/"
	}
	return k.native.WorkerLocation()
}

// --- Resource loads (multi-callback confirmation, §III-D1) ---

func (k *Kernel) kLoadScript(url string, onload func(*browser.Global), onerror func(*browser.Global)) {
	ev := k.newEvent("script-load", k.predict("script-load", 0), func(g *browser.Global, args any) {
		outcome, ok := args.(string)
		if !ok {
			return
		}
		// Confirmation selected which callback survives; the other was
		// deleted from the callback list.
		switch outcome {
		case "load":
			if onload != nil {
				onload(g)
			}
		case "error":
			if onerror != nil {
				onerror(g)
			}
		}
	})
	k.native.LoadScript(url,
		func(*browser.Global) { k.confirm(ev, "load") },
		func(*browser.Global) { k.confirm(ev, "error") },
	)
}

// loadedImage carries the decoded element through dispatch.
type loadedImage struct {
	el *dom.Element
}

func (k *Kernel) kLoadImage(url string, onload func(*browser.Global, *dom.Element), onerror func(*browser.Global)) {
	ev := k.newEvent("image-load", k.predict("image-load", 0), func(g *browser.Global, args any) {
		switch v := args.(type) {
		case loadedImage:
			if onload != nil {
				onload(g, v.el)
			}
		case string:
			if v == "error" && onerror != nil {
				onerror(g)
			}
		}
	})
	k.native.LoadImage(url,
		func(_ *browser.Global, el *dom.Element) { k.confirm(ev, loadedImage{el: el}) },
		func(*browser.Global) { k.confirm(ev, "error") },
	)
}
