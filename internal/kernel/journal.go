package kernel

import (
	"fmt"
	"io"
)

// Decision records one non-allow policy verdict the kernel enforced —
// the audit trail an operator needs to understand why a page behaved
// differently under the kernel.
type Decision struct {
	Seq    uint64
	API    string
	Action Action
	Reason string
	// Context snapshot of the predicates that matched.
	InWorker    bool
	CrossOrigin bool
	WorkerID    int
	URL         string
}

// String formats a decision for logs.
func (d Decision) String() string {
	where := "window"
	if d.InWorker {
		where = fmt.Sprintf("worker#%d", d.WorkerID)
	}
	s := fmt.Sprintf("#%d %s on %s in %s", d.Seq, d.Action, d.API, where)
	if d.URL != "" {
		s += " url=" + d.URL
	}
	if d.Reason != "" {
		s += " — " + d.Reason
	}
	return s
}

// maxJournal bounds the journal so pathological pages cannot exhaust
// memory; older entries are dropped.
const maxJournal = 4096

// evaluate consults the policy and journals every enforced (non-allow)
// verdict. All kernel call sites go through here.
func (s *Shared) evaluate(ctx CallContext) Verdict {
	v := s.policy.Evaluate(ctx)
	if v.Action == ActionAllow || v.Action == "" {
		return v
	}
	s.decisionSeq++
	d := Decision{
		Seq:         s.decisionSeq,
		API:         ctx.API,
		Action:      v.Action,
		Reason:      v.Reason,
		InWorker:    ctx.InWorker,
		CrossOrigin: ctx.CrossOrigin,
		WorkerID:    ctx.WorkerID,
		URL:         ctx.URL,
	}
	if len(s.journal) >= maxJournal {
		copy(s.journal, s.journal[1:])
		s.journal[len(s.journal)-1] = d
	} else {
		s.journal = append(s.journal, d)
	}
	return v
}

// Decisions returns a copy of the enforcement journal.
func (s *Shared) Decisions() []Decision {
	out := make([]Decision, len(s.journal))
	copy(out, s.journal)
	return out
}

// WriteDecisions dumps the journal to w, one line per decision.
func (s *Shared) WriteDecisions(w io.Writer) error {
	for _, d := range s.journal {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}
