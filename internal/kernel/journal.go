package kernel

import (
	"fmt"
	"io"

	"jskernel/internal/trace"
)

// Decision records one non-allow policy verdict the kernel enforced —
// the audit trail an operator needs to understand why a page behaved
// differently under the kernel. Survival incidents (recovered panics,
// quarantines, watchdog expiries, overload sheds) are journaled through
// the same record type so one stream tells the whole enforcement story.
type Decision struct {
	Seq    uint64
	API    string
	Action Action
	Reason string
	// Context snapshot of the predicates that matched.
	InWorker    bool
	CrossOrigin bool
	WorkerID    int
	URL         string
}

// String formats a decision for logs.
func (d Decision) String() string {
	where := "window"
	if d.InWorker {
		where = fmt.Sprintf("worker#%d", d.WorkerID)
	}
	s := fmt.Sprintf("#%d %s on %s in %s", d.Seq, d.Action, d.API, where)
	if d.URL != "" {
		s += " url=" + d.URL
	}
	if d.Reason != "" {
		s += " — " + d.Reason
	}
	return s
}

// maxJournal bounds the journal so pathological pages cannot exhaust
// memory; older entries are dropped and counted (DroppedDecisions).
const maxJournal = 4096

// append records one decision, dropping (and counting) the oldest entry
// when the journal is full.
func (s *Shared) appendDecision(d Decision) {
	e := s.env
	if len(e.journal) >= maxJournal {
		copy(e.journal, e.journal[1:])
		e.journal[len(e.journal)-1] = d
		e.droppedDecisions++
	} else {
		e.journal = append(e.journal, d)
	}
}

// journalIncident records a kernel survival incident (panic isolation,
// quarantine, watchdog expiry, overload shed) in the decision journal.
func (s *Shared) journalIncident(d Decision) {
	s.env.decisionSeq++
	d.Seq = s.env.decisionSeq
	s.appendDecision(d)
}

// emitPolicy emits one policy-verdict trace record. Verdict records are
// not event-scoped (Event 0); they exist so the trace shows every
// intercepted call's decision, including allows that never reach the
// journal.
func (s *Shared) emitPolicy(ctx CallContext, a Action, reason string) {
	t := s.env.tracer
	if t == nil || s.env.simNow == nil {
		return
	}
	t.Emit(trace.Record{
		Run:      s.env.traceRun,
		VT:       s.env.simNow(),
		Thread:   ctx.ThreadID,
		WorkerID: ctx.WorkerID,
		Op:       trace.OpPolicy,
		API:      ctx.API,
		Action:   string(a),
		Reason:   reason,
		URL:      ctx.URL,
	})
}

// evaluate consults the policy and journals every enforced (non-allow)
// verdict. All kernel call sites go through here. A panicking policy
// never reaches the dispatcher: the panic is recovered, journaled, and
// replaced with a fail-closed deny verdict.
func (s *Shared) evaluate(ctx CallContext) Verdict {
	v, panicked := s.safeEvaluate(ctx)
	if panicked {
		s.env.policyPanics++
		s.journalIncident(Decision{
			API:         ctx.API,
			Action:      ActionIsolate,
			Reason:      fmt.Sprintf("recovered policy panic (fail closed): %v", s.env.lastPolicyPanic),
			InWorker:    ctx.InWorker,
			CrossOrigin: ctx.CrossOrigin,
			WorkerID:    ctx.WorkerID,
			URL:         ctx.URL,
		})
		s.emitPolicy(ctx, ActionDeny, "policy panicked; kernel fails closed")
		return Verdict{Action: ActionDeny, Reason: "policy panicked; kernel fails closed"}
	}
	if v.Action == ActionAllow || v.Action == "" {
		s.emitPolicy(ctx, ActionAllow, v.Reason)
		return v
	}
	s.emitPolicy(ctx, v.Action, v.Reason)
	s.env.decisionSeq++
	d := Decision{
		Seq:         s.env.decisionSeq,
		API:         ctx.API,
		Action:      v.Action,
		Reason:      v.Reason,
		InWorker:    ctx.InWorker,
		CrossOrigin: ctx.CrossOrigin,
		WorkerID:    ctx.WorkerID,
		URL:         ctx.URL,
	}
	s.appendDecision(d)
	return v
}

// safeEvaluate runs the policy's Evaluate under panic isolation, so a
// misbehaving policy can never kill the dispatcher.
func (s *Shared) safeEvaluate(ctx CallContext) (v Verdict, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			s.env.lastPolicyPanic = r
		}
	}()
	return s.policy.Evaluate(ctx), false
}

// Decisions returns a copy of the enforcement journal.
func (s *Shared) Decisions() []Decision {
	out := make([]Decision, len(s.env.journal))
	copy(out, s.env.journal)
	return out
}

// DroppedDecisions reports how many journal entries were discarded after
// the journal hit its size bound — a silent-truncation tell for
// operators reading the audit trail.
func (s *Shared) DroppedDecisions() uint64 { return s.env.droppedDecisions }

// PolicyPanics reports how many policy Evaluate panics the kernel
// recovered (each one fails closed and is journaled).
func (s *Shared) PolicyPanics() uint64 { return s.env.policyPanics }

// WriteDecisions dumps the journal to w, one line per decision, with a
// truncation notice when entries were dropped.
func (s *Shared) WriteDecisions(w io.Writer) error {
	if s.env.droppedDecisions > 0 {
		if _, err := fmt.Fprintf(w, "(journal truncated: %d older decisions dropped)\n", s.env.droppedDecisions); err != nil {
			return err
		}
	}
	for _, d := range s.env.journal {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}
