package kernel

import (
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// Environment owns every piece of run-scoped mutable kernel state: the
// enforcement journal, the survival-hardening knobs and incident
// counters, the trace session binding (with this run's session-unique
// generation), the shared-buffer serialization point, and the worker
// handshake bookkeeping (pending fetches, buffer transfers, deferred
// terminations).
//
// Shared keeps only the structural state of one browser — policy, the
// scope and thread registries — and delegates everything mutable here.
// The split is what makes experiment cells safely parallel: one cell =
// one Environment, so nothing a concurrently-running cell touches is
// reachable from another cell's kernel. Any state that used to live in
// a package-level variable or leak across runs through Shared is either
// in this struct or provably immutable.
type Environment struct {
	// simNow is captured from the first installed scope so
	// environment-level trace emissions (policy verdicts) can be
	// virtual-time-stamped without a kernel in hand.
	simNow func() sim.Time

	journal          []Decision // enforcement audit trail
	decisionSeq      uint64
	droppedDecisions uint64 // entries discarded past maxJournal

	// Survival hardening knobs (see Shared.SetWatchdogDeadline,
	// SetMaxQueueDepth, SetCallbackFault) and incident counters.
	watchdogDeadline sim.Duration
	maxQueueDepth    int
	callbackFault    func(api string) bool
	policyPanics     uint64
	lastPolicyPanic  any

	// tracer is the optional lifecycle trace sink (internal/trace). Nil —
	// the default — is the near-zero-overhead off state: every emission
	// site bails on one nil check.
	tracer *trace.Session
	// traceRun is this environment's session-unique run generation:
	// sessions may span many environments, each with its own simulator
	// (virtual time restarts at zero) and thread numbering, so records
	// carry the run so consumers can partition per-environment.
	traceRun int

	lastBufAccess sim.Time // serialization point for shared-buffer ops

	pendingFetch map[int]int  // worker ID → in-flight fetch count
	transferred  map[int]bool // worker ID → transferred a buffer to parent
	deferredTerm map[int]bool // worker ID → native terminate pending drain
}

// NewEnvironment returns a fresh environment with the default survival
// hardening bounds and no tracer attached.
func NewEnvironment() *Environment {
	return &Environment{
		watchdogDeadline: DefaultWatchdogDeadline,
		maxQueueDepth:    DefaultMaxQueueDepth,
		pendingFetch:     make(map[int]int),
		transferred:      make(map[int]bool),
		deferredTerm:     make(map[int]bool),
	}
}

// Reset returns the environment to the state NewEnvironment builds,
// keeping its allocated maps and journal backing array so a warm pool
// can reuse environments without rebuilding them. The contract is
// strict: a run on a reset environment must be byte-identical to the
// same run on a fresh one, at any reuse depth — nothing observable may
// survive a reset. jsk-serve's worker pool calls this between requests;
// the pin tests in internal/kernel and internal/expr enforce the
// contract across multiple reuse generations.
func (e *Environment) Reset() {
	e.simNow = nil
	e.journal = e.journal[:0]
	e.decisionSeq = 0
	e.droppedDecisions = 0
	e.watchdogDeadline = DefaultWatchdogDeadline
	e.maxQueueDepth = DefaultMaxQueueDepth
	e.callbackFault = nil
	e.policyPanics = 0
	e.lastPolicyPanic = nil
	e.tracer = nil
	e.traceRun = 0
	e.lastBufAccess = 0
	clear(e.pendingFetch)
	clear(e.transferred)
	clear(e.deferredTerm)
}

// setTracer attaches a lifecycle trace session and allocates this
// environment's run generation from it. Nil detaches.
func (e *Environment) setTracer(t *trace.Session) {
	e.tracer = t
	if t != nil {
		e.traceRun = t.NextRun()
	}
}

// Tracer returns the attached trace session, or nil.
func (e *Environment) Tracer() *trace.Session { return e.tracer }

// TraceRun returns this environment's trace run generation (0 when no
// tracer is attached).
func (e *Environment) TraceRun() int { return e.traceRun }

// WatchdogDeadline returns the pending-head confirmation deadline.
func (e *Environment) WatchdogDeadline() sim.Duration { return e.watchdogDeadline }

// MaxQueueDepth returns the per-context event-queue bound.
func (e *Environment) MaxQueueDepth() int { return e.maxQueueDepth }
