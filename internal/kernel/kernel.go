package kernel

import (
	"errors"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// This file holds the kernel's structural core: the Shared storage, the
// per-scope Kernel instance, and their accessors. The behaviour lives in
// focused siblings — syscall.go (the mediated bindings table), sched.go
// (two-stage scheduler and dispatcher), timers.go, messaging.go, net.go,
// journal.go (policy evaluation and audit trail), worker.go (thread
// manager), environment.go (run-scoped mutable state).

// Errors surfaced to user space by policy verdicts.
var (
	// ErrPolicyDenied is returned when a policy denies a call outright.
	ErrPolicyDenied = errors.New("jskernel: denied by security policy")
	// ErrSanitized replaces native errors whose text would leak
	// cross-origin information.
	ErrSanitized = errors.New("jskernel: operation failed")
)

// Shared is the kernel state common to every thread of one browser: the
// paper's "storage place of kernel objects" that all kernel threads can
// reach, plus the thread manager's registry. All run-scoped mutable
// state lives in the attached Environment; Shared itself holds only the
// policy and the structural registries.
type Shared struct {
	policy Policy
	// kernels holds every kernelized scope; byThread indexes each
	// thread's primary scope (the window or the worker self — frames on
	// the main thread are additional scopes).
	kernels  map[*browser.Global]*Kernel
	byThread map[int]*Kernel
	workers  map[int]*WorkerStub // worker ID → thread-manager entry

	installs int

	// env owns the journal, hardening knobs, trace binding, and worker
	// handshake state for this browser's run.
	env *Environment
}

// Survival hardening defaults. The watchdog deadline comfortably exceeds
// the slowest legitimate confirmation in any workload (a 10MB transfer
// over the Tor-degraded link takes ~29s of virtual time); the queue bound
// exceeds the deepest legitimate queue by an order of magnitude.
const (
	DefaultWatchdogDeadline = 60 * sim.Second
	DefaultMaxQueueDepth    = 16384
	// maxCallbackPanics is how many user-callback panics one context may
	// throw before the kernel quarantines it.
	maxCallbackPanics = 8
)

// NewShared creates the cross-thread kernel state for one browser under
// the given policy, with a fresh Environment. Wire its Install method
// into browser.Options InstallScope so every new JavaScript context gets
// a kernel — the paper's bootstrap injection.
func NewShared(p Policy) *Shared {
	if p == nil {
		panic("kernel: nil policy")
	}
	return &Shared{
		policy:   p,
		kernels:  make(map[*browser.Global]*Kernel),
		byThread: make(map[int]*Kernel),
		workers:  make(map[int]*WorkerStub),
		env:      NewEnvironment(),
	}
}

// NewSharedReusing is NewShared built around a caller-owned Environment
// instead of a fresh one, resetting it first. It is the zero-rebuild
// path for warm environment pools (jsk-serve): the pooled Environment
// keeps its allocated maps across runs while the Reset contract
// guarantees the run itself is indistinguishable from one on a fresh
// environment. The caller must not share env with any other live
// Shared.
func NewSharedReusing(p Policy, env *Environment) *Shared {
	if env == nil {
		return NewShared(p)
	}
	s := NewShared(p)
	env.Reset()
	s.env = env
	return s
}

// Env returns the environment owning this browser's run-scoped state.
func (s *Shared) Env() *Environment { return s.env }

// SetWatchdogDeadline tunes how long a pending queue head may wait for
// its confirmation before the watchdog force-expires it. Zero or negative
// disables the watchdog.
func (s *Shared) SetWatchdogDeadline(d sim.Duration) { s.env.watchdogDeadline = d }

// SetMaxQueueDepth bounds each context's event queue; registrations past
// the bound are shed (journaled, their callbacks never run). Zero or
// negative removes the bound.
func (s *Shared) SetMaxQueueDepth(n int) { s.env.maxQueueDepth = n }

// SetCallbackFault installs a fault-injection hook consulted before every
// user-callback dispatch; returning true makes the dispatch panic inside
// the user callback (exercising the kernel's panic isolation). Tests and
// internal/fault use it; nil removes the hook.
func (s *Shared) SetCallbackFault(f func(api string) bool) { s.env.callbackFault = f }

// SetTracer attaches a lifecycle trace session and allocates this
// environment's run generation from it. It must be set before scopes are
// installed — installation is when each kernel is assigned its
// session-unique trace scope ID. Nil detaches (tracing off).
func (s *Shared) SetTracer(t *trace.Session) { s.env.setTracer(t) }

// Tracer returns the attached trace session, or nil.
func (s *Shared) Tracer() *trace.Session { return s.env.tracer }

// TraceRun returns this environment's trace run generation (0 when no
// tracer is attached).
func (s *Shared) TraceRun() int { return s.env.traceRun }

// Policy returns the installed policy.
func (s *Shared) Policy() Policy { return s.policy }

// Installs reports how many scopes have been kernelized.
func (s *Shared) Installs() int { return s.installs }

// KernelFor returns the kernel guarding a thread's primary scope, or nil.
func (s *Shared) KernelFor(t *browser.Thread) *Kernel {
	if t == nil {
		return nil
	}
	return s.byThread[t.ID()]
}

// KernelOf returns the kernel guarding a specific scope, or nil.
func (s *Shared) KernelOf(g *browser.Global) *Kernel { return s.kernels[g] }

// Kernel is one thread's kernel instance: event queue, logical clock,
// scheduler and dispatcher state.
type Kernel struct {
	shared *Shared
	g      *browser.Global
	native browser.Bindings

	queue *EventQueue
	clock *Clock

	dispatching bool
	lastMsgPred sim.Time // chain for sender-less (raw) inbound messages
	lastOutPred sim.Time // chain for messages this kernel sends

	timerEv       map[int]*Event         // timer/rAF id → kernel event
	intervals     map[int]*intervalState // kernel interval id → chain state
	nextIntervals int

	userOnMessage func(*browser.Global, browser.MessageEvent)
	msgInbox      []browser.MessageEvent

	animChains map[int]*tickChain // css animation id → chain
	dispatched uint64

	// Survival state: recovered user-callback panics, quarantine flag, and
	// shed-registration count for this context.
	panics      int
	quarantined bool
	shed        uint64

	// scope is this kernel's session-unique trace scope ID (0 when the
	// scope was installed without a tracer attached).
	scope int
}

// emit stamps one trace record with this kernel's virtual time, logical
// clock, thread and scope, and forwards it to the session. The nil check
// is the tracing-off fast path.
func (k *Kernel) emit(r trace.Record) {
	t := k.shared.env.tracer
	if t == nil {
		return
	}
	r.Run = k.shared.env.traceRun
	r.VT = k.g.Browser().Sim.Now()
	r.LC = k.clock.Now()
	r.Thread = k.g.Thread().ID()
	r.Scope = k.scope
	if r.WorkerID == 0 && k.g.IsWorkerScope() {
		r.WorkerID = k.workerID()
	}
	t.Emit(r)
}

// emitEdge records one synchronization edge endpoint for the hb race
// analysis: api names the sync-object class ("sab-lock", "sys"), id the
// object, action "rel" (release) or "acq" (acquire). Release/acquire
// pairs on the same (run, api, id) key become happens-before edges.
func (k *Kernel) emitEdge(api string, id int64, action string) {
	k.emit(trace.Record{Op: trace.OpEdge, API: api, Action: action, Value: id})
}

// Queue exposes the kernel event queue (tests and reports).
func (k *Kernel) Queue() *EventQueue { return k.queue }

// Clock exposes the kernel logical clock.
func (k *Kernel) Clock() *Clock { return k.clock }

// Dispatched reports how many kernel events have been released to user
// space.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Quarantined reports whether this context's user callbacks are
// suppressed after repeated panics.
func (k *Kernel) Quarantined() bool { return k.quarantined }

// Panics reports how many user-callback panics this context threw (all
// recovered by the dispatcher).
func (k *Kernel) Panics() int { return k.panics }

// ShedEvents reports how many event registrations were refused because
// the context hit its queue-depth bound.
func (k *Kernel) ShedEvents() uint64 { return k.shed }

// interposeCost is the real (virtual-time) cost of crossing the kernel
// boundary once: the user→kernel→native round trip of §III-B. It is what
// the paper's Dromaeo experiment measures — invisible to the logical
// clock, but real work for the engine.
const interposeCost = 50 * sim.Nanosecond

// interpose charges one kernel-boundary crossing.
func (k *Kernel) interpose() {
	k.g.Busy(interposeCost)
	k.shared.env.tracer.CountInterpose(interposeCost)
}
