package kernel

import (
	"errors"
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/dom"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/webnet"
)

// Errors surfaced to user space by policy verdicts.
var (
	// ErrPolicyDenied is returned when a policy denies a call outright.
	ErrPolicyDenied = errors.New("jskernel: denied by security policy")
	// ErrSanitized replaces native errors whose text would leak
	// cross-origin information.
	ErrSanitized = errors.New("jskernel: operation failed")
)

// Shared is the kernel state common to every thread of one browser: the
// paper's "storage place of kernel objects" that all kernel threads can
// reach, plus the thread manager's registry.
type Shared struct {
	policy Policy
	// kernels holds every kernelized scope; byThread indexes each
	// thread's primary scope (the window or the worker self — frames on
	// the main thread are additional scopes).
	kernels  map[*browser.Global]*Kernel
	byThread map[int]*Kernel
	workers  map[int]*WorkerStub // worker ID → thread-manager entry

	pendingFetch map[int]int  // worker ID → in-flight fetch count
	transferred  map[int]bool // worker ID → transferred a buffer to parent
	deferredTerm map[int]bool // worker ID → native terminate pending drain

	lastBufAccess sim.Time // serialization point for shared-buffer ops
	installs      int

	journal          []Decision // enforcement audit trail
	decisionSeq      uint64
	droppedDecisions uint64 // entries discarded past maxJournal

	// Survival hardening knobs (see SetWatchdogDeadline, SetMaxQueueDepth,
	// SetCallbackFault) and incident counters.
	watchdogDeadline sim.Duration
	maxQueueDepth    int
	callbackFault    func(api string) bool
	policyPanics     uint64
	lastPolicyPanic  any

	// tracer is the optional lifecycle trace sink (internal/trace). Nil —
	// the default — is the near-zero-overhead off state: every emission
	// site bails on one nil check. simNow is captured from the first
	// installed scope so Shared-level emissions (policy verdicts) can be
	// virtual-time-stamped without a kernel in hand.
	tracer *trace.Session
	simNow func() sim.Time
	// traceRun is this environment's session-unique run generation:
	// sessions may span many environments, each with its own simulator
	// (virtual time restarts at zero) and thread numbering, so records
	// carry the run so consumers can partition per-environment.
	traceRun int
}

// Survival hardening defaults. The watchdog deadline comfortably exceeds
// the slowest legitimate confirmation in any workload (a 10MB transfer
// over the Tor-degraded link takes ~29s of virtual time); the queue bound
// exceeds the deepest legitimate queue by an order of magnitude.
const (
	DefaultWatchdogDeadline = 60 * sim.Second
	DefaultMaxQueueDepth    = 16384
	// maxCallbackPanics is how many user-callback panics one context may
	// throw before the kernel quarantines it.
	maxCallbackPanics = 8
)

// NewShared creates the cross-thread kernel state for one browser under
// the given policy. Wire its Install method into browser.Options
// InstallScope so every new JavaScript context gets a kernel — the paper's
// bootstrap injection.
func NewShared(p Policy) *Shared {
	if p == nil {
		panic("kernel: nil policy")
	}
	return &Shared{
		policy:           p,
		kernels:          make(map[*browser.Global]*Kernel),
		byThread:         make(map[int]*Kernel),
		workers:          make(map[int]*WorkerStub),
		pendingFetch:     make(map[int]int),
		transferred:      make(map[int]bool),
		deferredTerm:     make(map[int]bool),
		watchdogDeadline: DefaultWatchdogDeadline,
		maxQueueDepth:    DefaultMaxQueueDepth,
	}
}

// SetWatchdogDeadline tunes how long a pending queue head may wait for
// its confirmation before the watchdog force-expires it. Zero or negative
// disables the watchdog.
func (s *Shared) SetWatchdogDeadline(d sim.Duration) { s.watchdogDeadline = d }

// SetMaxQueueDepth bounds each context's event queue; registrations past
// the bound are shed (journaled, their callbacks never run). Zero or
// negative removes the bound.
func (s *Shared) SetMaxQueueDepth(n int) { s.maxQueueDepth = n }

// SetCallbackFault installs a fault-injection hook consulted before every
// user-callback dispatch; returning true makes the dispatch panic inside
// the user callback (exercising the kernel's panic isolation). Tests and
// internal/fault use it; nil removes the hook.
func (s *Shared) SetCallbackFault(f func(api string) bool) { s.callbackFault = f }

// SetTracer attaches a lifecycle trace session and allocates this
// environment's run generation from it. It must be set before scopes are
// installed — installation is when each kernel is assigned its
// session-unique trace scope ID. Nil detaches (tracing off).
func (s *Shared) SetTracer(t *trace.Session) {
	s.tracer = t
	if t != nil {
		s.traceRun = t.NextRun()
	}
}

// Tracer returns the attached trace session, or nil.
func (s *Shared) Tracer() *trace.Session { return s.tracer }

// TraceRun returns this environment's trace run generation (0 when no
// tracer is attached).
func (s *Shared) TraceRun() int { return s.traceRun }

// Policy returns the installed policy.
func (s *Shared) Policy() Policy { return s.policy }

// Installs reports how many scopes have been kernelized.
func (s *Shared) Installs() int { return s.installs }

// KernelFor returns the kernel guarding a thread's primary scope, or nil.
func (s *Shared) KernelFor(t *browser.Thread) *Kernel {
	if t == nil {
		return nil
	}
	return s.byThread[t.ID()]
}

// KernelOf returns the kernel guarding a specific scope, or nil.
func (s *Shared) KernelOf(g *browser.Global) *Kernel { return s.kernels[g] }

// Install kernelizes one global scope: it snapshots the native bindings,
// replaces every entry with the kernel's mediated version, claims the
// scope's native message handler, and freezes the table against user-space
// redefinition.
func (s *Shared) Install(g *browser.Global) {
	k := &Kernel{
		shared: s,
		g:      g,
		native: *g.Bindings(), // snapshot of the unmediated entry points
		queue:  NewEventQueue(),
		clock:  NewClock(s.policy.Quantum()),
	}
	s.kernels[g] = k
	if _, ok := s.byThread[g.Thread().ID()]; !ok {
		// The first scope installed on a thread is its primary scope.
		s.byThread[g.Thread().ID()] = k
	}
	s.installs++
	if s.simNow == nil {
		s.simNow = g.Browser().Sim.Now
	}
	if s.tracer != nil {
		k.scope = s.tracer.NextScope()
		kind := "window"
		if g.IsFrameScope() {
			kind = "frame"
		} else if g.IsWorkerScope() {
			kind = "worker"
		}
		k.emit(trace.Record{Op: trace.OpInstall, API: kind})
	}

	bn := g.Bindings()
	bn.SetTimeout = k.kSetTimeout
	bn.ClearTimeout = k.kClearTimer
	bn.SetInterval = k.kSetInterval
	bn.ClearInterval = k.kClearInterval
	bn.PerformanceNow = k.kPerformanceNow
	bn.DateNow = k.kDateNow
	bn.RequestAnimationFrame = k.kRequestAnimationFrame
	bn.CancelAnimationFrame = k.kClearTimer
	bn.NewWorker = k.kNewWorker
	bn.PostMessage = k.kPostMessage
	bn.SetOnMessage = k.kSetOnMessage
	bn.Fetch = k.kFetch
	bn.AbortFetch = k.kAbortFetch
	bn.XHR = k.kXHR
	bn.ImportScripts = k.kImportScripts
	bn.IndexedDBOpen = k.kIndexedDBOpen
	bn.WorkerLocation = k.kWorkerLocation
	bn.LoadScript = k.kLoadScript
	bn.LoadImage = k.kLoadImage
	bn.StartCSSAnimation = k.kStartCSSAnimation
	bn.StopCSSAnimation = k.kStopCSSAnimation
	bn.PlayVideo = k.kPlayVideo
	bn.SharedBufferRead = k.kSharedBufferRead
	bn.SharedBufferWrite = k.kSharedBufferWrite
	bn.TransferToParent = k.kTransferToParent
	bn.DOMSetAttribute = k.kDOMSetAttribute
	bn.DOMGetAttribute = k.kDOMGetAttribute
	bn.CreateFrame = k.kCreateFrame

	// The kernel owns the scope's real message handler; user handlers are
	// registered with the kernel and invoked by the dispatcher.
	k.native.SetOnMessage(k.onNativeMessage)

	// Object.freeze analogue: user space can no longer redefine the table.
	g.Freeze()
}

// Kernel is one thread's kernel instance: event queue, logical clock,
// scheduler and dispatcher state.
type Kernel struct {
	shared *Shared
	g      *browser.Global
	native browser.Bindings

	queue *EventQueue
	clock *Clock

	dispatching bool
	lastMsgPred sim.Time // chain for sender-less (raw) inbound messages
	lastOutPred sim.Time // chain for messages this kernel sends

	timerEv       map[int]*Event         // timer/rAF id → kernel event
	intervals     map[int]*intervalState // kernel interval id → chain state
	nextIntervals int

	userOnMessage func(*browser.Global, browser.MessageEvent)
	msgInbox      []browser.MessageEvent

	animChains map[int]*tickChain // css animation id → chain
	dispatched uint64

	// Survival state: recovered user-callback panics, quarantine flag, and
	// shed-registration count for this context.
	panics      int
	quarantined bool
	shed        uint64

	// scope is this kernel's session-unique trace scope ID (0 when the
	// scope was installed without a tracer attached).
	scope int
}

// emit stamps one trace record with this kernel's virtual time, logical
// clock, thread and scope, and forwards it to the session. The nil check
// is the tracing-off fast path.
func (k *Kernel) emit(r trace.Record) {
	t := k.shared.tracer
	if t == nil {
		return
	}
	r.Run = k.shared.traceRun
	r.VT = k.g.Browser().Sim.Now()
	r.LC = k.clock.Now()
	r.Thread = k.g.Thread().ID()
	r.Scope = k.scope
	if r.WorkerID == 0 && k.g.IsWorkerScope() {
		r.WorkerID = k.workerID()
	}
	t.Emit(r)
}

// Queue exposes the kernel event queue (tests and reports).
func (k *Kernel) Queue() *EventQueue { return k.queue }

// Clock exposes the kernel logical clock.
func (k *Kernel) Clock() *Clock { return k.clock }

// Dispatched reports how many kernel events have been released to user
// space.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Quarantined reports whether this context's user callbacks are
// suppressed after repeated panics.
func (k *Kernel) Quarantined() bool { return k.quarantined }

// Panics reports how many user-callback panics this context threw (all
// recovered by the dispatcher).
func (k *Kernel) Panics() int { return k.panics }

// ShedEvents reports how many event registrations were refused because
// the context hit its queue-depth bound.
func (k *Kernel) ShedEvents() uint64 { return k.shed }

// interposeCost is the real (virtual-time) cost of crossing the kernel
// boundary once: the user→kernel→native round trip of §III-B. It is what
// the paper's Dromaeo experiment measures — invisible to the logical
// clock, but real work for the engine.
const interposeCost = 50 * sim.Nanosecond

// interpose charges one kernel-boundary crossing.
func (k *Kernel) interpose() {
	k.g.Busy(interposeCost)
	k.shared.tracer.CountInterpose(interposeCost)
}

// kDOMSetAttribute mediates attribute writes. The DOM attribute test is
// the paper's worst case (≈21% slower) because every access traverses the
// kernel and the website JavaScript.
func (k *Kernel) kDOMSetAttribute(el *dom.Element, name, value string) {
	k.interpose()
	k.native.DOMSetAttribute(el, name, value)
}

// kDOMGetAttribute mediates attribute reads.
func (k *Kernel) kDOMGetAttribute(el *dom.Element, name string) (string, bool) {
	k.interpose()
	return k.native.DOMGetAttribute(el, name)
}

// predict returns the logical time to predict for a new event of an API
// kind, based exclusively on kernel-visible state (never real time).
func (k *Kernel) predict(api string, requested sim.Duration) sim.Time {
	return k.clock.Now() + k.shared.policy.PredictDelay(api, requested)
}

// nextMessagePred assigns strictly increasing predicted times to incoming
// messages with no identifiable sender, so their dispatch order and
// apparent timing stay deterministic.
func (k *Kernel) nextMessagePred() sim.Time {
	base := k.clock.Now()
	if k.lastMsgPred > base {
		base = k.lastMsgPred
	}
	k.lastMsgPred = base + k.shared.policy.PredictDelay("message", 0)
	return k.lastMsgPred
}

// nextOutgoingPred is the sender-side component of a message delivery
// prediction: a strictly increasing chain over the SENDER's logical clock,
// which is secret-independent. A per-thread nanosecond offset keeps
// predictions from different senders from colliding, so tie-breaks never
// depend on real arrival order.
func (k *Kernel) nextOutgoingPred() sim.Time {
	base := k.clock.Now()
	if k.lastOutPred > base {
		base = k.lastOutPred
	}
	k.lastOutPred = base + k.shared.policy.PredictDelay("message", 0)
	return k.lastOutPred + sim.Duration(k.g.Thread().ID())*sim.Nanosecond
}

// nextInboundPred combines the sender's chained prediction with the
// receiver's own message chain. The receiver chain guarantees at most one
// message dispatches per logical slot — which is what pins the Listing 1
// implicit-clock count — while the sender floor keeps cross-sender order
// independent of real arrival order. Full cross-thread determinism would
// require conservative lookahead synchronization (Chandy–Misra style)
// that neither the paper's prototype nor this reproduction implements;
// the residual channel is the coarse logical-slot position of a message
// relative to receiver-local events, bounded to one quantum (see
// DESIGN.md §7).
func (k *Kernel) nextInboundPred(senderPred sim.Time) sim.Time {
	r := k.nextMessagePred()
	if senderPred > r {
		k.lastMsgPred = senderPred
		return senderPred
	}
	return r
}

// confirm moves a pending event to ready with its final arguments and lets
// the dispatcher run (paper §III-D1, confirmation stage).
func (k *Kernel) confirm(ev *Event, args any) {
	if ev.Status != StatusPending {
		return
	}
	ev.Args = args
	ev.Status = StatusReady
	k.emit(trace.Record{Op: trace.OpConfirm, API: ev.API, Event: uint64(ev.ID), Predicted: ev.Predicted})
	k.drain()
}

// cancelEvent implements §III-D2's three cancellation cases: pending →
// cancel (native side handled by caller); ready-but-undispatched → mark
// cancelled; already dispatched → ignore.
func (k *Kernel) cancelEvent(ev *Event) {
	if ev == nil || ev.Status == StatusDone || ev.Status == StatusCancelled {
		return
	}
	ev.Status = StatusCancelled
	k.emit(trace.Record{Op: trace.OpCancel, API: ev.API, Event: uint64(ev.ID), Predicted: ev.Predicted, Action: "cancel"})
}

// drain is the dispatcher (§III-D3): release queue-head events in
// predicted-time order. A pending head blocks everything behind it, which
// is precisely what makes observable interleavings secret-independent.
// The dispatcher survives whatever user space throws at it: a pending
// head that never confirms is force-expired by the watchdog, and a user
// callback that panics is isolated (and, past a threshold, its whole
// context quarantined) without ever unwinding the dispatch loop.
func (k *Kernel) drain() {
	if k.dispatching {
		return
	}
	k.dispatching = true
	defer func() { k.dispatching = false }()
	for {
		head := k.queue.Top()
		if head == nil {
			return
		}
		if head.Status == StatusPending {
			k.armWatchdog(head)
			return
		}
		k.queue.Pop()
		k.disarmWatchdog(head)
		if head.Status == StatusCancelled {
			continue
		}
		k.clock.TickTo(head.Predicted)
		head.Status = StatusDone
		k.dispatched++
		k.emit(trace.Record{Op: trace.OpDispatch, API: head.API, Event: uint64(head.ID), Predicted: head.Predicted, Depth: k.queue.Len()})
		if head.Callback != nil {
			k.dispatchUser(head)
		}
	}
}

// dispatchUser runs one released event's user callback under panic
// isolation. A panic is recovered and journaled; after maxCallbackPanics
// the context is quarantined — its later callbacks are suppressed while
// its events keep draining, so a hostile page can never wedge the
// dispatcher or take the process down.
func (k *Kernel) dispatchUser(ev *Event) {
	if k.quarantined {
		return
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		k.panics++
		d := Decision{
			API:      ev.API,
			Action:   ActionIsolate,
			Reason:   fmt.Sprintf("recovered user-callback panic: %v", r),
			InWorker: k.g.IsWorkerScope(),
			WorkerID: k.workerID(),
		}
		if k.panics >= maxCallbackPanics {
			k.quarantined = true
			d.Action = ActionQuarantine
			d.Reason = fmt.Sprintf("context quarantined after %d user-callback panics (last: %v)", k.panics, r)
		}
		k.shared.journalIncident(d)
		k.emit(trace.Record{Op: trace.OpPanic, API: ev.API, Event: uint64(ev.ID), Action: string(ActionIsolate), Reason: fmt.Sprintf("recovered user-callback panic: %v", r)})
		if d.Action == ActionQuarantine {
			k.emit(trace.Record{Op: trace.OpQuarantine, Action: string(ActionQuarantine), Reason: d.Reason})
		}
	}()
	if f := k.shared.callbackFault; f != nil && f(ev.API) {
		panic("fault: injected user-callback panic")
	}
	ev.Callback(k.g, ev.Args)
}

// armWatchdog schedules a force-expiry alarm for a pending queue head.
// If the event's confirmation never arrives before the (virtual-time)
// deadline, the event is cancelled, the incident journaled, and the
// queue drained past it — registered-but-never-confirmed events cannot
// wedge the context forever. Confirmation or dispatch disarms the alarm.
func (k *Kernel) armWatchdog(ev *Event) {
	d := k.shared.watchdogDeadline
	if d <= 0 || ev.watchdogArmed {
		return
	}
	ev.watchdogArmed = true
	s := k.g.Browser().Sim
	ev.watchdogID = s.Schedule(s.Now()+d, "kernel-watchdog", func() {
		ev.watchdogArmed = false
		if ev.Status != StatusPending {
			return
		}
		ev.Status = StatusCancelled
		k.shared.journalIncident(Decision{
			API:      ev.API,
			Action:   ActionExpire,
			Reason:   fmt.Sprintf("watchdog: confirmation never arrived within %v", d),
			InWorker: k.g.IsWorkerScope(),
			WorkerID: k.workerID(),
		})
		k.emit(trace.Record{Op: trace.OpExpire, API: ev.API, Event: uint64(ev.ID), Predicted: ev.Predicted, Action: string(ActionExpire), Reason: fmt.Sprintf("watchdog: confirmation never arrived within %v", d)})
		k.drain()
	})
}

// disarmWatchdog cancels a popped event's pending alarm, if any.
func (k *Kernel) disarmWatchdog(ev *Event) {
	if !ev.watchdogArmed {
		return
	}
	ev.watchdogArmed = false
	k.g.Browser().Sim.Cancel(ev.watchdogID)
}

// newEvent registers an event with overload shedding: once the context's
// queue depth hits the bound, the registration is refused — the returned
// event is born cancelled and unqueued, so confirmations for it are
// no-ops and its callback never runs. Every shed is journaled.
func (k *Kernel) newEvent(api string, predicted sim.Time, cb func(*browser.Global, any)) *Event {
	if max := k.shared.maxQueueDepth; max > 0 && k.queue.Len() >= max {
		k.shed++
		k.shared.journalIncident(Decision{
			API:      api,
			Action:   ActionShed,
			Reason:   fmt.Sprintf("overload: queue depth at bound (%d)", max),
			InWorker: k.g.IsWorkerScope(),
			WorkerID: k.workerID(),
		})
		ev := &Event{ID: k.queue.AllocID(), API: api, Status: StatusCancelled, Predicted: predicted, index: -1}
		k.emit(trace.Record{Op: trace.OpPolicy, API: api, Event: uint64(ev.ID), Predicted: predicted, Action: "schedule"})
		k.emit(trace.Record{Op: trace.OpEnqueue, API: api, Event: uint64(ev.ID), Predicted: predicted, Depth: k.queue.Len()})
		k.emit(trace.Record{Op: trace.OpShed, API: api, Event: uint64(ev.ID), Predicted: predicted, Action: string(ActionShed), Reason: fmt.Sprintf("overload: queue depth at bound (%d)", max)})
		return ev
	}
	ev := k.queue.NewEvent(api, predicted, cb)
	k.emit(trace.Record{Op: trace.OpPolicy, API: api, Event: uint64(ev.ID), Predicted: predicted, Action: "schedule"})
	k.emit(trace.Record{Op: trace.OpEnqueue, API: api, Event: uint64(ev.ID), Predicted: predicted, Depth: k.queue.Len()})
	return ev
}

// callCtx assembles the policy evaluation context for a call from this
// scope.
func (k *Kernel) callCtx(api, url string) CallContext {
	b := k.g.Browser()
	ctx := CallContext{
		API:         api,
		URL:         url,
		ThreadID:    k.g.Thread().ID(),
		InWorker:    k.g.IsWorkerScope(),
		PrivateMode: b.PrivateMode,
		TornDown:    b.DocumentTornDown(),
	}
	if url != "" {
		ctx.CrossOrigin = !webnet.SameOrigin(url, b.Origin)
	}
	if ctx.InWorker {
		ctx.WorkerID = k.workerID()
	}
	return ctx
}

// --- Timers, frames, clocks ---

func (k *Kernel) ensureTimerMaps() {
	if k.timerEv == nil {
		k.timerEv = make(map[int]*Event)
	}
	if k.intervals == nil {
		k.intervals = make(map[int]*intervalState)
	}
}

func (k *Kernel) kSetTimeout(cb func(*browser.Global), d sim.Duration) int {
	if cb == nil {
		return 0
	}
	k.interpose()
	k.ensureTimerMaps()
	ev := k.newEvent("setTimeout", k.predict("setTimeout", d), func(g *browser.Global, _ any) {
		cb(g)
	})
	id := k.native.SetTimeout(func(*browser.Global) { k.confirm(ev, nil) }, d)
	k.timerEv[id] = ev
	return id
}

// kClearTimer cancels a setTimeout or requestAnimationFrame registration.
func (k *Kernel) kClearTimer(id int) {
	k.ensureTimerMaps()
	ev, ok := k.timerEv[id]
	if !ok {
		return
	}
	delete(k.timerEv, id)
	k.native.ClearTimeout(id)
	k.native.CancelAnimationFrame(id)
	k.cancelEvent(ev)
}

// intervalState tracks one kernelized setInterval chain.
type intervalState struct {
	cancelled bool
	nativeID  int
	ev        *Event
	pred      sim.Time
}

func (k *Kernel) kSetInterval(cb func(*browser.Global), d sim.Duration) int {
	if cb == nil {
		return 0
	}
	k.ensureTimerMaps()
	delta := k.shared.policy.PredictDelay("setInterval", d)
	st := &intervalState{pred: k.clock.Now()}
	k.nextIntervals++
	id := k.nextIntervals
	k.intervals[id] = st

	var arm func()
	arm = func() {
		st.pred += delta
		ev := k.newEvent("setInterval", st.pred, func(g *browser.Global, _ any) {
			if st.cancelled {
				return
			}
			cb(g)
			if !st.cancelled {
				arm()
			}
		})
		st.ev = ev
		st.nativeID = k.native.SetTimeout(func(*browser.Global) { k.confirm(ev, nil) }, d)
	}
	arm()
	return id
}

func (k *Kernel) kClearInterval(id int) {
	k.ensureTimerMaps()
	st, ok := k.intervals[id]
	if !ok {
		return
	}
	delete(k.intervals, id)
	st.cancelled = true
	k.native.ClearTimeout(st.nativeID)
	k.cancelEvent(st.ev)
}

func (k *Kernel) kPerformanceNow() float64 { return k.clock.DisplayMillis() }

func (k *Kernel) kDateNow() int64 { return k.clock.DisplayUnixMillis() }

func (k *Kernel) kRequestAnimationFrame(cb func(*browser.Global, float64)) int {
	if cb == nil {
		return 0
	}
	k.ensureTimerMaps()
	frame := k.shared.policy.PredictDelay("raf", 0)
	pred := (k.clock.Now()/frame + 1) * frame
	ev := k.newEvent("raf", pred, func(g *browser.Global, _ any) {
		cb(g, k.clock.DisplayMillis())
	})
	id := k.native.RequestAnimationFrame(func(*browser.Global, float64) { k.confirm(ev, nil) })
	k.timerEv[id] = ev
	return id
}

// --- Messaging ---

// envelope is the kernel's overlay on the postMessage channel (§III-E2):
// a type field distinguishes kernel-space from user-space traffic, and the
// event ID links a delivery to its pre-registered pending event.
type envelope struct {
	Kind string // "user" or "sys"
	Op   string // sys operation name
	Data any
	EvID EventID
	Wid  int
}

// kPostMessage handles scope-level postMessage: worker scopes post to the
// parent, the main scope to itself. The receiving kernel's event (already
// registered by us) is confirmed when the native delivery lands.
func (k *Kernel) kPostMessage(data any) {
	k.interpose()
	b := k.g.Browser()
	if k.g.IsFrameScope() {
		// Frame → embedding window: register the delivery with the
		// window's kernel, predicted from this frame kernel's logical
		// state, then let the native path carry the envelope.
		mk := k.shared.byThread[b.Main().ID()]
		if mk == nil {
			k.native.PostMessage(data)
			return
		}
		ev := mk.newEvent("onmessage", mk.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
			m, ok := args.(browser.MessageEvent)
			if !ok {
				return
			}
			mk.deliverUserMessage(g, m)
		})
		k.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID})
		return
	}
	if k.g.IsWorkerScope() {
		ctx := k.callCtx("postMessage", "")
		wid := k.workerID()
		ctx.WorkerID = wid
		if v := k.shared.evaluate(ctx); v.Action == ActionDrop {
			// Policy (CVE-2010-4576): no messages into a torn-down document.
			return
		}
		if k.shared.userTerminatedWorker(wid) {
			// User space terminated this worker; the kernel keeps the
			// thread alive but silences its outbound traffic.
			return
		}
		mk := k.shared.byThread[b.Main().ID()]
		if mk == nil {
			k.native.PostMessage(data)
			return
		}
		stub := k.shared.workers[wid]
		ev := mk.newEvent("onmessage", mk.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
			m, ok := args.(browser.MessageEvent)
			if !ok {
				return
			}
			if stub != nil {
				stub.deliver(g, m)
				return
			}
			mk.deliverUserMessage(g, m)
		})
		k.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID, Wid: wid})
		return
	}
	// Main-scope self post.
	ev := k.newEvent("onmessage", k.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
		m, ok := args.(browser.MessageEvent)
		if !ok {
			return
		}
		k.deliverUserMessage(g, m)
	})
	k.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID})
}

// kSetOnMessage is the onmessage trap for the scope itself (worker `self`
// or window): user handlers are stored in the kernel and invoked by the
// dispatcher.
func (k *Kernel) kSetOnMessage(cb func(*browser.Global, browser.MessageEvent)) {
	k.userOnMessage = cb
	if cb == nil || len(k.msgInbox) == 0 {
		return
	}
	queued := k.msgInbox
	k.msgInbox = nil
	for _, m := range queued {
		cb(k.g, m)
	}
}

// deliverUserMessage hands a dispatched message to the user handler, or
// parks it until one is installed.
func (k *Kernel) deliverUserMessage(g *browser.Global, m browser.MessageEvent) {
	if k.userOnMessage == nil {
		k.msgInbox = append(k.msgInbox, m)
		return
	}
	k.userOnMessage(g, m)
}

// onNativeMessage is the kernel's claim on the scope's real onmessage: it
// unwraps the overlay, routes kernel-space traffic, and confirms the
// pending event for user-space traffic.
func (k *Kernel) onNativeMessage(g *browser.Global, m browser.MessageEvent) {
	env, ok := m.Data.(envelope)
	if !ok {
		// Raw (non-kernel) traffic: deliver through a freshly registered
		// event to keep ordering deterministic.
		ev := k.newEvent("onmessage", k.nextMessagePred(), func(gg *browser.Global, args any) {
			mm, ok := args.(browser.MessageEvent)
			if !ok {
				return
			}
			k.deliverUserMessage(gg, mm)
		})
		k.confirm(ev, m)
		return
	}
	if env.Kind == "sys" {
		k.handleSysMessage(env)
		return
	}
	ev, found := k.queue.Lookup(env.EvID)
	if !found {
		return
	}
	k.confirm(ev, browser.MessageEvent{Data: env.Data, SourceWorker: env.Wid, Transfer: m.Transfer, Origin: m.Origin})
}

// handleSysMessage processes kernel-space traffic (§III-E2: the paper's
// two kernel-space communication types are exchanging a clock and passing
// the thread source; plus the Listing 4 fetch handshake).
func (k *Kernel) handleSysMessage(env envelope) {
	switch env.Op {
	case "clockExchange":
		// The parent kernel shares its logical time when the thread is
		// created, so the child's clock starts aligned with the parent's
		// deterministic schedule rather than at zero.
		if at, ok := env.Data.(int64); ok {
			k.clock.TickTo(sim.Time(at))
		}
	case "pendingChildFetch":
		// The worker kernel announced an in-flight fetch; the main kernel
		// acknowledges so terminate decisions see it (Listing 4).
		k.shared.pendingFetch[env.Wid]++
	case "childFetchDone":
		if k.shared.pendingFetch[env.Wid] > 0 {
			k.shared.pendingFetch[env.Wid]--
		}
		k.shared.maybeFinishDeferredTerminate(env.Wid)
	}
}

// --- Fetch and network ---

// fetchResult carries a completed fetch through event dispatch.
type fetchResult struct {
	resp *browser.Response
	err  error
}

func (k *Kernel) kFetch(url string, opts browser.FetchOptions, cb func(*browser.Response, error)) browser.FetchID {
	k.interpose()
	ctx := k.callCtx("fetch", url)
	wid := k.workerID()
	ctx.WorkerID = wid
	if v := k.shared.evaluate(ctx); v.Action == ActionDeny {
		ev := k.newEvent("fetch", k.predict("fetch", 0), func(g *browser.Global, _ any) {
			if cb != nil {
				cb(nil, fmt.Errorf("%w: fetch %s", ErrPolicyDenied, url))
			}
		})
		k.confirm(ev, nil)
		return 0
	}
	ev := k.newEvent("fetch", k.predict("fetch", 0), func(g *browser.Global, args any) {
		r, ok := args.(fetchResult)
		if !ok {
			return
		}
		if cb != nil {
			cb(r.resp, r.err)
		}
	})
	if wid != 0 {
		// Kernel-space bookkeeping + the Listing 4 handshake to the main
		// kernel, so a user-level terminate can be safely deferred.
		k.sysToMain(envelope{Kind: "sys", Op: "pendingChildFetch", Wid: wid})
	}
	fid := k.native.Fetch(url, opts, func(resp *browser.Response, err error) {
		if wid != 0 {
			k.sysToMain(envelope{Kind: "sys", Op: "childFetchDone", Wid: wid})
		}
		k.confirm(ev, fetchResult{resp: resp, err: err})
	})
	return fid
}

func (k *Kernel) kAbortFetch(id browser.FetchID) {
	// Abort passes through: the defense against CVE-2018-5092 lives in
	// the terminate path (the worker is never natively terminated while a
	// fetch is pending, so the abort is always clean).
	k.native.AbortFetch(id)
}

// sysToMain sends a kernel-space message to the main thread's kernel. In
// this single-process reproduction the channel is synchronous: the shared
// kernel storage is updated directly, which is the same state the paper's
// asynchronous handshake converges to.
func (k *Kernel) sysToMain(env envelope) {
	b := k.g.Browser()
	mk := k.shared.byThread[b.Main().ID()]
	if mk == nil {
		return
	}
	mk.handleSysMessage(env)
}

func (k *Kernel) kXHR(url string) (string, error) {
	ctx := k.callCtx("xhr", url)
	if v := k.shared.evaluate(ctx); v.Action == ActionDeny {
		return "", fmt.Errorf("%w: cross-origin XHR from worker to %s", ErrPolicyDenied, url)
	}
	return k.native.XHR(url)
}

func (k *Kernel) kImportScripts(url string) error {
	ctx := k.callCtx("importScripts", url)
	v := k.shared.evaluate(ctx)
	if v.Action == ActionSanitize || v.Action == ActionDeny {
		// The kernel resolves the load itself: cross-origin failures are
		// reported with a kernel-synthesized message that carries no
		// cross-origin detail (CVE-2015-7215 policy).
		b := k.g.Browser()
		if _, err := b.Net.Lookup(url); err != nil || ctx.CrossOrigin {
			return fmt.Errorf("%w: importScripts", ErrSanitized)
		}
	}
	return k.native.ImportScripts(url)
}

func (k *Kernel) kIndexedDBOpen(name string) (*browser.IDBStore, error) {
	ctx := k.callCtx("indexedDB.open", "")
	if v := k.shared.evaluate(ctx); v.Action == ActionDeny {
		return nil, fmt.Errorf("%w: IndexedDB in private browsing", ErrPolicyDenied)
	}
	return k.native.IndexedDBOpen(name)
}

func (k *Kernel) kWorkerLocation() string {
	ctx := k.callCtx("workerLocation", "")
	b := k.g.Browser()
	wid := k.workerID()
	if stub, ok := k.shared.workers[wid]; ok {
		if final, redirected := b.RedirectTarget(stub.src); redirected {
			ctx.Redirected = !webnet.SameOrigin(final, b.Origin)
		}
	}
	if v := k.shared.evaluate(ctx); v.Action == ActionSanitize && ctx.Redirected {
		// Kernel-synthesized, origin-only location (CVE-2011-1190 policy).
		if stub, ok := k.shared.workers[wid]; ok {
			return b.Origin + "/" + stub.src
		}
		return b.Origin + "/"
	}
	return k.native.WorkerLocation()
}

// --- Resource loads (multi-callback confirmation, §III-D1) ---

func (k *Kernel) kLoadScript(url string, onload func(*browser.Global), onerror func(*browser.Global)) {
	ev := k.newEvent("script-load", k.predict("script-load", 0), func(g *browser.Global, args any) {
		outcome, ok := args.(string)
		if !ok {
			return
		}
		// Confirmation selected which callback survives; the other was
		// deleted from the callback list.
		switch outcome {
		case "load":
			if onload != nil {
				onload(g)
			}
		case "error":
			if onerror != nil {
				onerror(g)
			}
		}
	})
	k.native.LoadScript(url,
		func(*browser.Global) { k.confirm(ev, "load") },
		func(*browser.Global) { k.confirm(ev, "error") },
	)
}

// loadedImage carries the decoded element through dispatch.
type loadedImage struct {
	el *dom.Element
}

func (k *Kernel) kLoadImage(url string, onload func(*browser.Global, *dom.Element), onerror func(*browser.Global)) {
	ev := k.newEvent("image-load", k.predict("image-load", 0), func(g *browser.Global, args any) {
		switch v := args.(type) {
		case loadedImage:
			if onload != nil {
				onload(g, v.el)
			}
		case string:
			if v == "error" && onerror != nil {
				onerror(g)
			}
		}
	})
	k.native.LoadImage(url,
		func(_ *browser.Global, el *dom.Element) { k.confirm(ev, loadedImage{el: el}) },
		func(*browser.Global) { k.confirm(ev, "error") },
	)
}

// --- Frame-driven tick sources (CSS animation, video cues) ---

// tickChain keeps one pending event armed ahead of a periodic native tick
// source so every tick is registration-confirmed like any other event.
type tickChain struct {
	k         *Kernel
	api       string
	delta     sim.Duration
	pred      sim.Time
	ev        *Event
	cancelled bool
	cb        func(*browser.Global, int)
	count     int
}

func (c *tickChain) arm() {
	c.pred += c.delta
	c.ev = c.k.newEvent(c.api, c.pred, func(g *browser.Global, _ any) {
		if c.cancelled {
			return
		}
		c.count++
		cb := c.cb
		if cb != nil {
			cb(g, c.count)
		}
	})
}

// tick confirms the armed event and re-arms for the next native tick.
func (c *tickChain) tick() {
	if c.cancelled {
		return
	}
	ev := c.ev
	c.arm()
	c.k.confirm(ev, nil)
}

func (c *tickChain) cancel() {
	c.cancelled = true
	c.k.cancelEvent(c.ev)
}

func (k *Kernel) kStartCSSAnimation(el *dom.Element, cb func(*browser.Global, int)) int {
	if cb == nil {
		return 0
	}
	if k.animChains == nil {
		k.animChains = make(map[int]*tickChain)
	}
	chain := &tickChain{
		k:     k,
		api:   "animation",
		delta: k.shared.policy.PredictDelay("animation", 0),
		pred:  k.clock.Now(),
		cb:    cb,
	}
	chain.arm()
	id := k.native.StartCSSAnimation(el, func(*browser.Global, int) { chain.tick() })
	k.animChains[id] = chain
	return id
}

func (k *Kernel) kStopCSSAnimation(id int) {
	if chain, ok := k.animChains[id]; ok {
		chain.cancel()
		delete(k.animChains, id)
	}
	k.native.StopCSSAnimation(id)
}

func (k *Kernel) kPlayVideo(cueCb func(*browser.Global, int)) (stop func()) {
	if cueCb == nil {
		return func() {}
	}
	chain := &tickChain{
		k:     k,
		api:   "cue",
		delta: k.shared.policy.PredictDelay("cue", 0),
		pred:  k.clock.Now(),
		cb:    cueCb,
	}
	chain.arm()
	nativeStop := k.native.PlayVideo(func(*browser.Global, int) { chain.tick() })
	return func() {
		chain.cancel()
		nativeStop()
	}
}

// --- Shared buffers ---

// bufAccessSpacing is the serialization interval the kernel enforces
// between cross-thread shared-buffer accesses under ActionSerialize; it
// exceeds the race detector's window by half.
const bufAccessSpacing = 150 * sim.Microsecond

// serializeBufAccess spaces this access after the previous one from any
// thread, routing all accesses through the kernel's single logical queue
// (§III-E2) and eliminating the race of CVE-2014-3194.
func (k *Kernel) serializeBufAccess() {
	now := k.g.Thread().Now()
	earliest := k.shared.lastBufAccess + bufAccessSpacing
	if now < earliest {
		k.g.Busy(earliest - now)
		now = earliest
	}
	k.shared.lastBufAccess = now
}

func (k *Kernel) kSharedBufferRead(buf *browser.SharedBuffer, idx int) (int64, error) {
	ctx := k.callCtx("sharedBuffer.read", "")
	switch v := k.shared.evaluate(ctx); v.Action {
	case ActionDeny, ActionDrop:
		// The hardening stance real browsers took post-Spectre: shared
		// memory is unavailable to scripts.
		return 0, fmt.Errorf("%w: SharedArrayBuffer access", ErrPolicyDenied)
	case ActionSerialize:
		k.serializeBufAccess()
	}
	return k.native.SharedBufferRead(buf, idx)
}

func (k *Kernel) kSharedBufferWrite(buf *browser.SharedBuffer, idx int, val int64) error {
	ctx := k.callCtx("sharedBuffer.write", "")
	switch v := k.shared.evaluate(ctx); v.Action {
	case ActionDeny, ActionDrop:
		return fmt.Errorf("%w: SharedArrayBuffer access", ErrPolicyDenied)
	case ActionSerialize:
		k.serializeBufAccess()
	}
	return k.native.SharedBufferWrite(buf, idx, val)
}

func (k *Kernel) kTransferToParent(data any, buf *browser.SharedBuffer) error {
	wid := k.workerID()
	if wid != 0 && buf != nil {
		k.shared.transferred[wid] = true
	}
	b := k.g.Browser()
	mk := k.shared.byThread[b.Main().ID()]
	stub := k.shared.workers[wid]
	if mk == nil {
		return k.native.TransferToParent(data, buf)
	}
	ev := mk.newEvent("onmessage", mk.nextInboundPred(k.nextOutgoingPred()), func(g *browser.Global, args any) {
		m, ok := args.(browser.MessageEvent)
		if !ok {
			return
		}
		if stub != nil {
			stub.deliver(g, m)
			return
		}
		mk.deliverUserMessage(g, m)
	})
	return k.native.TransferToParent(envelope{Kind: "user", Data: data, EvID: ev.ID, Wid: wid}, buf)
}

// workerID returns the worker ID of this scope, or 0 for the main thread.
func (k *Kernel) workerID() int {
	if !k.g.IsWorkerScope() {
		return 0
	}
	for wid, stub := range k.shared.workers {
		if stub.native.Thread().ID() == k.g.Thread().ID() {
			return wid
		}
	}
	return 0
}
