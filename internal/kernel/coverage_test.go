package kernel_test

import (
	"strings"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/dom"
	"jskernel/internal/kernel"
	"jskernel/internal/sim"
)

// Coverage of the kernel-mediated resource-load, animation, video, DOM
// attribute and date paths, plus accessor surfaces.

func TestKernelLoadScriptBothOutcomes(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.Net.RegisterScript("https://site.example/lib.js", 200_000)
	var loaded, errored bool
	var loadDisplay float64
	b.RunScript("main", func(g *browser.Global) {
		g.LoadScript("https://site.example/lib.js", func(gg *browser.Global) {
			loaded = true
			loadDisplay = gg.PerformanceNow()
		}, nil)
		g.LoadScript("https://site.example/missing.js", nil, func(*browser.Global) {
			errored = true
		})
	})
	run(t, b)
	if !loaded || !errored {
		t.Fatalf("loaded=%v errored=%v", loaded, errored)
	}
	// Resource loads display at the kernel's 10ms load prediction.
	if loadDisplay != 10 {
		t.Fatalf("load displayed at %v, want the 10ms prediction", loadDisplay)
	}
}

func TestKernelLoadImageBothOutcomes(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.Net.RegisterImage("https://site.example/a.png", 80, 80)
	var el *dom.Element
	var errored bool
	b.RunScript("main", func(g *browser.Global) {
		g.LoadImage("https://site.example/a.png", func(_ *browser.Global, loaded *dom.Element) {
			el = loaded
		}, nil)
		g.LoadImage("https://site.example/missing.png", nil, func(*browser.Global) {
			errored = true
		})
	})
	run(t, b)
	if el == nil {
		t.Fatal("image never loaded through kernel")
	}
	if !errored {
		t.Fatal("image error path not taken")
	}
}

func TestKernelCSSAnimationDeterministicFrames(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	var displays []float64
	b.RunScript("main", func(g *browser.Global) {
		var id int
		id = g.StartCSSAnimation(nil, func(gg *browser.Global, frame int) {
			displays = append(displays, gg.PerformanceNow())
			if frame == 3 {
				gg.StopCSSAnimation(id)
			}
		})
	})
	if err := b.RunFor(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(displays) != 3 {
		t.Fatalf("frames = %d, want 3", len(displays))
	}
	// Frame ticks display at evenly spaced logical times.
	if displays[1]-displays[0] != displays[2]-displays[1] {
		t.Fatalf("frame displays not evenly spaced: %v", displays)
	}
}

func TestKernelPlayVideoCuesAndStop(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	cues := 0
	b.RunScript("main", func(g *browser.Global) {
		var stop func()
		stop = g.PlayVideo(func(gg *browser.Global, cue int) {
			cues++
			if cue == 2 {
				stop()
			}
		})
	})
	if err := b.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if cues != 2 {
		t.Fatalf("cues = %d, want 2 (stopped)", cues)
	}
}

func TestKernelDOMAttrAndDate(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	b.RunScript("main", func(g *browser.Global) {
		d := g.Document()
		el := d.CreateElement("div")
		g.DOMSetAttribute(el, "k", "v")
		if v, ok := g.DOMGetAttribute(el, "k"); !ok || v != "v" {
			t.Errorf("attr = %q, %v", v, ok)
		}
		// Date.now is the kernel clock: frozen across busy work.
		before := g.DateNow()
		g.Busy(50 * sim.Millisecond)
		if after := g.DateNow(); after != before {
			t.Errorf("Date.now advanced across busy work: %d -> %d", before, after)
		}
	})
	run(t, b)
	k := shared.KernelFor(b.Main())
	if k == nil || k.Queue() == nil || k.Clock() == nil {
		t.Fatal("kernel accessors broken")
	}
	if shared.Policy() == nil {
		t.Fatal("policy accessor broken")
	}
}

func TestFrameStubAccessors(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.RunScript("main", func(g *browser.Global) {
		f, err := g.CreateFrame("https://w.example")
		if err != nil {
			t.Errorf("frame: %v", err)
			return
		}
		if f.ID() == 0 || f.Origin() != "https://w.example" || !f.Attached() {
			t.Errorf("stub accessors: id=%d origin=%q attached=%v", f.ID(), f.Origin(), f.Attached())
		}
	})
	run(t, b)
}

func TestWorkerStubAccessors(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	b.RegisterWorkerScript("w.js", func(g *browser.Global) {})
	b.RunScript("main", func(g *browser.Global) {
		w, err := g.NewWorker("w.js")
		if err != nil {
			t.Errorf("worker: %v", err)
			return
		}
		if w.ID() == 0 || w.Src() != "w.js" {
			t.Errorf("stub identity: id=%d src=%q", w.ID(), w.Src())
		}
		if w.Thread() == nil || w.Thread() == g.Thread() {
			t.Error("worker thread should be a separate thread")
		}
		_ = w.InFlight()
		w.Release() // idle: released natively
	})
	run(t, b)
}

func TestDecisionJournal(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	b.Net.RegisterJSON("https://other.example/s.json", `{}`)
	b.RegisterWorkerScript("spy.js", func(g *browser.Global) {
		_, _ = g.XHR("https://other.example/s.json") // denied → journaled
	})
	b.RunScript("main", func(g *browser.Global) {
		if _, err := g.NewWorker("spy.js"); err != nil {
			t.Errorf("worker: %v", err)
		}
	})
	run(t, b)
	decisions := shared.Decisions()
	found := false
	for _, d := range decisions {
		if d.API == "xhr" && d.Action == kernel.ActionDeny && d.InWorker && d.CrossOrigin {
			found = true
			if d.String() == "" || d.Seq == 0 {
				t.Error("decision formatting broken")
			}
		}
	}
	if !found {
		t.Fatalf("XHR denial not journaled; journal = %v", decisions)
	}
	var sb strings.Builder
	if err := shared.WriteDecisions(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "deny on xhr in worker#") {
		t.Fatalf("journal dump = %q", sb.String())
	}
}

func TestDecisionJournalEmptyWhenNothingEnforced(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	b.RunScript("main", func(g *browser.Global) {
		g.SetTimeout(func(*browser.Global) {}, sim.Millisecond)
	})
	run(t, b)
	for _, d := range shared.Decisions() {
		// Serialize decisions for buffer ops are fine; anything else on a
		// benign page is a false enforcement.
		if d.Action != kernel.ActionSerialize {
			t.Fatalf("benign page produced enforcement: %v", d)
		}
	}
}

// TestClockExchangeAlignsWorkerClock: §III-E2's kernel-space clock
// exchange — a worker created late starts its logical clock at the
// parent's logical time, not at zero.
func TestClockExchangeAlignsWorkerClock(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	var workerClock float64
	b.RegisterWorkerScript("late-spawn.js", func(g *browser.Global) {
		workerClock = g.PerformanceNow()
	})
	b.RunScript("main", func(g *browser.Global) {
		// Advance the main kernel's logical clock well past zero first.
		g.SetTimeout(func(gg *browser.Global) {
			if _, err := gg.NewWorker("late-spawn.js"); err != nil {
				t.Errorf("worker: %v", err)
			}
		}, 40*sim.Millisecond)
	})
	run(t, b)
	mk := shared.KernelFor(b.Main())
	if mk.Clock().Now() < 40*sim.Millisecond {
		t.Fatalf("main logical clock = %v, test setup broken", mk.Clock().Now())
	}
	if workerClock < 40 {
		t.Fatalf("worker clock started at %v ms; clock exchange did not align it to the parent's ~40ms", workerClock)
	}
}
