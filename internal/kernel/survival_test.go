package kernel_test

import (
	"errors"
	"strings"
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/webnet"
)

// Survival-hardening tests: panicking user callbacks and policies,
// never-confirmed events, and queue overload must all leave the
// dispatcher alive and the incident journaled.

// journalText renders the shared journal for substring assertions.
func journalText(t *testing.T, shared *kernel.Shared) string {
	t.Helper()
	var sb strings.Builder
	if err := shared.WriteDecisions(&sb); err != nil {
		t.Fatalf("WriteDecisions: %v", err)
	}
	return sb.String()
}

func TestCallbackPanicIsolatedAndJournaled(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	injected := false
	shared.SetCallbackFault(func(api string) bool {
		if api == "setTimeout" && !injected {
			injected = true
			return true
		}
		return false
	})
	var fired []int
	b.RunScript("main", func(g *browser.Global) {
		g.SetTimeout(func(*browser.Global) { fired = append(fired, 1) }, 1*sim.Millisecond)
		g.SetTimeout(func(*browser.Global) { fired = append(fired, 2) }, 2*sim.Millisecond)
		g.SetTimeout(func(*browser.Global) { fired = append(fired, 3) }, 3*sim.Millisecond)
	})
	run(t, b)
	// The first dispatch panicked inside the injected fault; the kernel
	// must isolate it and dispatch the remaining events.
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [2 3]", fired)
	}
	k := shared.KernelFor(b.Main())
	if k.Panics() != 1 {
		t.Errorf("Panics = %d, want 1", k.Panics())
	}
	if k.Quarantined() {
		t.Error("a single panic must not quarantine the context")
	}
	j := journalText(t, shared)
	if !strings.Contains(j, "isolate") || !strings.Contains(j, "user-callback panic") {
		t.Errorf("journal missing isolation incident:\n%s", j)
	}
}

func TestRepeatedPanicsQuarantineButDrain(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	shared.SetCallbackFault(func(api string) bool { return api == "setTimeout" })
	const timers = 12
	fired := 0
	b.RunScript("main", func(g *browser.Global) {
		for i := 0; i < timers; i++ {
			g.SetTimeout(func(*browser.Global) { fired++ }, sim.Duration(i+1)*sim.Millisecond)
		}
	})
	run(t, b)
	if fired != 0 {
		t.Fatalf("fired = %d, want 0 (all dispatches injected to panic)", fired)
	}
	k := shared.KernelFor(b.Main())
	if !k.Quarantined() {
		t.Fatal("context not quarantined after repeated panics")
	}
	// Quarantine suppresses callbacks but never wedges the queue: every
	// event must still be retired by the dispatcher.
	if k.Dispatched() != timers {
		t.Errorf("Dispatched = %d, want %d (quarantined events still drain)", k.Dispatched(), timers)
	}
	if k.Queue().Len() != 0 {
		t.Errorf("queue depth = %d after run, want 0", k.Queue().Len())
	}
	if !strings.Contains(journalText(t, shared), "quarantine") {
		t.Error("journal missing quarantine incident")
	}
}

// panickyPolicy delegates to a real policy but panics when evaluating
// one API — the misbehaving-policy scenario.
type panickyPolicy struct {
	kernel.Policy
	api string
}

func (p *panickyPolicy) Evaluate(ctx kernel.CallContext) kernel.Verdict {
	if ctx.API == p.api {
		panic("boom: policy bug")
	}
	return p.Policy.Evaluate(ctx)
}

func TestPolicyPanicFailsClosed(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, &panickyPolicy{Policy: policy.FullDefense(), api: "fetch"})
	b.Net.RegisterScript("https://site.example/ok.js", 1000)
	var gotErr error
	timerRan := false
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch("https://site.example/ok.js", browser.FetchOptions{}, func(_ *browser.Response, err error) {
			gotErr = err
		})
		g.SetTimeout(func(*browser.Global) { timerRan = true }, 5*sim.Millisecond)
	})
	run(t, b)
	if !errors.Is(gotErr, kernel.ErrPolicyDenied) {
		t.Fatalf("fetch err = %v, want fail-closed policy denial", gotErr)
	}
	if !timerRan {
		t.Fatal("dispatcher wedged after policy panic")
	}
	if shared.PolicyPanics() == 0 {
		t.Error("policy panic not counted")
	}
	if !strings.Contains(journalText(t, shared), "recovered policy panic") {
		t.Error("journal missing policy-panic incident")
	}
}

func TestWatchdogExpiresNeverConfirmedEvent(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	shared.SetWatchdogDeadline(200 * sim.Millisecond)
	fired := false
	b.RunScript("main", func(g *browser.Global) {
		// An event that is registered but whose confirmation never
		// arrives — the stuck-native-callback scenario.
		k := shared.KernelOf(g)
		k.Queue().NewEvent("orphan", sim.Time(sim.Millisecond), nil)
		g.SetTimeout(func(*browser.Global) { fired = true }, 5*sim.Millisecond)
	})
	run(t, b)
	if !fired {
		t.Fatal("queue stayed wedged behind a never-confirmed event")
	}
	if b.Sim.Now() < sim.Time(200*sim.Millisecond) {
		t.Fatalf("run ended at %v, before the watchdog deadline", b.Sim.Now())
	}
	j := journalText(t, shared)
	if !strings.Contains(j, "expire") || !strings.Contains(j, "watchdog") {
		t.Errorf("journal missing watchdog expiry:\n%s", j)
	}
}

func TestWatchdogDisabledLeavesQueueBlocked(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	shared.SetWatchdogDeadline(0) // disabled
	fired := false
	b.RunScript("main", func(g *browser.Global) {
		k := shared.KernelOf(g)
		k.Queue().NewEvent("orphan", sim.Time(sim.Millisecond), nil)
		g.SetTimeout(func(*browser.Global) { fired = true }, 5*sim.Millisecond)
	})
	run(t, b)
	if fired {
		t.Fatal("with the watchdog disabled the pending head must block forever")
	}
}

func TestOverloadShedsAndJournals(t *testing.T) {
	b, shared, _ := newKernelBrowser(t, nil)
	shared.SetMaxQueueDepth(3)
	fired := 0
	lateFired := false
	b.RunScript("main", func(g *browser.Global) {
		// Registration from inside a callback, after the queue drains
		// below the bound, must be accepted again.
		g.SetTimeout(func(gg *browser.Global) {
			gg.SetTimeout(func(*browser.Global) { lateFired = true }, sim.Millisecond)
		}, sim.Millisecond)
		for i := 0; i < 10; i++ {
			g.SetTimeout(func(*browser.Global) { fired++ }, sim.Duration(i+1)*sim.Millisecond)
		}
	})
	run(t, b)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (bound of 3 minus the re-arming timer)", fired)
	}
	if !lateFired {
		t.Fatal("post-drain registration was refused — shedding is sticky")
	}
	k := shared.KernelFor(b.Main())
	if k.ShedEvents() != 8 {
		t.Errorf("ShedEvents = %d, want 8", k.ShedEvents())
	}
	if !strings.Contains(journalText(t, shared), "overload: queue depth at bound") {
		t.Error("journal missing shed incidents")
	}
}

// flakyURL fails a URL's first n network transfers with a transient
// error, then succeeds.
type flakyURL struct {
	url  string
	left int
}

func (f *flakyURL) FetchFault(url string) webnet.FaultDecision {
	if url == f.url && f.left > 0 {
		f.left--
		return webnet.FaultDecision{
			Err:          &webnet.TransientError{URL: url, Status: 503, Reason: "flaky"},
			TruncateFrac: 0.5,
		}
	}
	return webnet.FaultDecision{}
}

func TestKernelFetchRetriesTransientFailure(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	const url = "https://site.example/flaky.js"
	b.Net.RegisterScript(url, 1000)
	b.Net.SetFaultInjector(&flakyURL{url: url, left: 2})
	var gotErr error
	called := false
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch(url, browser.FetchOptions{MaxRetries: 3}, func(r *browser.Response, err error) {
			called = true
			gotErr = err
		})
	})
	run(t, b)
	if !called {
		t.Fatal("fetch callback never dispatched")
	}
	if gotErr != nil {
		t.Fatalf("fetch should succeed after retries, got %v", gotErr)
	}
}

func TestKernelFetchRetriesExhausted(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	const url = "https://site.example/flaky.js"
	b.Net.RegisterScript(url, 1000)
	b.Net.SetFaultInjector(&flakyURL{url: url, left: 10})
	var gotErr error
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch(url, browser.FetchOptions{MaxRetries: 2}, func(_ *browser.Response, err error) {
			gotErr = err
		})
	})
	run(t, b)
	if !webnet.IsTransient(gotErr) {
		t.Fatalf("err = %v, want the final transient failure after retries exhaust", gotErr)
	}
	if b.Net.TransientFailures() != 3 {
		t.Errorf("TransientFailures = %d, want 3 (initial + 2 retries)", b.Net.TransientFailures())
	}
}

func TestKernelNoRetryWithoutOptIn(t *testing.T) {
	b, _, _ := newKernelBrowser(t, nil)
	const url = "https://site.example/flaky.js"
	b.Net.RegisterScript(url, 1000)
	b.Net.SetFaultInjector(&flakyURL{url: url, left: 1})
	var gotErr error
	b.RunScript("main", func(g *browser.Global) {
		g.Fetch(url, browser.FetchOptions{}, func(_ *browser.Response, err error) { gotErr = err })
	})
	run(t, b)
	if !webnet.IsTransient(gotErr) {
		t.Fatalf("err = %v, want transient failure surfaced without retries", gotErr)
	}
}
