package kernel

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/webnet"
)

// WorkerStatus tracks a kernel thread's lifecycle (paper §III-E1: the
// thread object's status field).
type WorkerStatus string

// Kernel thread states.
const (
	StatusStarted WorkerStatus = "started" // kernel thread spawned
	StatusReadyW  WorkerStatus = "ready"   // user thread loaded
	StatusClosedW WorkerStatus = "closed"  // user-visibly terminated
)

// WorkerStub is the user-space stub for a worker (the paper's Proxy over
// the Worker object): every access is redirected through the kernel, which
// consults the policy before touching the native worker.
type WorkerStub struct {
	shared *Shared
	id     int
	src    string
	status WorkerStatus
	native browser.Worker

	onMessage func(*browser.Global, browser.MessageEvent)
	onError   func(*browser.Global, *browser.WorkerError)
	inbox     []browser.MessageEvent
}

var _ browser.Worker = (*WorkerStub)(nil)

// ID returns the worker's unique id.
func (w *WorkerStub) ID() int { return w.id }

// Src returns the worker's source name.
func (w *WorkerStub) Src() string { return w.src }

// Status returns the kernel thread's lifecycle state.
func (w *WorkerStub) Status() WorkerStatus { return w.status }

// Alive reports user-visible liveness: after a user-level Terminate the
// stub reports dead even when the kernel retains the native worker.
func (w *WorkerStub) Alive() bool { return w.status != StatusClosedW }

// Thread returns the worker's underlying (kernel-managed) thread.
func (w *WorkerStub) Thread() *browser.Thread { return w.native.Thread() }

// InFlight reports undelivered messages.
func (w *WorkerStub) InFlight() int { return w.native.InFlight() }

// NativeAlive reports whether the kernel still runs the native worker —
// true for retained/deferred terminations (tests use this to verify the
// CVE-2014-1488/2018-5092 policies).
func (w *WorkerStub) NativeAlive() bool { return w.native.Alive() }

// PostMessage sends data to the worker through the kernel scheduler. The
// delivery prediction comes from the SENDER (main) kernel's logical
// state, so dispatch order in the worker never depends on real execution
// time.
func (w *WorkerStub) PostMessage(data any) {
	if !w.Alive() {
		return
	}
	wk := w.shared.byThread[w.native.Thread().ID()]
	mk := w.shared.mainKernel()
	if wk == nil || mk == nil {
		w.native.PostMessage(data)
		return
	}
	ev := wk.newEvent("onmessage", wk.nextInboundPred(mk.nextOutgoingPred()), func(g *browser.Global, args any) {
		m, ok := args.(browser.MessageEvent)
		if !ok {
			return
		}
		wk.deliverUserMessage(g, m)
	})
	w.native.PostMessage(envelope{Kind: "user", Data: data, EvID: ev.ID})
}

// PostMessageTransfer sends data and a transferable to the worker.
func (w *WorkerStub) PostMessageTransfer(data any, buf *browser.SharedBuffer) {
	if !w.Alive() {
		return
	}
	wk := w.shared.byThread[w.native.Thread().ID()]
	mk := w.shared.mainKernel()
	if wk == nil || mk == nil {
		w.native.PostMessageTransfer(data, buf)
		return
	}
	ev := wk.newEvent("onmessage", wk.nextInboundPred(mk.nextOutgoingPred()), func(g *browser.Global, args any) {
		m, ok := args.(browser.MessageEvent)
		if !ok {
			return
		}
		wk.deliverUserMessage(g, m)
	})
	w.native.PostMessageTransfer(envelope{Kind: "user", Data: data, EvID: ev.ID}, buf)
}

// SetOnMessage is the kernel trap on the worker's onmessage setter. The
// policy rejects assignment to terminated workers (CVE-2013-5602) before
// anything reaches the vulnerable native setter.
func (w *WorkerStub) SetOnMessage(cb func(*browser.Global, browser.MessageEvent)) {
	ctx := CallContext{API: "worker.onmessage", WorkerID: w.id, ThreadID: w.shared.mainThreadID(), WorkerTerminated: !w.Alive()}
	if v := w.shared.evaluate(ctx); v.Action == ActionDrop || v.Action == ActionDeny {
		return
	}
	if !w.Alive() {
		// Even under a permissive policy the kernel never touches native
		// state of a dead worker; the assignment is simply recorded.
		w.onMessage = cb
		return
	}
	w.onMessage = cb
	if cb != nil && len(w.inbox) > 0 {
		queued := w.inbox
		w.inbox = nil
		for _, m := range queued {
			cb(w.shared.mainGlobal(), m)
		}
	}
}

// SetOnError installs the parent-side error handler; the kernel wraps it
// so native error text never reaches user space unsanitized.
func (w *WorkerStub) SetOnError(cb func(*browser.Global, *browser.WorkerError)) {
	w.onError = cb
	if cb == nil {
		w.native.SetOnError(nil)
		return
	}
	w.native.SetOnError(func(g *browser.Global, err *browser.WorkerError) {
		cb(g, &browser.WorkerError{Message: ErrSanitized.Error()})
	})
}

// deliver hands a dispatched worker→main message to the user handler.
func (w *WorkerStub) deliver(g *browser.Global, m browser.MessageEvent) {
	if !w.Alive() && w.shared.env.deferredTerm[w.id] {
		// Message from a worker the user already terminated: drop.
		return
	}
	if w.onMessage == nil {
		w.inbox = append(w.inbox, m)
		return
	}
	w.onMessage(g, m)
}

// Terminate is policy-mediated: with pending fetches the native terminate
// is deferred until they drain (CVE-2018-5092); after a buffer transfer the
// native worker is retained forever (CVE-2014-1488); with undelivered
// messages it is deferred until delivery completes (CVE-2014-1719).
func (w *WorkerStub) Terminate() {
	if !w.Alive() {
		return
	}
	ctx := CallContext{
		API:              "worker.terminate",
		WorkerID:         w.id,
		ThreadID:         w.shared.mainThreadID(),
		PendingFetches:   w.shared.env.pendingFetch[w.id] > 0,
		InFlightMessages: w.native.InFlight() > 0 || w.native.Thread().QueueDepth() > 0,
		Transferred:      w.shared.env.transferred[w.id],
	}
	w.status = StatusClosedW
	switch v := w.shared.evaluate(ctx); v.Action {
	case ActionRetain:
		// Kernel keeps the thread alive indefinitely; the user-level
		// worker is gone but nothing is freed (Listing 4's cleanWorker
		// with !this.alive).
	case ActionDefer:
		w.shared.env.deferredTerm[w.id] = true
		w.shared.maybeFinishDeferredTerminate(w.id)
	default:
		w.native.Terminate()
	}
}

// Release is policy-mediated GC: while messages are in flight the kernel
// retains the handle (CVE-2013-6646).
func (w *WorkerStub) Release() {
	ctx := CallContext{
		API:              "worker.release",
		WorkerID:         w.id,
		ThreadID:         w.shared.mainThreadID(),
		InFlightMessages: w.native.InFlight() > 0,
	}
	if v := w.shared.evaluate(ctx); v.Action == ActionRetain || v.Action == ActionDefer || v.Action == ActionDrop {
		if w.native.InFlight() > 0 {
			return
		}
	}
	w.native.Release()
}

// kNewWorker is the kernel's worker constructor (the constructWorker path
// of Listing 5): policy first, then a kernel thread wrapping the user
// thread, registered with the thread manager.
func (k *Kernel) kNewWorker(src string) (browser.Worker, error) {
	ctx := k.callCtx("worker.new", src)
	if v := k.shared.evaluate(ctx); v.Action == ActionSanitize || v.Action == ActionDeny {
		if ctx.CrossOrigin {
			// Kernel-synthesized error with no cross-origin detail
			// (CVE-2014-1487 policy).
			return nil, fmt.Errorf("%w: worker creation", ErrSanitized)
		}
	}
	native, err := k.native.NewWorker(src)
	if err != nil {
		if werr, ok := err.(*browser.WorkerError); ok && !webnet.SameOrigin(werr.URL, k.g.Browser().Origin) {
			return nil, fmt.Errorf("%w: worker creation", ErrSanitized)
		}
		return nil, err
	}
	stub := &WorkerStub{
		shared: k.shared,
		id:     native.ID(),
		src:    src,
		status: StatusStarted,
		native: native,
	}
	k.shared.workers[stub.id] = stub
	// The kernel owns the handle's native message path; worker→main user
	// traffic is confirmed against pre-registered events.
	native.SetOnMessage(func(g *browser.Global, m browser.MessageEvent) {
		mk := k.shared.byThread[k.g.Browser().Main().ID()]
		if mk == nil {
			stub.deliver(g, m)
			return
		}
		env, ok := m.Data.(envelope)
		if !ok {
			ev := mk.newEvent("onmessage", mk.nextMessagePred(), func(gg *browser.Global, args any) {
				mm, ok := args.(browser.MessageEvent)
				if !ok {
					return
				}
				stub.deliver(gg, mm)
			})
			mk.confirm(ev, m)
			return
		}
		if env.Kind == "sys" {
			mk.handleSysMessage(env)
			return
		}
		ev, found := mk.queue.Lookup(env.EvID)
		if !found {
			return
		}
		mk.confirm(ev, browser.MessageEvent{Data: env.Data, SourceWorker: stub.id, Transfer: m.Transfer})
	})
	stub.status = StatusReadyW
	// Kernel-space communication at thread creation (§III-E2): the parent
	// passes its logical clock to the new kernel thread. (The thread
	// source itself travels through the native worker bootstrap, the
	// second communication type.) The Wid names the sync-object key the
	// hb edge pairs on; clockExchange ignores it otherwise.
	k.emitEdge("sys", int64(stub.id), "rel")
	native.PostMessage(envelope{Kind: "sys", Op: "clockExchange", Wid: stub.id, Data: int64(k.clock.Now())})
	return stub, nil
}

// userTerminatedWorker reports whether the worker owning a thread has been
// user-level terminated while the kernel retains it.
func (s *Shared) userTerminatedWorker(wid int) bool {
	stub, ok := s.workers[wid]
	return ok && !stub.Alive()
}

// maybeFinishDeferredTerminate completes a deferred termination once the
// worker has no pending fetches or undelivered messages.
func (s *Shared) maybeFinishDeferredTerminate(wid int) {
	if !s.env.deferredTerm[wid] {
		return
	}
	stub, ok := s.workers[wid]
	if !ok {
		return
	}
	if s.env.pendingFetch[wid] > 0 || stub.native.InFlight() > 0 {
		return
	}
	delete(s.env.deferredTerm, wid)
	stub.native.Terminate()
}

// mainThreadID returns the main thread's ID for trace attribution of
// stub calls (which always originate on the main thread).
func (s *Shared) mainThreadID() int {
	if k := s.mainKernel(); k != nil {
		return k.g.Thread().ID()
	}
	return 0
}

// mainGlobal returns the main thread's global object.
func (s *Shared) mainGlobal() *browser.Global {
	if k := s.mainKernel(); k != nil {
		return k.g
	}
	return nil
}

// mainKernel returns the main thread's kernel instance.
func (s *Shared) mainKernel() *Kernel {
	for _, k := range s.kernels {
		if !k.g.IsWorkerScope() {
			return k
		}
	}
	return nil
}
