package kernel

import (
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/dom"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// This file is the kernel's syscall surface: Install wires the mediated
// bindings table over every new JavaScript context, and the mediated
// entry points that are pure pass-through-with-policy (DOM attributes,
// shared buffers) live here beside it.

// Install kernelizes one global scope: it snapshots the native bindings,
// replaces every entry with the kernel's mediated version, claims the
// scope's native message handler, and freezes the table against user-space
// redefinition.
func (s *Shared) Install(g *browser.Global) {
	k := &Kernel{
		shared: s,
		g:      g,
		native: *g.Bindings(), // snapshot of the unmediated entry points
		queue:  NewEventQueue(),
		clock:  NewClock(s.policy.Quantum()),
	}
	s.kernels[g] = k
	if _, ok := s.byThread[g.Thread().ID()]; !ok {
		// The first scope installed on a thread is its primary scope.
		s.byThread[g.Thread().ID()] = k
	}
	s.installs++
	if s.env.simNow == nil {
		s.env.simNow = g.Browser().Sim.Now
	}
	if s.env.tracer != nil {
		k.scope = s.env.tracer.NextScope()
		kind := "window"
		if g.IsFrameScope() {
			kind = "frame"
		} else if g.IsWorkerScope() {
			kind = "worker"
		}
		// The install record names the active policy, so trace consumers
		// (the obs telemetry report in particular) can label a run with
		// the rule set that governed it without out-of-band context.
		k.emit(trace.Record{Op: trace.OpInstall, API: kind, Reason: s.policy.Name()})
	}

	bn := g.Bindings()
	bn.SetTimeout = k.kSetTimeout
	bn.ClearTimeout = k.kClearTimer
	bn.SetInterval = k.kSetInterval
	bn.ClearInterval = k.kClearInterval
	bn.PerformanceNow = k.kPerformanceNow
	bn.DateNow = k.kDateNow
	bn.RequestAnimationFrame = k.kRequestAnimationFrame
	bn.CancelAnimationFrame = k.kClearTimer
	bn.NewWorker = k.kNewWorker
	bn.PostMessage = k.kPostMessage
	bn.SetOnMessage = k.kSetOnMessage
	bn.Fetch = k.kFetch
	bn.AbortFetch = k.kAbortFetch
	bn.XHR = k.kXHR
	bn.ImportScripts = k.kImportScripts
	bn.IndexedDBOpen = k.kIndexedDBOpen
	bn.WorkerLocation = k.kWorkerLocation
	bn.LoadScript = k.kLoadScript
	bn.LoadImage = k.kLoadImage
	bn.StartCSSAnimation = k.kStartCSSAnimation
	bn.StopCSSAnimation = k.kStopCSSAnimation
	bn.PlayVideo = k.kPlayVideo
	bn.SharedBufferRead = k.kSharedBufferRead
	bn.SharedBufferWrite = k.kSharedBufferWrite
	bn.TransferToParent = k.kTransferToParent
	bn.DOMSetAttribute = k.kDOMSetAttribute
	bn.DOMGetAttribute = k.kDOMGetAttribute
	bn.CreateFrame = k.kCreateFrame

	// The kernel owns the scope's real message handler; user handlers are
	// registered with the kernel and invoked by the dispatcher.
	k.native.SetOnMessage(k.onNativeMessage)

	// Object.freeze analogue: user space can no longer redefine the table.
	g.Freeze()
}

// kDOMSetAttribute mediates attribute writes. The DOM attribute test is
// the paper's worst case (≈21% slower) because every access traverses the
// kernel and the website JavaScript.
func (k *Kernel) kDOMSetAttribute(el *dom.Element, name, value string) {
	k.interpose()
	k.native.DOMSetAttribute(el, name, value)
}

// kDOMGetAttribute mediates attribute reads.
func (k *Kernel) kDOMGetAttribute(el *dom.Element, name string) (string, bool) {
	k.interpose()
	return k.native.DOMGetAttribute(el, name)
}

// --- Shared buffers ---

// bufAccessSpacing is the serialization interval the kernel enforces
// between cross-thread shared-buffer accesses under ActionSerialize; it
// exceeds the race detector's window by half.
const bufAccessSpacing = 150 * sim.Microsecond

// serializeBufAccess spaces this access after the previous one from any
// thread, routing all accesses through the kernel's single logical queue
// (§III-E2) and eliminating the race of CVE-2014-3194.
func (k *Kernel) serializeBufAccess() {
	now := k.g.Thread().Now()
	earliest := k.shared.env.lastBufAccess + bufAccessSpacing
	if now < earliest {
		k.g.Busy(earliest - now)
		now = earliest
	}
	k.shared.env.lastBufAccess = now
}

func (k *Kernel) kSharedBufferRead(buf *browser.SharedBuffer, idx int) (int64, error) {
	ctx := k.callCtx("sharedBuffer.read", "")
	switch v := k.shared.evaluate(ctx); v.Action {
	case ActionDeny, ActionDrop:
		// The hardening stance real browsers took post-Spectre: shared
		// memory is unavailable to scripts.
		return 0, fmt.Errorf("%w: SharedArrayBuffer access", ErrPolicyDenied)
	case ActionSerialize:
		k.serializeBufAccess()
		// The serialization queue acts as a per-buffer lock: the acquire/
		// release pair orders every kernel-mediated access for the hb
		// analysis, mirroring the real mutual exclusion §III-E2 enforces.
		k.emitEdge("sab-lock", buf.ID, "acq")
		defer k.emitEdge("sab-lock", buf.ID, "rel")
	}
	return k.native.SharedBufferRead(buf, idx)
}

func (k *Kernel) kSharedBufferWrite(buf *browser.SharedBuffer, idx int, val int64) error {
	ctx := k.callCtx("sharedBuffer.write", "")
	switch v := k.shared.evaluate(ctx); v.Action {
	case ActionDeny, ActionDrop:
		return fmt.Errorf("%w: SharedArrayBuffer access", ErrPolicyDenied)
	case ActionSerialize:
		k.serializeBufAccess()
		k.emitEdge("sab-lock", buf.ID, "acq")
		defer k.emitEdge("sab-lock", buf.ID, "rel")
	}
	return k.native.SharedBufferWrite(buf, idx, val)
}

// workerID returns the worker ID of this scope, or 0 for the main thread.
func (k *Kernel) workerID() int {
	if !k.g.IsWorkerScope() {
		return 0
	}
	for wid, stub := range k.shared.workers {
		if stub.native.Thread().ID() == k.g.Thread().ID() {
			return wid
		}
	}
	return 0
}
