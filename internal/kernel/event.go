// Package kernel implements JSKERNEL, the paper's contribution: a
// privileged layer between website JavaScript and the browser's native
// APIs. Kernel objects (an event queue and a logical clock), a two-stage
// scheduler (registration with a predicted time, then confirmation), a
// dispatcher that releases events strictly in predicted-time order, and a
// thread manager wrapping web workers together guarantee that everything
// user space can observe — callback order and clock readings — is a
// function of predicted (logical) times only, never of real execution
// times. That severs every implicit-clock side channel and lets
// per-vulnerability policies break the triggering sequences of web
// concurrency attacks.
package kernel

import (
	"container/heap"
	"fmt"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
)

// EventID names a kernel event (paper §III-C1).
type EventID uint64

// Status is a kernel event's lifecycle state.
type Status int

// Event lifecycle states. Registration creates a Pending event; the native
// callback confirms it (Ready); the dispatcher runs and retires it (Done);
// user cancellation marks it Cancelled.
const (
	StatusPending Status = iota + 1
	StatusReady
	StatusCancelled
	StatusDone
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusReady:
		return "ready"
	case StatusCancelled:
		return "cancelled"
	case StatusDone:
		return "done"
	default:
		return "invalid"
	}
}

// Event is one kernel-scheduled occurrence: a timer expiry, an animation
// frame, a message delivery, a fetch completion.
type Event struct {
	ID        EventID
	API       string // registration type, e.g. "setTimeout", "onmessage"
	Status    Status
	Predicted sim.Time // logical time the scheduler assigned

	// Callback runs when the dispatcher releases the event. Confirmation
	// fills in Args (and, for multi-callback registrations such as
	// onload/onerror, selects which callback survives).
	Callback func(g *browser.Global, args any)
	Args     any

	seq   uint64
	index int // heap index, -1 when not queued

	// Watchdog bookkeeping: while this event is a pending queue head, a
	// simulator alarm is armed to force-expire it if confirmation never
	// arrives (see Kernel.armWatchdog).
	watchdogArmed bool
	watchdogID    sim.EventID
}

// EventQueue is the kernel's priority queue of events ordered by
// (Predicted, registration sequence). It supports the paper's push / pop /
// top / remove / lookup API.
type EventQueue struct {
	heap   eventHeap
	byID   map[EventID]*Event
	nextID EventID
	seq    uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue {
	return &EventQueue{byID: make(map[EventID]*Event)}
}

// Len reports the number of queued events.
func (q *EventQueue) Len() int { return len(q.heap) }

// NewEvent allocates a registered, pending event with a predicted time and
// pushes it. Events must be created through here so IDs and tie-breaking
// sequence numbers stay unique.
func (q *EventQueue) NewEvent(api string, predicted sim.Time, cb func(*browser.Global, any)) *Event {
	q.nextID++
	q.seq++
	ev := &Event{
		ID:        q.nextID,
		API:       api,
		Status:    StatusPending,
		Predicted: predicted,
		Callback:  cb,
		seq:       q.seq,
		index:     -1,
	}
	q.push(ev)
	return ev
}

// AllocID reserves the next event ID without queueing anything. Shed
// registrations use it so even refused events are identifiable in the
// journal and the trace.
func (q *EventQueue) AllocID() EventID {
	q.nextID++
	return q.nextID
}

// push inserts an event into the heap.
func (q *EventQueue) push(ev *Event) {
	heap.Push(&q.heap, ev)
	q.byID[ev.ID] = ev
}

// Top returns the earliest-predicted event without removing it, or nil.
func (q *EventQueue) Top() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest-predicted event, or nil.
func (q *EventQueue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	popped := heap.Pop(&q.heap)
	ev, ok := popped.(*Event)
	if !ok {
		return nil
	}
	delete(q.byID, ev.ID)
	return ev
}

// Lookup finds a queued event by ID.
func (q *EventQueue) Lookup(id EventID) (*Event, bool) {
	ev, ok := q.byID[id]
	return ev, ok
}

// Remove deletes an event from the queue regardless of its predicted time.
// It reports whether the event was queued.
func (q *EventQueue) Remove(id EventID) bool {
	ev, ok := q.byID[id]
	if !ok || ev.index < 0 {
		return false
	}
	heap.Remove(&q.heap, ev.index)
	delete(q.byID, id)
	return true
}

// Validate checks the internal heap invariant; tests use it as a property
// oracle.
func (q *EventQueue) Validate() error {
	for i := range q.heap {
		l, r := 2*i+1, 2*i+2
		if l < len(q.heap) && q.heap.Less(l, i) {
			return fmt.Errorf("kernel: heap violation at %d/%d", i, l)
		}
		if r < len(q.heap) && q.heap.Less(r, i) {
			return fmt.Errorf("kernel: heap violation at %d/%d", i, r)
		}
		if q.heap[i].index != i {
			return fmt.Errorf("kernel: stale index at %d", i)
		}
	}
	return nil
}

// eventHeap orders events by (Predicted, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Predicted != h[j].Predicted {
		return h[i].Predicted < h[j].Predicted
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
