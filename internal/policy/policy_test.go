package policy

import (
	"encoding/json"
	"testing"

	"jskernel/internal/kernel"
	"jskernel/internal/sim"
)

func TestConditionMatches(t *testing.T) {
	cases := []struct {
		name string
		cond Condition
		ctx  kernel.CallContext
		want bool
	}{
		{"empty matches anything", Condition{}, kernel.CallContext{API: "fetch"}, true},
		{"api match", Condition{API: "xhr"}, kernel.CallContext{API: "xhr"}, true},
		{"api mismatch", Condition{API: "xhr"}, kernel.CallContext{API: "fetch"}, false},
		{
			"bool fields must all match",
			Condition{InWorker: boolPtr(true), CrossOrigin: boolPtr(true)},
			kernel.CallContext{InWorker: true, CrossOrigin: false},
			false,
		},
		{
			"bool fields all matching",
			Condition{InWorker: boolPtr(true), CrossOrigin: boolPtr(true)},
			kernel.CallContext{InWorker: true, CrossOrigin: true},
			true,
		},
		{
			"nil pointer is don't-care",
			Condition{PrivateMode: boolPtr(false)},
			kernel.CallContext{PrivateMode: false, TornDown: true},
			true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.cond.Matches(tc.ctx); got != tc.want {
				t.Fatalf("Matches = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestEvaluateFirstMatchWins(t *testing.T) {
	s := &Spec{
		PolicyName: "test",
		Rules: []Rule{
			{When: Condition{API: "xhr", InWorker: boolPtr(true)}, Action: kernel.ActionDeny},
			{When: Condition{API: "xhr"}, Action: kernel.ActionSanitize},
		},
	}
	if v := s.Evaluate(kernel.CallContext{API: "xhr", InWorker: true}); v.Action != kernel.ActionDeny {
		t.Fatalf("verdict = %v, want deny", v.Action)
	}
	if v := s.Evaluate(kernel.CallContext{API: "xhr"}); v.Action != kernel.ActionSanitize {
		t.Fatalf("verdict = %v, want sanitize (second rule)", v.Action)
	}
	if v := s.Evaluate(kernel.CallContext{API: "fetch"}); v.Action != kernel.ActionAllow {
		t.Fatalf("verdict = %v, want allow (no match)", v.Action)
	}
}

func TestQuantumAndLoadPredictionDefaults(t *testing.T) {
	s := &Spec{PolicyName: "x"}
	if s.Quantum() != sim.Millisecond {
		t.Fatalf("default quantum = %v", s.Quantum())
	}
	if s.LoadPrediction() != 10*sim.Millisecond {
		t.Fatalf("default load prediction = %v", s.LoadPrediction())
	}
	s.QuantumMicros = 500
	if s.Quantum() != 500*sim.Microsecond {
		t.Fatalf("quantum = %v", s.Quantum())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := FullDefense()
	data, err := json.MarshalIndent(orig, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if parsed.PolicyName != orig.PolicyName || len(parsed.Rules) != len(orig.Rules) {
		t.Fatalf("round trip lost data: %s vs %s, %d vs %d rules",
			parsed.PolicyName, orig.PolicyName, len(parsed.Rules), len(orig.Rules))
	}
	for i := range orig.Rules {
		if parsed.Rules[i].Action != orig.Rules[i].Action {
			t.Fatalf("rule %d action changed in round trip", i)
		}
		if parsed.Rules[i].When.API != orig.Rules[i].When.API {
			t.Fatalf("rule %d condition changed in round trip", i)
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Fatal("bad JSON should fail")
	}
	if _, err := Parse([]byte(`{"deterministic":true}`)); err == nil {
		t.Fatal("missing name should fail")
	}
	if _, err := Parse([]byte(`{"name":"x","rules":[{"when":{},"action":"explode"}]}`)); err == nil {
		t.Fatal("unknown action should fail")
	}
}

func TestDeterministicPolicy(t *testing.T) {
	d := Deterministic()
	if !d.Deterministic() {
		t.Fatal("deterministic policy reports false")
	}
	if len(d.Rules) != 0 {
		t.Fatal("general policy should carry no call rules")
	}
	if v := d.Evaluate(kernel.CallContext{API: "xhr", InWorker: true, CrossOrigin: true}); v.Action != kernel.ActionAllow {
		t.Fatal("general policy should allow calls")
	}
}

func TestForCVEAllIDs(t *testing.T) {
	for _, id := range CVEIDs() {
		s, err := ForCVE(id)
		if err != nil {
			t.Errorf("ForCVE(%s): %v", id, err)
			continue
		}
		if len(s.Rules) == 0 {
			t.Errorf("ForCVE(%s) has no rules", id)
		}
		for _, r := range s.Rules {
			if r.CVE != id {
				t.Errorf("ForCVE(%s) rule tagged %q", id, r.CVE)
			}
		}
	}
	if _, err := ForCVE("CVE-9999-0001"); err == nil {
		t.Fatal("unknown CVE should error")
	}
}

func TestFullDefenseCoversAllCVEs(t *testing.T) {
	full := FullDefense()
	covered := make(map[string]bool)
	for _, r := range full.Rules {
		covered[r.CVE] = true
	}
	for _, id := range CVEIDs() {
		if !covered[id] {
			t.Errorf("FullDefense missing rules for %s", id)
		}
	}
	// Terminate ordering: the retain rule (CVE-2014-1488) must come before
	// any defer rule so transferred workers are retained, not deferred.
	firstTerminate := ""
	for _, r := range full.Rules {
		if r.When.API == "worker.terminate" {
			firstTerminate = r.CVE
			break
		}
	}
	if firstTerminate != "CVE-2014-1488" {
		t.Fatalf("first terminate rule is %s, want the retain rule", firstTerminate)
	}
}

func TestFullDefenseVerdicts(t *testing.T) {
	full := FullDefense()
	cases := []struct {
		name string
		ctx  kernel.CallContext
		want kernel.Action
	}{
		{"worker cross-origin xhr", kernel.CallContext{API: "xhr", InWorker: true, CrossOrigin: true}, kernel.ActionDeny},
		{"main cross-origin xhr unaffected", kernel.CallContext{API: "xhr", CrossOrigin: true}, kernel.ActionAllow},
		{"private idb", kernel.CallContext{API: "indexedDB.open", PrivateMode: true}, kernel.ActionDeny},
		{"normal idb", kernel.CallContext{API: "indexedDB.open"}, kernel.ActionAllow},
		{"terminate with transfer", kernel.CallContext{API: "worker.terminate", Transferred: true, PendingFetches: true}, kernel.ActionRetain},
		{"terminate with fetch", kernel.CallContext{API: "worker.terminate", PendingFetches: true}, kernel.ActionDefer},
		{"terminate clean", kernel.CallContext{API: "worker.terminate"}, kernel.ActionAllow},
		{"onmessage on dead worker", kernel.CallContext{API: "worker.onmessage", WorkerTerminated: true}, kernel.ActionDrop},
		{"postMessage after teardown", kernel.CallContext{API: "postMessage", TornDown: true}, kernel.ActionDrop},
		{"buffer ops serialized", kernel.CallContext{API: "sharedBuffer.write"}, kernel.ActionSerialize},
		{"redirected location", kernel.CallContext{API: "workerLocation", Redirected: true}, kernel.ActionSanitize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v := full.Evaluate(tc.ctx); v.Action != tc.want {
				t.Fatalf("verdict = %v, want %v", v.Action, tc.want)
			}
		})
	}
}

func TestCombine(t *testing.T) {
	a, err := ForCVE("CVE-2013-1714")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForCVE("CVE-2017-7843")
	if err != nil {
		t.Fatal(err)
	}
	c := Combine("merged", a, nil, b)
	if c.PolicyName != "merged" {
		t.Fatalf("name = %s", c.PolicyName)
	}
	if len(c.Rules) != len(a.Rules)+len(b.Rules) {
		t.Fatalf("rules = %d", len(c.Rules))
	}
	if c.Quantum() != a.Quantum() {
		t.Fatal("first spec's scheduling params should win")
	}
}
