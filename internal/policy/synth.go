package policy

import (
	"fmt"
	"strings"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/sim"
)

// This file implements the paper's stated future work (§VI): automatically
// extracting a defensive policy for a new vulnerability. Given a recorded
// native-layer trace of an exploit run (browser.Recorder), Synthesize
// identifies the dangerous condition each trigger-shaped event represents
// and compiles a rule that breaks the triggering sequence — the same
// reasoning the paper describes an expert performing manually on Bugzilla
// reports (§II-B3), mechanized over the trace vocabulary.

// SynthFinding explains one synthesized rule.
type SynthFinding struct {
	Rule     Rule
	Evidence browser.TraceEvent
	Analysis string
}

// raceWindow mirrors the race detector's overlap window.
const synthRaceWindow = 100 * sim.Microsecond

// Synthesize inspects an exploit trace and returns a policy whose rules
// prevent every dangerous condition observed, layered on deterministic
// scheduling. It errors when the trace exhibits nothing to defend
// against.
func Synthesize(name string, events []browser.TraceEvent) (*Spec, []SynthFinding, error) {
	var findings []SynthFinding
	add := func(r Rule, ev browser.TraceEvent, analysis string) {
		findings = append(findings, SynthFinding{Rule: r, Evidence: ev, Analysis: analysis})
	}

	// State mirrored from the trace for multi-event conditions.
	pendingFetchWorkers := make(map[int]bool)
	transferredBufs := make(map[int64]bool)
	type bufAccess struct {
		threadID int
		at       sim.Time
		write    bool
	}
	lastBufAccess := make(map[int64]bufAccess)

	for _, ev := range events {
		switch ev.Kind {
		case browser.TraceWorkerTerminated:
			if strings.Contains(ev.Detail, "pending-fetch") {
				pendingFetchWorkers[ev.WorkerID] = true
				add(Rule{
					When:   Condition{API: "worker.terminate", PendingFetches: boolPtr(true)},
					Action: kernel.ActionDefer,
					Reason: "synthesized: worker terminated while a fetch was pending",
				}, ev, "a later abort or completion would touch freed request state; defer the native terminate until the fetch drains")
			}
			if strings.Contains(ev.Detail, "pending-messages") {
				add(Rule{
					When:   Condition{API: "worker.terminate", InFlightMessages: boolPtr(true)},
					Action: kernel.ActionDefer,
					Reason: "synthesized: worker terminated with messages in flight",
				}, ev, "in-flight deliveries reference worker state; defer the native terminate until delivery completes")
			}

		case browser.TraceFetchAbort:
			if ev.Detail == "orphaned" {
				add(Rule{
					When:   Condition{API: "worker.terminate", PendingFetches: boolPtr(true)},
					Action: kernel.ActionDefer,
					Reason: "synthesized: abort signal reached a fetch whose worker was already terminated",
				}, ev, "the use-after-free fires at abort time, but the root cause is the earlier termination; defer it")
			}

		case browser.TraceIndexedDBPut:
			if ev.Detail == "private-mode" {
				add(Rule{
					When:   Condition{API: "indexedDB.open", PrivateMode: boolPtr(true)},
					Action: kernel.ActionDeny,
					Reason: "synthesized: IndexedDB write persisted during private browsing",
				}, ev, "private sessions must not reach persistent storage; deny the open call")
			}

		case browser.TraceNavigationError:
			switch ev.Detail {
			case "leaky-error":
				add(Rule{
					When:   Condition{API: "importScripts", CrossOrigin: boolPtr(true)},
					Action: kernel.ActionSanitize,
					Reason: "synthesized: importScripts error text disclosed cross-origin detail",
				}, ev, "replace the native error with a kernel-synthesized message carrying no cross-origin information")
			case "location-leak":
				add(Rule{
					When:   Condition{API: "workerLocation", Redirected: boolPtr(true)},
					Action: kernel.ActionSanitize,
					Reason: "synthesized: worker location exposed a cross-origin redirect target",
				}, ev, "expose only the origin-relative source, never the resolved redirect")
			}

		case browser.TraceWorkerError:
			if ev.Detail == "cross-origin-create" {
				add(Rule{
					When:   Condition{API: "worker.new", CrossOrigin: boolPtr(true)},
					Action: kernel.ActionSanitize,
					Reason: "synthesized: worker-creation error text disclosed cross-origin detail",
				}, ev, "fail the creation with a sanitized error before the native constructor runs")
			}

		case browser.TraceOnMessageSet:
			if ev.Detail == "null-deref" {
				add(Rule{
					When:   Condition{API: "worker.onmessage", WorkerTerminated: boolPtr(true)},
					Action: kernel.ActionDrop,
					Reason: "synthesized: onmessage assigned to a terminated worker",
				}, ev, "trap the setter; assignments to dead workers never reach native state")
			}

		case browser.TraceXHR:
			if ev.Detail == "cross-origin-worker" {
				add(Rule{
					When:   Condition{API: "xhr", InWorker: boolPtr(true), CrossOrigin: boolPtr(true)},
					Action: kernel.ActionDeny,
					Reason: "synthesized: worker XHR crossed origins",
				}, ev, "check origins for all requests coming from a web worker")
			}

		case browser.TraceMessageDelivered:
			switch ev.Detail {
			case "after-teardown":
				add(Rule{
					When:   Condition{API: "postMessage", TornDown: boolPtr(true)},
					Action: kernel.ActionDrop,
					Reason: "synthesized: worker message delivered into a torn-down document",
				}, ev, "drop worker messages addressed to documents that no longer exist")
			case "released-use":
				add(Rule{
					When:   Condition{API: "worker.release", InFlightMessages: boolPtr(true)},
					Action: kernel.ActionRetain,
					Reason: "synthesized: collected worker handle used by an in-flight delivery",
				}, ev, "the kernel must retain worker references until deliveries drain")
			}

		case browser.TraceTransferable:
			if ev.Detail == "to-parent" {
				transferredBufs[ev.Value] = true
			}

		case browser.TraceSharedBufferOp:
			if strings.Contains(ev.Detail, "use-after-free") && transferredBufs[ev.Value] {
				add(Rule{
					When:   Condition{API: "worker.terminate", Transferred: boolPtr(true)},
					Action: kernel.ActionRetain,
					Reason: "synthesized: transferred buffer freed with its worker, then used",
				}, ev, "a worker that transferred a buffer out is only terminated at the user level")
			}
			write := strings.HasPrefix(ev.Detail, "write")
			if prev, ok := lastBufAccess[ev.Value]; ok &&
				prev.threadID != ev.ThreadID && ev.At-prev.at <= synthRaceWindow && (write || prev.write) {
				for _, api := range []string{"sharedBuffer.read", "sharedBuffer.write"} {
					add(Rule{
						When:   Condition{API: api},
						Action: kernel.ActionSerialize,
						Reason: "synthesized: overlapping cross-thread shared-buffer accesses",
					}, ev, "route every access through the kernel's serializing queue")
				}
			}
			lastBufAccess[ev.Value] = bufAccess{threadID: ev.ThreadID, at: ev.At, write: write}
		}
	}

	if len(findings) == 0 {
		return nil, nil, fmt.Errorf("policy: trace of %d events exhibits no dangerous condition to synthesize a rule from", len(events))
	}

	spec := Deterministic()
	spec.PolicyName = name
	spec.Description = "automatically synthesized from an exploit trace"
	seen := make(map[string]bool)
	deduped := findings[:0]
	for _, f := range findings {
		key := ruleKey(f.Rule)
		if seen[key] {
			continue
		}
		seen[key] = true
		spec.Rules = append(spec.Rules, f.Rule)
		deduped = append(deduped, f)
	}
	// Retain rules must precede defer rules for the same API so the
	// stronger remedy wins (same ordering constraint as FullDefense).
	sortTerminateRules(spec.Rules)
	return spec, deduped, nil
}

// ruleKey fingerprints a rule for deduplication.
func ruleKey(r Rule) string {
	b := func(p *bool) string {
		if p == nil {
			return "-"
		}
		if *p {
			return "t"
		}
		return "f"
	}
	w := r.When
	return strings.Join([]string{
		string(r.Action), w.API,
		b(w.InWorker), b(w.CrossOrigin), b(w.PrivateMode), b(w.TornDown),
		b(w.WorkerTerminated), b(w.PendingFetches), b(w.InFlightMessages),
		b(w.Transferred), b(w.Redirected),
	}, "|")
}

// sortTerminateRules stably moves retain-actions ahead of defer-actions.
func sortTerminateRules(rules []Rule) {
	ordered := make([]Rule, 0, len(rules))
	var deferred []Rule
	for _, r := range rules {
		if r.Action == kernel.ActionDefer {
			deferred = append(deferred, r)
			continue
		}
		ordered = append(ordered, r)
	}
	copy(rules, append(ordered, deferred...))
}
