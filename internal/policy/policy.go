// Package policy implements JSKernel security policies: JSON-codable rule
// sets evaluated by the kernel on every intercepted API call, plus the
// scheduling parameters (quantum, load prediction) that drive deterministic
// event scheduling.
//
// Two kinds of policy appear in the paper (§II-B3): a *general*
// deterministic-scheduling policy that defeats every implicit-clock timing
// attack, and *specific* manually written policies that break the
// triggering sequence of an individual CVE. Both are expressed here as
// Spec values; Combine merges them into the full JSKernel defense.
package policy

import (
	"encoding/json"
	"fmt"

	"jskernel/internal/kernel"
	"jskernel/internal/sim"
)

// Condition selects the calls a rule applies to. The zero value matches
// everything; nil pointer fields are "don't care" (so conditions stay
// sparse in JSON, like the paper's policy objects).
type Condition struct {
	API              string `json:"api,omitempty"` // exact match; "" = any API
	InWorker         *bool  `json:"inWorker,omitempty"`
	CrossOrigin      *bool  `json:"crossOrigin,omitempty"`
	PrivateMode      *bool  `json:"privateMode,omitempty"`
	TornDown         *bool  `json:"tornDown,omitempty"`
	WorkerTerminated *bool  `json:"workerTerminated,omitempty"`
	PendingFetches   *bool  `json:"pendingFetches,omitempty"`
	InFlightMessages *bool  `json:"inFlightMessages,omitempty"`
	Transferred      *bool  `json:"transferred,omitempty"`
	Redirected       *bool  `json:"redirected,omitempty"`
}

// Matches reports whether the condition selects the call.
func (c Condition) Matches(ctx kernel.CallContext) bool {
	if c.API != "" && c.API != ctx.API {
		return false
	}
	checks := []struct {
		want *bool
		got  bool
	}{
		{c.InWorker, ctx.InWorker},
		{c.CrossOrigin, ctx.CrossOrigin},
		{c.PrivateMode, ctx.PrivateMode},
		{c.TornDown, ctx.TornDown},
		{c.WorkerTerminated, ctx.WorkerTerminated},
		{c.PendingFetches, ctx.PendingFetches},
		{c.InFlightMessages, ctx.InFlightMessages},
		{c.Transferred, ctx.Transferred},
		{c.Redirected, ctx.Redirected},
	}
	for _, ch := range checks {
		if ch.want != nil && *ch.want != ch.got {
			return false
		}
	}
	return true
}

// Rule pairs a condition with the kernel action to take when it matches.
type Rule struct {
	When   Condition     `json:"when"`
	Action kernel.Action `json:"action"`
	Reason string        `json:"reason,omitempty"`
	CVE    string        `json:"cve,omitempty"` // vulnerability this rule defends
}

// Spec is a serializable policy: scheduling parameters plus an ordered
// rule list (first match wins). It implements kernel.Policy.
type Spec struct {
	PolicyName           string `json:"name"`
	Description          string `json:"description,omitempty"`
	Det                  bool   `json:"deterministic"`
	QuantumMicros        int64  `json:"quantumMicros"`
	LoadPredictionMicros int64  `json:"loadPredictionMicros"`
	Rules                []Rule `json:"rules,omitempty"`
}

var _ kernel.Policy = (*Spec)(nil)

// Name implements kernel.Policy.
func (s *Spec) Name() string { return s.PolicyName }

// Deterministic implements kernel.Policy.
func (s *Spec) Deterministic() bool { return s.Det }

// Quantum implements kernel.Policy.
func (s *Spec) Quantum() sim.Duration {
	if s.QuantumMicros <= 0 {
		return sim.Millisecond
	}
	return sim.Duration(s.QuantumMicros) * sim.Microsecond
}

// LoadPrediction returns the deterministic prediction for resource loads.
func (s *Spec) LoadPrediction() sim.Duration {
	if s.LoadPredictionMicros <= 0 {
		return 10 * sim.Millisecond
	}
	return sim.Duration(s.LoadPredictionMicros) * sim.Microsecond
}

// PredictDelay implements kernel.Policy with the standard deterministic
// prediction table.
func (s *Spec) PredictDelay(api string, requested sim.Duration) sim.Duration {
	return kernel.DefaultPredictDelay(api, requested, s.Quantum(), s.LoadPrediction())
}

// Evaluate implements kernel.Policy: first matching rule wins; no match
// allows the call.
func (s *Spec) Evaluate(ctx kernel.CallContext) kernel.Verdict {
	for _, r := range s.Rules {
		if r.When.Matches(ctx) {
			return kernel.Verdict{Action: r.Action, Reason: r.Reason}
		}
	}
	return kernel.Allow
}

// MarshalJSON uses the plain struct encoding (Spec has no cycles); defined
// explicitly so the format is a documented, stable contract.
func (s *Spec) MarshalJSON() ([]byte, error) {
	type alias Spec
	return json.Marshal((*alias)(s))
}

// Parse decodes a policy spec from its JSON form.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("policy: parse: %w", err)
	}
	if s.PolicyName == "" {
		return nil, fmt.Errorf("policy: missing name")
	}
	for i, r := range s.Rules {
		switch r.Action {
		case kernel.ActionAllow, kernel.ActionDeny, kernel.ActionSanitize,
			kernel.ActionDefer, kernel.ActionRetain, kernel.ActionDrop,
			kernel.ActionSerialize:
		default:
			return nil, fmt.Errorf("policy: rule %d has unknown action %q", i, r.Action)
		}
	}
	return &s, nil
}

// Combine merges several specs into one: the first spec's scheduling
// parameters win, and rule lists concatenate in order.
func Combine(name string, specs ...*Spec) *Spec {
	out := &Spec{PolicyName: name, Det: true}
	for i, s := range specs {
		if s == nil {
			continue
		}
		if i == 0 || out.QuantumMicros == 0 {
			out.QuantumMicros = s.QuantumMicros
			out.LoadPredictionMicros = s.LoadPredictionMicros
		}
		out.Rules = append(out.Rules, s.Rules...)
	}
	return out
}

// boolPtr returns a pointer to b, for sparse conditions.
func boolPtr(b bool) *bool { return &b }
