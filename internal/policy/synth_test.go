package policy

import (
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/kernel"
	"jskernel/internal/sim"
)

// Direct unit tests of the trace→rule compiler: one table entry per
// dangerous condition in the trace vocabulary.

func synthOne(t *testing.T, evs ...browser.TraceEvent) (*Spec, []SynthFinding) {
	t.Helper()
	spec, findings, err := Synthesize("t", evs)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	return spec, findings
}

func TestSynthesizeTriggerVocabulary(t *testing.T) {
	cases := []struct {
		name       string
		events     []browser.TraceEvent
		wantAPI    string
		wantAction kernel.Action
	}{
		{
			"terminate with pending fetch",
			[]browser.TraceEvent{{Kind: browser.TraceWorkerTerminated, Detail: "pending-fetch", WorkerID: 1}},
			"worker.terminate", kernel.ActionDefer,
		},
		{
			"terminate with pending messages",
			[]browser.TraceEvent{{Kind: browser.TraceWorkerTerminated, Detail: "pending-messages"}},
			"worker.terminate", kernel.ActionDefer,
		},
		{
			"orphaned abort",
			[]browser.TraceEvent{{Kind: browser.TraceFetchAbort, Detail: "orphaned"}},
			"worker.terminate", kernel.ActionDefer,
		},
		{
			"private-mode put",
			[]browser.TraceEvent{{Kind: browser.TraceIndexedDBPut, Detail: "private-mode"}},
			"indexedDB.open", kernel.ActionDeny,
		},
		{
			"leaky import error",
			[]browser.TraceEvent{{Kind: browser.TraceNavigationError, Detail: "leaky-error"}},
			"importScripts", kernel.ActionSanitize,
		},
		{
			"location leak",
			[]browser.TraceEvent{{Kind: browser.TraceNavigationError, Detail: "location-leak"}},
			"workerLocation", kernel.ActionSanitize,
		},
		{
			"cross-origin worker creation",
			[]browser.TraceEvent{{Kind: browser.TraceWorkerError, Detail: "cross-origin-create"}},
			"worker.new", kernel.ActionSanitize,
		},
		{
			"onmessage null deref",
			[]browser.TraceEvent{{Kind: browser.TraceOnMessageSet, Detail: "null-deref"}},
			"worker.onmessage", kernel.ActionDrop,
		},
		{
			"worker cross-origin xhr",
			[]browser.TraceEvent{{Kind: browser.TraceXHR, Detail: "cross-origin-worker"}},
			"xhr", kernel.ActionDeny,
		},
		{
			"delivery after teardown",
			[]browser.TraceEvent{{Kind: browser.TraceMessageDelivered, Detail: "after-teardown"}},
			"postMessage", kernel.ActionDrop,
		},
		{
			"released handle used",
			[]browser.TraceEvent{{Kind: browser.TraceMessageDelivered, Detail: "released-use"}},
			"worker.release", kernel.ActionRetain,
		},
		{
			"transferred buffer UAF",
			[]browser.TraceEvent{
				{Kind: browser.TraceTransferable, Detail: "to-parent", Value: 3},
				{Kind: browser.TraceSharedBufferOp, Detail: "read:use-after-free", Value: 3},
			},
			"worker.terminate", kernel.ActionRetain,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, findings := synthOne(t, tc.events...)
			found := false
			for _, r := range spec.Rules {
				if r.When.API == tc.wantAPI && r.Action == tc.wantAction {
					found = true
				}
			}
			if !found {
				t.Fatalf("no rule %s→%s in %+v", tc.wantAPI, tc.wantAction, spec.Rules)
			}
			if len(findings) == 0 || findings[0].Analysis == "" {
				t.Fatal("finding missing analysis")
			}
		})
	}
}

func TestSynthesizeBufferRace(t *testing.T) {
	spec, _ := synthOne(t,
		browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 1, Value: 5, At: 0, Detail: "write"},
		browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 2, Value: 5, At: 50 * sim.Microsecond, Detail: "read"},
	)
	serializes := 0
	for _, r := range spec.Rules {
		if r.Action == kernel.ActionSerialize {
			serializes++
		}
	}
	if serializes != 2 {
		t.Fatalf("want serialize rules for read and write, got %d", serializes)
	}
}

func TestSynthesizeNoRaceWhenSeparated(t *testing.T) {
	_, _, err := Synthesize("t", []browser.TraceEvent{
		{Kind: browser.TraceSharedBufferOp, ThreadID: 1, Value: 5, At: 0, Detail: "write"},
		{Kind: browser.TraceSharedBufferOp, ThreadID: 2, Value: 5, At: sim.Second, Detail: "write"},
	})
	if err == nil {
		t.Fatal("well-separated accesses should synthesize nothing")
	}
}

func TestSynthesizeRetainPrecedesDefer(t *testing.T) {
	// When both a transfer-UAF and a pending-fetch termination appear, the
	// retain rule must precede the defer rule (same invariant as
	// FullDefense).
	spec, _ := synthOne(t,
		browser.TraceEvent{Kind: browser.TraceWorkerTerminated, Detail: "pending-fetch"},
		browser.TraceEvent{Kind: browser.TraceTransferable, Detail: "to-parent", Value: 1},
		browser.TraceEvent{Kind: browser.TraceSharedBufferOp, Detail: "read:use-after-free", Value: 1},
	)
	firstTerminate := kernel.Action("")
	for _, r := range spec.Rules {
		if r.When.API == "worker.terminate" {
			firstTerminate = r.Action
			break
		}
	}
	if firstTerminate != kernel.ActionRetain {
		t.Fatalf("first terminate rule = %s, want retain", firstTerminate)
	}
}

func TestSynthesizedSpecIsValidJSON(t *testing.T) {
	spec, _ := synthOne(t, browser.TraceEvent{Kind: browser.TraceXHR, Detail: "cross-origin-worker"})
	data, err := spec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatalf("synthesized policy does not round-trip: %v", err)
	}
	if len(parsed.Rules) != len(spec.Rules) {
		t.Fatal("rules lost in round trip")
	}
	if !parsed.Deterministic() {
		t.Fatal("synthesized policies must keep deterministic scheduling")
	}
}
