package policy

import (
	"fmt"

	"jskernel/internal/kernel"
)

// Deterministic returns the general deterministic-scheduling policy of
// §II-B1 (Listing 3): every asynchronous event gets a predicted logical
// time and the displayed clock follows predictions only. It carries no
// call rules — scheduling alone defeats the implicit-clock attacks.
func Deterministic() *Spec {
	return &Spec{
		PolicyName:           "deterministic-scheduling",
		Description:          "arranges all events in a deterministic order with a logical clock",
		Det:                  true,
		QuantumMicros:        1000,   // 1ms logical quantum
		LoadPredictionMicros: 10_000, // 10ms predicted resource-load time
	}
}

// cveRules maps each modeled CVE to the manually specified rules that
// break its triggering sequence (§IV-B).
var cveRules = map[string][]Rule{
	"CVE-2018-5092": {{
		When:   Condition{API: "worker.terminate", PendingFetches: boolPtr(true)},
		Action: kernel.ActionDefer,
		Reason: "hold native terminate until the worker's fetches drain, so no abort can reach freed state",
		CVE:    "CVE-2018-5092",
	}},
	"CVE-2017-7843": {{
		When:   Condition{API: "indexedDB.open", PrivateMode: boolPtr(true)},
		Action: kernel.ActionDeny,
		Reason: "private browsing must not touch persistent IndexedDB state",
		CVE:    "CVE-2017-7843",
	}},
	"CVE-2015-7215": {{
		When:   Condition{API: "importScripts", CrossOrigin: boolPtr(true)},
		Action: kernel.ActionSanitize,
		Reason: "replace importScripts error text with a message carrying no cross-origin detail",
		CVE:    "CVE-2015-7215",
	}},
	"CVE-2014-3194": {
		{
			When:   Condition{API: "sharedBuffer.read"},
			Action: kernel.ActionSerialize,
			Reason: "route shared-buffer reads through the kernel's serializing queue",
			CVE:    "CVE-2014-3194",
		},
		{
			When:   Condition{API: "sharedBuffer.write"},
			Action: kernel.ActionSerialize,
			Reason: "route shared-buffer writes through the kernel's serializing queue",
			CVE:    "CVE-2014-3194",
		},
	},
	"CVE-2014-1719": {{
		When:   Condition{API: "worker.terminate", InFlightMessages: boolPtr(true)},
		Action: kernel.ActionDefer,
		Reason: "hold native terminate until in-flight messages deliver",
		CVE:    "CVE-2014-1719",
	}},
	"CVE-2014-1488": {{
		When:   Condition{API: "worker.terminate", Transferred: boolPtr(true)},
		Action: kernel.ActionRetain,
		Reason: "a worker that transferred a buffer is only terminated at the user level; the kernel keeps it alive",
		CVE:    "CVE-2014-1488",
	}},
	"CVE-2014-1487": {{
		When:   Condition{API: "worker.new", CrossOrigin: boolPtr(true)},
		Action: kernel.ActionSanitize,
		Reason: "replace worker-creation error text with a message carrying no cross-origin detail",
		CVE:    "CVE-2014-1487",
	}},
	"CVE-2013-6646": {{
		When:   Condition{API: "worker.release", InFlightMessages: boolPtr(true)},
		Action: kernel.ActionRetain,
		Reason: "the kernel retains worker references until in-flight messages deliver",
		CVE:    "CVE-2013-6646",
	}},
	"CVE-2013-5602": {{
		When:   Condition{API: "worker.onmessage", WorkerTerminated: boolPtr(true)},
		Action: kernel.ActionDrop,
		Reason: "trap the onmessage setter; assignments to terminated workers never reach native state",
		CVE:    "CVE-2013-5602",
	}},
	"CVE-2013-1714": {{
		When:   Condition{API: "xhr", InWorker: boolPtr(true), CrossOrigin: boolPtr(true)},
		Action: kernel.ActionDeny,
		Reason: "check origins for all requests coming from a web worker",
		CVE:    "CVE-2013-1714",
	}},
	"CVE-2011-1190": {{
		When:   Condition{API: "workerLocation", Redirected: boolPtr(true)},
		Action: kernel.ActionSanitize,
		Reason: "expose only the origin-relative worker location, never the redirect target",
		CVE:    "CVE-2011-1190",
	}},
	"CVE-2010-4576": {{
		When:   Condition{API: "postMessage", TornDown: boolPtr(true)},
		Action: kernel.ActionDrop,
		Reason: "drop worker messages addressed to a torn-down document",
		CVE:    "CVE-2010-4576",
	}},
}

// DisableSharedBuffers returns the hardening policy real browsers adopted
// after Spectre: scripts cannot touch SharedArrayBuffer at all. It fully
// closes the SAB fine-grained timer channel that serialization alone only
// coarsens (see attack.SABTimerAttack). Combine it with FullDefense for a
// maximally hardened configuration.
func DisableSharedBuffers() *Spec {
	s := Deterministic()
	s.PolicyName = "disable-shared-buffers"
	s.Description = "deny all SharedArrayBuffer access (post-Spectre hardening)"
	s.Rules = []Rule{
		{When: Condition{API: "sharedBuffer.read"}, Action: kernel.ActionDeny,
			Reason: "shared memory is a fine-grained timer; deny it outright"},
		{When: Condition{API: "sharedBuffer.write"}, Action: kernel.ActionDeny,
			Reason: "shared memory is a fine-grained timer; deny it outright"},
	}
	return s
}

// CVEIDs lists the CVEs with builtin specific policies, in stable order.
func CVEIDs() []string {
	return []string{
		"CVE-2018-5092", "CVE-2017-7843", "CVE-2015-7215", "CVE-2014-3194",
		"CVE-2014-1719", "CVE-2014-1488", "CVE-2014-1487", "CVE-2013-6646",
		"CVE-2013-5602", "CVE-2013-1714", "CVE-2011-1190", "CVE-2010-4576",
	}
}

// ForCVE returns the manually specified scheduling policy defending one
// CVE (e.g. Listing 4 for CVE-2018-5092).
func ForCVE(id string) (*Spec, error) {
	rules, ok := cveRules[id]
	if !ok {
		return nil, fmt.Errorf("policy: no builtin policy for %q", id)
	}
	s := Deterministic()
	s.PolicyName = "policy_" + id
	s.Description = "manually specified scheduling policy for " + id
	s.Rules = append(s.Rules, rules...)
	return s, nil
}

// FullDefense is the complete JSKernel configuration the paper evaluates:
// deterministic scheduling plus every CVE-specific policy. Rule order puts
// retain before defer for terminate so a transferred buffer wins.
func FullDefense() *Spec {
	s := Deterministic()
	s.PolicyName = "jskernel-full"
	s.Description = "deterministic scheduling + all CVE-specific policies"
	// Order matters for worker.terminate: transferred → retain must be
	// checked before the defer rules.
	order := []string{
		"CVE-2014-1488", "CVE-2018-5092", "CVE-2014-1719", "CVE-2017-7843",
		"CVE-2015-7215", "CVE-2014-3194", "CVE-2014-1487", "CVE-2013-6646",
		"CVE-2013-5602", "CVE-2013-1714", "CVE-2011-1190", "CVE-2010-4576",
	}
	for _, id := range order {
		s.Rules = append(s.Rules, cveRules[id]...)
	}
	return s
}
