package trace

import (
	"errors"
	"fmt"

	"jskernel/internal/sim"
)

// Validator replays a trace and asserts the kernel's lifecycle
// invariants:
//
//  1. Sequence numbers are strictly increasing — the trace is a total
//     order.
//  2. Kernel-record virtual timestamps are monotone per (run, thread) —
//     a session may trace many environments, each with its own simulator
//     and thread numbering (native, access and edge records may carry
//     in-task cursor times and are exempt) — and each scope's logical
//     clock never moves backwards.
//  3. Every event-scoped record belongs to an event that was enqueued
//     exactly once, and no lifecycle record follows the event's terminal
//     record.
//  4. Every enqueued event reaches exactly one terminal state —
//     dispatched, shed, cancelled, or expired — so per scope
//     dispatched + shed + cancelled + expired == enqueued. (Traces of
//     horizon-bounded runs satisfy this after Session.Close, which
//     retires still-open events with synthetic "run-end" cancels;
//     AllowOpen relaxes the check for raw, unclosed traces.)
//  5. No event dispatches without a prior policy decision and a prior
//     confirmation.
//
// Violations are typed: every error is a *ValidationError wrapping one
// of the Err… sentinels below, so callers (and tests) can distinguish,
// say, a duplicated terminal state from a dispatch-before-confirm with
// errors.Is instead of string matching.
type Validator struct {
	// AllowOpen accepts traces whose tail leaves events enqueued but
	// unretired (a session that was not Closed).
	AllowOpen bool
}

// Sentinel violation kinds. A validator error wraps exactly one of
// these; match with errors.Is.
var (
	// ErrSeqOrder: sequence numbers not strictly increasing.
	ErrSeqOrder = errors.New("sequence not strictly increasing")
	// ErrTimeRegression: virtual time moved backwards within one
	// (run, thread) on a kernel-timed record.
	ErrTimeRegression = errors.New("virtual time moved backwards")
	// ErrClockRegression: a scope's logical clock moved backwards.
	ErrClockRegression = errors.New("logical clock moved backwards")
	// ErrDuplicateEnqueue: one event enqueued twice.
	ErrDuplicateEnqueue = errors.New("event enqueued twice")
	// ErrDuplicateTerminal: a second terminal record for an event
	// already retired.
	ErrDuplicateTerminal = errors.New("duplicate terminal state")
	// ErrAfterTerminal: a non-terminal lifecycle record after the
	// event's terminal record.
	ErrAfterTerminal = errors.New("lifecycle record after terminal state")
	// ErrConfirmBeforeEnqueue: confirmation for an event never enqueued.
	ErrConfirmBeforeEnqueue = errors.New("confirmation before enqueue")
	// ErrDispatchBeforeEnqueue: dispatch of an event never enqueued.
	ErrDispatchBeforeEnqueue = errors.New("dispatch before enqueue")
	// ErrDispatchBeforePolicy: dispatch without a prior policy decision.
	ErrDispatchBeforePolicy = errors.New("dispatch before policy decision")
	// ErrDispatchBeforeConfirm: dispatch without a prior confirmation.
	ErrDispatchBeforeConfirm = errors.New("dispatch before confirmation")
	// ErrTerminalBeforeEnqueue: shed/cancel/expire for an event never
	// enqueued.
	ErrTerminalBeforeEnqueue = errors.New("terminal record before enqueue")
	// ErrPanicOutsideDispatch: a panic-recovery record for an event that
	// was never dispatched.
	ErrPanicOutsideDispatch = errors.New("panic recovery outside a dispatch")
	// ErrOpenEvents: enqueued events never reached a terminal state
	// (strict mode only).
	ErrOpenEvents = errors.New("enqueued events never reached a terminal state")
	// ErrAccounting: dispatched+shed+cancelled+expired+open != enqueued.
	ErrAccounting = errors.New("terminal accounting broken")
)

// ValidationError is one lifecycle-invariant violation: the sentinel
// kind, the offending record's identity, and the detailed message.
type ValidationError struct {
	Kind  error  // one of the Err… sentinels
	Seq   uint64 // offending record's sequence number (0 for end-of-trace checks)
	Op    Op
	API   string
	Event uint64
	Scope int
	Msg   string
}

func (e *ValidationError) Error() string {
	if e.Seq == 0 && e.Op == 0 {
		return "trace: " + e.Msg
	}
	return fmt.Sprintf("trace: invalid record #%d (%s %s ev=%d scope=%d): %s",
		e.Seq, e.Op, e.API, e.Event, e.Scope, e.Msg)
}

// Unwrap exposes the sentinel kind to errors.Is.
func (e *ValidationError) Unwrap() error { return e.Kind }

// Report summarizes a validated trace.
type Report struct {
	Records  int `json:"records"`
	Enqueued int `json:"enqueued"`
	// Terminal-state accounting; when the trace is closed,
	// Dispatched+Shed+Cancelled+Expired == Enqueued.
	Dispatched int `json:"dispatched"`
	Shed       int `json:"shed"`
	Cancelled  int `json:"cancelled"`
	Expired    int `json:"expired"`
	// Open counts enqueued events with no terminal record (always 0 for
	// closed traces).
	Open int `json:"open"`
	// PolicyDecisions counts OpPolicy records (both per-event scheduling
	// decisions and per-call verdicts).
	PolicyDecisions int `json:"policy_decisions"`
	// Scopes and Threads count the distinct kernelized scopes and
	// threads observed.
	Scopes  int `json:"scopes"`
	Threads int `json:"threads"`
}

// evState tracks one event's lifecycle during replay.
type evState struct {
	enqueued  bool
	policied  bool
	confirmed bool
	terminal  Op
}

// StreamValidator checks the lifecycle invariants record-by-record as a
// streaming Sink, so a session that retains nothing can still be
// validated. Observe is sticky on the first violation; Finish runs the
// end-of-trace accounting checks and returns the report.
type StreamValidator struct {
	allowOpen bool

	rep     Report
	events  map[uint64]*evState
	lastVT  map[uint64]sim.Time // per-(run, thread) kernel-record VT
	lastLC  map[int]sim.Time    // per-scope logical clock
	scopes  map[int]bool
	threads map[uint64]bool
	lastSeq uint64
	err     error
}

// NewStreamValidator returns a streaming validator; allowOpen accepts
// traces whose tail leaves events enqueued but unretired.
func NewStreamValidator(allowOpen bool) *StreamValidator {
	return &StreamValidator{
		allowOpen: allowOpen,
		events:    make(map[uint64]*evState),
		lastVT:    make(map[uint64]sim.Time),
		lastLC:    make(map[int]sim.Time),
		scopes:    make(map[int]bool),
		threads:   make(map[uint64]bool),
	}
}

// Observe folds one record into the replay. Violations latch: once a
// record fails, later records are ignored and Finish reports the first
// error.
func (v *StreamValidator) Observe(r Record) {
	if v.err != nil {
		return
	}
	v.err = v.observe(r)
}

func (v *StreamValidator) observe(r Record) error {
	fail := func(kind error, format string, args ...any) error {
		return &ValidationError{
			Kind: kind, Seq: r.Seq, Op: r.Op, API: r.API,
			Event: r.Event, Scope: r.Scope,
			Msg: fmt.Sprintf(format, args...),
		}
	}

	v.rep.Records++
	if r.Seq <= v.lastSeq {
		return fail(ErrSeqOrder, "sequence not strictly increasing (prev %d)", v.lastSeq)
	}
	v.lastSeq = r.Seq
	tk := uint64(r.Run)<<32 | uint64(uint32(r.Thread))
	v.threads[tk] = true
	if r.Scope != 0 {
		v.scopes[r.Scope] = true
	}

	if !r.Op.cursorTimed() {
		if vt, ok := v.lastVT[tk]; ok && r.VT < vt {
			return fail(ErrTimeRegression, "virtual time moved backwards on run %d thread %d (%s < %s)",
				r.Run, r.Thread, fmtVT(r.VT), fmtVT(vt))
		}
		v.lastVT[tk] = r.VT
		if r.Scope != 0 {
			if lc, ok := v.lastLC[r.Scope]; ok && r.LC < lc {
				return fail(ErrClockRegression, "logical clock moved backwards on scope %d (%s < %s)",
					r.Scope, fmtVT(r.LC), fmtVT(lc))
			}
			v.lastLC[r.Scope] = r.LC
		}
	}

	switch r.Op {
	case OpPolicy:
		v.rep.PolicyDecisions++
	case OpInstall, OpNative, OpQuarantine, OpAccess, OpEdge:
		// Not event-scoped.
		return nil
	}
	if r.Event == 0 || r.Scope == 0 {
		return nil
	}

	k := r.key()
	st := v.events[k]
	if st == nil {
		st = &evState{}
		v.events[k] = st
	}
	if st.terminal != 0 && r.Op != OpPolicy {
		if r.Op.Terminal() {
			return fail(ErrDuplicateTerminal, "terminal %s after terminal %s", r.Op, st.terminal)
		}
		return fail(ErrAfterTerminal, "lifecycle record after terminal %s", st.terminal)
	}
	switch r.Op {
	case OpPolicy:
		st.policied = true
	case OpEnqueue:
		if st.enqueued {
			return fail(ErrDuplicateEnqueue, "event enqueued twice")
		}
		st.enqueued = true
		v.rep.Enqueued++
	case OpConfirm:
		if !st.enqueued {
			return fail(ErrConfirmBeforeEnqueue, "confirmation for an event never enqueued")
		}
		st.confirmed = true
	case OpDispatch:
		if !st.enqueued {
			return fail(ErrDispatchBeforeEnqueue, "dispatch of an event never enqueued")
		}
		if !st.policied {
			return fail(ErrDispatchBeforePolicy, "dispatch without a prior policy decision")
		}
		if !st.confirmed {
			return fail(ErrDispatchBeforeConfirm, "dispatch without a prior confirmation")
		}
		st.terminal = OpDispatch
		v.rep.Dispatched++
	case OpShed, OpCancel, OpExpire:
		if !st.enqueued {
			return fail(ErrTerminalBeforeEnqueue, "terminal %s for an event never enqueued", r.Op)
		}
		st.terminal = r.Op
		switch r.Op {
		case OpShed:
			v.rep.Shed++
		case OpCancel:
			v.rep.Cancelled++
		case OpExpire:
			v.rep.Expired++
		}
	case OpPanic:
		if st.terminal != OpDispatch {
			return fail(ErrPanicOutsideDispatch, "panic recovery outside a dispatch")
		}
	}
	return nil
}

// Finish runs the end-of-trace accounting checks and returns the
// report, or the first violation observed.
func (v *StreamValidator) Finish() (*Report, error) {
	if v.err != nil {
		return nil, v.err
	}
	rep := v.rep
	for _, st := range v.events {
		if st.enqueued && st.terminal == 0 {
			rep.Open++
		}
	}
	rep.Scopes = len(v.scopes)
	rep.Threads = len(v.threads)

	if rep.Open > 0 && !v.allowOpen {
		return nil, &ValidationError{Kind: ErrOpenEvents, Msg: fmt.Sprintf(
			"%d enqueued events never reached a terminal state (close the session, or set AllowOpen for raw traces)", rep.Open)}
	}
	if got := rep.Dispatched + rep.Shed + rep.Cancelled + rep.Expired + rep.Open; got != rep.Enqueued {
		return nil, &ValidationError{Kind: ErrAccounting, Msg: fmt.Sprintf(
			"terminal accounting broken: dispatched+shed+cancelled+expired+open = %d, enqueued = %d", got, rep.Enqueued)}
	}
	return &rep, nil
}

// Validate replays records (in the given order) against the invariants,
// returning a summary report. The first violation aborts with an error
// naming the offending record.
func (v Validator) Validate(recs []Record) (*Report, error) {
	sv := NewStreamValidator(v.AllowOpen)
	for _, r := range recs {
		sv.Observe(r)
	}
	return sv.Finish()
}

// Validate checks a trace against the strict invariants (no open
// events).
func Validate(recs []Record) (*Report, error) {
	return Validator{}.Validate(recs)
}
