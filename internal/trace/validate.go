package trace

import (
	"fmt"

	"jskernel/internal/sim"
)

// Validator replays a trace and asserts the kernel's lifecycle
// invariants:
//
//  1. Sequence numbers are strictly increasing — the trace is a total
//     order.
//  2. Kernel-record virtual timestamps are monotone per (run, thread) —
//     a session may trace many environments, each with its own simulator
//     and thread numbering (native records may carry in-task cursor
//     times and are exempt) — and each scope's logical clock never moves
//     backwards.
//  3. Every event-scoped record belongs to an event that was enqueued
//     exactly once, and no lifecycle record follows the event's terminal
//     record.
//  4. Every enqueued event reaches exactly one terminal state —
//     dispatched, shed, cancelled, or expired — so per scope
//     dispatched + shed + cancelled + expired == enqueued. (Traces of
//     horizon-bounded runs satisfy this after Session.Close, which
//     retires still-open events with synthetic "run-end" cancels;
//     AllowOpen relaxes the check for raw, unclosed traces.)
//  5. No event dispatches without a prior policy decision and a prior
//     confirmation.
type Validator struct {
	// AllowOpen accepts traces whose tail leaves events enqueued but
	// unretired (a session that was not Closed).
	AllowOpen bool
}

// Report summarizes a validated trace.
type Report struct {
	Records  int
	Enqueued int
	// Terminal-state accounting; when the trace is closed,
	// Dispatched+Shed+Cancelled+Expired == Enqueued.
	Dispatched int
	Shed       int
	Cancelled  int
	Expired    int
	// Open counts enqueued events with no terminal record (always 0 for
	// closed traces).
	Open int
	// PolicyDecisions counts OpPolicy records (both per-event scheduling
	// decisions and per-call verdicts).
	PolicyDecisions int
	// Scopes and Threads count the distinct kernelized scopes and
	// threads observed.
	Scopes  int
	Threads int
}

// evState tracks one event's lifecycle during replay.
type evState struct {
	enqueued  bool
	policied  bool
	confirmed bool
	terminal  Op
}

// Validate replays records (in the given order) against the invariants,
// returning a summary report. The first violation aborts with an error
// naming the offending record.
func (v Validator) Validate(recs []Record) (*Report, error) {
	rep := &Report{Records: len(recs)}
	events := make(map[uint64]*evState)
	lastVT := make(map[uint64]sim.Time) // per-(run, thread) kernel-record VT
	lastLC := make(map[int]sim.Time)    // per-scope logical clock
	scopes := make(map[int]bool)
	threads := make(map[uint64]bool)
	var lastSeq uint64

	threadKey := func(r Record) uint64 {
		return uint64(r.Run)<<32 | uint64(uint32(r.Thread))
	}

	fail := func(r Record, format string, args ...any) (*Report, error) {
		return nil, fmt.Errorf("trace: invalid record #%d (%s %s ev=%d scope=%d): %s",
			r.Seq, r.Op, r.API, r.Event, r.Scope, fmt.Sprintf(format, args...))
	}

	for _, r := range recs {
		if r.Seq <= lastSeq {
			return fail(r, "sequence not strictly increasing (prev %d)", lastSeq)
		}
		lastSeq = r.Seq
		tk := threadKey(r)
		threads[tk] = true
		if r.Scope != 0 {
			scopes[r.Scope] = true
		}

		if r.Op != OpNative {
			if vt, ok := lastVT[tk]; ok && r.VT < vt {
				return fail(r, "virtual time moved backwards on run %d thread %d (%s < %s)",
					r.Run, r.Thread, fmtVT(r.VT), fmtVT(vt))
			}
			lastVT[tk] = r.VT
			if r.Scope != 0 {
				if lc, ok := lastLC[r.Scope]; ok && r.LC < lc {
					return fail(r, "logical clock moved backwards on scope %d (%s < %s)",
						r.Scope, fmtVT(r.LC), fmtVT(lc))
				}
				lastLC[r.Scope] = r.LC
			}
		}

		switch r.Op {
		case OpPolicy:
			rep.PolicyDecisions++
		case OpInstall, OpNative, OpQuarantine:
			// Not event-scoped.
			continue
		}
		if r.Event == 0 || r.Scope == 0 {
			continue
		}

		k := r.key()
		st := events[k]
		if st == nil {
			st = &evState{}
			events[k] = st
		}
		if st.terminal != 0 && r.Op != OpPolicy {
			return fail(r, "lifecycle record after terminal %s", st.terminal)
		}
		switch r.Op {
		case OpPolicy:
			st.policied = true
		case OpEnqueue:
			if st.enqueued {
				return fail(r, "event enqueued twice")
			}
			st.enqueued = true
			rep.Enqueued++
		case OpConfirm:
			if !st.enqueued {
				return fail(r, "confirmation for an event never enqueued")
			}
			st.confirmed = true
		case OpDispatch:
			if !st.enqueued {
				return fail(r, "dispatch of an event never enqueued")
			}
			if !st.policied {
				return fail(r, "dispatch without a prior policy decision")
			}
			if !st.confirmed {
				return fail(r, "dispatch without a prior confirmation")
			}
			st.terminal = OpDispatch
			rep.Dispatched++
		case OpShed, OpCancel, OpExpire:
			if !st.enqueued {
				return fail(r, "terminal %s for an event never enqueued", r.Op)
			}
			st.terminal = r.Op
			switch r.Op {
			case OpShed:
				rep.Shed++
			case OpCancel:
				rep.Cancelled++
			case OpExpire:
				rep.Expired++
			}
		case OpPanic:
			if st.terminal != OpDispatch {
				return fail(r, "panic recovery outside a dispatch")
			}
		}
	}

	for _, st := range events {
		if st.enqueued && st.terminal == 0 {
			rep.Open++
		}
	}
	rep.Scopes = len(scopes)
	rep.Threads = len(threads)

	if rep.Open > 0 && !v.AllowOpen {
		return nil, fmt.Errorf("trace: %d enqueued events never reached a terminal state (close the session, or set AllowOpen for raw traces)", rep.Open)
	}
	if got := rep.Dispatched + rep.Shed + rep.Cancelled + rep.Expired + rep.Open; got != rep.Enqueued {
		return nil, fmt.Errorf("trace: terminal accounting broken: dispatched+shed+cancelled+expired+open = %d, enqueued = %d", got, rep.Enqueued)
	}
	return rep, nil
}

// Validate checks a trace against the strict invariants (no open
// events).
func Validate(recs []Record) (*Report, error) {
	return Validator{}.Validate(recs)
}
