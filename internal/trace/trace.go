// Package trace implements the kernel's deterministic tracing and
// metrics layer.
//
// Every event-lifecycle transition the kernel performs — enqueue, policy
// decision, confirmation, dispatch, shed, cancel, watchdog expiry, panic
// recovery, quarantine — is emitted as a structured Record stamped with
// the run's virtual time, the kernel logical clock, the thread and the
// kernelized scope. Because the whole substrate is a deterministic
// discrete-event simulation, a trace is byte-identical across reruns of
// the same configuration, which turns traces into regression oracles:
// golden traces pin the exact scheduling behaviour of the kernel, and the
// Validator replays any trace asserting the kernel's lifecycle
// invariants (see validate.go).
//
// Tracing is off by default and must cost nearly nothing when off: the
// kernel holds a *Session pointer and every emission site guards on a
// single nil check (the nil-sink fast path). A Session also maintains a
// Metrics registry — per-API counters, queue-depth high-water marks, a
// virtual-time dispatch-latency histogram, and interposition-overhead
// totals — updated incrementally as records arrive.
package trace

import (
	"fmt"
	"sort"

	"jskernel/internal/sim"
)

// Op identifies one kind of kernel lifecycle transition.
type Op uint8

// Kernel lifecycle operations.
const (
	// OpInstall records a scope being kernelized (one per JavaScript
	// context: the window, each worker self, each frame).
	OpInstall Op = iota + 1
	// OpPolicy records a policy decision: the scheduling admit decision
	// made for every registration (Action "schedule") or an Evaluate
	// verdict for an intercepted call (allow/deny/sanitize/...).
	OpPolicy
	// OpEnqueue records an event registration entering a kernel queue.
	OpEnqueue
	// OpConfirm records a pending event's confirmation (pending → ready).
	OpConfirm
	// OpDispatch records the dispatcher releasing an event to user space.
	// Terminal.
	OpDispatch
	// OpShed records a registration refused at the queue-depth bound.
	// Terminal.
	OpShed
	// OpCancel records a user- or kernel-initiated cancellation. Terminal.
	OpCancel
	// OpExpire records the watchdog force-expiring a pending queue head
	// whose confirmation never arrived. Terminal.
	OpExpire
	// OpPanic records a recovered user-callback panic (the dispatch
	// itself already happened; the context survives).
	OpPanic
	// OpQuarantine records a context whose callbacks are suppressed after
	// repeated panics.
	OpQuarantine
	// OpNative records a native-layer (browser/webnet) trace event
	// bridged into the kernel trace for end-to-end visibility. Native
	// records may carry in-task cursor timestamps, so they are exempt
	// from the per-thread monotonicity invariant.
	OpNative
	// OpAccess records one shared-target access for the happens-before
	// analysis in internal/hb: API is the target class ("buffer",
	// "worker", "dom", ...), Value the target ID, Action "r" or "w" (a
	// "g" suffix marks a hazard-guardian access attributed to the
	// target's guardian context rather than the accessing thread). Like
	// native records, accesses carry in-task cursor timestamps and are
	// exempt from the per-thread monotonicity invariant.
	OpAccess
	// OpEdge records a sanctioned synchronization edge endpoint: API
	// names the sync object class ("sab-lock", "sys", ...), Value the
	// object ID, Action "rel" (release) or "acq" (acquire). The hb layer
	// joins rel→acq pairs per (run, API, Value) into happens-before
	// edges beyond the kernel lifecycle's own enqueue/confirm→dispatch.
	OpEdge
)

// String names the operation for renderers.
func (o Op) String() string {
	switch o {
	case OpInstall:
		return "install"
	case OpPolicy:
		return "policy"
	case OpEnqueue:
		return "enqueue"
	case OpConfirm:
		return "confirm"
	case OpDispatch:
		return "dispatch"
	case OpShed:
		return "shed"
	case OpCancel:
		return "cancel"
	case OpExpire:
		return "expire"
	case OpPanic:
		return "panic"
	case OpQuarantine:
		return "quarantine"
	case OpNative:
		return "native"
	case OpAccess:
		return "access"
	case OpEdge:
		return "edge"
	default:
		return "invalid"
	}
}

// Terminal reports whether the operation retires an event: after a
// terminal record no further lifecycle records may reference the event.
func (o Op) Terminal() bool {
	switch o {
	case OpDispatch, OpShed, OpCancel, OpExpire:
		return true
	}
	return false
}

// cursorTimed reports whether the operation's records carry in-task
// cursor timestamps (native events, hb accesses and edges), exempting
// them from the per-thread VT monotonicity invariant and the per-scope
// logical-clock high-water fold.
func (o Op) cursorTimed() bool {
	switch o {
	case OpNative, OpAccess, OpEdge:
		return true
	}
	return false
}

// Record is one structured trace entry. The zero values of optional
// fields mean "not applicable" (Event 0 = not event-scoped, Scope 0 =
// not bound to a kernelized scope).
type Record struct {
	// Seq is the session-wide total order, stamped by the Session.
	Seq uint64
	// Run is the session-unique environment generation the record belongs
	// to (assigned via NextRun). One session may trace many environments —
	// each with its own simulator restarting at virtual time zero and its
	// own thread numbering — so virtual-time monotonicity only holds per
	// (run, thread). 0 means "no run context".
	Run int
	// VT is the simulator's virtual time at emission.
	VT sim.Time
	// LC is the emitting kernel's logical-clock reading (kernel records
	// only).
	LC sim.Time
	// Thread is the simulated thread the transition occurred on.
	Thread int
	// Scope is the session-unique ID of the kernelized scope (assigned
	// at install time); 0 for records not bound to one scope.
	Scope int
	// WorkerID is the worker involved, when applicable (0 = main).
	WorkerID int
	// Op is the lifecycle transition.
	Op Op
	// API is the registration or call type ("setTimeout", "fetch", ...).
	API string
	// Event is the kernel event ID within the scope; 0 when the record
	// is not event-scoped (policy verdicts for non-event calls, installs,
	// native records).
	Event uint64
	// Predicted is the logical time the scheduler assigned to the event.
	Predicted sim.Time
	// Action qualifies policy and terminal records ("schedule", "allow",
	// "deny", "expire", "run-end", ...).
	Action string
	// Reason is the free-form rationale carried by policy decisions and
	// survival incidents.
	Reason string
	// URL is the resource involved, when applicable.
	URL string
	// Depth is the emitting scope's queue depth after the transition
	// (enqueue/dispatch records).
	Depth int
	// Value is the record's numeric payload. Native records bridge the
	// browser event's value through it (fetch IDs, buffer IDs, scope
	// tokens); kernel records leave it zero.
	Value int64
	// Aux is a second numeric payload qualifying Value (native records:
	// requested timer delays, clock-read bit patterns, frame indices).
	Aux int64
}

// key identifies one event uniquely within a session: scope IDs are
// session-unique and event IDs are unique within a scope.
func (r Record) key() uint64 { return uint64(r.Scope)<<32 | r.Event }

// Sink observes every record a Session emits, in emission order, after
// the session has stamped it (Seq assigned, VT/LC high-waters folded).
// Sinks let several consumers — exporters, validators, the obs layer —
// watch one stream simultaneously without each buffering its own copy.
// Implementations must be cheap and must not re-enter the session.
type Sink interface {
	Observe(Record)
}

// openEvent is the bookkeeping a Session keeps for every event that has
// been enqueued but not yet retired.
type openEvent struct {
	api      string
	run      int
	thread   int
	scope    int
	workerID int
	enqVT    sim.Time
}

// Session accumulates a run's trace records and incrementally maintains
// the metrics registry. It is single-goroutine, like the simulator it
// observes. A nil *Session is a valid no-op sink, so holders can emit
// unconditionally after one nil check.
type Session struct {
	seq     uint64
	records []Record
	metrics *Metrics
	sinks   []Sink
	retain  bool // append records to the in-memory buffer

	scopes int // session-unique scope ID allocator
	runs   int // session-unique environment-generation allocator

	open    map[uint64]openEvent // enqueued-but-unretired events
	scopeLC map[int]sim.Time     // per-scope logical-clock high-water
	maxVT   sim.Time
	closed  bool
}

// NewSession returns an empty tracing session that retains records
// in memory (see SetRetain for streaming-only sessions).
func NewSession() *Session {
	return &Session{
		retain:  true,
		metrics: newMetrics(),
		open:    make(map[uint64]openEvent),
		scopeLC: make(map[int]sim.Time),
	}
}

// Attach subscribes a sink to the session's record stream. Records
// already emitted are not replayed; attach sinks before the run starts.
func (s *Session) Attach(sink Sink) {
	if s == nil || sink == nil {
		return
	}
	s.sinks = append(s.sinks, sink)
}

// SetRetain controls whether emitted records are also appended to the
// in-memory buffer behind Records. Sessions that exist only to feed
// attached sinks (streaming profiles, forensics over huge matrices) can
// switch retention off and run in constant memory; metrics and the
// open-event ledger keep working either way. Retain-off sessions cannot
// be absorbed into a parent (Absorb replays the record buffer).
func (s *Session) SetRetain(retain bool) {
	if s == nil {
		return
	}
	s.retain = retain
}

// NextScope allocates a session-unique scope ID. Kernels call it at
// install time so traces spanning several environments never collide on
// (scope, event) keys.
func (s *Session) NextScope() int {
	s.scopes++
	return s.scopes
}

// NextRun allocates a session-unique environment generation. Each
// environment fed into the session takes one, so records from different
// simulators (each with its own virtual clock and thread numbering)
// stay distinguishable.
func (s *Session) NextRun() int {
	s.runs++
	return s.runs
}

// Emit streams one record: stamps its sequence number, folds it into
// the metrics registry, fans it out to attached sinks, and (when the
// session retains) appends it to the in-memory buffer. Safe on a nil
// session.
func (s *Session) Emit(r Record) {
	if s == nil {
		return
	}
	s.seq++
	r.Seq = s.seq
	if r.VT > s.maxVT {
		s.maxVT = r.VT
	}
	if r.Scope != 0 && !r.Op.cursorTimed() && r.LC > s.scopeLC[r.Scope] {
		s.scopeLC[r.Scope] = r.LC
	}
	if s.retain {
		s.records = append(s.records, r)
	}
	s.track(r)
	s.metrics.observe(r)
	for _, sink := range s.sinks {
		sink.Observe(r)
	}
}

// track maintains the open-event set used by Close and the
// dispatch-latency metric.
func (s *Session) track(r Record) {
	if r.Event == 0 || r.Scope == 0 {
		return
	}
	k := r.key()
	switch {
	case r.Op == OpEnqueue:
		s.open[k] = openEvent{
			api:      r.API,
			run:      r.Run,
			thread:   r.Thread,
			scope:    r.Scope,
			workerID: r.WorkerID,
			enqVT:    r.VT,
		}
	case r.Op.Terminal():
		if ev, ok := s.open[k]; ok {
			if r.Op == OpDispatch {
				s.metrics.observeLatency(r.VT - ev.enqVT)
			}
			delete(s.open, k)
		}
	}
}

// CountInterpose charges one kernel-boundary crossing of the given
// virtual cost to the metrics registry. Interpositions are counted, not
// recorded — one record per crossing would dwarf the lifecycle trace.
// Safe on a nil session.
func (s *Session) CountInterpose(cost sim.Duration) {
	if s == nil {
		return
	}
	s.metrics.InterposeCrossings++
	s.metrics.InterposeVirtual += cost
}

// Close retires every still-open event with a synthetic terminal cancel
// record (Action "run-end"), so finished traces satisfy the strict
// "every enqueued event terminates exactly once" invariant even when a
// run was stopped at a virtual-time horizon with confirmations still
// outstanding. Closing is idempotent; the synthetic records are emitted
// in sorted (scope, event) order so closed traces stay byte-identical
// across reruns.
func (s *Session) Close() {
	if s == nil || s.closed {
		return
	}
	keys := make([]uint64, 0, len(s.open))
	for k := range s.open {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		ev := s.open[k]
		s.Emit(Record{
			VT:       s.maxVT,
			LC:       s.scopeLC[ev.scope],
			Run:      ev.run,
			Thread:   ev.thread,
			Scope:    ev.scope,
			WorkerID: ev.workerID,
			Op:       OpCancel,
			API:      ev.api,
			Event:    k & 0xffffffff,
			Action:   "run-end",
			Reason:   "open at trace close",
		})
	}
	s.closed = true
}

// Closed reports whether Close has run.
func (s *Session) Closed() bool { return s != nil && s.closed }

// Len reports the number of records emitted so far (retained or not).
func (s *Session) Len() int {
	if s == nil {
		return 0
	}
	return int(s.seq)
}

// Records returns a copy of the session's records.
func (s *Session) Records() []Record {
	if s == nil {
		return nil
	}
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Metrics exposes the session's metrics registry.
func (s *Session) Metrics() *Metrics {
	if s == nil {
		return nil
	}
	return s.metrics
}

// LastSeq reports the sequence number of the most recently emitted
// record (0 when none). Together with Runs and MaxVT it forms the
// span-link coordinates joining a wall-clock service span to this
// session's virtual-time trace.
func (s *Session) LastSeq() uint64 {
	if s == nil {
		return 0
	}
	return s.seq
}

// Runs reports how many environment generations the session has
// allocated.
func (s *Session) Runs() int {
	if s == nil {
		return 0
	}
	return s.runs
}

// MaxVT reports the virtual-time high water across every record.
func (s *Session) MaxVT() sim.Time {
	if s == nil {
		return 0
	}
	return s.maxVT
}

// Open reports how many enqueued events have not yet reached a terminal
// state.
func (s *Session) Open() int {
	if s == nil {
		return 0
	}
	return len(s.open)
}

// Reset clears records, metrics, sinks and open-event state, keeping
// the scope allocator (scope IDs must never be reused within a
// session's lifetime) and the retention setting. Sinks are detached
// because their accumulated state would straddle the reset.
func (s *Session) Reset() {
	if s == nil {
		return
	}
	s.seq = 0
	s.records = nil
	s.metrics = newMetrics()
	s.sinks = nil
	s.open = make(map[uint64]openEvent)
	s.scopeLC = make(map[int]sim.Time)
	s.maxVT = 0
	s.closed = false
}

// fmtVT renders a virtual timestamp the way the rest of the repo does.
func fmtVT(t sim.Time) string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }
