package trace_test

import (
	"bytes"
	"testing"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/trace"
)

// tracePart runs one CVE scenario into a fresh, closed session — a
// realistic per-cell trace with installs, dispatches, policy verdicts
// and native records.
func tracePart(t *testing.T, d defense.Defense, seed int64) *trace.Session {
	t.Helper()
	s := trace.NewSession()
	attack.CVE20185092().Evaluate(d.WithTracer(s), seed)
	s.Close()
	if s.Len() == 0 {
		t.Fatal("scenario emitted no records")
	}
	return s
}

// TestAbsorbMergesValidly merges two independent cell traces and checks
// the result still satisfies every kernel lifecycle invariant, with the
// counts adding up and runs/scopes disjoint.
func TestAbsorbMergesValidly(t *testing.T) {
	a := tracePart(t, defense.JSKernel("chrome"), 42)
	b := tracePart(t, defense.DeterFox(), 43)

	merged := trace.NewSession()
	if err := merged.Absorb(a); err != nil {
		t.Fatalf("absorb a: %v", err)
	}
	if err := merged.Absorb(b); err != nil {
		t.Fatalf("absorb b: %v", err)
	}
	merged.Close()

	rep, err := trace.Validate(merged.Records())
	if err != nil {
		t.Fatalf("merged trace fails validation: %v", err)
	}
	if merged.Len() != a.Len()+b.Len() {
		t.Fatalf("merged %d records, parts total %d", merged.Len(), a.Len()+b.Len())
	}
	ra, _ := trace.Validate(a.Records())
	rb, _ := trace.Validate(b.Records())
	if rep.Enqueued != ra.Enqueued+rb.Enqueued {
		t.Fatalf("enqueued %d, parts total %d", rep.Enqueued, ra.Enqueued+rb.Enqueued)
	}
	if rep.Scopes != ra.Scopes+rb.Scopes {
		t.Fatalf("scopes %d, parts total %d — scope remapping collided", rep.Scopes, ra.Scopes+rb.Scopes)
	}

	// Metrics must be rebuilt exactly, including the explicitly
	// transferred interposition totals.
	ma, mb, mm := a.Metrics(), b.Metrics(), merged.Metrics()
	if mm.Dispatched != ma.Dispatched+mb.Dispatched {
		t.Fatalf("dispatched metric %d, parts total %d", mm.Dispatched, ma.Dispatched+mb.Dispatched)
	}
	if mm.InterposeCrossings != ma.InterposeCrossings+mb.InterposeCrossings {
		t.Fatalf("interpose crossings %d, parts total %d", mm.InterposeCrossings, ma.InterposeCrossings+mb.InterposeCrossings)
	}
	if mm.DispatchLatency.Total != ma.DispatchLatency.Total+mb.DispatchLatency.Total {
		t.Fatalf("latency samples %d, parts total %d", mm.DispatchLatency.Total, ma.DispatchLatency.Total+mb.DispatchLatency.Total)
	}
}

// TestAbsorbDeterministicOrder asserts the property the parallel runner
// depends on: absorbing identical parts in the same index order yields
// byte-identical merged traces, run to run.
func TestAbsorbDeterministicOrder(t *testing.T) {
	render := func() []byte {
		merged := trace.NewSession()
		for i, d := range []defense.Defense{defense.JSKernel("chrome"), defense.DeterFox()} {
			part := tracePart(t, d, int64(42+i))
			if err := merged.Absorb(part); err != nil {
				t.Fatalf("absorb %d: %v", i, err)
			}
		}
		merged.Close()
		var buf bytes.Buffer
		if err := trace.WriteText(&buf, merged.Records()); err != nil {
			t.Fatalf("render: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("absorbing the same parts in the same order produced different bytes")
	}
}

// TestAbsorbRejectsMisuse pins the guard rails: unclosed parts, closed
// receivers, and self-absorption are errors.
func TestAbsorbRejectsMisuse(t *testing.T) {
	open := trace.NewSession()
	open.Emit(trace.Record{Op: trace.OpInstall, API: "window"})
	dst := trace.NewSession()
	if err := dst.Absorb(open); err == nil {
		t.Fatal("absorbed an unclosed part")
	}
	open.Close()
	if err := dst.Absorb(open); err != nil {
		t.Fatalf("closed part refused: %v", err)
	}
	if err := dst.Absorb(dst); err == nil {
		t.Fatal("session absorbed itself")
	}
	dst.Close()
	if err := dst.Absorb(open); err == nil {
		t.Fatal("closed session absorbed a part")
	}
}
