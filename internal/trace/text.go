package trace

import (
	"fmt"
	"io"
	"strings"
)

// FormatRecord renders one record as a fixed-layout single line. The
// layout is stable — golden-trace tests diff these lines byte-for-byte.
func FormatRecord(r Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d r%-3d %12s t%-3d", r.Seq, r.Run, fmtVT(r.VT), r.Thread)
	if r.Scope != 0 {
		fmt.Fprintf(&b, " s%-3d", r.Scope)
	} else {
		b.WriteString(" s-  ")
	}
	fmt.Fprintf(&b, " %-10s %-16s", r.Op, r.API)
	if r.Event != 0 {
		fmt.Fprintf(&b, " ev=%d", r.Event)
	}
	if r.Predicted != 0 {
		fmt.Fprintf(&b, " pred=%s", fmtVT(r.Predicted))
	}
	if r.Action != "" {
		fmt.Fprintf(&b, " action=%s", r.Action)
	}
	if r.Reason != "" {
		fmt.Fprintf(&b, " reason=%q", r.Reason)
	}
	if r.URL != "" {
		fmt.Fprintf(&b, " url=%s", r.URL)
	}
	if r.Depth != 0 {
		fmt.Fprintf(&b, " depth=%d", r.Depth)
	}
	if r.WorkerID != 0 {
		fmt.Fprintf(&b, " worker=%d", r.WorkerID)
	}
	if r.Value != 0 {
		fmt.Fprintf(&b, " value=%d", r.Value)
	}
	if r.Aux != 0 {
		fmt.Fprintf(&b, " aux=%d", r.Aux)
	}
	return strings.TrimRight(b.String(), " ")
}

// WriteText renders records as the compact one-line-per-record text
// form used for golden files and terminal inspection.
func WriteText(w io.Writer, recs []Record) error {
	for _, r := range recs {
		if _, err := fmt.Fprintln(w, FormatRecord(r)); err != nil {
			return err
		}
	}
	return nil
}
