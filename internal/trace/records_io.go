package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"jskernel/internal/sim"
)

// Raw record export/import: one JSON object per line, every Record
// field preserved verbatim. Unlike the Chrome trace-event exporter
// (chrome.go), which renders for human inspection in Perfetto, this
// codec round-trips losslessly so exported traces can be replayed
// offline through the validator and the internal/hb race detector
// (jsk-race -export / -replay).

// jsonRecord is the wire form of a Record. Ops travel as their String
// names so exported traces stay readable and stable across enum
// renumbering.
type jsonRecord struct {
	Seq       uint64   `json:"seq"`
	Run       int      `json:"run,omitempty"`
	VT        sim.Time `json:"vt"`
	LC        sim.Time `json:"lc,omitempty"`
	Thread    int      `json:"thread,omitempty"`
	Scope     int      `json:"scope,omitempty"`
	WorkerID  int      `json:"worker,omitempty"`
	Op        string   `json:"op"`
	API       string   `json:"api,omitempty"`
	Event     uint64   `json:"event,omitempty"`
	Predicted sim.Time `json:"predicted,omitempty"`
	Action    string   `json:"action,omitempty"`
	Reason    string   `json:"reason,omitempty"`
	URL       string   `json:"url,omitempty"`
	Depth     int      `json:"depth,omitempty"`
	Value     int64    `json:"value,omitempty"`
	Aux       int64    `json:"aux,omitempty"`
}

// allOps enumerates every defined Op for the name→Op decode table.
var allOps = []Op{
	OpInstall, OpPolicy, OpEnqueue, OpConfirm, OpDispatch, OpShed,
	OpCancel, OpExpire, OpPanic, OpQuarantine, OpNative, OpAccess, OpEdge,
}

func opByName(name string) (Op, bool) {
	for _, o := range allOps {
		if o.String() == name {
			return o, true
		}
	}
	return 0, false
}

// RecordWriter streams records to w as JSON lines. It implements Sink,
// so it can be attached to a live session (retain-off sessions included)
// or fed a buffered trace via WriteAll. Errors latch; check Flush.
type RecordWriter struct {
	bw  *bufio.Writer
	err error
}

// NewRecordWriter wraps w in a buffered JSONL record stream.
func NewRecordWriter(w io.Writer) *RecordWriter {
	return &RecordWriter{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Observe writes one record line (Sink).
func (rw *RecordWriter) Observe(r Record) {
	if rw.err != nil {
		return
	}
	line, err := json.Marshal(jsonRecord{
		Seq: r.Seq, Run: r.Run, VT: r.VT, LC: r.LC, Thread: r.Thread,
		Scope: r.Scope, WorkerID: r.WorkerID, Op: r.Op.String(), API: r.API,
		Event: r.Event, Predicted: r.Predicted, Action: r.Action,
		Reason: r.Reason, URL: r.URL, Depth: r.Depth, Value: r.Value, Aux: r.Aux,
	})
	if err != nil {
		rw.err = err
		return
	}
	if _, err := rw.bw.Write(line); err != nil {
		rw.err = err
		return
	}
	rw.err = rw.bw.WriteByte('\n')
}

// WriteAll streams a record slice through the writer.
func (rw *RecordWriter) WriteAll(recs []Record) {
	for _, r := range recs {
		rw.Observe(r)
	}
}

// Flush drains the buffer and returns the first error encountered.
func (rw *RecordWriter) Flush() error {
	if rw.err != nil {
		return rw.err
	}
	return rw.bw.Flush()
}

// ReadRecords parses a JSONL record stream written by RecordWriter.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(text, &jr); err != nil {
			return nil, fmt.Errorf("trace: records line %d: %w", line, err)
		}
		op, ok := opByName(jr.Op)
		if !ok {
			return nil, fmt.Errorf("trace: records line %d: unknown op %q", line, jr.Op)
		}
		out = append(out, Record{
			Seq: jr.Seq, Run: jr.Run, VT: jr.VT, LC: jr.LC, Thread: jr.Thread,
			Scope: jr.Scope, WorkerID: jr.WorkerID, Op: op, API: jr.API,
			Event: jr.Event, Predicted: jr.Predicted, Action: jr.Action,
			Reason: jr.Reason, URL: jr.URL, Depth: jr.Depth, Value: jr.Value, Aux: jr.Aux,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: records scan: %w", err)
	}
	return out, nil
}
