package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRecords drives arbitrary bytes through the JSONL codec and
// pins its robustness contract:
//
//   - ReadRecords never panics, whatever the input (malformed JSON,
//     truncation mid-record, binary noise, absurd numbers);
//   - anything it accepts round-trips losslessly: re-encoding the
//     parsed records with RecordWriter and re-parsing yields the exact
//     same records (write→read is a fixpoint after one normalization);
//   - empty lines are skipped, not errors, matching the writer's
//     trailing-newline framing.
//
// Seed corpus under testdata/fuzz/FuzzReadRecords covers the
// interesting shapes: valid streams, duplicate run-end terminals,
// unknown ops, truncated tails. Run the fuzzer with:
//
//	go test ./internal/trace -fuzz FuzzReadRecords -fuzztime 30s
func FuzzReadRecords(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"seq":1,"vt":0,"op":"enqueue","api":"setTimeout"}` + "\n"))
	f.Add([]byte(`{"seq":1,"vt":100,"op":"access","api":"buffer","action":"w","value":7}` + "\n" +
		`{"seq":2,"vt":150,"op":"access","api":"buffer","action":"w","value":7,"thread":2}` + "\n"))
	f.Add([]byte(`{"seq":1,"op":"dispatch","event":3,"scope":1}` + "\n" + `{"seq":2,"op":"dispa`))
	f.Add([]byte(`{"seq":1,"op":"nosuchop"}` + "\n"))
	f.Add([]byte(`{"seq":18446744073709551615,"vt":-9223372036854775808,"op":"edge","action":"rel"}` + "\n"))
	f.Add([]byte("\x00\x01\x02 not json at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadRecords(bytes.NewReader(data))
		if err != nil {
			// Rejection is fine; the contract is no panic and a
			// line-numbered error.
			if !strings.Contains(err.Error(), "trace: records") {
				t.Fatalf("error without codec context: %v", err)
			}
			return
		}
		// Accepted input must round-trip exactly through the writer.
		var buf bytes.Buffer
		rw := NewRecordWriter(&buf)
		rw.WriteAll(recs)
		if err := rw.Flush(); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ReadRecords(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput: %q", err, buf.String())
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed in round trip:\nfirst:  %+v\nsecond: %+v", i, recs[i], again[i])
			}
		}
		// And the second encoding must be byte-identical to the first —
		// the writer is deterministic.
		var buf2 bytes.Buffer
		rw2 := NewRecordWriter(&buf2)
		rw2.WriteAll(again)
		if err := rw2.Flush(); err != nil {
			t.Fatalf("third encode failed: %v", err)
		}
		first := renderAll(recs)
		if first != buf2.String() {
			t.Fatalf("writer not deterministic:\n%q\nvs\n%q", first, buf2.String())
		}
	})
}

// renderAll encodes records to a string via a fresh writer.
func renderAll(recs []Record) string {
	var buf bytes.Buffer
	rw := NewRecordWriter(&buf)
	rw.WriteAll(recs)
	if err := rw.Flush(); err != nil {
		return "encode-error: " + err.Error()
	}
	return buf.String()
}

// TestReadRecordsTruncatedTail: a stream cut mid-record errors with the
// offending line number instead of silently dropping the tail.
func TestReadRecordsTruncatedTail(t *testing.T) {
	in := `{"seq":1,"op":"enqueue","api":"fetch"}` + "\n" + `{"seq":2,"op":"enq`
	_, err := ReadRecords(strings.NewReader(in))
	if err == nil {
		t.Fatal("truncated record accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the truncated line: %v", err)
	}
}

// TestReadRecordsDuplicateTerminals: duplicate run-end terminal records
// are data, not protocol — the codec preserves both.
func TestReadRecordsDuplicateTerminals(t *testing.T) {
	line := `{"seq":9,"op":"dispatch","action":"run-end","scope":1,"event":4}`
	recs, err := ReadRecords(strings.NewReader(line + "\n" + line + "\n"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 2 || recs[0] != recs[1] {
		t.Fatalf("duplicate terminals mangled: %+v", recs)
	}
}
