package trace

import "fmt"

// Absorb merges a closed part session into this one, remapping the
// part's run generations and scope IDs past this session's allocators so
// (scope, event) keys and (run, thread) timelines never collide. Records
// are re-emitted in the part's own order with fresh sequence numbers, so
// the merged trace stays a total order and the metrics registry is
// rebuilt record-by-record exactly as if the part had been traced into
// this session directly. Interposition totals — counted outside records
// — are transferred explicitly.
//
// The parallel experiment runner gives every cell its own Session and
// absorbs the parts in cell-index order: because each part is internally
// deterministic and the merge order is fixed by index, the merged trace
// is byte-identical regardless of how many workers executed the cells,
// or in which real-time order they finished.
//
// The part must be Closed (all its events retired) and this session must
// not be; absorbing a session into itself is an error. The part is not
// modified.
func (s *Session) Absorb(part *Session) error {
	if s == nil {
		return fmt.Errorf("trace: absorb into nil session")
	}
	if part == nil {
		return nil
	}
	if part == s {
		return fmt.Errorf("trace: session cannot absorb itself")
	}
	if s.closed {
		return fmt.Errorf("trace: absorb into closed session")
	}
	if !part.closed {
		return fmt.Errorf("trace: absorb of unclosed part (%d events still open)", part.Open())
	}
	if part.seq != uint64(len(part.records)) {
		return fmt.Errorf("trace: absorb of retain-off part (%d of %d records retained)", len(part.records), part.seq)
	}
	runBase, scopeBase := s.runs, s.scopes
	for _, r := range part.records {
		if r.Run != 0 {
			r.Run += runBase
		}
		if r.Scope != 0 {
			r.Scope += scopeBase
		}
		r.Seq = 0 // Emit restamps
		s.Emit(r)
	}
	s.runs += part.runs
	s.scopes += part.scopes
	s.metrics.InterposeCrossings += part.metrics.InterposeCrossings
	s.metrics.InterposeVirtual += part.metrics.InterposeVirtual
	return nil
}
