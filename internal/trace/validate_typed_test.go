package trace

import (
	"bytes"
	"errors"
	"testing"

	"jskernel/internal/sim"
)

// validBase is a minimal well-formed lifecycle: policy → enqueue →
// confirm → dispatch of one event.
func validBase() []Record {
	return []Record{
		{Seq: 1, VT: 0, Thread: 1, Scope: 1, Op: OpPolicy, API: "fetch", Event: 1, Action: "schedule"},
		{Seq: 2, VT: 0, Thread: 1, Scope: 1, Op: OpEnqueue, API: "fetch", Event: 1},
		{Seq: 3, VT: 0, Thread: 1, Scope: 1, Op: OpConfirm, API: "fetch", Event: 1},
		{Seq: 4, VT: 4 * sim.Millisecond, Thread: 1, Scope: 1, Op: OpDispatch, API: "fetch", Event: 1},
	}
}

// TestValidatorTypedErrors builds adversarially malformed streams and
// asserts each produces its own *distinct* typed validation error — not
// a generic failure — so tooling can branch on errors.Is.
func TestValidatorTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]Record) []Record
		want   error
	}{
		{"duplicated terminal state", func(r []Record) []Record {
			// A second dispatch for an event already retired by the first.
			dup := r[3]
			dup.VT = 5 * sim.Millisecond
			return append(r, dup)
		}, ErrDuplicateTerminal},
		{"cancel after dispatch is also a duplicate terminal", func(r []Record) []Record {
			late := r[3]
			late.Op = OpCancel
			late.VT = 5 * sim.Millisecond
			return append(r, late)
		}, ErrDuplicateTerminal},
		{"dispatch before confirm", func(r []Record) []Record {
			return []Record{r[0], r[1], r[3]}
		}, ErrDispatchBeforeConfirm},
		{"dispatch before policy", func(r []Record) []Record {
			return []Record{r[1], r[2], r[3]}
		}, ErrDispatchBeforePolicy},
		{"dispatch before enqueue", func(r []Record) []Record {
			return []Record{r[0], r[3]}
		}, ErrDispatchBeforeEnqueue},
		{"vt regression within a thread", func(r []Record) []Record {
			r[3].VT = -1
			return r
		}, ErrTimeRegression},
		{"lc regression within a scope", func(r []Record) []Record {
			r[1].LC = 2 * sim.Millisecond
			r[2].LC = 1 * sim.Millisecond
			return r
		}, ErrClockRegression},
		{"duplicate enqueue", func(r []Record) []Record {
			return []Record{r[0], r[1], r[2], r[1]}
		}, ErrDuplicateEnqueue},
		{"confirm before enqueue", func(r []Record) []Record {
			return []Record{r[0], r[2]}
		}, ErrConfirmBeforeEnqueue},
		{"non-terminal record after terminal", func(r []Record) []Record {
			late := r[2]
			late.VT = 5 * sim.Millisecond
			return append(r, late)
		}, ErrAfterTerminal},
		{"terminal for an event never enqueued", func(r []Record) []Record {
			return []Record{{VT: 0, Thread: 1, Scope: 1, Op: OpCancel, API: "fetch", Event: 9}}
		}, ErrTerminalBeforeEnqueue},
		{"panic outside a dispatch", func(r []Record) []Record {
			return []Record{r[0], r[1], {VT: 0, Thread: 1, Scope: 1, Op: OpPanic, API: "fetch", Event: 1}}
		}, ErrPanicOutsideDispatch},
		{"open events in strict mode", func(r []Record) []Record {
			return []Record{r[0], r[1], r[2]}
		}, ErrOpenEvents},
	}

	// Every case must map to a different sentinel except where the table
	// deliberately shares one (both duplicate-terminal shapes).
	for _, tc := range cases {
		recs := tc.mutate(validBase())
		for i := range recs {
			recs[i].Seq = uint64(i + 1)
		}
		_, err := Validate(recs)
		if err == nil {
			t.Errorf("%s: validation passed, want %v", tc.name, tc.want)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v (%q), want errors.Is(err, %v)", tc.name, err, err, tc.want)
		}
		// Distinctness: the error matches only its own sentinel.
		for _, other := range []error{
			ErrDuplicateTerminal, ErrDispatchBeforeConfirm, ErrTimeRegression,
			ErrClockRegression, ErrDuplicateEnqueue, ErrConfirmBeforeEnqueue,
			ErrAfterTerminal, ErrTerminalBeforeEnqueue, ErrPanicOutsideDispatch,
			ErrOpenEvents, ErrDispatchBeforePolicy, ErrDispatchBeforeEnqueue,
		} {
			if other != tc.want && errors.Is(err, other) {
				t.Errorf("%s: error also matches unrelated sentinel %v", tc.name, other)
			}
		}
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: error is not a *ValidationError: %T", tc.name, err)
		}
	}

	if _, err := Validate(validBase()); err != nil {
		t.Fatalf("baseline trace should validate: %v", err)
	}
}

// TestValidatorSeqOrderTyped covers the one case the shared table can't
// (the renumbering loop would repair it).
func TestValidatorSeqOrderTyped(t *testing.T) {
	recs := validBase()
	recs[2].Seq = 2
	_, err := Validate(recs)
	if !errors.Is(err, ErrSeqOrder) {
		t.Fatalf("got %v, want ErrSeqOrder", err)
	}
}

// TestValidatorExemptsAccessAndEdge pins the hb record kinds' exemption
// from per-thread VT monotonicity: access records carry in-task cursor
// times that interleave freely with kernel-stamped records.
func TestValidatorExemptsAccessAndEdge(t *testing.T) {
	recs := []Record{
		{Seq: 1, VT: 5 * sim.Millisecond, Thread: 1, Op: OpAccess, API: "buffer", Action: "w", Value: 7},
		{Seq: 2, VT: 1 * sim.Millisecond, Thread: 1, Op: OpAccess, API: "buffer", Action: "r", Value: 7},
		{Seq: 3, VT: 4 * sim.Millisecond, Thread: 1, Op: OpEdge, API: "sab-lock", Action: "acq", Value: 7},
		{Seq: 4, VT: 2 * sim.Millisecond, Thread: 1, Op: OpEdge, API: "sab-lock", Action: "rel", Value: 7},
	}
	if _, err := Validate(recs); err != nil {
		t.Fatalf("access/edge records must be exempt from per-thread monotonicity: %v", err)
	}
}

// TestRecordsRoundTrip pins the JSONL codec: export → import is the
// identity on every Record field, including the new access/edge kinds.
func TestRecordsRoundTrip(t *testing.T) {
	recs := validBase()
	recs = append(recs,
		Record{Seq: 5, Run: 2, VT: 6 * sim.Millisecond, Thread: 2, Scope: 3, WorkerID: 1,
			Op: OpAccess, API: "worker", Action: "wg", Value: 1, Aux: 3},
		Record{Seq: 6, Run: 2, VT: 6 * sim.Millisecond, Thread: 2, Scope: 3,
			Op: OpEdge, API: "sys", Action: "rel", Value: 9},
		Record{Seq: 7, Run: 2, VT: 7 * sim.Millisecond, Thread: 1, Op: OpNative,
			API: "shared-buffer-op", Reason: "read", URL: "https://a.example/x", Depth: 2},
	)
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	w.WriteAll(recs)
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d drifted:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}
