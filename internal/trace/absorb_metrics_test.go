package trace_test

import (
	"bytes"
	"testing"

	"jskernel/internal/expr"
	"jskernel/internal/trace"
)

// metricsBytes runs the traced Table I matrix at the given pool width
// and renders the merged session's metrics registry, JSON and summary.
func metricsBytes(t *testing.T, parallel int) ([]byte, []byte) {
	t.Helper()
	cfg := expr.QuickConfig()
	cfg.Reps = 1
	cfg.Parallel = parallel
	cfg.Trace = trace.NewSession()
	if _, err := expr.Table1(cfg); err != nil {
		t.Fatalf("Table1 (parallel %d): %v", parallel, err)
	}
	cfg.Trace.Close()
	m := cfg.Trace.Metrics()
	var js, sum bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := m.WriteSummary(&sum); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	return js.Bytes(), sum.Bytes()
}

// TestAbsorbRebuildsMetricsAtAnyWidth pins the metrics registry's
// parallel determinism: a session assembled by absorbing 8-wide
// parallel cell traces carries byte-identical metrics to a serial run —
// Absorb re-emits every part record through the parent's Emit, so the
// registry observes the same stream either way.
func TestAbsorbRebuildsMetricsAtAnyWidth(t *testing.T) {
	serialJSON, serialSum := metricsBytes(t, 1)
	parJSON, parSum := metricsBytes(t, 8)
	if len(serialJSON) == 0 || bytes.Equal(serialJSON, []byte("null\n")) {
		t.Fatalf("serial metrics empty: %q", serialJSON)
	}
	if !bytes.Equal(serialJSON, parJSON) {
		t.Errorf("metrics JSON differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
			serialJSON, parJSON)
	}
	if !bytes.Equal(serialSum, parSum) {
		t.Errorf("metrics summary differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
			serialSum, parSum)
	}
}
