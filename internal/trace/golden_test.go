package trace_test

// Golden-trace regression tests: the kernel's exact scheduling behaviour
// — not just final verdicts — is pinned byte-for-byte. Each scenario is
// rendered with WriteText and diffed against testdata/<name>.trace.txt.
// Every scenario also runs twice from scratch and must produce identical
// bytes before the golden comparison happens, so a failure separates
// "the build went nondeterministic" from "the scheduling changed".
//
// Regenerate the goldens after an intentional scheduling change with:
//
//	go test ./internal/trace -run Golden -update

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"jskernel/internal/attack"
	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// goldenSeed keeps every scenario on one fixed seed: goldens pin one
// exact run.
const goldenSeed = 42

// renderScenario runs one traced scenario from scratch and returns the
// compact text rendering of its closed, validated trace.
func renderScenario(t *testing.T, name string, run func(t *testing.T, s *trace.Session)) []byte {
	t.Helper()
	s := trace.NewSession()
	run(t, s)
	s.Close()
	recs := s.Records()
	if len(recs) == 0 {
		t.Fatalf("%s: scenario emitted no trace records", name)
	}
	if _, err := trace.Validate(recs); err != nil {
		t.Fatalf("%s: trace fails validation: %v", name, err)
	}
	var b bytes.Buffer
	if err := trace.WriteText(&b, recs); err != nil {
		t.Fatalf("%s: render: %v", name, err)
	}
	return b.Bytes()
}

// checkGolden runs the scenario twice from scratch (determinism gate),
// then compares against the checked-in golden file.
func checkGolden(t *testing.T, name string, run func(t *testing.T, s *trace.Session)) {
	t.Helper()
	got := renderScenario(t, name, run)
	again := renderScenario(t, name, run)
	if !bytes.Equal(got, again) {
		t.Fatalf("%s: two fresh runs produced different traces (%d vs %d bytes) — the scenario is nondeterministic, goldens cannot apply", name, len(got), len(again))
	}

	path := filepath.Join("testdata", name+".trace.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: no golden file (run with -update to create): %v", name, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Point at the first differing line so an intentional scheduling
	// change is easy to review before -update.
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("%s: trace diverges from golden at line %d:\n got: %s\nwant: %s\n(re-run with -update if the scheduling change is intentional)",
				name, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("%s: trace length diverges from golden (%d vs %d lines; re-run with -update if intentional)",
		name, len(gotLines), len(wantLines))
}

// TestGoldenTraceCVEDefended pins the JSKernel-defended run of the
// paper's Listing 2 exploit (CVE-2018-5092 use-after-free): the policy
// denies the racing abort, so the trace shows the deny verdict and the
// vulnerability never triggers.
func TestGoldenTraceCVEDefended(t *testing.T) {
	checkGolden(t, "cve-2018-5092-defended", func(t *testing.T, s *trace.Session) {
		out := attack.CVE20185092().Evaluate(defense.JSKernel("chrome").WithTracer(s), goldenSeed)
		if !out.Defended {
			t.Fatalf("expected JSKernel to defend CVE-2018-5092")
		}
	})
}

// TestGoldenTraceCVEUndefended pins the same exploit under DeterFox,
// which schedules deterministically but carries no CVE policies: the
// kernel lifecycle is fully traced and the exploit still lands.
func TestGoldenTraceCVEUndefended(t *testing.T) {
	checkGolden(t, "cve-2018-5092-undefended", func(t *testing.T, s *trace.Session) {
		out := attack.CVE20185092().Evaluate(defense.DeterFox().WithTracer(s), goldenSeed)
		if out.Defended {
			t.Fatalf("expected DeterFox to remain exploitable by CVE-2018-5092")
		}
	})
}

// TestGoldenTraceQuickstart pins a quickstart-style workload exercising
// the full event-lifecycle surface: one-shot timer, self-clearing
// interval, animation frame, a worker echo round-trip with termination,
// and a fetch.
func TestGoldenTraceQuickstart(t *testing.T) {
	checkGolden(t, "quickstart", func(t *testing.T, s *trace.Session) {
		env := defense.JSKernel("chrome").WithTracer(s).NewEnv(defense.EnvOptions{Seed: goldenSeed})
		b := env.Browser
		b.Net.RegisterScript("https://site.example/data.bin", 10_000)
		b.RegisterWorkerScript("echo.js", func(g *browser.Global) {
			g.SetOnMessage(func(g *browser.Global, ev browser.MessageEvent) {
				g.PostMessage(fmt.Sprintf("echo:%v", ev.Data))
			})
		})
		b.RunScript("quickstart", func(g *browser.Global) {
			g.SetTimeout(func(*browser.Global) {}, 5*sim.Millisecond)
			ticks := 0
			var iv int
			iv = g.SetInterval(func(g *browser.Global) {
				ticks++
				if ticks == 3 {
					g.ClearInterval(iv)
				}
			}, 10*sim.Millisecond)
			g.RequestAnimationFrame(func(*browser.Global, float64) {})
			g.Fetch("https://site.example/data.bin", browser.FetchOptions{},
				func(*browser.Response, error) {})
			w, err := g.NewWorker("echo.js")
			if err != nil {
				t.Fatalf("quickstart: NewWorker: %v", err)
			}
			w.SetOnMessage(func(*browser.Global, browser.MessageEvent) {
				w.Terminate()
			})
			w.PostMessage("ping")
		})
		if err := b.RunFor(2 * sim.Second); err != nil {
			t.Fatalf("quickstart: run: %v", err)
		}
	})
}
